//! N-dimensional objects: spatial constraints over 2-D/3-D meshes via
//! `PDCquery_set_region` — "the region selection can be arbitrary and
//! does not need to match any of the existing PDC internal region
//! partitions."

use pdc_suite::odms::{ImportOptions, Odms};
use pdc_suite::query::{EngineConfig, PdcQuery, QueryEngine, Strategy};
use pdc_suite::types::{NdRegion, ObjectId, QueryOp, Shape, TypedVec};
use std::sync::Arc;

const NX: u64 = 64;
const NY: u64 = 96;

/// A 2-D temperature mesh with a hot square in the middle.
fn mesh_world() -> (Arc<Odms>, ObjectId, Vec<f32>) {
    let odms = Arc::new(Odms::new(4));
    let c = odms.create_container("mesh");
    let mut values = Vec::with_capacity((NX * NY) as usize);
    for ix in 0..NX {
        for iy in 0..NY {
            let hot = (20..40).contains(&ix) && (30..60).contains(&iy);
            let base = if hot { 500.0 } else { 20.0 };
            values.push(base + ((ix * 7 + iy * 13) % 10) as f32);
        }
    }
    let opts = ImportOptions {
        region_bytes: 1024,
        build_index: true,
        build_sorted: true,
        ..Default::default()
    };
    let obj = odms
        .import_array_nd(
            c,
            "temperature",
            TypedVec::Float(values.clone()),
            Shape(vec![NX, NY]),
            &opts,
        )
        .unwrap()
        .object;
    (odms, obj, values)
}

fn engine(odms: &Arc<Odms>, strategy: Strategy) -> QueryEngine {
    QueryEngine::new(
        Arc::clone(odms),
        EngineConfig { strategy, num_servers: 4, ..Default::default() },
    )
}

#[test]
fn shape_mismatch_rejected_at_import() {
    let odms = Odms::new(2);
    let c = odms.create_container("bad");
    let err = odms
        .import_array_nd(
            c,
            "x",
            TypedVec::Float(vec![0.0; 10]),
            Shape(vec![3, 4]),
            &ImportOptions::default(),
        )
        .unwrap_err();
    assert!(err.to_string().contains("shape"));
}

#[test]
fn value_query_over_2d_mesh_all_strategies() {
    let (odms, obj, values) = mesh_world();
    let expect: Vec<u64> = (0..values.len() as u64)
        .filter(|&i| values[i as usize] > 400.0)
        .collect();
    assert!(!expect.is_empty());
    for strategy in [
        Strategy::FullScan,
        Strategy::Histogram,
        Strategy::HistogramIndex,
        Strategy::SortedHistogram,
    ] {
        let eng = engine(&odms, strategy);
        let q = PdcQuery::create(obj, QueryOp::Gt, 400.0f32);
        let out = eng.run(&q).unwrap();
        assert_eq!(out.selection.iter_coords().collect::<Vec<_>>(), expect, "{strategy}");
    }
}

#[test]
fn nd_spatial_constraint_filters_exactly() {
    let (odms, obj, values) = mesh_world();
    let shape = Shape(vec![NX, NY]);
    // An arbitrary window that straddles the hot square's edge and does
    // not align with any region boundary.
    let window = NdRegion::new(vec![35, 50], vec![20, 30]);
    let expect: Vec<u64> = (0..values.len() as u64)
        .filter(|&i| values[i as usize] > 400.0 && window.contains_linear(&shape, i))
        .collect();
    for strategy in [Strategy::Histogram, Strategy::HistogramIndex, Strategy::SortedHistogram] {
        let eng = engine(&odms, strategy);
        let q = PdcQuery::create(obj, QueryOp::Gt, 400.0f32).set_region(window.clone());
        let out = eng.run(&q).unwrap();
        assert_eq!(out.selection.iter_coords().collect::<Vec<_>>(), expect, "{strategy}");
    }
}

#[test]
fn nd_constraint_outside_hot_square_is_empty() {
    let (odms, obj, _) = mesh_world();
    let eng = engine(&odms, Strategy::Histogram);
    let q = PdcQuery::create(obj, QueryOp::Gt, 400.0f32)
        .set_region(NdRegion::new(vec![0, 0], vec![10, 10]));
    assert_eq!(eng.get_nhits(&q).unwrap(), 0);
}

#[test]
fn multi_object_queries_require_matching_shapes() {
    let (odms, obj, _) = mesh_world();
    let c = odms.create_container("other");
    let other = odms
        .import_array_nd(
            c,
            "pressure",
            TypedVec::Float(vec![1.0; (NX * NY) as usize]),
            Shape(vec![NY, NX]), // transposed: same element count, different shape
            &ImportOptions { region_bytes: 1024, ..Default::default() },
        )
        .unwrap()
        .object;
    let eng = engine(&odms, Strategy::Histogram);
    let q = PdcQuery::create(obj, QueryOp::Gt, 0.0f32)
        .and(PdcQuery::create(other, QueryOp::Gt, 0.0f32));
    assert!(matches!(
        eng.run(&q),
        Err(pdc_suite::types::PdcError::DimensionMismatch { .. })
    ));
}

#[test]
fn get_data_respects_nd_selection() {
    let (odms, obj, values) = mesh_world();
    let shape = Shape(vec![NX, NY]);
    let window = NdRegion::new(vec![22, 31], vec![5, 7]);
    let eng = engine(&odms, Strategy::Histogram);
    let q = PdcQuery::create(obj, QueryOp::Gt, 400.0f32).set_region(window.clone());
    let out = eng.run(&q).unwrap();
    let data = eng.get_data(&out, obj).unwrap();
    let TypedVec::Float(got) = &data.data else { panic!("type") };
    let expect: Vec<f32> = (0..values.len() as u64)
        .filter(|&i| values[i as usize] > 400.0 && window.contains_linear(&shape, i))
        .map(|i| values[i as usize])
        .collect();
    assert_eq!(got, &expect);
}
