//! Property-based equivalence testing for the adaptive strategy
//! (`PDC-A`): per-(region, predicate) operator selection may change the
//! *cost* of a query, never its *answer*. Adaptive selections must be
//! bit-identical to every fixed strategy on clean worlds, under seeded
//! server faults, and with up to 20% of data regions corrupted — and the
//! `EXPLAIN` report must be internally consistent with the result.

use pdc_suite::odms::{ImportOptions, Odms};
use pdc_suite::query::{
    EngineConfig, ExplainPhase, PdcQuery, QueryEngine, Strategy,
};
use pdc_suite::server::{CorruptionSpec, FaultPlan};
use pdc_suite::types::{ObjectId, TypedVec};
use proptest::prelude::*;
use std::sync::Arc;

const N: usize = 3_000;

/// Two variables so compound queries exercise the filter lane's
/// point-check operators as well as the primary lane: `v` carries an
/// index and a sorted replica (all access paths available), `w` carries
/// histograms and an index but no sorted replica.
fn build_world(seed: u32) -> (Arc<Odms>, ObjectId, ObjectId, Vec<f32>, Vec<f32>) {
    let s = seed as f32;
    let v: Vec<f32> =
        (0..N).map(|i| ((i as f32 * 0.003 + s).sin() + 1.0) * 5.0).collect();
    let w: Vec<f32> =
        (0..N).map(|i| ((i as f32 * 0.017 + s).cos() + 1.0) * 5.0).collect();
    let odms = Arc::new(Odms::new(4));
    let c = odms.create_container("adaptive-prop");
    let full = ImportOptions {
        region_bytes: 2048,
        build_index: true,
        build_sorted: true,
        ..Default::default()
    };
    let bare = ImportOptions { region_bytes: 2048, build_index: true, ..Default::default() };
    let ov = odms.import_array(c, "v", TypedVec::Float(v.clone()), &full).unwrap().object;
    let ow = odms.import_array(c, "w", TypedVec::Float(w.clone()), &bare).unwrap().object;
    (odms, ov, ow, v, w)
}

fn engine(
    odms: &Arc<Odms>,
    strategy: Strategy,
    servers: u32,
    plan: Option<FaultPlan>,
) -> QueryEngine {
    QueryEngine::new(
        Arc::clone(odms),
        EngineConfig { strategy, num_servers: servers, fault_plan: plan, ..Default::default() },
    )
}

const FIXED_STRATEGIES: [Strategy; 4] = [
    Strategy::FullScan,
    Strategy::Histogram,
    Strategy::HistogramIndex,
    Strategy::SortedHistogram,
];

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    /// The core contract: on a clean world, adaptive selections are
    /// bit-identical to every fixed strategy, for both single-interval
    /// and compound (primary + filter lane) queries.
    #[test]
    fn adaptive_matches_every_fixed_strategy(
        world_seed in 0u32..4,
        servers in 2u32..6,
        lo in 0.0f32..5.0,
        width in 0.05f32..5.0,
        w_lo in 0.0f32..8.0,
    ) {
        let (odms, ov, ow, v, w) = build_world(world_seed);
        let hi = lo + width;

        let single = PdcQuery::range_open(ov, lo, hi);
        let expect = v.iter().filter(|&&x| x > lo && x < hi).count() as u64;
        let adaptive = engine(&odms, Strategy::Adaptive, servers, None).run(&single).unwrap();
        prop_assert_eq!(adaptive.nhits, expect, "adaptive vs. reference count");
        for strategy in FIXED_STRATEGIES {
            let fixed = engine(&odms, strategy, servers, None).run(&single).unwrap();
            prop_assert_eq!(&adaptive.selection, &fixed.selection,
                "single interval: PDC-A vs. {}", strategy);
        }

        let compound = PdcQuery::range_open(ov, lo, hi)
            .and(PdcQuery::range_open(ow, w_lo, w_lo + 2.0));
        let expect = v
            .iter()
            .zip(&w)
            .filter(|&(&a, &b)| a > lo && a < hi && b > w_lo && b < w_lo + 2.0)
            .count() as u64;
        let adaptive = engine(&odms, Strategy::Adaptive, servers, None).run(&compound).unwrap();
        prop_assert_eq!(adaptive.nhits, expect, "adaptive vs. reference compound count");
        for strategy in FIXED_STRATEGIES {
            let fixed = engine(&odms, strategy, servers, None).run(&compound).unwrap();
            prop_assert_eq!(&adaptive.selection, &fixed.selection,
                "compound: PDC-A vs. {}", strategy);
        }
    }

    /// Adaptive operator choices are pure functions of metadata and the
    /// cost model, so they survive the fault path: under seeded crashes,
    /// slowdowns, transient errors and corruption, retried/reassigned
    /// regions pick the same operators and the selection never changes.
    #[test]
    fn adaptive_survives_faults_and_corruption(
        world_seed in 0u32..4,
        seed in any::<u64>(),
        servers in 2u32..6,
        data_frac in 0.0f64..0.2,
        aux_frac in 0.0f64..0.5,
    ) {
        let (odms, ov, ow, _, _) = build_world(world_seed);
        let q = PdcQuery::range_open(ov, 2.0f32, 6.0f32)
            .and(PdcQuery::range_open(ow, 1.0f32, 9.0f32));
        let clean = engine(&odms, Strategy::Adaptive, servers, None).run(&q).unwrap();

        let corrupt_only = FaultPlan::new()
            .with_corruption(CorruptionSpec::new(data_frac, aux_frac, seed));
        let corrupted = engine(&odms, Strategy::Adaptive, servers, Some(corrupt_only))
            .run(&q)
            .unwrap_or_else(|e| panic!("corruption seed {seed}: {e}"));
        prop_assert_eq!(&corrupted.selection, &clean.selection,
            "corruption seed {}", seed);

        let stressed_plan = FaultPlan::seeded_with_corruption(seed, servers, 0.1, 0.3);
        let stressed = engine(&odms, Strategy::Adaptive, servers, Some(stressed_plan))
            .run(&q)
            .unwrap_or_else(|e| panic!("fault seed {seed}: {e}"));
        prop_assert_eq!(&stressed.selection, &clean.selection, "fault seed {}", seed);
    }

    /// Determinism: two adaptive engines over the same world agree on
    /// simulated costs down to the breakdown, not just on results.
    #[test]
    fn adaptive_is_deterministic(
        world_seed in 0u32..4,
        servers in 2u32..6,
        lo in 0.0f32..8.0,
    ) {
        let (odms, ov, _, _, _) = build_world(world_seed);
        let q = PdcQuery::range_open(ov, lo, lo + 1.5);
        let a = engine(&odms, Strategy::Adaptive, servers, None).run(&q).unwrap();
        let b = engine(&odms, Strategy::Adaptive, servers, None).run(&q).unwrap();
        prop_assert_eq!(&a.selection, &b.selection);
        prop_assert_eq!(a.elapsed, b.elapsed);
        prop_assert_eq!(a.breakdown, b.breakdown);
        prop_assert_eq!(&a.per_server, &b.per_server);
    }

    /// The EXPLAIN report is consistent with the answer it narrates:
    /// explain never perturbs the outcome, pruned rows carry no actual
    /// counts, histogram estimates bound the actual hits, and on a
    /// single-constraint query the primary-lane actuals sum to `nhits`.
    #[test]
    fn explain_is_consistent_with_results(
        world_seed in 0u32..4,
        servers in 2u32..6,
        lo in 0.0f32..5.0,
        width in 0.05f32..5.0,
        strategy_idx in 0usize..5,
    ) {
        let strategy = [
            Strategy::FullScan,
            Strategy::Histogram,
            Strategy::HistogramIndex,
            Strategy::SortedHistogram,
            Strategy::Adaptive,
        ][strategy_idx];
        let (odms, ov, _, _, _) = build_world(world_seed);
        let q = PdcQuery::range_open(ov, lo, lo + width);
        // Fresh engines for each run: server caches warmed by a first
        // run would change the second run's simulated time, which is a
        // cache effect, not an explain effect.
        let plain = engine(&odms, strategy, servers, None).run(&q).unwrap();
        let (explained, plan) = engine(&odms, strategy, servers, None).explain(&q).unwrap();
        prop_assert_eq!(&explained.selection, &plain.selection,
            "{}: explain changed the answer", strategy);
        prop_assert_eq!(explained.elapsed, plain.elapsed,
            "{}: explain changed simulated time", strategy);

        prop_assert_eq!(plan.strategy, strategy);
        prop_assert_eq!(plan.constraints.len(), 1);
        prop_assert_eq!(plan.constraints[0].0, ov);
        prop_assert!(!plan.regions.is_empty(), "{}: no region rows", strategy);
        let mut actual_total = 0u64;
        for row in &plan.regions {
            prop_assert_eq!(row.phase, ExplainPhase::Primary);
            prop_assert_eq!(row.pruned, row.actual_hits.is_none(),
                "{}: pruned iff no actual hits", strategy);
            if let (Some(est), Some(actual)) = (&row.est, row.actual_hits) {
                prop_assert!(est.lower <= actual && actual <= est.upper,
                    "{}: region {} actual {} outside estimate {}..{}",
                    strategy, row.region, actual, est.lower, est.upper);
            }
            actual_total += row.actual_hits.unwrap_or(0);
        }
        prop_assert_eq!(actual_total, plain.nhits,
            "{}: primary-lane actuals must sum to nhits", strategy);
    }
}

/// Deterministic spot check that adaptivity is visible in the plan: a
/// wide interval scans while an empty interval prunes everything, and
/// both agree with the full-scan ground truth.
#[test]
fn adaptive_picks_visible_in_explain() {
    let (odms, ov, _, v, _) = build_world(1);
    let eng = engine(&odms, Strategy::Adaptive, 4, None);

    let wide = PdcQuery::range_open(ov, 0.5f32, 9.5f32);
    let (out, plan) = eng.explain(&wide).unwrap();
    let expect = v.iter().filter(|&&x| x > 0.5 && x < 9.5).count() as u64;
    assert_eq!(out.nhits, expect);
    assert_eq!(plan.strategy, Strategy::Adaptive);
    assert!(plan.regions.iter().any(|r| !r.pruned), "wide interval must touch data");

    let empty = PdcQuery::range_open(ov, 100.0f32, 200.0f32);
    let (out, plan) = eng.explain(&empty).unwrap();
    assert_eq!(out.nhits, 0);
    assert!(
        plan.sorted_primary || plan.regions.iter().all(|r| r.pruned),
        "an impossible interval must prune every region or resolve via the sorted replica"
    );
}
