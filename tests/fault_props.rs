//! Property-based fault-tolerance testing: random fault plans never
//! change what a query returns — only its simulated cost — and the whole
//! failure timeline is deterministic in the fault seed.

use pdc_suite::odms::{ImportOptions, Odms};
use pdc_suite::query::{EngineConfig, PdcQuery, QueryEngine, Strategy};
use pdc_suite::server::FaultPlan;
use pdc_suite::types::{ObjectId, TypedVec};
use proptest::prelude::*;
use std::sync::Arc;

const N: usize = 3_000;

fn build_world(seed: u32) -> (Arc<Odms>, ObjectId, Vec<f32>) {
    let s = seed as f32;
    let data: Vec<f32> =
        (0..N).map(|i| ((i as f32 * 0.003 + s).sin() + 1.0) * 5.0).collect();
    let odms = Arc::new(Odms::new(4));
    let c = odms.create_container("fault-prop");
    let opts = ImportOptions {
        region_bytes: 2048,
        build_index: true,
        build_sorted: true,
        ..Default::default()
    };
    let obj = odms.import_array(c, "v", TypedVec::Float(data.clone()), &opts).unwrap().object;
    (odms, obj, data)
}

fn engine(odms: &Arc<Odms>, strategy: Strategy, servers: u32, plan: Option<FaultPlan>) -> QueryEngine {
    QueryEngine::new(
        Arc::clone(odms),
        EngineConfig { strategy, num_servers: servers, fault_plan: plan, ..Default::default() },
    )
}

const ALL_STRATEGIES: [Strategy; 4] = [
    Strategy::FullScan,
    Strategy::Histogram,
    Strategy::HistogramIndex,
    Strategy::SortedHistogram,
];

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Any seeded fault plan (crashes, slowdowns, transient errors —
    /// always leaving at least one server alive) yields results
    /// bit-identical to the fault-free run, under every strategy. Faults
    /// may only move the simulated timeline.
    #[test]
    fn random_faults_never_change_results(
        world_seed in 0u32..4,
        fault_seed in any::<u64>(),
        servers in 2u32..6,
        lo in 0.0f32..5.0,
        width in 0.1f32..5.0,
    ) {
        let (odms, obj, data) = build_world(world_seed);
        let hi = lo + width;
        let q = PdcQuery::range_open(obj, lo, hi);
        let expect = data.iter().filter(|&&v| v > lo && v < hi).count() as u64;
        let plan = FaultPlan::seeded(fault_seed, servers);
        for strategy in ALL_STRATEGIES {
            let healthy = engine(&odms, strategy, servers, None).run(&q).unwrap();
            prop_assert_eq!(healthy.nhits, expect);
            let faulty = engine(&odms, strategy, servers, Some(plan.clone()))
                .run(&q)
                .unwrap();
            prop_assert_eq!(faulty.nhits, healthy.nhits, "{} seed {}", strategy, fault_seed);
            prop_assert_eq!(
                &faulty.selection, &healthy.selection,
                "{} seed {}: selection diverged", strategy, fault_seed
            );
            // Faults never change what was computed, only when: the I/O
            // and scan work may grow (reassigned slots re-read regions)
            // but the answer-bearing outputs are identical.
        }
    }

    /// Killing a random subset of servers (always leaving one) also
    /// preserves results exactly.
    #[test]
    fn random_kills_never_change_results(
        world_seed in 0u32..4,
        kill_seed in any::<u64>(),
        servers in 2u32..6,
        kill_frac in 0.0f64..1.0,
    ) {
        let (odms, obj, _) = build_world(world_seed);
        let kills = ((servers - 1) as f64 * kill_frac) as u32;
        let q = PdcQuery::range_open(obj, 2.0f32, 6.0f32);
        let plan = FaultPlan::kill_count(kills, servers, kill_seed);
        for strategy in ALL_STRATEGIES {
            let healthy = engine(&odms, strategy, servers, None).run(&q).unwrap();
            let faulty = engine(&odms, strategy, servers, Some(plan.clone()))
                .run(&q)
                .unwrap();
            prop_assert_eq!(&faulty.selection, &healthy.selection,
                "{}: {} of {} killed", strategy, kills, servers);
        }
    }

    /// The failure timeline is deterministic: two engines configured with
    /// the same fault seed report identical simulated costs, identical
    /// failed-server sets, and identical retry counts.
    #[test]
    fn same_fault_seed_same_costs(
        world_seed in 0u32..4,
        fault_seed in any::<u64>(),
        servers in 2u32..6,
    ) {
        let (odms, obj, _) = build_world(world_seed);
        let q = PdcQuery::range_open(obj, 1.0f32, 7.0f32);
        let plan = FaultPlan::seeded(fault_seed, servers);
        for strategy in ALL_STRATEGIES {
            let a = engine(&odms, strategy, servers, Some(plan.clone())).run(&q).unwrap();
            let b = engine(&odms, strategy, servers, Some(plan.clone())).run(&q).unwrap();
            prop_assert_eq!(a.elapsed, b.elapsed, "{} seed {}", strategy, fault_seed);
            prop_assert_eq!(a.breakdown, b.breakdown, "{} seed {}", strategy, fault_seed);
            prop_assert_eq!(&a.per_server, &b.per_server, "{} seed {}", strategy, fault_seed);
            prop_assert_eq!(&a.failed_servers, &b.failed_servers);
            prop_assert_eq!(a.retry_rounds, b.retry_rounds);
        }
    }
}
