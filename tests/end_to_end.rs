//! Cross-crate integration: the full pipeline from workload generation
//! through import, planning, parallel evaluation, and data retrieval —
//! exercised through the facade crate the way a downstream user would.

use pdc_suite::baseline::Hdf5Baseline;
use pdc_suite::odms::{ImportOptions, Odms};
use pdc_suite::query::{EngineConfig, PdcQuery, QueryEngine, Strategy};
use pdc_suite::storage::CostModel;
use pdc_suite::types::{Interval, QueryOp, TypedVec};
use pdc_suite::workloads::{
    multi_object_catalog, single_object_catalog, VpicConfig, VpicData,
};
use std::sync::Arc;

fn world(particles: usize) -> (Arc<Odms>, pdc_suite::workloads::vpic::VpicObjects, VpicData) {
    let data = VpicData::generate(&VpicConfig { particles, seed: 0xE2E });
    let odms = Arc::new(Odms::new(16));
    let container = odms.create_container("e2e");
    let opts = ImportOptions {
        region_bytes: 32 << 10,
        build_index: true,
        build_sorted: true,
        ..Default::default()
    };
    let (objects, reports) = data.import_all(&odms, container, &opts).expect("import");
    assert_eq!(reports.len(), 7);
    (odms, objects, data)
}

fn engine(odms: &Arc<Odms>, strategy: Strategy) -> QueryEngine {
    QueryEngine::new(
        Arc::clone(odms),
        EngineConfig { strategy, num_servers: 8, ..Default::default() },
    )
}

#[test]
fn full_catalog_all_strategies_match_naive_and_baseline() {
    let (odms, objects, data) = world(300_000);
    let baseline = Hdf5Baseline::new(CostModel::cori_like(), 8);
    let engines = [
        engine(&odms, Strategy::FullScan),
        engine(&odms, Strategy::Histogram),
        engine(&odms, Strategy::HistogramIndex),
        engine(&odms, Strategy::SortedHistogram),
    ];
    // Single-object catalog.
    for spec in single_object_catalog().iter().step_by(3) {
        let iv = Interval::open(spec.lo as f64, spec.hi as f64);
        let expect =
            data.energy.iter().filter(|&&v| iv.contains(v as f64)).count() as u64;
        let h5 = baseline.full_scan_conjunction(&[(&data.energy, iv)]);
        assert_eq!(h5.nhits, expect, "baseline disagrees on {iv}");
        for eng in &engines {
            let q = PdcQuery::range_open(objects.energy, spec.lo, spec.hi);
            assert_eq!(eng.get_nhits(&q).unwrap(), expect, "{} on {iv}", eng.strategy());
        }
    }
    // Multi-object catalog.
    for spec in multi_object_catalog().iter().step_by(2) {
        let expect = (0..data.len())
            .filter(|&k| {
                data.energy[k] > spec.energy_gt
                    && data.x[k] > spec.x_lo
                    && data.x[k] < spec.x_hi
                    && data.y[k] > spec.y_lo
                    && data.y[k] < spec.y_hi
                    && data.z[k] > spec.z_lo
                    && data.z[k] < spec.z_hi
            })
            .count() as u64;
        for eng in &engines {
            let q = PdcQuery::create(objects.energy, QueryOp::Gt, spec.energy_gt)
                .and(PdcQuery::range_open(objects.x, spec.x_lo, spec.x_hi))
                .and(PdcQuery::range_open(objects.y, spec.y_lo, spec.y_hi))
                .and(PdcQuery::range_open(objects.z, spec.z_lo, spec.z_hi));
            assert_eq!(eng.get_nhits(&q).unwrap(), expect, "{}", eng.strategy());
        }
    }
}

#[test]
fn get_data_values_match_source_arrays() {
    let (odms, objects, data) = world(200_000);
    for strategy in [Strategy::Histogram, Strategy::HistogramIndex, Strategy::SortedHistogram] {
        let eng = engine(&odms, strategy);
        let q = PdcQuery::create(objects.energy, QueryOp::Gt, 2.0f32);
        let out = eng.run(&q).unwrap();
        assert!(out.nhits > 0);
        // Values of a *different* object at the matching coordinates.
        let got = eng.get_data(&out, objects.ux).unwrap();
        let TypedVec::Float(values) = &got.data else { panic!("type") };
        let coords: Vec<u64> = out.selection.iter_coords().collect();
        assert_eq!(values.len(), coords.len());
        for (v, &c) in values.iter().zip(&coords) {
            assert_eq!(*v, data.ux[c as usize], "{strategy} at coord {c}");
        }
    }
}

#[test]
fn simulated_times_are_deterministic() {
    let (odms, objects, _) = world(100_000);
    let run = || {
        let eng = engine(&odms, Strategy::Histogram);
        let q = PdcQuery::range_open(objects.energy, 2.1f32, 2.2f32);
        let a = eng.run(&q).unwrap();
        let b = eng.run(&q).unwrap();
        (a.elapsed, b.elapsed, a.nhits)
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "fresh engines must reproduce identical simulated times");
    // and caching makes the second query cheaper than the first
    assert!(first.1 <= first.0);
}

#[test]
fn histogram_api_reports_the_imported_distribution() {
    let (odms, objects, data) = world(100_000);
    let eng = engine(&odms, Strategy::Histogram);
    let hist = eng.get_histogram(objects.energy).unwrap();
    assert_eq!(hist.total(), data.len() as u64);
    let exact_min = data.energy.iter().cloned().fold(f32::INFINITY, f32::min) as f64;
    assert_eq!(hist.min(), exact_min);
    // estimates bracket an exact count
    let iv = Interval::open(1.0, 1.5);
    let exact = data.energy.iter().filter(|&&v| iv.contains(v as f64)).count() as u64;
    let est = hist.estimate_hits(&iv);
    assert!(est.lower <= exact && exact <= est.upper);
}

#[test]
fn or_queries_and_spatial_constraints_compose() {
    let (odms, objects, data) = world(150_000);
    let eng = engine(&odms, Strategy::Histogram);
    // (E > 3.0 OR E < 0.05) restricted to the middle third of the array.
    let start = 50_000u64;
    let len = 50_000u64;
    let q = PdcQuery::create(objects.energy, QueryOp::Gt, 3.0f32)
        .or(PdcQuery::create(objects.energy, QueryOp::Lt, 0.05f32))
        .set_region(pdc_suite::types::NdRegion::one_d(start, len));
    let out = eng.run(&q).unwrap();
    let expect: Vec<u64> = (start..start + len)
        .filter(|&i| {
            let e = data.energy[i as usize];
            !(0.05..=3.0).contains(&e)
        })
        .collect();
    assert_eq!(out.selection.iter_coords().collect::<Vec<_>>(), expect);
}

#[test]
fn import_reports_feed_overhead_accounting() {
    let (odms, objects, _) = world(100_000);
    let meta = odms.meta();
    // histograms and index sizes exist for every variable
    for obj in [objects.energy, objects.x, objects.uz] {
        assert!(meta.global_histogram(obj).is_ok());
        assert!(meta.index_sizes(obj).is_ok());
        assert!(meta.histogram_metadata_bytes(obj) > 0);
    }
    // sorted replica only for energy (the paper sorts by the queried key)
    assert!(meta.sorted_replica(objects.energy).is_ok());
    assert!(meta.sorted_replica(objects.x).is_err());
}
