//! Failure injection and edge cases across the assembled system.

use pdc_suite::odms::{ImportOptions, Odms};
use pdc_suite::query::{EngineConfig, PdcQuery, QueryEngine, Strategy};
use pdc_suite::types::{ObjectId, PdcError, QueryOp, RegionId, TypedVec};
use std::sync::Arc;

fn small_world() -> (Arc<Odms>, ObjectId, Vec<f32>) {
    let odms = Arc::new(Odms::new(4));
    let c = odms.create_container("edge");
    let data: Vec<f32> = (0..50_000).map(|i| ((i * 31) % 997) as f32 / 100.0).collect();
    let opts = ImportOptions {
        region_bytes: 8 << 10,
        build_index: true,
        build_sorted: true,
        ..Default::default()
    };
    let obj = odms.import_array(c, "v", TypedVec::Float(data.clone()), &opts).unwrap().object;
    (odms, obj, data)
}

fn engine(odms: &Arc<Odms>, strategy: Strategy) -> QueryEngine {
    QueryEngine::new(
        Arc::clone(odms),
        EngineConfig { strategy, num_servers: 4, ..Default::default() },
    )
}

#[test]
fn lost_region_surfaces_a_storage_error_not_a_panic() {
    let (odms, obj, _) = small_world();
    // Simulate storage loss of one data region.
    assert!(odms.store().remove(RegionId::new(obj, 3)));
    let eng = engine(&odms, Strategy::Histogram);
    let q = PdcQuery::create(obj, QueryOp::Gt, 0.0f32); // touches every region
    let err = eng.run(&q).unwrap_err();
    assert!(matches!(err, PdcError::NoSuchRegion(_)), "got {err:?}");
}

#[test]
fn lost_index_region_rebuilds_online_without_changing_hits() {
    let (odms, obj, data) = small_world();
    let meta = odms.meta().get(obj).unwrap();
    let idx_obj = meta.index_object.unwrap();
    assert!(odms.store().remove(RegionId::new(idx_obj, 0)));
    // Histogram strategy is unaffected...
    let eng = engine(&odms, Strategy::Histogram);
    let q = PdcQuery::create(obj, QueryOp::Gt, 0.0f32);
    let expect = data.iter().filter(|&&v| v > 0.0).count() as u64;
    assert_eq!(eng.get_nhits(&q).unwrap(), expect);
    // ...the index strategy answers the first probe by an exact scan and
    // rebuilds the missing index region in place (the same lazy path a
    // streaming append takes for not-yet-indexed tail regions).
    let eng = engine(&odms, Strategy::HistogramIndex);
    let out = eng.run(&q).unwrap();
    assert_eq!(out.nhits, expect, "fallback scan must stay exact");
    assert_eq!(out.integrity.fallback_regions, 1);
    assert_eq!(out.integrity.aux_rebuilds, 1);
    // The rebuild restored the region: the next run probes cleanly.
    let again = eng.run(&q).unwrap();
    assert_eq!(again.nhits, expect);
    assert_eq!(again.integrity.fallback_regions, 0, "{:?}", again.integrity);
}

#[test]
fn undecodable_index_bytes_fall_back_to_exact_scan_and_rebuild() {
    let (odms, obj, data) = small_world();
    let meta = odms.meta().get(obj).unwrap();
    let idx_obj = meta.index_object.unwrap();
    // Overwrite one index region with garbage that passes the checksum
    // (put recomputes it) but cannot decode: the codec layer is the last
    // line of defense, and the query degrades to scanning that region.
    odms.store().put(
        RegionId::new(idx_obj, 1),
        pdc_suite::storage::StoredPayload::Raw(pdc_suite::storage::bytes::Bytes::from_static(b"garbage")),
        pdc_suite::storage::StorageTier::Pfs,
    );
    let eng = engine(&odms, Strategy::HistogramIndex);
    let q = PdcQuery::create(obj, QueryOp::Gt, 0.0f32);
    let expect = data.iter().filter(|&&v| v > 0.0).count() as u64;
    let out = eng.run(&q).unwrap();
    assert_eq!(out.nhits, expect, "fallback scan must stay exact");
    assert_eq!(out.integrity.fallback_regions, 1);
    assert_eq!(out.integrity.aux_rebuilds, 1);
    // The rebuild restored a decodable index: the next run is clean.
    let again = eng.run(&q).unwrap();
    assert_eq!(again.nhits, expect);
    assert_eq!(again.integrity.fallback_regions, 0, "{:?}", again.integrity);
}

#[test]
fn sorted_strategy_without_replica_falls_back_to_histogram_path() {
    let odms = Arc::new(Odms::new(4));
    let c = odms.create_container("edge");
    let data: Vec<f32> = (0..10_000).map(|i| i as f32).collect();
    let opts = ImportOptions { region_bytes: 4 << 10, ..Default::default() }; // no replica
    let obj = odms.import_array(c, "v", TypedVec::Float(data), &opts).unwrap().object;
    let eng = engine(&odms, Strategy::SortedHistogram);
    let q = PdcQuery::range_open(obj, 100.0f32, 200.0f32);
    assert_eq!(eng.get_nhits(&q).unwrap(), 99);
}

#[test]
fn zero_cache_budget_still_answers_correctly() {
    let (odms, obj, data) = small_world();
    let eng = QueryEngine::new(
        Arc::clone(&odms),
        EngineConfig {
            strategy: Strategy::Histogram,
            num_servers: 4,
            cache_bytes_per_server: 0,
            ..Default::default()
        },
    );
    let q = PdcQuery::range_open(obj, 2.0f32, 3.0f32);
    let expect = data.iter().filter(|&&v| v > 2.0 && v < 3.0).count() as u64;
    let first = eng.run(&q).unwrap();
    let second = eng.run(&q).unwrap();
    assert_eq!(first.nhits, expect);
    // nothing cached: the second run re-reads from the PFS
    assert!(second.io.pfs_bytes_read > 0);
}

#[test]
fn empty_and_always_true_queries() {
    let (odms, obj, data) = small_world();
    let eng = engine(&odms, Strategy::Histogram);
    // Contradiction: no hits, no storage reads needed.
    let q = PdcQuery::create(obj, QueryOp::Gt, 100.0f32)
        .and(PdcQuery::create(obj, QueryOp::Lt, -100.0f32));
    let out = eng.run(&q).unwrap();
    assert_eq!(out.nhits, 0);
    assert_eq!(out.io.pfs_bytes_read, 0);
    // Tautology-ish: everything matches.
    let q = PdcQuery::create(obj, QueryOp::Gte, -1.0e9f32);
    assert_eq!(eng.get_nhits(&q).unwrap(), data.len() as u64);
}

#[test]
fn single_element_object() {
    let odms = Arc::new(Odms::new(2));
    let c = odms.create_container("tiny");
    let opts = ImportOptions { build_index: true, build_sorted: true, ..Default::default() };
    let obj = odms.import_array(c, "one", TypedVec::Float(vec![42.0]), &opts).unwrap().object;
    for strategy in [
        Strategy::FullScan,
        Strategy::Histogram,
        Strategy::HistogramIndex,
        Strategy::SortedHistogram,
    ] {
        let eng = engine(&odms, strategy);
        assert_eq!(eng.get_nhits(&PdcQuery::create(obj, QueryOp::Eq, 42.0f32)).unwrap(), 1);
        assert_eq!(eng.get_nhits(&PdcQuery::create(obj, QueryOp::Gt, 42.0f32)).unwrap(), 0);
    }
}

#[test]
fn more_servers_than_regions() {
    let odms = Arc::new(Odms::new(2));
    let c = odms.create_container("tiny");
    let data: Vec<f32> = (0..1000).map(|i| i as f32).collect();
    let opts = ImportOptions { region_bytes: 2048, ..Default::default() }; // 2 regions
    let obj = odms.import_array(c, "v", TypedVec::Float(data), &opts).unwrap().object;
    let eng = QueryEngine::new(
        Arc::clone(&odms),
        EngineConfig { strategy: Strategy::Histogram, num_servers: 64, ..Default::default() },
    );
    let q = PdcQuery::create(obj, QueryOp::Lt, 10.0f32);
    assert_eq!(eng.get_nhits(&q).unwrap(), 10);
}

#[test]
fn get_data_batch_respects_batch_size() {
    let (odms, obj, _) = small_world();
    let eng = engine(&odms, Strategy::Histogram);
    let q = PdcQuery::create(obj, QueryOp::Lt, 3.0f32);
    let out = eng.run(&q).unwrap();
    assert!(out.nhits > 500);
    let batches = eng.get_data_batch(&out, obj, 100).unwrap();
    for (i, b) in batches.iter().enumerate() {
        let is_last = i + 1 == batches.len();
        let len = b.data.len() as u64;
        if is_last {
            assert!(len <= 100 && len > 0);
        } else {
            assert_eq!(len, 100, "batch {i}");
        }
    }
    let total: u64 = batches.iter().map(|b| b.data.len() as u64).sum();
    assert_eq!(total, out.nhits);
}

// ---------------------------------------------------------------------------
// Fault injection: crashes, transient errors, slowdowns, retry budget.
// ---------------------------------------------------------------------------

use pdc_suite::server::{FaultPlan, ServerFaultSpec};
use pdc_suite::storage::SimDuration;

const ALL_STRATEGIES: [Strategy; 4] = [
    Strategy::FullScan,
    Strategy::Histogram,
    Strategy::HistogramIndex,
    Strategy::SortedHistogram,
];

fn fault_engine(odms: &Arc<Odms>, strategy: Strategy, n: u32, plan: FaultPlan) -> QueryEngine {
    QueryEngine::new(
        Arc::clone(odms),
        EngineConfig {
            strategy,
            num_servers: n,
            fault_plan: Some(plan),
            ..Default::default()
        },
    )
}

/// The acceptance criterion: any fault plan leaving at least one server
/// alive yields results bit-identical to the fault-free run — for every
/// strategy, killing 1, N/2, and N−1 of the N servers.
#[test]
fn killing_servers_never_changes_results() {
    let (odms, obj, data) = small_world();
    let n = 6u32;
    let q = PdcQuery::range_open(obj, 2.0f32, 7.5f32);
    let expect = data.iter().filter(|&&v| v > 2.0 && v < 7.5).count() as u64;
    for strategy in ALL_STRATEGIES {
        let healthy = QueryEngine::new(
            Arc::clone(&odms),
            EngineConfig { strategy, num_servers: n, ..Default::default() },
        )
        .run(&q)
        .unwrap();
        assert_eq!(healthy.nhits, expect, "{strategy}: healthy baseline wrong");
        for kills in [1u32, n / 2, n - 1] {
            let victims: Vec<u32> = (0..kills).collect();
            let out = fault_engine(&odms, strategy, n, FaultPlan::kill(&victims))
                .run(&q)
                .unwrap_or_else(|e| panic!("{strategy} with {kills} dead servers: {e}"));
            assert_eq!(out.nhits, healthy.nhits, "{strategy}, {kills} killed: nhits");
            assert_eq!(
                out.selection, healthy.selection,
                "{strategy}, {kills} killed: selection diverged"
            );
        }
    }
}

/// Seed-picked victims (the `--kill-servers` path) preserve results too,
/// and the outcome reports who failed and how many rounds it took.
#[test]
fn kill_count_reports_failures_and_recovers() {
    let (odms, obj, _) = small_world();
    let n = 6u32;
    let q = PdcQuery::create(obj, QueryOp::Gte, -1.0f32); // touches every region
    let healthy = QueryEngine::new(
        Arc::clone(&odms),
        EngineConfig { strategy: Strategy::Histogram, num_servers: n, ..Default::default() },
    )
    .run(&q)
    .unwrap();
    let plan = FaultPlan::kill_count(n - 1, n, 0xFA11);
    let out = fault_engine(&odms, Strategy::Histogram, n, plan.clone()).run(&q).unwrap();
    assert_eq!(out.nhits, healthy.nhits);
    assert_eq!(out.selection, healthy.selection);
    let mut expect_failed = plan.crashed_servers();
    expect_failed.sort_unstable();
    assert_eq!(out.failed_servers, expect_failed);
    assert!(out.retry_rounds >= 1, "dead servers must force a retry round");
    assert!(out.breakdown.recovery > SimDuration::ZERO);
    assert_eq!(out.breakdown.total(), healthy.breakdown.total() + out.breakdown.recovery);
}

/// Transient faults on *every* server still recover within the default
/// retry budget — the erroring servers stay reassignment candidates and
/// succeed once their fault schedule is exhausted.
#[test]
fn transient_errors_on_all_servers_recover() {
    let (odms, obj, data) = small_world();
    let n = 4u32;
    let mut plan = FaultPlan::new();
    for s in 0..n {
        plan = plan.with_spec(s, ServerFaultSpec { transient_errors: 2, ..Default::default() });
    }
    let q = PdcQuery::range_open(obj, 1.0f32, 4.0f32);
    let expect = data.iter().filter(|&&v| v > 1.0 && v < 4.0).count() as u64;
    let out = fault_engine(&odms, Strategy::Histogram, n, plan).run(&q).unwrap();
    assert_eq!(out.nhits, expect);
    assert!(out.retry_rounds >= 1);
    assert!(!out.failed_servers.is_empty());
}

/// Exhausting the retry budget is a typed error, not a panic.
#[test]
fn retry_budget_exhaustion_is_a_typed_error() {
    let (odms, obj, _) = small_world();
    let n = 3u32;
    let mut plan = FaultPlan::new();
    for s in 0..n {
        plan = plan.with_spec(s, ServerFaultSpec { transient_errors: 50, ..Default::default() });
    }
    let eng = QueryEngine::new(
        Arc::clone(&odms),
        EngineConfig {
            strategy: Strategy::Histogram,
            num_servers: n,
            fault_plan: Some(plan),
            max_retries: 1,
            ..Default::default()
        },
    );
    let err = eng.run(&PdcQuery::create(obj, QueryOp::Gt, 0.0f32)).unwrap_err();
    assert!(matches!(err, PdcError::RetriesExhausted { .. }), "got {err:?}");
}

/// Killing every server is unrecoverable and surfaces as a typed
/// `ServerFailed`, not a panic or a hang.
#[test]
fn killing_all_servers_is_a_typed_error() {
    let (odms, obj, _) = small_world();
    let n = 4u32;
    let victims: Vec<u32> = (0..n).collect();
    let eng = fault_engine(&odms, Strategy::FullScan, n, FaultPlan::kill(&victims));
    let err = eng.run(&PdcQuery::create(obj, QueryOp::Gt, 0.0f32)).unwrap_err();
    assert!(matches!(err, PdcError::ServerFailed { .. }), "got {err:?}");
}

/// A crashed server stays dead for subsequent queries (no retry rounds
/// needed: its slots are reassigned up front) until `reset_state` rearms
/// the fault schedule.
#[test]
fn crashed_servers_stay_dead_until_reset() {
    let (odms, obj, _) = small_world();
    let eng = fault_engine(&odms, Strategy::Histogram, 4, FaultPlan::kill(&[1]));
    let q = PdcQuery::range_open(obj, 2.0f32, 7.5f32);
    let first = eng.run(&q).unwrap();
    assert_eq!(first.failed_servers, vec![1]);
    assert!(first.retry_rounds >= 1);
    let second = eng.run(&q).unwrap();
    assert_eq!(second.nhits, first.nhits);
    assert_eq!(second.retry_rounds, 0, "already-dead server needs no new retry");
    eng.reset_state();
    let third = eng.run(&q).unwrap();
    assert_eq!(third.nhits, first.nhits);
    assert_eq!(third.failed_servers, vec![1], "reset rearms the crash schedule");
    assert!(third.retry_rounds >= 1);
}

/// A slowed-down server changes only the simulated timeline, never the
/// result; with a finite client timeout and healthy peers it is
/// quarantined and its work reassigned.
#[test]
fn slow_server_inflates_time_not_results() {
    let (odms, obj, _) = small_world();
    let n = 4u32;
    let q = PdcQuery::create(obj, QueryOp::Gte, -1.0f32);
    let healthy = QueryEngine::new(
        Arc::clone(&odms),
        EngineConfig { strategy: Strategy::Histogram, num_servers: n, ..Default::default() },
    )
    .run(&q)
    .unwrap();
    // No timeout: the slow server is waited for.
    let plan = FaultPlan::new()
        .with_spec(0, ServerFaultSpec { slowdown: 10.0, ..Default::default() });
    let waited = fault_engine(&odms, Strategy::Histogram, n, plan.clone()).run(&q).unwrap();
    assert_eq!(waited.selection, healthy.selection);
    assert!(waited.elapsed > healthy.elapsed);
    assert!(waited.failed_servers.is_empty());
    // Finite timeout above the healthy per-server max but below the
    // slowed one: the slow server is abandoned and its slot reassigned.
    let healthy_max = healthy.per_server.iter().copied().max().unwrap();
    let eng = QueryEngine::new(
        Arc::clone(&odms),
        EngineConfig {
            strategy: Strategy::Histogram,
            num_servers: n,
            fault_plan: Some(plan),
            server_timeout: healthy_max * 2.0,
            ..Default::default()
        },
    );
    let out = eng.run(&q).unwrap();
    assert_eq!(out.selection, healthy.selection);
    assert_eq!(out.failed_servers, vec![0], "slow server should be quarantined");
    assert!(out.retry_rounds >= 1);
    assert!(out.breakdown.recovery > SimDuration::ZERO);
}

// ---------------------------------------------------------------------------
// K-way replication: kill matrix, failover accounting, elastic membership.
// ---------------------------------------------------------------------------

const FIVE_STRATEGIES: [Strategy; 5] = [
    Strategy::FullScan,
    Strategy::Histogram,
    Strategy::HistogramIndex,
    Strategy::SortedHistogram,
    Strategy::Adaptive,
];

fn replicated_engine(
    odms: &Arc<Odms>,
    strategy: Strategy,
    n: u32,
    replicas: u32,
    plan: Option<FaultPlan>,
) -> QueryEngine {
    QueryEngine::new(
        Arc::clone(odms),
        EngineConfig { strategy, num_servers: n, replicas, fault_plan: plan, ..Default::default() },
    )
}

/// The replication acceptance matrix: for every strategy, k ∈ {1, 2, 3}
/// and killed ∈ {1, N−2, N−1}, a run either returns results bit-identical
/// to the unkilled unreplicated reference, or — exactly when some slot's
/// entire replica set is dead — fails with the typed `RetriesExhausted`.
/// The expectation is computed from the engine's own replica sets, never
/// hardcoded.
#[test]
fn replication_kill_matrix_is_bit_identical_or_typed() {
    let (odms, obj, data) = small_world();
    let n = 6u32;
    let q = PdcQuery::range_open(obj, 2.0f32, 7.5f32);
    let expect = data.iter().filter(|&&v| v > 2.0 && v < 7.5).count() as u64;
    let reference = QueryEngine::new(
        Arc::clone(&odms),
        EngineConfig { strategy: Strategy::Histogram, num_servers: n, ..Default::default() },
    )
    .run(&q)
    .unwrap();
    assert_eq!(reference.nhits, expect);
    for strategy in FIVE_STRATEGIES {
        for k in [1u32, 2, 3] {
            for kills in [1u32, n - 2, n - 1] {
                let victims: Vec<u32> = (0..kills).collect();
                let eng =
                    replicated_engine(&odms, strategy, n, k, Some(FaultPlan::kill(&victims)));
                // A slot is doomed iff every one of its replicas is a
                // victim. k = 1 has no placement: the legacy reassignment
                // path recovers as long as one server lives.
                let doomed = eng
                    .replica_sets()
                    .map(|sets| {
                        sets.iter().any(|rs| rs.iter().all(|s| victims.contains(s)))
                    })
                    .unwrap_or(false);
                match eng.run(&q) {
                    Ok(out) => {
                        assert!(
                            !doomed,
                            "{strategy} k={k} kills={kills}: doomed slot but run succeeded"
                        );
                        assert_eq!(
                            out.selection, reference.selection,
                            "{strategy} k={k} kills={kills}: selection diverged"
                        );
                        assert_eq!(out.nhits, expect);
                    }
                    Err(e) => {
                        assert!(
                            doomed,
                            "{strategy} k={k} kills={kills}: live replicas but failed: {e}"
                        );
                        assert!(
                            matches!(e, PdcError::RetriesExhausted { .. }),
                            "{strategy} k={k} kills={kills}: got {e:?}"
                        );
                    }
                }
            }
        }
    }
}

/// A healthy replicated run does exactly the unreplicated run's work:
/// anchor routing keeps each server's region set identical to k = 1, so
/// selections, I/O, and kernel work match and both fault lanes stay zero.
#[test]
fn replication_healthy_run_matches_unreplicated_work() {
    let (odms, obj, _) = small_world();
    let n = 6u32;
    let q = PdcQuery::range_open(obj, 2.0f32, 7.5f32);
    let base = QueryEngine::new(
        Arc::clone(&odms),
        EngineConfig { strategy: Strategy::Histogram, num_servers: n, ..Default::default() },
    )
    .run(&q)
    .unwrap();
    let out = replicated_engine(&odms, Strategy::Histogram, n, 2, None).run(&q).unwrap();
    assert_eq!(out.selection, base.selection);
    assert_eq!(out.io, base.io);
    assert_eq!(out.work, base.work);
    assert_eq!(out.breakdown.recovery, SimDuration::ZERO);
    assert_eq!(out.breakdown.failover, SimDuration::ZERO);
    assert_eq!(out.rebuild_regions, 0);
}

/// With a placement active, a kill charges the (cheap) `failover` lane
/// instead of `recovery`: surviving replicas each absorb a small slice of
/// the dead server's slots, the breakdown invariant holds against the
/// same-k healthy baseline, and the cost undercuts the unreplicated
/// reassign-and-rescan recovery for the same kill.
#[test]
fn replication_failover_lane_replaces_recovery() {
    let (odms, obj, _) = small_world();
    let n = 6u32;
    let q = PdcQuery::create(obj, QueryOp::Gte, -1.0f32); // touches every region
    let healthy = replicated_engine(&odms, Strategy::Histogram, n, 2, None).run(&q).unwrap();
    assert_eq!(healthy.breakdown.failover, SimDuration::ZERO);
    let out = replicated_engine(&odms, Strategy::Histogram, n, 2, Some(FaultPlan::kill(&[1])))
        .run(&q)
        .unwrap();
    assert_eq!(out.selection, healthy.selection);
    assert_eq!(out.failed_servers, vec![1]);
    assert_eq!(out.breakdown.recovery, SimDuration::ZERO, "placement must not reassign");
    assert!(out.breakdown.failover > SimDuration::ZERO);
    assert_eq!(out.breakdown.total(), healthy.breakdown.total() + out.breakdown.failover);
    // The point of fine-grained replica failover: far cheaper than the
    // unreplicated path's whole-slot reassignment for the same kill.
    let unrep = fault_engine(&odms, Strategy::Histogram, n, FaultPlan::kill(&[1]))
        .run(&q)
        .unwrap();
    assert!(unrep.breakdown.recovery > out.breakdown.failover);
}

/// After a replicated run observes a crash, redundancy is rebuilt in the
/// background: the dead member is evicted, its slots' regions are copied
/// to replacement replicas (reported on the outcome), and the next query
/// runs clean — no retries, no failover, same bits.
#[test]
fn replication_rebuild_restores_redundancy_after_crash() {
    let (odms, obj, _) = small_world();
    let n = 6u32;
    let q = PdcQuery::range_open(obj, 2.0f32, 7.5f32);
    let eng = replicated_engine(&odms, Strategy::Histogram, n, 2, Some(FaultPlan::kill(&[2])));
    let first = eng.run(&q).unwrap();
    assert_eq!(first.failed_servers, vec![2]);
    assert!(first.rebuild_regions > 0, "crash must trigger a redundancy rebuild");
    assert!(first.rebuild_bytes > 0);
    assert!(!eng.placement_members().unwrap().contains(&2), "dead member evicted");
    let second = eng.run(&q).unwrap();
    assert_eq!(second.selection, first.selection);
    assert!(second.failed_servers.is_empty(), "evicted server receives no work");
    assert_eq!(second.retry_rounds, 0);
    assert_eq!(second.breakdown.failover, SimDuration::ZERO);
    assert_eq!(second.rebuild_regions, 0);
}

/// Elastic membership under a live query series: join a fresh server,
/// then retire one of the originals — every run in between returns the
/// same bits, and the reports carry the live-migration volume.
#[test]
fn replication_join_and_leave_never_change_results() {
    let (odms, obj, data) = small_world();
    let n = 4u32;
    let q = PdcQuery::range_open(obj, 1.0f32, 6.0f32);
    let expect = data.iter().filter(|&&v| v > 1.0 && v < 6.0).count() as u64;
    let eng = replicated_engine(&odms, Strategy::Histogram, n, 2, None);
    let before = eng.run(&q).unwrap();
    assert_eq!(before.nhits, expect);

    let joined = eng.join_server().unwrap();
    assert_eq!(joined.server, n, "fresh server gets the next stable id");
    assert!(joined.slots_changed > 0, "HRW must hand the newcomer some replicas");
    assert!(joined.regions_copied > 0 && joined.bytes_copied > 0);
    assert!(eng.placement_members().unwrap().contains(&n));
    let mid = eng.run(&q).unwrap();
    assert_eq!(mid.selection, before.selection);

    let left = eng.leave_server(0).unwrap();
    assert_eq!(left.server, 0);
    assert!(left.regions_copied > 0, "the leaver's replicas re-home with a copy");
    assert!(!eng.placement_members().unwrap().contains(&0));
    let after = eng.run(&q).unwrap();
    assert_eq!(after.selection, before.selection);

    // Typed guard rails: double-leave is invalid, and membership is a
    // replication feature.
    assert!(matches!(eng.leave_server(0), Err(PdcError::InvalidQuery(_))));
    let unrep = QueryEngine::new(
        Arc::clone(&odms),
        EngineConfig { strategy: Strategy::Histogram, num_servers: n, ..Default::default() },
    );
    assert!(unrep.replica_sets().is_none());
    assert!(matches!(unrep.join_server(), Err(PdcError::MissingPrerequisite(_))));
}
