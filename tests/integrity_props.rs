//! Property-based data-plane integrity testing: deterministic corruption
//! of stored regions and auxiliary structures never changes what a query
//! returns — only its integrity counters and the `integrity` cost lane —
//! and snapshot restore survives torn or bit-flipped frames without ever
//! panicking.

use pdc_suite::odms::{ImportOptions, MetadataSnapshot, Odms, SnapshotJournal};
use pdc_suite::query::{EngineConfig, PdcQuery, QueryEngine, Strategy};
use pdc_suite::server::{CorruptionSpec, FaultPlan};
use pdc_suite::storage::bytes::Bytes;
use pdc_suite::types::{ObjectId, PdcError, TypedVec};
use proptest::prelude::*;
use std::sync::Arc;

const N: usize = 3_000;

fn build_world(seed: u32) -> (Arc<Odms>, ObjectId, Vec<f32>) {
    let s = seed as f32;
    let data: Vec<f32> =
        (0..N).map(|i| ((i as f32 * 0.003 + s).sin() + 1.0) * 5.0).collect();
    let odms = Arc::new(Odms::new(4));
    let c = odms.create_container("integrity-prop");
    let opts = ImportOptions {
        region_bytes: 2048,
        build_index: true,
        build_sorted: true,
        ..Default::default()
    };
    let obj = odms.import_array(c, "v", TypedVec::Float(data.clone()), &opts).unwrap().object;
    (odms, obj, data)
}

fn engine(
    odms: &Arc<Odms>,
    strategy: Strategy,
    servers: u32,
    plan: Option<FaultPlan>,
) -> QueryEngine {
    QueryEngine::new(
        Arc::clone(odms),
        EngineConfig { strategy, num_servers: servers, fault_plan: plan, ..Default::default() },
    )
}

const ALL_STRATEGIES: [Strategy; 4] = [
    Strategy::FullScan,
    Strategy::Histogram,
    Strategy::HistogramIndex,
    Strategy::SortedHistogram,
];

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    /// The acceptance criterion: corrupting up to 20% of the data regions
    /// (and up to half the aux structures) of every object yields results
    /// bit-identical to the uncorrupted run, under every strategy.
    #[test]
    fn corruption_never_changes_results(
        world_seed in 0u32..4,
        corrupt_seed in any::<u64>(),
        servers in 2u32..6,
        data_frac in 0.0f64..0.2,
        aux_frac in 0.0f64..0.5,
        lo in 0.0f32..5.0,
        width in 0.1f32..5.0,
    ) {
        let (odms, obj, data) = build_world(world_seed);
        let hi = lo + width;
        let q = PdcQuery::range_open(obj, lo, hi);
        let expect = data.iter().filter(|&&v| v > lo && v < hi).count() as u64;
        let plan = FaultPlan::new()
            .with_corruption(CorruptionSpec::new(data_frac, aux_frac, corrupt_seed));
        for strategy in ALL_STRATEGIES {
            let clean = engine(&odms, strategy, servers, None).run(&q).unwrap();
            prop_assert_eq!(clean.nhits, expect, "{}: clean baseline wrong", strategy);
            prop_assert!(!clean.integrity.any(), "{}: clean run saw integrity events", strategy);
            let corrupted = engine(&odms, strategy, servers, Some(plan.clone()))
                .run(&q)
                .unwrap_or_else(|e| panic!("{strategy} seed {corrupt_seed}: {e}"));
            prop_assert_eq!(corrupted.nhits, clean.nhits, "{} seed {}", strategy, corrupt_seed);
            prop_assert_eq!(
                &corrupted.selection, &clean.selection,
                "{} seed {}: selection diverged", strategy, corrupt_seed
            );
        }
    }

    /// The damage timeline is deterministic: two engines configured with
    /// the same corruption spec report identical integrity counters and
    /// identical cost breakdowns — including the integrity lane.
    #[test]
    fn same_corruption_seed_same_costs(
        world_seed in 0u32..4,
        corrupt_seed in any::<u64>(),
        servers in 2u32..6,
        data_frac in 0.0f64..0.2,
    ) {
        let (odms, obj, _) = build_world(world_seed);
        let q = PdcQuery::range_open(obj, 1.0f32, 7.0f32);
        let plan = FaultPlan::new()
            .with_corruption(CorruptionSpec::new(data_frac, 0.4, corrupt_seed));
        for strategy in ALL_STRATEGIES {
            let a = engine(&odms, strategy, servers, Some(plan.clone())).run(&q).unwrap();
            let b = engine(&odms, strategy, servers, Some(plan.clone())).run(&q).unwrap();
            prop_assert_eq!(a.integrity, b.integrity, "{} seed {}", strategy, corrupt_seed);
            prop_assert_eq!(a.breakdown, b.breakdown, "{} seed {}", strategy, corrupt_seed);
            prop_assert_eq!(a.elapsed, b.elapsed, "{} seed {}", strategy, corrupt_seed);
            prop_assert_eq!(&a.per_server, &b.per_server, "{} seed {}", strategy, corrupt_seed);
        }
    }

    /// Corruption composes with server faults: a plan drawing crashes,
    /// slowdowns, transient errors AND corruption still returns the exact
    /// clean-run results.
    #[test]
    fn corruption_composes_with_server_faults(
        world_seed in 0u32..4,
        seed in any::<u64>(),
        servers in 2u32..6,
    ) {
        let (odms, obj, _) = build_world(world_seed);
        let q = PdcQuery::range_open(obj, 2.0f32, 6.0f32);
        let plan = FaultPlan::seeded_with_corruption(seed, servers, 0.1, 0.3);
        for strategy in ALL_STRATEGIES {
            let clean = engine(&odms, strategy, servers, None).run(&q).unwrap();
            let stressed = engine(&odms, strategy, servers, Some(plan.clone()))
                .run(&q)
                .unwrap_or_else(|e| panic!("{strategy} seed {seed}: {e}"));
            prop_assert_eq!(&stressed.selection, &clean.selection,
                "{} seed {}", strategy, seed);
        }
    }
}

/// Deterministic end-to-end check that corruption is actually detected
/// and paid for: a meaningful fraction must produce nonzero integrity
/// counters, a nonzero integrity lane, and a second (clean) run with
/// neither.
#[test]
fn corruption_is_detected_and_charged_then_heals() {
    use pdc_suite::storage::SimDuration;
    let (odms, obj, data) = build_world(1);
    let q = PdcQuery::range_open(obj, 2.0f32, 7.0f32);
    let expect = data.iter().filter(|&&v| v > 2.0 && v < 7.0).count() as u64;
    let plan = FaultPlan::new().with_corruption(CorruptionSpec::new(0.2, 0.5, 7));
    let eng = engine(&odms, Strategy::Histogram, 4, Some(plan));
    let first = eng.run(&q).unwrap();
    assert_eq!(first.nhits, expect);
    assert!(first.integrity.checksum_failures > 0, "{:?}", first.integrity);
    assert_eq!(first.integrity.repaired_regions, first.integrity.checksum_failures);
    assert!(first.breakdown.integrity > SimDuration::ZERO);
    assert_eq!(
        first.breakdown.total(),
        first.breakdown.io
            + first.breakdown.cpu
            + first.breakdown.net
            + first.breakdown.recovery
            + first.breakdown.integrity
    );
    // Everything was repaired in place: the second run is clean.
    let second = eng.run(&q).unwrap();
    assert_eq!(second.nhits, expect);
    assert!(!second.integrity.any(), "{:?}", second.integrity);
    assert_eq!(second.breakdown.integrity, SimDuration::ZERO);
}

// ---------------------------------------------------------------------------
// Snapshot robustness: torn writes and bit flips (satellite of the same
// integrity story — the metadata snapshot is the other durable artifact).
// ---------------------------------------------------------------------------

fn sample_snapshot() -> (Arc<Odms>, MetadataSnapshot) {
    let (odms, _, _) = build_world(0);
    let snap = odms.meta().snapshot();
    (odms, snap)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// A truncated (torn-write) latest frame never panics: the journal
    /// recovers from the newest older frame that verifies.
    #[test]
    fn torn_latest_frame_recovers_from_journal(
        cut_frac in 0.0f64..1.0,
        keep in 2usize..5,
    ) {
        let (odms, snap) = sample_snapshot();
        let good = snap.to_bytes();
        let cut = ((good.len() as f64) * cut_frac) as usize;
        let mut journal = SnapshotJournal::new(keep);
        journal.append(&snap);
        journal.push_raw(Bytes::from(good[..cut.min(good.len() - 1)].to_vec()));
        let (recovered, skipped) = journal.recover().unwrap();
        prop_assert_eq!(skipped, 1, "torn latest frame must be skipped");
        prop_assert_eq!(&recovered, &snap);
        // And the recovered snapshot restores onto a live system.
        prop_assert_eq!(journal.restore_into(&odms).unwrap(), 1);
    }

    /// Any single bit flip anywhere in a snapshot frame is caught by the
    /// frame validation (magic/format/length) or the checksum — a typed
    /// `SnapshotCorrupt`, never a panic, never a silently wrong restore.
    #[test]
    fn bit_flipped_frame_is_typed_error(
        pos_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let (_, snap) = sample_snapshot();
        let good = snap.to_bytes();
        let pos = (((good.len() - 1) as f64) * pos_frac) as usize;
        let mut bad = good.to_vec();
        bad[pos] ^= 1 << bit;
        match MetadataSnapshot::from_bytes(&bad) {
            Err(PdcError::SnapshotCorrupt(_)) => {}
            Err(other) => prop_assert!(false, "wrong error type: {other:?}"),
            Ok(_) => prop_assert!(false, "flip at byte {pos} bit {bit} went undetected"),
        }
    }

    /// A journal holding only damaged frames reports a typed error.
    #[test]
    fn journal_of_damaged_frames_is_typed_error(
        cut_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let (_, snap) = sample_snapshot();
        let good = snap.to_bytes();
        let cut = ((good.len() as f64) * cut_frac) as usize;
        let mut flipped = good.to_vec();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 1 << bit;
        let mut journal = SnapshotJournal::new(4);
        journal.push_raw(Bytes::from(good[..cut.min(good.len() - 1)].to_vec()));
        journal.push_raw(Bytes::from(flipped));
        match journal.recover() {
            Err(PdcError::SnapshotCorrupt(_)) => {}
            other => prop_assert!(false, "expected SnapshotCorrupt, got {other:?}"),
        }
    }
}
