//! The deep memory hierarchy end to end: staging objects across tiers
//! changes simulated cost but never answers.

use pdc_suite::odms::{ImportOptions, Odms};
use pdc_suite::query::{EngineConfig, PdcQuery, QueryEngine, Strategy};
use pdc_suite::storage::StorageTier;
use pdc_suite::types::{ObjectId, QueryOp, TypedVec};
use std::sync::Arc;

fn world() -> (Arc<Odms>, ObjectId, Vec<f32>) {
    let odms = Arc::new(Odms::new(4));
    let c = odms.create_container("tiers");
    let data: Vec<f32> = (0..40_000).map(|i| ((i * 17) % 400) as f32 / 10.0).collect();
    let opts = ImportOptions { region_bytes: 8192, ..Default::default() };
    let obj = odms.import_array(c, "v", TypedVec::Float(data.clone()), &opts).unwrap().object;
    (odms, obj, data)
}

/// Engine with caching disabled so the tier cost is what we measure.
fn engine(odms: &Arc<Odms>) -> QueryEngine {
    QueryEngine::new(
        Arc::clone(odms),
        EngineConfig {
            strategy: Strategy::Histogram,
            num_servers: 4,
            cache_bytes_per_server: 0,
            ..Default::default()
        },
    )
}

#[test]
fn tier_ladder_orders_simulated_cost() {
    let q_of = |obj| PdcQuery::create(obj, QueryOp::Lt, 10.0f32);
    let mut elapsed = Vec::new();
    let mut nhits = Vec::new();
    for tier in [StorageTier::Pfs, StorageTier::BurstBuffer, StorageTier::Dram] {
        let (odms, obj, _) = world();
        odms.stage_object(obj, tier).unwrap();
        let out = engine(&odms).run(&q_of(obj)).unwrap();
        elapsed.push(out.elapsed);
        nhits.push(out.nhits);
    }
    assert_eq!(nhits[0], nhits[1]);
    assert_eq!(nhits[1], nhits[2]);
    assert!(
        elapsed[0] > elapsed[1] && elapsed[1] > elapsed[2],
        "PFS {} > BB {} > DRAM {} expected",
        elapsed[0],
        elapsed[1],
        elapsed[2]
    );
}

#[test]
fn selective_staging_speeds_up_only_matching_queries() {
    let (odms, obj, _) = world();
    let hot = pdc_suite::types::Interval::open(0.0, 10.0);
    odms.stage_matching_regions(obj, &hot, StorageTier::BurstBuffer).unwrap();
    // Values cycle 0..40 within each region, so every region matches the
    // hot interval; a cold interval query is unaffected only if its
    // regions were not staged — here all were, so both get the benefit.
    // Use two fresh worlds to compare a staged vs. unstaged cold query.
    let (odms2, obj2, _) = world();
    let q = PdcQuery::create(obj, QueryOp::Lt, 5.0f32);
    let q2 = PdcQuery::create(obj2, QueryOp::Lt, 5.0f32);
    let staged = engine(&odms).run(&q).unwrap();
    let unstaged = engine(&odms2).run(&q2).unwrap();
    assert_eq!(staged.nhits, unstaged.nhits);
    assert!(staged.elapsed < unstaged.elapsed);
}

#[test]
fn metadata_snapshot_survives_engine_restart() {
    // Snapshot, rebuild a "restarted" system over the same store, and
    // answer queries identically — the §II fault-tolerance story.
    let (odms, obj, data) = world();
    let q = PdcQuery::range_open(obj, 5.0f32, 15.0f32);
    let before = engine(&odms).run(&q).unwrap();

    let snap = odms.meta().snapshot();
    let restarted = Arc::new(Odms::new(4));
    let meta = odms.meta().get(obj).unwrap();
    for r in 0..meta.num_regions() {
        let rid = pdc_suite::types::RegionId::new(obj, r);
        let (payload, tier) = odms.store().get(rid).unwrap();
        restarted.store().put(rid, payload, tier);
    }
    restarted.restore_metadata(&snap).unwrap();

    let after = engine(&restarted).run(&q).unwrap();
    assert_eq!(after.selection, before.selection);
    let expect = data.iter().filter(|&&v| v > 5.0 && v < 15.0).count() as u64;
    assert_eq!(after.nhits, expect);
}

#[test]
fn query_tag_api_resolves_with_timing() {
    let odms = Arc::new(Odms::new(4));
    let c = odms.create_container("tags");
    for i in 0..50 {
        let mut attrs = std::collections::BTreeMap::new();
        attrs.insert(
            "run".to_string(),
            pdc_suite::odms::MetaValue::I64((i % 5) as i64),
        );
        odms.import_array(
            c,
            &format!("o{i}"),
            TypedVec::Float(vec![0.0; 16]),
            &ImportOptions { attrs, ..Default::default() },
        )
        .unwrap();
    }
    let eng = engine(&odms);
    let (ids, elapsed) = eng.query_tag(&[("run", pdc_suite::odms::MetaValue::I64(3))]);
    assert_eq!(ids.len(), 10);
    assert!(elapsed.as_secs_f64() > 0.0);
    let (none, _) = eng.query_tag(&[("run", pdc_suite::odms::MetaValue::I64(99))]);
    assert!(none.is_empty());
}
