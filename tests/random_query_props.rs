//! Property-based end-to-end testing: random datasets and random query
//! trees, evaluated under every strategy, must agree with a naive
//! reference evaluator.

use pdc_suite::odms::{ImportOptions, Odms};
use pdc_suite::query::{EngineConfig, PdcQuery, QueryEngine, Strategy as EvalStrategy};
use pdc_suite::types::{ObjectId, QueryOp, TypedVec};
use proptest::prelude::*;
use std::sync::Arc;

const N: usize = 4_000;
const OPS: [QueryOp; 5] = [QueryOp::Gt, QueryOp::Gte, QueryOp::Lt, QueryOp::Lte, QueryOp::Eq];

/// A restricted query-tree description that proptest can generate.
#[derive(Debug, Clone)]
enum TreeSpec {
    Leaf { var: usize, op: usize, value: f32 },
    And(Box<TreeSpec>, Box<TreeSpec>),
    Or(Box<TreeSpec>, Box<TreeSpec>),
}

fn tree_strategy() -> impl Strategy<Value = TreeSpec> {
    let leaf = (0usize..3, 0usize..5, -1.0f32..11.0).prop_map(|(var, op, value)| {
        TreeSpec::Leaf { var, op, value }
    });
    leaf.prop_recursive(3, 12, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| TreeSpec::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner)
                .prop_map(|(a, b)| TreeSpec::Or(Box::new(a), Box::new(b))),
        ]
    })
}

fn build_query(spec: &TreeSpec, objects: &[ObjectId]) -> PdcQuery {
    match spec {
        TreeSpec::Leaf { var, op, value } => {
            PdcQuery::create(objects[*var], OPS[*op], *value)
        }
        TreeSpec::And(a, b) => build_query(a, objects).and(build_query(b, objects)),
        TreeSpec::Or(a, b) => build_query(a, objects).or(build_query(b, objects)),
    }
}

fn eval_naive(spec: &TreeSpec, vars: &[Vec<f32>], i: usize) -> bool {
    match spec {
        TreeSpec::Leaf { var, op, value } => {
            OPS[*op].eval(vars[*var][i] as f64, *value as f64)
        }
        TreeSpec::And(a, b) => eval_naive(a, vars, i) && eval_naive(b, vars, i),
        TreeSpec::Or(a, b) => eval_naive(a, vars, i) || eval_naive(b, vars, i),
    }
}

/// Build a world with three variables derived from a seed: one smooth,
/// one clustered, one periodic — exercising pruning, index compression
/// and the sorted replica differently.
fn build_world(seed: u32) -> (Arc<Odms>, Vec<ObjectId>, Vec<Vec<f32>>) {
    let mk = |f: &dyn Fn(usize) -> f32| (0..N).map(f).collect::<Vec<f32>>();
    let s = seed as f32;
    let vars = vec![
        mk(&|i| ((i as f32 * 0.002 + s).sin() + 1.0) * 5.0),
        mk(&|i| if (i / 300) % 3 == (seed as usize) % 3 { 8.0 + (i % 70) as f32 * 0.03 } else { (i % 50) as f32 * 0.04 }),
        mk(&|i| ((i * (7 + seed as usize)) % 997) as f32 / 100.0),
    ];
    let odms = Arc::new(Odms::new(4));
    let c = odms.create_container("prop");
    let opts = ImportOptions {
        region_bytes: 2048,
        build_index: true,
        build_sorted: true,
        ..Default::default()
    };
    let objects = vars
        .iter()
        .enumerate()
        .map(|(k, v)| {
            odms.import_array(c, &format!("v{k}"), TypedVec::Float(v.clone()), &opts)
                .unwrap()
                .object
        })
        .collect();
    (odms, objects, vars)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]
    #[test]
    fn random_trees_agree_with_naive_for_all_strategies(
        spec in tree_strategy(),
        seed in 0u32..4,
        servers in 1u32..6,
    ) {
        let (odms, objects, vars) = build_world(seed);
        let expect: Vec<u64> = (0..N)
            .filter(|&i| eval_naive(&spec, &vars, i))
            .map(|i| i as u64)
            .collect();
        for strategy in [
            EvalStrategy::FullScan,
            EvalStrategy::Histogram,
            EvalStrategy::HistogramIndex,
            EvalStrategy::SortedHistogram,
        ] {
            let eng = QueryEngine::new(
                Arc::clone(&odms),
                EngineConfig { strategy, num_servers: servers, ..Default::default() },
            );
            let q = build_query(&spec, &objects);
            let out = eng.run(&q).unwrap();
            prop_assert_eq!(
                out.selection.iter_coords().collect::<Vec<_>>(),
                expect.clone(),
                "strategy {} with {} servers on {:?}",
                strategy,
                servers,
                spec
            );
        }
    }
}
