//! Explore the paper's core data structure: build mergeable local
//! histograms (Algorithm 1), fold them into a global histogram, and use
//! it for selectivity estimation and region pruning.
//!
//! ```sh
//! cargo run --release --example global_histogram_explorer
//! ```

use pdc_suite::histogram::{merge_all, Histogram, HistogramConfig};
use pdc_suite::types::Interval;
use pdc_suite::workloads::{VpicConfig, VpicData};

fn main() {
    let data = VpicData::generate(&VpicConfig { particles: 500_000, seed: 3 });
    let values: Vec<f64> = data.energy.iter().map(|&v| v as f64).collect();
    let region = 16_384usize;
    let cfg = HistogramConfig { nbins_lower_bound: 64, ..Default::default() };

    // Local histograms, one per region — built automatically at import in
    // the full system; by hand here to show the machinery.
    let locals: Vec<Histogram> = values
        .chunks(region)
        .map(|chunk| Histogram::build(chunk, &cfg).expect("histogram"))
        .collect();
    println!("built {} local histograms ({} elements each)", locals.len(), region);
    let widths: std::collections::BTreeSet<String> =
        locals.iter().map(|h| format!("{}", h.bin_width())).collect();
    println!("distinct power-of-two bin widths across regions: {widths:?}");

    // Merge them into the global histogram — O(bins), no data touched.
    let global = merge_all(locals.iter()).expect("merge");
    println!(
        "global histogram: {} bins of width {}, {} elements, range [{:.3}, {:.3}]",
        global.num_bins(),
        global.bin_width(),
        global.total(),
        global.min(),
        global.max()
    );

    // Selectivity estimation: bounds bracket the exact count.
    println!("\n{:<14} {:>12} {:>12} {:>12}", "interval", "lower", "exact", "upper");
    for (lo, hi) in [(2.1, 2.2), (0.5, 1.0), (3.5, 3.6), (1.9, 2.05)] {
        let iv = Interval::open(lo, hi);
        let est = global.estimate_hits(&iv);
        let exact = values.iter().filter(|&&v| iv.contains(v)).count() as u64;
        assert!(est.lower <= exact && exact <= est.upper);
        println!("({lo:>4}, {hi:>4})   {:>12} {:>12} {:>12}", est.lower, exact, est.upper);
    }

    // Region pruning: how many regions can skip a tail query entirely?
    let iv = Interval::open(2.1, 2.2);
    let pruned = locals.iter().filter(|h| h.estimate_hits(&iv).upper == 0).count();
    println!(
        "\nregion elimination for (2.1, 2.2): {pruned}/{} regions pruned without reading data",
        locals.len()
    );
}
