//! The paper's motivating scenario: find the highly energetic particles
//! in a VPIC plasma simulation, compare all four evaluation strategies,
//! and fetch the matching particles' coordinates.
//!
//! ```sh
//! cargo run --release --example vpic_particle_search
//! ```

use pdc_suite::odms::{ImportOptions, Odms};
use pdc_suite::query::{EngineConfig, PdcQuery, QueryEngine, Strategy};
use pdc_suite::types::{QueryOp, TypedVec};
use pdc_suite::workloads::{VpicConfig, VpicData};
use std::sync::Arc;

fn main() {
    // Generate a scaled VPIC dataset (the paper's is 125 billion
    // particles; a million is plenty for a demo).
    let data = VpicData::generate(&VpicConfig { particles: 1_000_000, seed: 7 });
    let odms = Arc::new(Odms::new(64));
    let container = odms.create_container("vpic-run");
    let opts = ImportOptions {
        region_bytes: 128 << 10,
        build_index: true,
        build_sorted: true, // sort hint on the energy object (§III-D3)
        ..Default::default()
    };
    let (objects, _reports) =
        data.import_all(&odms, container, &opts).expect("import VPIC variables");
    println!("imported 7 VPIC variables × {} particles", data.len());

    // "Energy > 2.0 AND 100 < x < 200 AND -90 < y < 0 AND 0 < z < 66" —
    // the paper's multi-object query shape.
    let build_query = || {
        PdcQuery::create(objects.energy, QueryOp::Gt, 2.0f32)
            .and(PdcQuery::range_open(objects.x, 100.0f32, 200.0f32))
            .and(PdcQuery::range_open(objects.y, -90.0f32, 0.0f32))
            .and(PdcQuery::range_open(objects.z, 0.0f32, 66.0f32))
    };
    println!("query: {}", build_query());

    let mut reference = None;
    for strategy in [
        Strategy::FullScan,
        Strategy::Histogram,
        Strategy::HistogramIndex,
        Strategy::SortedHistogram,
    ] {
        let engine = QueryEngine::new(
            Arc::clone(&odms),
            EngineConfig { strategy, num_servers: 16, ..Default::default() },
        );
        let outcome = engine.run(&build_query()).expect("query");
        println!(
            "{:>7}: {} hits, simulated elapsed {:>10} (PFS read {} B in {} requests)",
            strategy.label(),
            outcome.nhits,
            outcome.elapsed.to_string(),
            outcome.io.pfs_bytes_read,
            outcome.io.pfs_read_requests,
        );
        match &reference {
            None => reference = Some(outcome.selection.clone()),
            Some(r) => assert_eq!(&outcome.selection, r, "strategies must agree"),
        }

        // Fetch the x coordinate of the energetic particles — "the memory
        // objects may have different data structures from those in the
        // query condition".
        if strategy == Strategy::Histogram {
            let xs = engine.get_data(&outcome, objects.x).expect("get x");
            let TypedVec::Float(values) = &xs.data else { panic!("type") };
            println!(
                "         x of matches (first 5): {:?}",
                &values[..values.len().min(5)]
            );
        }
    }
    println!("all strategies returned identical selections ✓");
}
