//! Quickstart: create a container, import an object, and query it — the
//! Fig. 1 API end to end.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use pdc_suite::odms::{ImportOptions, Odms};
use pdc_suite::query::{EngineConfig, PdcQuery, QueryEngine, Strategy};
use pdc_suite::types::{QueryOp, TypedVec};
use std::sync::Arc;

fn main() {
    // 1. Stand up the data management system (64 simulated storage
    //    targets) and a container.
    let odms = Arc::new(Odms::new(64));
    let container = odms.create_container("demo");

    // 2. Import a 1-D array as an object. PDC partitions it into regions
    //    and builds a local histogram per region automatically; here we
    //    also ask for the bitmap index and the value-sorted replica.
    let n = 1_000_000usize;
    let temperatures: Vec<f32> =
        (0..n).map(|i| 20.0 + 15.0 * ((i as f32) * 0.0001).sin() + (i % 13) as f32 * 0.1).collect();
    let opts = ImportOptions {
        region_bytes: 64 << 10,
        build_index: true,
        build_sorted: true,
        ..Default::default()
    };
    let report = odms
        .import_array(container, "temperature", TypedVec::Float(temperatures.clone()), &opts)
        .expect("import");
    println!(
        "imported object {} — {} regions, {} data bytes, {} index bytes",
        report.object, report.regions, report.data_bytes, report.index_bytes
    );

    // 3. Start the query service: 8 logical PDC servers, histogram
    //    strategy (the paper's default).
    let engine = QueryEngine::new(
        Arc::clone(&odms),
        EngineConfig { strategy: Strategy::Histogram, num_servers: 8, ..Default::default() },
    );

    // 4. Build a query with the Fig. 1 API: 30 < temperature <= 33.
    let query = PdcQuery::create(report.object, QueryOp::Gt, 30.0f32)
        .and(PdcQuery::create(report.object, QueryOp::Lte, 33.0f32));
    println!("query: {query}");

    // 5. PDCquery_get_nhits / PDCquery_get_selection.
    let outcome = engine.get_selection(&query).expect("query");
    println!(
        "{} hits in {} runs; simulated elapsed {} (I/O {}, CPU {})",
        outcome.nhits,
        outcome.selection.num_runs(),
        outcome.elapsed,
        outcome.breakdown.io,
        outcome.breakdown.cpu,
    );

    // 6. PDCquery_get_data: load the matching values.
    let data = engine.get_data(&outcome, report.object).expect("get_data");
    let TypedVec::Float(values) = &data.data else { panic!("unexpected type") };
    println!(
        "fetched {} values from {} servers in {}; first few: {:?}",
        values.len(),
        data.servers_involved,
        data.elapsed,
        &values[..values.len().min(5)]
    );

    // 7. Verify against a naive filter — every strategy in this
    //    reproduction returns exactly the right answer.
    let expect =
        temperatures.iter().filter(|&&t| t > 30.0 && t <= 33.0).count() as u64;
    assert_eq!(outcome.nhits, expect);
    println!("verified against a naive scan: {expect} hits ✓");

    // 8. PDCquery_get_histogram: the automatically built global histogram.
    let hist = engine.get_histogram(report.object).expect("histogram");
    println!(
        "global histogram: {} bins of width {}, range [{:.2}, {:.2}]",
        hist.num_bins(),
        hist.bin_width(),
        hist.min(),
        hist.max()
    );
}
