//! The H5BOSS scenario (§VI-C): find the sky objects at a given (RA, Dec)
//! by metadata, then count their flux values in a range — a combined
//! metadata + data query.
//!
//! ```sh
//! cargo run --release --example boss_catalog_search
//! ```

use pdc_suite::odms::{ImportOptions, Odms};
use pdc_suite::query::{EngineConfig, QueryEngine, Strategy};
use pdc_suite::types::Interval;
use pdc_suite::workloads::boss::{BossConfig, BossData};
use std::sync::Arc;

fn main() {
    let odms = Arc::new(Odms::new(64));
    let cfg = BossConfig {
        objects: 4_000,
        matching_objects: 1_000,
        values_per_object: 512,
        seed: 11,
    };
    let opts = ImportOptions { build_index: true, ..Default::default() };
    let boss = BossData::generate_and_import(&odms, &cfg, &opts).expect("import catalog");
    println!(
        "catalog: {} fiber objects ({} flux values); {} share RADEG=153.17, DECDEG=23.06",
        boss.objects.len(),
        boss.total_values,
        boss.matching.len()
    );

    let engine = QueryEngine::new(
        Arc::clone(&odms),
        EngineConfig { strategy: Strategy::Histogram, num_servers: 16, ..Default::default() },
    );

    // Metadata-only: which objects sit at the target coordinates?
    let ids = odms.meta().query_tags(&BossData::target_conds());
    println!("metadata query resolved {} objects instantly from the inverted index", ids.len());

    // Combined metadata + data: of those objects' flux values, how many
    // fall in (0, 20)? (The paper's Fig. 5 query shape.)
    for hi in [2.0, 8.0, 20.0] {
        let iv = Interval::open(0.0, hi);
        let outcome = engine
            .metadata_data_query(&BossData::target_conds(), &iv)
            .expect("metadata+data query");
        let selectivity = outcome.nhits as f64
            / (outcome.objects_matched as f64 * cfg.values_per_object as f64);
        println!(
            "0 < flux < {hi:>4}: {:>7} hits ({:>5.1}% of the selected objects' values), \
             simulated elapsed {} (metadata {})",
            outcome.nhits,
            100.0 * selectivity,
            outcome.elapsed,
            outcome.metadata_elapsed,
        );
    }

    // Per-object drill-down: the densest object in the last range.
    let iv = Interval::open(0.0, 20.0);
    let outcome = engine.metadata_data_query(&BossData::target_conds(), &iv).expect("query");
    let (obj, hits) =
        outcome.per_object_hits.iter().max_by_key(|&&(_, h)| h).copied().expect("objects");
    let meta = odms.meta().get(obj).expect("meta");
    println!("densest object: {} ({hits} matching flux values)", meta.name);
}
