//! The query engine: broadcast, parallel evaluation, aggregation, and the
//! `PDCquery_get_*` result API of Fig. 1.

use crate::ast::PdcQuery;
use crate::exec::{eval_plan, EvalCtx};
use crate::plan::{PlanNode, QueryPlan};
use crate::qcache::SharedScanGroup;
use crate::service::ScheduleClock;
use crate::recover::{run_slots, RecoveryPolicy};
use crate::snapshot::MetaSnapshot;
use crate::state::ServerState;
use pdc_histogram::Histogram;
use pdc_odms::Odms;
use pdc_server::{FaultPlan, Placement, ServerPool};
use pdc_storage::{
    CostBreakdown, CostModel, IntegrityCounters, IoCounters, SimDuration, StoredPayload,
    WorkCounters,
};
use pdc_types::{
    Interval, ObjectId, PdcError, PdcResult, PdcType, RegionId, Run, Selection, ServerId, TypedVec,
};
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex};

/// The evaluation strategy (paper §VI: `PDC-F`, `PDC-H`, `PDC-HI`,
/// `PDC-SH`). "Each can be activated by the user through the setting of an
/// environment variable before running the PDC servers. The histogram only
/// approach is selected by default."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// `PDC-F`: pre-load all data of the queried objects, scan everything.
    FullScan,
    /// `PDC-H`: histogram-based region elimination + scan (the default).
    Histogram,
    /// `PDC-HI`: histograms + per-region bitmap indexes.
    HistogramIndex,
    /// `PDC-SH`: histograms + the value-sorted replica of the primary
    /// object.
    SortedHistogram,
    /// `PDC-A`: per-(region, predicate) operator selection — the planner
    /// consults the region histogram's selectivity estimate and aux
    /// availability to pick the cheapest physical operator (scan, index
    /// probe, or sorted range) under the cost model. Results are
    /// bit-identical to the fixed strategies.
    Adaptive,
}

impl Strategy {
    /// The paper's plot label.
    pub fn label(&self) -> &'static str {
        match self {
            Strategy::FullScan => "PDC-F",
            Strategy::Histogram => "PDC-H",
            Strategy::HistogramIndex => "PDC-HI",
            Strategy::SortedHistogram => "PDC-SH",
            Strategy::Adaptive => "PDC-A",
        }
    }
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Evaluation strategy.
    pub strategy: Strategy,
    /// Number of logical PDC servers.
    pub num_servers: u32,
    /// Per-server memory budget for the region cache (the paper uses
    /// 64 GB on 128 GB nodes).
    pub cache_bytes_per_server: u64,
    /// The storage/CPU/network cost model.
    pub cost: CostModel,
    /// Order multi-object evaluation by estimated selectivity (the
    /// paper's planner behaviour); disable only for ablation E7.
    pub order_by_selectivity: bool,
    /// Deterministic fault-injection schedule (`None` = healthy pool).
    pub fault_plan: Option<FaultPlan>,
    /// Retry rounds allowed after the initial evaluation round before a
    /// query fails with [`pdc_types::PdcError::RetriesExhausted`].
    pub max_retries: u32,
    /// Simulated time after which the client abandons an unresponsive or
    /// slow server and reassigns its regions (a slow server is only
    /// abandoned when a faster live one exists to take over). The default
    /// [`SimDuration::MAX`] disables the timeout — safe at any cost-model
    /// scale; erroring/crashing servers are still detected immediately
    /// from their error responses.
    pub server_timeout: SimDuration,
    /// Host threads for chunk-parallel region scans: `0` = auto-size to
    /// the machine, `1` = sequential (single-core determinism runs),
    /// `n` = shard across up to `n` threads. Affects wall-clock only —
    /// results and simulated times are identical at every setting.
    pub scan_threads: u32,
    /// Evaluate scans with the monomorphized kernel layer
    /// (`pdc_types::kernels`). `false` falls back to the scalar
    /// per-element reference path; results and simulated costs are
    /// identical either way (asserted by tests), only wall-clock differs.
    pub scan_kernels: bool,
    /// Resolve the primary constraint's candidate regions through the
    /// hierarchical region directory (range→bin overlap lookup) instead
    /// of enumerating every region's metadata. Advisory and sound:
    /// skipped regions replay the exact prune charges, so selections and
    /// simulated costs are bit-identical with the directory on or off
    /// (property-tested in `tests/pruning_props.rs`).
    pub use_directory: bool,
    /// Replicas per assignment slot. `1` (the default) keeps the classic
    /// single-home layout and code path byte-for-byte; `k ≥ 2` activates
    /// the k-way [`Placement`] — each slot gets an ordered replica set,
    /// faults fail over within the set (charging the `failover` lane
    /// instead of `recovery`), and elastic membership
    /// ([`QueryEngine::join_server`] / [`QueryEngine::leave_server`])
    /// becomes available. Results are bit-identical at every setting.
    pub replicas: u32,
    /// Seed of the deterministic rendezvous placement layout (same seed ⇒
    /// same replica sets on every host). Ignored when `replicas == 1`.
    pub placement_seed: u64,
    /// Out-of-core mode: when `Some`, the object store demotes sealed
    /// least-recently-used regions to block-compressed spill files
    /// whenever its resident footprint exceeds this many bytes. Spilling
    /// is physically real but simulation-invisible — selections and
    /// simulated costs are bit-identical to an unbounded run. `None`
    /// (the default) keeps every payload resident.
    pub memory_budget: Option<u64>,
    /// Directory for spill files. Defaults to a per-process directory
    /// under the system temp dir when unset. Ignored without
    /// `memory_budget`.
    pub spill_dir: Option<std::path::PathBuf>,
    /// Byte budget of the shared decoded-block cache serving reads of
    /// spilled regions. Only meaningful with `memory_budget`.
    pub block_cache_bytes: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            strategy: Strategy::Histogram,
            num_servers: 4,
            cache_bytes_per_server: 256 << 20,
            cost: CostModel::cori_like(),
            order_by_selectivity: true,
            fault_plan: None,
            max_retries: 3,
            server_timeout: SimDuration::MAX,
            scan_threads: 0,
            scan_kernels: true,
            use_directory: true,
            replicas: 1,
            placement_seed: 0x5EED,
            memory_budget: None,
            spill_dir: None,
            block_cache_bytes: 32 << 20,
        }
    }
}

/// The result of one query evaluation (`PDCquery_get_nhits` +
/// `PDCquery_get_selection`).
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// Number of matching elements.
    pub nhits: u64,
    /// Locations of all matching elements (global coordinates).
    pub selection: Selection,
    /// End-to-end simulated elapsed time (broadcast + slowest server +
    /// result return + client merge).
    pub elapsed: SimDuration,
    /// Per-server evaluation time.
    pub per_server: Vec<SimDuration>,
    /// Aggregated I/O counters for this query.
    pub io: IoCounters,
    /// Aggregated work counters for this query.
    pub work: WorkCounters,
    /// Decomposition of `elapsed`.
    pub breakdown: CostBreakdown,
    /// When the sorted strategy answered the primary constraint, the sort
    /// key object and its matching sorted span (lets `get_data` serve the
    /// values straight from the replica).
    pub sorted_hint: Option<(ObjectId, Run)>,
    /// Servers that failed (crash, panic, timeout) while serving this
    /// query; their regions were reassigned to the survivors.
    pub failed_servers: Vec<u32>,
    /// Retry rounds the query needed (0 on a fault-free run).
    pub retry_rounds: u32,
    /// Integrity events this query absorbed: checksum failures detected,
    /// regions repaired from the durable copy, auxiliary structures
    /// rebuilt, regions answered by the fallback scan path. All zero on a
    /// clean run.
    pub integrity: IntegrityCounters,
    /// The store epoch of the plan-time metadata snapshot this query
    /// evaluated against.
    pub planned_epoch: u64,
    /// The primary object's element count at plan time. Under streaming
    /// ingest this is the extent the query answered — a store sealed at
    /// this extent returns a bit-identical selection.
    pub planned_elements: u64,
    /// Regions the background redundancy rebuild copied to new replica
    /// servers after this query observed a crash (k-way placement only;
    /// 0 on a healthy or unreplicated run). Rebuild work is background —
    /// it is reported here but never charged to `elapsed`.
    pub rebuild_regions: u32,
    /// Bytes the background redundancy rebuild copied.
    pub rebuild_bytes: u64,
}

/// The result of a `PDCquery_get_data` call.
#[derive(Debug, Clone)]
pub struct GetDataOutcome {
    /// The matching elements' values, in ascending coordinate order.
    pub data: TypedVec,
    /// Simulated elapsed time.
    pub elapsed: SimDuration,
    /// Aggregated I/O counters.
    pub io: IoCounters,
    /// Bytes shipped server→client.
    pub bytes_transferred: u64,
    /// Number of servers that actually held and sent data.
    pub servers_involved: u32,
}

/// The result of a [`QueryEngine::run_batch`] call: every query's full
/// outcome (bit-identical to running it alone) plus the batch-level
/// schedule time and cache statistics.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// Per-query outcomes, in submission order. Each is identical —
    /// selection, counters, breakdown, per-server times — to what
    /// [`QueryEngine::run`] returns for the same query on a fresh pool.
    pub outcomes: Vec<QueryOutcome>,
    /// Simulated end-to-end time of the batch under the admission
    /// scheduler: per-query client overheads (broadcast, merge,
    /// preflight) are serial, but server evaluation overlaps across
    /// queries, so the evaluation contribution is the per-server
    /// *makespan* `max_s Σ_q per_server[s]` instead of the sum of
    /// per-query critical paths. Always ≤ the sum of the individual
    /// `elapsed` values.
    pub batch_elapsed: SimDuration,
    /// Cache and shared-read statistics for the batch.
    pub stats: BatchStats,
}

/// Cache effectiveness counters for one [`QueryEngine::run_batch`] call.
#[derive(Debug, Clone, Copy, Default)]
pub struct BatchStats {
    /// Number of queries in the batch.
    pub queries: u64,
    /// Plan-cache hits (canonical query tree already planned this epoch).
    pub plan_hits: u64,
    /// Plan-cache misses (plans built from scratch).
    pub plan_misses: u64,
    /// Artifact-cache hits across all servers (prune verdicts, region
    /// scans, index answers served without recomputation).
    pub artifact_hits: u64,
    /// Artifact-cache misses across all servers.
    pub artifact_misses: u64,
    /// Regions the shared-scan prewarm pass loaded and evaluated once
    /// (in a fused kernel pass) on behalf of the whole batch.
    pub prewarm_regions: u64,
    /// Data-region reads served from already-resident copies during
    /// evaluation (the shared reads the batch did not re-fetch).
    pub resident_reads: u64,
    /// Total data-region reads during evaluation (resident + fetched).
    pub region_touches: u64,
}

impl BatchStats {
    /// Artifact-cache hits / lookups; 0 when no lookups happened.
    pub fn artifact_hit_ratio(&self) -> f64 {
        let total = self.artifact_hits + self.artifact_misses;
        if total == 0 {
            0.0
        } else {
            self.artifact_hits as f64 / total as f64
        }
    }

    /// Plan-cache hits / lookups; 0 when no lookups happened.
    pub fn plan_hit_ratio(&self) -> f64 {
        let total = self.plan_hits + self.plan_misses;
        if total == 0 {
            0.0
        } else {
            self.plan_hits as f64 / total as f64
        }
    }
}

/// The client-side canonical-plan cache: normalized query tree (by
/// [`PdcQuery::canonical_key`]) → built, selectivity-ordered plan plus
/// the plan-time [`MetaSnapshot`] the evaluation pins. Entries are
/// validated against the store epoch at lookup, so any data mutation,
/// append, or aux rebuild (which can change the histograms behind the
/// selectivity ordering) invalidates both the plan and its snapshot.
struct PlanCache {
    map: HashMap<String, (u64, QueryPlan, Arc<MetaSnapshot>)>,
    hits: u64,
    misses: u64,
}

/// Whole-map reset threshold for the plan cache (plans are tiny; the
/// cap only guards unbounded ad-hoc query streams).
const PLAN_CACHE_CAP: usize = 512;

/// The parallel query service.
pub struct QueryEngine {
    odms: Arc<Odms>,
    pool: ServerPool<ServerState>,
    cfg: EngineConfig,
    plans: Mutex<PlanCache>,
    /// The k-way replica placement; `None` when `cfg.replicas <= 1`
    /// (classic single-home scheduling, untouched code path). Swapped
    /// wholesale on membership changes so in-flight queries keep their
    /// own consistent snapshot.
    placement: Mutex<Option<Arc<Placement>>>,
    /// Monotonic id source for [`SharedScanGroup`]s opened on this engine.
    scan_group_seq: std::sync::atomic::AtomicU64,
}

/// What an elastic membership change did ([`QueryEngine::join_server`] /
/// [`QueryEngine::leave_server`]): the live migration volume the
/// placement diff implied.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MembershipReport {
    /// The server that joined or left.
    pub server: u32,
    /// Slots whose replica sets changed.
    pub slots_changed: u32,
    /// Regions copied to their new replica servers.
    pub regions_copied: u32,
    /// Bytes copied.
    pub bytes_copied: u64,
}

/// How many assignment slots each server is spread over under k-way
/// replication. Finer slots make a failover move `1/spread` of the dead
/// server's work to each distinct backup instead of a whole server's
/// share — that is what flattens the PR 1 degradation curve. `n_servers`
/// always divides `num_slots`, so region `r`'s anchor server stays
/// `r % n_servers` and a healthy replicated run does byte-identical
/// per-server work to the unreplicated layout.
fn slot_spread(replicas: u32, num_servers: u32) -> u32 {
    if replicas <= 1 {
        1
    } else {
        num_servers.saturating_sub(1).clamp(1, 24)
    }
}

pub(crate) fn diff_io(after: &IoCounters, before: &IoCounters) -> IoCounters {
    IoCounters {
        pfs_bytes_read: after.pfs_bytes_read - before.pfs_bytes_read,
        pfs_read_requests: after.pfs_read_requests - before.pfs_read_requests,
        cache_bytes_read: after.cache_bytes_read - before.cache_bytes_read,
        cache_hits: after.cache_hits - before.cache_hits,
        cache_misses: after.cache_misses - before.cache_misses,
        bytes_written: after.bytes_written - before.bytes_written,
        write_requests: after.write_requests - before.write_requests,
    }
}

fn diff_integrity(after: &IntegrityCounters, before: &IntegrityCounters) -> IntegrityCounters {
    IntegrityCounters {
        checksum_failures: after.checksum_failures - before.checksum_failures,
        repaired_regions: after.repaired_regions - before.repaired_regions,
        aux_rebuilds: after.aux_rebuilds - before.aux_rebuilds,
        fallback_regions: after.fallback_regions - before.fallback_regions,
    }
}

fn diff_work(after: &WorkCounters, before: &WorkCounters) -> WorkCounters {
    WorkCounters {
        elements_scanned: after.elements_scanned - before.elements_scanned,
        bitmap_words: after.bitmap_words - before.bitmap_words,
        sorted_probes: after.sorted_probes - before.sorted_probes,
        histogram_bins: after.histogram_bins - before.histogram_bins,
        elements_gathered: after.elements_gathered - before.elements_gathered,
    }
}

impl QueryEngine {
    /// Start a query service over an ODMS. When the fault plan carries a
    /// [`pdc_server::CorruptionSpec`], the data plane is damaged
    /// deterministically up front — queries then detect, repair, and
    /// charge the recovery work to the breakdown's `integrity` lane.
    pub fn new(odms: Arc<Odms>, cfg: EngineConfig) -> Self {
        // Out-of-core mode: enable spill on the store before anything
        // reads it (idempotent when the importer already configured it —
        // reconfiguring would reset the high-water mark).
        if let Some(budget) = cfg.memory_budget {
            if !odms.store().spill_enabled() {
                let dir = cfg.spill_dir.clone().unwrap_or_else(|| {
                    std::env::temp_dir().join(format!("pdc_spill_{}", std::process::id()))
                });
                odms.store()
                    .configure_spill(&dir, budget, cfg.block_cache_bytes)
                    .expect("configure out-of-core spill directory");
            }
        }
        let cache = cfg.cache_bytes_per_server;
        let plan = cfg.fault_plan.clone();
        let pool = ServerPool::new(cfg.num_servers, |id| {
            let mut st = ServerState::new(cache);
            if let Some(p) = &plan {
                st.fault = p.probe_for(id.raw());
            }
            st
        });
        let placement = (cfg.replicas > 1).then(|| {
            let spread = slot_spread(cfg.replicas, cfg.num_servers);
            Arc::new(Placement::new(
                cfg.num_servers * spread,
                cfg.num_servers,
                cfg.replicas,
                cfg.placement_seed,
            ))
        });
        let engine = Self {
            odms,
            pool,
            cfg,
            plans: Mutex::new(PlanCache { map: HashMap::new(), hits: 0, misses: 0 }),
            placement: Mutex::new(placement),
            scan_group_seq: std::sync::atomic::AtomicU64::new(0),
        };
        engine.apply_planned_corruption();
        engine
    }

    /// The current placement, if k-way replication is active.
    fn placement_snapshot(&self) -> Option<Arc<Placement>> {
        self.placement.lock().unwrap().clone()
    }

    /// The ordered replica set of every assignment slot, indexed by slot;
    /// `None` without replication. Introspection for tests, benches, and
    /// the CLI report.
    pub fn replica_sets(&self) -> Option<Vec<Vec<u32>>> {
        self.placement_snapshot().map(|p| p.replica_sets().to_vec())
    }

    /// The current placement membership (server ids), sorted; `None`
    /// without replication.
    pub fn placement_members(&self) -> Option<Vec<u32>> {
        self.placement_snapshot().map(|p| p.members().to_vec())
    }

    /// Admit a fresh server into the pool and the placement (elastic
    /// scale-out). The new replica copies over the regions of every slot
    /// it now serves (live migration through the checksum-verified
    /// mover); queries running before, during, and after return
    /// bit-identical results. Requires `replicas >= 2`.
    pub fn join_server(&self) -> PdcResult<MembershipReport> {
        let mut guard = self.placement.lock().unwrap();
        let Some(cur) = guard.as_ref() else {
            return Err(PdcError::MissingPrerequisite(
                "elastic membership requires replicas >= 2".into(),
            ));
        };
        let mut p = (**cur).clone();
        let cache = self.cfg.cache_bytes_per_server;
        let plan = self.cfg.fault_plan.clone();
        let id = self.pool.add_server(|id| {
            let mut st = ServerState::new(cache);
            if let Some(fp) = &plan {
                st.fault = fp.probe_for(id.raw());
            }
            st
        });
        let mplan = p.join(id.raw());
        let p = Arc::new(p);
        *guard = Some(Arc::clone(&p));
        drop(guard);
        let (regions_copied, bytes_copied) =
            self.copy_slot_regions(&p, &mplan.slots_gaining_replicas())?;
        Ok(MembershipReport {
            server: id.raw(),
            slots_changed: mplan.changes.len() as u32,
            regions_copied,
            bytes_copied,
        })
    }

    /// Retire `server` from the placement (elastic scale-in). Its slots'
    /// redundancy is restored by copying their regions to the replacement
    /// replicas the layout promotes; the server's pool state stays
    /// addressable (ids are stable) but no further work routes to it.
    /// Requires `replicas >= 2` and at least two members.
    pub fn leave_server(&self, server: u32) -> PdcResult<MembershipReport> {
        let mut guard = self.placement.lock().unwrap();
        let Some(cur) = guard.as_ref() else {
            return Err(PdcError::MissingPrerequisite(
                "elastic membership requires replicas >= 2".into(),
            ));
        };
        if !cur.is_member(server) {
            return Err(PdcError::InvalidQuery(format!(
                "server {server} is not a placement member"
            )));
        }
        if cur.members().len() <= 1 {
            return Err(PdcError::InvalidQuery(
                "the last placement member cannot leave".into(),
            ));
        }
        let mut p = (**cur).clone();
        let mplan = p.leave(server);
        let p = Arc::new(p);
        *guard = Some(Arc::clone(&p));
        drop(guard);
        let (regions_copied, bytes_copied) =
            self.copy_slot_regions(&p, &mplan.slots_gaining_replicas())?;
        Ok(MembershipReport {
            server,
            slots_changed: mplan.changes.len() as u32,
            regions_copied,
            bytes_copied,
        })
    }

    /// The data mover behind membership changes and failure rebuilds:
    /// copy every region of the given slots (across all registered
    /// objects) to their new replica homes via the checksum-verified
    /// read path. Returns `(regions, bytes)`.
    fn copy_slot_regions(&self, p: &Placement, slots: &[u32]) -> PdcResult<(u32, u64)> {
        if slots.is_empty() {
            return Ok((0, 0));
        }
        let slot_set: HashSet<u32> = slots.iter().copied().collect();
        let num_slots = p.num_slots();
        let mut ids: Vec<RegionId> = Vec::new();
        for meta in self.odms.meta().all_objects() {
            for r in 0..meta.num_regions() {
                if slot_set.contains(&(r % num_slots)) {
                    ids.push(RegionId::new(meta.id, r));
                }
            }
        }
        let report = self.odms.rebuild_regions(ids.iter().copied())?;
        // The copy materializes each slot's regions on its replica
        // servers: seed their caches so the next query reads the
        // replica-local copy instead of re-paying the shared-PFS read the
        // rebuild already made.
        let n = self.pool.num_servers();
        for rid in ids {
            let slot = rid.index % num_slots;
            let Ok((pdc_storage::StoredPayload::Typed(payload), _)) = self.odms.store().get(rid)
            else {
                continue;
            };
            for &q in p.replicas(slot) {
                if q < n {
                    self.pool.with_server(ServerId(q), |st| {
                        if !st.is_crashed() {
                            st.cache.put(rid, Arc::clone(&payload));
                        }
                    });
                }
            }
        }
        Ok((report.regions, report.bytes))
    }

    /// After a query observed crashed servers under k-way placement:
    /// evict them from the membership and restore each affected slot's
    /// redundancy by copying its regions to the replacement replicas.
    /// Background work — reported, never charged to query latency.
    /// Returns `(rebuild_regions, rebuild_bytes)`.
    fn rebuild_after_failures(&self, failed: &[u32]) -> (u32, u64) {
        let crashed: Vec<u32> = failed
            .iter()
            .copied()
            .filter(|&s| {
                (s < self.pool.num_servers())
                    && self.pool.with_server(ServerId(s), |st| st.is_crashed())
            })
            .collect();
        if crashed.is_empty() {
            return (0, 0);
        }
        let mut guard = self.placement.lock().unwrap();
        let Some(cur) = guard.as_ref() else { return (0, 0) };
        let mut p = (**cur).clone();
        let mut gained: Vec<u32> = Vec::new();
        let mut changed = false;
        for s in crashed {
            if p.is_member(s) && p.members().len() > 1 {
                gained.extend(p.leave(s).slots_gaining_replicas());
                changed = true;
            }
        }
        if !changed {
            return (0, 0);
        }
        let p = Arc::new(p);
        *guard = Some(Arc::clone(&p));
        drop(guard);
        gained.sort_unstable();
        gained.dedup();
        self.copy_slot_regions(&p, &gained).unwrap_or((0, 0))
    }

    /// Damage the store and aux structures per the fault plan's corruption
    /// spec (no-op without one). The spec only addresses objects already
    /// in the registry, so failure here is an internal invariant breach.
    fn apply_planned_corruption(&self) {
        if let Some(spec) = self.cfg.fault_plan.as_ref().and_then(|p| p.corruption()) {
            crate::integrity::apply_corruption(&self.odms, spec)
                .expect("corruption spec addresses only registered objects");
        }
    }

    /// The recovery policy derived from the config.
    fn recovery_policy(&self) -> RecoveryPolicy {
        RecoveryPolicy {
            max_retries: self.cfg.max_retries,
            server_timeout: self.cfg.server_timeout,
        }
    }

    /// Per-slot region counts for the plan's objects: slot `s` owns the
    /// regions with `r % num_slots == s`, so its weight is a closed
    /// form of each object's region count (at the plan-time snapshot).
    /// Used to balance reassignment and replica routing.
    fn slot_weights_for_objects(
        &self,
        snap: &MetaSnapshot,
        objects: &[ObjectId],
        num_slots: u32,
    ) -> PdcResult<Vec<u64>> {
        let n = u64::from(num_slots);
        let mut weights = vec![0u64; num_slots as usize];
        for &obj in objects {
            let regions = u64::from(snap.meta(obj)?.num_regions());
            for (s, w) in weights.iter_mut().enumerate() {
                *w += regions / n + u64::from((s as u64) < regions % n);
            }
        }
        Ok(weights)
    }

    /// The underlying data management system.
    pub fn odms(&self) -> &Arc<Odms> {
        &self.odms
    }

    /// The active strategy.
    pub fn strategy(&self) -> Strategy {
        self.cfg.strategy
    }

    /// The engine's cost model (crate-internal).
    pub(crate) fn config_cost(&self) -> CostModel {
        self.cfg.cost
    }

    /// Whether an active fault plan injects corruption (crate-internal;
    /// the service loop skips shared-scan prewarm under corruption for
    /// the same reason [`Self::run_batch`] does).
    pub(crate) fn corruption_active(&self) -> bool {
        self.cfg.fault_plan.as_ref().and_then(|p| p.corruption()).is_some()
    }

    /// The engine's host-scan settings `(scan_threads, scan_kernels)`
    /// (crate-internal; wall-clock only, never results or charges).
    pub(crate) fn scan_flags(&self) -> (u32, bool) {
        (self.cfg.scan_threads, self.cfg.scan_kernels)
    }

    /// Broadcast a handler across the pool (crate-internal).
    pub(crate) fn pool_broadcast<R: Send>(
        &self,
        f: impl Fn(pdc_types::ServerId, &mut ServerState) -> R + Sync,
    ) -> Vec<R> {
        self.pool.broadcast(f)
    }

    /// Number of logical servers.
    pub fn num_servers(&self) -> u32 {
        self.cfg.num_servers
    }

    /// `PDCquery_get_histogram`: the object's global histogram, generated
    /// automatically at import.
    pub fn get_histogram(&self, object: ObjectId) -> PdcResult<Arc<Histogram>> {
        self.odms.meta().global_histogram(object)
    }

    /// Reset all per-server state (caches, clocks, counters) — used
    /// between experiment configurations. Fault probes are reinstalled
    /// fresh, so crashed servers come back up with their schedule rearmed;
    /// a corruption spec is re-applied, re-damaging the same sites.
    pub fn reset_state(&self) {
        let bytes = self.cfg.cache_bytes_per_server;
        let plan = self.cfg.fault_plan.clone();
        self.pool.for_each_server(|id, st| {
            *st = ServerState::new(bytes);
            if let Some(p) = &plan {
                st.fault = p.probe_for(id.raw());
            }
        });
        {
            let mut pc = self.plans.lock().unwrap();
            pc.map.clear();
            pc.hits = 0;
            pc.misses = 0;
        }
        // Membership resets with the servers: crashed-and-evicted members
        // come back up, joins/leaves are forgotten (the pool may keep
        // extra states around — ids are stable — but no work routes to
        // non-members).
        *self.placement.lock().unwrap() = (self.cfg.replicas > 1).then(|| {
            let spread = slot_spread(self.cfg.replicas, self.cfg.num_servers);
            Arc::new(Placement::new(
                self.cfg.num_servers * spread,
                self.cfg.num_servers,
                self.cfg.replicas,
                self.cfg.placement_seed,
            ))
        });
        self.apply_planned_corruption();
    }

    /// Capture the plan-time metadata snapshot of every object `plan`
    /// touches.
    fn snapshot_for_plan(&self, plan: &QueryPlan) -> PdcResult<Arc<MetaSnapshot>> {
        let mut objects = Vec::new();
        plan.root.objects(&mut objects);
        objects.sort_unstable();
        objects.dedup();
        Ok(Arc::new(MetaSnapshot::capture(&self.odms, &objects)?))
    }

    /// Plan `query` through the canonical-plan cache: a hit replays the
    /// built, selectivity-ordered plan *and its plan-time metadata
    /// snapshot* for the same canonical tree at the same store epoch; a
    /// miss builds and admits both. Host-work only — planning carries no
    /// simulated charge either way.
    pub(crate) fn plan_cached(&self, query: &PdcQuery) -> PdcResult<(QueryPlan, Arc<MetaSnapshot>)> {
        let key = query.canonical_key();
        let epoch = self.odms.store().epoch();
        {
            let mut pc = self.plans.lock().unwrap();
            if let Some(hit) = pc
                .map
                .get(&key)
                .and_then(|(e, plan, snap)| {
                    (*e == epoch).then(|| (plan.clone(), Arc::clone(snap)))
                })
            {
                pc.hits += 1;
                return Ok(hit);
            }
        }
        let plan =
            QueryPlan::build_with_ordering(query, &self.odms, self.cfg.order_by_selectivity)?;
        let snap = self.snapshot_for_plan(&plan)?;
        let mut pc = self.plans.lock().unwrap();
        pc.misses += 1;
        if pc.map.len() >= PLAN_CACHE_CAP {
            pc.map.clear();
        }
        pc.map.insert(key, (epoch, plan.clone(), Arc::clone(&snap)));
        Ok((plan, snap))
    }

    /// `PDCquery_get_nhits`: evaluate and return the number of matches.
    pub fn get_nhits(&self, query: &PdcQuery) -> PdcResult<u64> {
        Ok(self.run(query)?.nhits)
    }

    /// `PDCquery_get_selection`: evaluate and return hit locations (plus
    /// the full outcome with timings).
    pub fn get_selection(&self, query: &PdcQuery) -> PdcResult<QueryOutcome> {
        self.run(query)
    }

    /// Evaluate a query end to end. Work is scheduled in assignment
    /// slots (slot `i` = the regions with `r % num_servers == i`): on a
    /// healthy pool each server evaluates its own slot; when servers
    /// fail, their slots are re-evaluated by the survivors, so the query
    /// result is identical as long as at least one server stays alive.
    pub fn run(&self, query: &PdcQuery) -> PdcResult<QueryOutcome> {
        self.run_impl(query, false, false).map(|(outcome, _, _)| outcome)
    }

    /// Evaluate a query and return its per-region execution explanation
    /// alongside the outcome: which physical operator each region was
    /// answered with, prune verdicts, and estimated vs actual
    /// selectivity. The outcome is bit-identical to [`Self::run`] on the
    /// same pool state — explain recording is host-side only.
    pub fn explain(&self, query: &PdcQuery) -> PdcResult<(QueryOutcome, crate::ops::ExplainPlan)> {
        let (outcome, _, plan) = self.run_impl(query, false, true)?;
        Ok((outcome, plan.expect("explain run always produces a plan")))
    }

    /// Shared implementation behind [`Self::run`] (cold, cache-free) and
    /// [`Self::run_batch`] (`use_cache = true`: plans come from the
    /// canonical-plan cache and servers may serve artifacts from their
    /// epoch-validated [`crate::qcache::QueryArtifactCache`]). Also
    /// returns the slot-evaluation time so the batch scheduler can
    /// separate it from the serial client overheads. Caching affects
    /// host wall-clock only: the returned outcome is bit-identical
    /// either way. With `explain` set, servers additionally record one
    /// [`crate::ops::RegionExplain`] row per evaluated region (host-side
    /// only — accounting is unaffected) and the merged
    /// [`crate::ops::ExplainPlan`] is returned.
    pub(crate) fn run_impl(
        &self,
        query: &PdcQuery,
        use_cache: bool,
        explain: bool,
    ) -> PdcResult<(QueryOutcome, SimDuration, Option<crate::ops::ExplainPlan>)> {
        // Verify-and-repair preflight, before planning: corrupt region
        // histograms must be rebuilt before selectivity ordering reads the
        // re-merged globals, and repairing shared data regions on the
        // single-threaded client keeps the repair charges deterministic
        // (point checks cross slot boundaries). Skipped entirely without
        // an active corruption spec.
        let (mut integrity, preflight_time) =
            if self.cfg.fault_plan.as_ref().and_then(|p| p.corruption()).is_some() {
                crate::integrity::preflight(&self.odms, &self.cfg.cost, self.cfg.num_servers)?
            } else {
                (IntegrityCounters::default(), SimDuration::ZERO)
            };
        let (plan, snap) = if use_cache {
            self.plan_cached(query)?
        } else {
            let plan =
                QueryPlan::build_with_ordering(query, &self.odms, self.cfg.order_by_selectivity)?;
            let snap = self.snapshot_for_plan(&plan)?;
            (plan, snap)
        };
        let n = self.cfg.num_servers;
        let cost = self.cfg.cost;
        // Snapshot the placement once per query: membership changes land
        // between queries, never mid-broadcast.
        let placement = self.placement_snapshot();
        let n_slots = placement.as_ref().map(|p| p.num_slots()).unwrap_or(n);
        let mut objects = Vec::new();
        plan.root.objects(&mut objects);
        objects.sort_unstable();
        objects.dedup();
        let weights = self.slot_weights_for_objects(&snap, &objects, n_slots)?;

        // PDC-F pre-loads all data of every queried object. Failures
        // during the pre-load recover the same way evaluation does; they
        // are carried into the outcome's fault report.
        let preload = if self.cfg.strategy == Strategy::FullScan {
            Some(self.preload_objects(&snap, &objects, &weights, placement.as_deref())?)
        } else {
            None
        };

        // Client serializes the query tree and broadcasts it.
        let broadcast = cost.net.broadcast_cost(query.wire_size_bytes(), n);

        let odms = Arc::clone(&self.odms);
        let snap_eval = Arc::clone(&snap);
        let strategy = self.cfg.strategy;
        let scan_threads = self.cfg.scan_threads;
        let scan_kernels = self.cfg.scan_kernels;
        let use_directory = self.cfg.use_directory;
        let out = run_slots(
            &self.pool,
            &cost,
            &self.recovery_policy(),
            placement.as_deref(),
            &weights,
            |r: &(
                Selection,
                IoCounters,
                WorkCounters,
                IntegrityCounters,
                SimDuration,
                Vec<crate::ops::RegionExplain>,
            )| { r.0.wire_size_bytes() },
            |slot, st| {
                if use_cache {
                    // Epoch check at slot start: any data mutation or aux
                    // rebuild since the artifacts were cached drops them.
                    st.qcache.validate(odms.store().epoch());
                }
                let ctx = EvalCtx {
                    odms: &odms,
                    snap: &snap_eval,
                    cost: &cost,
                    strategy,
                    n_servers: n,
                    n_slots,
                    server: slot,
                    scan_threads,
                    scan_kernels,
                    use_cache,
                    use_directory,
                };
                let io0 = st.io;
                let w0 = st.work;
                let i0 = st.integrity;
                let t0 = st.integrity_time;
                if explain {
                    st.explain = Some(Vec::new());
                }
                let res = eval_plan(&ctx, st, &plan);
                // Disarm before propagating errors so a failed/retried
                // slot attempt can't leak partial rows into a later one.
                let rows = st.explain.take().unwrap_or_default();
                let sel = res?;
                Ok((
                    sel,
                    diff_io(&st.io, &io0),
                    diff_work(&st.work, &w0),
                    diff_integrity(&st.integrity, &i0),
                    st.integrity_time.saturating_sub(t0),
                    rows,
                ))
            },
        )?;

        let mut io = IoCounters::default();
        let mut work = WorkCounters::default();
        let mut slot_integrity_time = SimDuration::ZERO;
        for (_, io_d, work_d, integ_d, integ_t, _) in &out.per_slot {
            io.merge(io_d);
            work.merge(work_d);
            integrity.merge(integ_d);
            slot_integrity_time += *integ_t;
        }
        // "Remove the duplicates with a merge sort" on the client: a
        // single O(n log k) k-way merge over all slot results (canonical
        // RLE output — bit-identical to the old pairwise union fold).
        let selection = Selection::union_many(out.per_slot.iter().map(|t| &t.0));
        // Client-side aggregation cost (background thread merging runs).
        let merge_cpu =
            SimDuration::from_secs_f64(selection.num_runs() as f64 * 20.0 / 1e9);

        let elapsed = broadcast + out.eval_time + merge_cpu + preflight_time;
        let breakdown = CostBreakdown {
            io: cost.pfs.read_cost(
                io.pfs_bytes_read,
                io.pfs_read_requests,
                n,
                pdc_storage::ReadPattern::Aggregated,
            ),
            cpu: cost.cpu.work_cost(&work),
            net: broadcast + merge_cpu,
            recovery: out.recovery,
            failover: out.failover,
            integrity: preflight_time + slot_integrity_time,
        };

        let sorted_hint = self.sorted_hint(&plan, &snap);
        let explain_plan = explain.then(|| {
            let mut regions: Vec<crate::ops::RegionExplain> =
                out.per_slot.iter().flat_map(|t| t.5.iter().cloned()).collect();
            regions.sort_by_key(|r| (r.object, r.region, r.phase));
            let mut constraints = Vec::new();
            collect_constraints(&plan.root, &mut constraints);
            // Per-constraint directory statistics (host-side replay of
            // the candidate resolution — never charges).
            let directory = if self.cfg.use_directory {
                let pairs: Vec<(ObjectId, Interval)> =
                    constraints.iter().map(|c| (c.0, c.1)).collect();
                constraints
                    .iter()
                    .filter_map(|(obj, iv, _)| {
                        let joint = crate::ops::JointContext::build(&snap, *obj, &pairs);
                        crate::ops::directory_stats(&snap, *obj, iv, joint.as_deref())
                    })
                    .collect()
            } else {
                Vec::new()
            };
            crate::ops::ExplainPlan {
                strategy: self.cfg.strategy,
                constraints,
                sorted_primary: sorted_hint.is_some(),
                directory,
                regions,
                slot_routes: out.routes.clone(),
            }
        });
        let mut failed_servers = out.failed_servers;
        let mut retry_rounds = out.retry_rounds;
        if let Some(pre) = preload {
            for s in pre.failed_servers {
                if !failed_servers.contains(&s) {
                    failed_servers.push(s);
                }
            }
            failed_servers.sort_unstable();
            retry_rounds += pre.retry_rounds;
            // Integrity events absorbed during the pre-load count toward
            // the query's totals (its timing stays outside latency, like
            // the rest of the pre-load).
            for ic in &pre.per_slot {
                integrity.merge(ic);
            }
        }
        let planned_elements =
            snap.meta(plan.primary_object()).map(|m| m.num_elements()).unwrap_or(0);
        // Background redundancy repair: after a replicated run that saw
        // crashes, re-home the dead members' slots and copy the regions
        // the new replicas gained. Reported, not charged — the rebuild
        // overlaps subsequent work like the paper's async movement.
        let (rebuild_regions, rebuild_bytes) = if placement.is_some() && !failed_servers.is_empty()
        {
            self.rebuild_after_failures(&failed_servers)
        } else {
            (0, 0)
        };
        Ok((
            QueryOutcome {
                nhits: selection.count(),
                selection,
                elapsed,
                per_server: out.per_server,
                io,
                work,
                breakdown,
                sorted_hint,
                failed_servers,
                retry_rounds,
                integrity,
                planned_epoch: snap.epoch(),
                planned_elements,
                rebuild_regions,
                rebuild_bytes,
            },
            out.eval_time,
            explain_plan,
        ))
    }

    /// Evaluate a series of queries as one admitted batch.
    ///
    /// Per-query results are **bit-identical** to [`Self::run`] on the
    /// same pool state — selections, counters, cost breakdowns,
    /// per-server times, fault and integrity reports (property-tested in
    /// `tests/batch_equivalence.rs`). What changes is *host* work and
    /// the batch-level schedule:
    ///
    /// - plans are built once per canonical query tree (plan cache);
    /// - a prewarm pass computes, per server slot, the union of regions
    ///   the batch touches, and evaluates every pending predicate
    ///   against each resident typed slice in one fused kernel pass,
    ///   seeding the per-server artifact caches (shared-scan batching);
    /// - per-query evaluation then serves prune verdicts, scan
    ///   selections, and index answers from the caches while replaying
    ///   the exact simulated accounting of a cold run;
    /// - `batch_elapsed` charges the serial client overheads per query
    ///   but overlaps server evaluation across queries (per-server
    ///   makespan), modelling concurrent in-flight queries.
    ///
    /// With an active corruption spec the prewarm pass is skipped (each
    /// query's preflight must observe the damaged state exactly as a
    /// sequential run would); caches still warm across the batch.
    ///
    /// An empty slice is a typed [`PdcError::InvalidQuery`]: a batch is
    /// an admission decision, and admitting nothing is a caller bug that
    /// should never be smoothed over into a zero-time no-op outcome.
    pub fn run_batch(&self, queries: &[PdcQuery]) -> PdcResult<BatchOutcome> {
        if queries.is_empty() {
            return Err(PdcError::InvalidQuery(
                "run_batch requires at least one query (empty batch)".into(),
            ));
        }
        let corruption =
            self.cfg.fault_plan.as_ref().and_then(|p| p.corruption()).is_some();
        let (plan0, art0) = self.cache_counters();

        let prewarm_regions = if corruption {
            0
        } else {
            let mut plans = Vec::with_capacity(queries.len());
            for q in queries {
                plans.push(self.plan_cached(q)?.0);
            }
            // The closed-set batch is the degenerate continuous-batching
            // case: open a group, admit the whole series at once (one
            // fused pass per region), and never return to it.
            let mut group = self.open_scan_group();
            self.admit_to_scan_group(&mut group, &plans)
        };

        let mut outcomes = Vec::with_capacity(queries.len());
        let mut clock = ScheduleClock::new(self.cfg.num_servers);
        for q in queries {
            let (outcome, eval_time, _) = self.run_impl(q, true, false)?;
            clock.charge(outcome.elapsed, eval_time, &outcome.per_server);
            outcomes.push(outcome);
        }

        let (plan1, art1) = self.cache_counters();
        let mut stats = BatchStats {
            queries: queries.len() as u64,
            plan_hits: plan1.0 - plan0.0,
            plan_misses: plan1.1 - plan0.1,
            artifact_hits: art1.0 - art0.0,
            artifact_misses: art1.1 - art0.1,
            prewarm_regions,
            resident_reads: 0,
            region_touches: 0,
        };
        for o in &outcomes {
            stats.resident_reads += o.io.cache_hits;
            stats.region_touches += o.io.cache_hits + o.io.cache_misses;
        }
        Ok(BatchOutcome { outcomes, batch_elapsed: clock.batch_elapsed(), stats })
    }

    /// Snapshot (plan-cache, artifact-cache) hit/miss totals:
    /// `((plan_hits, plan_misses), (artifact_hits, artifact_misses))`.
    pub(crate) fn cache_counters(&self) -> ((u64, u64), (u64, u64)) {
        let pc = self.plans.lock().unwrap();
        let plan = (pc.hits, pc.misses);
        drop(pc);
        let per_server = self.pool.broadcast(|_, st| st.qcache.stats);
        let art = per_server
            .iter()
            .fold((0, 0), |(h, m), s| (h + s.hits, m + s.misses));
        (plan, art)
    }

    /// Open a fresh [`SharedScanGroup`] stamped at the current store
    /// epoch. The group is the client-side ledger of one continuous
    /// batching window: admit any number of plans into it over time with
    /// [`Self::admit_to_scan_group`]; each admission prewarms only the
    /// predicates (and, at region granularity, only the regions) the
    /// group has not already covered.
    pub fn open_scan_group(&self) -> SharedScanGroup {
        let id = self.scan_group_seq.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        SharedScanGroup::new(id, self.odms.store().epoch())
    }

    /// Admit `plans` into an open shared-scan group and prewarm their
    /// *new* predicates: intervals the group has already admitted are
    /// skipped outright, and for new intervals the per-region pass skips
    /// every region whose scan artifact is already cached (the
    /// `peek_scan` check inside [`Self::prewarm_intervals`]) — late
    /// arrivals join the in-flight group at region granularity instead
    /// of forcing a recompute over the closed set. A store-epoch bump
    /// since the group opened reopens it (the artifacts it assumed
    /// cached are invalidated anyway). Returns the number of region
    /// passes this admission performed.
    ///
    /// Like the caches it feeds, admission is pure host work: no
    /// simulated clocks, counters, or fault probes are touched, so
    /// per-query accounting is unaffected by group membership.
    pub fn admit_to_scan_group(&self, group: &mut SharedScanGroup, plans: &[QueryPlan]) -> u64 {
        let epoch = self.odms.store().epoch();
        if group.epoch() != epoch {
            group.reopen(epoch);
        }
        let late = group.stats.admissions > 0;
        group.stats.admissions += 1;
        group.stats.members += plans.len() as u64;
        if late {
            group.stats.late_joins += plans.len() as u64;
        }

        // The admission's new predicates, grouped by object.
        let mut targets: Vec<(ObjectId, Vec<Interval>)> = Vec::new();
        fn collect(
            node: &PlanNode,
            group: &mut SharedScanGroup,
            targets: &mut Vec<(ObjectId, Vec<Interval>)>,
        ) {
            match node {
                PlanNode::Conj(cs) => {
                    for c in cs {
                        if c.interval.is_empty() {
                            continue;
                        }
                        if group.try_admit(c.object, &c.interval) {
                            match targets.iter_mut().find(|(o, _)| *o == c.object) {
                                Some((_, ivs)) => ivs.push(c.interval),
                                None => targets.push((c.object, vec![c.interval])),
                            }
                        }
                    }
                }
                PlanNode::And(children) | PlanNode::Or(children) => {
                    for c in children {
                        collect(c, group, targets);
                    }
                }
            }
        }
        for p in plans {
            collect(&p.root, group, &mut targets);
        }
        if targets.is_empty() {
            return 0;
        }
        let loaded = self.prewarm_intervals(&targets);
        group.stats.prewarm_regions += loaded;
        loaded
    }

    /// The shared-scan prewarm pass: for each server slot, walk the
    /// given `(object, intervals)` predicates, seed histogram prune
    /// verdicts, and evaluate all still-pending intervals of a region in
    /// **one fused kernel pass** over the typed slice, caching each
    /// per-interval selection. Pure host work — no simulated clocks,
    /// counters, or fault probes are touched, so per-query accounting is
    /// unaffected. Returns the number of region passes performed.
    fn prewarm_intervals(&self, targets: &[(ObjectId, Vec<Interval>)]) -> u64 {
        let odms = Arc::clone(&self.odms);
        let n = self.cfg.num_servers;
        let epoch = self.odms.store().epoch();
        let use_directory = self.cfg.use_directory;
        let loaded: Vec<u64> = self.pool.broadcast(|id, st| {
            st.qcache.validate(epoch);
            let mut count = 0u64;
            for (obj, ivs) in targets {
                let Ok(meta) = odms.meta().get(*obj) else { continue };
                let hists = odms.meta().region_histograms(*obj).ok();
                // Directory candidate sets per interval: the prewarm pass
                // only loads/evaluates regions the directory admits.
                // Skipped regions are exactly the ones whose prune
                // verdict is `true` by construction (bounds disjoint), so
                // the per-query path prunes them with full accounting —
                // prewarming them would be pure waste.
                let cands: Option<Vec<Vec<u32>>> = if use_directory {
                    odms.meta().directory(*obj).map(|d| {
                        ivs.iter().map(|iv| d.probe(iv).candidates).collect()
                    })
                } else {
                    None
                };
                for r in 0..meta.num_regions() {
                    if r % n != id.raw() {
                        continue;
                    }
                    // Seed prune verdicts (exactly the verdict the
                    // evaluator computes) and collect the intervals that
                    // still need a scan of this region.
                    let span = meta.region_span(r);
                    let mut pending: Vec<Interval> = Vec::new();
                    for (k, iv) in ivs.iter().enumerate() {
                        if let Some(cs) = &cands {
                            if cs[k].binary_search(&r).is_err() {
                                continue;
                            }
                        }
                        let pruned = match hists.as_ref().and_then(|h| h.get(r as usize)) {
                            Some(h) => {
                                st.qcache.prune_or_compute(*obj, r, span.len, iv, 0, || {
                                    crate::ops::prune_verdict(h, iv)
                                })
                            }
                            None => false,
                        };
                        if !pruned && st.qcache.peek_scan(*obj, r, span.len, iv).is_none() {
                            pending.push(*iv);
                        }
                    }
                    if pending.is_empty() {
                        continue;
                    }
                    // Spilled region: fuse the multi-interval scan with
                    // block decompression — one decoded block (through
                    // the shared block cache) scanned against every
                    // pending interval, never the whole region at once.
                    // Per-interval runs re-canonicalize identically to a
                    // whole-region pass. Any unreadable block skips the
                    // region; the per-query path handles it with full
                    // accounting.
                    if let Some(cold) = odms.store().cold_region(RegionId::new(*obj, r)) {
                        if cold.len() < span.len {
                            continue;
                        }
                        let mut runs: Vec<Vec<pdc_types::Run>> =
                            vec![Vec::new(); pending.len()];
                        let mut ok = true;
                        for b in 0..cold.n_blocks() {
                            let (bs, be) = cold.block_span(b);
                            if bs >= span.len {
                                break;
                            }
                            let Ok(block) = cold.read_block(b) else {
                                ok = false;
                                break;
                            };
                            let block = if be > span.len {
                                Arc::new(block.slice(0, (span.len - bs) as usize))
                            } else {
                                block
                            };
                            let sels = pdc_types::kernels::scan_intervals(
                                &block,
                                &pending,
                                span.offset + bs,
                            );
                            for (acc, sel) in runs.iter_mut().zip(&sels) {
                                acc.extend_from_slice(sel.runs());
                            }
                        }
                        if !ok {
                            continue;
                        }
                        for (iv, acc) in pending.iter().zip(runs) {
                            let sel = pdc_types::Selection::from_runs(acc);
                            st.qcache.put_scan(*obj, r, span.len, iv, sel);
                        }
                        count += 1;
                        continue;
                    }
                    // Advisory read straight from the store: no server
                    // clocks, no fault probes, and no checksum re-derive
                    // (every artifact is epoch-keyed, and any mutation —
                    // including corrupt/repair — bumps the epoch, so an
                    // unverified read can never leak into results). Skip
                    // anything unreadable — the per-query path handles it
                    // with full accounting.
                    let Ok((StoredPayload::Typed(payload), _)) =
                        odms.store().get_unverified(RegionId::new(*obj, r))
                    else {
                        continue;
                    };
                    // A concurrent append can have grown the stored
                    // payload past the metadata span read above; evaluate
                    // (and key) exactly the span's extent so the seeded
                    // artifact matches what a query planned at this
                    // extent computes.
                    if (payload.len() as u64) < span.len {
                        continue;
                    }
                    let payload = if (payload.len() as u64) > span.len {
                        Arc::new(payload.slice(0, span.len as usize))
                    } else {
                        payload
                    };
                    let sels =
                        pdc_types::kernels::scan_intervals(&payload, &pending, span.offset);
                    for (iv, sel) in pending.iter().zip(sels) {
                        st.qcache.put_scan(*obj, r, span.len, iv, sel);
                    }
                    count += 1;
                }
            }
            count
        });
        loaded.iter().sum()
    }

    /// When the sorted replica answered the primary constraint
    /// (SortedHistogram always; Adaptive when the band won), report the
    /// sort object and the matching sorted span. Mirrors the servers'
    /// decision exactly — both are the same pure function of
    /// metadata/histograms/cost.
    fn sorted_hint(&self, plan: &QueryPlan, snap: &MetaSnapshot) -> Option<(ObjectId, Run)> {
        let PlanNode::Conj(cs) = &plan.root else { return None };
        let primary = cs.first()?;
        let used = crate::exec::use_sorted_primary(
            snap,
            &self.cfg.cost,
            self.cfg.strategy,
            self.cfg.num_servers,
            primary.object,
            &primary.interval,
        )
        .ok()?;
        if !used {
            return None;
        }
        let replica = snap.sorted_replica(primary.object).ok()?;
        Some((primary.object, replica.matching_span(&primary.interval)))
    }

    /// PDC-F's pre-load: read every region of every queried object into
    /// the server caches ("pre-load all the data of queried objects").
    /// Slot-scheduled like evaluation, so a failed server's share is
    /// pre-loaded by whichever survivor will evaluate it. Timing outputs
    /// are discarded (the pre-load advances the server clocks directly,
    /// it is not part of query latency) but the fault report is returned
    /// for the outcome.
    fn preload_objects(
        &self,
        snap: &Arc<MetaSnapshot>,
        objects: &[ObjectId],
        weights: &[u64],
        placement: Option<&Placement>,
    ) -> PdcResult<crate::recover::SlotRunOutput<IntegrityCounters>> {
        let n = self.cfg.num_servers;
        let n_slots = weights.len() as u32;
        let cost = self.cfg.cost;
        let odms = Arc::clone(&self.odms);
        let snap = Arc::clone(snap);
        run_slots(
            &self.pool,
            &cost,
            &self.recovery_policy(),
            placement,
            weights,
            |_: &IntegrityCounters| 0,
            |slot, st| {
                let i0 = st.integrity;
                for &obj in objects {
                    let meta = snap.meta(obj)?;
                    for r in 0..meta.num_regions() {
                        if r % n_slots != slot {
                            continue;
                        }
                        // Charges identically to a materializing read,
                        // but a spilled region stays cold (the pre-load
                        // seeds a cold cache slot instead of pinning the
                        // decoded payload).
                        st.read_data_source(
                            &odms,
                            &cost,
                            pdc_types::RegionId::new(obj, r),
                            n,
                            meta.region_span(r).len,
                            true,
                        )?;
                    }
                }
                Ok(diff_integrity(&st.integrity, &i0))
            },
        )
    }

    /// `PDCquery_get_data`: load the values of the matching elements of
    /// `object` into memory, in coordinate order.
    pub fn get_data(&self, outcome: &QueryOutcome, object: ObjectId) -> PdcResult<GetDataOutcome> {
        self.get_data_for_selection(&outcome.selection, object, outcome.sorted_hint.as_ref())
    }

    /// `PDCquery_get_data_batch`: retrieve the data in batches of at most
    /// `batch_elems` elements ("when the resulting data size is too large
    /// and cannot fit in memory at one time"). Returns the per-batch
    /// outcomes; concatenating the batch data reproduces `get_data`.
    pub fn get_data_batch(
        &self,
        outcome: &QueryOutcome,
        object: ObjectId,
        batch_elems: u64,
    ) -> PdcResult<Vec<GetDataOutcome>> {
        assert!(batch_elems > 0, "batch size must be positive");
        let mut batches = Vec::new();
        let mut chunk: Vec<Run> = Vec::new();
        let mut chunk_len = 0u64;
        let flush =
            |chunk: &mut Vec<Run>, chunk_len: &mut u64, batches: &mut Vec<Selection>| {
                if !chunk.is_empty() {
                    batches.push(Selection::from_canonical_runs(std::mem::take(chunk)));
                    *chunk_len = 0;
                }
            };
        let mut parts: Vec<Selection> = Vec::new();
        for run in outcome.selection.runs() {
            let mut start = run.start;
            let mut remaining = run.len;
            while remaining > 0 {
                let take = remaining.min(batch_elems - chunk_len);
                chunk.push(Run::new(start, take));
                chunk_len += take;
                start += take;
                remaining -= take;
                if chunk_len == batch_elems {
                    flush(&mut chunk, &mut chunk_len, &mut parts);
                }
            }
        }
        flush(&mut chunk, &mut chunk_len, &mut parts);
        for sel in &parts {
            batches.push(self.get_data_for_selection(sel, object, outcome.sorted_hint.as_ref())?);
        }
        Ok(batches)
    }

    fn get_data_for_selection(
        &self,
        selection: &Selection,
        object: ObjectId,
        sorted_hint: Option<&(ObjectId, Run)>,
    ) -> PdcResult<GetDataOutcome> {
        let meta = self.odms.meta().get(object)?;
        let ty = meta.pdc_type;
        let n = self.cfg.num_servers;
        let cost = self.cfg.cost;
        let odms = Arc::clone(&self.odms);
        let elem_bytes = ty.size_bytes();

        let use_sorted = matches!(sorted_hint, Some((o, _)) if *o == object);
        let span_hint = sorted_hint.map(|(_, s)| *s);
        let snap = Arc::new(MetaSnapshot::capture(&self.odms, &[object])?);
        let placement = self.placement_snapshot();
        let n_slots = placement.as_ref().map(|p| p.num_slots()).unwrap_or(n);
        let weights = self.slot_weights_for_objects(&snap, &[object], n_slots)?;
        let elem = elem_bytes;

        let out = run_slots(
            &self.pool,
            &cost,
            &self.recovery_policy(),
            placement.as_deref(),
            &weights,
            |r: &(Vec<(u64, f64)>, IoCounters)| r.0.len() as u64 * (8 + elem),
            |slot, st| {
                let io0 = st.io;
                let w0 = st.work;
                let mut pairs: Vec<(u64, f64)> = Vec::new();
                if use_sorted {
                    // Serve straight from the sorted replica: this slot
                    // walks its share of the matching sorted band; values
                    // are already resident from the evaluation.
                    let replica = odms.meta().sorted_replica(object)?;
                    let span = span_hint.unwrap();
                    let sorted_obj = ObjectId(object.raw() | 1 << 63);
                    for (i, sr) in replica.regions_of_span(&span).iter().enumerate() {
                        if i as u32 % n_slots != slot {
                            continue;
                        }
                        let region_start = *sr as u64 * replica.region_len();
                        let region_end =
                            (region_start + replica.region_len()).min(replica.len());
                        let bytes = (region_end - region_start) * (elem_bytes + 8);
                        st.touch_sorted_region(
                            &cost,
                            pdc_types::RegionId::new(sorted_obj, *sr),
                            bytes,
                            n,
                        )?;
                        let lo = span.start.max(region_start);
                        let hi = span.end().min(region_end);
                        for s in lo..hi {
                            let coord = replica.perm()[s as usize];
                            if selection.contains(coord) {
                                st.work.elements_gathered += 1;
                                pairs.push((coord, replica.keys()[s as usize]));
                            }
                        }
                    }
                } else {
                    // Coordinate path: this slot gathers from its
                    // round-robin share of the regions holding hits.
                    for r in 0..meta.num_regions() {
                        if r % n_slots != slot {
                            continue;
                        }
                        let span = meta.region_span(r);
                        let local = selection.restrict_to_span(span.offset, span.len);
                        if local.is_empty() {
                            continue;
                        }
                        let payload = st.read_data_region_uncached(
                            &odms,
                            &cost,
                            pdc_types::RegionId::new(object, r),
                            n,
                            span.len,
                        )?;
                        // Typed run-at-a-time gather: one slice walk per
                        // hit run instead of a per-element enum match.
                        #[allow(clippy::unnecessary_cast)] // Double arm casts f64->f64
                        {
                            pdc_types::with_slice!(&*payload, xs => {
                                for run in local.runs() {
                                    let s = (run.start - span.offset) as usize;
                                    let e = s + run.len as usize;
                                    st.work.elements_gathered += run.len;
                                    for (k, &v) in xs[s..e].iter().enumerate() {
                                        pairs.push((run.start + k as u64, v as f64));
                                    }
                                }
                            });
                        }
                    }
                }
                st.settle_cpu(&cost, &w0);
                Ok((pairs, diff_io(&st.io, &io0)))
            },
        )?;

        let mut all_pairs: Vec<(u64, f64)> = Vec::new();
        let mut io = IoCounters::default();
        let mut bytes_transferred = 0;
        let mut servers_involved = 0;
        for (pairs, io_d) in out.per_slot {
            let bytes = pairs.len() as u64 * (8 + elem_bytes);
            if !pairs.is_empty() {
                servers_involved += 1;
                bytes_transferred += bytes;
            }
            io.merge(&io_d);
            all_pairs.extend(pairs);
        }
        all_pairs.sort_unstable_by_key(|&(c, _)| c);
        let data = typed_from_f64(ty, all_pairs.iter().map(|&(_, v)| v));

        Ok(GetDataOutcome {
            data,
            elapsed: out.eval_time,
            io,
            bytes_transferred,
            servers_involved,
        })
    }
}

/// Collect every `(object, interval, est_selectivity)` constraint of a
/// plan tree, in plan (selectivity-ordered) traversal order, for the
/// explain report.
fn collect_constraints(
    node: &PlanNode,
    out: &mut Vec<(ObjectId, Interval, Option<f64>)>,
) {
    match node {
        PlanNode::Conj(cs) => {
            for c in cs {
                out.push((c.object, c.interval, c.est_selectivity));
            }
        }
        PlanNode::And(children) | PlanNode::Or(children) => {
            for c in children {
                collect_constraints(c, out);
            }
        }
    }
}

/// Rebuild a typed array from f64 values (exact for values that came from
/// the same type).
fn typed_from_f64(ty: PdcType, values: impl Iterator<Item = f64>) -> TypedVec {
    match ty {
        PdcType::Float => TypedVec::Float(values.map(|v| v as f32).collect()),
        PdcType::Double => TypedVec::Double(values.collect()),
        PdcType::Int32 => TypedVec::Int32(values.map(|v| v as i32).collect()),
        PdcType::UInt32 => TypedVec::UInt32(values.map(|v| v as u32).collect()),
        PdcType::Int64 => TypedVec::Int64(values.map(|v| v as i64).collect()),
        PdcType::UInt64 => TypedVec::UInt64(values.map(|v| v as u64).collect()),
    }
}
