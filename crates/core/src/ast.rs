//! The query construction API (paper Fig. 1).
//!
//! ```text
//! pdcquery_t *PDCquery_create(pdcid_t obj_id, pdcquery_op_t op,
//!                             pdc_type_t type, void *value);
//! pdcquery_t *PDCquery_and(pdcquery_t *q1, pdcquery_t *q2);
//! pdcquery_t *PDCquery_or (pdcquery_t *q1, pdcquery_t *q2);
//! perr_t PDCquery_set_region(pdcquery_t *query, pdc_region_t *region);
//! ```
//!
//! "Internally in PDC, we use a tree structure to store and represent the
//! query conditions, which allows for chaining an unlimited number of
//! conditions." The tree serializes (serde) for the client→server
//! broadcast; [`PdcQuery::wire_size_bytes`] is what the simulated network
//! charges.

use pdc_types::{NdRegion, ObjectId, PdcValue, QueryOp};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One node of the query condition tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum QueryNode {
    /// A single comparison `object OP value`.
    Constraint {
        /// The queried data object.
        object: ObjectId,
        /// Comparison operator.
        op: QueryOp,
        /// Comparison constant (carries the `pdc_type_t`).
        value: PdcValue,
    },
    /// Conjunction of two sub-queries.
    And(Box<QueryNode>, Box<QueryNode>),
    /// Disjunction of two sub-queries.
    Or(Box<QueryNode>, Box<QueryNode>),
}

impl QueryNode {
    /// All object ids referenced by the tree (with duplicates).
    pub fn objects(&self, out: &mut Vec<ObjectId>) {
        match self {
            QueryNode::Constraint { object, .. } => out.push(*object),
            QueryNode::And(a, b) | QueryNode::Or(a, b) => {
                a.objects(out);
                b.objects(out);
            }
        }
    }

    /// Number of constraint leaves.
    pub fn num_constraints(&self) -> usize {
        match self {
            QueryNode::Constraint { .. } => 1,
            QueryNode::And(a, b) | QueryNode::Or(a, b) => {
                a.num_constraints() + b.num_constraints()
            }
        }
    }
}

impl fmt::Display for QueryNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryNode::Constraint { object, op, value } => {
                write!(f, "obj{} {} {}", object.raw(), op, value)
            }
            QueryNode::And(a, b) => write!(f, "({a} AND {b})"),
            QueryNode::Or(a, b) => write!(f, "({a} OR {b})"),
        }
    }
}

/// A query handle: the condition tree plus an optional spatial region
/// constraint.
///
/// ```
/// use pdc_query::PdcQuery;
/// use pdc_types::{ObjectId, QueryOp};
/// let energy = ObjectId(1);
/// let x = ObjectId(2);
/// // Energy > 2.0 AND 100 < x < 200
/// let q = PdcQuery::create(energy, QueryOp::Gt, 2.0f32)
///     .and(PdcQuery::range_open(x, 100.0f32, 200.0f32));
/// assert_eq!(q.objects(), vec![energy, x]);
/// assert_eq!(q.to_string(), "(obj1 > 2 AND (obj2 > 100 AND obj2 < 200))");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PdcQuery {
    /// The condition tree.
    pub root: QueryNode,
    /// Optional spatial constraint (`PDCquery_set_region`); "the region
    /// selection can be arbitrary and does not need to match any of the
    /// existing PDC internal region partitions".
    pub region: Option<NdRegion>,
}

impl PdcQuery {
    /// `PDCquery_create`: a one-sided comparison on a single object.
    pub fn create(object: ObjectId, op: QueryOp, value: impl Into<PdcValue>) -> PdcQuery {
        PdcQuery {
            root: QueryNode::Constraint { object, op, value: value.into() },
            region: None,
        }
    }

    /// `PDCquery_and`: conjunction. Region constraints are merged (both
    /// must be absent or equal; the C API sets the region on the combined
    /// query afterwards).
    pub fn and(self, other: PdcQuery) -> PdcQuery {
        PdcQuery {
            root: QueryNode::And(Box::new(self.root), Box::new(other.root)),
            region: self.region.or(other.region),
        }
    }

    /// `PDCquery_or`: disjunction.
    pub fn or(self, other: PdcQuery) -> PdcQuery {
        PdcQuery {
            root: QueryNode::Or(Box::new(self.root), Box::new(other.root)),
            region: self.region.or(other.region),
        }
    }

    /// `PDCquery_set_region`: attach a spatial constraint.
    pub fn set_region(mut self, region: NdRegion) -> PdcQuery {
        self.region = Some(region);
        self
    }

    /// Convenience: the range query `lo < object < hi` (the paper's most
    /// common query shape, e.g. `2.1 < Energy < 2.2`).
    pub fn range_open(
        object: ObjectId,
        lo: impl Into<PdcValue>,
        hi: impl Into<PdcValue>,
    ) -> PdcQuery {
        PdcQuery::create(object, QueryOp::Gt, lo).and(PdcQuery::create(object, QueryOp::Lt, hi))
    }

    /// Distinct objects referenced by the query.
    pub fn objects(&self) -> Vec<ObjectId> {
        let mut out = Vec::new();
        self.root.objects(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    /// A canonical, bit-exact structural encoding of the query: tree
    /// shape, object ids, operators, the comparison constants' raw bit
    /// patterns, and the spatial region. Two queries produce the same
    /// key iff they are structurally identical, which is what keys the
    /// engine's plan cache (floats are compared by bits, so `-0.0` and
    /// `0.0`, or distinct NaN payloads, never collide into one entry).
    pub fn canonical_key(&self) -> String {
        use std::fmt::Write as _;
        fn value_bits(v: &PdcValue) -> (u8, u64) {
            match v {
                PdcValue::Float(x) => (0, u64::from(x.to_bits())),
                PdcValue::Double(x) => (1, x.to_bits()),
                PdcValue::Int32(x) => (2, u64::from(*x as u32)),
                PdcValue::UInt32(x) => (3, u64::from(*x)),
                PdcValue::Int64(x) => (4, *x as u64),
                PdcValue::UInt64(x) => (5, *x),
            }
        }
        fn node(n: &QueryNode, out: &mut String) {
            match n {
                QueryNode::Constraint { object, op, value } => {
                    let (tag, bits) = value_bits(value);
                    let _ = write!(out, "c{:x}.{:?}.{}.{:x};", object.raw(), op, tag, bits);
                }
                QueryNode::And(a, b) => {
                    out.push('(');
                    node(a, out);
                    out.push('&');
                    node(b, out);
                    out.push(')');
                }
                QueryNode::Or(a, b) => {
                    out.push('(');
                    node(a, out);
                    out.push('|');
                    node(b, out);
                    out.push(')');
                }
            }
        }
        let mut key = String::new();
        node(&self.root, &mut key);
        if let Some(r) = &self.region {
            let _ = write!(key, "@{:?}x{:?}", r.offsets, r.lens);
        }
        key
    }

    /// Serialized size of the query for the broadcast (what the client
    /// ships to every server).
    pub fn wire_size_bytes(&self) -> u64 {
        // constraint ≈ 8 (obj) + 1 (op) + 9 (tagged value); combinator ≈ 2;
        // region ≈ 16/dim. A close, deterministic stand-in for an actual
        // wire codec.
        let constraints = self.root.num_constraints() as u64;
        let combinators = constraints.saturating_sub(1);
        let region = self.region.as_ref().map_or(0, |r| 16 * r.ndims() as u64);
        16 + constraints * 18 + combinators * 2 + region
    }
}

impl fmt::Display for PdcQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.root)?;
        if let Some(r) = &self.region {
            write!(f, " WITHIN {:?}x{:?}", r.offsets, r.lens)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(n: u64) -> ObjectId {
        ObjectId(n)
    }

    #[test]
    fn create_builds_single_constraint() {
        let q = PdcQuery::create(obj(1), QueryOp::Gt, 2.0f32);
        assert_eq!(q.objects(), vec![obj(1)]);
        assert_eq!(q.root.num_constraints(), 1);
        assert!(q.region.is_none());
    }

    #[test]
    fn range_open_is_two_anded_constraints() {
        let q = PdcQuery::range_open(obj(1), 2.1f32, 2.2f32);
        assert_eq!(q.root.num_constraints(), 2);
        assert_eq!(q.objects(), vec![obj(1)]);
        assert!(matches!(q.root, QueryNode::And(_, _)));
    }

    #[test]
    fn complex_tree_chains_unlimited_conditions() {
        // Energy > 2.0 AND 100 < x < 200 AND -90 < y < 0 AND 0 < z < 66
        let q = PdcQuery::create(obj(1), QueryOp::Gt, 2.0f32)
            .and(PdcQuery::range_open(obj(2), 100.0f32, 200.0f32))
            .and(PdcQuery::range_open(obj(3), -90.0f32, 0.0f32))
            .and(PdcQuery::range_open(obj(4), 0.0f32, 66.0f32));
        assert_eq!(q.root.num_constraints(), 7);
        assert_eq!(q.objects(), vec![obj(1), obj(2), obj(3), obj(4)]);
    }

    #[test]
    fn or_combination() {
        let q = PdcQuery::create(obj(1), QueryOp::Lt, 0.5f32)
            .or(PdcQuery::create(obj(1), QueryOp::Gt, 3.5f32));
        assert!(matches!(q.root, QueryNode::Or(_, _)));
        assert_eq!(q.objects(), vec![obj(1)]);
    }

    #[test]
    fn set_region_attaches_constraint() {
        let q = PdcQuery::create(obj(1), QueryOp::Gt, 1.0f64)
            .set_region(NdRegion::one_d(100, 50));
        assert_eq!(q.region.as_ref().unwrap().num_elements(), 50);
    }

    #[test]
    fn region_survives_combination() {
        let a = PdcQuery::create(obj(1), QueryOp::Gt, 1.0f64).set_region(NdRegion::one_d(0, 10));
        let b = PdcQuery::create(obj(2), QueryOp::Lt, 5.0f64);
        let q = a.and(b);
        assert!(q.region.is_some());
    }

    #[test]
    fn wire_size_grows_with_conditions() {
        let small = PdcQuery::create(obj(1), QueryOp::Gt, 1.0f32);
        let big = PdcQuery::range_open(obj(1), 0.0f32, 1.0f32)
            .and(PdcQuery::range_open(obj(2), 0.0f32, 1.0f32));
        assert!(big.wire_size_bytes() > small.wire_size_bytes());
    }

    #[test]
    fn display_is_readable() {
        let q = PdcQuery::range_open(obj(1), 2.1f64, 2.2f64);
        assert_eq!(q.to_string(), "(obj1 > 2.1 AND obj1 < 2.2)");
    }

    #[test]
    fn serde_roundtrip() {
        let q = PdcQuery::create(obj(1), QueryOp::Gte, 7i64)
            .or(PdcQuery::create(obj(2), QueryOp::Eq, 3u32))
            .set_region(NdRegion::one_d(5, 10));
        let json = serde_json_like(&q);
        assert!(json.contains("Gte"));
    }

    // serde_json is not a dependency; smoke-test Serialize via the Debug
    // of the serde data model using a tiny in-house serializer is
    // overkill — instead just assert the derived traits exist.
    fn serde_json_like(q: &PdcQuery) -> String {
        format!("{q:?}")
    }
}
