//! Data-plane integrity: deterministic corruption injection and the
//! client-side preflight sweep that repairs it.
//!
//! Two halves:
//!
//! * [`apply_corruption`] — damage the store and the auxiliary structures
//!   according to a [`CorruptionSpec`]: flip a bit in each victim data /
//!   index region (keeping the pristine copy as the durable authority for
//!   [`pdc_storage::ObjectStore::repair`]), and swap in invalid copies of
//!   victim region histograms and sorted replicas. Fully deterministic per
//!   seed, so two engines built from the same spec damage the same sites.
//! * [`preflight`] — the client-side verification sweep the engine runs
//!   before building a query plan when a corruption spec is active:
//!   checksum-verify every data region (repairing from the pristine copy),
//!   self-check every region histogram and sorted replica (rebuilding from
//!   the repaired data). Runs single-threaded on the client so the repair
//!   work is charged deterministically — `point_check` reads regions across
//!   slot boundaries, so leaving shared-region repair to the server threads
//!   would let thread scheduling decide which slot pays, breaking
//!   [`pdc_storage::CostBreakdown`] determinism. Bitmap-index regions are
//!   *not* swept here: each is read only by its owning slot, so the lazy
//!   fallback-and-rebuild path in `exec` handles them deterministically.
//!
//! All repair/rebuild time lands on the dedicated `integrity` lane of the
//! cost breakdown (and the server clocks), never on the query's I/O or CPU
//! counters — the breakdown's lanes stay disjoint.

use pdc_odms::Odms;
use pdc_server::CorruptionSpec;
use pdc_storage::{CostModel, IntegrityCounters, ReadPattern, SimDuration, WorkCounters};
use pdc_types::{PdcError, PdcResult, RegionId};

/// Salts separating the victim draws of the three auxiliary structures
/// (so damaging an object's index says nothing about its histograms).
const INDEX_SALT: u64 = 0x1D05_EED5_0000_0001;
const HIST_SALT: u64 = 0x4157_0610_0000_0002;
const SORT_SALT: u64 = 0x50F7_ED00_0000_0003;
const DIR_SALT: u64 = 0xD1EC_7012_0000_0004;
const JOINT_SALT: u64 = 0x1013_7B0D_0000_0005;

/// What [`apply_corruption`] actually damaged. Deterministic per
/// `(spec, registry)` pair.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CorruptionReport {
    /// Data regions with a flipped bit.
    pub data_regions: u64,
    /// Bitmap-index regions with a flipped bit.
    pub index_regions: u64,
    /// Region histograms replaced with invalid copies.
    pub histograms: u64,
    /// Sorted replicas replaced with invalid copies.
    pub sorted_objects: u64,
    /// Region directories replaced with invalid copies.
    pub directories: u64,
    /// Joint-bounds grids replaced with invalid copies.
    pub joint_grids: u64,
}

impl CorruptionReport {
    /// Total number of damaged sites.
    pub fn total(&self) -> u64 {
        self.data_regions
            + self.index_regions
            + self.histograms
            + self.sorted_objects
            + self.directories
            + self.joint_grids
    }
}

/// SplitMix64 finalizer (same family the fault plan uses) for deriving
/// per-site seeds and the sorted-replica coin.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic uniform draw in `[0, 1)`.
fn unit(z: u64) -> f64 {
    (mix(z) >> 11) as f64 / (1u64 << 53) as f64
}

/// Damage the store and auxiliary structures per `spec`. Safe to call
/// repeatedly (a region's pristine copy is stashed only on its first
/// corruption, so re-applying after a repair re-damages the same sites).
pub fn apply_corruption(odms: &Odms, spec: &CorruptionSpec) -> PdcResult<CorruptionReport> {
    let mut report = CorruptionReport::default();
    for meta in odms.meta().all_objects() {
        let salt = meta.id.raw();
        let n_regions = meta.num_regions() as usize;
        for r in spec.data_victims(n_regions, salt) {
            if odms.store().corrupt(RegionId::new(meta.id, r as u32), spec.seed ^ salt)? {
                report.data_regions += 1;
            }
        }
        if let Some(idx_obj) = meta.index_object {
            for r in spec.aux_victims(n_regions, salt ^ INDEX_SALT) {
                let rid = RegionId::new(idx_obj, r as u32);
                match odms.store().corrupt(rid, spec.seed ^ salt ^ INDEX_SALT) {
                    Ok(true) => report.index_regions += 1,
                    Ok(false) => {}
                    // A streaming append dropped this index region (or
                    // deferred building it): nothing to damage yet.
                    Err(PdcError::NoSuchRegion(_)) => {}
                    Err(e) => return Err(e),
                }
            }
        }
        let hist_victims = spec.aux_victims(n_regions, salt ^ HIST_SALT);
        if !hist_victims.is_empty() {
            let hists = odms.meta().region_histograms(meta.id)?;
            for r in hist_victims {
                let bad = hists[r].corrupted_copy(mix(spec.seed ^ salt ^ HIST_SALT ^ r as u64));
                odms.meta().replace_region_histogram(meta.id, r as u32, bad)?;
                report.histograms += 1;
            }
        }
        // The sorted replica is one structure per object; a deterministic
        // coin at `aux_fraction` decides whether it is damaged.
        if meta.has_sorted_replica && unit(spec.seed ^ salt ^ SORT_SALT) < spec.aux_fraction {
            let replica = odms.meta().sorted_replica(meta.id)?;
            odms.meta()
                .set_sorted_replica(meta.id, replica.corrupted_copy(mix(spec.seed ^ salt)));
            report.sorted_objects += 1;
        }
        // The region directory, like the replica, is one structure per
        // object with its own deterministic coin.
        if unit(spec.seed ^ salt ^ DIR_SALT) < spec.aux_fraction {
            if let Some(dir) = odms.meta().directory(meta.id) {
                odms.meta().set_directory(
                    meta.id,
                    dir.corrupted_copy(mix(spec.seed ^ salt ^ DIR_SALT)),
                );
                report.directories += 1;
            }
        }
    }
    // Joint-bounds grids are keyed by object *pair*; each gets its own
    // coin derived from both sides' ids.
    for (a, b) in odms.meta().all_joint_pairs() {
        let pair_salt = a.raw() ^ b.raw().rotate_left(32) ^ JOINT_SALT;
        if unit(spec.seed ^ pair_salt) < spec.aux_fraction {
            if let Some(grid) = odms.meta().joint_grid(a, b) {
                odms.meta().set_joint_grid(grid.corrupted_copy(mix(spec.seed ^ pair_salt)));
                report.joint_grids += 1;
            }
        }
    }
    Ok(report)
}

/// Client-side verification sweep: checksum every data region (repairing
/// corrupt ones from the pristine durable copy), self-check every region
/// histogram and sorted replica (rebuilding invalid ones from the repaired
/// data). Returns the integrity counters and the simulated time the sweep
/// charges to the `integrity` cost lane.
pub fn preflight(
    odms: &Odms,
    cost: &CostModel,
    n_servers: u32,
) -> PdcResult<(IntegrityCounters, SimDuration)> {
    let mut counters = IntegrityCounters::default();
    let mut time = SimDuration::ZERO;
    for meta in odms.meta().all_objects() {
        let elem_bytes = meta.pdc_type.size_bytes();
        // 1. Data regions: verify the stored checksum; a mismatch is
        //    repaired by re-reading the pristine durable copy.
        for r in 0..meta.num_regions() {
            let rid = RegionId::new(meta.id, r);
            match odms.store().verify(rid) {
                Ok(()) => {}
                Err(PdcError::CorruptRegion { .. }) => {
                    counters.checksum_failures += 1;
                    let bytes = odms.store().repair(rid)?;
                    counters.repaired_regions += 1;
                    time += cost.pfs.read_cost(bytes, 1, n_servers, ReadPattern::Aggregated);
                }
                Err(e) => return Err(e),
            }
        }
        // 2. Region histograms: rebuilt by re-scanning the (now clean)
        //    region data.
        let hists = odms.meta().region_histograms(meta.id)?;
        for r in 0..meta.num_regions() {
            let span = meta.region_span(r);
            if !hists[r as usize].self_check(span.len) {
                odms.rebuild_region_histogram(meta.id, r)?;
                counters.aux_rebuilds += 1;
                let scan = WorkCounters { elements_scanned: span.len, ..Default::default() };
                time += cost.pfs.read_cost(
                    span.len * elem_bytes,
                    1,
                    n_servers,
                    ReadPattern::Aggregated,
                ) + cost.cpu.work_cost(&scan);
            }
        }
        // 3. The sorted replica: rebuilt by re-reading the whole object
        //    and re-sorting (n log n comparisons).
        if meta.has_sorted_replica {
            let replica = odms.meta().sorted_replica(meta.id)?;
            if !replica.self_check(meta.num_elements()) {
                odms.rebuild_sorted_replica(meta.id)?;
                counters.aux_rebuilds += 1;
                let log2n = (meta.num_elements().max(2) as f64).log2().ceil() as u64;
                let sort = WorkCounters {
                    elements_scanned: meta.num_elements() * log2n,
                    ..Default::default()
                };
                time += cost.pfs.read_cost(
                    meta.size_bytes(),
                    u64::from(meta.num_regions()),
                    n_servers,
                    ReadPattern::Aggregated,
                ) + cost.cpu.work_cost(&sort);
            }
        }
        // 4. The region directory: rebuilt from the (now clean) region
        //    histograms' bounds — metadata-only, so the charge is one
        //    bounds probe per region on the CPU lane.
        if let Some(dir) = odms.meta().directory(meta.id) {
            if !dir.self_check(meta.num_regions()) {
                odms.rebuild_directory(meta.id)?;
                counters.aux_rebuilds += 1;
                let probe = WorkCounters {
                    histogram_bins: u64::from(meta.num_regions()),
                    ..Default::default()
                };
                time += cost.cpu.work_cost(&probe);
            }
        }
    }
    // 5. Joint-bounds grids: rebuilt by re-reading both member objects
    //    and re-binning every (a, b) value pair.
    for (a, b) in odms.meta().all_joint_pairs() {
        let Some(grid) = odms.meta().joint_grid(a, b) else { continue };
        if grid.self_check() {
            continue;
        }
        odms.rebuild_joint_grid(a, b)?;
        counters.aux_rebuilds += 1;
        let (ma, mb) = (odms.meta().get(a)?, odms.meta().get(b)?);
        let target = ma.num_elements().min(mb.num_elements());
        let rebin = WorkCounters { elements_scanned: 2 * target, ..Default::default() };
        time += cost.pfs.read_cost(
            ma.size_bytes(),
            u64::from(ma.num_regions()),
            n_servers,
            ReadPattern::Aggregated,
        ) + cost.pfs.read_cost(
            mb.size_bytes(),
            u64::from(mb.num_regions()),
            n_servers,
            ReadPattern::Aggregated,
        ) + cost.cpu.work_cost(&rebin);
    }
    Ok((counters, time))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdc_odms::ImportOptions;
    use pdc_types::TypedVec;

    fn world(seed: u64) -> Odms {
        let odms = Odms::new(4);
        let c = odms.create_container("t");
        let data = TypedVec::Float(
            (0..6000).map(|i| ((i as f32) * 0.37 + seed as f32).sin() * 100.0).collect(),
        );
        let opts = ImportOptions {
            region_bytes: 2048,
            build_index: true,
            build_sorted: true,
            ..Default::default()
        };
        odms.import_array(c, "energy", data, &opts).unwrap();
        odms
    }

    fn spec() -> CorruptionSpec {
        CorruptionSpec::new(0.2, 0.5, 7)
    }

    #[test]
    fn apply_corruption_is_deterministic() {
        let (a, b) = (world(1), world(1));
        let ra = apply_corruption(&a, &spec()).unwrap();
        let rb = apply_corruption(&b, &spec()).unwrap();
        assert_eq!(ra, rb);
        assert!(ra.total() > 0, "fractions this large must damage something: {ra:?}");
        assert_eq!(a.store().quarantined(), b.store().quarantined());
    }

    #[test]
    fn preflight_repairs_everything_it_sweeps() {
        let odms = world(3);
        let report = apply_corruption(&odms, &spec()).unwrap();
        assert!(report.data_regions > 0);
        let cost = pdc_storage::CostModel::cori_like();
        let (counters, time) = preflight(&odms, &cost, 4).unwrap();
        assert_eq!(counters.repaired_regions, report.data_regions);
        assert_eq!(counters.checksum_failures, report.data_regions);
        assert_eq!(
            counters.aux_rebuilds,
            report.histograms + report.sorted_objects + report.directories + report.joint_grids
        );
        assert!(time > SimDuration::ZERO);
        // A second sweep finds nothing: the data plane is clean again.
        let (again, t2) = preflight(&odms, &cost, 4).unwrap();
        assert!(!again.any(), "{again:?}");
        assert_eq!(t2, SimDuration::ZERO);
    }

    #[test]
    fn preflight_on_healthy_world_is_free() {
        let odms = world(9);
        let cost = pdc_storage::CostModel::cori_like();
        let (counters, time) = preflight(&odms, &cost, 4).unwrap();
        assert!(!counters.any());
        assert_eq!(time, SimDuration::ZERO);
    }
}
