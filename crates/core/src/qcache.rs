//! Per-server cache of query-evaluation artifacts for batched query
//! series: histogram prune verdicts, full-region scan selections, and
//! bitmap-index answers, keyed by `(object, region, interval)`.
//!
//! The cache trades **host CPU** only. A hit lets the server skip
//! recomputing a pure artifact (a kernel scan, an `estimate_hits` walk,
//! an index probe) while the simulated accounting — reads, counters,
//! clock charges — is replayed exactly as on a miss, so batched results
//! and cost breakdowns stay bit-identical to a cache-free sequential
//! run (property-tested in `tests/batch_equivalence.rs`).
//!
//! **Invalidation** is epoch-based: [`pdc_storage::ObjectStore`] bumps a
//! monotonic epoch on every data mutation (put / remove / migrate /
//! corrupt / repair) and the ODMS bumps it on metadata-only rebuilds
//! (region histograms, sorted replicas). [`QueryArtifactCache::validate`]
//! clears all entries when the observed epoch moved — called at the top
//! of every cached slot evaluation, so repairs, index rebuilds, and
//! region migrations can never serve a stale artifact.
//!
//! The cache is **budgeted**: entries are charged by their run-list wire
//! size and the whole cache resets when the budget would overflow (the
//! same whole-map policy the index cache uses — entries are cheap to
//! refill from the next batch pass).

use pdc_types::{Interval, ObjectId, Selection};
use std::collections::{HashMap, HashSet};

/// Bit-exact hashable image of an [`Interval`]: raw endpoint bits plus
/// presence/inclusivity flags. Two intervals map to the same key iff
/// they are structurally identical (NaN payloads included), so a cached
/// artifact is only ever served for the exact predicate that built it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IntervalKey {
    lo: (u64, u8),
    hi: (u64, u8),
}

impl IntervalKey {
    /// Encode an interval.
    pub fn of(iv: &Interval) -> Self {
        let enc = |b: Option<pdc_types::interval::Bound>| match b {
            None => (0u64, 0u8),
            Some(b) => (b.value.to_bits(), if b.inclusive { 2 } else { 1 }),
        };
        IntervalKey { lo: enc(iv.lo), hi: enc(iv.hi) }
    }
}

/// Artifacts key on the region's span length in addition to `(object,
/// region, interval)`: a streaming append grows a region's extent and
/// publishes its merged histogram *before* the final epoch bump lands,
/// so two snapshots of different extents can evaluate inside one epoch
/// window. A prune verdict, scan selection, or index answer computed for
/// the shorter extent must never be served for the longer one (or vice
/// versa); the span length distinguishes exactly the artifacts the
/// append changed (the grown tail region and the appended regions).
type Key = (ObjectId, u32, u64, IntervalKey);

/// Prune verdicts additionally key on a **joint-context hash**: the
/// verdict of a region folds in cross-variable joint-bounds tests, whose
/// outcome depends on the registered grids and the *other* variables'
/// intervals in the conjunction. Two queries with the same 1-D interval
/// but different joint contexts must never share a verdict; `0` encodes
/// "no joint context" (no grids registered for the object's pairs).
type PruneKey = (ObjectId, u32, u64, u64, IntervalKey);

/// Membership statistics of one [`SharedScanGroup`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GroupStats {
    /// Plans admitted into the group (over all admission calls).
    pub members: u64,
    /// Members admitted *after* the group's first admission — the open
    /// continuous-batching case a closed batch can never produce.
    pub late_joins: u64,
    /// Admission calls the group absorbed.
    pub admissions: u64,
    /// Distinct `(object, interval)` predicates the group accumulated.
    pub admitted_intervals: u64,
    /// Region passes the prewarm broadcast performed on the group's
    /// behalf (summed over admissions; late admissions only pay for
    /// regions whose pending intervals are not already cached).
    pub prewarm_regions: u64,
    /// Times a store-epoch bump forced the group to drop its predicate
    /// set and start over (the per-server artifact caches invalidate
    /// on the same epoch, so a reopened group re-prewarms from scratch).
    pub reopens: u64,
}

/// An **open** shared-scan group: the client-side membership ledger of
/// one continuous-batching window. Where the closed `run_batch` path
/// collects the whole series' deduplicated `(object, interval)` set up
/// front and prewarms it once, a group stays open — each
/// [`crate::engine::QueryEngine::admit_to_scan_group`] call folds a
/// late arrival's *new* predicates into the set and prewarms only the
/// regions those predicates still need (already-cached `(region,
/// interval)` artifacts are skipped via
/// [`QueryArtifactCache::peek_scan`], so late admission is incremental
/// at region granularity). The group is epoch-stamped: any store
/// mutation invalidates the per-server artifacts, so the group drops
/// its ledger and rebuilds on the next admission.
///
/// Purely host-side, like the caches it feeds: group membership changes
/// wall-clock sharing only, never a query's selection or simulated
/// cost breakdown.
#[derive(Debug)]
pub struct SharedScanGroup {
    id: u64,
    epoch: u64,
    seen: HashSet<(ObjectId, IntervalKey)>,
    /// Membership counters (survive reopens).
    pub stats: GroupStats,
}

impl SharedScanGroup {
    /// An empty group stamped with the store epoch it opened at.
    pub fn new(id: u64, epoch: u64) -> Self {
        Self { id, epoch, seen: HashSet::new(), stats: GroupStats::default() }
    }

    /// The group's id (unique per engine).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The store epoch the current predicate ledger was built at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Drop the predicate ledger and restamp: the artifacts the old
    /// ledger assumed cached are gone (epoch bump), so every predicate
    /// counts as new again.
    pub fn reopen(&mut self, epoch: u64) {
        self.seen.clear();
        self.epoch = epoch;
        self.stats.reopens += 1;
    }

    /// Admit one `(object, interval)` predicate; `true` when it is new
    /// to the group (and therefore needs a prewarm pass).
    pub fn try_admit(&mut self, object: ObjectId, interval: &Interval) -> bool {
        let new = self.seen.insert((object, IntervalKey::of(interval)));
        if new {
            self.stats.admitted_intervals += 1;
        }
        new
    }

    /// Number of distinct predicates currently in the ledger.
    pub fn num_predicates(&self) -> usize {
        self.seen.len()
    }
}

/// Replay record for a region answered from its bitmap index: enough to
/// reproduce the simulated accounting of [`crate::exec`]'s indexed path
/// (conditional data read + candidate-count scan charge) without
/// re-probing the index.
#[derive(Debug, Clone)]
pub struct IndexedEntry {
    /// Whether boundary bins forced a candidate check (a data read).
    pub needs_data_read: bool,
    /// `candidates.count()` of the index answer (the scan charge).
    pub candidates_count: u64,
    /// The region's final selection, already in global coordinates.
    pub selection: Selection,
}

/// Hit/miss counters, reported by the batch frontend.
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheStats {
    /// Artifact lookups served from the cache.
    pub hits: u64,
    /// Artifact lookups that had to compute.
    pub misses: u64,
}

impl CacheStats {
    /// Hits / (hits + misses); 0 when empty.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The per-server artifact cache (one per [`crate::state::ServerState`]).
pub struct QueryArtifactCache {
    epoch: u64,
    budget_bytes: u64,
    bytes: u64,
    prune: HashMap<PruneKey, bool>,
    scans: HashMap<Key, Selection>,
    indexed: HashMap<Key, IndexedEntry>,
    /// Lookup statistics (survive epoch invalidation).
    pub stats: CacheStats,
}

/// Approximate footprint of a map entry beyond its selection payload.
const ENTRY_OVERHEAD: u64 = 48;

impl QueryArtifactCache {
    /// Empty cache with the given byte budget.
    pub fn new(budget_bytes: u64) -> Self {
        Self {
            epoch: 0,
            budget_bytes,
            bytes: 0,
            prune: HashMap::new(),
            scans: HashMap::new(),
            indexed: HashMap::new(),
            stats: CacheStats::default(),
        }
    }

    /// Drop every entry when the store epoch moved since the last call:
    /// any put, remove, migrate, corrupt, repair, or aux rebuild
    /// invalidates all derived artifacts.
    pub fn validate(&mut self, epoch: u64) {
        if self.epoch != epoch {
            self.clear();
            self.epoch = epoch;
        }
    }

    /// Drop all entries (budget and stats handling preserved).
    pub fn clear(&mut self) {
        self.prune.clear();
        self.scans.clear();
        self.indexed.clear();
        self.bytes = 0;
    }

    /// Number of resident entries across all artifact kinds.
    pub fn len(&self) -> usize {
        self.prune.len() + self.scans.len() + self.indexed.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn charge(&mut self, add: u64) {
        if self.bytes + add > self.budget_bytes {
            self.clear();
        }
        self.bytes += add;
    }

    /// The cached prune verdict for `(object, region, interval)` under
    /// the given joint-context hash (`0` = no joint context), computing
    /// and caching it with `compute` on a miss.
    pub fn prune_or_compute(
        &mut self,
        object: ObjectId,
        region: u32,
        span_len: u64,
        interval: &Interval,
        joint_ctx: u64,
        compute: impl FnOnce() -> bool,
    ) -> bool {
        let key = (object, region, span_len, joint_ctx, IntervalKey::of(interval));
        if let Some(&v) = self.prune.get(&key) {
            self.stats.hits += 1;
            return v;
        }
        self.stats.misses += 1;
        let v = compute();
        self.charge(ENTRY_OVERHEAD);
        self.prune.insert(key, v);
        v
    }

    /// The cached full-region scan selection, if present.
    pub fn get_scan(
        &mut self,
        object: ObjectId,
        region: u32,
        span_len: u64,
        interval: &Interval,
    ) -> Option<Selection> {
        let key = (object, region, span_len, IntervalKey::of(interval));
        match self.scans.get(&key) {
            Some(sel) => {
                self.stats.hits += 1;
                Some(sel.clone())
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Cache a full-region scan selection (global coordinates).
    pub fn put_scan(
        &mut self,
        object: ObjectId,
        region: u32,
        span_len: u64,
        interval: &Interval,
        sel: Selection,
    ) {
        self.charge(ENTRY_OVERHEAD + sel.wire_size_bytes());
        self.scans.insert((object, region, span_len, IntervalKey::of(interval)), sel);
    }

    /// Peek a full-region scan selection without touching the hit/miss
    /// stats (used by opportunistic consumers like `point_check`, where
    /// a miss is the expected common case, and by the prewarm pass).
    pub fn peek_scan(
        &self,
        object: ObjectId,
        region: u32,
        span_len: u64,
        interval: &Interval,
    ) -> Option<&Selection> {
        self.scans.get(&(object, region, span_len, IntervalKey::of(interval)))
    }

    /// The cached index-answer replay record, if present.
    pub fn get_indexed(
        &mut self,
        object: ObjectId,
        region: u32,
        span_len: u64,
        interval: &Interval,
    ) -> Option<IndexedEntry> {
        let key = (object, region, span_len, IntervalKey::of(interval));
        match self.indexed.get(&key) {
            Some(e) => {
                self.stats.hits += 1;
                Some(e.clone())
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Cache an index-answer replay record.
    pub fn put_indexed(
        &mut self,
        object: ObjectId,
        region: u32,
        span_len: u64,
        interval: &Interval,
        entry: IndexedEntry,
    ) {
        self.charge(ENTRY_OVERHEAD + entry.selection.wire_size_bytes());
        self.indexed.insert((object, region, span_len, IntervalKey::of(interval)), entry);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(lo: f64, hi: f64) -> Interval {
        Interval::open(lo, hi)
    }

    #[test]
    fn interval_key_is_bit_exact() {
        assert_eq!(IntervalKey::of(&iv(1.0, 2.0)), IntervalKey::of(&iv(1.0, 2.0)));
        assert_ne!(IntervalKey::of(&iv(1.0, 2.0)), IntervalKey::of(&iv(1.0, 2.5)));
        assert_ne!(
            IntervalKey::of(&Interval::open(1.0, 2.0)),
            IntervalKey::of(&Interval::closed(1.0, 2.0)),
            "inclusivity must distinguish keys"
        );
        assert_ne!(
            IntervalKey::of(&Interval::from_op(pdc_types::QueryOp::Gt, 0.0)),
            IntervalKey::of(&Interval::from_op(pdc_types::QueryOp::Lt, 0.0)),
            "lo-only vs hi-only bounds must distinguish keys"
        );
    }

    #[test]
    fn prune_hits_skip_compute() {
        let mut c = QueryArtifactCache::new(1 << 20);
        let obj = ObjectId(1);
        let mut calls = 0;
        let v1 = c.prune_or_compute(obj, 0, 10, &iv(0.0, 1.0), 0, || {
            calls += 1;
            true
        });
        let v2 = c.prune_or_compute(obj, 0, 10, &iv(0.0, 1.0), 0, || {
            calls += 1;
            false
        });
        let v3 = c.prune_or_compute(obj, 0, 10, &iv(0.0, 1.0), 77, || {
            calls += 1;
            false
        });
        assert!(!v3, "a different joint context must not share the verdict");
        assert!(v1 && v2, "hit must replay the first verdict");
        assert_eq!(calls, 2, "v1 and v3 compute; v2 is a hit");
        assert_eq!(c.stats.hits, 1);
        assert_eq!(c.stats.misses, 2);
    }

    #[test]
    fn epoch_change_invalidates_everything() {
        let mut c = QueryArtifactCache::new(1 << 20);
        let obj = ObjectId(3);
        c.validate(7);
        c.put_scan(obj, 0, 10, &iv(0.0, 1.0), Selection::from_span(0, 10));
        c.prune_or_compute(obj, 1, 10, &iv(0.0, 1.0), 0, || true);
        c.put_indexed(
            obj,
            2,
            10,
            &iv(0.0, 1.0),
            IndexedEntry {
                needs_data_read: false,
                candidates_count: 0,
                selection: Selection::empty(),
            },
        );
        assert_eq!(c.len(), 3);
        c.validate(7);
        assert_eq!(c.len(), 3, "same epoch keeps entries");
        c.validate(8);
        assert!(c.is_empty(), "epoch bump must clear all artifact kinds");
        assert!(c.get_scan(obj, 0, 10, &iv(0.0, 1.0)).is_none());
    }

    #[test]
    fn budget_overflow_resets_whole_cache() {
        let mut c = QueryArtifactCache::new(200);
        let obj = ObjectId(9);
        c.put_scan(obj, 0, 10, &iv(0.0, 1.0), Selection::from_span(0, 5));
        assert_eq!(c.len(), 1);
        // A large entry blows the budget: the cache resets, then admits it.
        let big: Vec<pdc_types::Run> =
            (0..50).map(|i| pdc_types::Run::new(i * 10, 2)).collect();
        c.put_scan(obj, 1, 10, &iv(2.0, 3.0), Selection::from_canonical_runs(big));
        assert_eq!(c.len(), 1, "old entries evicted wholesale");
        assert!(c.peek_scan(obj, 1, 10, &iv(2.0, 3.0)).is_some());
        assert!(c.peek_scan(obj, 0, 10, &iv(0.0, 1.0)).is_none());
    }
}
