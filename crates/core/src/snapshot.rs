//! Epoch-consistent metadata snapshots for in-flight queries.
//!
//! Streaming ingest ([`pdc_odms::Odms::append_array`]) can grow an
//! object while a query is being evaluated. Servers therefore never read
//! object metadata, region histograms, or the sorted replica from the
//! live registry during evaluation: the client captures a
//! [`MetaSnapshot`] of every object a plan touches at plan time, and the
//! whole evaluation — region enumeration, prune estimates, adaptive
//! operator choices, the sorted-band decision — is a pure function of
//! that snapshot. An append that lands mid-query changes what the *next*
//! plan sees; the in-flight query answers exactly the extent it planned
//! against, bit-identical to a store sealed at the same epoch
//! (property-tested in `tests/ingest_consistency.rs`).
//!
//! Two ingest-specific staleness rules live here:
//!
//! * **Capture order.** `append_array` publishes grown histograms
//!   *before* it registers the grown metadata, so the snapshot reads the
//!   metadata first: the histogram list read afterwards always covers at
//!   least the metadata's regions (a concurrently-landing append can
//!   only make it longer, and a longer list is harmless — evaluation
//!   iterates the metadata's region count).
//! * **Sorted staleness.** A replica sorts exactly the elements that
//!   existed when it was built. After an append it still answers the old
//!   extent correctly, but the snapshot's metadata may already describe
//!   the grown object; [`MetaSnapshot::sorted_available`] therefore
//!   requires the replica to cover the snapshot's element count exactly,
//!   degrading `SortedHistogram`/`Adaptive` to the per-region path until
//!   deferred maintenance rebuilds the replica.

use pdc_directory::{JointGrid, RegionDirectory};
use pdc_histogram::Histogram;
use pdc_odms::{ObjectMeta, Odms};
use pdc_sorted::SortedReplica;
use pdc_types::{ObjectId, PdcError, PdcResult};
use std::collections::HashMap;
use std::sync::Arc;

/// One object's pinned metadata view.
struct ObjectView {
    meta: Arc<ObjectMeta>,
    hists: Option<Arc<Vec<Histogram>>>,
    sorted: Option<Arc<SortedReplica>>,
    directory: Option<Arc<RegionDirectory>>,
}

/// The pinned metadata of every object one query plan touches, captured
/// at plan time. Cheap to clone views out of (everything is `Arc`d);
/// cached alongside the plan in the engine's plan cache so a batch
/// replays the identical snapshot for the identical canonical query.
pub struct MetaSnapshot {
    epoch: u64,
    views: HashMap<ObjectId, ObjectView>,
    joints: Vec<Arc<JointGrid>>,
}

impl MetaSnapshot {
    /// Pin the metadata views of `objects` at the current store epoch.
    pub fn capture(odms: &Odms, objects: &[ObjectId]) -> PdcResult<MetaSnapshot> {
        let epoch = odms.store().epoch();
        let mut views = HashMap::with_capacity(objects.len());
        for &obj in objects {
            // Metadata first (see module docs: the registration order of
            // `append_array` makes meta-then-histograms the safe order).
            // The directory is read after the histograms; `append_array`
            // publishes it *before* them, so the pinned directory is
            // never older than the pinned histograms — at worst newer,
            // i.e. wider bounds, whose candidate sets are supersets and
            // therefore still sound.
            let meta = odms.meta().get(obj)?;
            let hists = odms.meta().region_histograms(obj).ok();
            let sorted = if meta.has_sorted_replica {
                odms.meta().sorted_replica(obj).ok()
            } else {
                None
            };
            let directory = odms.meta().directory(obj);
            views.insert(obj, ObjectView { meta, hists, sorted, directory });
        }
        // Joint grids whose both sides the plan touches. Grids carry
        // their own per-region coverage rule (`rect_upper` declines when
        // the pinned extent outruns the grid), so no staleness gate is
        // needed here.
        let mut joints = Vec::new();
        for (a, b) in odms.meta().all_joint_pairs() {
            if views.contains_key(&a) && views.contains_key(&b) {
                if let Some(g) = odms.meta().joint_grid(a, b) {
                    joints.push(g);
                }
            }
        }
        Ok(MetaSnapshot { epoch, views, joints })
    }

    /// The store epoch observed when the snapshot was captured.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    fn view(&self, object: ObjectId) -> PdcResult<&ObjectView> {
        self.views.get(&object).ok_or(PdcError::NoSuchObject(object))
    }

    /// The pinned metadata of `object`.
    pub fn meta(&self, object: ObjectId) -> PdcResult<Arc<ObjectMeta>> {
        Ok(Arc::clone(&self.view(object)?.meta))
    }

    /// The pinned per-region histograms of `object` (errors when the
    /// object carries none).
    pub fn region_histograms(&self, object: ObjectId) -> PdcResult<Arc<Vec<Histogram>>> {
        self.view(object)?.hists.clone().ok_or_else(|| {
            PdcError::MissingPrerequisite(format!("region histograms of {object}"))
        })
    }

    /// The pinned per-region histograms, or `None` when absent (the
    /// advisory lanes' lookup).
    pub fn region_histograms_opt(&self, object: ObjectId) -> Option<Arc<Vec<Histogram>>> {
        self.views.get(&object).and_then(|v| v.hists.clone())
    }

    /// The pinned sorted replica of `object`.
    pub fn sorted_replica(&self, object: ObjectId) -> PdcResult<Arc<SortedReplica>> {
        self.view(object)?.sorted.clone().ok_or_else(|| {
            PdcError::MissingPrerequisite(format!("sorted replica of {object}"))
        })
    }

    /// The pinned region directory of `object`, when it can answer for
    /// this snapshot: it must index at least the snapshot's region count
    /// (the publication order of `append_array` guarantees it is never
    /// behind the pinned metadata; this gate is the defensive fallback).
    pub fn directory(&self, object: ObjectId) -> Option<Arc<RegionDirectory>> {
        let v = self.views.get(&object)?;
        let dir = v.directory.clone()?;
        (dir.num_regions() >= v.meta.num_regions()).then_some(dir)
    }

    /// The pinned joint-bounds grids both of whose objects this snapshot
    /// covers.
    pub fn joint_grids(&self) -> &[Arc<JointGrid>] {
        &self.joints
    }

    /// Whether the sorted replica can answer for this snapshot: present
    /// *and* covering exactly the snapshot's element count. An appended
    /// object's replica is stale until deferred maintenance rebuilds it.
    pub fn sorted_available(&self, object: ObjectId) -> bool {
        self.views.get(&object).is_some_and(|v| {
            v.meta.has_sorted_replica
                && v.sorted.as_ref().is_some_and(|r| r.len() == v.meta.num_elements())
        })
    }
}
