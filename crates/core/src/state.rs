//! Per-logical-server state: caches, clock, counters.

use crate::qcache::QueryArtifactCache;
use pdc_bitmap::BinnedBitmapIndex;
use pdc_odms::Odms;
use pdc_server::FaultProbe;
use pdc_storage::{
    CacheSlot, ColdRegion, CostModel, IntegrityCounters, IoCounters, ReadPattern, RegionCache,
    SimClock, SimDuration, StorageTier, StoredPayload, WorkCounters,
};
use pdc_types::{ObjectId, PdcResult, RegionId, TypedVec};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// A readable view of one data region: either the whole decoded payload
/// pinned in memory, or a block-granular handle onto a spilled region's
/// compressed file. Operators that can stream (interval scans) consume
/// `Cold` block by block through the budgeted block cache; everything
/// else materializes.
///
/// The simulated accounting is identical for both variants — which one a
/// read returns depends only on physical residency, which the cost model
/// deliberately cannot see.
#[derive(Debug, Clone)]
pub enum RegionData {
    /// Whole payload resident in memory.
    Mem(Arc<TypedVec>),
    /// Spilled region served block-wise from the out-of-core store.
    Cold(ColdRegion),
}

impl RegionData {
    /// Element count of the region's payload.
    pub fn len(&self) -> u64 {
        match self {
            RegionData::Mem(p) => p.len() as u64,
            RegionData::Cold(c) => c.len(),
        }
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The persistent state of one logical PDC server.
///
/// State survives across queries — that persistence is what produces the
/// paper's caching effect over a sequentially evaluated query series
/// ("an increasing number of the regions' data are cached in the PDC
/// servers' memory and do not require storage access").
pub struct ServerState {
    /// This server's simulated timeline.
    pub clock: SimClock,
    /// Data-region cache (the per-server memory budget of §V).
    pub cache: RegionCache,
    /// Deserialized bitmap indexes, keyed by index-object region.
    pub index_cache: HashMap<RegionId, Arc<BinnedBitmapIndex>>,
    /// Bytes held by `index_cache`.
    pub index_cache_bytes: u64,
    /// Budget for `index_cache`.
    pub index_cache_budget: u64,
    /// Sorted-replica regions already resident in this server's memory.
    pub sorted_resident: HashSet<RegionId>,
    /// Objects whose region metadata this server has already fetched
    /// ("the metadata is cached in all servers after the metadata
    /// distribution").
    pub metadata_loaded: HashSet<ObjectId>,
    /// Epoch-validated cache of query artifacts (prune verdicts, scan
    /// selections, index answers) for batched query series. Only
    /// consulted when the engine evaluates with caching enabled; skips
    /// host recomputation while the simulated accounting replays
    /// identically.
    pub qcache: QueryArtifactCache,
    /// Storage counters.
    pub io: IoCounters,
    /// Evaluation-work counters.
    pub work: WorkCounters,
    /// Integrity counters: checksum failures detected, regions repaired,
    /// aux structures rebuilt, regions answered by fallback scan.
    pub integrity: IntegrityCounters,
    /// Simulated time spent on integrity work (repair re-reads, aux
    /// rebuilds). Advances the clock too, but is tracked separately so
    /// the cost breakdown's `integrity` lane stays disjoint from I/O and
    /// CPU.
    pub integrity_time: SimDuration,
    /// Installed fault probe (deterministic fault injection); `None` for
    /// a healthy server.
    pub fault: Option<FaultProbe>,
    /// Set when the server failed outside the probe's schedule (e.g. a
    /// handler panic caught by the pool): dead until state reset.
    pub failed: bool,
    /// When armed (`Some`), the operator executor records one
    /// [`crate::ops::RegionExplain`] row per region it evaluates; `None`
    /// (the default) keeps evaluation free of explain overhead.
    pub explain: Option<Vec<crate::ops::RegionExplain>>,
}

impl ServerState {
    /// Fresh state with the given data-cache budget.
    pub fn new(cache_bytes: u64) -> Self {
        Self {
            clock: SimClock::new(),
            cache: RegionCache::new(cache_bytes),
            index_cache: HashMap::new(),
            index_cache_bytes: 0,
            index_cache_budget: cache_bytes / 4,
            sorted_resident: HashSet::new(),
            metadata_loaded: HashSet::new(),
            qcache: QueryArtifactCache::new(cache_bytes / 4),
            io: IoCounters::default(),
            work: WorkCounters::default(),
            integrity: IntegrityCounters::default(),
            integrity_time: SimDuration::ZERO,
            fault: None,
            failed: false,
            explain: None,
        }
    }

    /// Consult the fault probe before a region access; an injected crash
    /// or transient error surfaces as [`pdc_types::PdcError::ServerFailed`]
    /// through the normal result plumbing.
    fn fault_check(&mut self) -> PdcResult<()> {
        match &mut self.fault {
            Some(probe) => probe.on_access(),
            None => Ok(()),
        }
    }

    /// Whether this server is dead (crash fault fired, or marked failed
    /// after a panic). Dead servers stay dead until their state is reset.
    pub fn is_crashed(&self) -> bool {
        self.failed || self.fault.as_ref().is_some_and(|p| p.is_crashed())
    }

    /// Mark the server permanently failed (used for caught panics).
    pub fn mark_failed(&mut self) {
        self.failed = true;
    }

    /// This server's evaluation-time multiplier (1.0 when healthy).
    pub fn fault_slowdown(&self) -> f64 {
        self.fault.as_ref().map_or(1.0, |p| p.slowdown())
    }

    /// Charge the metadata-distribution cost for an object's assigned
    /// regions, once per server lifetime.
    pub fn charge_metadata_distribution(
        &mut self,
        cost: &CostModel,
        object: ObjectId,
        assigned_regions: u64,
    ) {
        if self.metadata_loaded.insert(object) {
            self.clock.advance(cost.metadata_region_cost * assigned_regions);
        }
    }

    /// Read a data region, charging simulated time: DRAM bandwidth on a
    /// cache hit, a PFS aggregated read on a miss (then cache it).
    ///
    /// `min_elems` is the element count the caller's plan-time snapshot
    /// expects the region to hold (its span length; 0 when unknown): a
    /// resident copy cached before a streaming append grew the region is
    /// shorter than that, and serving it would silently drop the tail —
    /// such a copy is treated as a miss and refetched from the store.
    pub fn read_data_region(
        &mut self,
        odms: &Odms,
        cost: &CostModel,
        rid: RegionId,
        concurrency: u32,
        min_elems: u64,
    ) -> PdcResult<Arc<TypedVec>> {
        self.fault_check()?;
        if let Some(slot) = self.cache.get(rid) {
            if slot.elems() >= min_elems {
                let bytes = slot.size_bytes();
                self.io.cache_bytes_read += bytes;
                self.io.cache_hits += 1;
                self.clock.advance(cost.dram.read_cost(bytes));
                match slot {
                    CacheSlot::Hot(p) => return Ok(p),
                    CacheSlot::Cold { .. } => {
                        // The hit was charged identically to a hot one;
                        // the caller needs the whole payload, so decode it
                        // transiently (host-side — the store copy stays
                        // spilled and no further simulated time accrues).
                        return Self::materialize_whole(odms, rid);
                    }
                }
            }
        }
        self.io.cache_misses += 1;
        let payload = self.read_from_tier(odms, cost, rid, concurrency)?;
        self.cache_payload(odms, rid, &payload);
        Ok(payload)
    }

    /// Insert a just-read payload into the region cache: a hot slot when
    /// the store copy is resident, a cold slot of the same byte footprint
    /// when it is spilled — so admission and eviction decisions are
    /// bit-identical either way while a spilled region's decoded bytes
    /// are not pinned.
    fn cache_payload(&mut self, odms: &Odms, rid: RegionId, payload: &Arc<TypedVec>) {
        if odms.store().is_spilled(rid) {
            self.cache.put_cold(rid, payload.size_bytes(), payload.len() as u64);
        } else {
            self.cache.put(rid, Arc::clone(payload));
        }
    }

    /// Decode a region's full payload host-side with no simulated
    /// charges (the caller already charged the access).
    fn materialize_whole(odms: &Odms, rid: RegionId) -> PdcResult<Arc<TypedVec>> {
        let (payload, _) = odms.store().get(rid)?;
        match payload {
            StoredPayload::Typed(v) => Ok(v),
            StoredPayload::Raw(_) => Err(pdc_types::PdcError::Storage(format!(
                "region {rid} holds raw bytes, not typed data"
            ))),
        }
    }

    /// Read a data region as a [`RegionData`] source, charging exactly
    /// what [`Self::read_data_region`] charges: DRAM on a cache hit, the
    /// tier-appropriate read on a miss. The difference is purely
    /// physical — a clean spilled region comes back as a block-granular
    /// [`RegionData::Cold`] handle instead of a materialized payload, so
    /// streaming consumers (interval scans, prewarm) decode one block at
    /// a time through the budgeted block cache and never pin the whole
    /// region.
    ///
    /// A quarantined spilled region takes the materializing path so its
    /// corruption is detected and repaired with the same integrity-lane
    /// charges as a resident one.
    pub fn read_data_source(
        &mut self,
        odms: &Odms,
        cost: &CostModel,
        rid: RegionId,
        concurrency: u32,
        min_elems: u64,
        cache_on_miss: bool,
    ) -> PdcResult<RegionData> {
        self.fault_check()?;
        if let Some(slot) = self.cache.get(rid) {
            if slot.elems() >= min_elems {
                let bytes = slot.size_bytes();
                self.io.cache_bytes_read += bytes;
                self.io.cache_hits += 1;
                self.clock.advance(cost.dram.read_cost(bytes));
                match slot {
                    CacheSlot::Hot(p) => return Ok(RegionData::Mem(p)),
                    CacheSlot::Cold { .. } => {
                        if let Some(cold) = odms.store().cold_region(rid) {
                            return Ok(RegionData::Cold(cold));
                        }
                        // Slot outlived the spill (the region was
                        // rewritten resident): serve the store copy. The
                        // hit is already charged, as it would be for a
                        // stale hot slot.
                        return Self::materialize_whole(odms, rid).map(RegionData::Mem);
                    }
                }
            }
        }
        self.io.cache_misses += 1;
        if !odms.store().is_quarantined(rid) {
            if let Some(cold) = odms.store().cold_region(rid) {
                if cold.len() >= min_elems {
                    // Clean spilled typed region: charge the identical
                    // tier read the materializing path would charge
                    // (regions are the unit of simulated I/O; compression
                    // is physical only), then hand back the streaming
                    // handle.
                    let bytes = cold.size_bytes();
                    let tier = odms.store().tier_of(rid)?;
                    self.charge_tier_read(cost, tier, bytes, concurrency);
                    if cache_on_miss {
                        self.cache.put_cold(rid, bytes, cold.len());
                    }
                    return Ok(RegionData::Cold(cold));
                }
            }
        }
        let payload = self.read_from_tier(odms, cost, rid, concurrency)?;
        if cache_on_miss {
            self.cache_payload(odms, rid, &payload);
        }
        Ok(RegionData::Mem(payload))
    }

    /// Fetch a region's payload from wherever it resides in the storage
    /// hierarchy, charging the tier-appropriate cost: DRAM-resident
    /// regions at memory speed, burst-buffer regions at node-local flash
    /// speed (no cross-server contention), PFS regions through the shared
    /// Lustre model.
    fn read_from_tier(
        &mut self,
        odms: &Odms,
        cost: &CostModel,
        rid: RegionId,
        concurrency: u32,
    ) -> PdcResult<Arc<TypedVec>> {
        let (payload, tier) = match odms.store().get(rid) {
            Ok(pt) => pt,
            Err(pdc_types::PdcError::CorruptRegion { .. }) => {
                // Checksum mismatch: restore the region from its pristine
                // durable copy (one extra modeled read, charged to the
                // integrity lane — not the query's I/O counters) and
                // retry. When no pristine copy verifies, the corruption
                // is unrecoverable and the typed error propagates.
                self.integrity.checksum_failures += 1;
                let bytes = odms.store().repair(rid)?;
                self.integrity.repaired_regions += 1;
                let t = cost.pfs.read_cost(bytes, 1, concurrency, ReadPattern::Aggregated);
                self.clock.advance(t);
                self.integrity_time += t;
                odms.store().get(rid)?
            }
            Err(e) => return Err(e),
        };
        let payload = match payload {
            StoredPayload::Typed(v) => v,
            StoredPayload::Raw(_) => {
                return Err(pdc_types::PdcError::Storage(format!(
                    "region {rid} holds raw bytes, not typed data"
                )))
            }
        };
        self.charge_tier_read(cost, tier, payload.size_bytes(), concurrency);
        Ok(payload)
    }

    /// Charge the tier-appropriate simulated read for `bytes` fetched
    /// from `tier`, then consume the fault probe's injected transient
    /// corrupt read when armed (the checksum catches it on arrival; one
    /// re-read, charged to the integrity lane, satisfies the request).
    /// Shared by the materializing and block-streaming miss paths so
    /// their simulated accounting is bit-identical.
    fn charge_tier_read(
        &mut self,
        cost: &CostModel,
        tier: StorageTier,
        bytes: u64,
        concurrency: u32,
    ) {
        match tier {
            StorageTier::Dram => {
                self.clock.advance(cost.dram.read_cost(bytes));
            }
            StorageTier::BurstBuffer => {
                self.io.pfs_read_requests += 1;
                self.clock.advance(cost.bb.read_cost(bytes, 1));
            }
            StorageTier::Pfs => {
                self.io.pfs_bytes_read += bytes;
                self.io.pfs_read_requests += 1;
                self.clock.advance(cost.pfs.read_cost(
                    bytes,
                    1,
                    concurrency,
                    ReadPattern::Aggregated,
                ));
            }
        }
        if self.fault.as_mut().is_some_and(|p| p.take_corrupt_read()) {
            self.integrity.checksum_failures += 1;
            let t = cost.pfs.read_cost(bytes, 1, concurrency, ReadPattern::Aggregated);
            self.clock.advance(t);
            self.integrity_time += t;
        }
    }

    /// Like [`Self::read_data_region`], but without inserting into the
    /// cache on a miss: PDC caches regions during *query evaluation*, not
    /// during data retrieval — which is why `PDC-HI` pays storage reads
    /// on every `get data` (paper §VI-A) while `PDC-H` serves them from
    /// the regions its evaluation already cached.
    pub fn read_data_region_uncached(
        &mut self,
        odms: &Odms,
        cost: &CostModel,
        rid: RegionId,
        concurrency: u32,
        min_elems: u64,
    ) -> PdcResult<Arc<TypedVec>> {
        self.fault_check()?;
        if let Some(slot) = self.cache.get(rid) {
            if slot.elems() >= min_elems {
                let bytes = slot.size_bytes();
                self.io.cache_bytes_read += bytes;
                self.io.cache_hits += 1;
                self.clock.advance(cost.dram.read_cost(bytes));
                match slot {
                    CacheSlot::Hot(p) => return Ok(p),
                    CacheSlot::Cold { .. } => return Self::materialize_whole(odms, rid),
                }
            }
        }
        self.io.cache_misses += 1;
        self.read_from_tier(odms, cost, rid, concurrency)
    }

    /// Read and reconstruct a region's bitmap index, charging the PFS for
    /// the serialized bytes on first touch and DRAM afterwards.
    pub fn read_index_region(
        &mut self,
        odms: &Odms,
        cost: &CostModel,
        data_object: ObjectId,
        region: u32,
        concurrency: u32,
    ) -> PdcResult<Arc<BinnedBitmapIndex>> {
        self.fault_check()?;
        let meta = odms.meta().get(data_object)?;
        let idx_obj = meta.index_object.ok_or_else(|| {
            pdc_types::PdcError::MissingPrerequisite(format!("bitmap index of {data_object}"))
        })?;
        let rid = RegionId::new(idx_obj, region);
        if let Some(idx) = self.index_cache.get(&rid) {
            let bytes = idx.size_bytes_serialized();
            self.io.cache_bytes_read += bytes;
            self.io.cache_hits += 1;
            self.clock.advance(cost.dram.read_cost(bytes));
            return Ok(Arc::clone(idx));
        }
        self.io.cache_misses += 1;
        let raw = odms.store().get_raw(rid)?;
        let bytes = raw.len() as u64;
        self.io.pfs_bytes_read += bytes;
        self.io.pfs_read_requests += 1;
        self.clock.advance(cost.pfs.read_cost(bytes, 1, concurrency, ReadPattern::Aggregated));
        let idx = Arc::new(BinnedBitmapIndex::from_bytes(&raw)?);
        // Bounded index cache with whole-map reset when full (indexes are
        // uniform in size; LRU adds little here).
        if self.index_cache_bytes + bytes > self.index_cache_budget {
            self.index_cache.clear();
            self.index_cache_bytes = 0;
        }
        self.index_cache_bytes += bytes;
        self.index_cache.insert(rid, Arc::clone(&idx));
        Ok(idx)
    }

    /// Charge the I/O for touching a sorted-replica region: PFS on first
    /// touch, DRAM afterwards. (`bytes` = keys + permutation for the
    /// region; the in-memory replica is the data that would have been
    /// read.)
    pub fn touch_sorted_region(
        &mut self,
        cost: &CostModel,
        sorted_rid: RegionId,
        bytes: u64,
        concurrency: u32,
    ) -> PdcResult<()> {
        self.fault_check()?;
        if self.sorted_resident.contains(&sorted_rid) {
            self.io.cache_bytes_read += bytes;
            self.io.cache_hits += 1;
            self.clock.advance(cost.dram.read_cost(bytes));
        } else {
            self.io.cache_misses += 1;
            self.io.pfs_bytes_read += bytes;
            self.io.pfs_read_requests += 1;
            self.clock
                .advance(cost.pfs.read_cost(bytes, 1, concurrency, ReadPattern::Aggregated));
            self.sorted_resident.insert(sorted_rid);
        }
        Ok(())
    }

    /// Charge CPU time for work done since `before` (callers snapshot the
    /// counters, do the work, then settle).
    pub fn settle_cpu(&mut self, cost: &CostModel, before: &WorkCounters) {
        let delta = WorkCounters {
            elements_scanned: self.work.elements_scanned - before.elements_scanned,
            bitmap_words: self.work.bitmap_words - before.bitmap_words,
            sorted_probes: self.work.sorted_probes - before.sorted_probes,
            histogram_bins: self.work.histogram_bins - before.histogram_bins,
            elements_gathered: self.work.elements_gathered - before.elements_gathered,
        };
        self.clock.advance(cost.cpu.work_cost(&delta));
    }

    /// Elapsed simulated time since `mark`.
    pub fn elapsed_since(&self, mark: SimDuration) -> SimDuration {
        self.clock.now().saturating_sub(mark)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdc_odms::ImportOptions;
    use pdc_types::ContainerId;

    fn setup() -> (Odms, ObjectId) {
        let odms = Odms::new(4);
        let c: ContainerId = odms.create_container("t");
        let data = TypedVec::Float((0..4096).map(|i| i as f32).collect());
        let opts =
            ImportOptions { region_bytes: 4096, build_index: true, ..Default::default() };
        let obj = odms.import_array(c, "v", data, &opts).unwrap().object;
        (odms, obj)
    }

    #[test]
    fn data_read_miss_then_hit() {
        let (odms, obj) = setup();
        let cost = CostModel::cori_like();
        let mut st = ServerState::new(1 << 20);
        let rid = RegionId::new(obj, 0);

        let t0 = st.clock.now();
        st.read_data_region(&odms, &cost, rid, 4, 0).unwrap();
        let miss_time = st.elapsed_since(t0);
        assert_eq!(st.io.cache_misses, 1);
        assert_eq!(st.io.pfs_read_requests, 1);

        let t1 = st.clock.now();
        st.read_data_region(&odms, &cost, rid, 4, 0).unwrap();
        let hit_time = st.elapsed_since(t1);
        assert_eq!(st.io.cache_hits, 1);
        assert!(miss_time > hit_time * 5, "miss {miss_time} vs hit {hit_time}");
    }

    #[test]
    fn index_read_reconstructs_and_caches() {
        let (odms, obj) = setup();
        let cost = CostModel::cori_like();
        let mut st = ServerState::new(1 << 20);

        let idx = st.read_index_region(&odms, &cost, obj, 0, 4).unwrap();
        assert!(idx.num_elements() > 0);
        assert_eq!(st.io.pfs_read_requests, 1);
        let again = st.read_index_region(&odms, &cost, obj, 0, 4).unwrap();
        assert_eq!(idx.num_elements(), again.num_elements());
        assert_eq!(st.io.pfs_read_requests, 1, "second read must be cached");
        assert!(st.index_cache_bytes > 0);
    }

    #[test]
    fn sorted_touch_charges_once() {
        let cost = CostModel::cori_like();
        let mut st = ServerState::new(1 << 20);
        let rid = RegionId::new(ObjectId(42), 0);
        st.touch_sorted_region(&cost, rid, 1 << 20, 4).unwrap();
        assert_eq!(st.io.pfs_read_requests, 1);
        st.touch_sorted_region(&cost, rid, 1 << 20, 4).unwrap();
        assert_eq!(st.io.pfs_read_requests, 1);
        assert_eq!(st.io.cache_hits, 1);
    }

    #[test]
    fn settle_cpu_charges_only_delta() {
        let cost = CostModel::cori_like();
        let mut st = ServerState::new(1 << 20);
        st.work.elements_scanned = 1_000_000;
        let before = st.work;
        st.work.elements_scanned += 2_000_000;
        let t0 = st.clock.now();
        st.settle_cpu(&cost, &before);
        let charged = st.elapsed_since(t0);
        // 2M elements at 1 ns = 2 ms
        assert!((charged.as_millis_f64() - 2.0).abs() < 0.01, "{charged}");
    }
}
