//! # pdc-query
//!
//! **The paper's core contribution**: a parallel query service for
//! object-centric data management systems.
//!
//! * [`ast`] — the user-facing query construction API mirroring the C API
//!   of Fig. 1: [`PdcQuery::create`] (`PDCquery_create`),
//!   [`PdcQuery::and`] / [`PdcQuery::or`], [`PdcQuery::set_region`].
//!   Queries serialize for the client→server broadcast.
//! * [`plan`] — normalization of the query tree into per-object value
//!   intervals plus the **selectivity-ordered** evaluation plan driven by
//!   global histograms (§III-D2).
//! * [`exec`] — the per-server plan evaluator: region assignment,
//!   candidate chaining, and strategy dispatch for `PDC-F`, `PDC-H`,
//!   `PDC-HI`, `PDC-SH`, and the per-region adaptive `PDC-A`.
//! * [`ops`] — the typed physical-operator layer the evaluator drives:
//!   prune, exact scan, index probe, sorted range, and verify-rebuild
//!   operators behind one [`ops::PhysicalOp`] trait, plus the
//!   per-region adaptive planner and the [`ops::ExplainPlan`] report.
//! * [`snapshot`] — epoch-consistent metadata snapshots: every plan pins
//!   the metadata/histograms/replica views of its objects at plan time,
//!   so queries in flight during a streaming append answer exactly the
//!   extent they planned against.
//! * [`state`] — per-logical-server state: region cache, index cache,
//!   resident sorted regions, simulated clock and counters.
//! * [`engine`] — the [`QueryEngine`]: broadcast, load-balanced region
//!   assignment, result aggregation, `get_nhits` / `get_selection` /
//!   `get_data` / `get_data_batch` / `get_histogram`.
//! * [`multi`] — combined metadata + data queries over many small objects
//!   (the H5BOSS scenario of §VI-C).
//! * [`qcache`] — per-server, epoch-invalidated caches of query
//!   artifacts (prune verdicts, region-scan selections, index answers)
//!   powering [`QueryEngine::run_batch`]'s shared-scan batching. Hits
//!   skip host recomputation only; simulated costs replay exactly.
//! * [`integrity`] — data-plane integrity: deterministic corruption
//!   injection and the client-side verify-and-repair preflight sweep;
//!   repair work is charged to the breakdown's dedicated `integrity`
//!   lane.
//! * [`service`] — the multi-tenant, admission-controlled **service
//!   loop** ([`QueryEngine::serve`]): per-tenant FIFO queues with
//!   deficit-round-robin weighted-fair dispatch, cost-budget admission
//!   control (typed defer/reject outcomes), and continuous batching
//!   that folds dispatched queries into an open shared-scan group —
//!   scheduling affects *when*, never *what*: per-query results and
//!   simulated charges stay bit-identical to solo execution.

pub mod ast;
pub mod engine;
pub mod exec;
pub mod integrity;
pub mod multi;
pub mod ops;
pub mod parse;
pub mod plan;
pub mod qcache;
pub(crate) mod recover;
pub mod service;
pub mod snapshot;
pub mod state;

pub use ast::PdcQuery;
pub use parse::parse_query;
pub use engine::{
    BatchOutcome, BatchStats, EngineConfig, GetDataOutcome, MembershipReport, QueryEngine,
    QueryOutcome, Strategy,
};
pub use ops::{
    directory_stats, estimate_plan_cost, DirectoryStats, ExplainPhase, ExplainPlan,
    JointContext, OpKind, PhysicalOp, RegionExplain,
};
pub use qcache::{CacheStats, GroupStats, QueryArtifactCache, SharedScanGroup};
pub use service::{
    percentile, poisson_times, splitmix64, Arrival, RejectedQuery, ScheduleClock,
    ServedQuery, ServiceConfig, ServiceReport, ServiceStats, TenantSpec, TenantSummary,
    TraceEvent,
};
pub use integrity::{apply_corruption, preflight, CorruptionReport};
pub use multi::MetaDataQueryOutcome;
pub use plan::QueryPlan;
pub use snapshot::MetaSnapshot;
pub use state::ServerState;
