//! The typed physical-operator layer: every way a server can answer one
//! region's predicate, behind a single [`PhysicalOp`] trait.
//!
//! Before this layer existed, the four strategies were four hand-rolled
//! branches duplicated across `eval_plan`'s primary pass, `point_check`,
//! the `multi.rs` count path, and the batch prewarm — each re-implementing
//! the same cost-lane charges, artifact-cache lookups, and integrity
//! fallbacks. Now each access method is one operator:
//!
//! * [`PruneOp`] — histogram min/max region elimination (the paper's
//!   pruning use of the per-region histogram);
//! * [`ScanExactOp`] — the fused-kernel exact scan, whole-region or
//!   restricted to candidate runs (the point-check mode);
//! * [`IndexProbeOp`] — WAH bitmap probe with a conditional candidate
//!   check against the raw data;
//! * [`SortedRangeOp`] — the contiguous slice of one sorted-replica
//!   region overlapping a binary-searched span;
//! * [`VerifyRebuildOp`] — the integrity fallback: answer a region whose
//!   index failed validation by the exact scan, then rebuild and rewrite
//!   the index (charged to the `integrity` lane).
//!
//! [`execute_region`] drives the pipeline — prune, then the access
//! operator chosen by a [`RegionPlanner`] — so retry/reassignment
//! (`recover.rs`), corruption fallback, and `qcache.rs` artifact caching
//! are written once against the trait.
//!
//! **Cost fidelity.** Operators charge exactly what the pre-refactor
//! strategy branches charged, including their settling quirks: the primary
//! lane's histogram bin walks are work-counted but never clock-settled
//! (the historical behaviour every recorded baseline embeds), while the
//! point-check and count lanes settle theirs. `settle_cpu` is linear in
//! the counter deltas, so per-operator settling splits the old bracketed
//! settles without changing any total.
//!
//! **Adaptive selection.** [`Strategy::Adaptive`] consults the region
//! histogram's [`HitBounds`] and aux availability per (region, predicate):
//! a probe is chosen only when the estimate predicts a candidate-free
//! index answer (`lower == upper`) *and* the modelled probe cost beats the
//! scan in both the storage-bound and CPU-bound regimes (the planner
//! cannot see cache residency, so the probe must dominate) — under this
//! cost model a candidate check re-reads the whole data region, so a
//! probe with predicted boundary bins can never win. At the
//! constraint level, [`adaptive_sorted_choice`] compares the sorted band
//! against the per-region alternative. Every decision is a pure function
//! of metadata, histograms, and the cost model — independent of cache
//! residency — so retried and reassigned slots (and the client's
//! `sorted_hint`) always agree.

use crate::engine::Strategy;
use crate::exec::EvalCtx;
use crate::qcache::IntervalKey;
use crate::snapshot::MetaSnapshot;
use crate::state::{RegionData, ServerState};
use pdc_directory::JointGrid;
use pdc_histogram::{HitBounds, Histogram};
use pdc_sorted::SortedReplica;
use pdc_storage::{ColdRegion, CostModel, Fnv1a, SimDuration, WorkCounters};
use pdc_types::{
    kernels, Interval, ObjectId, PdcError, PdcResult, RegionId, RegionSpec, Run, Selection,
};
use std::sync::Arc;

/// The operator vocabulary (what `EXPLAIN` reports per region).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Histogram region elimination.
    Prune,
    /// Exact data scan (fused kernels).
    ScanExact,
    /// Bitmap-index probe (+ conditional candidate check).
    IndexProbe,
    /// Sorted-replica band slice.
    SortedRange,
    /// Integrity fallback: exact scan + index rebuild.
    VerifyRebuild,
}

impl OpKind {
    /// Short label for EXPLAIN tables.
    pub fn label(&self) -> &'static str {
        match self {
            OpKind::Prune => "prune",
            OpKind::ScanExact => "scan",
            OpKind::IndexProbe => "probe",
            OpKind::SortedRange => "sorted",
            OpKind::VerifyRebuild => "rebuild",
        }
    }
}

/// One region's unit of work: which object/region, its global span, and
/// the predicate interval to answer on it.
#[derive(Debug, Clone)]
pub struct RegionTask {
    /// The data object.
    pub object: ObjectId,
    /// Region index (for [`SortedRangeOp`], the *sorted* region index).
    pub region: u32,
    /// The region's span in global coordinates (for [`SortedRangeOp`],
    /// in sorted coordinates).
    pub span: RegionSpec,
    /// The predicate.
    pub interval: Interval,
}

/// What an operator produced.
#[derive(Debug, Clone)]
pub enum OpOutput {
    /// Nothing decided — continue the pipeline (prune verdict: keep).
    Pass,
    /// The region cannot contain matches; the pipeline stops here.
    Pruned,
    /// The region's matching locations, in global coordinates.
    Selected(Selection),
}

/// A physical operator: answers one [`RegionTask`] on one server,
/// charging its simulated cost lanes uniformly and surfacing only typed
/// [`PdcError`]s.
pub trait PhysicalOp {
    /// Which operator this is (EXPLAIN vocabulary).
    fn kind(&self) -> OpKind;
    /// Run the operator against one region.
    fn run(&self, ctx: &EvalCtx, st: &mut ServerState, task: &RegionTask)
        -> PdcResult<OpOutput>;
}

/// The shared prune formula: a region is eliminated when the histogram's
/// upper hit bound for the interval is zero (subsumes the min/max test).
/// Every lane — primary, point check, counts, batch prewarm — must agree
/// on this verdict bit-for-bit, which is why it lives here.
pub fn prune_verdict(h: &Histogram, interval: &Interval) -> bool {
    h.estimate_hits(interval).upper == 0
}

/// One registered joint grid as seen from one constraint of a
/// conjunction: the grid, which axis the constraint's object occupies,
/// and the *other* variable's interval in the same conjunction.
struct JointPairCtx {
    grid: Arc<JointGrid>,
    /// Whether the constraint's object is the grid's `a` axis.
    self_is_a: bool,
    /// The conjunction's interval on the grid's other object.
    other_iv: Interval,
}

/// The cross-variable joint-bounds context of one constraint inside one
/// conjunction: every registered grid pairing the constraint's object
/// with another constrained object, plus a stable hash identifying the
/// context for prune-verdict cache keying (`0` never occurs — an empty
/// context is represented as no context at all).
pub struct JointContext {
    pairs: Vec<JointPairCtx>,
    /// Cache-key discriminator: FNV over the participating pairs and the
    /// other-side intervals, forced nonzero.
    pub ctx_hash: u64,
}

impl JointContext {
    /// The joint context of `object` inside a conjunction constraining
    /// `(object, interval)` pairs, from the snapshot's pinned grids.
    /// `None` when no registered grid pairs `object` with another
    /// constrained object — the common case, costing one slice walk.
    pub fn build(
        snap: &MetaSnapshot,
        object: ObjectId,
        constraints: &[(ObjectId, Interval)],
    ) -> Option<Arc<JointContext>> {
        let mut pairs = Vec::new();
        // Shared streaming FNV-1a (deterministic across runs —
        // verdict-cache keys and EXPLAIN output must not depend on
        // hasher seeding).
        let mut fnv = Fnv1a::new();
        // Snapshot grids are pinned in sorted pair order, so the context
        // (and its hash) is a pure function of the conjunction.
        for grid in snap.joint_grids() {
            let (a, b) = grid.pair();
            let (self_is_a, other) = if a == object {
                (true, b)
            } else if b == object {
                (false, a)
            } else {
                continue;
            };
            let Some((_, other_iv)) =
                constraints.iter().find(|(o, iv)| *o == other && !iv.is_all())
            else {
                continue;
            };
            fnv.write_u64(a.raw());
            fnv.write_u64(b.raw());
            fnv.write_u64(u64::from(self_is_a));
            {
                use std::hash::Hash;
                IntervalKey::of(other_iv).hash(&mut fnv);
            }
            pairs.push(JointPairCtx { grid: Arc::clone(grid), self_is_a, other_iv: *other_iv });
        }
        if pairs.is_empty() {
            return None;
        }
        Some(Arc::new(JointContext { pairs, ctx_hash: fnv.finish() | 1 }))
    }

    /// Joint-grid cells a verdict for `(region, span_len)` examines — the
    /// deterministic work charge, independent of the verdict itself.
    pub fn cells_examined(&self, region: u32, span_len: u64) -> u64 {
        self.pairs.iter().map(|p| p.grid.cells_examined(region, span_len)).sum()
    }

    /// Whether any participating grid proves the region empty for the
    /// joint rectangle (`self_iv` × that grid's other-side interval).
    pub fn proves_empty(&self, region: u32, span_len: u64, self_iv: &Interval) -> bool {
        self.pairs.iter().any(|p| {
            let (iva, ivb) = if p.self_is_a {
                (self_iv, &p.other_iv)
            } else {
                (&p.other_iv, self_iv)
            };
            p.grid.rect_upper(region, span_len, iva, ivb) == Some(0)
        })
    }

    /// The tightest joint upper bound on the region's hits for `self_iv`,
    /// or `None` when no grid covers the region's span.
    pub fn upper(&self, region: u32, span_len: u64, self_iv: &Interval) -> Option<u64> {
        self.pairs
            .iter()
            .filter_map(|p| {
                let (iva, ivb) = if p.self_is_a {
                    (self_iv, &p.other_iv)
                } else {
                    (&p.other_iv, self_iv)
                };
                p.grid.rect_upper(region, span_len, iva, ivb)
            })
            .min()
    }
}

/// Per-constraint directory statistics for EXPLAIN: how the hierarchical
/// directory resolved the candidate set and what the joint bounds killed
/// on top. Pure host observation — computing these charges nothing.
#[derive(Debug, Clone)]
pub struct DirectoryStats {
    /// The constrained object.
    pub object: ObjectId,
    /// Populated bins the range→bin probe visited.
    pub bins_probed: u64,
    /// Regions the object has in total.
    pub regions_total: u32,
    /// Regions killed by the 1-D bounds-overlap test (non-candidates).
    pub killed_1d: u32,
    /// Candidate regions additionally proven empty by joint bounds.
    pub killed_joint: u32,
    /// Regions admitted after both levels of pruning.
    pub admitted: u32,
}

/// Compute the directory statistics of one constraint, when the object
/// carries a snapshot-visible directory. Shared by the engine's EXPLAIN
/// assembly and the pruning benchmark.
pub fn directory_stats(
    snap: &MetaSnapshot,
    object: ObjectId,
    interval: &Interval,
    joint: Option<&JointContext>,
) -> Option<DirectoryStats> {
    let meta = snap.meta(object).ok()?;
    let dir = snap.directory(object)?;
    let probe = dir.probe(interval);
    let regions_total = meta.num_regions();
    let mut killed_joint = 0u32;
    if let Some(j) = joint {
        for &r in &probe.candidates {
            if r < regions_total && j.proves_empty(r, meta.region_span(r).len, interval) {
                killed_joint += 1;
            }
        }
    }
    let candidates = probe.candidates.iter().filter(|&&r| r < regions_total).count() as u32;
    Some(DirectoryStats {
        object,
        bins_probed: probe.bins_probed,
        regions_total,
        killed_1d: regions_total - candidates,
        killed_joint,
        admitted: candidates - killed_joint,
    })
}

/// Histogram min/max region elimination.
pub struct PruneOp {
    hists: Arc<Vec<Histogram>>,
    /// Whether the bin walk is clock-settled by this operator. The
    /// point-check and count lanes settle their walks; the primary lane
    /// historically charges the work counters without settling (a quirk
    /// every recorded cost baseline embeds, so it is preserved exactly).
    settle: bool,
    /// Cross-variable joint bounds participating in this lane's verdict
    /// (`None` when no registered grid pairs the object with another
    /// constrained variable — then the verdict and its charges are
    /// exactly the historical 1-D ones).
    joint: Option<Arc<JointContext>>,
}

impl PruneOp {
    /// The deterministic work charge of one verdict: the histogram bin
    /// walk plus the joint-grid cell walks. Charged identically on cache
    /// hits, misses, and directory skips.
    fn charge_verdict_work(&self, st: &mut ServerState, task: &RegionTask) {
        let h = &self.hists[task.region as usize];
        st.work.histogram_bins += h.num_bins() as u64;
        if let Some(j) = &self.joint {
            st.work.histogram_bins += j.cells_examined(task.region, task.span.len);
        }
    }

    fn ctx_hash(&self) -> u64 {
        self.joint.as_ref().map_or(0, |j| j.ctx_hash)
    }

    /// Replay the prune pipeline for a region the directory already
    /// proved disjoint: charges, cache seeding, and settling are
    /// bit-identical to [`PhysicalOp::run`] with a `true` verdict — which
    /// is what `run` necessarily computes, since disjoint bounds force
    /// `estimate_hits` to zero. Only the host-side estimate walk is
    /// skipped.
    fn run_directory_pruned(&self, ctx: &EvalCtx, st: &mut ServerState, task: &RegionTask) {
        let before = st.work;
        self.charge_verdict_work(st, task);
        if ctx.use_cache {
            st.qcache.prune_or_compute(
                task.object,
                task.region,
                task.span.len,
                &task.interval,
                self.ctx_hash(),
                || true,
            );
        }
        if self.settle {
            st.settle_cpu(ctx.cost, &before);
        }
    }
}

impl PhysicalOp for PruneOp {
    fn kind(&self) -> OpKind {
        OpKind::Prune
    }

    fn run(
        &self,
        ctx: &EvalCtx,
        st: &mut ServerState,
        task: &RegionTask,
    ) -> PdcResult<OpOutput> {
        let before = st.work;
        let h = &self.hists[task.region as usize];
        // The bin and joint-cell walks are charged whether or not the
        // verdict is cached — a cache hit only skips the host-side
        // estimate walks.
        self.charge_verdict_work(st, task);
        let joint = self.joint.as_deref();
        // Non-short-circuiting `|`: the joint test runs whether or not
        // the 1-D test already pruned, so the verdict's host work is a
        // pure function of the task — replay paths charge identically.
        let verdict = || {
            prune_verdict(h, &task.interval)
                | joint.is_some_and(|j| j.proves_empty(task.region, task.span.len, &task.interval))
        };
        let pruned = if ctx.use_cache {
            st.qcache.prune_or_compute(
                task.object,
                task.region,
                task.span.len,
                &task.interval,
                self.ctx_hash(),
                verdict,
            )
        } else {
            verdict()
        };
        if self.settle {
            st.settle_cpu(ctx.cost, &before);
        }
        Ok(if pruned { OpOutput::Pruned } else { OpOutput::Pass })
    }
}

/// Exact scan of one region's data through the fused kernel layer.
/// `candidates: None` scans the whole region; `Some(runs)` is the
/// point-check mode — the region is still read wholly (regions are the
/// unit of I/O) but only the candidate runs are scanned and charged.
///
/// A spilled region is scanned **block-fused**: each compressed block is
/// decoded (through the budgeted block cache) and scanned in one pass,
/// so the whole region is never materialized — while the simulated
/// charges and the resulting selection are bit-identical to the resident
/// path (per-block runs are re-canonicalized by [`Selection::from_runs`],
/// which is chunk-boundary independent).
pub struct ScanExactOp {
    /// Candidate runs to restrict the scan to (global coordinates,
    /// clipped to the region), or `None` for a whole-region scan.
    pub candidates: Option<Vec<Run>>,
}

/// Block-fused whole-extent scan of a spilled region: decode + scan one
/// block at a time, emitting runs in global coordinates. `scan_elems`
/// clips to the plan-time snapshot's extent.
fn scan_cold_whole(
    cold: &ColdRegion,
    interval: &Interval,
    global_offset: u64,
    scan_elems: u64,
) -> PdcResult<Selection> {
    let mut out: Vec<Run> = Vec::new();
    for b in 0..cold.n_blocks() {
        let (start, end) = cold.block_span(b);
        if start >= scan_elems {
            break;
        }
        let hi = end.min(scan_elems);
        let block = cold.read_block(b)?;
        kernels::scan_range(
            &block,
            interval,
            0,
            (hi - start) as usize,
            global_offset + start,
            &mut out,
        );
    }
    Ok(Selection::from_runs(out))
}

/// Block-fused scan of one candidate run (global coordinates) inside a
/// spilled region: touches only the blocks the run overlaps.
fn scan_cold_run(
    cold: &ColdRegion,
    interval: &Interval,
    global_offset: u64,
    run: &Run,
    out: &mut Vec<Run>,
) -> PdcResult<()> {
    let lo = run.start - global_offset;
    let hi = (run.end() - global_offset).min(cold.len());
    for b in cold.blocks_overlapping(lo, hi) {
        let (bs, be) = cold.block_span(b);
        let s = lo.max(bs);
        let e = hi.min(be);
        if s >= e {
            continue;
        }
        let block = cold.read_block(b)?;
        kernels::scan_range(
            &block,
            interval,
            (s - bs) as usize,
            (e - bs) as usize,
            global_offset + s,
            out,
        );
    }
    Ok(())
}

impl PhysicalOp for ScanExactOp {
    fn kind(&self) -> OpKind {
        OpKind::ScanExact
    }

    fn run(
        &self,
        ctx: &EvalCtx,
        st: &mut ServerState,
        task: &RegionTask,
    ) -> PdcResult<OpOutput> {
        let RegionTask { object, region, span, interval } = task;
        let before = st.work;
        let src = st.read_data_source(
            ctx.odms,
            ctx.cost,
            RegionId::new(*object, *region),
            ctx.n_servers,
            span.len,
            true,
        )?;
        // An in-flight append can grow the stored payload past the span
        // this query's snapshot planned against; scan exactly the
        // snapshot's extent so the result is bit-identical to a store
        // sealed at plan time.
        let payload = match &src {
            RegionData::Mem(p) if (p.len() as u64) > span.len => {
                Some(Arc::new(p.slice(0, span.len as usize)))
            }
            RegionData::Mem(p) => Some(Arc::clone(p)),
            RegionData::Cold(_) => None,
        };
        let sel = match &self.candidates {
            None => {
                st.work.elements_scanned += src.len().min(span.len);
                // The read and the scan charge above are unconditional;
                // only the kernel invocation itself is served from the
                // cache, so the simulated accounting of a hit equals a
                // miss exactly.
                let cached = if ctx.use_cache {
                    st.qcache.get_scan(*object, *region, span.len, interval)
                } else {
                    None
                };
                match cached {
                    Some(sel) => sel,
                    None => {
                        let sel = match (&payload, &src) {
                            (Some(payload), _) => {
                                if ctx.scan_kernels {
                                    kernels::scan_interval_threaded(
                                        payload,
                                        interval,
                                        span.offset,
                                        ctx.scan_threads,
                                    )
                                } else {
                                    kernels::scan_interval_scalar(payload, interval, span.offset)
                                }
                            }
                            (None, RegionData::Cold(cold)) => {
                                scan_cold_whole(cold, interval, span.offset, span.len)?
                            }
                            (None, RegionData::Mem(_)) => unreachable!("payload set for Mem"),
                        };
                        if ctx.use_cache {
                            st.qcache.put_scan(*object, *region, span.len, interval, sel.clone());
                        }
                        sel
                    }
                }
            }
            Some(runs) => {
                // Opportunistic reuse: when some earlier query in the
                // batch already scanned this whole (region, interval)
                // pair, answer each candidate run by clipping the cached
                // full-region selection instead of rescanning — the
                // clipped coordinate set is exactly what `scan_range`
                // would emit, and the scan charge stays per-run.
                let cached_full = if ctx.use_cache {
                    st.qcache.peek_scan(*object, *region, span.len, interval).cloned()
                } else {
                    None
                };
                let mut out: Vec<Run> = Vec::new();
                for run in runs {
                    st.work.elements_scanned += run.len;
                    if let Some(full) = &cached_full {
                        out.extend_from_slice(full.restrict_to_span(run.start, run.len).runs());
                    } else if let RegionData::Cold(cold) = &src {
                        scan_cold_run(cold, interval, span.offset, run, &mut out)?;
                    } else if let Some(payload) = &payload {
                        if ctx.scan_kernels {
                            kernels::scan_range(
                                payload,
                                interval,
                                (run.start - span.offset) as usize,
                                (run.end() - span.offset) as usize,
                                run.start,
                                &mut out,
                            );
                        } else {
                            let mut open: Option<Run> = None;
                            for c in run.start..run.end() {
                                let v = payload.get_f64((c - span.offset) as usize);
                                if interval.contains(v) {
                                    match &mut open {
                                        Some(r) => r.len += 1,
                                        None => open = Some(Run::new(c, 1)),
                                    }
                                } else if let Some(r) = open.take() {
                                    out.push(r);
                                }
                            }
                            if let Some(r) = open {
                                out.push(r);
                            }
                        }
                    }
                }
                Selection::from_runs(out)
            }
        };
        st.settle_cpu(ctx.cost, &before);
        Ok(OpOutput::Selected(sel))
    }
}

/// Answer one region from its bitmap index; the raw data is read only
/// when boundary bins need a candidate check.
///
/// A region whose index fails validation — stored checksum mismatch,
/// undecodable bytes, or an element count that disagrees with the region
/// span — is quarantined and answered by [`VerifyRebuildOp`] instead;
/// only infrastructure errors (`ServerFailed`, missing prerequisites)
/// propagate.
pub struct IndexProbeOp;

impl PhysicalOp for IndexProbeOp {
    fn kind(&self) -> OpKind {
        OpKind::IndexProbe
    }

    fn run(
        &self,
        ctx: &EvalCtx,
        st: &mut ServerState,
        task: &RegionTask,
    ) -> PdcResult<OpOutput> {
        let RegionTask { object, region, span, interval } = task;
        let before = st.work;
        let idx = match st.read_index_region(ctx.odms, ctx.cost, *object, *region, ctx.n_servers) {
            Ok(idx) if idx.num_elements() == span.len => idx,
            Ok(_) => {
                // Decoded cleanly but describes the wrong number of
                // elements: treat as invalid, same as a failed decode.
                return VerifyRebuildOp.run(ctx, st, task);
            }
            Err(PdcError::CorruptRegion { .. }) => {
                st.integrity.checksum_failures += 1;
                return VerifyRebuildOp.run(ctx, st, task);
            }
            Err(PdcError::Codec(_)) => {
                return VerifyRebuildOp.run(ctx, st, task);
            }
            Err(PdcError::NoSuchRegion(_)) => {
                // Online index maintenance: a streaming append dropped
                // the tail region's stale index (or created a region
                // whose index was deferred). First probe answers by the
                // exact scan and rebuilds the index in place.
                return VerifyRebuildOp.run(ctx, st, task);
            }
            Err(e) => return Err(e),
        };
        st.work.bitmap_words += idx.size_bytes_serialized() / 4;
        // Cached replay: the index read and word charge above already
        // happened; a hit re-issues the conditional candidate data read
        // and its scan charge from the recorded answer, then returns the
        // stored selection — byte-for-byte what the probe below produces.
        let cached = if ctx.use_cache {
            st.qcache.get_indexed(*object, *region, span.len, interval)
        } else {
            None
        };
        if let Some(entry) = cached {
            if entry.needs_data_read {
                // Replayed candidate read: only the charges matter, so a
                // spilled region stays cold (no materialization).
                st.read_data_source(
                    ctx.odms,
                    ctx.cost,
                    RegionId::new(*object, *region),
                    ctx.n_servers,
                    span.len,
                    true,
                )?;
                st.work.elements_scanned += entry.candidates_count;
            }
            st.settle_cpu(ctx.cost, &before);
            return Ok(OpOutput::Selected(entry.selection));
        }
        // The planner fuses per-object conjunction chains into one
        // interval, so this is the 1-chain case of the index's
        // conjunction API.
        let ans = idx.query_conj(std::slice::from_ref(interval));
        let needs_data_read = ans.needs_candidate_check();
        let candidates_count = ans.candidates.count();
        let local = if needs_data_read {
            // Boundary bins: read the region's data and verify candidates.
            let payload = st.read_data_region(
                ctx.odms,
                ctx.cost,
                RegionId::new(*object, *region),
                ctx.n_servers,
                span.len,
            )?;
            st.work.elements_scanned += candidates_count;
            if ctx.scan_kernels {
                let confirmed = kernels::filter_selection(&payload, interval, &ans.candidates);
                ans.sure.union(&confirmed)
            } else {
                ans.resolve(interval, |i| payload.get_f64(i as usize))
            }
        } else {
            ans.sure
        };
        st.settle_cpu(ctx.cost, &before);
        let shifted = local.shifted(span.offset);
        if ctx.use_cache {
            st.qcache.put_indexed(
                *object,
                *region,
                span.len,
                interval,
                crate::qcache::IndexedEntry {
                    needs_data_read,
                    candidates_count,
                    selection: shifted.clone(),
                },
            );
        }
        Ok(OpOutput::Selected(shifted))
    }
}

/// Graceful degradation for a region whose bitmap index failed
/// validation: answer the region exactly by scanning its data (which
/// transparently repairs a corrupt data copy too), then rebuild the index
/// from the clean data and write it back so later queries take the
/// indexed path again. The rebuild's write and scan work land on the
/// `integrity` lane.
pub struct VerifyRebuildOp;

impl PhysicalOp for VerifyRebuildOp {
    fn kind(&self) -> OpKind {
        OpKind::VerifyRebuild
    }

    fn run(
        &self,
        ctx: &EvalCtx,
        st: &mut ServerState,
        task: &RegionTask,
    ) -> PdcResult<OpOutput> {
        let out = ScanExactOp { candidates: None }.run(ctx, st, task)?;
        let rebuilt = ctx.odms.rebuild_index_region(task.object, task.region)?;
        // Drop any resident decode of the replaced index so later probes
        // pick up the rebuilt one instead of falling back forever.
        if let Some(idx_obj) =
            ctx.odms.meta().get(task.object).ok().and_then(|m| m.index_object)
        {
            if let Some(old) = st.index_cache.remove(&RegionId::new(idx_obj, task.region)) {
                st.index_cache_bytes =
                    st.index_cache_bytes.saturating_sub(old.size_bytes_serialized());
            }
        }
        st.integrity.aux_rebuilds += 1;
        st.integrity.fallback_regions += 1;
        st.io.bytes_written += rebuilt;
        st.io.write_requests += 1;
        let scan = WorkCounters { elements_scanned: task.span.len, ..Default::default() };
        let t = ctx.cost.pfs.write_cost(rebuilt, 1, ctx.n_servers) + ctx.cost.cpu.work_cost(&scan);
        st.clock.advance(t);
        st.integrity_time += t;
        Ok(out)
    }
}

/// The contiguous matching slice of one value-partitioned sorted-replica
/// region. The task's `region`/`span` are in *sorted* coordinates; the
/// returned selection is translated through the permutation back to
/// global coordinates.
pub struct SortedRangeOp {
    /// The replica being sliced.
    pub replica: Arc<SortedReplica>,
    /// The binary-searched matching span (sorted coordinates).
    pub sspan: Run,
    /// Bytes per data element (keys cost `elem_bytes + 8` with the
    /// permutation word).
    pub elem_bytes: u64,
    /// The pseudo object id keying sorted-region residency.
    pub sorted_object: ObjectId,
}

impl PhysicalOp for SortedRangeOp {
    fn kind(&self) -> OpKind {
        OpKind::SortedRange
    }

    fn run(
        &self,
        ctx: &EvalCtx,
        st: &mut ServerState,
        task: &RegionTask,
    ) -> PdcResult<OpOutput> {
        let before = st.work;
        let region_start = task.span.offset;
        let region_end = task.span.end();
        // Reading a sorted region brings in keys + permutation.
        let bytes = (region_end - region_start) * (self.elem_bytes + 8);
        st.touch_sorted_region(
            ctx.cost,
            RegionId::new(self.sorted_object, task.region),
            bytes,
            ctx.n_servers,
        )?;
        // The matching slice inside this region is contiguous.
        let lo = self.sspan.start.max(region_start);
        let hi = self.sspan.end().min(region_end);
        let sel = if lo < hi {
            st.work.elements_scanned += hi - lo;
            Selection::from_unsorted_coords(
                self.replica.perm()[lo as usize..hi as usize].to_vec(),
            )
        } else {
            Selection::empty()
        };
        st.settle_cpu(ctx.cost, &before);
        Ok(OpOutput::Selected(sel))
    }
}

/// Which access operator the planner chose for a region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessChoice {
    /// Exact data scan.
    Scan,
    /// Bitmap-index probe.
    Probe,
}

/// Per-(object, strategy) operator planner: owns the prune operator and
/// picks each region's access operator. Built once per object per
/// evaluation lane; all choices are pure functions of metadata,
/// histograms, and the cost model (never of cache state), so every slot —
/// original, retried, or reassigned — resolves the same pipeline.
pub struct RegionPlanner {
    strategy: Strategy,
    prune: Option<PruneOp>,
    hists: Option<Arc<Vec<Histogram>>>,
    /// Whether the object has a bitmap index to probe.
    index_available: bool,
    /// `HistogramIndex` without an index: `true` degrades to a scan (the
    /// count lane's historical behaviour), `false` lets the probe surface
    /// `MissingPrerequisite` (the primary lane's).
    missing_index_scans: bool,
    adaptive: Option<AdaptiveInputs>,
    /// The conjunction's joint-bounds context for this object, when any.
    joint: Option<Arc<JointContext>>,
}

/// Pre-resolved inputs for the adaptive per-region cost comparison.
struct AdaptiveInputs {
    elem_bytes: u64,
    /// Serialized index bytes per region (store peek; `None` where the
    /// region has no stored index payload).
    index_region_bytes: Vec<Option<u64>>,
}

impl RegionPlanner {
    fn build(
        ctx: &EvalCtx,
        object: ObjectId,
        hists: Option<Arc<Vec<Histogram>>>,
        missing_index_scans: bool,
        joint: Option<Arc<JointContext>>,
    ) -> PdcResult<RegionPlanner> {
        let meta = ctx.snap.meta(object)?;
        let index_available = meta.index_object.is_some();
        let adaptive = if ctx.strategy == Strategy::Adaptive && index_available {
            // Peek the stored index sizes up front (host-side metadata
            // lookup, no simulated charge — this is planning, like
            // building the query plan itself).
            let idx_obj = meta.index_object.expect("index_available");
            let index_region_bytes = (0..meta.num_regions())
                .map(|r| ctx.odms.store().payload_size(RegionId::new(idx_obj, r)))
                .collect();
            Some(AdaptiveInputs { elem_bytes: meta.pdc_type.size_bytes(), index_region_bytes })
        } else {
            None
        };
        Ok(RegionPlanner {
            strategy: ctx.strategy,
            prune: hists.as_ref().map(|hs| PruneOp {
                hists: Arc::clone(hs),
                settle: missing_index_scans,
                joint: joint.clone(),
            }),
            hists,
            index_available,
            missing_index_scans,
            adaptive,
            joint,
        })
    }

    /// Planner for the primary lane of `exec::eval_primary`: `FullScan`
    /// loads no histograms (it never prunes); every other strategy
    /// requires them. Bin walks are left unsettled (the primary lane's
    /// historical accounting), and a missing index under
    /// `HistogramIndex` is a hard `MissingPrerequisite`.
    pub fn for_primary(
        ctx: &EvalCtx,
        object: ObjectId,
        joint: Option<Arc<JointContext>>,
    ) -> PdcResult<RegionPlanner> {
        let hists = match ctx.strategy {
            Strategy::FullScan => None,
            _ => Some(ctx.snap.region_histograms(object)?),
        };
        Self::build(ctx, object, hists, false, joint)
    }

    /// Planner for the point-check (filter) and count lanes: histograms
    /// are advisory (objects without them simply never prune), bin walks
    /// are clock-settled, and `HistogramIndex` degrades to a scan when
    /// the object has no index.
    pub fn for_filter(
        ctx: &EvalCtx,
        object: ObjectId,
        joint: Option<Arc<JointContext>>,
    ) -> PdcResult<RegionPlanner> {
        let hists = match ctx.strategy {
            Strategy::FullScan => None,
            _ => ctx.snap.region_histograms_opt(object),
        };
        Self::build(ctx, object, hists, true, joint)
    }

    /// The prune operator, when this lane/strategy prunes at all.
    pub fn prune_op(&self) -> Option<&PruneOp> {
        self.prune.as_ref()
    }

    /// The hit-bound estimate for one region task (`None` when the lane
    /// carries no histograms): the histogram's bounds, with the upper
    /// bound tightened by the joint grids when the conjunction carries a
    /// joint context. Pure host work — EXPLAIN uses it to report
    /// estimated vs actual selectivity without charging, and the adaptive
    /// access choice consumes the tightened bounds.
    pub fn estimate_for(&self, task: &RegionTask) -> Option<HitBounds> {
        let mut est = self
            .hists
            .as_ref()
            .map(|hs| hs[task.region as usize].estimate_hits(&task.interval))?;
        if let Some(j) = &self.joint {
            if let Some(upper) = j.upper(task.region, task.span.len, &task.interval) {
                est.upper = est.upper.min(upper);
                // The 1-D lower bound counts elements matching this
                // variable alone; the joint rectangle can exclude them,
                // so the conjunction's lower bound degrades to 0 when the
                // joint upper undercuts it.
                est.lower = est.lower.min(est.upper);
            }
        }
        Some(est)
    }

    /// Choose the access operator for one region.
    pub fn access_for(&self, ctx: &EvalCtx, task: &RegionTask) -> AccessChoice {
        match self.strategy {
            Strategy::HistogramIndex => {
                if self.index_available || !self.missing_index_scans {
                    AccessChoice::Probe
                } else {
                    AccessChoice::Scan
                }
            }
            Strategy::Adaptive => self.adaptive_choice(ctx, task),
            _ => AccessChoice::Scan,
        }
    }

    /// The adaptive scan-vs-probe comparison for one region. A probe is
    /// modelled as the index read plus — when the histogram bounds
    /// disagree (boundary bins expected) — a full candidate data read;
    /// the estimates are cold-storage costs so the verdict is stable
    /// across cache states and server reassignment.
    ///
    /// Because the planner deliberately cannot observe cache residency,
    /// the probe must *dominate*: win the cold (storage-bound) estimate
    /// AND the warm (CPU-bound) one, where the probe pays
    /// `bitmap_ns_per_word` over the serialized index against the scan's
    /// `scan_ns_per_element` over the span. A poorly-compressing index
    /// (serialized size approaching the data size) loses the CPU regime
    /// and the planner stays with the scan rather than gamble on tier.
    fn adaptive_choice(&self, ctx: &EvalCtx, task: &RegionTask) -> AccessChoice {
        if !self.index_available {
            return AccessChoice::Scan;
        }
        let (Some(a), Some(est)) = (self.adaptive.as_ref(), self.estimate_for(task)) else {
            return AccessChoice::Scan;
        };
        let data_bytes = task.span.len * a.elem_bytes;
        let index_bytes = a.index_region_bytes[task.region as usize]
            .unwrap_or((data_bytes as f64 * pdc_bitmap::TYPICAL_INDEX_RATIO) as u64);
        let predicted_candidates = est.upper.saturating_sub(est.lower);
        let candidate_bytes = if predicted_candidates > 0 { data_bytes } else { 0 };
        let scan = ctx.cost.scan_op_estimate(data_bytes, task.span.len, ctx.n_servers);
        let probe = ctx.cost.probe_op_estimate(
            index_bytes,
            candidate_bytes,
            predicted_candidates,
            ctx.n_servers,
        );
        let scan_cpu = ctx.cost.cpu.work_cost(&WorkCounters {
            elements_scanned: task.span.len,
            ..Default::default()
        });
        let probe_cpu = ctx.cost.cpu.work_cost(&WorkCounters {
            bitmap_words: index_bytes / 4,
            elements_scanned: predicted_candidates,
            ..Default::default()
        });
        if probe < scan && probe_cpu <= scan_cpu {
            AccessChoice::Probe
        } else {
            AccessChoice::Scan
        }
    }
}

/// The constraint-level adaptive decision: answer the primary constraint
/// from the sorted replica's band, or per region? Compares the modelled
/// cold cost of touching the matching band (keys + permutation bytes)
/// against pruned per-region scans. Pure host work on metadata and
/// histograms only, so the client's `sorted_hint` and every server slot
/// reach the same verdict.
pub fn adaptive_sorted_choice(
    snap: &MetaSnapshot,
    cost: &CostModel,
    n_servers: u32,
    object: ObjectId,
    interval: &Interval,
) -> PdcResult<bool> {
    let meta = snap.meta(object)?;
    // A replica that doesn't cover this snapshot's extent (stale after an
    // append, pending deferred maintenance) is treated as absent.
    if !snap.sorted_available(object) {
        return Ok(false);
    }
    let replica = snap.sorted_replica(object)?;
    let elem_bytes = meta.pdc_type.size_bytes();
    let sspan = replica.matching_span(interval);
    let band = replica.regions_of_span(&sspan);
    let mut band_bytes = 0u64;
    for &sr in &band {
        band_bytes += replica.region_span(sr).len * (elem_bytes + 8);
    }
    let sorted = cost.sorted_op_estimate(band_bytes, band.len() as u64, sspan.len, n_servers);
    let hists = snap.region_histograms(object)?;
    let mut per_region = SimDuration::ZERO;
    for r in 0..meta.num_regions() {
        let span = meta.region_span(r);
        if prune_verdict(&hists[r as usize], interval) {
            continue;
        }
        per_region += cost.scan_op_estimate(span.len * elem_bytes, span.len, n_servers);
    }
    Ok(sorted < per_region)
}

/// The modelled cold cost of answering one normalized constraint alone,
/// composed from the same PDC-A operator estimates the adaptive planner
/// uses ([`pdc_storage::CostModel::scan_op_estimate`] /
/// [`CostModel::probe_op_estimate`] / [`CostModel::sorted_op_estimate`]).
/// Pure host work on plan-time metadata and histograms — no simulated
/// charge, no cache observation — so the admission controller's verdict
/// for a query is a deterministic function of (snapshot, cost model,
/// strategy) and never perturbs evaluation.
fn estimate_constraint_cost(
    snap: &MetaSnapshot,
    cost: &CostModel,
    strategy: Strategy,
    n_servers: u32,
    object: ObjectId,
    interval: &Interval,
) -> PdcResult<SimDuration> {
    if interval.is_empty() {
        return Ok(SimDuration::ZERO);
    }
    let meta = snap.meta(object)?;
    let elem_bytes = meta.pdc_type.size_bytes();
    // Sorted-band candidate: what SH pays outright and what A compares
    // against the per-region alternative (mirrors adaptive_sorted_choice).
    let sorted_est = if matches!(strategy, Strategy::SortedHistogram | Strategy::Adaptive)
        && snap.sorted_available(object)
    {
        let replica = snap.sorted_replica(object)?;
        let sspan = replica.matching_span(interval);
        let band = replica.regions_of_span(&sspan);
        let band_bytes: u64 =
            band.iter().map(|&sr| replica.region_span(sr).len * (elem_bytes + 8)).sum();
        Some(cost.sorted_op_estimate(band_bytes, band.len() as u64, sspan.len, n_servers))
    } else {
        None
    };
    let hists =
        if strategy == Strategy::FullScan { None } else { snap.region_histograms_opt(object) };
    let mut per_region = SimDuration::ZERO;
    for r in 0..meta.num_regions() {
        let span = meta.region_span(r);
        let est = hists.as_ref().map(|hs| hs[r as usize].estimate_hits(interval));
        if let Some(hs) = hists.as_ref() {
            if prune_verdict(&hs[r as usize], interval) {
                continue;
            }
        }
        let data_bytes = span.len * elem_bytes;
        let scan = cost.scan_op_estimate(data_bytes, span.len, n_servers);
        let probe_eligible = meta.index_object.is_some()
            && matches!(strategy, Strategy::HistogramIndex | Strategy::Adaptive);
        per_region += if probe_eligible {
            let index_bytes = (data_bytes as f64 * pdc_bitmap::TYPICAL_INDEX_RATIO) as u64;
            let candidates =
                est.map(|e| e.upper.saturating_sub(e.lower)).unwrap_or(span.len);
            let candidate_bytes = if candidates > 0 { data_bytes } else { 0 };
            let probe = cost.probe_op_estimate(index_bytes, candidate_bytes, candidates, n_servers);
            if strategy == Strategy::Adaptive { probe.min(scan) } else { probe }
        } else {
            scan
        };
    }
    Ok(match (strategy, sorted_est) {
        (Strategy::SortedHistogram, Some(s)) => s,
        (Strategy::Adaptive, Some(s)) => s.min(per_region),
        _ => per_region,
    })
}

/// Admission-control cost estimate for a whole plan: the modelled cold
/// cost of running it alone, summed over every constraint the evaluator
/// would touch (conjunction chaining makes later constraints cheaper in
/// practice, so the sum is a conservative upper bound — exactly what a
/// budget controller wants). Deterministic pure host work; see
/// [`estimate_constraint_cost`].
pub fn estimate_plan_cost(
    snap: &MetaSnapshot,
    cost: &CostModel,
    strategy: Strategy,
    n_servers: u32,
    plan: &crate::plan::QueryPlan,
) -> PdcResult<SimDuration> {
    fn node_cost(
        node: &crate::plan::PlanNode,
        snap: &MetaSnapshot,
        cost: &CostModel,
        strategy: Strategy,
        n_servers: u32,
    ) -> PdcResult<SimDuration> {
        match node {
            crate::plan::PlanNode::Conj(cs) => {
                let mut total = SimDuration::ZERO;
                for c in cs {
                    total += estimate_constraint_cost(
                        snap, cost, strategy, n_servers, c.object, &c.interval,
                    )?;
                }
                Ok(total)
            }
            crate::plan::PlanNode::And(children) | crate::plan::PlanNode::Or(children) => {
                let mut total = SimDuration::ZERO;
                for c in children {
                    total += node_cost(c, snap, cost, strategy, n_servers)?;
                }
                Ok(total)
            }
        }
    }
    node_cost(&plan.root, snap, cost, strategy, n_servers)
}

/// Which evaluation lane produced an EXPLAIN entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ExplainPhase {
    /// The primary (most selective) constraint's pass.
    Primary,
    /// A point-check pass over candidate locations.
    Filter,
}

impl ExplainPhase {
    /// Short label for EXPLAIN tables.
    pub fn label(&self) -> &'static str {
        match self {
            ExplainPhase::Primary => "primary",
            ExplainPhase::Filter => "filter",
        }
    }
}

/// One region's row in an [`ExplainPlan`].
#[derive(Debug, Clone)]
pub struct RegionExplain {
    /// The data object.
    pub object: ObjectId,
    /// Region index (sorted-region index for [`OpKind::SortedRange`]).
    pub region: u32,
    /// Which lane evaluated it.
    pub phase: ExplainPhase,
    /// The operator that answered it (the chosen access operator; a
    /// pruned region reports the operator it *would* have run).
    pub op: OpKind,
    /// Whether the prune operator eliminated the region.
    pub pruned: bool,
    /// Elements in the region (the selectivity denominator).
    pub span_len: u64,
    /// The histogram's hit-bound estimate (`None` on lanes without
    /// histograms, e.g. `FullScan`).
    pub est: Option<HitBounds>,
    /// Matching elements actually found (`None` when pruned).
    pub actual_hits: Option<u64>,
    /// Whether the region's payload was spilled to the out-of-core block
    /// store when this row was recorded (host observation; always `false`
    /// with spill disabled).
    pub cold: bool,
}

/// The explained plan of one query: per-region operator choices with
/// estimated vs actual selectivity, merged across all server slots.
#[derive(Debug, Clone)]
pub struct ExplainPlan {
    /// The engine strategy that produced the choices.
    pub strategy: Strategy,
    /// The plan's constraints in evaluation order:
    /// `(object, interval, estimated selectivity)`.
    pub constraints: Vec<(ObjectId, Interval, Option<f64>)>,
    /// Whether the primary constraint was answered from the sorted
    /// replica.
    pub sorted_primary: bool,
    /// Per-constraint directory statistics (one entry per constrained
    /// object carrying a region directory; empty when the directory is
    /// disabled).
    pub directory: Vec<DirectoryStats>,
    /// Per-region rows, ordered by (object, region, phase).
    pub regions: Vec<RegionExplain>,
    /// The server that answered each assignment slot (index = slot id).
    /// On a healthy pool this is the slot's anchor; under k-way
    /// replication a failed-over slot shows its chosen replica instead.
    pub slot_routes: Vec<u32>,
}

/// Record an EXPLAIN row on the evaluating server, when EXPLAIN capture
/// is armed for this slot. No simulated charges — EXPLAIN observes.
pub(crate) fn record_explain(st: &mut ServerState, entry: RegionExplain) {
    if let Some(rows) = st.explain.as_mut() {
        rows.push(entry);
    }
}

/// Run one region through its operator pipeline: prune (when the lane
/// carries histograms), then the access operator the planner chose — or
/// the candidate-restricted scan when `candidates` is given (the
/// point-check lanes always scan). Records an EXPLAIN row when capture
/// is armed.
pub fn execute_region(
    ctx: &EvalCtx,
    st: &mut ServerState,
    planner: &RegionPlanner,
    task: &RegionTask,
    phase: ExplainPhase,
    candidates: Option<Vec<Run>>,
) -> PdcResult<OpOutput> {
    let explaining = st.explain.is_some();
    let chosen = if candidates.is_some() {
        AccessChoice::Scan
    } else {
        planner.access_for(ctx, task)
    };
    if let Some(p) = planner.prune_op() {
        if matches!(p.run(ctx, st, task)?, OpOutput::Pruned) {
            if explaining {
                let est = planner.estimate_for(task);
                record_explain(
                    st,
                    RegionExplain {
                        object: task.object,
                        region: task.region,
                        phase,
                        op: access_kind(chosen),
                        pruned: true,
                        span_len: task.span.len,
                        est,
                        actual_hits: None,
                        cold: task_cold(ctx, task),
                    },
                );
            }
            return Ok(OpOutput::Pruned);
        }
    }
    let fallbacks_before = st.integrity.fallback_regions;
    let out = match (candidates, chosen) {
        (Some(runs), _) => ScanExactOp { candidates: Some(runs) }.run(ctx, st, task)?,
        (None, AccessChoice::Scan) => ScanExactOp { candidates: None }.run(ctx, st, task)?,
        (None, AccessChoice::Probe) => IndexProbeOp.run(ctx, st, task)?,
    };
    if explaining {
        // A probe that fell back to the integrity path reports the
        // operator that actually answered the region.
        let op = if st.integrity.fallback_regions > fallbacks_before {
            OpKind::VerifyRebuild
        } else {
            access_kind(chosen)
        };
        let actual = match &out {
            OpOutput::Selected(sel) => Some(sel.count()),
            _ => None,
        };
        let est = planner.estimate_for(task);
        record_explain(
            st,
            RegionExplain {
                object: task.object,
                region: task.region,
                phase,
                op,
                pruned: false,
                span_len: task.span.len,
                est,
                actual_hits: actual,
                cold: task_cold(ctx, task),
            },
        );
    }
    Ok(out)
}

/// Replay the pipeline for a region the directory excluded from the
/// candidate set. Such a region's `[min, max]` bounds are disjoint from
/// the interval, which forces `estimate_hits` to zero bounds — so
/// [`execute_region`] would necessarily take its pruned path with a
/// `true` verdict. This fast path reproduces that outcome bit-for-bit —
/// the same work-counter charges, cache seeding, settling, and EXPLAIN
/// row — while skipping the host-side estimate walk and operator
/// dispatch. Callers must only invoke it on a planner that prunes
/// (`prune_op().is_some()`); `FullScan` lanes never consult the
/// directory.
pub fn execute_region_skipped(
    ctx: &EvalCtx,
    st: &mut ServerState,
    planner: &RegionPlanner,
    task: &RegionTask,
    phase: ExplainPhase,
) {
    let p = planner.prune_op().expect("directory skip requires a pruning lane");
    p.run_directory_pruned(ctx, st, task);
    if st.explain.is_some() {
        let chosen = planner.access_for(ctx, task);
        let est = planner.estimate_for(task);
        record_explain(
            st,
            RegionExplain {
                object: task.object,
                region: task.region,
                phase,
                op: access_kind(chosen),
                pruned: true,
                span_len: task.span.len,
                est,
                actual_hits: None,
                cold: task_cold(ctx, task),
            },
        );
    }
}

/// Whether a task's data region is currently spilled (EXPLAIN metadata).
fn task_cold(ctx: &EvalCtx, task: &RegionTask) -> bool {
    ctx.odms.store().is_spilled(RegionId::new(task.object, task.region))
}

fn access_kind(choice: AccessChoice) -> OpKind {
    match choice {
        AccessChoice::Scan => OpKind::ScanExact,
        AccessChoice::Probe => OpKind::IndexProbe,
    }
}
