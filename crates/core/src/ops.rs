//! The typed physical-operator layer: every way a server can answer one
//! region's predicate, behind a single [`PhysicalOp`] trait.
//!
//! Before this layer existed, the four strategies were four hand-rolled
//! branches duplicated across `eval_plan`'s primary pass, `point_check`,
//! the `multi.rs` count path, and the batch prewarm — each re-implementing
//! the same cost-lane charges, artifact-cache lookups, and integrity
//! fallbacks. Now each access method is one operator:
//!
//! * [`PruneOp`] — histogram min/max region elimination (the paper's
//!   pruning use of the per-region histogram);
//! * [`ScanExactOp`] — the fused-kernel exact scan, whole-region or
//!   restricted to candidate runs (the point-check mode);
//! * [`IndexProbeOp`] — WAH bitmap probe with a conditional candidate
//!   check against the raw data;
//! * [`SortedRangeOp`] — the contiguous slice of one sorted-replica
//!   region overlapping a binary-searched span;
//! * [`VerifyRebuildOp`] — the integrity fallback: answer a region whose
//!   index failed validation by the exact scan, then rebuild and rewrite
//!   the index (charged to the `integrity` lane).
//!
//! [`execute_region`] drives the pipeline — prune, then the access
//! operator chosen by a [`RegionPlanner`] — so retry/reassignment
//! (`recover.rs`), corruption fallback, and `qcache.rs` artifact caching
//! are written once against the trait.
//!
//! **Cost fidelity.** Operators charge exactly what the pre-refactor
//! strategy branches charged, including their settling quirks: the primary
//! lane's histogram bin walks are work-counted but never clock-settled
//! (the historical behaviour every recorded baseline embeds), while the
//! point-check and count lanes settle theirs. `settle_cpu` is linear in
//! the counter deltas, so per-operator settling splits the old bracketed
//! settles without changing any total.
//!
//! **Adaptive selection.** [`Strategy::Adaptive`] consults the region
//! histogram's [`HitBounds`] and aux availability per (region, predicate):
//! a probe is chosen only when the estimate predicts a candidate-free
//! index answer (`lower == upper`) *and* the modelled probe cost beats the
//! scan in both the storage-bound and CPU-bound regimes (the planner
//! cannot see cache residency, so the probe must dominate) — under this
//! cost model a candidate check re-reads the whole data region, so a
//! probe with predicted boundary bins can never win. At the
//! constraint level, [`adaptive_sorted_choice`] compares the sorted band
//! against the per-region alternative. Every decision is a pure function
//! of metadata, histograms, and the cost model — independent of cache
//! residency — so retried and reassigned slots (and the client's
//! `sorted_hint`) always agree.

use crate::engine::Strategy;
use crate::exec::EvalCtx;
use crate::snapshot::MetaSnapshot;
use crate::state::ServerState;
use pdc_histogram::{HitBounds, Histogram};
use pdc_sorted::SortedReplica;
use pdc_storage::{CostModel, SimDuration, WorkCounters};
use pdc_types::{
    kernels, Interval, ObjectId, PdcError, PdcResult, RegionId, RegionSpec, Run, Selection,
};
use std::sync::Arc;

/// The operator vocabulary (what `EXPLAIN` reports per region).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Histogram region elimination.
    Prune,
    /// Exact data scan (fused kernels).
    ScanExact,
    /// Bitmap-index probe (+ conditional candidate check).
    IndexProbe,
    /// Sorted-replica band slice.
    SortedRange,
    /// Integrity fallback: exact scan + index rebuild.
    VerifyRebuild,
}

impl OpKind {
    /// Short label for EXPLAIN tables.
    pub fn label(&self) -> &'static str {
        match self {
            OpKind::Prune => "prune",
            OpKind::ScanExact => "scan",
            OpKind::IndexProbe => "probe",
            OpKind::SortedRange => "sorted",
            OpKind::VerifyRebuild => "rebuild",
        }
    }
}

/// One region's unit of work: which object/region, its global span, and
/// the predicate interval to answer on it.
#[derive(Debug, Clone)]
pub struct RegionTask {
    /// The data object.
    pub object: ObjectId,
    /// Region index (for [`SortedRangeOp`], the *sorted* region index).
    pub region: u32,
    /// The region's span in global coordinates (for [`SortedRangeOp`],
    /// in sorted coordinates).
    pub span: RegionSpec,
    /// The predicate.
    pub interval: Interval,
}

/// What an operator produced.
#[derive(Debug, Clone)]
pub enum OpOutput {
    /// Nothing decided — continue the pipeline (prune verdict: keep).
    Pass,
    /// The region cannot contain matches; the pipeline stops here.
    Pruned,
    /// The region's matching locations, in global coordinates.
    Selected(Selection),
}

/// A physical operator: answers one [`RegionTask`] on one server,
/// charging its simulated cost lanes uniformly and surfacing only typed
/// [`PdcError`]s.
pub trait PhysicalOp {
    /// Which operator this is (EXPLAIN vocabulary).
    fn kind(&self) -> OpKind;
    /// Run the operator against one region.
    fn run(&self, ctx: &EvalCtx, st: &mut ServerState, task: &RegionTask)
        -> PdcResult<OpOutput>;
}

/// The shared prune formula: a region is eliminated when the histogram's
/// upper hit bound for the interval is zero (subsumes the min/max test).
/// Every lane — primary, point check, counts, batch prewarm — must agree
/// on this verdict bit-for-bit, which is why it lives here.
pub fn prune_verdict(h: &Histogram, interval: &Interval) -> bool {
    h.estimate_hits(interval).upper == 0
}

/// Histogram min/max region elimination.
pub struct PruneOp {
    hists: Arc<Vec<Histogram>>,
    /// Whether the bin walk is clock-settled by this operator. The
    /// point-check and count lanes settle their walks; the primary lane
    /// historically charges the work counters without settling (a quirk
    /// every recorded cost baseline embeds, so it is preserved exactly).
    settle: bool,
}

impl PhysicalOp for PruneOp {
    fn kind(&self) -> OpKind {
        OpKind::Prune
    }

    fn run(
        &self,
        ctx: &EvalCtx,
        st: &mut ServerState,
        task: &RegionTask,
    ) -> PdcResult<OpOutput> {
        let before = st.work;
        let h = &self.hists[task.region as usize];
        // The bin walk is charged whether or not the verdict is cached —
        // a cache hit only skips the host-side `estimate_hits` walk.
        st.work.histogram_bins += h.num_bins() as u64;
        let pruned = if ctx.use_cache {
            st.qcache.prune_or_compute(task.object, task.region, task.span.len, &task.interval, || {
                prune_verdict(h, &task.interval)
            })
        } else {
            prune_verdict(h, &task.interval)
        };
        if self.settle {
            st.settle_cpu(ctx.cost, &before);
        }
        Ok(if pruned { OpOutput::Pruned } else { OpOutput::Pass })
    }
}

/// Exact scan of one region's data through the fused kernel layer.
/// `candidates: None` scans the whole region; `Some(runs)` is the
/// point-check mode — the region is still read wholly (regions are the
/// unit of I/O) but only the candidate runs are scanned and charged.
pub struct ScanExactOp {
    /// Candidate runs to restrict the scan to (global coordinates,
    /// clipped to the region), or `None` for a whole-region scan.
    pub candidates: Option<Vec<Run>>,
}

impl PhysicalOp for ScanExactOp {
    fn kind(&self) -> OpKind {
        OpKind::ScanExact
    }

    fn run(
        &self,
        ctx: &EvalCtx,
        st: &mut ServerState,
        task: &RegionTask,
    ) -> PdcResult<OpOutput> {
        let RegionTask { object, region, span, interval } = task;
        let before = st.work;
        let payload = st.read_data_region(
            ctx.odms,
            ctx.cost,
            RegionId::new(*object, *region),
            ctx.n_servers,
            span.len,
        )?;
        // An in-flight append can grow the stored payload past the span
        // this query's snapshot planned against; scan exactly the
        // snapshot's extent so the result is bit-identical to a store
        // sealed at plan time.
        let payload = if (payload.len() as u64) > span.len {
            Arc::new(payload.slice(0, span.len as usize))
        } else {
            payload
        };
        let sel = match &self.candidates {
            None => {
                st.work.elements_scanned += payload.len() as u64;
                // The read and the scan charge above are unconditional;
                // only the kernel invocation itself is served from the
                // cache, so the simulated accounting of a hit equals a
                // miss exactly.
                let cached = if ctx.use_cache {
                    st.qcache.get_scan(*object, *region, span.len, interval)
                } else {
                    None
                };
                match cached {
                    Some(sel) => sel,
                    None => {
                        let sel = if ctx.scan_kernels {
                            kernels::scan_interval_threaded(
                                &payload,
                                interval,
                                span.offset,
                                ctx.scan_threads,
                            )
                        } else {
                            kernels::scan_interval_scalar(&payload, interval, span.offset)
                        };
                        if ctx.use_cache {
                            st.qcache.put_scan(*object, *region, span.len, interval, sel.clone());
                        }
                        sel
                    }
                }
            }
            Some(runs) => {
                // Opportunistic reuse: when some earlier query in the
                // batch already scanned this whole (region, interval)
                // pair, answer each candidate run by clipping the cached
                // full-region selection instead of rescanning — the
                // clipped coordinate set is exactly what `scan_range`
                // would emit, and the scan charge stays per-run.
                let cached_full = if ctx.use_cache {
                    st.qcache.peek_scan(*object, *region, span.len, interval).cloned()
                } else {
                    None
                };
                let mut out: Vec<Run> = Vec::new();
                for run in runs {
                    st.work.elements_scanned += run.len;
                    if let Some(full) = &cached_full {
                        out.extend_from_slice(full.restrict_to_span(run.start, run.len).runs());
                    } else if ctx.scan_kernels {
                        kernels::scan_range(
                            &payload,
                            interval,
                            (run.start - span.offset) as usize,
                            (run.end() - span.offset) as usize,
                            run.start,
                            &mut out,
                        );
                    } else {
                        let mut open: Option<Run> = None;
                        for c in run.start..run.end() {
                            let v = payload.get_f64((c - span.offset) as usize);
                            if interval.contains(v) {
                                match &mut open {
                                    Some(r) => r.len += 1,
                                    None => open = Some(Run::new(c, 1)),
                                }
                            } else if let Some(r) = open.take() {
                                out.push(r);
                            }
                        }
                        if let Some(r) = open {
                            out.push(r);
                        }
                    }
                }
                Selection::from_runs(out)
            }
        };
        st.settle_cpu(ctx.cost, &before);
        Ok(OpOutput::Selected(sel))
    }
}

/// Answer one region from its bitmap index; the raw data is read only
/// when boundary bins need a candidate check.
///
/// A region whose index fails validation — stored checksum mismatch,
/// undecodable bytes, or an element count that disagrees with the region
/// span — is quarantined and answered by [`VerifyRebuildOp`] instead;
/// only infrastructure errors (`ServerFailed`, missing prerequisites)
/// propagate.
pub struct IndexProbeOp;

impl PhysicalOp for IndexProbeOp {
    fn kind(&self) -> OpKind {
        OpKind::IndexProbe
    }

    fn run(
        &self,
        ctx: &EvalCtx,
        st: &mut ServerState,
        task: &RegionTask,
    ) -> PdcResult<OpOutput> {
        let RegionTask { object, region, span, interval } = task;
        let before = st.work;
        let idx = match st.read_index_region(ctx.odms, ctx.cost, *object, *region, ctx.n_servers) {
            Ok(idx) if idx.num_elements() == span.len => idx,
            Ok(_) => {
                // Decoded cleanly but describes the wrong number of
                // elements: treat as invalid, same as a failed decode.
                return VerifyRebuildOp.run(ctx, st, task);
            }
            Err(PdcError::CorruptRegion { .. }) => {
                st.integrity.checksum_failures += 1;
                return VerifyRebuildOp.run(ctx, st, task);
            }
            Err(PdcError::Codec(_)) => {
                return VerifyRebuildOp.run(ctx, st, task);
            }
            Err(PdcError::NoSuchRegion(_)) => {
                // Online index maintenance: a streaming append dropped
                // the tail region's stale index (or created a region
                // whose index was deferred). First probe answers by the
                // exact scan and rebuilds the index in place.
                return VerifyRebuildOp.run(ctx, st, task);
            }
            Err(e) => return Err(e),
        };
        st.work.bitmap_words += idx.size_bytes_serialized() / 4;
        // Cached replay: the index read and word charge above already
        // happened; a hit re-issues the conditional candidate data read
        // and its scan charge from the recorded answer, then returns the
        // stored selection — byte-for-byte what the probe below produces.
        let cached = if ctx.use_cache {
            st.qcache.get_indexed(*object, *region, span.len, interval)
        } else {
            None
        };
        if let Some(entry) = cached {
            if entry.needs_data_read {
                st.read_data_region(
                    ctx.odms,
                    ctx.cost,
                    RegionId::new(*object, *region),
                    ctx.n_servers,
                    span.len,
                )?;
                st.work.elements_scanned += entry.candidates_count;
            }
            st.settle_cpu(ctx.cost, &before);
            return Ok(OpOutput::Selected(entry.selection));
        }
        // The planner fuses per-object conjunction chains into one
        // interval, so this is the 1-chain case of the index's
        // conjunction API.
        let ans = idx.query_conj(std::slice::from_ref(interval));
        let needs_data_read = ans.needs_candidate_check();
        let candidates_count = ans.candidates.count();
        let local = if needs_data_read {
            // Boundary bins: read the region's data and verify candidates.
            let payload = st.read_data_region(
                ctx.odms,
                ctx.cost,
                RegionId::new(*object, *region),
                ctx.n_servers,
                span.len,
            )?;
            st.work.elements_scanned += candidates_count;
            if ctx.scan_kernels {
                let confirmed = kernels::filter_selection(&payload, interval, &ans.candidates);
                ans.sure.union(&confirmed)
            } else {
                ans.resolve(interval, |i| payload.get_f64(i as usize))
            }
        } else {
            ans.sure
        };
        st.settle_cpu(ctx.cost, &before);
        let shifted = local.shifted(span.offset);
        if ctx.use_cache {
            st.qcache.put_indexed(
                *object,
                *region,
                span.len,
                interval,
                crate::qcache::IndexedEntry {
                    needs_data_read,
                    candidates_count,
                    selection: shifted.clone(),
                },
            );
        }
        Ok(OpOutput::Selected(shifted))
    }
}

/// Graceful degradation for a region whose bitmap index failed
/// validation: answer the region exactly by scanning its data (which
/// transparently repairs a corrupt data copy too), then rebuild the index
/// from the clean data and write it back so later queries take the
/// indexed path again. The rebuild's write and scan work land on the
/// `integrity` lane.
pub struct VerifyRebuildOp;

impl PhysicalOp for VerifyRebuildOp {
    fn kind(&self) -> OpKind {
        OpKind::VerifyRebuild
    }

    fn run(
        &self,
        ctx: &EvalCtx,
        st: &mut ServerState,
        task: &RegionTask,
    ) -> PdcResult<OpOutput> {
        let out = ScanExactOp { candidates: None }.run(ctx, st, task)?;
        let rebuilt = ctx.odms.rebuild_index_region(task.object, task.region)?;
        // Drop any resident decode of the replaced index so later probes
        // pick up the rebuilt one instead of falling back forever.
        if let Some(idx_obj) =
            ctx.odms.meta().get(task.object).ok().and_then(|m| m.index_object)
        {
            if let Some(old) = st.index_cache.remove(&RegionId::new(idx_obj, task.region)) {
                st.index_cache_bytes =
                    st.index_cache_bytes.saturating_sub(old.size_bytes_serialized());
            }
        }
        st.integrity.aux_rebuilds += 1;
        st.integrity.fallback_regions += 1;
        st.io.bytes_written += rebuilt;
        st.io.write_requests += 1;
        let scan = WorkCounters { elements_scanned: task.span.len, ..Default::default() };
        let t = ctx.cost.pfs.write_cost(rebuilt, 1, ctx.n_servers) + ctx.cost.cpu.work_cost(&scan);
        st.clock.advance(t);
        st.integrity_time += t;
        Ok(out)
    }
}

/// The contiguous matching slice of one value-partitioned sorted-replica
/// region. The task's `region`/`span` are in *sorted* coordinates; the
/// returned selection is translated through the permutation back to
/// global coordinates.
pub struct SortedRangeOp {
    /// The replica being sliced.
    pub replica: Arc<SortedReplica>,
    /// The binary-searched matching span (sorted coordinates).
    pub sspan: Run,
    /// Bytes per data element (keys cost `elem_bytes + 8` with the
    /// permutation word).
    pub elem_bytes: u64,
    /// The pseudo object id keying sorted-region residency.
    pub sorted_object: ObjectId,
}

impl PhysicalOp for SortedRangeOp {
    fn kind(&self) -> OpKind {
        OpKind::SortedRange
    }

    fn run(
        &self,
        ctx: &EvalCtx,
        st: &mut ServerState,
        task: &RegionTask,
    ) -> PdcResult<OpOutput> {
        let before = st.work;
        let region_start = task.span.offset;
        let region_end = task.span.end();
        // Reading a sorted region brings in keys + permutation.
        let bytes = (region_end - region_start) * (self.elem_bytes + 8);
        st.touch_sorted_region(
            ctx.cost,
            RegionId::new(self.sorted_object, task.region),
            bytes,
            ctx.n_servers,
        )?;
        // The matching slice inside this region is contiguous.
        let lo = self.sspan.start.max(region_start);
        let hi = self.sspan.end().min(region_end);
        let sel = if lo < hi {
            st.work.elements_scanned += hi - lo;
            Selection::from_unsorted_coords(
                self.replica.perm()[lo as usize..hi as usize].to_vec(),
            )
        } else {
            Selection::empty()
        };
        st.settle_cpu(ctx.cost, &before);
        Ok(OpOutput::Selected(sel))
    }
}

/// Which access operator the planner chose for a region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessChoice {
    /// Exact data scan.
    Scan,
    /// Bitmap-index probe.
    Probe,
}

/// Per-(object, strategy) operator planner: owns the prune operator and
/// picks each region's access operator. Built once per object per
/// evaluation lane; all choices are pure functions of metadata,
/// histograms, and the cost model (never of cache state), so every slot —
/// original, retried, or reassigned — resolves the same pipeline.
pub struct RegionPlanner {
    strategy: Strategy,
    prune: Option<PruneOp>,
    hists: Option<Arc<Vec<Histogram>>>,
    /// Whether the object has a bitmap index to probe.
    index_available: bool,
    /// `HistogramIndex` without an index: `true` degrades to a scan (the
    /// count lane's historical behaviour), `false` lets the probe surface
    /// `MissingPrerequisite` (the primary lane's).
    missing_index_scans: bool,
    adaptive: Option<AdaptiveInputs>,
}

/// Pre-resolved inputs for the adaptive per-region cost comparison.
struct AdaptiveInputs {
    elem_bytes: u64,
    /// Serialized index bytes per region (store peek; `None` where the
    /// region has no stored index payload).
    index_region_bytes: Vec<Option<u64>>,
}

impl RegionPlanner {
    fn build(
        ctx: &EvalCtx,
        object: ObjectId,
        hists: Option<Arc<Vec<Histogram>>>,
        missing_index_scans: bool,
    ) -> PdcResult<RegionPlanner> {
        let meta = ctx.snap.meta(object)?;
        let index_available = meta.index_object.is_some();
        let adaptive = if ctx.strategy == Strategy::Adaptive && index_available {
            // Peek the stored index sizes up front (host-side metadata
            // lookup, no simulated charge — this is planning, like
            // building the query plan itself).
            let idx_obj = meta.index_object.expect("index_available");
            let index_region_bytes = (0..meta.num_regions())
                .map(|r| ctx.odms.store().payload_size(RegionId::new(idx_obj, r)))
                .collect();
            Some(AdaptiveInputs { elem_bytes: meta.pdc_type.size_bytes(), index_region_bytes })
        } else {
            None
        };
        Ok(RegionPlanner {
            strategy: ctx.strategy,
            prune: hists
                .as_ref()
                .map(|hs| PruneOp { hists: Arc::clone(hs), settle: missing_index_scans }),
            hists,
            index_available,
            missing_index_scans,
            adaptive,
        })
    }

    /// Planner for the primary lane of `exec::eval_primary`: `FullScan`
    /// loads no histograms (it never prunes); every other strategy
    /// requires them. Bin walks are left unsettled (the primary lane's
    /// historical accounting), and a missing index under
    /// `HistogramIndex` is a hard `MissingPrerequisite`.
    pub fn for_primary(ctx: &EvalCtx, object: ObjectId) -> PdcResult<RegionPlanner> {
        let hists = match ctx.strategy {
            Strategy::FullScan => None,
            _ => Some(ctx.snap.region_histograms(object)?),
        };
        Self::build(ctx, object, hists, false)
    }

    /// Planner for the point-check (filter) and count lanes: histograms
    /// are advisory (objects without them simply never prune), bin walks
    /// are clock-settled, and `HistogramIndex` degrades to a scan when
    /// the object has no index.
    pub fn for_filter(ctx: &EvalCtx, object: ObjectId) -> PdcResult<RegionPlanner> {
        let hists = match ctx.strategy {
            Strategy::FullScan => None,
            _ => ctx.snap.region_histograms_opt(object),
        };
        Self::build(ctx, object, hists, true)
    }

    /// The prune operator, when this lane/strategy prunes at all.
    pub fn prune_op(&self) -> Option<&PruneOp> {
        self.prune.as_ref()
    }

    /// The histogram hit-bound estimate for one region task (`None` when
    /// the lane carries no histograms). Pure host work — EXPLAIN uses it
    /// to report estimated vs actual selectivity without charging.
    pub fn estimate_for(&self, task: &RegionTask) -> Option<HitBounds> {
        self.hists.as_ref().map(|hs| hs[task.region as usize].estimate_hits(&task.interval))
    }

    /// Choose the access operator for one region.
    pub fn access_for(&self, ctx: &EvalCtx, task: &RegionTask) -> AccessChoice {
        match self.strategy {
            Strategy::HistogramIndex => {
                if self.index_available || !self.missing_index_scans {
                    AccessChoice::Probe
                } else {
                    AccessChoice::Scan
                }
            }
            Strategy::Adaptive => self.adaptive_choice(ctx, task),
            _ => AccessChoice::Scan,
        }
    }

    /// The adaptive scan-vs-probe comparison for one region. A probe is
    /// modelled as the index read plus — when the histogram bounds
    /// disagree (boundary bins expected) — a full candidate data read;
    /// the estimates are cold-storage costs so the verdict is stable
    /// across cache states and server reassignment.
    ///
    /// Because the planner deliberately cannot observe cache residency,
    /// the probe must *dominate*: win the cold (storage-bound) estimate
    /// AND the warm (CPU-bound) one, where the probe pays
    /// `bitmap_ns_per_word` over the serialized index against the scan's
    /// `scan_ns_per_element` over the span. A poorly-compressing index
    /// (serialized size approaching the data size) loses the CPU regime
    /// and the planner stays with the scan rather than gamble on tier.
    fn adaptive_choice(&self, ctx: &EvalCtx, task: &RegionTask) -> AccessChoice {
        if !self.index_available {
            return AccessChoice::Scan;
        }
        let (Some(a), Some(est)) = (self.adaptive.as_ref(), self.estimate_for(task)) else {
            return AccessChoice::Scan;
        };
        let data_bytes = task.span.len * a.elem_bytes;
        let index_bytes = a.index_region_bytes[task.region as usize]
            .unwrap_or((data_bytes as f64 * pdc_bitmap::TYPICAL_INDEX_RATIO) as u64);
        let predicted_candidates = est.upper.saturating_sub(est.lower);
        let candidate_bytes = if predicted_candidates > 0 { data_bytes } else { 0 };
        let scan = ctx.cost.scan_op_estimate(data_bytes, task.span.len, ctx.n_servers);
        let probe = ctx.cost.probe_op_estimate(
            index_bytes,
            candidate_bytes,
            predicted_candidates,
            ctx.n_servers,
        );
        let scan_cpu = ctx.cost.cpu.work_cost(&WorkCounters {
            elements_scanned: task.span.len,
            ..Default::default()
        });
        let probe_cpu = ctx.cost.cpu.work_cost(&WorkCounters {
            bitmap_words: index_bytes / 4,
            elements_scanned: predicted_candidates,
            ..Default::default()
        });
        if probe < scan && probe_cpu <= scan_cpu {
            AccessChoice::Probe
        } else {
            AccessChoice::Scan
        }
    }
}

/// The constraint-level adaptive decision: answer the primary constraint
/// from the sorted replica's band, or per region? Compares the modelled
/// cold cost of touching the matching band (keys + permutation bytes)
/// against pruned per-region scans. Pure host work on metadata and
/// histograms only, so the client's `sorted_hint` and every server slot
/// reach the same verdict.
pub fn adaptive_sorted_choice(
    snap: &MetaSnapshot,
    cost: &CostModel,
    n_servers: u32,
    object: ObjectId,
    interval: &Interval,
) -> PdcResult<bool> {
    let meta = snap.meta(object)?;
    // A replica that doesn't cover this snapshot's extent (stale after an
    // append, pending deferred maintenance) is treated as absent.
    if !snap.sorted_available(object) {
        return Ok(false);
    }
    let replica = snap.sorted_replica(object)?;
    let elem_bytes = meta.pdc_type.size_bytes();
    let sspan = replica.matching_span(interval);
    let band = replica.regions_of_span(&sspan);
    let mut band_bytes = 0u64;
    for &sr in &band {
        band_bytes += replica.region_span(sr).len * (elem_bytes + 8);
    }
    let sorted = cost.sorted_op_estimate(band_bytes, band.len() as u64, sspan.len, n_servers);
    let hists = snap.region_histograms(object)?;
    let mut per_region = SimDuration::ZERO;
    for r in 0..meta.num_regions() {
        let span = meta.region_span(r);
        if prune_verdict(&hists[r as usize], interval) {
            continue;
        }
        per_region += cost.scan_op_estimate(span.len * elem_bytes, span.len, n_servers);
    }
    Ok(sorted < per_region)
}

/// Which evaluation lane produced an EXPLAIN entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ExplainPhase {
    /// The primary (most selective) constraint's pass.
    Primary,
    /// A point-check pass over candidate locations.
    Filter,
}

impl ExplainPhase {
    /// Short label for EXPLAIN tables.
    pub fn label(&self) -> &'static str {
        match self {
            ExplainPhase::Primary => "primary",
            ExplainPhase::Filter => "filter",
        }
    }
}

/// One region's row in an [`ExplainPlan`].
#[derive(Debug, Clone)]
pub struct RegionExplain {
    /// The data object.
    pub object: ObjectId,
    /// Region index (sorted-region index for [`OpKind::SortedRange`]).
    pub region: u32,
    /// Which lane evaluated it.
    pub phase: ExplainPhase,
    /// The operator that answered it (the chosen access operator; a
    /// pruned region reports the operator it *would* have run).
    pub op: OpKind,
    /// Whether the prune operator eliminated the region.
    pub pruned: bool,
    /// Elements in the region (the selectivity denominator).
    pub span_len: u64,
    /// The histogram's hit-bound estimate (`None` on lanes without
    /// histograms, e.g. `FullScan`).
    pub est: Option<HitBounds>,
    /// Matching elements actually found (`None` when pruned).
    pub actual_hits: Option<u64>,
}

/// The explained plan of one query: per-region operator choices with
/// estimated vs actual selectivity, merged across all server slots.
#[derive(Debug, Clone)]
pub struct ExplainPlan {
    /// The engine strategy that produced the choices.
    pub strategy: Strategy,
    /// The plan's constraints in evaluation order:
    /// `(object, interval, estimated selectivity)`.
    pub constraints: Vec<(ObjectId, Interval, Option<f64>)>,
    /// Whether the primary constraint was answered from the sorted
    /// replica.
    pub sorted_primary: bool,
    /// Per-region rows, ordered by (object, region, phase).
    pub regions: Vec<RegionExplain>,
}

/// Record an EXPLAIN row on the evaluating server, when EXPLAIN capture
/// is armed for this slot. No simulated charges — EXPLAIN observes.
pub(crate) fn record_explain(st: &mut ServerState, entry: RegionExplain) {
    if let Some(rows) = st.explain.as_mut() {
        rows.push(entry);
    }
}

/// Run one region through its operator pipeline: prune (when the lane
/// carries histograms), then the access operator the planner chose — or
/// the candidate-restricted scan when `candidates` is given (the
/// point-check lanes always scan). Records an EXPLAIN row when capture
/// is armed.
pub fn execute_region(
    ctx: &EvalCtx,
    st: &mut ServerState,
    planner: &RegionPlanner,
    task: &RegionTask,
    phase: ExplainPhase,
    candidates: Option<Vec<Run>>,
) -> PdcResult<OpOutput> {
    let explaining = st.explain.is_some();
    let chosen = if candidates.is_some() {
        AccessChoice::Scan
    } else {
        planner.access_for(ctx, task)
    };
    if let Some(p) = planner.prune_op() {
        if matches!(p.run(ctx, st, task)?, OpOutput::Pruned) {
            if explaining {
                let est = planner.estimate_for(task);
                record_explain(
                    st,
                    RegionExplain {
                        object: task.object,
                        region: task.region,
                        phase,
                        op: access_kind(chosen),
                        pruned: true,
                        span_len: task.span.len,
                        est,
                        actual_hits: None,
                    },
                );
            }
            return Ok(OpOutput::Pruned);
        }
    }
    let fallbacks_before = st.integrity.fallback_regions;
    let out = match (candidates, chosen) {
        (Some(runs), _) => ScanExactOp { candidates: Some(runs) }.run(ctx, st, task)?,
        (None, AccessChoice::Scan) => ScanExactOp { candidates: None }.run(ctx, st, task)?,
        (None, AccessChoice::Probe) => IndexProbeOp.run(ctx, st, task)?,
    };
    if explaining {
        // A probe that fell back to the integrity path reports the
        // operator that actually answered the region.
        let op = if st.integrity.fallback_regions > fallbacks_before {
            OpKind::VerifyRebuild
        } else {
            access_kind(chosen)
        };
        let actual = match &out {
            OpOutput::Selected(sel) => Some(sel.count()),
            _ => None,
        };
        let est = planner.estimate_for(task);
        record_explain(
            st,
            RegionExplain {
                object: task.object,
                region: task.region,
                phase,
                op,
                pruned: false,
                span_len: task.span.len,
                est,
                actual_hits: actual,
            },
        );
    }
    Ok(out)
}

fn access_kind(choice: AccessChoice) -> OpKind {
    match choice {
        AccessChoice::Scan => OpKind::ScanExact,
        AccessChoice::Probe => OpKind::IndexProbe,
    }
}
