//! Fault-tolerant slot scheduling: retry and region reassignment.
//!
//! Query work is partitioned into **assignment slots**: slot `i` owns the
//! regions where `region % num_servers == i` (and position `i` of every
//! sorted band). A slot's partial result is a pure function of the plan
//! and the slot id — *which physical server evaluates it does not matter*
//! — and the client-side union is commutative. So when a server fails,
//! its slots are simply re-evaluated by the survivors and the final
//! result is bit-identical to a fault-free run.
//!
//! [`run_slots`] drives that loop deterministically:
//!
//! * **Round 0** — every live server evaluates its own slot (plus, when
//!   servers died in an earlier query, a balanced share of orphaned
//!   slots).
//! * A server **fails** a round if its handler returns an error (injected
//!   crash / transient fault) or panics (caught by
//!   [`ServerPool::try_broadcast`]). An *erroring* server is detected the
//!   moment its error response arrives — at its own simulated elapsed
//!   time. A *panicking* server never responds and is detected at the
//!   configured `server_timeout`, or, with the default unbounded timeout,
//!   once every responsive server of the round has reported.
//! * With a finite `server_timeout`, a server **too slow** for it is
//!   quarantined for the rest of the query and its slots reassigned —
//!   unless no faster server is alive, in which case its results are
//!   accepted (a query with at least one live server always completes).
//! * **Retry rounds** reassign unfinished slots across the live servers
//!   with [`pdc_server::assign::balanced_by_weight`], up to
//!   `max_retries` rounds; beyond that the query fails with
//!   [`PdcError::RetriesExhausted`].
//!
//! All timing is simulated: round time is the maximum per-server
//! contribution (evaluation × slowdown + result transfer, or the
//! detection time for failed/slow servers), rounds are sequential, and
//! everything beyond the fault-free critical path is surfaced as the
//! `recovery` component of the cost breakdown.
//!
//! ## Replica-aware routing (k-way placement)
//!
//! With a [`Placement`] the slot→server map generalizes: each slot has an
//! ordered replica set and is dispatched to its **least-loaded live
//! replica** (anchor-affine on a healthy pool: ties break by replica
//! rank, so rank 0 — the classic owner — wins and per-server work is
//! bit-identical to the unreplicated layout). On a fault the slot fails
//! over to the next live replica of *its own set* — no global region
//! reassignment — and the added time is charged to the much cheaper
//! `failover` lane instead of `recovery`. A slot whose replicas are all
//! dead fails the query with [`PdcError::RetriesExhausted`] immediately:
//! under replication that is the only unrecoverable shape.

use crate::state::ServerState;
use pdc_server::{assign, Placement, ServerPool};
use pdc_storage::{CostModel, SimDuration};
use pdc_types::{PdcError, PdcResult, ServerId};

/// Scheduling knobs for [`run_slots`] (mirrors the engine config).
pub(crate) struct RecoveryPolicy {
    /// Retry rounds allowed after the initial round.
    pub max_retries: u32,
    /// Simulated time after which the client abandons a server that has
    /// not responded. [`SimDuration::MAX`] (the default) disables the
    /// timeout: erroring servers are still detected from their error
    /// responses, only unresponsive ones wait for the rest of the round.
    pub server_timeout: SimDuration,
}

impl RecoveryPolicy {
    fn has_timeout(&self) -> bool {
        self.server_timeout != SimDuration::MAX
    }
}

/// Everything one [`run_slots`] call produced.
pub(crate) struct SlotRunOutput<R> {
    /// Per-slot results, indexed by slot id (all present on success).
    pub per_slot: Vec<R>,
    /// Per-server accumulated contribution across rounds (round-0 value
    /// equals the classic per-server elapsed on a healthy run).
    pub per_server: Vec<SimDuration>,
    /// Total evaluation wall time: sum over rounds of the round maximum.
    pub eval_time: SimDuration,
    /// The slice of `eval_time` attributable to failure handling
    /// (timeout waits + retry rounds); zero on a fault-free run and under
    /// an active placement (which charges `failover` instead).
    pub recovery: SimDuration,
    /// The slice of `eval_time` spent failing slots over to replicas
    /// (placement mode only); zero on a fault-free run.
    pub failover: SimDuration,
    /// Servers that failed or were quarantined during this run.
    pub failed_servers: Vec<u32>,
    /// Retry rounds used (0 on a fault-free run).
    pub retry_rounds: u32,
    /// The server that produced each slot's accepted result, indexed by
    /// slot (the chosen replica, for `--explain`).
    pub routes: Vec<u32>,
}

/// One server's batch outcome for a round: per-slot results plus the
/// simulated time the batch took on that server.
struct BatchOut<R> {
    slots: Vec<(u32, PdcResult<R>)>,
    elapsed: SimDuration,
    slowdown: f64,
}

/// Evaluate one result per slot across the pool, reassigning failed
/// servers' slots to survivors. `eval` runs a single slot against a
/// server's state; `ret_bytes` sizes the server→client transfer of a
/// slot's result. With `placement` set, slots route to their replica
/// sets (see the module docs); without it, slot `s` belongs to server
/// `s` and `slot_weights.len()` must equal the pool size.
pub(crate) fn run_slots<R, F, B>(
    pool: &ServerPool<ServerState>,
    cost: &CostModel,
    policy: &RecoveryPolicy,
    placement: Option<&Placement>,
    slot_weights: &[u64],
    ret_bytes: B,
    eval: F,
) -> PdcResult<SlotRunOutput<R>>
where
    R: Send,
    F: Fn(u32, &mut ServerState) -> PdcResult<R> + Sync,
    B: Fn(&R) -> u64 + Sync,
{
    let n = pool.num_servers() as usize;
    let num_slots = slot_weights.len();

    let mut alive: Vec<bool> = Vec::with_capacity(n);
    pool.for_each_server(|_, st| alive.push(!st.is_crashed()));

    let mut batches: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut pending: Vec<u32> = Vec::new();
    let mut quarantined = vec![false; n];
    // Servers that have already been handed each slot this run (so a
    // failover prefers a replica that has not been tried yet).
    let mut tried: Vec<Vec<u32>> = vec![Vec::new(); num_slots];

    if !alive.iter().any(|&a| a) {
        return Err(PdcError::ServerFailed {
            server: 0,
            reason: "no live servers in the pool".into(),
        });
    }
    match placement {
        None => {
            debug_assert_eq!(num_slots, n);
            // Round 0: live servers take their own slot; slots of
            // already-dead servers are distributed over the survivors.
            for s in 0..n as u32 {
                if alive[s as usize] {
                    batches[s as usize].push(s);
                } else {
                    pending.push(s);
                }
            }
            if !pending.is_empty() {
                distribute(&mut batches, &pending, &alive, slot_weights);
                pending.clear();
            }
        }
        Some(p) => {
            // Round 0: every slot to its least-loaded live replica
            // (anchor-affine when the pool is healthy).
            if route_replicated(
                &mut batches,
                &mut tried,
                0..num_slots as u32,
                p,
                &alive,
                &quarantined,
                slot_weights,
            )
            .is_err()
            {
                // Some slot's entire replica set is dead: no retry can
                // recover it.
                return Err(PdcError::RetriesExhausted { attempts: 0 });
            }
        }
    }

    let mut per_slot: Vec<Option<R>> = (0..num_slots).map(|_| None).collect();
    let mut per_server = vec![SimDuration::ZERO; n];
    let mut eval_time = SimDuration::ZERO;
    let mut recovery = SimDuration::ZERO;
    let mut failover = SimDuration::ZERO;
    let mut routes = vec![0u32; num_slots];
    let mut failed_servers: Vec<u32> = Vec::new();
    let mut retry_rounds = 0u32;

    loop {
        let results: Vec<Result<BatchOut<R>, pdc_server::ServerPanic>> =
            pool.try_broadcast(|id, st| {
                let my_slots = &batches[id.raw() as usize];
                let mut out = BatchOut {
                    slots: Vec::with_capacity(my_slots.len()),
                    elapsed: SimDuration::ZERO,
                    slowdown: st.fault_slowdown(),
                };
                if my_slots.is_empty() {
                    return out;
                }
                let t0 = st.clock.now();
                let mut aborted: Option<PdcError> = None;
                for &slot in my_slots {
                    match &aborted {
                        // After a failure the server is unreachable for
                        // the rest of the round: remaining slots inherit
                        // the error.
                        Some(e) => out.slots.push((slot, Err(e.clone()))),
                        None => {
                            let r = eval(slot, st);
                            if let Err(e) = &r {
                                aborted = Some(e.clone());
                            }
                            out.slots.push((slot, r));
                        }
                    }
                }
                out.elapsed = st.elapsed_since(t0);
                out
            });

        // Classify this round's servers.
        struct RoundEntry<R> {
            server: u32,
            contribution: SimDuration,
            slow: bool,
            successes: Vec<(u32, R)>,
            failed_slots: Vec<u32>,
            died: bool,
            panicked: bool,
        }
        let mut entries: Vec<RoundEntry<R>> = Vec::new();
        for (i, res) in results.into_iter().enumerate() {
            if batches[i].is_empty() {
                continue;
            }
            match res {
                Ok(out) => {
                    let adjusted = out.elapsed * out.slowdown;
                    let mut successes = Vec::new();
                    let mut failed_slots = Vec::new();
                    let mut transfer = SimDuration::ZERO;
                    for (slot, r) in out.slots {
                        match r {
                            Ok(v) => {
                                transfer += cost.net.transfer_cost(ret_bytes(&v));
                                successes.push((slot, v));
                            }
                            // Only server failures are retryable; a
                            // query-level error (missing region, corrupt
                            // index, type mismatch, ...) would fail
                            // identically on any server and propagates
                            // immediately.
                            Err(PdcError::ServerFailed { .. }) => failed_slots.push(slot),
                            Err(e) => return Err(e),
                        }
                    }
                    let errored = !failed_slots.is_empty();
                    let died = errored && pool.with_server(ServerId(i as u32), |st| st.is_crashed());
                    if errored {
                        // The error response arrives at the server's own
                        // elapsed time — detection is immediate. Partial
                        // results from a failing server are discarded (the
                        // whole batch is retried elsewhere).
                        for (slot, _) in successes.drain(..) {
                            failed_slots.push(slot);
                        }
                        failed_slots.sort_unstable();
                        entries.push(RoundEntry {
                            server: i as u32,
                            contribution: adjusted.min(policy.server_timeout),
                            slow: false,
                            successes,
                            failed_slots,
                            died,
                            panicked: false,
                        });
                    } else {
                        entries.push(RoundEntry {
                            server: i as u32,
                            contribution: adjusted + transfer,
                            slow: policy.has_timeout()
                                && adjusted + transfer > policy.server_timeout,
                            successes,
                            failed_slots,
                            died: false,
                            panicked: false,
                        });
                    }
                }
                Err(_panic) => {
                    // Panic = crash: mark the server dead for the rest of
                    // the engine's life (until an explicit state reset).
                    pool.with_server(ServerId(i as u32), |st| st.mark_failed());
                    entries.push(RoundEntry {
                        server: i as u32,
                        contribution: SimDuration::ZERO, // patched below
                        slow: false,
                        successes: Vec::new(),
                        failed_slots: batches[i].clone(),
                        died: true,
                        panicked: true,
                    });
                }
            }
        }

        // A panicked server never responds: the client notices it at the
        // timeout, or — with the timeout disabled — once every responsive
        // server of the round has reported.
        if entries.iter().any(|e| e.panicked) {
            let detect = if policy.has_timeout() {
                policy.server_timeout
            } else {
                entries
                    .iter()
                    .filter(|e| !e.panicked)
                    .map(|e| e.contribution)
                    .max()
                    .unwrap_or(SimDuration::ZERO)
            };
            for e in entries.iter_mut().filter(|e| e.panicked) {
                e.contribution = detect;
            }
        }

        // A slow server is quarantined only when a faster live server
        // exists to take over; otherwise its results are accepted (a
        // query with one live server must still complete). Under a
        // placement the alternative must be a live, unquarantined
        // *replica* of every slot the slow server holds.
        let fast_alternative_exists = entries
            .iter()
            .any(|e| !e.slow && e.failed_slots.is_empty())
            || (0..n).any(|s| alive[s] && !quarantined[s] && batches[s].is_empty());

        let mut round_max = SimDuration::ZERO;
        let mut healthy_max = SimDuration::ZERO;
        for mut e in entries {
            let quarantine_slow = e.slow
                && match placement {
                    None => fast_alternative_exists,
                    Some(p) => batches[e.server as usize].iter().all(|&slot| {
                        p.replicas(slot).iter().any(|&q| {
                            q != e.server && alive[q as usize] && !quarantined[q as usize]
                        })
                    }),
                };
            if !e.failed_slots.is_empty() || quarantine_slow {
                if e.died {
                    alive[e.server as usize] = false;
                } else if quarantine_slow {
                    quarantined[e.server as usize] = true;
                }
                // A transiently-erroring server stays a reassignment
                // candidate — its next access may succeed; only crashes
                // remove it and only slowness quarantines it.
                if !failed_servers.contains(&e.server) {
                    failed_servers.push(e.server);
                }
                if quarantine_slow {
                    // The client stops waiting at the timeout.
                    e.contribution = policy.server_timeout;
                    pending.extend(e.successes.iter().map(|(slot, _)| *slot));
                }
                pending.extend(&e.failed_slots);
                if quarantine_slow {
                    e.successes.clear();
                }
            } else {
                healthy_max = healthy_max.max(e.contribution);
            }
            for (slot, v) in e.successes {
                per_slot[slot as usize] = Some(v);
                routes[slot as usize] = e.server;
            }
            per_server[e.server as usize] += e.contribution;
            round_max = round_max.max(e.contribution);
        }
        eval_time += round_max;
        // Fault-handling time beyond the healthy critical path: with a
        // placement it is replica failover; without, reassign-and-rescan
        // recovery.
        let lane = if placement.is_some() { &mut failover } else { &mut recovery };
        if retry_rounds == 0 {
            // Round 0: only the slice beyond the healthy critical path is
            // fault-handling time.
            *lane += round_max.saturating_sub(healthy_max);
        } else {
            *lane += round_max;
        }

        if pending.is_empty() {
            break;
        }
        retry_rounds += 1;
        if retry_rounds > policy.max_retries {
            return Err(PdcError::RetriesExhausted { attempts: retry_rounds });
        }
        pending.sort_unstable();
        pending.dedup();
        batches.iter_mut().for_each(Vec::clear);
        match placement {
            None => {
                if !(0..n).any(|s| alive[s] && !quarantined[s]) {
                    let server = *pending.first().unwrap_or(&0);
                    return Err(PdcError::ServerFailed {
                        server,
                        reason: format!(
                            "no surviving servers to reassign {} region slot(s)",
                            pending.len()
                        ),
                    });
                }
                let candidates: Vec<bool> =
                    (0..n).map(|s| alive[s] && !quarantined[s]).collect();
                distribute(&mut batches, &pending, &candidates, slot_weights);
            }
            Some(p) => {
                // Each unfinished slot fails over to the next live
                // replica of its own set — no global reassignment. Only
                // a slot with zero live replicas is unrecoverable.
                if route_replicated(
                    &mut batches,
                    &mut tried,
                    pending.iter().copied(),
                    p,
                    &alive,
                    &quarantined,
                    slot_weights,
                )
                .is_err()
                {
                    return Err(PdcError::RetriesExhausted { attempts: retry_rounds });
                }
            }
        }
        pending.clear();
    }

    let per_slot: Vec<R> = per_slot
        .into_iter()
        .map(|r| r.expect("every slot resolved before loop exit"))
        .collect();
    failed_servers.sort_unstable();
    Ok(SlotRunOutput {
        per_slot,
        per_server,
        eval_time,
        recovery,
        failover,
        failed_servers,
        retry_rounds,
        routes,
    })
}

/// Route each slot to the best replica of its set — untried first, then
/// unquarantined, then **replica rank**, then projected load, then server
/// id — followed by a deterministic rebalance pass that moves a slot to a
/// less-loaded live replica only when that strictly narrows the load
/// spread. Rank-before-load keeps routing *anchor-affine*: the replica
/// that owned (and cached) a slot's regions keeps it whenever it is live,
/// so a failover touches exactly the dead server's slots instead of
/// cascading healthy slots onto cache-cold replicas. The rebalance pass
/// then bounds the round makespan when a membership change leaves anchors
/// uneven. Returns `Err(slot)` when a slot has no live replica at all.
fn route_replicated(
    batches: &mut [Vec<u32>],
    tried: &mut [Vec<u32>],
    slots: impl Iterator<Item = u32>,
    p: &Placement,
    alive: &[bool],
    quarantined: &[bool],
    weights: &[u64],
) -> Result<(), u32> {
    let mut load = vec![0u64; batches.len()];
    let mut placed: Vec<(u32, u32)> = Vec::new();
    for slot in slots {
        let pick = p
            .replicas(slot)
            .iter()
            .enumerate()
            .filter(|&(_, &q)| alive[q as usize])
            .min_by_key(|&(rank, &q)| {
                (
                    tried[slot as usize].contains(&q),
                    quarantined[q as usize],
                    rank,
                    load[q as usize],
                    q,
                )
            })
            .map(|(_, &q)| q);
        let Some(q) = pick else { return Err(slot) };
        load[q as usize] += weights[slot as usize].max(1);
        placed.push((slot, q));
    }
    // Local search: shed work from overloaded servers onto live, untried,
    // unquarantined replicas while each move strictly lowers the sum of
    // squared loads (so it terminates and the makespan never grows). On a
    // balanced layout no move qualifies and the affine routing survives
    // untouched.
    let mut improved = true;
    while improved {
        improved = false;
        for entry in placed.iter_mut() {
            let (slot, cur) = *entry;
            let w = weights[slot as usize].max(1);
            let alt = p
                .replicas(slot)
                .iter()
                .copied()
                .filter(|&q| {
                    q != cur
                        && alive[q as usize]
                        && !quarantined[q as usize]
                        && !tried[slot as usize].contains(&q)
                })
                .min_by_key(|&q| (load[q as usize], q));
            if let Some(alt) = alt {
                if load[alt as usize] + w < load[cur as usize] {
                    load[cur as usize] -= w;
                    load[alt as usize] += w;
                    entry.1 = alt;
                    improved = true;
                }
            }
        }
    }
    for (slot, q) in placed {
        batches[q as usize].push(slot);
        if !tried[slot as usize].contains(&q) {
            tried[slot as usize].push(q);
        }
    }
    for b in batches.iter_mut() {
        b.sort_unstable();
    }
    Ok(())
}

/// Deterministically spread `slots` across the live servers, balancing by
/// slot weight (greedy LPT via [`assign::balanced_by_weight`]).
fn distribute(batches: &mut [Vec<u32>], slots: &[u32], live: &[bool], weights: &[u64]) {
    let live_ids: Vec<u32> =
        (0..live.len() as u32).filter(|&s| live[s as usize]).collect();
    debug_assert!(!live_ids.is_empty());
    let slot_w: Vec<u64> = slots.iter().map(|&s| weights[s as usize].max(1)).collect();
    let groups = assign::balanced_by_weight(&slot_w, live_ids.len() as u32);
    for (k, group) in groups.iter().enumerate() {
        for &item in group {
            batches[live_ids[k] as usize].push(slots[item as usize]);
        }
    }
    for b in batches.iter_mut() {
        b.sort_unstable();
    }
}
