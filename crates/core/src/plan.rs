//! Query planning: normalization and selectivity-ordered evaluation.
//!
//! The planner turns the user's condition tree into a [`PlanNode`]:
//! conjunctions collapse into per-object [`Interval`]s, and every And/Conj
//! level is **ordered by estimated selectivity** from the objects' global
//! histograms (§III-D2): "when a query involves conditions on multiple
//! objects, the execution order has a significant impact on the overall
//! query evaluation time ... we chose to use a histogram that can provide
//! an approximate estimation at a very low cost."

use crate::ast::{PdcQuery, QueryNode};
use pdc_histogram::Histogram;
use pdc_odms::Odms;
use pdc_types::{Interval, NdRegion, ObjectId, PdcError, PdcResult};
use serde::{Deserialize, Serialize};

/// One normalized constraint: all comparisons on `object` in a
/// conjunction, fused into a single interval.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObjConstraint {
    /// The constrained object.
    pub object: ObjectId,
    /// The fused value interval.
    pub interval: Interval,
    /// Estimated selectivity (midpoint of the global-histogram bounds),
    /// used for ordering; `None` when no histogram exists.
    pub est_selectivity: Option<f64>,
}

/// A normalized plan node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PlanNode {
    /// AND of per-object intervals, ordered most-selective-first.
    Conj(Vec<ObjConstraint>),
    /// General conjunction of sub-plans (arises when an AND has an OR
    /// below it), ordered most-selective-first; evaluated by candidate
    /// chaining.
    And(Vec<PlanNode>),
    /// Disjunction of sub-plans; results are unioned with duplicate
    /// removal.
    Or(Vec<PlanNode>),
}

/// The executable plan: normalized tree plus the spatial constraint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryPlan {
    /// Normalized, selectivity-ordered condition tree.
    pub root: PlanNode,
    /// Optional spatial constraint carried over from the query.
    pub region: Option<NdRegion>,
}

impl PlanNode {
    /// Estimated selectivity of the node (fraction of elements), for
    /// ordering. Conservative: AND takes the minimum of its children
    /// (an upper bound of the conjunction), OR the clamped sum.
    pub fn est_selectivity(&self) -> f64 {
        match self {
            PlanNode::Conj(cs) => {
                cs.iter().filter_map(|c| c.est_selectivity).fold(1.0, f64::min)
            }
            PlanNode::And(children) => {
                children.iter().map(|c| c.est_selectivity()).fold(1.0, f64::min)
            }
            PlanNode::Or(children) => {
                children.iter().map(|c| c.est_selectivity()).sum::<f64>().min(1.0)
            }
        }
    }

    /// All objects referenced by the node.
    pub fn objects(&self, out: &mut Vec<ObjectId>) {
        match self {
            PlanNode::Conj(cs) => out.extend(cs.iter().map(|c| c.object)),
            PlanNode::And(children) | PlanNode::Or(children) => {
                for c in children {
                    c.objects(out);
                }
            }
        }
    }

    /// Whether any constraint interval is empty (the whole conjunction
    /// can short-circuit to no hits).
    pub fn trivially_empty(&self) -> bool {
        match self {
            PlanNode::Conj(cs) => cs.iter().any(|c| c.interval.is_empty()),
            PlanNode::And(children) => children.iter().any(|c| c.trivially_empty()),
            PlanNode::Or(children) => children.iter().all(|c| c.trivially_empty()),
        }
    }
}

impl QueryPlan {
    /// Normalize and order a query against the system's metadata.
    ///
    /// Validates that all referenced objects exist, share identical array
    /// dimensions ("querying on multiple objects is allowed when the
    /// object dimensions are identical") and — for multi-object queries —
    /// share the same region partitioning grid.
    pub fn build(query: &PdcQuery, odms: &Odms) -> PdcResult<QueryPlan> {
        Self::build_with_ordering(query, odms, true)
    }

    /// Like [`Self::build`], but optionally disabling the
    /// selectivity-based evaluation ordering (used by the E7 ablation to
    /// quantify what the ordering buys).
    pub fn build_with_ordering(
        query: &PdcQuery,
        odms: &Odms,
        order_by_selectivity: bool,
    ) -> PdcResult<QueryPlan> {
        let objects = query.objects();
        if objects.is_empty() {
            return Err(PdcError::InvalidQuery("no constraints".into()));
        }
        let first_meta = odms.meta().get(objects[0])?;
        for &o in &objects[1..] {
            let m = odms.meta().get(o)?;
            if m.shape != first_meta.shape {
                return Err(PdcError::DimensionMismatch {
                    left: first_meta.shape.0.clone(),
                    right: m.shape.0.clone(),
                });
            }
            if m.region_elems != first_meta.region_elems {
                return Err(PdcError::InvalidQuery(format!(
                    "objects {} and {} use different region grids ({} vs {} elements)",
                    objects[0], o, first_meta.region_elems, m.region_elems
                )));
            }
        }
        // Type check: comparison constants must match the object type.
        check_types(&query.root, odms)?;

        let root = normalize(&query.root, odms, order_by_selectivity);
        Ok(QueryPlan { root, region: query.region.clone() })
    }

    /// The primary object of the plan: the first-evaluated constraint's
    /// object (after selectivity ordering). Used by the engine for region
    /// assignment.
    pub fn primary_object(&self) -> ObjectId {
        fn first(node: &PlanNode) -> ObjectId {
            match node {
                PlanNode::Conj(cs) => cs[0].object,
                PlanNode::And(children) | PlanNode::Or(children) => first(&children[0]),
            }
        }
        first(&self.root)
    }
}

fn check_types(node: &QueryNode, odms: &Odms) -> PdcResult<()> {
    match node {
        QueryNode::Constraint { object, value, .. } => {
            let meta = odms.meta().get(*object)?;
            if meta.pdc_type != value.pdc_type() {
                return Err(PdcError::TypeMismatch {
                    expected: meta.pdc_type,
                    got: value.pdc_type(),
                });
            }
            Ok(())
        }
        QueryNode::And(a, b) | QueryNode::Or(a, b) => {
            check_types(a, odms)?;
            check_types(b, odms)
        }
    }
}

/// Estimated selectivity midpoint from an object's global histogram.
fn estimate(hist: Option<&Histogram>, interval: &Interval) -> Option<f64> {
    let h = hist?;
    if h.total() == 0 {
        return Some(0.0);
    }
    let (lo, hi) = h.selectivity_bounds(interval);
    Some((lo + hi) / 2.0)
}

/// Normalize a query tree: fuse conjunctive constraints per object, then
/// order every level by estimated selectivity (ascending — most selective
/// first).
fn normalize(node: &QueryNode, odms: &Odms, order: bool) -> PlanNode {
    match node {
        QueryNode::Constraint { object, op, value } => {
            let interval = Interval::from_op(*op, value.as_f64());
            PlanNode::Conj(vec![constraint(*object, interval, odms)])
        }
        QueryNode::And(a, b) => {
            let left = normalize(a, odms, order);
            let right = normalize(b, odms, order);
            merge_and(left, right, odms, order)
        }
        QueryNode::Or(a, b) => {
            let left = normalize(a, odms, order);
            let right = normalize(b, odms, order);
            let mut children = Vec::new();
            flatten_or(left, &mut children);
            flatten_or(right, &mut children);
            if order {
                children.sort_by(|x, y| {
                    x.est_selectivity().partial_cmp(&y.est_selectivity()).unwrap()
                });
            }
            PlanNode::Or(children)
        }
    }
}

fn constraint(object: ObjectId, interval: Interval, odms: &Odms) -> ObjConstraint {
    let hist = odms.meta().global_histogram(object).ok();
    let est = estimate(hist.as_deref(), &interval);
    ObjConstraint { object, interval, est_selectivity: est }
}

fn flatten_or(node: PlanNode, out: &mut Vec<PlanNode>) {
    match node {
        PlanNode::Or(children) => out.extend(children),
        other => out.push(other),
    }
}

fn merge_and(left: PlanNode, right: PlanNode, odms: &Odms, order: bool) -> PlanNode {
    match (left, right) {
        // Two conjunctions fuse: intervals on the same object intersect.
        (PlanNode::Conj(a), PlanNode::Conj(b)) => {
            let mut merged: Vec<ObjConstraint> = a;
            for c in b {
                if let Some(existing) = merged.iter_mut().find(|m| m.object == c.object) {
                    let fused = existing.interval.intersect(&c.interval);
                    *existing = constraint(c.object, fused, odms);
                } else {
                    merged.push(c);
                }
            }
            // Most selective first — the paper's evaluation ordering.
            if order {
                merged.sort_by(|x, y| {
                    let sx = x.est_selectivity.unwrap_or(1.0);
                    let sy = y.est_selectivity.unwrap_or(1.0);
                    sx.partial_cmp(&sy).unwrap().then(x.object.cmp(&y.object))
                });
            }
            PlanNode::Conj(merged)
        }
        // Anything else: general And, candidate-chained at evaluation.
        (l, r) => {
            let mut children = Vec::new();
            let mut push = |n: PlanNode| match n {
                PlanNode::And(cs) => children.extend(cs),
                other => children.push(other),
            };
            push(l);
            push(r);
            if order {
                children.sort_by(|x, y| {
                    x.est_selectivity().partial_cmp(&y.est_selectivity()).unwrap()
                });
            }
            PlanNode::And(children)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdc_odms::ImportOptions;
    use pdc_types::{QueryOp, TypedVec};

    /// Build a small system with two f32 objects of the same shape whose
    /// distributions differ (x is uniform; energy is mostly small with a
    /// sparse tail), so selectivity ordering is testable.
    fn system() -> (Odms, ObjectId, ObjectId) {
        let odms = Odms::new(4);
        let c = odms.create_container("t");
        let n = 20_000;
        let energy: Vec<f32> = (0..n)
            .map(|i| if i % 100 == 0 { 2.0 + (i % 7) as f32 * 0.3 } else { (i % 97) as f32 / 50.0 })
            .collect();
        let x: Vec<f32> = (0..n).map(|i| (i % 1000) as f32 / 3.0).collect();
        let opts = ImportOptions { region_bytes: 8192, ..Default::default() };
        let e = odms.import_array(c, "energy", TypedVec::Float(energy), &opts).unwrap().object;
        let xo = odms.import_array(c, "x", TypedVec::Float(x), &opts).unwrap().object;
        (odms, e, xo)
    }

    #[test]
    fn single_constraint_plan() {
        let (odms, e, _) = system();
        let q = PdcQuery::create(e, QueryOp::Gt, 2.0f32);
        let plan = QueryPlan::build(&q, &odms).unwrap();
        match &plan.root {
            PlanNode::Conj(cs) => {
                assert_eq!(cs.len(), 1);
                assert_eq!(cs[0].object, e);
                assert!(cs[0].est_selectivity.unwrap() < 0.2);
            }
            other => panic!("expected Conj, got {other:?}"),
        }
        assert_eq!(plan.primary_object(), e);
    }

    #[test]
    fn range_fuses_into_one_interval() {
        let (odms, e, _) = system();
        let q = PdcQuery::range_open(e, 0.5f32, 0.6f32);
        let plan = QueryPlan::build(&q, &odms).unwrap();
        match &plan.root {
            PlanNode::Conj(cs) => {
                assert_eq!(cs.len(), 1, "two constraints on one object must fuse");
                assert!(cs[0].interval.contains(0.55));
                assert!(!cs[0].interval.contains(0.5));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn multi_object_ordered_by_selectivity() {
        let (odms, e, xo) = system();
        // energy > 2.0 is rare (~1%); x < 200 is common (~60%). The plan
        // must evaluate energy first even though x comes first in the
        // user's tree.
        let q = PdcQuery::create(xo, QueryOp::Lt, 200.0f32)
            .and(PdcQuery::create(e, QueryOp::Gt, 2.0f32));
        let plan = QueryPlan::build(&q, &odms).unwrap();
        match &plan.root {
            PlanNode::Conj(cs) => {
                assert_eq!(cs.len(), 2);
                assert_eq!(cs[0].object, e, "most selective constraint must come first");
                assert_eq!(plan.primary_object(), e);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn or_flattens_and_orders() {
        let (odms, e, _) = system();
        let q = PdcQuery::create(e, QueryOp::Gt, 3.0f32)
            .or(PdcQuery::create(e, QueryOp::Lt, 0.1f32))
            .or(PdcQuery::create(e, QueryOp::Gt, 100.0f32));
        let plan = QueryPlan::build(&q, &odms).unwrap();
        match &plan.root {
            PlanNode::Or(children) => {
                assert_eq!(children.len(), 3);
                let sels: Vec<f64> = children.iter().map(|c| c.est_selectivity()).collect();
                assert!(sels.windows(2).all(|w| w[0] <= w[1]), "not ordered: {sels:?}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn and_over_or_becomes_general_and() {
        let (odms, e, xo) = system();
        let q = (PdcQuery::create(e, QueryOp::Gt, 3.0f32)
            .or(PdcQuery::create(e, QueryOp::Lt, 0.1f32)))
        .and(PdcQuery::create(xo, QueryOp::Lt, 50.0f32));
        let plan = QueryPlan::build(&q, &odms).unwrap();
        assert!(matches!(plan.root, PlanNode::And(_)));
    }

    #[test]
    fn contradictory_range_is_trivially_empty() {
        let (odms, e, _) = system();
        let q = PdcQuery::create(e, QueryOp::Gt, 5.0f32)
            .and(PdcQuery::create(e, QueryOp::Lt, 1.0f32));
        let plan = QueryPlan::build(&q, &odms).unwrap();
        assert!(plan.root.trivially_empty());
    }

    #[test]
    fn type_mismatch_rejected() {
        let (odms, e, _) = system();
        let q = PdcQuery::create(e, QueryOp::Gt, 2.0f64); // object is f32
        assert!(matches!(
            QueryPlan::build(&q, &odms),
            Err(PdcError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let odms = Odms::new(4);
        let c = odms.create_container("t");
        let opts = ImportOptions::default();
        let a = odms
            .import_array(c, "a", TypedVec::Float(vec![0.0; 100]), &opts)
            .unwrap()
            .object;
        let b = odms
            .import_array(c, "b", TypedVec::Float(vec![0.0; 200]), &opts)
            .unwrap()
            .object;
        let q = PdcQuery::create(a, QueryOp::Gt, 0.0f32)
            .and(PdcQuery::create(b, QueryOp::Gt, 0.0f32));
        assert!(matches!(
            QueryPlan::build(&q, &odms),
            Err(PdcError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn missing_object_rejected() {
        let (odms, _, _) = system();
        let q = PdcQuery::create(ObjectId(9999), QueryOp::Gt, 0.0f32);
        assert!(matches!(QueryPlan::build(&q, &odms), Err(PdcError::NoSuchObject(_))));
    }

    #[test]
    fn region_constraint_carried_over() {
        let (odms, e, _) = system();
        let q = PdcQuery::create(e, QueryOp::Gt, 2.0f32)
            .set_region(pdc_types::NdRegion::one_d(100, 500));
        let plan = QueryPlan::build(&q, &odms).unwrap();
        assert!(plan.region.is_some());
    }
}
