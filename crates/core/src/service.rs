//! The multi-tenant, admission-controlled **service loop** (ROADMAP
//! item 2): the front-end that turns the engine's one-shot / closed-batch
//! execution surface into a long-running server for open-loop arrival
//! streams.
//!
//! Three mechanisms, layered over the unchanged execution core:
//!
//! * **Per-tenant FIFO queues with weighted-fair dispatch.** Each
//!   registered tenant owns a ready queue; the single simulated client
//!   thread picks the next query by *deficit round-robin* over the
//!   tenants' estimated simulated costs (the PDC-A estimator surface,
//!   [`crate::ops::estimate_plan_cost`]). A tenant's long-term share of
//!   dispatched cost is proportional to its configured weight,
//!   independent of how aggressively it submits.
//! * **Admission control.** At arrival, a query's estimated cost is
//!   charged against its tenant's *in-flight budget*: while the tenant's
//!   admitted-but-incomplete estimated cost would exceed the budget, the
//!   arrival is **deferred** (FIFO, re-admitted as completions release
//!   budget) or — past the deferral-queue capacity — **rejected**. Both
//!   are typed outcomes ([`TraceEvent::Defer`] / [`RejectedQuery`]),
//!   never silent drops. A tenant with zero in-flight work always admits
//!   its head query, so an oversized estimate cannot livelock a tenant.
//! * **Continuous batching.** Dispatched queries are folded into an open
//!   [`crate::qcache::SharedScanGroup`]
//!   ([`crate::engine::QueryEngine::admit_to_scan_group`]): a late
//!   arrival whose predicates overlap the in-flight group's prewarms only
//!   the *regions* its new intervals still need — the fused interval-scan
//!   group admits late members at region granularity instead of being
//!   computed once over a closed set.
//!
//! **The invariant scheduling must preserve**: every admitted query's
//! `Selection` and per-query simulated `CostBreakdown` are bit-identical
//! to running the same dispatch sequence through [`QueryEngine::run`] —
//! scheduling affects *when* (queueing, the service timeline), never
//! *what* (per-query results and charges). Group admission and the
//! artifact caches are pure host work, property-tested in
//! `tests/service_equivalence.rs`.
//!
//! Time is fully simulated: the loop advances a virtual clock over
//! arrival and completion events, modelling one serial client thread
//! (per-query client overhead) feeding `num_servers` parallel servers
//! (per-server busy timelines), exactly the schedule model
//! [`QueryEngine::run_batch`] charges for a closed batch — the shared
//! accounting lives in [`ScheduleClock`].

use crate::ast::PdcQuery;
use crate::engine::{QueryEngine, QueryOutcome};
use crate::ops::estimate_plan_cost;
use crate::qcache::GroupStats;
use pdc_odms::Odms;
use pdc_storage::SimDuration;
use pdc_types::{PdcError, PdcResult};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

// ---------------------------------------------------------------------
// ScheduleClock — the shared client-overhead + makespan accounting
// ---------------------------------------------------------------------

/// The closed-batch schedule accountant shared by
/// [`QueryEngine::run_batch`] and the service loop's reports: client
/// overheads are serial (one client thread builds, broadcasts, and
/// aggregates each query), server evaluation overlaps across queries
/// (per-server busy totals), so the modelled elapsed time of a series is
/// `client_overhead + makespan` where the makespan is the largest
/// per-server total.
#[derive(Debug, Clone, Default)]
pub struct ScheduleClock {
    client_overhead: SimDuration,
    per_server_total: Vec<SimDuration>,
}

impl ScheduleClock {
    /// A clock for a pool of `num_servers` servers (the vector grows if
    /// an elastic join mid-series widens an outcome).
    pub fn new(num_servers: u32) -> Self {
        Self {
            client_overhead: SimDuration::ZERO,
            per_server_total: vec![SimDuration::ZERO; num_servers as usize],
        }
    }

    /// Charge one query: `elapsed` is the query's end-to-end simulated
    /// time, `eval_time` the portion spent in parallel server
    /// evaluation, `per_server` the per-server evaluation times. The
    /// serial part (`elapsed - eval_time`) accrues to the client lane;
    /// the parallel part folds into the per-server schedule.
    pub fn charge(&mut self, elapsed: SimDuration, eval_time: SimDuration, per_server: &[SimDuration]) {
        self.client_overhead += elapsed.saturating_sub(eval_time);
        if per_server.len() > self.per_server_total.len() {
            self.per_server_total.resize(per_server.len(), SimDuration::ZERO);
        }
        for (s, t) in per_server.iter().enumerate() {
            self.per_server_total[s] += *t;
        }
    }

    /// Total serial client-side work charged so far.
    pub fn client_overhead(&self) -> SimDuration {
        self.client_overhead
    }

    /// Largest per-server evaluation total (the parallel makespan).
    pub fn makespan(&self) -> SimDuration {
        self.per_server_total.iter().copied().max().unwrap_or(SimDuration::ZERO)
    }

    /// The modelled elapsed time of the whole series:
    /// `client_overhead + makespan`.
    pub fn batch_elapsed(&self) -> SimDuration {
        self.client_overhead + self.makespan()
    }
}

// ---------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------

/// One tenant's scheduling contract.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantSpec {
    /// Unique tenant name.
    pub name: String,
    /// Deficit-round-robin weight (≥ 1): long-term dispatched-cost share
    /// is proportional to weight.
    pub weight: u32,
    /// Admission budget: the maximum summed *estimated* simulated cost
    /// the tenant may have admitted-but-incomplete at once.
    pub cost_budget: SimDuration,
    /// Deferral-queue capacity; arrivals past it are rejected.
    pub queue_cap: usize,
}

impl TenantSpec {
    /// A tenant with the given name and scheduling parameters.
    pub fn new(name: &str, weight: u32, cost_budget: SimDuration, queue_cap: usize) -> Self {
        Self { name: name.to_string(), weight: weight.max(1), cost_budget, queue_cap }
    }
}

/// Service-loop configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceConfig {
    /// The registered tenants (dispatch order of the DRR rotation).
    pub tenants: Vec<TenantSpec>,
    /// DRR quantum: estimated cost credited to a tenant per rotation
    /// visit, scaled by its weight.
    pub quantum: SimDuration,
    /// Fold dispatched queries into an open shared-scan group
    /// (continuous batching). Pure host work — results and per-query
    /// charges are identical either way.
    pub continuous_batching: bool,
}

impl ServiceConfig {
    /// A config over `tenants` with a 5 ms quantum and continuous
    /// batching enabled.
    pub fn new(tenants: Vec<TenantSpec>) -> Self {
        Self { tenants, quantum: SimDuration::from_millis(5), continuous_batching: true }
    }

    /// Build the config from the tenants registered on an [`Odms`]
    /// (see `Odms::register_tenant`), in id order.
    pub fn from_odms(odms: &Odms) -> Self {
        Self::new(
            odms.tenants()
                .into_iter()
                .map(|t| TenantSpec::new(
                    &t.name,
                    t.weight,
                    SimDuration::from_nanos(t.cost_budget_ns),
                    t.queue_cap,
                ))
                .collect(),
        )
    }
}

/// One open-loop arrival: a query submitted by `tenant` at simulated
/// time `at`.
#[derive(Debug, Clone)]
pub struct Arrival {
    /// Simulated submission time.
    pub at: SimDuration,
    /// Submitting tenant's name (must be in [`ServiceConfig::tenants`]).
    pub tenant: String,
    /// The query.
    pub query: PdcQuery,
}

// ---------------------------------------------------------------------
// Outcomes
// ---------------------------------------------------------------------

/// One scheduler-trace event. The trace is deterministic given the
/// arrival schedule and engine configuration (asserted in
/// `tests/service_equivalence.rs`), nondecreasing in `at`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A query arrived.
    Arrive { at: SimDuration, tenant: u32, seq: u64 },
    /// It was admitted (charged against the tenant budget);
    /// `deferred` marks a re-admission from the deferral queue.
    Admit { at: SimDuration, tenant: u32, seq: u64, deferred: bool },
    /// Budget exceeded: parked in the deferral queue.
    Defer { at: SimDuration, tenant: u32, seq: u64, est: SimDuration },
    /// Budget exceeded and the deferral queue is full: rejected.
    Reject { at: SimDuration, tenant: u32, seq: u64, est: SimDuration },
    /// The dispatch joined the open shared-scan group; `late` marks a
    /// join into a group that already had admissions in flight, and
    /// `new_intervals` counts the predicates the group had not already
    /// covered (0 = fully shared with earlier members).
    GroupJoin { at: SimDuration, group: u64, seq: u64, new_intervals: u64, late: bool },
    /// The client began executing the query.
    Dispatch { at: SimDuration, tenant: u32, seq: u64 },
    /// The last server lane finished the query.
    Complete { at: SimDuration, tenant: u32, seq: u64 },
}

impl TraceEvent {
    /// The event's timestamp.
    pub fn at(&self) -> SimDuration {
        match *self {
            TraceEvent::Arrive { at, .. }
            | TraceEvent::Admit { at, .. }
            | TraceEvent::Defer { at, .. }
            | TraceEvent::Reject { at, .. }
            | TraceEvent::GroupJoin { at, .. }
            | TraceEvent::Dispatch { at, .. }
            | TraceEvent::Complete { at, .. } => at,
        }
    }
}

/// One completed query with its full service timeline. `outcome` is
/// bit-identical to the solo [`QueryEngine::run`] result at the same
/// dispatch position (the invariant the property suite pins).
#[derive(Debug, Clone)]
pub struct ServedQuery {
    /// Tenant index into [`ServiceConfig::tenants`].
    pub tenant: u32,
    /// Global arrival sequence number (index into the submitted set).
    pub seq: u64,
    /// Index into the `arrivals` slice passed to [`QueryEngine::serve`]
    /// (for dispatch-order replay).
    pub arrival_index: usize,
    /// Simulated submission time.
    pub arrival: SimDuration,
    /// When admission control accepted it.
    pub admitted_at: SimDuration,
    /// Whether it sat in the deferral queue first.
    pub was_deferred: bool,
    /// When the client began executing it.
    pub dispatched_at: SimDuration,
    /// When its last server lane finished.
    pub completed_at: SimDuration,
    /// The admission-control cost estimate.
    pub est_cost: SimDuration,
    /// The query's execution outcome (results + simulated charges).
    pub outcome: QueryOutcome,
}

impl ServedQuery {
    /// End-to-end simulated latency: completion − arrival.
    pub fn latency(&self) -> SimDuration {
        self.completed_at.saturating_sub(self.arrival)
    }
}

/// One rejected query — a typed outcome, not a silent drop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RejectedQuery {
    /// Tenant index into [`ServiceConfig::tenants`].
    pub tenant: u32,
    /// Global arrival sequence number.
    pub seq: u64,
    /// Simulated submission time.
    pub arrival: SimDuration,
    /// The estimate that exceeded the remaining budget.
    pub est_cost: SimDuration,
}

/// Aggregate service-loop counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Arrivals observed.
    pub submitted: u64,
    /// Admissions (direct + deferred re-admissions).
    pub admitted: u64,
    /// Arrivals parked in a deferral queue at least once.
    pub deferrals: u64,
    /// Arrivals rejected (deferral queue full).
    pub rejected: u64,
    /// Queries dispatched to execution.
    pub dispatched: u64,
    /// Queries completed.
    pub completed: u64,
}

/// Per-tenant latency/throughput summary.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSummary {
    /// Tenant name.
    pub name: String,
    /// Arrivals submitted by this tenant.
    pub submitted: u64,
    /// Queries completed.
    pub completed: u64,
    /// Queries rejected.
    pub rejected: u64,
    /// Completed queries that were deferred before admission.
    pub deferred: u64,
    /// Median simulated latency.
    pub p50: SimDuration,
    /// 95th-percentile simulated latency.
    pub p95: SimDuration,
    /// 99th-percentile simulated latency.
    pub p99: SimDuration,
    /// Mean simulated latency.
    pub mean: SimDuration,
    /// Completed queries per simulated second (over the service span).
    pub throughput_qps: f64,
}

/// Everything one [`QueryEngine::serve`] call produced.
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// Completed queries in **dispatch order** (the order a sequential
    /// replay must use to reproduce warm-cache accounting).
    pub served: Vec<ServedQuery>,
    /// Rejected queries, in arrival order.
    pub rejected: Vec<RejectedQuery>,
    /// The full scheduler trace, nondecreasing in time.
    pub trace: Vec<TraceEvent>,
    /// Aggregate counters.
    pub stats: ServiceStats,
    /// Shared-scan group counters (`None` when continuous batching was
    /// off or disabled by an active corruption spec).
    pub group: Option<GroupStats>,
    /// Echo of the tenant specs (for summaries).
    pub tenants: Vec<TenantSpec>,
    /// Simulated completion time of the last query.
    pub end_time: SimDuration,
}

impl ServiceReport {
    /// Per-tenant latency percentiles and throughput, in tenant order.
    pub fn tenant_summaries(&self) -> Vec<TenantSummary> {
        let span = self.end_time.as_secs_f64();
        self.tenants
            .iter()
            .enumerate()
            .map(|(ti, spec)| {
                let mut lat: Vec<SimDuration> = self
                    .served
                    .iter()
                    .filter(|s| s.tenant as usize == ti)
                    .map(|s| s.latency())
                    .collect();
                lat.sort_unstable();
                let completed = lat.len() as u64;
                let rejected =
                    self.rejected.iter().filter(|r| r.tenant as usize == ti).count() as u64;
                let deferred = self
                    .served
                    .iter()
                    .filter(|s| s.tenant as usize == ti && s.was_deferred)
                    .count() as u64;
                let total: SimDuration =
                    lat.iter().fold(SimDuration::ZERO, |acc, &l| acc + l);
                TenantSummary {
                    name: spec.name.clone(),
                    submitted: completed + rejected,
                    completed,
                    rejected,
                    deferred,
                    p50: percentile(&lat, 50.0),
                    p95: percentile(&lat, 95.0),
                    p99: percentile(&lat, 99.0),
                    mean: if completed == 0 { SimDuration::ZERO } else { total / completed },
                    throughput_qps: if span > 0.0 { completed as f64 / span } else { 0.0 },
                }
            })
            .collect()
    }

    /// Summary for one tenant by name.
    pub fn tenant_summary(&self, name: &str) -> Option<TenantSummary> {
        self.tenant_summaries().into_iter().find(|t| t.name == name)
    }
}

/// Nearest-rank percentile of an ascending-sorted latency slice.
pub fn percentile(sorted: &[SimDuration], p: f64) -> SimDuration {
    if sorted.is_empty() {
        return SimDuration::ZERO;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

// ---------------------------------------------------------------------
// Deterministic open-loop arrival generation
// ---------------------------------------------------------------------

/// One splitmix64 step (deterministic, seedable — the repo's standard
/// cheap PRNG).
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Open-loop Poisson arrival times: exponential inter-arrivals at
/// `rate_hz` (simulated arrivals per simulated second) until `horizon`.
/// Deterministic given `seed`.
pub fn poisson_times(seed: u64, rate_hz: f64, horizon: SimDuration) -> Vec<SimDuration> {
    let mut out = Vec::new();
    if rate_hz <= 0.0 {
        return out;
    }
    let mut s = seed;
    let mut t = 0.0f64;
    let end = horizon.as_secs_f64();
    loop {
        // u ∈ (0, 1]: never ln(0).
        let u = ((splitmix64(&mut s) >> 11) as f64 + 1.0) / (1u64 << 53) as f64;
        t += -u.ln() / rate_hz;
        if t > end {
            return out;
        }
        out.push(SimDuration::from_secs_f64(t));
    }
}

// ---------------------------------------------------------------------
// The service loop
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
struct Queued {
    seq: u64,
    arrival_index: usize,
    arrival: SimDuration,
    admitted_at: SimDuration,
    deferred: bool,
    est: SimDuration,
}

#[derive(Debug)]
struct TenantState {
    spec: TenantSpec,
    ready: VecDeque<Queued>,
    deferred: VecDeque<Queued>,
    /// Estimated cost admitted but not yet completed.
    in_flight_cost: SimDuration,
    /// Queries admitted but not yet completed.
    in_flight: u64,
    /// DRR deficit counter.
    deficit: SimDuration,
    /// Mid-visit marker: keep serving this tenant while its deficit
    /// covers its head (classic DRR serves a whole visit per quantum).
    in_service: bool,
}

impl TenantState {
    fn new(spec: TenantSpec) -> Self {
        Self {
            spec,
            ready: VecDeque::new(),
            deferred: VecDeque::new(),
            in_flight_cost: SimDuration::ZERO,
            in_flight: 0,
            deficit: SimDuration::ZERO,
            in_service: false,
        }
    }

    /// The admission-control decision rule: a tenant with zero in-flight
    /// work always admits (no oversize livelock); otherwise the new
    /// estimate must fit under the budget alongside the in-flight cost.
    fn admits(&self, est: SimDuration) -> bool {
        self.in_flight == 0 || self.in_flight_cost + est <= self.spec.cost_budget
    }
}

/// Deficit-round-robin pick: returns the tenant whose head query to
/// dispatch next, having already debited its deficit. A full rotation
/// that dispatches nothing fast-forwards every backlogged tenant by the
/// same whole number of quanta (O(1) convergence, identical fairness to
/// stepping one quantum at a time).
fn drr_pick(ts: &mut [TenantState], ptr: &mut usize, quantum: SimDuration) -> Option<usize> {
    let n = ts.len();
    if ts.iter().all(|t| t.ready.is_empty()) {
        return None;
    }
    // Continue the in-progress visit while the deficit covers the head.
    {
        let t = &mut ts[*ptr];
        if t.in_service {
            match t.ready.front() {
                Some(head) if t.deficit >= head.est => {
                    let est = head.est;
                    t.deficit = t.deficit.saturating_sub(est);
                    return Some(*ptr);
                }
                _ => {
                    t.in_service = false;
                    if t.ready.is_empty() {
                        // An idle tenant carries no credit into its next
                        // backlogged period (standard DRR).
                        t.deficit = SimDuration::ZERO;
                    }
                    *ptr = (*ptr + 1) % n;
                }
            }
        }
    }
    loop {
        for _ in 0..n {
            let i = *ptr;
            let t = &mut ts[i];
            if t.ready.is_empty() {
                t.deficit = SimDuration::ZERO;
                *ptr = (i + 1) % n;
                continue;
            }
            t.deficit += quantum * t.spec.weight as u64;
            let head_est = t.ready.front().expect("non-empty").est;
            if t.deficit >= head_est {
                t.deficit = t.deficit.saturating_sub(head_est);
                t.in_service = true;
                return Some(i);
            }
            *ptr = (i + 1) % n;
        }
        // Whole rotation dispatched nothing: every backlogged head costs
        // more than its deficit. Credit all backlogged tenants the
        // minimal whole number of extra quanta that lets one dispatch.
        let mut k_min = u64::MAX;
        for t in ts.iter() {
            let Some(head) = t.ready.front() else { continue };
            let qw = (quantum * t.spec.weight as u64).as_nanos();
            let need = head.est.saturating_sub(t.deficit).as_nanos();
            if qw > 0 {
                k_min = k_min.min(need.div_ceil(qw));
            }
        }
        if k_min == u64::MAX || k_min == 0 {
            k_min = 1;
        }
        for t in ts.iter_mut() {
            if !t.ready.is_empty() {
                t.deficit += (quantum * t.spec.weight as u64) * k_min;
            }
        }
    }
}

impl QueryEngine {
    /// Run the admission-controlled, weighted-fair, continuously-batched
    /// service loop over an open-loop arrival schedule, entirely in
    /// simulated time. See the module docs for the scheduling model; see
    /// `tests/service_equivalence.rs` for the bit-identity property the
    /// loop preserves.
    ///
    /// Arrivals may be passed in any order; they are processed in
    /// nondecreasing `at` order (ties keep slice order). Unknown tenant
    /// names and empty tenant sets are typed
    /// [`PdcError::InvalidQuery`] errors.
    pub fn serve(&self, cfg: &ServiceConfig, arrivals: &[Arrival]) -> PdcResult<ServiceReport> {
        if cfg.tenants.is_empty() {
            return Err(PdcError::InvalidQuery(
                "serve requires at least one configured tenant".into(),
            ));
        }
        let quantum = cfg.quantum.max(SimDuration::from_nanos(1));
        let mut ts: Vec<TenantState> =
            cfg.tenants.iter().cloned().map(TenantState::new).collect();
        let index: HashMap<&str, usize> = cfg
            .tenants
            .iter()
            .enumerate()
            .map(|(i, t)| (t.name.as_str(), i))
            .collect();
        if index.len() != cfg.tenants.len() {
            return Err(PdcError::InvalidQuery("duplicate tenant name in service config".into()));
        }
        let tenant_of: Vec<usize> = arrivals
            .iter()
            .map(|a| {
                index.get(a.tenant.as_str()).copied().ok_or_else(|| {
                    PdcError::InvalidQuery(format!("unknown tenant '{}'", a.tenant))
                })
            })
            .collect::<PdcResult<_>>()?;
        // Time order, stable in slice order for ties.
        let mut order: Vec<usize> = (0..arrivals.len()).collect();
        order.sort_by_key(|&i| arrivals[i].at);

        // Continuous batching is skipped under an active corruption spec
        // for the same reason run_batch skips prewarm: each query's
        // verify-and-repair preflight must observe the damaged state
        // exactly as a sequential run would.
        let mut group =
            (cfg.continuous_batching && !self.corruption_active()).then(|| self.open_scan_group());

        let mut trace: Vec<TraceEvent> = Vec::new();
        let mut served: Vec<ServedQuery> = Vec::new();
        let mut rejected: Vec<RejectedQuery> = Vec::new();
        let mut stats = ServiceStats::default();

        let mut now = SimDuration::ZERO;
        let mut client_free = SimDuration::ZERO;
        let mut server_busy = vec![SimDuration::ZERO; self.num_servers() as usize];
        // (completion, seq, tenant, est): min-heap, deterministic ties.
        let mut heap: BinaryHeap<Reverse<(SimDuration, u64, u32, SimDuration)>> =
            BinaryHeap::new();
        let mut next_arr = 0usize;
        let mut ptr = 0usize;

        loop {
            // 1. Completions due — before arrivals, so budget released at
            //    time t is visible to an arrival at t.
            while let Some(&Reverse((ct, seq, ti, est))) = heap.peek() {
                if ct > now {
                    break;
                }
                heap.pop();
                let t = &mut ts[ti as usize];
                t.in_flight -= 1;
                t.in_flight_cost = t.in_flight_cost.saturating_sub(est);
                trace.push(TraceEvent::Complete { at: ct, tenant: ti, seq });
                stats.completed += 1;
                // Freed budget re-admits this tenant's deferred arrivals
                // in FIFO order.
                while let Some(head) = t.deferred.front() {
                    if !t.admits(head.est) {
                        break;
                    }
                    let mut q = t.deferred.pop_front().expect("non-empty");
                    q.admitted_at = ct;
                    t.in_flight += 1;
                    t.in_flight_cost += q.est;
                    stats.admitted += 1;
                    trace.push(TraceEvent::Admit { at: ct, tenant: ti, seq: q.seq, deferred: true });
                    t.ready.push_back(q);
                }
            }
            // 2. Arrivals due.
            while next_arr < order.len() {
                let i = order[next_arr];
                let a = &arrivals[i];
                if a.at > now {
                    break;
                }
                next_arr += 1;
                let seq = i as u64;
                let ti = tenant_of[i];
                trace.push(TraceEvent::Arrive { at: a.at, tenant: ti as u32, seq });
                stats.submitted += 1;
                // Estimate through the plan cache (host work only; the
                // dispatch-time plan is then a guaranteed hit).
                let (plan, snap) = self.plan_cached(&a.query)?;
                let est = estimate_plan_cost(
                    &snap,
                    &self.config_cost(),
                    self.strategy(),
                    self.num_servers(),
                    &plan,
                )?;
                let t = &mut ts[ti];
                let q = Queued {
                    seq,
                    arrival_index: i,
                    arrival: a.at,
                    admitted_at: a.at,
                    deferred: false,
                    est,
                };
                if t.admits(est) {
                    t.in_flight += 1;
                    t.in_flight_cost += est;
                    stats.admitted += 1;
                    trace.push(TraceEvent::Admit {
                        at: a.at,
                        tenant: ti as u32,
                        seq,
                        deferred: false,
                    });
                    t.ready.push_back(q);
                } else if t.deferred.len() < t.spec.queue_cap {
                    stats.deferrals += 1;
                    trace.push(TraceEvent::Defer { at: a.at, tenant: ti as u32, seq, est });
                    let mut q = q;
                    q.deferred = true;
                    t.deferred.push_back(q);
                } else {
                    stats.rejected += 1;
                    trace.push(TraceEvent::Reject { at: a.at, tenant: ti as u32, seq, est });
                    rejected.push(RejectedQuery {
                        tenant: ti as u32,
                        seq,
                        arrival: a.at,
                        est_cost: est,
                    });
                }
            }
            // 3. Dispatch while the client thread is free.
            if client_free <= now {
                if let Some(ti) = drr_pick(&mut ts, &mut ptr, quantum) {
                    let q = ts[ti].ready.pop_front().expect("picked tenant has a head");
                    let a = &arrivals[q.arrival_index];
                    if let Some(g) = &mut group {
                        let (plan, _) = self.plan_cached(&a.query)?;
                        let before = g.stats;
                        self.admit_to_scan_group(g, std::slice::from_ref(&plan));
                        trace.push(TraceEvent::GroupJoin {
                            at: now,
                            group: g.id(),
                            seq: q.seq,
                            new_intervals: g.stats.admitted_intervals
                                - before.admitted_intervals,
                            late: before.admissions > 0,
                        });
                    }
                    let (outcome, eval_time, _) = self.run_impl(&a.query, true, false)?;
                    // The service timeline: serial client overhead, then
                    // the per-server charges queue behind each server's
                    // busy lane (the ScheduleClock model, unrolled over
                    // continuous time).
                    let overhead = outcome.elapsed.saturating_sub(eval_time);
                    let dispatched_at = now;
                    client_free = now + overhead;
                    if outcome.per_server.len() > server_busy.len() {
                        server_busy.resize(outcome.per_server.len(), SimDuration::ZERO);
                    }
                    let mut completion = client_free;
                    for (s, dt) in outcome.per_server.iter().enumerate() {
                        let f = server_busy[s].max(client_free) + *dt;
                        server_busy[s] = f;
                        completion = completion.max(f);
                    }
                    heap.push(Reverse((completion, q.seq, ti as u32, q.est)));
                    stats.dispatched += 1;
                    trace.push(TraceEvent::Dispatch { at: dispatched_at, tenant: ti as u32, seq: q.seq });
                    served.push(ServedQuery {
                        tenant: ti as u32,
                        seq: q.seq,
                        arrival_index: q.arrival_index,
                        arrival: q.arrival,
                        admitted_at: q.admitted_at,
                        was_deferred: q.deferred,
                        dispatched_at,
                        completed_at: completion,
                        est_cost: q.est,
                        outcome,
                    });
                    continue;
                }
            }
            // 4. Advance the clock to the next event; done when no
            //    events remain.
            let mut next: Option<SimDuration> = None;
            if let Some(&Reverse((ct, ..))) = heap.peek() {
                next = Some(ct);
            }
            if next_arr < order.len() {
                let t = arrivals[order[next_arr]].at;
                next = Some(next.map_or(t, |n| n.min(t)));
            }
            if client_free > now && ts.iter().any(|t| !t.ready.is_empty()) {
                next = Some(next.map_or(client_free, |n| n.min(client_free)));
            }
            match next {
                Some(t) => now = t,
                None => break,
            }
        }

        let end_time = served
            .iter()
            .map(|s| s.completed_at)
            .max()
            .unwrap_or(SimDuration::ZERO);
        Ok(ServiceReport {
            served,
            rejected,
            trace,
            stats,
            group: group.map(|g| g.stats),
            tenants: cfg.tenants.clone(),
            end_time,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(n: u64) -> SimDuration {
        SimDuration::from_micros(n)
    }

    #[test]
    fn schedule_clock_pins_batch_elapsed_decomposition() {
        let mut clock = ScheduleClock::new(3);
        // Query 1: 10us elapsed, 6us eval split [4, 2, 0].
        clock.charge(us(10), us(6), &[us(4), us(2), SimDuration::ZERO]);
        // Query 2: 7us elapsed, 5us eval split [1, 5, 3].
        clock.charge(us(7), us(5), &[us(1), us(5), us(3)]);
        assert_eq!(clock.client_overhead(), us(6)); // (10-6) + (7-5)
        assert_eq!(clock.makespan(), us(7)); // server 1: 2 + 5
        assert_eq!(clock.batch_elapsed(), clock.client_overhead() + clock.makespan());
        assert_eq!(clock.batch_elapsed(), us(13));
    }

    #[test]
    fn schedule_clock_grows_for_elastic_joins() {
        let mut clock = ScheduleClock::new(1);
        clock.charge(us(3), us(2), &[us(2)]);
        // A join mid-series widens the pool to 3 servers.
        clock.charge(us(4), us(3), &[us(1), us(1), us(3)]);
        assert_eq!(clock.makespan(), us(3));
        assert_eq!(clock.batch_elapsed(), us(2) + us(3));
    }

    #[test]
    fn empty_clock_is_zero() {
        let clock = ScheduleClock::new(4);
        assert_eq!(clock.batch_elapsed(), SimDuration::ZERO);
    }

    #[test]
    fn percentile_nearest_rank() {
        let lat: Vec<SimDuration> = (1..=100).map(us).collect();
        assert_eq!(percentile(&lat, 50.0), us(50));
        assert_eq!(percentile(&lat, 95.0), us(95));
        assert_eq!(percentile(&lat, 99.0), us(99));
        assert_eq!(percentile(&lat, 100.0), us(100));
        assert_eq!(percentile(&lat[..1], 99.0), us(1));
        assert_eq!(percentile(&[], 50.0), SimDuration::ZERO);
    }

    #[test]
    fn poisson_times_deterministic_and_rate_scaled() {
        let horizon = SimDuration::from_secs_f64(10.0);
        let a = poisson_times(42, 100.0, horizon);
        let b = poisson_times(42, 100.0, horizon);
        assert_eq!(a, b, "same seed must reproduce the schedule");
        assert!(!a.is_empty());
        assert!(a.windows(2).all(|w| w[0] <= w[1]), "times must be sorted");
        assert!(*a.last().unwrap() <= horizon);
        let c = poisson_times(43, 100.0, horizon);
        assert_ne!(a, c, "different seeds must differ");
        // ~100 Hz over 10 s ≈ 1000 arrivals; allow wide slack.
        assert!(a.len() > 700 && a.len() < 1300, "got {}", a.len());
        let d = poisson_times(42, 10.0, horizon);
        assert!(d.len() < a.len() / 5, "rate must scale arrival counts");
        assert!(poisson_times(1, 0.0, horizon).is_empty());
    }

    #[test]
    fn drr_shares_track_weights() {
        // Two backlogged tenants, weight 1 vs 3, equal per-query cost:
        // dispatch counts over a long horizon track the weights.
        let specs = [
            TenantSpec::new("light", 1, SimDuration::MAX, 16),
            TenantSpec::new("heavy", 3, SimDuration::MAX, 16),
        ];
        let mut ts: Vec<TenantState> =
            specs.iter().cloned().map(TenantState::new).collect();
        let est = us(10);
        for t in ts.iter_mut() {
            for seq in 0..400u64 {
                t.ready.push_back(Queued {
                    seq,
                    arrival_index: 0,
                    arrival: SimDuration::ZERO,
                    admitted_at: SimDuration::ZERO,
                    deferred: false,
                    est,
                });
            }
        }
        let mut ptr = 0usize;
        let mut counts = [0u64; 2];
        for _ in 0..400 {
            let i = drr_pick(&mut ts, &mut ptr, us(5)).expect("backlogged");
            ts[i].ready.pop_front();
            counts[i] += 1;
        }
        assert_eq!(counts[0] + counts[1], 400);
        let ratio = counts[1] as f64 / counts[0] as f64;
        assert!(
            (2.5..=3.5).contains(&ratio),
            "weight-3 tenant should get ~3x the dispatches, got {counts:?}"
        );
    }

    #[test]
    fn drr_oversize_head_fast_forwards_without_starvation() {
        // A head costing many quanta still dispatches (fast-forward), and
        // the cheap tenant is not starved while credit accrues.
        let specs = [
            TenantSpec::new("big", 1, SimDuration::MAX, 16),
            TenantSpec::new("small", 1, SimDuration::MAX, 16),
        ];
        let mut ts: Vec<TenantState> =
            specs.iter().cloned().map(TenantState::new).collect();
        let mk = |est| Queued {
            seq: 0,
            arrival_index: 0,
            arrival: SimDuration::ZERO,
            admitted_at: SimDuration::ZERO,
            deferred: false,
            est,
        };
        ts[0].ready.push_back(mk(us(1000)));
        ts[1].ready.push_back(mk(us(1)));
        ts[1].ready.push_back(mk(us(1)));
        let mut ptr = 0usize;
        let mut got = Vec::new();
        for _ in 0..3 {
            let i = drr_pick(&mut ts, &mut ptr, us(1)).expect("backlogged");
            ts[i].ready.pop_front();
            got.push(i);
        }
        // The small tenant's cheap queries go first (their heads fit a
        // quantum); the big head eventually dispatches via fast-forward.
        assert_eq!(got.iter().filter(|&&i| i == 0).count(), 1);
        assert_eq!(got.iter().filter(|&&i| i == 1).count(), 2);
        assert!(ts.iter().all(|t| t.ready.is_empty()));
    }

    #[test]
    fn admission_rule_oversize_admits_only_when_idle() {
        let spec = TenantSpec::new("t", 1, us(100), 4);
        let mut t = TenantState::new(spec);
        assert!(t.admits(us(1_000_000)), "idle tenant admits any estimate");
        t.in_flight = 1;
        t.in_flight_cost = us(60);
        assert!(t.admits(us(40)), "fits the budget");
        assert!(!t.admits(us(41)), "exceeds the budget");
    }
}
