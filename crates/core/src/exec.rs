//! Per-server query evaluation (paper §III-C, §III-D).
//!
//! Each logical server evaluates the plan over the regions assigned to it
//! (round-robin on the shared region grid; for the sorted strategy, on the
//! sorted replica's value-partitioned regions). The four strategies:
//!
//! * **FullScan** (`PDC-F`) — read every assigned region, scan every
//!   element.
//! * **Histogram** (`PDC-H`) — skip regions whose histogram min/max cannot
//!   contain matches, scan the surviving regions.
//! * **HistogramIndex** (`PDC-HI`) — like `PDC-H`, but surviving regions
//!   are answered from the bitmap index (reading the index file instead of
//!   the data); raw data is read only for candidate boundary bins.
//! * **SortedHistogram** (`PDC-SH`) — the primary constraint is answered
//!   from the value-sorted replica: only the contiguous band of sorted
//!   regions overlapping the interval is touched.
//!
//! Conjunctions evaluate the most-selective constraint first and
//! point-check the remaining constraints only at already-matching
//! locations; disjunctions union their children with duplicate removal
//! (paper §III-C).

use crate::engine::Strategy;
use crate::plan::{ObjConstraint, PlanNode, QueryPlan};
use crate::state::ServerState;
use pdc_odms::Odms;
use pdc_storage::{CostModel, WorkCounters};
use pdc_types::{
    kernels, Interval, NdRegion, ObjectId, PdcError, PdcResult, RegionId, Run, Selection,
};

/// Everything a server needs to evaluate a plan.
pub struct EvalCtx<'a> {
    /// The data management system.
    pub odms: &'a Odms,
    /// The cost model.
    pub cost: &'a CostModel,
    /// The evaluation strategy.
    pub strategy: Strategy,
    /// Number of servers participating (= read concurrency).
    pub n_servers: u32,
    /// This server's index.
    pub server: u32,
    /// Host threads for chunk-parallel region scans (0 = auto,
    /// 1 = sequential). Affects wall-clock only, never results or
    /// simulated costs.
    pub scan_threads: u32,
    /// Use the monomorphized scan kernels (`false` = the scalar
    /// per-element reference path; results and simulated costs are
    /// identical either way).
    pub scan_kernels: bool,
    /// Consult the per-server [`crate::qcache::QueryArtifactCache`]
    /// (batch mode). A hit skips host recomputation only — every
    /// simulated counter and clock charge is replayed exactly as on a
    /// miss, so results and cost breakdowns are bit-identical either
    /// way.
    pub use_cache: bool,
}

/// Evaluate the full plan on this server; returns the server's partial
/// selection in global coordinates.
pub fn eval_plan(ctx: &EvalCtx, state: &mut ServerState, plan: &QueryPlan) -> PdcResult<Selection> {
    // Metadata distribution: each server fetches the metadata (offsets,
    // sizes, histograms) of its assigned regions for every object in the
    // query; cached for the server's lifetime afterwards.
    let mut objects = Vec::new();
    plan.root.objects(&mut objects);
    objects.sort_unstable();
    objects.dedup();
    for obj in objects {
        let meta = ctx.odms.meta().get(obj)?;
        let assigned = u64::from(meta.num_regions()).div_ceil(u64::from(ctx.n_servers));
        state.charge_metadata_distribution(ctx.cost, obj, assigned);
    }
    eval_node(ctx, state, &plan.root, plan.region.as_ref(), None)
}

fn eval_node(
    ctx: &EvalCtx,
    state: &mut ServerState,
    node: &PlanNode,
    region: Option<&NdRegion>,
    candidates: Option<&Selection>,
) -> PdcResult<Selection> {
    match node {
        PlanNode::Conj(constraints) => eval_conj(ctx, state, constraints, region, candidates),
        PlanNode::Or(children) => {
            // Union with duplicate removal ("merge sort" in the paper):
            // one k-way run merge over all children instead of a
            // pairwise fold.
            let mut sels = Vec::with_capacity(children.len());
            for child in children {
                sels.push(eval_node(ctx, state, child, region, candidates)?);
            }
            Ok(Selection::union_many(&sels))
        }
        PlanNode::And(children) => {
            // Children are selectivity-ordered; the first evaluates with
            // its primary strategy, the rest run in candidate mode over
            // the shrinking selection. Short-circuit on empty (the
            // paper's special case).
            let mut current: Option<Selection> = candidates.cloned();
            for child in children {
                let sel = eval_node(ctx, state, child, region, current.as_ref())?;
                if sel.is_empty() {
                    return Ok(Selection::empty());
                }
                current = Some(sel);
            }
            Ok(current.unwrap_or_else(Selection::empty))
        }
    }
}

fn eval_conj(
    ctx: &EvalCtx,
    state: &mut ServerState,
    constraints: &[ObjConstraint],
    region: Option<&NdRegion>,
    candidates: Option<&Selection>,
) -> PdcResult<Selection> {
    if constraints.iter().any(|c| c.interval.is_empty()) {
        return Ok(Selection::empty());
    }
    let mut sel = match candidates {
        // Candidate mode: every constraint point-checks the incoming
        // selection — no primary evaluation.
        Some(cand) => {
            let mut sel = cand.clone();
            for c in constraints {
                if sel.is_empty() {
                    break;
                }
                sel = point_check(ctx, state, c.object, &c.interval, &sel)?;
            }
            sel
        }
        None => {
            let primary = &constraints[0];
            let mut sel = eval_primary(ctx, state, primary, region)?;
            for c in &constraints[1..] {
                if sel.is_empty() {
                    break; // "no need to evaluate the remainder"
                }
                sel = point_check(ctx, state, c.object, &c.interval, &sel)?;
            }
            sel
        }
    };
    // Spatial constraint: exact filter (the primary pass already narrowed
    // the regions for 1-D constraints; this handles the boundaries and
    // the N-dimensional case).
    if let Some(r) = region {
        sel = apply_region_filter(ctx, sel, constraints[0].object, r)?;
    }
    Ok(sel)
}

/// Evaluate the primary (most selective) constraint with the configured
/// strategy over this server's assigned regions.
fn eval_primary(
    ctx: &EvalCtx,
    state: &mut ServerState,
    c: &ObjConstraint,
    region: Option<&NdRegion>,
) -> PdcResult<Selection> {
    if ctx.strategy == Strategy::SortedHistogram
        && ctx.odms.meta().get(c.object)?.has_sorted_replica
    {
        return eval_primary_sorted(ctx, state, c);
    }
    let meta = ctx.odms.meta().get(c.object)?;
    // 1-D spatial constraints narrow the candidate region set up front.
    let span_limit = region.and_then(|r| r.as_1d_span());
    let hists = match ctx.strategy {
        Strategy::FullScan => None,
        _ => Some(ctx.odms.meta().region_histograms(c.object)?),
    };

    let mut out: Vec<Run> = Vec::new();
    for r in 0..meta.num_regions() {
        if r % ctx.n_servers != ctx.server {
            continue; // load-balanced round-robin assignment
        }
        let span = meta.region_span(r);
        if let Some(limit) = span_limit {
            if span.intersect(&pdc_types::RegionSpec::new(limit.offset, limit.len)).is_none() {
                continue;
            }
        }
        // Histogram-based region elimination. The paper uses the
        // histogram's min/max; we use the full histogram (upper-bound
        // estimate = 0 ⇒ no possible hit), which subsumes the min/max
        // test and additionally prunes regions whose occupied bins all
        // miss the interval — see DESIGN.md §6.
        if let Some(hs) = &hists {
            let h = &hs[r as usize];
            // The bin walk is charged whether or not the verdict is
            // cached — a cache hit only skips the host-side
            // `estimate_hits` recomputation.
            state.work.histogram_bins += h.num_bins() as u64;
            let pruned = if ctx.use_cache {
                state.qcache.prune_or_compute(c.object, r, &c.interval, || {
                    h.estimate_hits(&c.interval).upper == 0
                })
            } else {
                h.estimate_hits(&c.interval).upper == 0
            };
            if pruned {
                continue;
            }
        }
        let region_sel = match ctx.strategy {
            Strategy::HistogramIndex => {
                eval_region_indexed(ctx, state, c.object, r, span, &c.interval)?
            }
            _ => eval_region_scan(ctx, state, c.object, r, span, &c.interval)?,
        };
        out.extend_from_slice(region_sel.runs());
    }
    Ok(Selection::from_runs(out))
}

/// Scan one region's data (FullScan / Histogram strategies).
fn eval_region_scan(
    ctx: &EvalCtx,
    state: &mut ServerState,
    object: ObjectId,
    region: u32,
    span: pdc_types::RegionSpec,
    interval: &Interval,
) -> PdcResult<Selection> {
    let before = state.work;
    let payload = state.read_data_region(ctx.odms, ctx.cost, RegionId::new(object, region), ctx.n_servers)?;
    state.work.elements_scanned += payload.len() as u64;
    // The read and the scan charge above are unconditional; only the
    // kernel invocation itself is served from the cache, so the
    // simulated accounting of a hit equals a miss exactly.
    let cached = if ctx.use_cache { state.qcache.get_scan(object, region, interval) } else { None };
    let sel = match cached {
        Some(sel) => sel,
        None => {
            let sel = if ctx.scan_kernels {
                kernels::scan_interval_threaded(&payload, interval, span.offset, ctx.scan_threads)
            } else {
                kernels::scan_interval_scalar(&payload, interval, span.offset)
            };
            if ctx.use_cache {
                state.qcache.put_scan(object, region, interval, sel.clone());
            }
            sel
        }
    };
    state.settle_cpu(ctx.cost, &before);
    Ok(sel)
}

/// Answer one region from its bitmap index (HistogramIndex strategy); the
/// raw data is read only when boundary bins need a candidate check.
///
/// A region whose index fails validation — stored checksum mismatch,
/// undecodable bytes, or an element count that disagrees with the region
/// span — is quarantined and answered by the exact full-scan path instead
/// ([`fallback_scan_and_rebuild`]); only infrastructure errors
/// (`ServerFailed`, missing prerequisites) propagate.
fn eval_region_indexed(
    ctx: &EvalCtx,
    state: &mut ServerState,
    object: ObjectId,
    region: u32,
    span: pdc_types::RegionSpec,
    interval: &Interval,
) -> PdcResult<Selection> {
    let before = state.work;
    let idx = match state.read_index_region(ctx.odms, ctx.cost, object, region, ctx.n_servers) {
        Ok(idx) if idx.num_elements() == span.len => idx,
        Ok(_) => {
            // Decoded cleanly but describes the wrong number of elements:
            // treat as invalid, same as a failed decode.
            return fallback_scan_and_rebuild(ctx, state, object, region, span, interval);
        }
        Err(PdcError::CorruptRegion { .. }) => {
            state.integrity.checksum_failures += 1;
            return fallback_scan_and_rebuild(ctx, state, object, region, span, interval);
        }
        Err(PdcError::Codec(_)) => {
            return fallback_scan_and_rebuild(ctx, state, object, region, span, interval);
        }
        Err(e) => return Err(e),
    };
    state.work.bitmap_words += idx.size_bytes_serialized() / 4;
    // Cached replay: the index read and word charge above already
    // happened; a hit re-issues the conditional candidate data read and
    // its scan charge from the recorded answer, then returns the stored
    // selection — byte-for-byte what the probe below would produce.
    let cached = if ctx.use_cache { state.qcache.get_indexed(object, region, interval) } else { None };
    if let Some(entry) = cached {
        if entry.needs_data_read {
            state.read_data_region(ctx.odms, ctx.cost, RegionId::new(object, region), ctx.n_servers)?;
            state.work.elements_scanned += entry.candidates_count;
        }
        state.settle_cpu(ctx.cost, &before);
        return Ok(entry.selection);
    }
    // The planner fuses per-object conjunction chains into one interval,
    // so this is the 1-chain case of the index's conjunction API.
    let ans = idx.query_conj(std::slice::from_ref(interval));
    let needs_data_read = ans.needs_candidate_check();
    let candidates_count = ans.candidates.count();
    let local = if needs_data_read {
        // Boundary bins: read the region's data and verify candidates.
        let payload =
            state.read_data_region(ctx.odms, ctx.cost, RegionId::new(object, region), ctx.n_servers)?;
        state.work.elements_scanned += candidates_count;
        if ctx.scan_kernels {
            let confirmed = kernels::filter_selection(&payload, interval, &ans.candidates);
            ans.sure.union(&confirmed)
        } else {
            ans.resolve(interval, |i| payload.get_f64(i as usize))
        }
    } else {
        ans.sure
    };
    state.settle_cpu(ctx.cost, &before);
    let shifted = local.shifted(span.offset);
    if ctx.use_cache {
        state.qcache.put_indexed(
            object,
            region,
            interval,
            crate::qcache::IndexedEntry {
                needs_data_read,
                candidates_count,
                selection: shifted.clone(),
            },
        );
    }
    Ok(shifted)
}

/// Graceful degradation for a region whose bitmap index failed validation:
/// answer the region exactly by scanning its data (which transparently
/// repairs a corrupt data copy too), then rebuild the index from the clean
/// data and write it back so later queries take the indexed path again.
/// The rebuild's write and scan work land on the integrity lane.
fn fallback_scan_and_rebuild(
    ctx: &EvalCtx,
    state: &mut ServerState,
    object: ObjectId,
    region: u32,
    span: pdc_types::RegionSpec,
    interval: &Interval,
) -> PdcResult<Selection> {
    let sel = eval_region_scan(ctx, state, object, region, span, interval)?;
    let rebuilt = ctx.odms.rebuild_index_region(object, region)?;
    state.integrity.aux_rebuilds += 1;
    state.integrity.fallback_regions += 1;
    state.io.bytes_written += rebuilt;
    state.io.write_requests += 1;
    let scan = WorkCounters { elements_scanned: span.len, ..Default::default() };
    let t = ctx.cost.pfs.write_cost(rebuilt, 1, ctx.n_servers) + ctx.cost.cpu.work_cost(&scan);
    state.clock.advance(t);
    state.integrity_time += t;
    Ok(sel)
}

/// Answer the primary constraint from the value-sorted replica
/// (SortedHistogram strategy).
fn eval_primary_sorted(
    ctx: &EvalCtx,
    state: &mut ServerState,
    c: &ObjConstraint,
) -> PdcResult<Selection> {
    let before = state.work;
    let meta = ctx.odms.meta().get(c.object)?;
    let replica = ctx.odms.meta().sorted_replica(c.object)?;
    let elem_bytes = meta.pdc_type.size_bytes();
    // The global histogram narrows the span; two binary searches find it
    // exactly.
    state.work.sorted_probes += 2 * (replica.len().max(2) as f64).log2().ceil() as u64;
    let span = replica.matching_span(&c.interval);
    let touched = replica.regions_of_span(&span);

    // Sorted regions are value-partitioned; distribute the touched band
    // round-robin across servers. (A pseudo object id derived from the
    // data object keys the residency set.)
    let sorted_obj = ObjectId(c.object.raw() | 1 << 63);
    let mut coords: Vec<u64> = Vec::new();
    for (i, &sr) in touched.iter().enumerate() {
        if i as u32 % ctx.n_servers != ctx.server {
            continue;
        }
        let region_start = sr as u64 * replica.region_len();
        let region_end = (region_start + replica.region_len()).min(replica.len());
        // Reading a sorted region brings in keys + permutation.
        let bytes = (region_end - region_start) * (elem_bytes + 8);
        state.touch_sorted_region(ctx.cost, RegionId::new(sorted_obj, sr), bytes, ctx.n_servers)?;
        // The matching slice inside this region is contiguous.
        let lo = span.start.max(region_start);
        let hi = span.end().min(region_end);
        if lo < hi {
            state.work.elements_scanned += hi - lo;
            coords.extend_from_slice(&replica.perm()[lo as usize..hi as usize]);
        }
    }
    state.settle_cpu(ctx.cost, &before);
    Ok(Selection::from_unsorted_coords(coords))
}

/// Check `interval` on `object` only at already-selected locations:
/// the paper's AND optimization. Regions are the unit of I/O — a touched
/// region is read wholly (and cached); untouched regions cost nothing,
/// which is why evaluating the most selective constraint first wins.
pub fn point_check(
    ctx: &EvalCtx,
    state: &mut ServerState,
    object: ObjectId,
    interval: &Interval,
    candidates: &Selection,
) -> PdcResult<Selection> {
    let meta = ctx.odms.meta().get(object)?;
    let hists = ctx.odms.meta().region_histograms(object).ok();
    let before = state.work;
    let mut out: Vec<Run> = Vec::new();
    // Group candidate coordinates by region.
    let mut r = 0u32;
    let num_regions = meta.num_regions();
    let mut pending: Vec<Run> = candidates.runs().to_vec();
    while r < num_regions && !pending.is_empty() {
        let span = meta.region_span(r);
        // Runs intersecting this region.
        let mut in_region: Vec<Run> = Vec::new();
        let mut rest: Vec<Run> = Vec::new();
        for run in pending.drain(..) {
            if run.start >= span.end() {
                rest.push(run);
                continue;
            }
            let lo = run.start.max(span.offset);
            let hi = run.end().min(span.end());
            if lo < hi {
                in_region.push(Run::new(lo, hi - lo));
            }
            if run.end() > span.end() {
                rest.push(Run::new(span.end(), run.end() - span.end()));
            }
        }
        pending = rest;
        if !in_region.is_empty() {
            // Histogram pruning also applies to point checks (strategies
            // other than full scan): a region whose min/max cannot match
            // rejects all its candidates without a read.
            let prunable = ctx.strategy != Strategy::FullScan
                && hists
                    .as_ref()
                    .map(|hs| {
                        let h = &hs[r as usize];
                        state.work.histogram_bins += h.num_bins() as u64;
                        if ctx.use_cache {
                            state.qcache.prune_or_compute(object, r, interval, || {
                                h.estimate_hits(interval).upper == 0
                            })
                        } else {
                            h.estimate_hits(interval).upper == 0
                        }
                    })
                    .unwrap_or(false);
            if !prunable {
                let payload = state.read_data_region(
                    ctx.odms,
                    ctx.cost,
                    RegionId::new(object, r),
                    ctx.n_servers,
                )?;
                // Opportunistic reuse: when some earlier query in the
                // batch already scanned this whole (region, interval)
                // pair, answer each candidate run by clipping the cached
                // full-region selection instead of rescanning — the
                // clipped coordinate set is exactly what `scan_range`
                // would emit, and the scan charge stays per-run.
                let cached_full = if ctx.use_cache {
                    state.qcache.peek_scan(object, r, interval).cloned()
                } else {
                    None
                };
                for run in &in_region {
                    state.work.elements_scanned += run.len;
                    if let Some(full) = &cached_full {
                        out.extend_from_slice(full.restrict_to_span(run.start, run.len).runs());
                    } else if ctx.scan_kernels {
                        kernels::scan_range(
                            &payload,
                            interval,
                            (run.start - span.offset) as usize,
                            (run.end() - span.offset) as usize,
                            run.start,
                            &mut out,
                        );
                    } else {
                        let mut open: Option<Run> = None;
                        for c in run.start..run.end() {
                            let v = payload.get_f64((c - span.offset) as usize);
                            if interval.contains(v) {
                                match &mut open {
                                    Some(r) => r.len += 1,
                                    None => open = Some(Run::new(c, 1)),
                                }
                            } else if let Some(r) = open.take() {
                                out.push(r);
                            }
                        }
                        if let Some(r) = open {
                            out.push(r);
                        }
                    }
                }
            }
        }
        r += 1;
    }
    state.settle_cpu(ctx.cost, &before);
    Ok(Selection::from_runs(out))
}

/// Exact spatial filtering for `PDCquery_set_region`.
fn apply_region_filter(
    ctx: &EvalCtx,
    sel: Selection,
    object: ObjectId,
    region: &NdRegion,
) -> PdcResult<Selection> {
    let meta = ctx.odms.meta().get(object)?;
    if let Some(span) = region.as_1d_span() {
        Ok(sel.restrict_to_span(span.offset, span.len))
    } else {
        let shape = meta.shape.clone();
        Ok(sel.filter_coords(|c| region.contains_linear(&shape, c)))
    }
}
