//! Per-server query evaluation (paper §III-C, §III-D).
//!
//! Each logical server evaluates the plan over the regions assigned to it
//! (round-robin on the shared region grid; for the sorted strategy, on the
//! sorted replica's value-partitioned regions). The strategies:
//!
//! * **FullScan** (`PDC-F`) — read every assigned region, scan every
//!   element.
//! * **Histogram** (`PDC-H`) — skip regions whose histogram min/max cannot
//!   contain matches, scan the surviving regions.
//! * **HistogramIndex** (`PDC-HI`) — like `PDC-H`, but surviving regions
//!   are answered from the bitmap index (reading the index file instead of
//!   the data); raw data is read only for candidate boundary bins.
//! * **SortedHistogram** (`PDC-SH`) — the primary constraint is answered
//!   from the value-sorted replica: only the contiguous band of sorted
//!   regions overlapping the interval is touched.
//! * **Adaptive** (`PDC-A`) — per (region, predicate), the planner picks
//!   the cheapest of the above operators from the region histogram's
//!   selectivity estimate and aux availability (see [`crate::ops`]).
//!
//! Region-level evaluation is delegated to the physical-operator layer in
//! [`crate::ops`]: this module owns plan traversal, region assignment,
//! and candidate chaining; the operators own reads, charges, caching, and
//! integrity fallback.
//!
//! Conjunctions evaluate the most-selective constraint first and
//! point-check the remaining constraints only at already-matching
//! locations; disjunctions union their children with duplicate removal
//! (paper §III-C).

use crate::engine::Strategy;
use crate::ops::{self, ExplainPhase, OpOutput, PhysicalOp, RegionTask};
use crate::plan::{ObjConstraint, PlanNode, QueryPlan};
use crate::snapshot::MetaSnapshot;
use crate::state::ServerState;
use pdc_odms::Odms;
use pdc_storage::CostModel;
use pdc_types::{Interval, NdRegion, ObjectId, PdcResult, Run, Selection};
use std::sync::Arc;

/// Everything a server needs to evaluate a plan.
pub struct EvalCtx<'a> {
    /// The data management system.
    pub odms: &'a Odms,
    /// The plan-time metadata snapshot: every metadata, histogram, and
    /// replica read during evaluation goes through this pinned view, so
    /// an append landing mid-query cannot change what this query sees.
    pub snap: &'a MetaSnapshot,
    /// The cost model.
    pub cost: &'a CostModel,
    /// The evaluation strategy.
    pub strategy: Strategy,
    /// Number of servers participating (= read concurrency).
    pub n_servers: u32,
    /// Number of assignment slots work is partitioned into. Equal to
    /// `n_servers` classically; with k-way replication the engine spreads
    /// each server over several finer slots so a failover moves a sliver
    /// of a server's work instead of all of it. Because `n_servers`
    /// divides `n_slots`, region `r`'s anchor server is still `r %
    /// n_servers` and healthy per-server region sets are unchanged.
    pub n_slots: u32,
    /// The slot this evaluation covers (`< n_slots`).
    pub server: u32,
    /// Host threads for chunk-parallel region scans (0 = auto,
    /// 1 = sequential). Affects wall-clock only, never results or
    /// simulated costs.
    pub scan_threads: u32,
    /// Use the monomorphized scan kernels (`false` = the scalar
    /// per-element reference path; results and simulated costs are
    /// identical either way).
    pub scan_kernels: bool,
    /// Consult the per-server [`crate::qcache::QueryArtifactCache`]
    /// (batch mode). A hit skips host recomputation only — every
    /// simulated counter and clock charge is replayed exactly as on a
    /// miss, so results and cost breakdowns are bit-identical either
    /// way.
    pub use_cache: bool,
    /// Resolve each primary constraint's candidate region set through
    /// the hierarchical region directory instead of walking every
    /// region's metadata. Advisory: a region outside the candidate set
    /// has bounds disjoint from the interval, so its prune verdict is
    /// `true` by construction — the skip replays the identical charges
    /// and cache seeding, and Selections and simulated costs are
    /// bit-identical with the directory on or off.
    pub use_directory: bool,
}

/// Evaluate the full plan on this server; returns the server's partial
/// selection in global coordinates.
pub fn eval_plan(ctx: &EvalCtx, state: &mut ServerState, plan: &QueryPlan) -> PdcResult<Selection> {
    // Metadata distribution: each server fetches the metadata (offsets,
    // sizes, histograms) of its assigned regions for every object in the
    // query; cached for the server's lifetime afterwards.
    let mut objects = Vec::new();
    plan.root.objects(&mut objects);
    objects.sort_unstable();
    objects.dedup();
    for obj in objects {
        let meta = ctx.snap.meta(obj)?;
        let assigned = u64::from(meta.num_regions()).div_ceil(u64::from(ctx.n_servers));
        state.charge_metadata_distribution(ctx.cost, obj, assigned);
    }
    eval_node(ctx, state, &plan.root, plan.region.as_ref(), None)
}

fn eval_node(
    ctx: &EvalCtx,
    state: &mut ServerState,
    node: &PlanNode,
    region: Option<&NdRegion>,
    candidates: Option<&Selection>,
) -> PdcResult<Selection> {
    match node {
        PlanNode::Conj(constraints) => eval_conj(ctx, state, constraints, region, candidates),
        PlanNode::Or(children) => {
            // Union with duplicate removal ("merge sort" in the paper):
            // one k-way run merge over all children instead of a
            // pairwise fold.
            let mut sels = Vec::with_capacity(children.len());
            for child in children {
                sels.push(eval_node(ctx, state, child, region, candidates)?);
            }
            Ok(Selection::union_many(&sels))
        }
        PlanNode::And(children) => {
            // Children are selectivity-ordered; the first evaluates with
            // its primary strategy, the rest run in candidate mode over
            // the shrinking selection. Short-circuit on empty (the
            // paper's special case).
            let mut current: Option<Selection> = candidates.cloned();
            for child in children {
                let sel = eval_node(ctx, state, child, region, current.as_ref())?;
                if sel.is_empty() {
                    return Ok(Selection::empty());
                }
                current = Some(sel);
            }
            Ok(current.unwrap_or_else(Selection::empty))
        }
    }
}

fn eval_conj(
    ctx: &EvalCtx,
    state: &mut ServerState,
    constraints: &[ObjConstraint],
    region: Option<&NdRegion>,
    candidates: Option<&Selection>,
) -> PdcResult<Selection> {
    if constraints.iter().any(|c| c.interval.is_empty()) {
        return Ok(Selection::empty());
    }
    // The conjunction's (object, interval) pairs feed each constraint's
    // cross-variable joint-bounds context (empty unless grids are
    // registered for a constrained pair).
    let pairs: Vec<(ObjectId, Interval)> =
        constraints.iter().map(|c| (c.object, c.interval)).collect();
    let joint_for =
        |object: ObjectId| ops::JointContext::build(ctx.snap, object, &pairs);
    let mut sel = match candidates {
        // Candidate mode: every constraint point-checks the incoming
        // selection — no primary evaluation.
        Some(cand) => {
            let mut sel = cand.clone();
            for c in constraints {
                if sel.is_empty() {
                    break;
                }
                sel = point_check(ctx, state, c.object, &c.interval, &sel, joint_for(c.object))?;
            }
            sel
        }
        None => {
            let primary = &constraints[0];
            let mut sel = eval_primary(ctx, state, primary, region, joint_for(primary.object))?;
            for c in &constraints[1..] {
                if sel.is_empty() {
                    break; // "no need to evaluate the remainder"
                }
                sel = point_check(ctx, state, c.object, &c.interval, &sel, joint_for(c.object))?;
            }
            sel
        }
    };
    // Spatial constraint: exact filter (the primary pass already narrowed
    // the regions for 1-D constraints; this handles the boundaries and
    // the N-dimensional case).
    if let Some(r) = region {
        sel = apply_region_filter(ctx, sel, constraints[0].object, r)?;
    }
    Ok(sel)
}

/// Whether the primary constraint is answered from the sorted replica:
/// always for `SortedHistogram` when a replica exists; for `Adaptive`,
/// when the modelled band cost beats the per-region alternative. The
/// verdict is a pure function of metadata/histograms/cost model, shared
/// with the client's `sorted_hint`.
pub(crate) fn use_sorted_primary(
    snap: &MetaSnapshot,
    cost: &CostModel,
    strategy: Strategy,
    n_servers: u32,
    object: ObjectId,
    interval: &Interval,
) -> PdcResult<bool> {
    match strategy {
        // A replica that doesn't cover the snapshot's extent (stale
        // after an append, pending deferred maintenance) is unavailable;
        // the strategy degrades to the pruned per-region path.
        Strategy::SortedHistogram => Ok(snap.sorted_available(object)),
        Strategy::Adaptive => ops::adaptive_sorted_choice(snap, cost, n_servers, object, interval),
        _ => Ok(false),
    }
}

/// Evaluate the primary (most selective) constraint with the configured
/// strategy over this server's assigned regions.
fn eval_primary(
    ctx: &EvalCtx,
    state: &mut ServerState,
    c: &ObjConstraint,
    region: Option<&NdRegion>,
    joint: Option<Arc<ops::JointContext>>,
) -> PdcResult<Selection> {
    if use_sorted_primary(ctx.snap, ctx.cost, ctx.strategy, ctx.n_servers, c.object, &c.interval)? {
        return eval_primary_sorted(ctx, state, c);
    }
    let meta = ctx.snap.meta(c.object)?;
    // 1-D spatial constraints narrow the candidate region set up front.
    let span_limit = region.and_then(|r| r.as_1d_span());
    let planner = ops::RegionPlanner::for_primary(ctx, c.object, joint)?;
    // Hierarchical-directory candidate resolution: one range→bin probe
    // replaces the per-region metadata walk. Only pruning lanes consult
    // it (`FullScan` must scan non-candidates too), and a region outside
    // the candidate set takes the charge-identical skip path below.
    let dir_candidates: Option<Vec<u32>> = if ctx.use_directory && planner.prune_op().is_some() {
        ctx.snap.directory(c.object).map(|d| d.probe(&c.interval).candidates)
    } else {
        None
    };

    let mut out: Vec<Run> = Vec::new();
    for r in 0..meta.num_regions() {
        if r % ctx.n_slots != ctx.server {
            continue; // load-balanced round-robin assignment
        }
        let span = meta.region_span(r);
        if let Some(limit) = span_limit {
            if span.intersect(&pdc_types::RegionSpec::new(limit.offset, limit.len)).is_none() {
                continue;
            }
        }
        let task = RegionTask { object: c.object, region: r, span, interval: c.interval };
        if let Some(cands) = &dir_candidates {
            if cands.binary_search(&r).is_err() {
                ops::execute_region_skipped(ctx, state, &planner, &task, ExplainPhase::Primary);
                continue;
            }
        }
        match ops::execute_region(ctx, state, &planner, &task, ExplainPhase::Primary, None)? {
            OpOutput::Pruned => continue,
            OpOutput::Selected(sel) => out.extend_from_slice(sel.runs()),
            OpOutput::Pass => unreachable!("access operators always produce a selection"),
        }
    }
    Ok(Selection::from_runs(out))
}

/// Answer the primary constraint from the value-sorted replica
/// (SortedHistogram strategy, and Adaptive when the band wins).
fn eval_primary_sorted(
    ctx: &EvalCtx,
    state: &mut ServerState,
    c: &ObjConstraint,
) -> PdcResult<Selection> {
    let meta = ctx.snap.meta(c.object)?;
    let replica = ctx.snap.sorted_replica(c.object)?;
    let elem_bytes = meta.pdc_type.size_bytes();
    // The global histogram narrows the span; two binary searches find it
    // exactly.
    let before = state.work;
    state.work.sorted_probes += 2 * (replica.len().max(2) as f64).log2().ceil() as u64;
    state.settle_cpu(ctx.cost, &before);
    let sspan = replica.matching_span(&c.interval);
    let touched = replica.regions_of_span(&sspan);

    // Sorted regions are value-partitioned; distribute the touched band
    // round-robin across servers. (A pseudo object id derived from the
    // data object keys the residency set.)
    let op = ops::SortedRangeOp {
        replica: Arc::clone(&replica),
        sspan,
        elem_bytes,
        sorted_object: ObjectId(c.object.raw() | 1 << 63),
    };
    let mut sels: Vec<Selection> = Vec::new();
    for (i, &sr) in touched.iter().enumerate() {
        if i as u32 % ctx.n_slots != ctx.server {
            continue;
        }
        let rspan = op.replica.region_span(sr);
        let task = RegionTask {
            object: c.object,
            region: sr,
            span: pdc_types::RegionSpec::new(rspan.start, rspan.len),
            interval: c.interval,
        };
        let OpOutput::Selected(sel) = op.run(ctx, state, &task)? else {
            unreachable!("sorted-range operator always produces a selection");
        };
        if state.explain.is_some() {
            let overlap =
                sspan.end().min(rspan.end()).saturating_sub(sspan.start.max(rspan.start));
            ops::record_explain(
                state,
                ops::RegionExplain {
                    object: c.object,
                    region: sr,
                    phase: ExplainPhase::Primary,
                    op: ops::OpKind::SortedRange,
                    pruned: false,
                    span_len: rspan.len,
                    est: Some(pdc_histogram::HitBounds { lower: overlap, upper: overlap }),
                    actual_hits: Some(sel.count()),
                    // Sorted replicas are in-memory structures, never
                    // spilled.
                    cold: false,
                },
            );
        }
        sels.push(sel);
    }
    Ok(Selection::union_many(&sels))
}

/// Check `interval` on `object` only at already-selected locations:
/// the paper's AND optimization. Regions are the unit of I/O — a touched
/// region is read wholly (and cached); untouched regions cost nothing,
/// which is why evaluating the most selective constraint first wins.
/// Routed through the same operator pipeline as the primary pass (prune,
/// then a candidate-restricted [`ops::ScanExactOp`]).
pub fn point_check(
    ctx: &EvalCtx,
    state: &mut ServerState,
    object: ObjectId,
    interval: &Interval,
    candidates: &Selection,
    joint: Option<Arc<ops::JointContext>>,
) -> PdcResult<Selection> {
    let meta = ctx.snap.meta(object)?;
    let planner = ops::RegionPlanner::for_filter(ctx, object, joint)?;
    let mut out: Vec<Run> = Vec::new();
    // Group candidate coordinates by region.
    let mut r = 0u32;
    let num_regions = meta.num_regions();
    let mut pending: Vec<Run> = candidates.runs().to_vec();
    while r < num_regions && !pending.is_empty() {
        let span = meta.region_span(r);
        // Runs intersecting this region.
        let mut in_region: Vec<Run> = Vec::new();
        let mut rest: Vec<Run> = Vec::new();
        for run in pending.drain(..) {
            if run.start >= span.end() {
                rest.push(run);
                continue;
            }
            let lo = run.start.max(span.offset);
            let hi = run.end().min(span.end());
            if lo < hi {
                in_region.push(Run::new(lo, hi - lo));
            }
            if run.end() > span.end() {
                rest.push(Run::new(span.end(), run.end() - span.end()));
            }
        }
        pending = rest;
        if !in_region.is_empty() {
            let task = RegionTask { object, region: r, span, interval: *interval };
            match ops::execute_region(
                ctx,
                state,
                &planner,
                &task,
                ExplainPhase::Filter,
                Some(in_region),
            )? {
                OpOutput::Pruned => {}
                OpOutput::Selected(sel) => out.extend_from_slice(sel.runs()),
                OpOutput::Pass => unreachable!("access operators always produce a selection"),
            }
        }
        r += 1;
    }
    Ok(Selection::from_runs(out))
}

/// Exact spatial filtering for `PDCquery_set_region`.
fn apply_region_filter(
    ctx: &EvalCtx,
    sel: Selection,
    object: ObjectId,
    region: &NdRegion,
) -> PdcResult<Selection> {
    let meta = ctx.snap.meta(object)?;
    if let Some(span) = region.as_1d_span() {
        Ok(sel.restrict_to_span(span.offset, span.len))
    } else {
        let shape = meta.shape.clone();
        Ok(sel.filter_coords(|c| region.contains_linear(&shape, c)))
    }
}
