//! A small textual query language over object names.
//!
//! The paper's users write conditions like `Energy > 2.0 AND 100 < x <
//! 200 AND -90 < y < 0 AND 0 < z < 66`; this module parses exactly that
//! notation into a [`PdcQuery`], resolving names through the metadata
//! service and typing each constant to the target object's element type.
//!
//! Grammar (case-insensitive keywords):
//!
//! ```text
//! expr   := and ( "OR" and )*
//! and    := term ( "AND" term )*
//! term   := "(" expr ")" | range | comparison
//! range  := number relop ident relop number     e.g.  100 < x <= 200
//! comparison := ident relop number | number relop ident
//! relop  := "<" | "<=" | ">" | ">=" | "=" | "=="
//! ```

use crate::ast::PdcQuery;
use pdc_odms::Odms;
use pdc_types::{ObjectId, PdcError, PdcResult, PdcType, PdcValue, QueryOp};

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Number(f64),
    Op(QueryOp),
    And,
    Or,
    LParen,
    RParen,
}

fn tokenize(input: &str) -> PdcResult<Vec<Token>> {
    let err = |w: String| PdcError::InvalidQuery(w);
    let mut out = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            '<' => {
                if chars.get(i + 1) == Some(&'=') {
                    out.push(Token::Op(QueryOp::Lte));
                    i += 2;
                } else {
                    out.push(Token::Op(QueryOp::Lt));
                    i += 1;
                }
            }
            '>' => {
                if chars.get(i + 1) == Some(&'=') {
                    out.push(Token::Op(QueryOp::Gte));
                    i += 2;
                } else {
                    out.push(Token::Op(QueryOp::Gt));
                    i += 1;
                }
            }
            '=' => {
                i += if chars.get(i + 1) == Some(&'=') { 2 } else { 1 };
                out.push(Token::Op(QueryOp::Eq));
            }
            '&' if chars.get(i + 1) == Some(&'&') => {
                out.push(Token::And);
                i += 2;
            }
            '|' if chars.get(i + 1) == Some(&'|') => {
                out.push(Token::Or);
                i += 2;
            }
            c if c.is_ascii_digit()
                || c == '.'
                || (c == '-'
                    && chars
                        .get(i + 1)
                        .map(|n| n.is_ascii_digit() || *n == '.')
                        .unwrap_or(false)) =>
            {
                let start = i;
                i += 1; // consume sign or first digit
                while i < chars.len()
                    && (chars[i].is_ascii_digit()
                        || chars[i] == '.'
                        || chars[i] == 'e'
                        || chars[i] == 'E'
                        || ((chars[i] == '+' || chars[i] == '-')
                            && matches!(chars[i - 1], 'e' | 'E')))
                {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                let v: f64 =
                    text.parse().map_err(|_| err(format!("bad number '{text}'")))?;
                out.push(Token::Number(v));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                let word: String = chars[start..i].iter().collect();
                match word.to_ascii_uppercase().as_str() {
                    "AND" => out.push(Token::And),
                    "OR" => out.push(Token::Or),
                    _ => out.push(Token::Ident(word)),
                }
            }
            other => return Err(err(format!("unexpected character '{other}'"))),
        }
    }
    Ok(out)
}

struct Parser<'a> {
    tokens: Vec<Token>,
    pos: usize,
    odms: &'a Odms,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, what: &str) -> PdcError {
        PdcError::InvalidQuery(format!("{what} at token {}", self.pos))
    }

    fn resolve(&self, name: &str) -> PdcResult<(ObjectId, PdcType)> {
        let meta = self.odms.meta().lookup_name(name)?;
        Ok((meta.id, meta.pdc_type))
    }

    fn typed(&self, ty: PdcType, v: f64) -> PdcValue {
        match ty {
            PdcType::Float => PdcValue::Float(v as f32),
            PdcType::Double => PdcValue::Double(v),
            PdcType::Int32 => PdcValue::Int32(v as i32),
            PdcType::UInt32 => PdcValue::UInt32(v as u32),
            PdcType::Int64 => PdcValue::Int64(v as i64),
            PdcType::UInt64 => PdcValue::UInt64(v as u64),
        }
    }

    fn expr(&mut self) -> PdcResult<PdcQuery> {
        let mut left = self.and_expr()?;
        while matches!(self.peek(), Some(Token::Or)) {
            self.next();
            let right = self.and_expr()?;
            left = left.or(right);
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> PdcResult<PdcQuery> {
        let mut left = self.term()?;
        while matches!(self.peek(), Some(Token::And)) {
            self.next();
            let right = self.term()?;
            left = left.and(right);
        }
        Ok(left)
    }

    fn term(&mut self) -> PdcResult<PdcQuery> {
        match self.next() {
            Some(Token::LParen) => {
                let inner = self.expr()?;
                match self.next() {
                    Some(Token::RParen) => Ok(inner),
                    _ => Err(self.err("expected ')'")),
                }
            }
            // ident OP number
            Some(Token::Ident(name)) => {
                let (obj, ty) = self.resolve(&name)?;
                let Some(Token::Op(op)) = self.next() else {
                    return Err(self.err("expected comparison operator"));
                };
                let Some(Token::Number(v)) = self.next() else {
                    return Err(self.err("expected number"));
                };
                Ok(PdcQuery::create(obj, op, self.typed(ty, v)))
            }
            // number OP ident [OP number]  — the range form
            Some(Token::Number(lo)) => {
                let Some(Token::Op(op1)) = self.next() else {
                    return Err(self.err("expected comparison operator"));
                };
                let Some(Token::Ident(name)) = self.next() else {
                    return Err(self.err("expected object name"));
                };
                let (obj, ty) = self.resolve(&name)?;
                // `lo OP ident` mirrors to `ident OP' lo`.
                let first = PdcQuery::create(obj, op1.mirrored(), self.typed(ty, lo));
                if let Some(Token::Op(op2)) = self.peek().cloned() {
                    if matches!(op2, QueryOp::Lt | QueryOp::Lte) {
                        self.next();
                        let Some(Token::Number(hi)) = self.next() else {
                            return Err(self.err("expected upper bound"));
                        };
                        return Ok(first.and(PdcQuery::create(obj, op2, self.typed(ty, hi))));
                    }
                }
                Ok(first)
            }
            _ => Err(self.err("expected '(', object name, or number")),
        }
    }
}

/// Parse a textual query against the metadata service (object names must
/// already exist). Returns the same tree the builder API would produce.
pub fn parse_query(input: &str, odms: &Odms) -> PdcResult<PdcQuery> {
    let tokens = tokenize(input)?;
    if tokens.is_empty() {
        return Err(PdcError::InvalidQuery("empty query".into()));
    }
    let mut p = Parser { tokens, pos: 0, odms };
    let q = p.expr()?;
    if p.pos != p.tokens.len() {
        return Err(p.err("trailing input"));
    }
    Ok(q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdc_odms::ImportOptions;
    use pdc_types::TypedVec;

    fn world() -> (Odms, ObjectId, ObjectId) {
        let odms = Odms::new(2);
        let c = odms.create_container("parse");
        let opts = ImportOptions::default();
        let e = odms
            .import_array(c, "Energy", TypedVec::Float(vec![0.0; 64]), &opts)
            .unwrap()
            .object;
        let x = odms
            .import_array(c, "x", TypedVec::Float(vec![0.0; 64]), &opts)
            .unwrap()
            .object;
        (odms, e, x)
    }

    #[test]
    fn simple_comparison() {
        let (odms, e, _) = world();
        let q = parse_query("Energy > 2.0", &odms).unwrap();
        assert_eq!(q, PdcQuery::create(e, QueryOp::Gt, 2.0f32));
    }

    #[test]
    fn range_form_matches_builder() {
        let (odms, e, _) = world();
        let q = parse_query("2.1 < Energy < 2.2", &odms).unwrap();
        assert_eq!(q, PdcQuery::range_open(e, 2.1f32, 2.2f32));
        let q = parse_query("2.1 <= Energy <= 2.2", &odms).unwrap();
        assert_eq!(
            q,
            PdcQuery::create(e, QueryOp::Gte, 2.1f32)
                .and(PdcQuery::create(e, QueryOp::Lte, 2.2f32))
        );
    }

    #[test]
    fn the_papers_multi_object_query_parses() {
        let (odms, e, x) = world();
        let q = parse_query("Energy > 2.0 AND 100 < x < 200", &odms).unwrap();
        let expect = PdcQuery::create(e, QueryOp::Gt, 2.0f32)
            .and(PdcQuery::range_open(x, 100.0f32, 200.0f32));
        assert_eq!(q, expect);
    }

    #[test]
    fn or_parentheses_and_precedence() {
        let (odms, e, x) = world();
        // AND binds tighter than OR.
        let q = parse_query("Energy > 3 OR Energy < 1 AND x > 5", &odms).unwrap();
        let expect = PdcQuery::create(e, QueryOp::Gt, 3.0f32).or(PdcQuery::create(
            e,
            QueryOp::Lt,
            1.0f32,
        )
        .and(PdcQuery::create(x, QueryOp::Gt, 5.0f32)));
        assert_eq!(q, expect);
        // parentheses override
        let q = parse_query("(Energy > 3 OR Energy < 1) AND x > 5", &odms).unwrap();
        let expect = (PdcQuery::create(e, QueryOp::Gt, 3.0f32)
            .or(PdcQuery::create(e, QueryOp::Lt, 1.0f32)))
        .and(PdcQuery::create(x, QueryOp::Gt, 5.0f32));
        assert_eq!(q, expect);
    }

    #[test]
    fn symbols_and_case_insensitive_keywords() {
        let (odms, _e, _x) = world();
        let a = parse_query("Energy >= 2 && x = 5", &odms).unwrap();
        let b = parse_query("Energy >= 2 and x == 5", &odms).unwrap();
        assert_eq!(a, b);
        let c = parse_query("Energy > 1 || x > 2", &odms).unwrap();
        let d = parse_query("Energy > 1 or x > 2", &odms).unwrap();
        assert_eq!(c, d);
    }

    #[test]
    fn negative_and_scientific_numbers() {
        let (odms, _, x) = world();
        let q = parse_query("-90 < x < 0", &odms).unwrap();
        assert_eq!(q, PdcQuery::range_open(x, -90.0f32, 0.0f32));
        let q = parse_query("x < 1.5e2", &odms).unwrap();
        assert_eq!(q, PdcQuery::create(x, QueryOp::Lt, 150.0f32));
    }

    #[test]
    fn errors_are_informative() {
        let (odms, _, _) = world();
        assert!(parse_query("", &odms).is_err());
        assert!(parse_query("Energy >", &odms).is_err());
        assert!(parse_query("nosuch > 1", &odms).is_err());
        assert!(parse_query("Energy > 1 AND", &odms).is_err());
        assert!(parse_query("(Energy > 1", &odms).is_err());
        assert!(parse_query("Energy > 1 garbage", &odms).is_err());
        assert!(parse_query("Energy # 1", &odms).is_err());
    }

    #[test]
    fn values_typed_to_object_type() {
        let odms = Odms::new(2);
        let c = odms.create_container("t");
        let i = odms
            .import_array(c, "ids", TypedVec::Int32(vec![0; 8]), &ImportOptions::default())
            .unwrap()
            .object;
        let q = parse_query("ids = 7", &odms).unwrap();
        assert_eq!(q, PdcQuery::create(i, QueryOp::Eq, 7i32));
    }
}
