//! Combined metadata + data queries over many small objects
//! (the H5BOSS scenario, paper §VI-C).
//!
//! "Scientists are often interested in the data values of a small number
//! of objects that are associated with specific metadata, such as the
//! number of values that are within a range of objects that have a common
//! metadata key-value pair."
//!
//! The flow: the metadata service instantly resolves the tag conditions
//! (e.g. `RADEG = 153.17 AND DECDEG = 23.06`) to a set of objects; the
//! selected objects are distributed across the servers; each server
//! evaluates the value condition on its objects with the configured
//! strategy ("due to the small size of the BOSS objects, each object has
//! one region only").

use crate::engine::QueryEngine;
use crate::exec::EvalCtx;
use crate::ops::{self, ExplainPhase, OpOutput, RegionTask};
use crate::snapshot::MetaSnapshot;
use crate::state::ServerState;
use pdc_odms::MetaValue;
use pdc_storage::{IoCounters, SimDuration};
use pdc_types::{Interval, ObjectId, PdcResult};
use std::sync::Arc;

/// Outcome of a metadata + data query.
#[derive(Debug, Clone)]
pub struct MetaDataQueryOutcome {
    /// Objects selected by the metadata conditions.
    pub objects_matched: u64,
    /// Total number of data values matching the interval across all
    /// selected objects.
    pub nhits: u64,
    /// Per-object hit counts (object id, hits), for callers that need
    /// them.
    pub per_object_hits: Vec<(ObjectId, u64)>,
    /// Simulated elapsed time: metadata resolution + slowest server.
    pub elapsed: SimDuration,
    /// Time spent in the metadata lookup alone.
    pub metadata_elapsed: SimDuration,
    /// Aggregated I/O.
    pub io: IoCounters,
}

impl QueryEngine {
    /// `PDCquery_tag`: resolve metadata key/value conditions to the
    /// matching object ids, with the simulated lookup time (an in-memory
    /// inverted-index intersection on the owner server).
    pub fn query_tag(
        &self,
        conds: &[(&str, MetaValue)],
    ) -> (Vec<ObjectId>, SimDuration) {
        let objects = self.odms().meta().query_tags(conds);
        let elapsed = self.config_cost().net.transfer_cost(64)
            + SimDuration::from_nanos(200 * (objects.len() as u64 + 1));
        (objects, elapsed)
    }

    /// Evaluate `interval` on the values of every object matching all the
    /// metadata `conds`, returning total hits (the H5BOSS query shape).
    pub fn metadata_data_query(
        &self,
        conds: &[(&str, MetaValue)],
        interval: &Interval,
    ) -> PdcResult<MetaDataQueryOutcome> {
        let cost = self.config_cost();
        let n = self.num_servers();

        // Metadata resolution: an in-memory inverted-index lookup on the
        // owner server — "it can locate the 1000 objects instantly".
        let objects = self.odms().meta().query_tags(conds);
        let metadata_elapsed = cost.net.transfer_cost(64)
            + SimDuration::from_nanos(200 * (objects.len() as u64 + 1));

        let odms = Arc::clone(self.odms());
        let strategy = self.strategy();
        let (scan_threads, scan_kernels) = self.scan_flags();
        let iv = *interval;
        // Pin the matched objects' metadata before the broadcast: every
        // server evaluates the same snapshot, and an append landing
        // mid-query cannot tear the extent between servers.
        let snap = Arc::new(MetaSnapshot::capture(&odms, &objects)?);
        let objects_arc: Arc<Vec<ObjectId>> = Arc::new(objects);
        let objects_for_eval = Arc::clone(&objects_arc);

        type ObjectHitsResult = PdcResult<(Vec<(ObjectId, u64)>, SimDuration, IoCounters)>;
        let results: Vec<ObjectHitsResult> = self
            .pool_broadcast(move |id, st: &mut ServerState| {
                // Prune verdicts, scan selections, and index answers are
                // served from the epoch-validated artifact cache across
                // repeated metadata+data queries; all simulated charges
                // replay unconditionally, so accounting is identical
                // either way.
                st.qcache.validate(odms.store().epoch());
                let t0 = st.clock.now();
                let io0 = st.io;
                let ctx = EvalCtx {
                    odms: &odms,
                    snap: &snap,
                    cost: &cost,
                    strategy,
                    n_servers: n,
                    n_slots: n,
                    server: id.raw(),
                    scan_threads,
                    scan_kernels,
                    use_cache: true,
                    // Single-interval filter over whole small objects:
                    // there is no conjunction to resolve candidates for,
                    // so the directory fast path is moot here.
                    use_directory: false,
                };
                let mut hits: Vec<(ObjectId, u64)> = Vec::new();
                for (i, &obj) in objects_for_eval.iter().enumerate() {
                    if i as u32 % n != id.raw() {
                        continue;
                    }
                    let meta = snap.meta(obj)?;
                    // Small objects round-robin whole objects across
                    // servers, but each object's regions run through the
                    // same operator pipeline as plan evaluation.
                    let planner = ops::RegionPlanner::for_filter(&ctx, obj, None)?;
                    let mut obj_hits = 0u64;
                    for r in 0..meta.num_regions() {
                        let task = RegionTask {
                            object: obj,
                            region: r,
                            span: meta.region_span(r),
                            interval: iv,
                        };
                        match ops::execute_region(
                            &ctx,
                            st,
                            &planner,
                            &task,
                            ExplainPhase::Filter,
                            None,
                        )? {
                            OpOutput::Pruned => {}
                            OpOutput::Selected(sel) => obj_hits += sel.count(),
                            OpOutput::Pass => {
                                unreachable!("access operators always produce a selection")
                            }
                        }
                    }
                    hits.push((obj, obj_hits));
                }
                Ok((hits, st.elapsed_since(t0), crate::engine::diff_io(&st.io, &io0)))
            });

        let mut per_object_hits: Vec<(ObjectId, u64)> = Vec::new();
        let mut io = IoCounters::default();
        let mut slowest = SimDuration::ZERO;
        for r in results {
            let (hits, elapsed, io_d) = r?;
            let bytes = hits.len() as u64 * 16;
            let total = elapsed + cost.net.transfer_cost(bytes);
            if total > slowest {
                slowest = total;
            }
            io.merge(&io_d);
            per_object_hits.extend(hits);
        }
        per_object_hits.sort_unstable_by_key(|&(o, _)| o);
        let nhits = per_object_hits.iter().map(|&(_, h)| h).sum();

        Ok(MetaDataQueryOutcome {
            objects_matched: objects_arc.len() as u64,
            nhits,
            per_object_hits,
            elapsed: metadata_elapsed + slowest,
            metadata_elapsed,
            io,
        })
    }
}
