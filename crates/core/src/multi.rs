//! Combined metadata + data queries over many small objects
//! (the H5BOSS scenario, paper §VI-C).
//!
//! "Scientists are often interested in the data values of a small number
//! of objects that are associated with specific metadata, such as the
//! number of values that are within a range of objects that have a common
//! metadata key-value pair."
//!
//! The flow: the metadata service instantly resolves the tag conditions
//! (e.g. `RADEG = 153.17 AND DECDEG = 23.06`) to a set of objects; the
//! selected objects are distributed across the servers; each server
//! evaluates the value condition on its objects with the configured
//! strategy ("due to the small size of the BOSS objects, each object has
//! one region only").

use crate::engine::{QueryEngine, Strategy};
use crate::state::ServerState;
use pdc_odms::MetaValue;
use pdc_storage::{IoCounters, SimDuration};
use pdc_types::{Interval, ObjectId, PdcResult, RegionId};
use std::sync::Arc;

/// Outcome of a metadata + data query.
#[derive(Debug, Clone)]
pub struct MetaDataQueryOutcome {
    /// Objects selected by the metadata conditions.
    pub objects_matched: u64,
    /// Total number of data values matching the interval across all
    /// selected objects.
    pub nhits: u64,
    /// Per-object hit counts (object id, hits), for callers that need
    /// them.
    pub per_object_hits: Vec<(ObjectId, u64)>,
    /// Simulated elapsed time: metadata resolution + slowest server.
    pub elapsed: SimDuration,
    /// Time spent in the metadata lookup alone.
    pub metadata_elapsed: SimDuration,
    /// Aggregated I/O.
    pub io: IoCounters,
}

impl QueryEngine {
    /// `PDCquery_tag`: resolve metadata key/value conditions to the
    /// matching object ids, with the simulated lookup time (an in-memory
    /// inverted-index intersection on the owner server).
    pub fn query_tag(
        &self,
        conds: &[(&str, MetaValue)],
    ) -> (Vec<ObjectId>, SimDuration) {
        let objects = self.odms().meta().query_tags(conds);
        let elapsed = self.config_cost().net.transfer_cost(64)
            + SimDuration::from_nanos(200 * (objects.len() as u64 + 1));
        (objects, elapsed)
    }

    /// Evaluate `interval` on the values of every object matching all the
    /// metadata `conds`, returning total hits (the H5BOSS query shape).
    pub fn metadata_data_query(
        &self,
        conds: &[(&str, MetaValue)],
        interval: &Interval,
    ) -> PdcResult<MetaDataQueryOutcome> {
        let cost = self.config_cost();
        let n = self.num_servers();

        // Metadata resolution: an in-memory inverted-index lookup on the
        // owner server — "it can locate the 1000 objects instantly".
        let objects = self.odms().meta().query_tags(conds);
        let metadata_elapsed = cost.net.transfer_cost(64)
            + SimDuration::from_nanos(200 * (objects.len() as u64 + 1));

        let odms = Arc::clone(self.odms());
        let strategy = self.strategy();
        let iv = *interval;
        let objects_arc: Arc<Vec<ObjectId>> = Arc::new(objects);
        let objects_for_eval = Arc::clone(&objects_arc);

        type ObjectHitsResult = PdcResult<(Vec<(ObjectId, u64)>, SimDuration, IoCounters)>;
        let results: Vec<ObjectHitsResult> = self
            .pool_broadcast(move |id, st: &mut ServerState| {
                // Prune verdicts are served from the epoch-validated
                // artifact cache across repeated metadata+data queries;
                // bin charges below stay unconditional so the simulated
                // accounting is identical either way.
                st.qcache.validate(odms.store().epoch());
                let t0 = st.clock.now();
                let io0 = st.io;
                let w0 = st.work;
                let mut hits: Vec<(ObjectId, u64)> = Vec::new();
                for (i, &obj) in objects_for_eval.iter().enumerate() {
                    if i as u32 % n != id.raw() {
                        continue;
                    }
                    let meta = odms.meta().get(obj)?;
                    let mut obj_hits = 0u64;
                    for r in 0..meta.num_regions() {
                        // Histogram pruning applies per region.
                        if strategy != Strategy::FullScan {
                            if let Ok(hs) = odms.meta().region_histograms(obj) {
                                let h = &hs[r as usize];
                                st.work.histogram_bins += h.num_bins() as u64;
                                if st.qcache.prune_or_compute(obj, r, &iv, || {
                                    h.estimate_hits(&iv).upper == 0
                                }) {
                                    continue;
                                }
                            }
                        }
                        obj_hits += match strategy {
                            Strategy::HistogramIndex if meta.index_object.is_some() => {
                                let idx = st.read_index_region(&odms, &cost, obj, r, n)?;
                                st.work.bitmap_words += idx.size_bytes_serialized() / 4;
                                let ans = idx.query(&iv);
                                if ans.needs_candidate_check() {
                                    let payload = st.read_data_region(
                                        &odms,
                                        &cost,
                                        RegionId::new(obj, r),
                                        n,
                                    )?;
                                    st.work.elements_scanned += ans.candidates.count();
                                    ans.sure.count()
                                        + pdc_types::kernels::count_selection_matches(
                                            &payload,
                                            &iv,
                                            &ans.candidates,
                                        )
                                } else {
                                    ans.sure.count()
                                }
                            }
                            _ => {
                                let payload =
                                    st.read_data_region(&odms, &cost, RegionId::new(obj, r), n)?;
                                st.work.elements_scanned += payload.len() as u64;
                                pdc_types::kernels::count_matches(&payload, &iv)
                            }
                        };
                    }
                    hits.push((obj, obj_hits));
                }
                st.settle_cpu(&cost, &w0);
                Ok((hits, st.elapsed_since(t0), crate::engine::diff_io(&st.io, &io0)))
            });

        let mut per_object_hits: Vec<(ObjectId, u64)> = Vec::new();
        let mut io = IoCounters::default();
        let mut slowest = SimDuration::ZERO;
        for r in results {
            let (hits, elapsed, io_d) = r?;
            let bytes = hits.len() as u64 * 16;
            let total = elapsed + cost.net.transfer_cost(bytes);
            if total > slowest {
                slowest = total;
            }
            io.merge(&io_d);
            per_object_hits.extend(hits);
        }
        per_object_hits.sort_unstable_by_key(|&(o, _)| o);
        let nhits = per_object_hits.iter().map(|&(_, h)| h).sum();

        Ok(MetaDataQueryOutcome {
            objects_matched: objects_arc.len() as u64,
            nhits,
            per_object_hits,
            elapsed: metadata_elapsed + slowest,
            metadata_elapsed,
            io,
        })
    }
}
