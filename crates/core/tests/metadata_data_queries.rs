//! Integration tests for the combined metadata + data query path
//! (the H5BOSS scenario of §VI-C).

use pdc_odms::{ImportOptions, MetaValue, Odms};
use pdc_query::{EngineConfig, QueryEngine, Strategy};
use pdc_types::{Interval, TypedVec};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A small catalog: `n` objects, the first `matching` of which carry the
/// designated (RA, Dec) pair; flux values are deterministic.
fn catalog(n: usize, matching: usize, with_index: bool) -> (Arc<Odms>, Vec<Vec<f32>>) {
    let odms = Arc::new(Odms::new(8));
    let c = odms.create_container("boss");
    let mut fluxes = Vec::new();
    for i in 0..n {
        let flux: Vec<f32> = (0..64).map(|k| ((i * 31 + k * 7) % 200) as f32 / 4.0).collect();
        let mut attrs = BTreeMap::new();
        if i < matching {
            attrs.insert("RADEG".to_string(), MetaValue::F64(153.17));
            attrs.insert("DECDEG".to_string(), MetaValue::F64(23.06));
        } else {
            attrs.insert("RADEG".to_string(), MetaValue::F64(i as f64));
            attrs.insert("DECDEG".to_string(), MetaValue::F64(-(i as f64)));
        }
        let opts = ImportOptions {
            region_bytes: 256,
            build_index: with_index,
            attrs,
            ..Default::default()
        };
        let report =
            odms.import_array(c, &format!("fiber{i}"), TypedVec::Float(flux.clone()), &opts)
                .unwrap();
        let _ = report;
        fluxes.push(flux);
    }
    (odms, fluxes)
}

fn conds() -> [(&'static str, MetaValue); 2] {
    [("RADEG", MetaValue::F64(153.17)), ("DECDEG", MetaValue::F64(23.06))]
}

fn engine(odms: &Arc<Odms>, strategy: Strategy, servers: u32) -> QueryEngine {
    QueryEngine::new(
        Arc::clone(odms),
        EngineConfig { strategy, num_servers: servers, ..Default::default() },
    )
}

#[test]
fn counts_match_naive_across_strategies() {
    let (odms, fluxes) = catalog(120, 30, true);
    let iv = Interval::open(0.0, 20.0);
    let expect: u64 = fluxes[..30]
        .iter()
        .flat_map(|f| f.iter())
        .filter(|&&v| iv.contains(v as f64))
        .count() as u64;
    for strategy in [Strategy::FullScan, Strategy::Histogram, Strategy::HistogramIndex] {
        let eng = engine(&odms, strategy, 4);
        let out = eng.metadata_data_query(&conds(), &iv).unwrap();
        assert_eq!(out.objects_matched, 30);
        assert_eq!(out.nhits, expect, "{strategy}");
        assert_eq!(out.per_object_hits.len(), 30);
    }
}

#[test]
fn per_object_hits_are_exact() {
    let (odms, fluxes) = catalog(40, 10, false);
    let iv = Interval::closed(5.0, 15.0);
    let eng = engine(&odms, Strategy::Histogram, 3);
    let out = eng.metadata_data_query(&conds(), &iv).unwrap();
    // per-object hits are sorted by object id == import order here
    for (k, &(_, hits)) in out.per_object_hits.iter().enumerate() {
        let expect =
            fluxes[k].iter().filter(|&&v| iv.contains(v as f64)).count() as u64;
        assert_eq!(hits, expect, "object {k}");
    }
}

#[test]
fn no_matching_metadata_is_empty_and_fast() {
    let (odms, _) = catalog(50, 10, false);
    let eng = engine(&odms, Strategy::Histogram, 4);
    let out = eng
        .metadata_data_query(&[("RADEG", MetaValue::F64(999.0))], &Interval::ALL)
        .unwrap();
    assert_eq!(out.objects_matched, 0);
    assert_eq!(out.nhits, 0);
    assert_eq!(out.io.pfs_bytes_read, 0, "no object may be read");
}

#[test]
fn histogram_pruning_skips_impossible_flux_ranges() {
    let (odms, _) = catalog(60, 20, false);
    // All flux values are < 50; a (1000, 2000) window prunes everything.
    let eng = engine(&odms, Strategy::Histogram, 4);
    let out = eng.metadata_data_query(&conds(), &Interval::open(1000.0, 2000.0)).unwrap();
    assert_eq!(out.nhits, 0);
    assert_eq!(out.io.pfs_bytes_read, 0, "histograms must prune every region");
}

#[test]
fn results_independent_of_server_count() {
    let (odms, _) = catalog(100, 25, true);
    let iv = Interval::open(10.0, 30.0);
    let reference = engine(&odms, Strategy::Histogram, 1)
        .metadata_data_query(&conds(), &iv)
        .unwrap();
    for servers in [2u32, 5, 16, 64] {
        for strategy in [Strategy::Histogram, Strategy::HistogramIndex] {
            let out = engine(&odms, strategy, servers)
                .metadata_data_query(&conds(), &iv)
                .unwrap();
            assert_eq!(out.nhits, reference.nhits, "{strategy} x{servers}");
            assert_eq!(out.per_object_hits, reference.per_object_hits);
        }
    }
}

#[test]
fn metadata_resolution_reported_separately() {
    let (odms, _) = catalog(50, 10, false);
    let eng = engine(&odms, Strategy::Histogram, 4);
    let out = eng.metadata_data_query(&conds(), &Interval::open(0.0, 10.0)).unwrap();
    assert!(out.metadata_elapsed < out.elapsed);
    assert!(out.metadata_elapsed.as_secs_f64() > 0.0);
}
