//! The tentpole invariant of the concurrent query-series engine:
//! [`QueryEngine::run_batch`] is a pure **host-side** optimization.
//! Every per-query outcome — selection, counters, per-lane cost
//! breakdown, per-server times, fault and integrity reports — must be
//! bit-identical to running the same series sequentially through
//! [`QueryEngine::run`] on an identically-configured engine, for all
//! four strategies, with and without injected faults and corruption.
//! Plus: the epoch-based invalidation of the plan and artifact caches
//! after aux rebuilds and region migrations.

use pdc_odms::{ImportOptions, Odms};
use pdc_query::{EngineConfig, PdcQuery, QueryEngine, QueryOutcome, Strategy};
use pdc_server::{CorruptionSpec, FaultPlan};
use pdc_storage::StorageTier;
use pdc_types::{Interval, NdRegion, ObjectId, QueryOp, RegionId, TypedVec};
use std::sync::Arc;

const ALL_STRATEGIES: [Strategy; 4] = [
    Strategy::FullScan,
    Strategy::Histogram,
    Strategy::HistogramIndex,
    Strategy::SortedHistogram,
];

struct TestWorld {
    odms: Arc<Odms>,
    energy: ObjectId,
    x: ObjectId,
    raw_energy: Vec<f32>,
}

/// Same VPIC-flavoured shape the strategy-agreement suite uses: a smooth
/// bulk plus clustered high-energy tails, so histogram pruning, index
/// candidate checks, and the sorted replica all get exercised.
fn build_world(n: usize, region_bytes: u64) -> TestWorld {
    let odms = Arc::new(Odms::new(8));
    let c = odms.create_container("vpic");
    let energy: Vec<f32> = (0..n)
        .map(|i| {
            let base = ((i as f32 * 0.37).sin() + 1.0) * 0.9;
            if (3000..3400).contains(&(i % 8000)) {
                2.0 + ((i * 31) % 160) as f32 / 100.0
            } else {
                base
            }
        })
        .collect();
    let x: Vec<f32> = (0..n).map(|i| ((i as f32 * 0.011).cos() + 1.0) * 166.0).collect();
    let opts = ImportOptions {
        region_bytes,
        build_index: true,
        build_sorted: true,
        ..Default::default()
    };
    let e = odms.import_array(c, "energy", TypedVec::Float(energy.clone()), &opts).unwrap().object;
    let xo = odms.import_array(c, "x", TypedVec::Float(x), &opts).unwrap().object;
    TestWorld { odms, energy: e, x: xo, raw_energy: energy }
}

fn engine_with(world: &TestWorld, strategy: Strategy, plan: Option<FaultPlan>) -> QueryEngine {
    QueryEngine::new(
        Arc::clone(&world.odms),
        EngineConfig { strategy, num_servers: 4, fault_plan: plan, ..Default::default() },
    )
}

/// An overlapping query series: repeats, shifted ranges, a multi-object
/// conjunction (candidate point checks), a disjunction, and a spatial
/// constraint — every evaluator code path.
fn series(world: &TestWorld) -> Vec<PdcQuery> {
    vec![
        PdcQuery::range_open(world.energy, 2.1f32, 2.2f32),
        PdcQuery::range_open(world.energy, 2.1f32, 2.2f32),
        PdcQuery::range_open(world.energy, 2.15f32, 2.3f32),
        PdcQuery::create(world.energy, QueryOp::Gt, 2.0f32)
            .and(PdcQuery::range_open(world.x, 100.0f32, 200.0f32)),
        PdcQuery::create(world.energy, QueryOp::Lt, 0.1f32)
            .or(PdcQuery::create(world.energy, QueryOp::Gt, 3.0f32)),
        PdcQuery::range_open(world.energy, 2.1f32, 2.2f32)
            .set_region(NdRegion::one_d(5_000, 9_000)),
    ]
}

/// Field-by-field equality of two outcomes (everything simulated).
fn assert_outcomes_identical(a: &QueryOutcome, b: &QueryOutcome, ctx: &str) {
    assert_eq!(a.nhits, b.nhits, "{ctx}: nhits");
    assert_eq!(a.selection, b.selection, "{ctx}: selection");
    assert_eq!(a.elapsed, b.elapsed, "{ctx}: elapsed");
    assert_eq!(a.per_server, b.per_server, "{ctx}: per-server times");
    assert_eq!(a.io, b.io, "{ctx}: io counters");
    assert_eq!(a.work, b.work, "{ctx}: work counters");
    assert_eq!(a.breakdown, b.breakdown, "{ctx}: cost breakdown");
    assert_eq!(a.sorted_hint, b.sorted_hint, "{ctx}: sorted hint");
    assert_eq!(a.failed_servers, b.failed_servers, "{ctx}: failed servers");
    assert_eq!(a.retry_rounds, b.retry_rounds, "{ctx}: retry rounds");
    assert_eq!(a.integrity, b.integrity, "{ctx}: integrity counters");
}

/// Run the series sequentially on one engine and batched on another
/// (identical config) and demand bit-identical per-query outcomes plus
/// the makespan bound.
fn check_equivalence(world: &TestWorld, strategy: Strategy, plan: Option<FaultPlan>) {
    let qs = series(world);
    let sequential = engine_with(world, strategy, plan.clone());
    let seq: Vec<QueryOutcome> = qs.iter().map(|q| sequential.run(q).unwrap()).collect();

    let batched = engine_with(world, strategy, plan);
    let batch = batched.run_batch(&qs).unwrap();

    assert_eq!(batch.outcomes.len(), seq.len());
    for (i, (a, b)) in seq.iter().zip(&batch.outcomes).enumerate() {
        assert_outcomes_identical(a, b, &format!("{strategy}, query {i}"));
    }
    let total: pdc_storage::SimDuration = seq.iter().map(|o| o.elapsed).sum();
    assert!(
        batch.batch_elapsed <= total,
        "{strategy}: batch makespan {} must not exceed sequential total {}",
        batch.batch_elapsed,
        total
    );
    assert!(batch.batch_elapsed > pdc_storage::SimDuration::ZERO, "{strategy}");
    assert_eq!(batch.stats.queries, qs.len() as u64);
}

#[test]
fn batch_matches_sequential_all_strategies() {
    let world = build_world(40_000, 8192);
    for strategy in ALL_STRATEGIES {
        check_equivalence(&world, strategy, None);
    }
}

#[test]
fn batch_caches_actually_engage() {
    let world = build_world(40_000, 8192);
    let eng = engine_with(&world, Strategy::Histogram, None);
    let batch = eng.run_batch(&series(&world)).unwrap();
    let s = &batch.stats;
    assert!(s.plan_hits > 0, "repeated queries must hit the plan cache: {s:?}");
    assert!(s.artifact_hits > 0, "overlapping queries must hit the artifact cache: {s:?}");
    assert!(s.prewarm_regions > 0, "the prewarm pass must load regions: {s:?}");
    assert!(
        s.resident_reads > 0,
        "later queries must be served from resident regions: {s:?}"
    );
    assert!(s.artifact_hit_ratio() > 0.0 && s.artifact_hit_ratio() <= 1.0);
}

#[test]
fn batch_matches_sequential_under_server_kills() {
    let world = build_world(30_000, 8192);
    for strategy in ALL_STRATEGIES {
        let plan = FaultPlan::kill_count(1, 4, 0xFA11);
        check_equivalence(&world, strategy, Some(plan));
    }
}

#[test]
fn batch_matches_sequential_under_seeded_fault_plan() {
    let world = build_world(30_000, 8192);
    for strategy in [Strategy::Histogram, Strategy::HistogramIndex] {
        let plan = FaultPlan::seeded(7, 4);
        check_equivalence(&world, strategy, Some(plan));
    }
}

#[test]
fn batch_matches_sequential_under_corruption() {
    // Corruption mutates the store, so each engine gets its own
    // deterministically-built world; generation is seed-free and exact.
    for strategy in ALL_STRATEGIES {
        let plan =
            FaultPlan::new().with_corruption(CorruptionSpec::new(0.15, 0.15, 0xC0FFEE));
        let world_a = build_world(25_000, 8192);
        let world_b = build_world(25_000, 8192);
        let qs = series(&world_a);

        let sequential = engine_with(&world_a, strategy, Some(plan.clone()));
        let seq: Vec<QueryOutcome> = qs.iter().map(|q| sequential.run(q).unwrap()).collect();
        assert!(
            seq.iter().any(|o| o.integrity.any()),
            "{strategy}: the corruption spec must actually damage something"
        );

        let batched = engine_with(&world_b, strategy, Some(plan));
        let batch = batched.run_batch(&series(&world_b)).unwrap();
        for (i, (a, b)) in seq.iter().zip(&batch.outcomes).enumerate() {
            assert_outcomes_identical(a, b, &format!("{strategy} + corruption, query {i}"));
        }
    }
}

#[test]
fn single_query_batch_matches_run() {
    let world = build_world(20_000, 8192);
    let q = PdcQuery::range_open(world.energy, 2.1f32, 2.2f32);
    let a = engine_with(&world, Strategy::Histogram, None).run(&q).unwrap();
    let batch =
        engine_with(&world, Strategy::Histogram, None).run_batch(std::slice::from_ref(&q)).unwrap();
    assert_outcomes_identical(&a, &batch.outcomes[0], "singleton batch");
    assert!(batch.batch_elapsed <= a.elapsed);
}

#[test]
fn empty_batch_is_typed_error() {
    let world = build_world(10_000, 8192);
    let eng = engine_with(&world, Strategy::Histogram, None);
    match eng.run_batch(&[]) {
        Err(pdc_types::PdcError::InvalidQuery(msg)) => {
            assert!(msg.contains("empty batch"), "diagnostic should name the cause: {msg}")
        }
        other => panic!("empty batch must be a typed InvalidQuery error, got {other:?}"),
    }
}

#[test]
fn duplicate_query_batch_matches_sequential_run() {
    // The same query three times over: every copy must produce the
    // bit-identical outcome (the artifact caches replay exact charges),
    // and the shared-scan group admits its predicates exactly once.
    let world = build_world(20_000, 8192);
    let q = PdcQuery::range_open(world.energy, 2.1f32, 2.2f32);
    let queries = vec![q.clone(), q.clone(), q];

    let seq_eng = engine_with(&world, Strategy::Histogram, None);
    let solo: Vec<QueryOutcome> =
        queries.iter().map(|q| seq_eng.run(q).unwrap()).collect();

    let eng = engine_with(&world, Strategy::Histogram, None);
    let batch = eng.run_batch(&queries).unwrap();
    assert_eq!(batch.stats.queries, 3);
    for (i, (a, b)) in solo.iter().zip(batch.outcomes.iter()).enumerate() {
        assert_outcomes_identical(a, b, &format!("duplicate batch member {i}"));
    }
}

/// The dedicated cache-invalidation regression test: poison one region
/// histogram so its prune verdict (wrongly) reports "no hits", cache
/// that verdict through a batch, then rebuild the histogram via the
/// epoch-bumping ODMS path. The next batch MUST drop the stale verdict
/// and recover the region's hits — if epoch invalidation ever breaks,
/// the cached prune verdict survives and this test fails.
#[test]
fn prune_and_plan_caches_invalidate_after_rebuild() {
    let world = build_world(40_000, 8192);
    let meta = world.odms.meta().get(world.energy).unwrap();
    let region_elems = meta.region_span(0).len;

    let iv = Interval::open(2.1, 2.2);
    let expect: Vec<u64> = (0..world.raw_energy.len() as u64)
        .filter(|&i| iv.contains(world.raw_energy[i as usize] as f64))
        .collect();
    assert!(!expect.is_empty());
    // A region that holds hits, whose histogram we poison.
    let poisoned_region = (expect[0] / region_elems) as u32;

    // Histogram built over far-away values: estimates zero hits in the
    // queried interval, so the evaluator prunes the region.
    let bogus = pdc_histogram::Histogram::build(
        &vec![1000.0; region_elems as usize],
        &pdc_histogram::HistogramConfig::default(),
    )
    .unwrap();
    world
        .odms
        .meta()
        .replace_region_histogram(world.energy, poisoned_region, bogus)
        .unwrap();

    let eng = engine_with(&world, Strategy::Histogram, None);
    let q = PdcQuery::range_open(world.energy, 2.1f32, 2.2f32);
    let poisoned = eng.run_batch(&[q.clone(), q.clone()]).unwrap();
    assert!(
        poisoned.outcomes[0].nhits < expect.len() as u64,
        "the poisoned histogram must suppress some hits for this test to mean anything"
    );
    assert_eq!(poisoned.outcomes[0].nhits, poisoned.outcomes[1].nhits);

    // Epoch-bumping rebuild restores the true histogram.
    world.odms.rebuild_region_histogram(world.energy, poisoned_region).unwrap();

    let healed = eng.run_batch(&[q.clone(), q]).unwrap();
    assert_eq!(
        healed.outcomes[0].selection.iter_coords().collect::<Vec<_>>(),
        expect,
        "stale prune verdict served after an epoch-bumping rebuild"
    );
    assert!(
        healed.stats.plan_misses > 0,
        "the epoch bump must also invalidate the plan cache: {:?}",
        healed.stats
    );
}

/// Streaming-ingest regression: a batch warms the plan, prune-verdict,
/// scan, and prewarm caches; an append then grows the primary object —
/// including filling the partial tail region whose artifacts are
/// cached. The next batch MUST NOT serve any stale artifact: a cached
/// "pruned" verdict or short scan selection for the old tail extent
/// would silently drop every hit the append introduced.
#[test]
fn caches_invalidate_after_streaming_append() {
    let world = build_world(40_000, 8192);
    let eng = engine_with(&world, Strategy::Histogram, None);
    let q = PdcQuery::range_open(world.energy, 2.1f32, 2.2f32);
    let qs = [q.clone(), q.clone()];

    let first = eng.run_batch(&qs).unwrap();
    let base_hits = first.outcomes[0].nhits;
    assert!(base_hits > 0);

    // Append a chunk that lands entirely inside the queried interval:
    // every appended element is a hit, so any stale artifact is visible
    // as a wrong count.
    let delta: Vec<f32> = (0..1_000).map(|i| 2.15 + (i % 7) as f32 * 0.001).collect();
    let report = world.odms.append_array(world.energy, &TypedVec::Float(delta)).unwrap();
    assert!(report.filled_tail.is_some(), "append must touch the cached tail region");

    let second = eng.run_batch(&qs).unwrap();
    assert_eq!(
        second.outcomes[0].nhits,
        base_hits + 1_000,
        "stale artifact served after a streaming append: {:?}",
        second.stats
    );
    assert_eq!(second.outcomes[0].nhits, second.outcomes[1].nhits);
    assert!(
        second.stats.plan_misses > 0,
        "the append's epoch bump must invalidate the plan cache: {:?}",
        second.stats
    );
    assert!(
        second.stats.artifact_misses > 0,
        "the append's epoch bump must invalidate the artifact caches: {:?}",
        second.stats
    );
    // Selection-level check against the naive filter over grown data.
    let mut raw = world.raw_energy.clone();
    raw.extend((0..1_000).map(|i| 2.15 + (i % 7) as f32 * 0.001));
    let expect: Vec<u64> = (0..raw.len() as u64)
        .filter(|&i| {
            let v = raw[i as usize] as f64;
            v > 2.1 && v < 2.2
        })
        .collect();
    assert_eq!(second.outcomes[0].selection.iter_coords().collect::<Vec<_>>(), expect);
}

#[test]
fn caches_invalidate_after_region_migration() {
    let world = build_world(30_000, 8192);
    let eng = engine_with(&world, Strategy::Histogram, None);
    let qs = series(&world);

    let first = eng.run_batch(&qs).unwrap();
    // Identical follow-up batch: everything is served from the caches.
    let second = eng.run_batch(&qs).unwrap();
    assert_eq!(second.stats.plan_misses, 0, "{:?}", second.stats);
    assert_eq!(second.stats.artifact_misses, 0, "{:?}", second.stats);
    assert_eq!(second.stats.prewarm_regions, 0, "{:?}", second.stats);
    for (a, b) in first.outcomes.iter().zip(&second.outcomes) {
        assert_eq!(a.selection, b.selection);
    }

    // A region migration bumps the store epoch: every cache must drop.
    world
        .odms
        .migrate_region(RegionId::new(world.energy, 0), StorageTier::BurstBuffer)
        .unwrap();
    let third = eng.run_batch(&qs).unwrap();
    assert!(third.stats.plan_misses > 0, "plan cache survived a migration: {:?}", third.stats);
    assert!(
        third.stats.artifact_misses > 0,
        "artifact caches survived a migration: {:?}",
        third.stats
    );
    assert!(third.stats.prewarm_regions > 0, "{:?}", third.stats);
    for (a, b) in first.outcomes.iter().zip(&third.outcomes) {
        assert_eq!(a.selection, b.selection, "migration must never change results");
        assert_eq!(a.nhits, b.nhits);
    }
}
