//! The central correctness invariant of the reproduction: **every
//! evaluation strategy returns exactly the same hits** as a naive filter
//! over the raw data — full scan, histogram pruning, bitmap index, and
//! sorted replica are pure optimizations.

use pdc_odms::{ImportOptions, Odms};
use pdc_query::{EngineConfig, PdcQuery, QueryEngine, Strategy};
use pdc_types::{Interval, NdRegion, ObjectId, QueryOp, TypedVec};
use std::sync::Arc;

const ALL_STRATEGIES: [Strategy; 4] = [
    Strategy::FullScan,
    Strategy::Histogram,
    Strategy::HistogramIndex,
    Strategy::SortedHistogram,
];

/// A small VPIC-flavoured dataset: energy has a bulk plus a clustered
/// tail; x/y/z are spatial coordinates with smooth variation.
struct TestWorld {
    odms: Arc<Odms>,
    energy: ObjectId,
    x: ObjectId,
    raw_energy: Vec<f32>,
    raw_x: Vec<f32>,
}

fn build_world(n: usize, region_bytes: u64) -> TestWorld {
    let odms = Arc::new(Odms::new(8));
    let c = odms.create_container("vpic");
    let energy: Vec<f32> = (0..n)
        .map(|i| {
            let base = ((i as f32 * 0.37).sin() + 1.0) * 0.9; // smooth [0, 1.8]
            if (3000..3400).contains(&(i % 8000)) {
                2.0 + ((i * 31) % 160) as f32 / 100.0 // clustered tail [2.0, 3.6)
            } else {
                base
            }
        })
        .collect();
    let x: Vec<f32> = (0..n).map(|i| ((i as f32 * 0.011).cos() + 1.0) * 166.0).collect();
    let opts = ImportOptions {
        region_bytes,
        build_index: true,
        build_sorted: true,
        ..Default::default()
    };
    let e = odms.import_array(c, "energy", TypedVec::Float(energy.clone()), &opts).unwrap().object;
    let xo = odms.import_array(c, "x", TypedVec::Float(x.clone()), &opts).unwrap().object;
    TestWorld { odms, energy: e, x: xo, raw_energy: energy, raw_x: x }
}

fn engine(world: &TestWorld, strategy: Strategy, servers: u32) -> QueryEngine {
    QueryEngine::new(
        Arc::clone(&world.odms),
        EngineConfig { strategy, num_servers: servers, ..Default::default() },
    )
}

fn naive_hits(world: &TestWorld, e_iv: Option<&Interval>, x_iv: Option<&Interval>) -> Vec<u64> {
    (0..world.raw_energy.len() as u64)
        .filter(|&i| {
            e_iv.is_none_or(|iv| iv.contains(world.raw_energy[i as usize] as f64))
                && x_iv.is_none_or(|iv| iv.contains(world.raw_x[i as usize] as f64))
        })
        .collect()
}

#[test]
fn single_object_range_query_all_strategies_agree() {
    let world = build_world(40_000, 8192);
    let expect = naive_hits(&world, Some(&Interval::open(2.1, 2.2)), None);
    assert!(!expect.is_empty(), "test data must produce hits");
    for strategy in ALL_STRATEGIES {
        let eng = engine(&world, strategy, 4);
        let q = PdcQuery::range_open(world.energy, 2.1f32, 2.2f32);
        let out = eng.run(&q).unwrap();
        assert_eq!(
            out.selection.iter_coords().collect::<Vec<_>>(),
            expect,
            "strategy {strategy} disagrees"
        );
        assert_eq!(out.nhits, expect.len() as u64);
    }
}

#[test]
fn one_sided_queries_all_strategies_agree() {
    let world = build_world(20_000, 4096);
    for (op, v) in [
        (QueryOp::Gt, 2.0f32),
        (QueryOp::Gte, 2.0),
        (QueryOp::Lt, 0.5),
        (QueryOp::Lte, 0.5),
    ] {
        let iv = Interval::from_op(op, v as f64);
        let expect = naive_hits(&world, Some(&iv), None);
        for strategy in ALL_STRATEGIES {
            let eng = engine(&world, strategy, 3);
            let out = eng.run(&PdcQuery::create(world.energy, op, v)).unwrap();
            assert_eq!(
                out.selection.iter_coords().collect::<Vec<_>>(),
                expect,
                "{strategy} on {op:?} {v}"
            );
        }
    }
}

#[test]
fn multi_object_conjunction_all_strategies_agree() {
    let world = build_world(30_000, 8192);
    let e_iv = Interval::from_op(QueryOp::Gt, 2.0);
    let x_iv = Interval::open(100.0, 200.0);
    let expect = naive_hits(&world, Some(&e_iv), Some(&x_iv));
    assert!(!expect.is_empty());
    for strategy in ALL_STRATEGIES {
        let eng = engine(&world, strategy, 4);
        let q = PdcQuery::create(world.energy, QueryOp::Gt, 2.0f32)
            .and(PdcQuery::range_open(world.x, 100.0f32, 200.0f32));
        let out = eng.run(&q).unwrap();
        assert_eq!(
            out.selection.iter_coords().collect::<Vec<_>>(),
            expect,
            "strategy {strategy}"
        );
    }
}

#[test]
fn disjunction_all_strategies_agree() {
    let world = build_world(20_000, 8192);
    let lo = Interval::from_op(QueryOp::Lt, 0.1);
    let hi = Interval::from_op(QueryOp::Gt, 3.0);
    let mut expect = naive_hits(&world, Some(&lo), None);
    expect.extend(naive_hits(&world, Some(&hi), None));
    expect.sort_unstable();
    expect.dedup();
    for strategy in ALL_STRATEGIES {
        let eng = engine(&world, strategy, 4);
        let q = PdcQuery::create(world.energy, QueryOp::Lt, 0.1f32)
            .or(PdcQuery::create(world.energy, QueryOp::Gt, 3.0f32));
        let out = eng.run(&q).unwrap();
        assert_eq!(out.selection.iter_coords().collect::<Vec<_>>(), expect, "{strategy}");
    }
}

#[test]
fn and_over_or_all_strategies_agree() {
    let world = build_world(20_000, 8192);
    // (energy < 0.1 OR energy > 3.0) AND 100 < x < 250
    let x_iv = Interval::open(100.0, 250.0);
    let expect: Vec<u64> = (0..world.raw_energy.len() as u64)
        .filter(|&i| {
            let e = world.raw_energy[i as usize] as f64;
            let x = world.raw_x[i as usize] as f64;
            !(0.1..=3.0).contains(&e) && x_iv.contains(x)
        })
        .collect();
    for strategy in ALL_STRATEGIES {
        let eng = engine(&world, strategy, 4);
        let q = (PdcQuery::create(world.energy, QueryOp::Lt, 0.1f32)
            .or(PdcQuery::create(world.energy, QueryOp::Gt, 3.0f32)))
        .and(PdcQuery::range_open(world.x, 100.0f32, 250.0f32));
        let out = eng.run(&q).unwrap();
        assert_eq!(out.selection.iter_coords().collect::<Vec<_>>(), expect, "{strategy}");
    }
}

#[test]
fn spatial_region_constraint_all_strategies_agree() {
    let world = build_world(20_000, 4096);
    let e_iv = Interval::from_op(QueryOp::Gt, 2.0);
    let expect: Vec<u64> = naive_hits(&world, Some(&e_iv), None)
        .into_iter()
        .filter(|&c| (5_000..12_000).contains(&c))
        .collect();
    for strategy in ALL_STRATEGIES {
        let eng = engine(&world, strategy, 4);
        let q = PdcQuery::create(world.energy, QueryOp::Gt, 2.0f32)
            .set_region(NdRegion::one_d(5_000, 7_000));
        let out = eng.run(&q).unwrap();
        assert_eq!(out.selection.iter_coords().collect::<Vec<_>>(), expect, "{strategy}");
    }
}

#[test]
fn results_independent_of_server_count() {
    let world = build_world(30_000, 4096);
    let q = PdcQuery::create(world.energy, QueryOp::Gt, 2.0f32)
        .and(PdcQuery::range_open(world.x, 100.0f32, 200.0f32));
    let reference = engine(&world, Strategy::Histogram, 1).run(&q).unwrap();
    for servers in [2, 3, 7, 16, 64] {
        for strategy in ALL_STRATEGIES {
            let eng = engine(&world, strategy, servers);
            let out = eng.run(&q).unwrap();
            assert_eq!(
                out.selection, reference.selection,
                "{strategy} with {servers} servers"
            );
        }
    }
}

#[test]
fn repeated_queries_get_faster_with_caching() {
    let world = build_world(40_000, 4096);
    let eng = engine(&world, Strategy::Histogram, 4);
    let q = PdcQuery::range_open(world.energy, 2.1f32, 2.2f32);
    let first = eng.run(&q).unwrap();
    let second = eng.run(&q).unwrap();
    assert_eq!(first.selection, second.selection);
    assert!(
        second.elapsed < first.elapsed,
        "cached run {} should beat cold run {}",
        second.elapsed,
        first.elapsed
    );
    assert_eq!(second.io.pfs_bytes_read, 0, "second run must be fully cached");
}

#[test]
fn get_data_returns_exact_values_all_strategies() {
    let world = build_world(20_000, 8192);
    let q = PdcQuery::range_open(world.energy, 2.1f32, 2.2f32);
    let expect_coords = naive_hits(&world, Some(&Interval::open(2.1, 2.2)), None);
    let expect_values: Vec<f32> =
        expect_coords.iter().map(|&c| world.raw_energy[c as usize]).collect();
    for strategy in ALL_STRATEGIES {
        let eng = engine(&world, strategy, 4);
        let out = eng.run(&q).unwrap();
        let data = eng.get_data(&out, world.energy).unwrap();
        match &data.data {
            TypedVec::Float(vs) => assert_eq!(vs, &expect_values, "{strategy}"),
            other => panic!("wrong type {other:?}"),
        }
        assert!(data.servers_involved > 0);
    }
}

#[test]
fn get_data_on_other_object_than_queried() {
    // "The memory objects may have the same or different data structures
    // from those in the query condition" — query energy, fetch x.
    let world = build_world(20_000, 8192);
    let q = PdcQuery::range_open(world.energy, 2.1f32, 2.2f32);
    let expect_coords = naive_hits(&world, Some(&Interval::open(2.1, 2.2)), None);
    let expect_values: Vec<f32> =
        expect_coords.iter().map(|&c| world.raw_x[c as usize]).collect();
    for strategy in ALL_STRATEGIES {
        let eng = engine(&world, strategy, 4);
        let out = eng.run(&q).unwrap();
        let data = eng.get_data(&out, world.x).unwrap();
        match &data.data {
            TypedVec::Float(vs) => assert_eq!(vs, &expect_values, "{strategy}"),
            other => panic!("wrong type {other:?}"),
        }
    }
}

#[test]
fn get_data_batch_concatenates_to_get_data() {
    let world = build_world(20_000, 8192);
    let eng = engine(&world, Strategy::Histogram, 4);
    let q = PdcQuery::create(world.energy, QueryOp::Gt, 2.0f32);
    let out = eng.run(&q).unwrap();
    assert!(out.nhits > 100);
    let whole = eng.get_data(&out, world.energy).unwrap();
    let batches = eng.get_data_batch(&out, world.energy, 64).unwrap();
    assert!(batches.len() > 1, "should need multiple batches");
    let mut concat: Vec<f32> = Vec::new();
    for b in &batches {
        match &b.data {
            TypedVec::Float(vs) => concat.extend_from_slice(vs),
            other => panic!("wrong type {other:?}"),
        }
    }
    match &whole.data {
        TypedVec::Float(vs) => assert_eq!(&concat, vs),
        other => panic!("wrong type {other:?}"),
    }
}

#[test]
fn empty_result_short_circuits() {
    let world = build_world(10_000, 4096);
    for strategy in ALL_STRATEGIES {
        let eng = engine(&world, strategy, 4);
        let q = PdcQuery::create(world.energy, QueryOp::Gt, 100.0f32)
            .and(PdcQuery::range_open(world.x, 100.0f32, 200.0f32));
        let out = eng.run(&q).unwrap();
        assert_eq!(out.nhits, 0, "{strategy}");
        assert!(out.selection.is_empty());
    }
}

#[test]
fn equality_query_on_integers() {
    let odms = Arc::new(Odms::new(4));
    let c = odms.create_container("ints");
    let data: Vec<i32> = (0..10_000).map(|i| i % 37).collect();
    let opts = ImportOptions {
        region_bytes: 4096,
        build_index: true,
        build_sorted: true,
        ..Default::default()
    };
    let obj = odms.import_array(c, "ids", TypedVec::Int32(data.clone()), &opts).unwrap().object;
    let expect: Vec<u64> = (0..10_000u64).filter(|&i| data[i as usize] == 17).collect();
    for strategy in ALL_STRATEGIES {
        let eng = QueryEngine::new(
            Arc::clone(&odms),
            EngineConfig { strategy, num_servers: 4, ..Default::default() },
        );
        let q = PdcQuery::create(obj, QueryOp::Eq, 17i32);
        let out = eng.run(&q).unwrap();
        assert_eq!(out.selection.iter_coords().collect::<Vec<_>>(), expect, "{strategy}");
    }
}
