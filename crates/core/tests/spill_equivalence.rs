//! The tentpole invariant of the out-of-core region store: spilling
//! sealed regions to block-compressed disk files under a memory budget
//! is a pure **physical** change. Every query outcome — selection,
//! counters, per-lane cost breakdown, per-server simulated times,
//! integrity reports — must be bit-identical with spill on or off, for
//! all five strategies, under seeded server faults, under at-rest
//! corruption, and across streaming appends. The simulated machine
//! never learns where the bytes physically live.

use pdc_odms::{ImportOptions, Odms};
use pdc_query::{EngineConfig, PdcQuery, QueryEngine, QueryOutcome, Strategy};
use pdc_server::{CorruptionSpec, FaultPlan};
use pdc_types::{NdRegion, ObjectId, QueryOp, TypedVec};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// All five strategies — the per-region adaptive planner included, since
/// its band decisions must also be residency-blind.
const STRATEGIES: [Strategy; 5] = [
    Strategy::FullScan,
    Strategy::Histogram,
    Strategy::HistogramIndex,
    Strategy::SortedHistogram,
    Strategy::Adaptive,
];

/// Memory budget used by the bounded engines: far below the dataset so
/// demotions are guaranteed, comfortably above any single region.
const BUDGET: u64 = 96 * 1024;

struct TestWorld {
    odms: Arc<Odms>,
    energy: ObjectId,
    x: ObjectId,
    raw_energy: Vec<f32>,
}

fn energy_at(i: usize) -> f32 {
    let base = ((i as f32 * 0.37).sin() + 1.0) * 0.9;
    if (3000..3400).contains(&(i % 8000)) {
        2.0 + ((i * 31) % 160) as f32 / 100.0
    } else {
        base
    }
}

/// Same VPIC-flavoured shape the strategy-agreement suite uses. Spill
/// mutates the store physically, so A/B comparisons each build their own
/// world; generation is seed-free and exact, so two builds are
/// logically identical.
fn build_world(n: usize, region_bytes: u64) -> TestWorld {
    let odms = Arc::new(Odms::new(8));
    let c = odms.create_container("vpic");
    let energy: Vec<f32> = (0..n).map(energy_at).collect();
    let x: Vec<f32> = (0..n).map(|i| ((i as f32 * 0.011).cos() + 1.0) * 166.0).collect();
    let opts = ImportOptions {
        region_bytes,
        build_index: true,
        build_sorted: true,
        ..Default::default()
    };
    let e = odms.import_array(c, "energy", TypedVec::Float(energy.clone()), &opts).unwrap().object;
    let xo = odms.import_array(c, "x", TypedVec::Float(x), &opts).unwrap().object;
    TestWorld { odms, energy: e, x: xo, raw_energy: energy }
}

fn spill_dir(tag: &str) -> PathBuf {
    let thread = std::thread::current()
        .name()
        .unwrap_or("t")
        .replace(|c: char| !c.is_ascii_alphanumeric(), "_");
    std::env::temp_dir().join(format!("pdc_spilleq_{tag}_{}_{thread}", std::process::id()))
}

fn unbounded_engine(world: &TestWorld, strategy: Strategy, plan: Option<FaultPlan>) -> QueryEngine {
    QueryEngine::new(
        Arc::clone(&world.odms),
        EngineConfig { strategy, num_servers: 4, fault_plan: plan, ..Default::default() },
    )
}

fn bounded_engine(
    world: &TestWorld,
    strategy: Strategy,
    plan: Option<FaultPlan>,
    dir: &Path,
    block_cache_bytes: u64,
) -> QueryEngine {
    QueryEngine::new(
        Arc::clone(&world.odms),
        EngineConfig {
            strategy,
            num_servers: 4,
            fault_plan: plan,
            memory_budget: Some(BUDGET),
            spill_dir: Some(dir.to_path_buf()),
            block_cache_bytes,
            ..Default::default()
        },
    )
}

/// The same evaluator-coverage series the batch suite runs: repeats,
/// shifted ranges, a conjunction (candidate point checks), a
/// disjunction, and a spatial constraint.
fn series(world: &TestWorld) -> Vec<PdcQuery> {
    vec![
        PdcQuery::range_open(world.energy, 2.1f32, 2.2f32),
        PdcQuery::range_open(world.energy, 2.1f32, 2.2f32),
        PdcQuery::range_open(world.energy, 2.15f32, 2.3f32),
        PdcQuery::create(world.energy, QueryOp::Gt, 2.0f32)
            .and(PdcQuery::range_open(world.x, 100.0f32, 200.0f32)),
        PdcQuery::create(world.energy, QueryOp::Lt, 0.1f32)
            .or(PdcQuery::create(world.energy, QueryOp::Gt, 3.0f32)),
        PdcQuery::range_open(world.energy, 2.1f32, 2.2f32)
            .set_region(NdRegion::one_d(5_000, 9_000)),
    ]
}

/// Field-by-field equality of two outcomes (everything simulated).
fn assert_outcomes_identical(a: &QueryOutcome, b: &QueryOutcome, ctx: &str) {
    assert_eq!(a.nhits, b.nhits, "{ctx}: nhits");
    assert_eq!(a.selection, b.selection, "{ctx}: selection");
    assert_eq!(a.elapsed, b.elapsed, "{ctx}: elapsed");
    assert_eq!(a.per_server, b.per_server, "{ctx}: per-server times");
    assert_eq!(a.io, b.io, "{ctx}: io counters");
    assert_eq!(a.work, b.work, "{ctx}: work counters");
    assert_eq!(a.breakdown, b.breakdown, "{ctx}: cost breakdown");
    assert_eq!(a.sorted_hint, b.sorted_hint, "{ctx}: sorted hint");
    assert_eq!(a.failed_servers, b.failed_servers, "{ctx}: failed servers");
    assert_eq!(a.retry_rounds, b.retry_rounds, "{ctx}: retry rounds");
    assert_eq!(a.integrity, b.integrity, "{ctx}: integrity counters");
}

/// The bounded world must actually spill and must honour its budget —
/// otherwise the equivalence assertions are vacuous.
fn assert_spill_engaged(world: &TestWorld, ctx: &str) {
    let stats = world.odms.store().spill_stats().expect("spill configured");
    assert!(stats.demotions > 0, "{ctx}: no region was ever demoted: {stats:?}");
    assert!(stats.spilled_regions > 0, "{ctx}: nothing is spilled after the run: {stats:?}");
    assert!(
        stats.resident_high_water <= BUDGET,
        "{ctx}: settled resident high-water {} exceeds budget {BUDGET}",
        stats.resident_high_water
    );
    assert!(stats.resident_bytes <= BUDGET, "{ctx}: resident {} over budget", stats.resident_bytes);
}

/// Run the series on an unbounded world and on a budgeted world and
/// demand bit-identical per-query outcomes.
fn check_equivalence(
    n: usize,
    strategy: Strategy,
    plan: Option<FaultPlan>,
    tag: &str,
    block_cache_bytes: u64,
) {
    let world_a = build_world(n, 8192);
    let world_b = build_world(n, 8192);
    let dir = spill_dir(tag);
    let qs = series(&world_a);

    let unbounded = unbounded_engine(&world_a, strategy, plan.clone());
    let base: Vec<QueryOutcome> = qs.iter().map(|q| unbounded.run(q).unwrap()).collect();

    let bounded = bounded_engine(&world_b, strategy, plan, &dir, block_cache_bytes);
    for (i, q) in series(&world_b).iter().enumerate() {
        let out = bounded.run(q).unwrap();
        assert_outcomes_identical(&base[i], &out, &format!("{strategy}, query {i}"));
    }
    assert_spill_engaged(&world_b, &format!("{strategy}"));
    drop(bounded);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn spill_matches_unbounded_all_strategies() {
    for strategy in STRATEGIES {
        check_equivalence(40_000, strategy, None, "clean", 32 << 20);
    }
}

#[test]
fn spill_matches_unbounded_with_tiny_block_cache() {
    // A block cache far smaller than the spilled set forces evictions on
    // every scan; decisions stay bit-identical because the cache is a
    // host-side artifact the simulated machine never observes.
    for strategy in [Strategy::FullScan, Strategy::HistogramIndex] {
        check_equivalence(40_000, strategy, None, "tinycache", 16 * 1024);
    }
}

#[test]
fn spill_matches_unbounded_under_seeded_faults() {
    for (i, strategy) in [Strategy::Histogram, Strategy::SortedHistogram, Strategy::Adaptive]
        .into_iter()
        .enumerate()
    {
        let plan = FaultPlan::seeded(0xFA11 + i as u64, 4);
        check_equivalence(30_000, strategy, Some(plan), "faults", 32 << 20);
    }
}

#[test]
fn spill_matches_unbounded_under_corruption() {
    for strategy in STRATEGIES {
        let plan = FaultPlan::new().with_corruption(CorruptionSpec::new(0.2, 0.2, 0xBAD5EED));
        let world_a = build_world(25_000, 8192);
        let world_b = build_world(25_000, 8192);
        let dir = spill_dir("corrupt");
        let qs = series(&world_a);

        let unbounded = unbounded_engine(&world_a, strategy, Some(plan.clone()));
        let base: Vec<QueryOutcome> = qs.iter().map(|q| unbounded.run(q).unwrap()).collect();
        assert!(
            base.iter().any(|o| o.integrity.any()),
            "{strategy}: the corruption spec must actually damage something"
        );

        let bounded = bounded_engine(&world_b, strategy, Some(plan), &dir, 32 << 20);
        for (i, q) in series(&world_b).iter().enumerate() {
            let out = bounded.run(q).unwrap();
            assert_outcomes_identical(&base[i], &out, &format!("{strategy} + corruption, query {i}"));
        }
        assert_spill_engaged(&world_b, &format!("{strategy} + corruption"));
        drop(bounded);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn spill_batch_matches_unbounded_sequential() {
    // `run_batch` adds the prewarm pass, which streams cold regions
    // block-by-block into the artifact cache. Its per-query outcomes
    // must still match a sequential unbounded run exactly.
    for strategy in [Strategy::Histogram, Strategy::HistogramIndex, Strategy::Adaptive] {
        let world_a = build_world(40_000, 8192);
        let world_b = build_world(40_000, 8192);
        let dir = spill_dir("batch");
        let qs = series(&world_a);

        let unbounded = unbounded_engine(&world_a, strategy, None);
        let base: Vec<QueryOutcome> = qs.iter().map(|q| unbounded.run(q).unwrap()).collect();

        let bounded = bounded_engine(&world_b, strategy, None, &dir, 32 << 20);
        let batch = bounded.run_batch(&series(&world_b)).unwrap();
        assert_eq!(batch.outcomes.len(), base.len());
        for (i, (a, b)) in base.iter().zip(&batch.outcomes).enumerate() {
            assert_outcomes_identical(a, b, &format!("{strategy} batch, query {i}"));
        }
        assert_spill_engaged(&world_b, &format!("{strategy} batch"));
        drop(bounded);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn spill_matches_unbounded_across_streaming_appends() {
    // Interleave queries with streaming appends: appends land in the
    // unsealed tail (never demoted), sealing by growth triggers fresh
    // demotions, and every engine plans against its epoch snapshot.
    let n = 24_000;
    let world_a = build_world(n, 8192);
    let world_b = build_world(n, 8192);
    let dir = spill_dir("append");

    let unbounded = unbounded_engine(&world_a, Strategy::Histogram, None);
    let bounded = bounded_engine(&world_b, Strategy::Histogram, None, &dir, 32 << 20);

    let mut next = n;
    for round in 0..3 {
        let delta: Vec<f32> = (next..next + 6_000).map(energy_at).collect();
        next += 6_000;
        world_a.odms.append_array(world_a.energy, &TypedVec::Float(delta.clone())).unwrap();
        world_b.odms.append_array(world_b.energy, &TypedVec::Float(delta)).unwrap();

        for (i, (qa, qb)) in
            [PdcQuery::range_open(world_a.energy, 2.1f32, 2.2f32),
             PdcQuery::create(world_a.energy, QueryOp::Gt, 3.0f32)]
            .iter()
            .zip(&[
                PdcQuery::range_open(world_b.energy, 2.1f32, 2.2f32),
                PdcQuery::create(world_b.energy, QueryOp::Gt, 3.0f32),
            ])
            .enumerate()
        {
            let a = unbounded.run(qa).unwrap();
            let b = bounded.run(qb).unwrap();
            assert_outcomes_identical(&a, &b, &format!("append round {round}, query {i}"));
        }
    }
    assert_spill_engaged(&world_b, "streaming appends");
    drop(bounded);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A corrupt **spilled** bitmap-index region must take the same road as
/// a corrupt resident one: the probe detects the damage, answers by the
/// verified exact scan, rebuilds the index in place (charging
/// `aux_rebuilds`), and the repair sticks — with outcomes bit-identical
/// to an unbounded world corrupted at the same site.
#[test]
fn corrupt_spilled_index_region_rebuilds_identically() {
    let world_a = build_world(30_000, 8192);
    let world_b = build_world(30_000, 8192);
    let dir = spill_dir("auxrebuild");

    let unbounded = unbounded_engine(&world_a, Strategy::HistogramIndex, None);
    let bounded = bounded_engine(&world_b, Strategy::HistogramIndex, None, &dir, 32 << 20);

    // Pick an index region the budgeted store actually spilled, and
    // corrupt the same site in both worlds.
    let idx_obj = world_b.odms.meta().get(world_b.energy).unwrap().index_object.unwrap();
    let victim = (0..64)
        .map(|r| pdc_types::RegionId::new(idx_obj, r))
        .find(|rid| world_b.odms.store().is_spilled(*rid))
        .expect("a spilled index region under a 96 KiB budget");
    assert!(world_b.odms.store().corrupt(victim, 0xD1CE).unwrap());
    assert!(world_a.odms.store().corrupt(victim, 0xD1CE).unwrap());

    // Match-everything query: every region is a candidate, so the probe
    // must visit the corrupted index.
    let q = PdcQuery::create(world_a.energy, QueryOp::Gt, -1.0e9f32);
    let a = unbounded.run(&q).unwrap();
    let b = bounded.run(&q).unwrap();
    assert_outcomes_identical(&a, &b, "spilled index rebuild");
    assert!(b.integrity.aux_rebuilds >= 1, "probe must rebuild the corrupt index: {:?}", b.integrity);
    assert_eq!(a.nhits, world_a.raw_energy.len() as u64);

    // The rebuild is durable: a second pass probes cleanly.
    let b2 = bounded.run(&q).unwrap();
    assert_eq!(b2.integrity.aux_rebuilds, 0, "rebuilt index must persist: {:?}", b2.integrity);
    assert_eq!(b2.nhits, a.nhits);

    assert_spill_engaged(&world_b, "spilled index rebuild");
    drop(bounded);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Sanity anchor: the budgeted engine doesn't just agree with the
/// unbounded one — both agree with a naive filter over the raw data.
#[test]
fn spill_results_match_naive_filter() {
    let world = build_world(30_000, 8192);
    let dir = spill_dir("naive");
    let expect: Vec<u64> = (0..world.raw_energy.len() as u64)
        .filter(|&i| {
            let v = world.raw_energy[i as usize];
            v > 2.1 && v < 2.2
        })
        .collect();
    assert!(!expect.is_empty());
    for strategy in STRATEGIES {
        let eng = bounded_engine(&world, strategy, None, &dir, 32 << 20);
        let out = eng.run(&PdcQuery::range_open(world.energy, 2.1f32, 2.2f32)).unwrap();
        assert_eq!(out.selection.iter_coords().collect::<Vec<_>>(), expect, "{strategy}");
        assert_eq!(out.nhits, expect.len() as u64);
    }
    assert_spill_engaged(&world, "naive anchor");
    let _ = std::fs::remove_dir_all(&dir);
}
