//! The headline correctness suite for streaming ingest: a store that
//! grows by appends mid-query-series must be indistinguishable — hit for
//! hit — from a store created whole ("sealed") at each observed extent.
//!
//! Three invariants, per ISSUE 6:
//!
//! 1. Interleaved append/query schedules give Selections bit-identical
//!    to a fresh store holding exactly the elements the query planned
//!    against (`QueryOutcome::planned_elements`), for all five
//!    strategies, with and without injected faults and corruption.
//! 2. The incremental histogram maintenance (per-append delta folds)
//!    is bit-identical to a from-scratch re-merge of the per-region
//!    histograms — no drift, ever.
//! 3. Deferred aux maintenance (bitmap-index and sorted-replica
//!    rebuilds) never changes Selections, before or after it runs.

use pdc_histogram::merge_all;
use pdc_odms::{ImportOptions, Odms};
use pdc_query::{EngineConfig, PdcQuery, QueryEngine, Strategy};
use pdc_server::{CorruptionSpec, FaultPlan};
use pdc_types::{ObjectId, TypedVec};
use std::sync::Arc;

const ALL_STRATEGIES: [Strategy; 5] = [
    Strategy::FullScan,
    Strategy::Histogram,
    Strategy::HistogramIndex,
    Strategy::SortedHistogram,
    Strategy::Adaptive,
];

/// Initial extent imported before the first append.
const PREFIX: usize = 20_000;
/// Elements per streaming append. Deliberately NOT a multiple of the
/// region size, so appends exercise tail fills, seals, and partial new
/// regions in varying phases.
const CHUNK: usize = 3_500;
/// Number of appends in a schedule.
const APPENDS: usize = 5;

/// The same VPIC-flavoured value stream the strategy-agreement suite
/// uses: a smooth bulk plus clustered high-energy tails, extended far
/// enough to cover the full ingest schedule.
fn gen(n: usize) -> Vec<f32> {
    (0..n)
        .map(|i| {
            let base = ((i as f32 * 0.37).sin() + 1.0) * 0.9;
            if (3000..3400).contains(&(i % 8000)) {
                2.0 + ((i * 31) % 160) as f32 / 100.0
            } else {
                base
            }
        })
        .collect()
}

fn import_opts() -> ImportOptions {
    ImportOptions {
        region_bytes: 8 << 10,
        build_index: true,
        build_sorted: true,
        ..Default::default()
    }
}

/// A store holding `data` imported in one shot — the sealed baseline an
/// interleaved schedule must be indistinguishable from.
fn sealed_world(data: &[f32]) -> (Arc<Odms>, ObjectId) {
    let odms = Arc::new(Odms::new(4));
    let c = odms.create_container("ingest");
    let obj = odms
        .import_array(c, "energy", TypedVec::Float(data.to_vec()), &import_opts())
        .unwrap()
        .object;
    (odms, obj)
}

fn engine(odms: &Arc<Odms>, strategy: Strategy, plan: Option<FaultPlan>) -> QueryEngine {
    QueryEngine::new(
        Arc::clone(odms),
        EngineConfig { strategy, num_servers: 4, fault_plan: plan, ..Default::default() },
    )
}

fn query(obj: ObjectId) -> PdcQuery {
    PdcQuery::range_open(obj, 2.1f32, 2.2f32)
}

fn naive_hits(data: &[f32]) -> Vec<u64> {
    (0..data.len() as u64)
        .filter(|&i| {
            let v = data[i as usize] as f64;
            v > 2.1 && v < 2.2
        })
        .collect()
}

/// Drive one interleaved schedule: query at the initial extent, then
/// after every append. Returns `(planned_elements, selection coords)`
/// per query, in schedule order. `maintain_at` runs deferred aux
/// maintenance after that append index (to mix rebuilt and pending
/// states inside one schedule).
fn run_schedule(
    data: &[f32],
    strategy: Strategy,
    plan: Option<FaultPlan>,
    maintain_at: Option<usize>,
) -> Vec<(u64, Vec<u64>)> {
    let (odms, obj) = sealed_world(&data[..PREFIX]);
    let eng = engine(&odms, strategy, plan);
    let q = query(obj);
    let mut observed = Vec::new();
    let out = eng.run(&q).unwrap();
    observed.push((out.planned_elements, out.selection.iter_coords().collect()));
    for k in 0..APPENDS {
        let lo = PREFIX + k * CHUNK;
        let hi = PREFIX + (k + 1) * CHUNK;
        let report = odms.append_array(obj, &TypedVec::Float(data[lo..hi].to_vec())).unwrap();
        assert_eq!(report.total_elems, hi as u64);
        if maintain_at == Some(k) {
            odms.run_deferred_maintenance().unwrap();
        }
        let out = eng.run(&q).unwrap();
        assert_eq!(
            out.planned_elements, hi as u64,
            "{strategy}: plan must see exactly the registered extent"
        );
        observed.push((out.planned_elements, out.selection.iter_coords().collect()));
    }
    observed
}

/// For every `(extent, coords)` pair a schedule observed, a fresh store
/// imported whole at that extent must produce bit-identical coords.
fn check_against_sealed(
    data: &[f32],
    strategy: Strategy,
    plan: Option<FaultPlan>,
    observed: &[(u64, Vec<u64>)],
) {
    for (extent, coords) in observed {
        let expect = naive_hits(&data[..*extent as usize]);
        assert_eq!(coords, &expect, "{strategy} at extent {extent}: naive filter disagrees");
        let (sealed, sobj) = sealed_world(&data[..*extent as usize]);
        let seng = engine(&sealed, strategy, plan.clone());
        let sout = seng.run(&query(sobj)).unwrap();
        assert_eq!(
            &sout.selection.iter_coords().collect::<Vec<_>>(),
            coords,
            "{strategy} at extent {extent}: interleaved != sealed store"
        );
    }
}

#[test]
fn interleaved_queries_match_sealed_store_all_strategies() {
    let data = gen(PREFIX + APPENDS * CHUNK);
    for strategy in ALL_STRATEGIES {
        // Once with aux maintenance mid-schedule, once fully deferred.
        for maintain_at in [Some(1), None] {
            let observed = run_schedule(&data, strategy, None, maintain_at);
            assert_eq!(observed.len(), APPENDS + 1);
            assert!(observed.iter().all(|(_, c)| !c.is_empty()), "{strategy}: dead test data");
            check_against_sealed(&data, strategy, None, &observed);
        }
    }
}

#[test]
fn interleaved_matches_sealed_under_server_faults() {
    let data = gen(PREFIX + APPENDS * CHUNK);
    for strategy in [Strategy::Histogram, Strategy::HistogramIndex, Strategy::Adaptive] {
        let plan = FaultPlan::seeded(7, 4);
        let observed = run_schedule(&data, strategy, Some(plan.clone()), None);
        check_against_sealed(&data, strategy, Some(plan), &observed);
    }
}

#[test]
fn interleaved_matches_sealed_under_corruption() {
    // Corruption damages the growing store; the sealed baselines stay
    // clean. Verify-and-fallback must heal every read, so Selections
    // still match a pristine store at each extent.
    let data = gen(PREFIX + APPENDS * CHUNK);
    for strategy in ALL_STRATEGIES {
        let plan = FaultPlan::new().with_corruption(CorruptionSpec::new(0.2, 0.3, 0xC0FFEE));
        let (odms, obj) = sealed_world(&data[..PREFIX]);
        let eng = engine(&odms, strategy, Some(plan));
        let q = query(obj);
        let mut damaged = false;
        let mut observed = Vec::new();
        let out = eng.run(&q).unwrap();
        damaged |= out.integrity.any();
        observed.push((out.planned_elements, out.selection.iter_coords().collect::<Vec<_>>()));
        for k in 0..APPENDS {
            let lo = PREFIX + k * CHUNK;
            let hi = PREFIX + (k + 1) * CHUNK;
            odms.append_array(obj, &TypedVec::Float(data[lo..hi].to_vec())).unwrap();
            let out = eng.run(&q).unwrap();
            damaged |= out.integrity.any();
            observed
                .push((out.planned_elements, out.selection.iter_coords().collect::<Vec<_>>()));
        }
        assert!(damaged, "{strategy}: the corruption spec must actually damage something");
        check_against_sealed(&data, strategy, None, &observed);
    }
}

#[test]
fn incremental_histogram_merge_matches_remerge_after_every_append() {
    let data = gen(PREFIX + APPENDS * CHUNK);
    let (odms, obj) = sealed_world(&data[..PREFIX]);
    for k in 0..=APPENDS {
        if k > 0 {
            let lo = PREFIX + (k - 1) * CHUNK;
            let hi = PREFIX + k * CHUNK;
            odms.append_array(obj, &TypedVec::Float(data[lo..hi].to_vec())).unwrap();
        }
        let extent = (PREFIX + k * CHUNK) as u64;
        let hists = odms.meta().region_histograms(obj).unwrap();
        let meta = odms.meta().get(obj).unwrap();
        assert_eq!(hists.len() as u32, meta.num_regions(), "append {k}");
        // Every per-region histogram is internally consistent and
        // accounts for exactly its region's elements.
        for (r, h) in hists.iter().enumerate() {
            let span = meta.region_span(r as u32);
            assert!(h.self_check(span.len), "append {k}, region {r}");
        }
        // The incrementally-folded global histogram is bit-identical to
        // a from-scratch re-merge of the region histograms (the fold
        // Algorithm 1's merge machinery would run on rebuild).
        let global = odms.meta().global_histogram(obj).unwrap();
        let remerged = merge_all(hists.iter()).unwrap();
        assert_eq!(*global.as_ref(), remerged, "append {k}: incremental fold drifted");
        assert_eq!(global.total(), extent, "append {k}: global histogram element count");
    }
}

#[test]
fn deferred_maintenance_never_changes_selections() {
    let data = gen(PREFIX + APPENDS * CHUNK);
    for strategy in ALL_STRATEGIES {
        for plan in [
            None,
            Some(FaultPlan::new().with_corruption(CorruptionSpec::new(0.15, 0.25, 0xBEEF))),
        ] {
            let (odms, obj) = sealed_world(&data[..PREFIX]);
            for k in 0..APPENDS {
                let lo = PREFIX + k * CHUNK;
                let hi = PREFIX + (k + 1) * CHUNK;
                odms.append_array(obj, &TypedVec::Float(data[lo..hi].to_vec())).unwrap();
            }
            assert!(!odms.pending_maintenance().is_empty());
            let eng = engine(&odms, strategy, plan.clone());
            let q = query(obj);
            let before = eng.run(&q).unwrap();
            let report = odms.run_deferred_maintenance().unwrap();
            assert!(odms.pending_maintenance().is_empty());
            // The lazy probe-time rebuilds may have beaten the drain to
            // some regions, but the sorted replica is always stale here.
            assert!(report.sorted_replicas_rebuilt >= 1, "{strategy}: {report:?}");
            let after = eng.run(&q).unwrap();
            assert_eq!(
                before.selection, after.selection,
                "{strategy} (corruption: {}): maintenance changed the selection",
                plan.is_some()
            );
            assert_eq!(before.nhits, after.nhits);
            assert_eq!(
                after.selection.iter_coords().collect::<Vec<_>>(),
                naive_hits(&data[..PREFIX + APPENDS * CHUNK]),
                "{strategy}"
            );
        }
    }
}

/// Streaming ingest maintains the region directory and the joint-bounds
/// grid *incrementally* — the tail region's bounds are updated and each
/// sealed new region inserted on append, and the joint grid is extended
/// to the grown common extent, all without a rebuild — and conjunctive
/// queries routed through the directory stay sealed-consistent at every
/// extent.
#[test]
fn directory_and_joint_bounds_follow_streaming_appends() {
    let total = PREFIX + APPENDS * CHUNK;
    let energy = gen(total);
    let x: Vec<f32> = (0..total).map(|i| 332.0 * i as f32 / total as f32).collect();
    let build_pair = |extent: usize| {
        let odms = Arc::new(Odms::new(4));
        let c = odms.create_container("ingest");
        let e = odms
            .import_array(c, "energy", TypedVec::Float(energy[..extent].to_vec()), &import_opts())
            .unwrap()
            .object;
        let xo = odms
            .import_array(c, "x", TypedVec::Float(x[..extent].to_vec()), &import_opts())
            .unwrap()
            .object;
        (odms, e, xo)
    };
    let (odms, e, xo) = build_pair(PREFIX);
    odms.register_joint_pair(e, xo).unwrap();
    let eng = engine(&odms, Strategy::Histogram, None);
    let q = PdcQuery::range_open(e, 2.1f32, 2.2f32)
        .and(PdcQuery::range_open(xo, 100.0f32, 200.0f32));

    for k in 0..=APPENDS {
        if k > 0 {
            let lo = PREFIX + (k - 1) * CHUNK;
            let hi = PREFIX + k * CHUNK;
            odms.append_array(e, &TypedVec::Float(energy[lo..hi].to_vec())).unwrap();
            odms.append_array(xo, &TypedVec::Float(x[lo..hi].to_vec())).unwrap();
        }
        let extent = PREFIX + k * CHUNK;
        // The directory tracked the append without a rebuild: it indexes
        // every region and its bounds agree with the (incrementally
        // maintained) region histograms.
        for obj in [e, xo] {
            let meta = odms.meta().get(obj).unwrap();
            let dir = odms.meta().directory(obj).expect("directory survives appends");
            assert!(dir.self_check(meta.num_regions()), "append {k}");
            let hists = odms.meta().region_histograms(obj).unwrap();
            for r in 0..meta.num_regions() {
                let h = &hists[r as usize];
                assert_eq!(
                    dir.region_bounds(r),
                    Some((h.min(), h.max())),
                    "append {k}, region {r}: directory bounds drifted from histograms"
                );
            }
        }
        // The joint grid extended to the grown common extent.
        let grid = odms.meta().joint_grid(e, xo).unwrap();
        assert_eq!(grid.covered(), extent as u64, "append {k}: joint coverage lags");
        assert!(grid.self_check(), "append {k}");
        // And the conjunctive query, routed through the directory, stays
        // sealed-consistent.
        let out = eng.run(&q).unwrap();
        let expect: Vec<u64> = (0..extent as u64)
            .filter(|&i| {
                let ev = energy[i as usize] as f64;
                let xv = x[i as usize] as f64;
                ev > 2.1 && ev < 2.2 && xv > 100.0 && xv < 200.0
            })
            .collect();
        assert_eq!(
            out.selection.iter_coords().collect::<Vec<_>>(),
            expect,
            "append {k}: interleaved directory-routed query disagrees with naive filter"
        );
        let (sealed, se, sx) = build_pair(extent);
        sealed.register_joint_pair(se, sx).unwrap();
        let seng = engine(&sealed, Strategy::Histogram, None);
        let sq = PdcQuery::range_open(se, 2.1f32, 2.2f32)
            .and(PdcQuery::range_open(sx, 100.0f32, 200.0f32));
        let sout = seng.run(&sq).unwrap();
        assert_eq!(out.selection, sout.selection, "append {k}: interleaved != sealed");
    }
}

/// A real two-thread schedule: a writer streams appends while a reader
/// runs the same range query in a loop. Every outcome the reader sees
/// must carry a registered extent and match the sealed baseline at that
/// extent — queries are linearized at plan time, never torn mid-append.
#[test]
fn concurrent_ingest_reader_sees_sealed_consistent_snapshots() {
    let data = Arc::new(gen(PREFIX + APPENDS * CHUNK));
    for strategy in [Strategy::Histogram, Strategy::Adaptive] {
        let (odms, obj) = sealed_world(&data[..PREFIX]);
        let eng = engine(&odms, strategy, None);
        let q = query(obj);

        let writer_odms = Arc::clone(&odms);
        let writer_data = Arc::clone(&data);
        let writer = std::thread::spawn(move || {
            for k in 0..APPENDS {
                let lo = PREFIX + k * CHUNK;
                let hi = PREFIX + (k + 1) * CHUNK;
                writer_odms
                    .append_array(obj, &TypedVec::Float(writer_data[lo..hi].to_vec()))
                    .unwrap();
                std::thread::yield_now();
            }
            writer_odms.run_deferred_maintenance().unwrap();
        });

        let mut observed: Vec<(u64, Vec<u64>)> = Vec::new();
        while !writer.is_finished() {
            let out = eng.run(&q).unwrap();
            observed.push((out.planned_elements, out.selection.iter_coords().collect()));
        }
        writer.join().unwrap();
        // One more after the writer is done: the full extent.
        let out = eng.run(&q).unwrap();
        observed.push((out.planned_elements, out.selection.iter_coords().collect()));
        assert_eq!(out.planned_elements, (PREFIX + APPENDS * CHUNK) as u64);

        let valid_extents: Vec<u64> =
            (0..=APPENDS).map(|k| (PREFIX + k * CHUNK) as u64).collect();
        for (extent, coords) in &observed {
            assert!(
                valid_extents.contains(extent),
                "{strategy}: torn extent {extent} observed mid-append"
            );
            assert_eq!(
                coords,
                &naive_hits(&data[..*extent as usize]),
                "{strategy} at extent {extent}: concurrent reader saw wrong hits"
            );
        }
    }
}
