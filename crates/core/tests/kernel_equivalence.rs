//! The typed scan-kernel layer is a pure wall-clock optimization: with
//! kernels toggled off (the scalar reference path) or the chunk-parallel
//! path forced on/off via `scan_threads`, every strategy must return a
//! bit-identical `Selection` and the same simulated cost accounting.

use pdc_odms::{ImportOptions, Odms};
use pdc_query::{EngineConfig, PdcQuery, QueryEngine, QueryOutcome, Strategy};
use pdc_types::{ObjectId, QueryOp, TypedVec};
use std::sync::Arc;

const ALL_STRATEGIES: [Strategy; 4] = [
    Strategy::FullScan,
    Strategy::Histogram,
    Strategy::HistogramIndex,
    Strategy::SortedHistogram,
];

struct World {
    odms: Arc<Odms>,
    energy: ObjectId,
    x: ObjectId,
}

/// Regions of 2 MiB (512 Ki floats) over 600k elements: large enough
/// that the chunk-parallel kernel path actually engages (a region must
/// hold at least 2 × PARALLEL_MIN_CHUNK = 128 Ki elements).
fn build_world() -> World {
    let n = 600_000usize;
    let odms = Arc::new(Odms::new(8));
    let c = odms.create_container("kernels");
    let energy: Vec<f32> = (0..n)
        .map(|i| {
            let base = ((i as f32 * 0.37).sin() + 1.0) * 0.9;
            if (3000..3400).contains(&(i % 8000)) {
                2.0 + ((i * 31) % 160) as f32 / 100.0
            } else {
                base
            }
        })
        .collect();
    let x: Vec<f32> = (0..n).map(|i| ((i as f32 * 0.011).cos() + 1.0) * 166.0).collect();
    let opts = ImportOptions {
        region_bytes: 2 << 20,
        build_index: true,
        build_sorted: true,
        ..Default::default()
    };
    let energy =
        odms.import_array(c, "energy", TypedVec::Float(energy), &opts).unwrap().object;
    let x = odms.import_array(c, "x", TypedVec::Float(x), &opts).unwrap().object;
    World { odms, energy, x }
}

fn run_with(
    world: &World,
    strategy: Strategy,
    scan_kernels: bool,
    scan_threads: u32,
    q: &PdcQuery,
) -> QueryOutcome {
    let eng = QueryEngine::new(
        Arc::clone(&world.odms),
        EngineConfig {
            strategy,
            num_servers: 4,
            scan_kernels,
            scan_threads,
            ..Default::default()
        },
    );
    eng.run(q).unwrap()
}

fn assert_equivalent(reference: &QueryOutcome, got: &QueryOutcome, label: &str) {
    assert_eq!(got.nhits, reference.nhits, "{label}: nhits");
    assert_eq!(
        got.selection.runs(),
        reference.selection.runs(),
        "{label}: selection runs must be bit-identical"
    );
    assert_eq!(got.work, reference.work, "{label}: work counters");
    assert_eq!(got.breakdown, reference.breakdown, "{label}: cost breakdown");
    assert_eq!(got.io, reference.io, "{label}: io counters");
    assert_eq!(got.elapsed, reference.elapsed, "{label}: simulated elapsed");
}

#[test]
fn kernels_and_threads_change_nothing_observable() {
    let world = build_world();
    let queries = [
        PdcQuery::range_open(world.energy, 2.1f32, 2.2f32),
        PdcQuery::create(world.energy, QueryOp::Gt, 2.0f32)
            .and(PdcQuery::range_open(world.x, 100.0f32, 200.0f32)),
    ];
    for q in &queries {
        for strategy in ALL_STRATEGIES {
            // Scalar reference path (kernels off) is the ground truth.
            let reference = run_with(&world, strategy, false, 0, q);
            assert!(reference.nhits > 0, "{strategy:?}: test query must hit");
            for (kernels, threads) in [(true, 1), (true, 0), (true, 4), (false, 1)] {
                let got = run_with(&world, strategy, kernels, threads, q);
                assert_equivalent(
                    &reference,
                    &got,
                    &format!("{strategy:?} kernels={kernels} threads={threads}"),
                );
            }
        }
    }
}
