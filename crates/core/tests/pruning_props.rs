//! Soundness and bit-identity properties of the hierarchical region
//! directory and the cross-variable joint-bounds pruning.
//!
//! Three invariants:
//!
//! 1. **Candidate soundness**: the directory's candidate set contains
//!    every region that truly holds a match, and admits nothing the 1-D
//!    histogram bounds test would kill (candidates == the exact
//!    bounds-overlap set).
//! 2. **Bit-identity**: selections *and* every simulated cost (elapsed,
//!    per-server times, I/O, work, breakdown, integrity) are identical
//!    with the directory on or off, for all five strategies, on clean
//!    pools and under seeded faults plus ≤20% corruption.
//! 3. **Joint invariance**: registering a joint-bounds grid kills
//!    additional candidate regions but never changes the selection.

use pdc_odms::{ImportOptions, Odms};
use pdc_query::{EngineConfig, PdcQuery, QueryEngine, QueryOutcome, Strategy};
use pdc_server::{CorruptionSpec, FaultPlan};
use pdc_types::{Interval, ObjectId, QueryOp, TypedVec};
use std::sync::Arc;

const ALL_STRATEGIES: [Strategy; 5] = [
    Strategy::FullScan,
    Strategy::Histogram,
    Strategy::HistogramIndex,
    Strategy::SortedHistogram,
    Strategy::Adaptive,
];

const N: usize = 40_000;

/// Deterministic VPIC-flavoured world: `x` sweeps [0, 332] monotonically
/// (so each region covers a narrow spatial window), and the energetic
/// tail (> 2.0) appears in a periodic cluster regardless of `x` — which
/// is exactly the correlation structure that makes independent 1-D
/// pruning admit tail regions a joint (energy, x) grid can kill.
struct World {
    odms: Arc<Odms>,
    energy: ObjectId,
    x: ObjectId,
    raw_energy: Vec<f32>,
    raw_x: Vec<f32>,
}

fn build_world() -> World {
    let odms = Arc::new(Odms::new(8));
    let c = odms.create_container("vpic");
    let energy: Vec<f32> = (0..N)
        .map(|i| {
            if (3000..3400).contains(&(i % 8000)) {
                2.0 + ((i * 31) % 160) as f32 / 100.0 // tail [2.0, 3.6)
            } else {
                ((i as f32 * 0.37).sin() + 1.0) * 0.9 // bulk [0, 1.8]
            }
        })
        .collect();
    let x: Vec<f32> = (0..N).map(|i| 332.0 * i as f32 / N as f32).collect();
    let opts = ImportOptions {
        region_bytes: 4096,
        build_index: true,
        build_sorted: true,
        ..Default::default()
    };
    let energy_id =
        odms.import_array(c, "energy", TypedVec::Float(energy.clone()), &opts).unwrap().object;
    let x_id = odms.import_array(c, "x", TypedVec::Float(x.clone()), &opts).unwrap().object;
    World { odms, energy: energy_id, x: x_id, raw_energy: energy, raw_x: x }
}

fn engine(world: &World, strategy: Strategy, use_directory: bool, plan: Option<FaultPlan>) -> QueryEngine {
    QueryEngine::new(
        Arc::clone(&world.odms),
        EngineConfig {
            strategy,
            num_servers: 4,
            fault_plan: plan,
            use_directory,
            ..Default::default()
        },
    )
}

/// The conjunctive window query: tail energy inside a spatial slab.
fn window_query(world: &World) -> PdcQuery {
    PdcQuery::create(world.energy, QueryOp::Gt, 2.0f32)
        .and(PdcQuery::range_open(world.x, 100.0f32, 200.0f32))
}

fn assert_outcomes_identical(a: &QueryOutcome, b: &QueryOutcome, tag: &str) {
    assert_eq!(a.selection, b.selection, "{tag}: selection");
    assert_eq!(a.nhits, b.nhits, "{tag}: nhits");
    assert_eq!(a.elapsed, b.elapsed, "{tag}: elapsed");
    assert_eq!(a.per_server, b.per_server, "{tag}: per-server times");
    assert_eq!(a.io, b.io, "{tag}: io counters");
    assert_eq!(a.work, b.work, "{tag}: work counters");
    assert_eq!(a.breakdown, b.breakdown, "{tag}: cost breakdown");
    assert_eq!(a.failed_servers, b.failed_servers, "{tag}: failed servers");
    assert_eq!(a.retry_rounds, b.retry_rounds, "{tag}: retry rounds");
    assert_eq!(a.integrity, b.integrity, "{tag}: integrity counters");
}

#[test]
fn directory_candidates_cover_matches_and_respect_1d_bounds() {
    let world = build_world();
    let meta = world.odms.meta().get(world.energy).unwrap();
    let dir = world.odms.meta().directory(world.energy).expect("import builds a directory");
    let hists = world.odms.meta().region_histograms(world.energy).unwrap();
    for iv in [
        Interval::from_op(QueryOp::Gt, 2.0),
        Interval::open(2.1, 2.2),
        Interval::open(0.0, 0.5),
        Interval::from_op(QueryOp::Lt, -10.0), // empty everywhere
        Interval::from_op(QueryOp::Gt, -1e9),  // everything
    ] {
        let probe = dir.probe(&iv);
        for r in 0..meta.num_regions() {
            let span = meta.region_span(r);
            let truly_matches = (span.offset..span.offset + span.len)
                .any(|i| iv.contains(world.raw_energy[i as usize] as f64));
            let candidate = probe.candidates.binary_search(&r).is_ok();
            if truly_matches {
                assert!(candidate, "region {r} holds a match of {iv} but was not admitted");
            }
            if !candidate {
                // Non-candidates are exactly the regions the 1-D bounds
                // test kills: the histogram estimate is provably zero.
                let est = hists[r as usize].estimate_hits(&iv);
                assert_eq!(est.upper, 0, "region {r} skipped for {iv} but 1-D admits it");
            }
        }
        assert!(probe.bins_probed as usize <= dir.num_bins().max(1), "{iv}");
    }
}

#[test]
fn directory_on_off_bit_identical_all_strategies() {
    for strategy in ALL_STRATEGIES {
        // Separate worlds per engine: cache state must not leak between
        // the compared runs.
        let (won, woff) = (build_world(), build_world());
        let on = engine(&won, strategy, true, None);
        let off = engine(&woff, strategy, false, None);
        let (qon, qoff) = (window_query(&won), window_query(&woff));
        let a = on.run(&qon).unwrap();
        let b = off.run(&qoff).unwrap();
        assert!(a.nhits > 0, "{strategy}: window query must hit");
        assert_outcomes_identical(&a, &b, &format!("{strategy} cold"));
        // Warm (cached) runs stay identical too.
        let a2 = on.run(&qon).unwrap();
        let b2 = off.run(&qoff).unwrap();
        assert_outcomes_identical(&a2, &b2, &format!("{strategy} warm"));
    }
}

#[test]
fn directory_on_off_bit_identical_under_faults_and_corruption() {
    let plan = || {
        FaultPlan::seeded(11, 4).with_corruption(CorruptionSpec::new(0.2, 0.2, 42))
    };
    for strategy in ALL_STRATEGIES {
        let (won, woff) = (build_world(), build_world());
        // A joint pair in play exercises the grid's corruption/rebuild
        // lane as well.
        won.odms.register_joint_pair(won.energy, won.x).unwrap();
        woff.odms.register_joint_pair(woff.energy, woff.x).unwrap();
        let on = engine(&won, strategy, true, Some(plan()));
        let off = engine(&woff, strategy, false, Some(plan()));
        let (qon, qoff) = (window_query(&won), window_query(&woff));
        let a = on.run(&qon).unwrap();
        let b = off.run(&qoff).unwrap();
        assert_outcomes_identical(&a, &b, &format!("{strategy} corrupt"));
        assert!(
            a.integrity.any(),
            "{strategy}: 20% corruption must surface integrity work"
        );
    }
}

#[test]
fn joint_registration_never_changes_the_selection() {
    let baseline = {
        let w = build_world();
        engine(&w, Strategy::Histogram, true, None).run(&window_query(&w)).unwrap()
    };
    for strategy in ALL_STRATEGIES {
        for use_directory in [true, false] {
            let w = build_world();
            w.odms.register_joint_pair(w.energy, w.x).unwrap();
            let eng = engine(&w, strategy, use_directory, None);
            let out = eng.run(&window_query(&w)).unwrap();
            assert_eq!(
                out.selection, baseline.selection,
                "{strategy} use_directory={use_directory}: joint bounds changed hits"
            );
        }
    }
    // And the joint-killed regions are provably empty under the full
    // conjunction: the naive filter agrees with the baseline.
    let w = build_world();
    let expect: Vec<u64> = (0..N as u64)
        .filter(|&i| {
            w.raw_energy[i as usize] > 2.0
                && w.raw_x[i as usize] > 100.0
                && w.raw_x[i as usize] < 200.0
        })
        .collect();
    assert_eq!(baseline.selection.iter_coords().collect::<Vec<_>>(), expect);
}

#[test]
fn joint_bounds_kill_regions_independent_pruning_admits() {
    let w = build_world();
    w.odms.register_joint_pair(w.energy, w.x).unwrap();
    let eng = engine(&w, Strategy::Histogram, true, None);
    let (_, plan) = eng.explain(&window_query(&w)).unwrap();
    let stats = plan
        .directory
        .iter()
        .find(|d| d.object == w.energy)
        .expect("energy constraint carries directory stats");
    // The tail cluster recurs every 8000 elements, so 1-D energy bounds
    // admit tail regions across the whole x sweep; the joint grid kills
    // the ones outside the x window.
    assert!(stats.killed_joint > 0, "joint bounds killed nothing: {stats:?}");
    assert!(
        stats.admitted < stats.regions_total - stats.killed_1d,
        "joint pruning must shrink the 1-D admitted set: {stats:?}"
    );
    assert_eq!(
        stats.killed_1d + stats.killed_joint + stats.admitted,
        stats.regions_total,
        "{stats:?}"
    );
}
