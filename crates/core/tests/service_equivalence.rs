//! The tentpole invariant of the multi-tenant service loop:
//! [`QueryEngine::serve`] is **scheduling only**. Admission control,
//! weighted-fair dispatch, deferral, and continuous shared-scan batching
//! decide *when* each query runs — never *what* it computes or charges.
//! For every admitted query, the `Selection` and simulated
//! `CostBreakdown` must be bit-identical to executing the service's
//! dispatch sequence through plain [`QueryEngine::run`] on an
//! identically-configured engine (warm-cache accounting is dispatch-order
//! dependent, so the oracle replays the same order). Verified across
//! tenant mixes and interleavings, under seeded faults, 20% corruption,
//! k≥2 replication, and an out-of-core spill budget; plus a
//! deterministic-given-seed scheduler-trace test and the late-join
//! continuous-batching assertion.

use pdc_odms::{ImportOptions, Odms};
use pdc_query::{
    Arrival, EngineConfig, PdcQuery, QueryEngine, QueryOutcome, ServiceConfig, ServiceReport,
    Strategy, TenantSpec, TraceEvent,
};
use pdc_server::{CorruptionSpec, FaultPlan};
use pdc_storage::SimDuration;
use pdc_types::{NdRegion, ObjectId, QueryOp, TypedVec};
use std::path::PathBuf;
use std::sync::Arc;

const ALL_STRATEGIES: [Strategy; 4] = [
    Strategy::FullScan,
    Strategy::Histogram,
    Strategy::HistogramIndex,
    Strategy::SortedHistogram,
];

struct TestWorld {
    odms: Arc<Odms>,
    energy: ObjectId,
    x: ObjectId,
}

/// Same VPIC-flavoured shape the batch suite uses; generation is
/// seed-free and exact, so twin builds are logically identical (needed
/// for the corruption comparison, which mutates the store).
fn build_world(n: usize, region_bytes: u64) -> TestWorld {
    let odms = Arc::new(Odms::new(8));
    let c = odms.create_container("vpic");
    let energy: Vec<f32> = (0..n)
        .map(|i| {
            let base = ((i as f32 * 0.37).sin() + 1.0) * 0.9;
            if (3000..3400).contains(&(i % 8000)) {
                2.0 + ((i * 31) % 160) as f32 / 100.0
            } else {
                base
            }
        })
        .collect();
    let x: Vec<f32> = (0..n).map(|i| ((i as f32 * 0.011).cos() + 1.0) * 166.0).collect();
    let opts = ImportOptions {
        region_bytes,
        build_index: true,
        build_sorted: true,
        ..Default::default()
    };
    let e = odms.import_array(c, "energy", TypedVec::Float(energy), &opts).unwrap().object;
    let xo = odms.import_array(c, "x", TypedVec::Float(x), &opts).unwrap().object;
    TestWorld { odms, energy: e, x: xo }
}

fn engine_with(world: &TestWorld, strategy: Strategy, plan: Option<FaultPlan>) -> QueryEngine {
    QueryEngine::new(
        Arc::clone(&world.odms),
        EngineConfig { strategy, num_servers: 4, fault_plan: plan, ..Default::default() },
    )
}

/// Field-by-field equality of two outcomes (everything simulated).
fn assert_outcomes_identical(a: &QueryOutcome, b: &QueryOutcome, ctx: &str) {
    assert_eq!(a.nhits, b.nhits, "{ctx}: nhits");
    assert_eq!(a.selection, b.selection, "{ctx}: selection");
    assert_eq!(a.elapsed, b.elapsed, "{ctx}: elapsed");
    assert_eq!(a.per_server, b.per_server, "{ctx}: per-server times");
    assert_eq!(a.io, b.io, "{ctx}: io counters");
    assert_eq!(a.work, b.work, "{ctx}: work counters");
    assert_eq!(a.breakdown, b.breakdown, "{ctx}: cost breakdown");
    assert_eq!(a.sorted_hint, b.sorted_hint, "{ctx}: sorted hint");
    assert_eq!(a.failed_servers, b.failed_servers, "{ctx}: failed servers");
    assert_eq!(a.retry_rounds, b.retry_rounds, "{ctx}: retry rounds");
    assert_eq!(a.integrity, b.integrity, "{ctx}: integrity counters");
}

/// The evaluator-coverage query pool: repeats, shifted ranges, a
/// conjunction, a disjunction, a spatial constraint.
fn query_pool(world: &TestWorld) -> Vec<PdcQuery> {
    vec![
        PdcQuery::range_open(world.energy, 2.1f32, 2.2f32),
        PdcQuery::range_open(world.energy, 2.1f32, 2.2f32),
        PdcQuery::range_open(world.energy, 2.15f32, 2.3f32),
        PdcQuery::create(world.energy, QueryOp::Gt, 2.0f32)
            .and(PdcQuery::range_open(world.x, 100.0f32, 200.0f32)),
        PdcQuery::create(world.energy, QueryOp::Lt, 0.1f32)
            .or(PdcQuery::create(world.energy, QueryOp::Gt, 3.0f32)),
        PdcQuery::range_open(world.energy, 2.1f32, 2.2f32)
            .set_region(NdRegion::one_d(5_000, 9_000)),
    ]
}

/// Three tenants with generous budgets: every arrival admits directly,
/// so the mix exercises fair dispatch and continuous batching without
/// deferrals.
fn open_tenants() -> Vec<TenantSpec> {
    vec![
        TenantSpec::new("alice", 1, SimDuration::from_secs_f64(1e6), 64),
        TenantSpec::new("bob", 2, SimDuration::from_secs_f64(1e6), 64),
        TenantSpec::new("carol", 1, SimDuration::from_secs_f64(1e6), 64),
    ]
}

/// A deterministic interleaved arrival mix: the query pool dealt
/// round-robin across tenants, with a burst at t=0 and staggered tails
/// (so the loop sees simultaneous arrivals, queueing, and idle gaps).
fn mixed_arrivals(world: &TestWorld, tenants: &[TenantSpec], copies: usize) -> Vec<Arrival> {
    let pool = query_pool(world);
    let mut arrivals = Vec::new();
    for c in 0..copies {
        for (i, q) in pool.iter().enumerate() {
            let k = c * pool.len() + i;
            arrivals.push(Arrival {
                // Burst at 0, then strides of 150us with per-tenant jitter.
                at: if k < 4 {
                    SimDuration::ZERO
                } else {
                    SimDuration::from_micros((k as u64) * 150 + (k as u64 % 3) * 37)
                },
                tenant: tenants[k % tenants.len()].name.clone(),
                query: q.clone(),
            });
        }
    }
    arrivals
}

/// The oracle: replay the service's dispatch order sequentially through
/// `run()` on a fresh engine over `oracle_world`, and demand bit-identical
/// outcomes. (`oracle_world` is the same world for healthy runs, a twin
/// build when the fault plan mutates the store.)
fn assert_replay_identical(
    report: &ServiceReport,
    arrivals: &[Arrival],
    oracle: &QueryEngine,
    ctx: &str,
) {
    for (i, s) in report.served.iter().enumerate() {
        let solo = oracle.run(&arrivals[s.arrival_index].query).unwrap();
        assert_outcomes_identical(&solo, &s.outcome, &format!("{ctx}: dispatch {i} (seq {})", s.seq));
    }
}

fn serve_and_check(world: &TestWorld, strategy: Strategy, plan: Option<FaultPlan>) {
    let tenants = open_tenants();
    let cfg = ServiceConfig::new(tenants.clone());
    let arrivals = mixed_arrivals(world, &tenants, 2);

    let eng = engine_with(world, strategy, plan.clone());
    let report = eng.serve(&cfg, &arrivals).unwrap();
    assert_eq!(report.stats.submitted, arrivals.len() as u64);
    assert_eq!(report.stats.completed, arrivals.len() as u64, "{strategy}: open budgets reject nothing");
    assert_eq!(report.stats.rejected, 0);
    assert_eq!(report.served.len(), arrivals.len());

    let oracle = engine_with(world, strategy, plan);
    assert_replay_identical(&report, &arrivals, &oracle, &format!("{strategy}"));

    // Latency sanity: completion never precedes dispatch, dispatch never
    // precedes admission, admission never precedes arrival.
    for s in &report.served {
        assert!(s.admitted_at >= s.arrival);
        assert!(s.dispatched_at >= s.admitted_at);
        assert!(s.completed_at >= s.dispatched_at);
    }
}

#[test]
fn serve_matches_dispatch_order_replay_all_strategies() {
    let world = build_world(40_000, 8192);
    for strategy in ALL_STRATEGIES {
        serve_and_check(&world, strategy, None);
    }
}

#[test]
fn serve_matches_replay_under_seeded_faults() {
    let world = build_world(30_000, 8192);
    for strategy in [Strategy::Histogram, Strategy::HistogramIndex] {
        serve_and_check(&world, strategy, Some(FaultPlan::seeded(7, 4)));
    }
    serve_and_check(&world, Strategy::Histogram, Some(FaultPlan::kill_count(1, 4, 0xFA11)));
}

#[test]
fn serve_matches_replay_under_20pct_corruption() {
    // Corruption mutates the store, so service and oracle each get their
    // own deterministically-built twin world.
    for strategy in [Strategy::Histogram, Strategy::SortedHistogram] {
        let plan =
            FaultPlan::new().with_corruption(CorruptionSpec::new(0.2, 0.2, 0xC0FFEE));
        let world_a = build_world(25_000, 8192);
        let world_b = build_world(25_000, 8192);
        let tenants = open_tenants();
        let cfg = ServiceConfig::new(tenants.clone());
        let arrivals_a = mixed_arrivals(&world_a, &tenants, 1);
        let arrivals_b = mixed_arrivals(&world_b, &tenants, 1);

        let eng = engine_with(&world_a, strategy, Some(plan.clone()));
        let report = eng.serve(&cfg, &arrivals_a).unwrap();
        assert!(
            report.group.is_none(),
            "{strategy}: continuous batching must be disabled under corruption"
        );
        assert!(
            report.served.iter().any(|s| s.outcome.integrity.any()),
            "{strategy}: the corruption spec must actually damage something"
        );
        let oracle = engine_with(&world_b, strategy, Some(plan));
        // Replay the dispatch order against the twin world's arrivals
        // (same indices — the builds are identical).
        for (i, s) in report.served.iter().enumerate() {
            let solo = oracle.run(&arrivals_b[s.arrival_index].query).unwrap();
            assert_outcomes_identical(
                &solo,
                &s.outcome,
                &format!("{strategy} + corruption: dispatch {i}"),
            );
        }
    }
}

#[test]
fn serve_matches_replay_with_replication_and_spill() {
    fn spill_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("pdc_serveeq_{tag}_{}", std::process::id()))
    }
    // Spill mutates physical residency, so service and oracle get twin
    // worlds (residency never leaks into accounting, but twin worlds
    // keep the comparison airtight).
    let world_a = build_world(30_000, 8192);
    let world_b = build_world(30_000, 8192);
    let mk = |world: &TestWorld, tag: &str| {
        QueryEngine::new(
            Arc::clone(&world.odms),
            EngineConfig {
                strategy: Strategy::Histogram,
                num_servers: 4,
                replicas: 2,
                fault_plan: Some(FaultPlan::kill_count(1, 4, 0xFA11)),
                memory_budget: Some(96 * 1024),
                spill_dir: Some(spill_dir(tag)),
                block_cache_bytes: 32 * 1024,
                ..Default::default()
            },
        )
    };
    let tenants = open_tenants();
    let cfg = ServiceConfig::new(tenants.clone());
    let arrivals_a = mixed_arrivals(&world_a, &tenants, 1);
    let arrivals_b = mixed_arrivals(&world_b, &tenants, 1);

    let eng = mk(&world_a, "svc");
    let report = eng.serve(&cfg, &arrivals_a).unwrap();
    assert_eq!(report.stats.completed, arrivals_a.len() as u64);
    let oracle = mk(&world_b, "oracle");
    for (i, s) in report.served.iter().enumerate() {
        let solo = oracle.run(&arrivals_b[s.arrival_index].query).unwrap();
        assert_outcomes_identical(&solo, &s.outcome, &format!("replication+spill: dispatch {i}"));
    }
    for tag in ["svc", "oracle"] {
        let _ = std::fs::remove_dir_all(spill_dir(tag));
    }
}

#[test]
fn scheduler_trace_is_deterministic_given_the_schedule() {
    // Two identically-configured engines over twin worlds must produce
    // the *exact same* scheduler trace for the same arrival schedule —
    // every Arrive/Admit/Dispatch/GroupJoin/Complete event, timestamps
    // included. A different schedule must produce a different trace.
    let world_a = build_world(30_000, 8192);
    let world_b = build_world(30_000, 8192);
    let tenants = open_tenants();
    let cfg = ServiceConfig::new(tenants.clone());
    let arrivals_a = mixed_arrivals(&world_a, &tenants, 2);
    let arrivals_b = mixed_arrivals(&world_b, &tenants, 2);

    let ra = engine_with(&world_a, Strategy::Histogram, None).serve(&cfg, &arrivals_a).unwrap();
    let rb = engine_with(&world_b, Strategy::Histogram, None).serve(&cfg, &arrivals_b).unwrap();
    assert_eq!(ra.trace, rb.trace, "identical schedules must replay identical traces");
    assert!(ra.trace.windows(2).all(|w| w[0].at() <= w[1].at()), "trace must be time-ordered");

    // Perturb one arrival time: the trace must change.
    let mut arrivals_c = arrivals_b;
    let last = arrivals_c.len() - 1;
    arrivals_c[last].at += SimDuration::from_millis(50);
    let world_c = build_world(30_000, 8192);
    let arrivals_c: Vec<Arrival> = arrivals_c
        .iter()
        .enumerate()
        .map(|(i, a)| Arrival {
            at: a.at,
            tenant: a.tenant.clone(),
            query: mixed_arrivals(&world_c, &tenants, 2)[i].query.clone(),
        })
        .collect();
    let rc = engine_with(&world_c, Strategy::Histogram, None).serve(&cfg, &arrivals_c).unwrap();
    assert_ne!(ra.trace, rc.trace, "a perturbed schedule must alter the trace");
}

#[test]
fn late_arrival_joins_inflight_shared_scan_group() {
    // One early query opens the group; an identical query arrives while
    // the first is still being served. The late join must be visible in
    // the group stats and trace, and its predicates — already admitted
    // by the first member — must add zero new intervals.
    let world = build_world(40_000, 8192);
    let tenants = open_tenants();
    let cfg = ServiceConfig::new(tenants.clone());
    let q = PdcQuery::range_open(world.energy, 2.1f32, 2.2f32);
    let arrivals = vec![
        Arrival { at: SimDuration::ZERO, tenant: "alice".into(), query: q.clone() },
        // Arrives 1us later: the client is still mid-overhead on query 0,
        // so this joins the group the first dispatch opened.
        Arrival { at: SimDuration::from_micros(1), tenant: "bob".into(), query: q.clone() },
        Arrival { at: SimDuration::from_micros(2), tenant: "carol".into(), query: q },
    ];
    let eng = engine_with(&world, Strategy::Histogram, None);
    let report = eng.serve(&cfg, &arrivals).unwrap();
    let group = report.group.expect("continuous batching must be on");
    assert_eq!(group.members, 3);
    assert_eq!(group.admissions, 3, "one admission per dispatch");
    assert!(group.late_joins >= 2, "later dispatches must join the open group: {group:?}");
    assert!(group.prewarm_regions > 0, "the first admission must prewarm regions");

    let late_joins: Vec<_> = report
        .trace
        .iter()
        .filter_map(|e| match e {
            TraceEvent::GroupJoin { late: true, new_intervals, .. } => Some(*new_intervals),
            _ => None,
        })
        .collect();
    assert_eq!(late_joins.len(), 2, "trace must record the late joins");
    assert!(
        late_joins.iter().all(|&n| n == 0),
        "identical predicates must already be covered by the group: {late_joins:?}"
    );
    // And the invariant still holds.
    let oracle = engine_with(&world, Strategy::Histogram, None);
    assert_replay_identical(&report, &arrivals, &oracle, "late-join");
}

#[test]
fn admission_control_defers_and_rejects_as_typed_outcomes() {
    // A tight budget forces deferrals; a tiny deferral queue forces
    // rejections. Everything is accounted: submitted = completed +
    // rejected, deferred queries complete with bit-identical outcomes.
    let world = build_world(40_000, 8192);
    let flood_q = PdcQuery::create(world.energy, QueryOp::Gt, 0.0f32); // expensive: all regions
    let tenants = vec![
        TenantSpec::new("well", 1, SimDuration::from_secs_f64(1e6), 64),
        // Budget below two floods' estimate, queue of 2.
        TenantSpec::new("flood", 1, SimDuration::from_micros(1), 2),
    ];
    let cfg = ServiceConfig::new(tenants.clone());
    let mut arrivals = Vec::new();
    for k in 0..8u64 {
        arrivals.push(Arrival {
            at: SimDuration::from_micros(k),
            tenant: "flood".into(),
            query: flood_q.clone(),
        });
    }
    arrivals.push(Arrival {
        at: SimDuration::from_micros(3),
        tenant: "well".into(),
        query: PdcQuery::range_open(world.energy, 2.1f32, 2.2f32),
    });

    let eng = engine_with(&world, Strategy::Histogram, None);
    let report = eng.serve(&cfg, &arrivals).unwrap();
    let s = report.stats;
    assert_eq!(s.submitted, 9);
    assert!(s.deferrals > 0, "the tight budget must defer: {s:?}");
    assert!(s.rejected > 0, "the full deferral queue must reject: {s:?}");
    assert_eq!(
        s.completed + s.rejected,
        s.submitted,
        "no silent drops: every arrival completes or is rejected: {s:?}"
    );
    assert_eq!(report.rejected.len() as u64, s.rejected);
    assert!(
        report.served.iter().any(|q| q.was_deferred),
        "deferred queries must eventually dispatch"
    );
    // The well-behaved tenant is untouched by the flood's rejections.
    let well = report.tenant_summary("well").unwrap();
    assert_eq!(well.completed, 1);
    assert_eq!(well.rejected, 0);
    // Typed rejections carry the flood tenant's identity.
    assert!(report.rejected.iter().all(|r| r.tenant == 1));
    // And the invariant: everything that ran matches solo replay.
    let oracle = engine_with(&world, Strategy::Histogram, None);
    assert_replay_identical(&report, &arrivals, &oracle, "admission");
}

#[test]
fn serve_rejects_bad_configs_with_typed_errors() {
    let world = build_world(10_000, 8192);
    let eng = engine_with(&world, Strategy::Histogram, None);
    // No tenants.
    let empty = ServiceConfig::new(vec![]);
    assert!(matches!(
        eng.serve(&empty, &[]),
        Err(pdc_types::PdcError::InvalidQuery(_))
    ));
    // Unknown tenant name in an arrival.
    let cfg = ServiceConfig::new(open_tenants());
    let arrivals = vec![Arrival {
        at: SimDuration::ZERO,
        tenant: "mallory".into(),
        query: PdcQuery::range_open(world.energy, 2.1f32, 2.2f32),
    }];
    assert!(matches!(
        eng.serve(&cfg, &arrivals),
        Err(pdc_types::PdcError::InvalidQuery(_))
    ));
    // No arrivals at all is fine: an empty report.
    let report = eng.serve(&cfg, &[]).unwrap();
    assert_eq!(report.stats.submitted, 0);
    assert!(report.served.is_empty());
}
