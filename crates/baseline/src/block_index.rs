//! The **block index** comparator (paper §VIII, reference \[26\]):
//! "Block index is proposed to partition a dataset into fixed-size blocks
//! and record their minimum and maximum values. To speed up the data read
//! performance, each block with matching elements is read entirely to
//! avoid small non-contiguous access."
//!
//! It is the closest prior system to PDC-Query's histogram pruning — the
//! paper positions the global histogram as a strict improvement (richer
//! per-region statistics, selectivity-ordered multi-object planning).
//! Implementing it lets the ablation harness quantify that positioning:
//! min/max pruning alone vs. full-histogram pruning.

use pdc_storage::{CostModel, ReadPattern, SimDuration, WorkCounters};
use pdc_types::{Interval, Run, Selection};
use serde::{Deserialize, Serialize};

/// A min/max block index over one flat dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BlockIndex {
    block_elems: usize,
    /// Per-block `[min, max]`.
    ranges: Vec<(f64, f64)>,
    n: usize,
}

/// Outcome of a block-index query.
#[derive(Debug, Clone)]
pub struct BlockIndexReport {
    /// Matching element coordinates.
    pub selection: Selection,
    /// Blocks whose `[min, max]` overlapped the interval (read wholly).
    pub blocks_read: usize,
    /// Total blocks.
    pub blocks_total: usize,
    /// Bytes read (whole blocks, f32 elements).
    pub bytes_read: u64,
    /// Simulated elapsed time for one reader.
    pub elapsed: SimDuration,
}

impl BlockIndex {
    /// Build over `values` with `block_elems` elements per block.
    pub fn build(values: &[f32], block_elems: usize) -> BlockIndex {
        assert!(block_elems > 0, "block size must be positive");
        let ranges = values
            .chunks(block_elems)
            .map(|chunk| {
                let mut lo = f64::INFINITY;
                let mut hi = f64::NEG_INFINITY;
                for &v in chunk {
                    let v = v as f64;
                    if v < lo {
                        lo = v;
                    }
                    if v > hi {
                        hi = v;
                    }
                }
                (lo, hi)
            })
            .collect();
        BlockIndex { block_elems, ranges, n: values.len() }
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.ranges.len()
    }

    /// Index metadata size: two f64 per block.
    pub fn size_bytes(&self) -> u64 {
        16 * self.ranges.len() as u64
    }

    /// Blocks whose `[min, max]` overlaps the interval.
    pub fn candidate_blocks(&self, interval: &Interval) -> Vec<usize> {
        self.ranges
            .iter()
            .enumerate()
            .filter(|(_, &(lo, hi))| interval.overlaps_range(lo, hi))
            .map(|(k, _)| k)
            .collect()
    }

    /// Evaluate a range query: read every candidate block wholly, scan
    /// it, and charge one reader's simulated time under `cost` with
    /// `concurrency` concurrent readers.
    pub fn query(
        &self,
        values: &[f32],
        interval: &Interval,
        cost: &CostModel,
        concurrency: u32,
    ) -> BlockIndexReport {
        assert_eq!(values.len(), self.n, "index built over a different dataset");
        let candidates = self.candidate_blocks(interval);
        let mut runs: Vec<Run> = Vec::new();
        let mut scanned = 0u64;
        for &b in &candidates {
            let start = b * self.block_elems;
            let end = (start + self.block_elems).min(self.n);
            scanned += (end - start) as u64;
            let mut open: Option<Run> = None;
            for (i, &v) in values[start..end].iter().enumerate() {
                if interval.contains(v as f64) {
                    match &mut open {
                        Some(r) => r.len += 1,
                        None => open = Some(Run::new((start + i) as u64, 1)),
                    }
                } else if let Some(r) = open.take() {
                    runs.push(r);
                }
            }
            if let Some(r) = open {
                runs.push(r);
            }
        }
        let bytes_read = scanned * 4;
        let io = cost.pfs.read_cost(
            bytes_read,
            candidates.len() as u64,
            concurrency,
            ReadPattern::Aggregated,
        );
        let cpu = cost
            .cpu
            .work_cost(&WorkCounters { elements_scanned: scanned, ..Default::default() });
        BlockIndexReport {
            selection: Selection::from_runs(runs),
            blocks_read: candidates.len(),
            blocks_total: self.num_blocks(),
            bytes_read,
            elapsed: io + cpu,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdc_types::QueryOp;

    fn sample(n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| {
                if (2000..2200).contains(&(i % 8000)) {
                    5.0 + (i % 40) as f32 * 0.01
                } else {
                    (i % 100) as f32 / 50.0
                }
            })
            .collect()
    }

    #[test]
    fn query_matches_naive_filter() {
        let values = sample(50_000);
        let idx = BlockIndex::build(&values, 1024);
        let cost = CostModel::cori_like();
        for iv in [
            Interval::open(5.0, 5.2),
            Interval::from_op(QueryOp::Lt, 0.5),
            Interval::closed(1.0, 1.5),
            Interval::from_op(QueryOp::Gt, 100.0),
        ] {
            let report = idx.query(&values, &iv, &cost, 8);
            let expect: Vec<u64> = (0..values.len() as u64)
                .filter(|&i| iv.contains(values[i as usize] as f64))
                .collect();
            assert_eq!(report.selection.iter_coords().collect::<Vec<_>>(), expect, "{iv}");
        }
    }

    #[test]
    fn clustered_values_prune_blocks() {
        let values = sample(80_000);
        let idx = BlockIndex::build(&values, 1000);
        let report = idx.query(&values, &Interval::open(5.0, 6.0), &CostModel::cori_like(), 8);
        assert!(report.blocks_read < report.blocks_total / 2, "{report:?}");
        assert!(report.bytes_read < 80_000 * 4 / 2);
    }

    #[test]
    fn min_max_cannot_prune_straddled_blocks() {
        // One low and one high value per block: min/max straddles every
        // mid-range query — the weakness the histogram fixes.
        let values: Vec<f32> = (0..10_000).map(|i| if i % 2 == 0 { 0.0 } else { 10.0 }).collect();
        let idx = BlockIndex::build(&values, 500);
        let report = idx.query(&values, &Interval::open(4.0, 6.0), &CostModel::cori_like(), 8);
        assert_eq!(report.blocks_read, report.blocks_total);
        assert_eq!(report.selection.count(), 0);
    }

    #[test]
    fn index_size_is_tiny() {
        let values = sample(100_000);
        let idx = BlockIndex::build(&values, 1024);
        assert_eq!(idx.size_bytes(), 16 * idx.num_blocks() as u64);
        assert!(idx.size_bytes() < 4 * values.len() as u64 / 100);
    }

    #[test]
    #[should_panic(expected = "block size must be positive")]
    fn zero_block_size_panics() {
        BlockIndex::build(&[1.0], 0);
    }

    #[test]
    #[should_panic(expected = "different dataset")]
    fn mismatched_dataset_panics() {
        let idx = BlockIndex::build(&[1.0, 2.0], 1);
        idx.query(&[1.0], &Interval::ALL, &CostModel::cori_like(), 1);
    }
}
