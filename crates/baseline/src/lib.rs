//! # pdc-baseline
//!
//! The `HDF5-F` comparator (paper §VI): "a hand-optimized parallel code
//! using HDF5 to read data stored in HDF5 files and to perform a full scan
//! to obtain the query results".
//!
//! The baseline differs from PDC's full scan in its storage access
//! pattern, not its answer:
//!
//! * data lives in flat files with default striping — reads go out in
//!   chunk-sized requests with the flat-file placement penalty
//!   ([`pdc_storage::ReadPattern::FlatFile`]), which is how the paper's
//!   "PDC-F achieves up to 2× better performance over the HDF5-F ...
//!   because of the improvement from the initial data read" materializes;
//! * there is no metadata service — the BOSS experiment's metadata
//!   condition requires opening and inspecting **every** file
//!   ("a traversal of all H5BOSS files").

use pdc_storage::{CostModel, ReadPattern, SimDuration, WorkCounters};
use pdc_types::kernels::{self, ScanElem};
use pdc_types::Interval;
use serde::{Deserialize, Serialize};

pub mod block_index;
pub use block_index::{BlockIndex, BlockIndexReport};

/// The parallel HDF5 full-scan reader.
#[derive(Debug, Clone)]
pub struct Hdf5Baseline {
    /// Cost model shared with the PDC experiments.
    pub cost: CostModel,
    /// Number of MPI ranks (the paper uses 64 processes on 64 nodes).
    pub ranks: u32,
}

/// Outcome of a baseline scan.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct BaselineReport {
    /// Matching elements.
    pub nhits: u64,
    /// Simulated time to read the data from storage.
    pub read_elapsed: SimDuration,
    /// Simulated time to scan it.
    pub scan_elapsed: SimDuration,
    /// Bytes read.
    pub bytes_read: u64,
}

impl BaselineReport {
    /// Total elapsed time.
    pub fn total(&self) -> SimDuration {
        self.read_elapsed + self.scan_elapsed
    }
}

impl Hdf5Baseline {
    /// A baseline runner with the given model and rank count.
    pub fn new(cost: CostModel, ranks: u32) -> Self {
        Self { cost, ranks: ranks.max(1) }
    }

    /// Full-scan a conjunction over one or more variables. Every
    /// variable's file is read wholly; the scan tests every element
    /// against all intervals. Ranks split the arrays evenly; the report
    /// times the slowest (= largest) share.
    pub fn full_scan_conjunction(&self, vars: &[(&[f32], Interval)]) -> BaselineReport {
        assert!(!vars.is_empty(), "need at least one variable");
        let n = vars[0].0.len();
        for (v, _) in vars {
            assert_eq!(v.len(), n, "variables must have identical length");
        }
        // Real evaluation (exact hit count): lower each interval to native
        // f32 thresholds once, then AND the per-variable 64-element hit
        // masks and popcount. A partial final block is safe because all
        // variables share a length — the first AND zeroes the high bits.
        let bounds: Vec<(f32, f32)> = vars.iter().map(|(_, iv)| f32::lower(iv)).collect();
        let mut nhits = 0u64;
        let mut i = 0usize;
        while i < n {
            let take = (n - i).min(64);
            let mut m = u64::MAX;
            for ((v, _), &(lo, hi)) in vars.iter().zip(&bounds) {
                m &= kernels::block_mask(&v[i..i + take], lo, hi);
            }
            nhits += m.count_ones() as u64;
            i += take;
        }
        // Simulated cost of the slowest rank.
        let share = n.div_ceil(self.ranks as usize);
        let share_bytes = (share * 4 * vars.len()) as u64;
        let requests = self.cost.pfs.flat_requests(share_bytes);
        let read_elapsed =
            self.cost.pfs.read_cost(share_bytes, requests, self.ranks, ReadPattern::FlatFile);
        let work = WorkCounters {
            elements_scanned: (share * vars.len()) as u64,
            ..Default::default()
        };
        let scan_elapsed = self.cost.cpu.work_cost(&work);
        BaselineReport {
            nhits,
            read_elapsed,
            scan_elapsed,
            bytes_read: (n * 4 * vars.len()) as u64,
        }
    }

    /// The Fig. 5 baseline: to answer a metadata + data query, HDF5 must
    /// open every file, check its attributes, and scan the flux arrays of
    /// the matching files. `all_files` is the total file count;
    /// `matching_flux` holds the flux arrays of the files that satisfy
    /// the metadata condition.
    pub fn boss_traversal(
        &self,
        all_files: u64,
        matching_flux: &[Vec<f32>],
        interval: &Interval,
    ) -> BaselineReport {
        // Exact evaluation on the matching files.
        let mut nhits = 0u64;
        let mut matched_bytes = 0u64;
        for flux in matching_flux {
            matched_bytes += flux.len() as u64 * 4;
            nhits += kernels::count_slice(flux, interval);
        }
        // Traversal: every file costs one open (a metadata request) on
        // some rank; matching files additionally read their data.
        let opens_per_rank = all_files.div_ceil(self.ranks as u64);
        let open_cost = self.cost.pfs.request_latency * opens_per_rank;
        let share_bytes = matched_bytes.div_ceil(self.ranks as u64);
        let requests = (matching_flux.len() as u64).div_ceil(self.ranks as u64).max(1);
        let read_elapsed = open_cost
            + self.cost.pfs.read_cost(share_bytes, requests, self.ranks, ReadPattern::FlatFile);
        let scanned: u64 =
            matching_flux.iter().map(|f| f.len() as u64).sum::<u64>() / self.ranks as u64;
        let scan_elapsed = self.cost.cpu.work_cost(&WorkCounters {
            elements_scanned: scanned,
            ..Default::default()
        });
        BaselineReport {
            nhits,
            read_elapsed,
            scan_elapsed,
            bytes_read: matched_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdc_types::QueryOp;

    fn cost() -> CostModel {
        CostModel::cori_like()
    }

    fn sample(n: usize) -> Vec<f32> {
        (0..n).map(|i| ((i * 37) % 1000) as f32 / 100.0).collect()
    }

    #[test]
    fn full_scan_counts_exactly() {
        let v = sample(50_000);
        let iv = Interval::open(2.1, 2.2);
        let expect = v.iter().filter(|&&x| iv.contains(x as f64)).count() as u64;
        let b = Hdf5Baseline::new(cost(), 64);
        let report = b.full_scan_conjunction(&[(&v, iv)]);
        assert_eq!(report.nhits, expect);
        assert_eq!(report.bytes_read, 200_000);
        assert!(report.read_elapsed > SimDuration::ZERO);
    }

    #[test]
    fn conjunction_over_multiple_variables() {
        let a = sample(20_000);
        let b_var: Vec<f32> = (0..20_000).map(|i| (i % 100) as f32).collect();
        let iv_a = Interval::from_op(QueryOp::Gt, 5.0);
        let iv_b = Interval::open(10.0, 20.0);
        let expect = (0..20_000)
            .filter(|&i| iv_a.contains(a[i] as f64) && iv_b.contains(b_var[i] as f64))
            .count() as u64;
        let b = Hdf5Baseline::new(cost(), 8);
        let report = b.full_scan_conjunction(&[(&a, iv_a), (&b_var, iv_b)]);
        assert_eq!(report.nhits, expect);
        assert_eq!(report.bytes_read, 20_000 * 4 * 2);
    }

    #[test]
    fn more_ranks_reduce_elapsed() {
        let v = sample(1_000_000);
        let iv = Interval::open(0.0, 5.0);
        let t8 = Hdf5Baseline::new(cost(), 8).full_scan_conjunction(&[(&v, iv)]);
        let t64 = Hdf5Baseline::new(cost(), 64).full_scan_conjunction(&[(&v, iv)]);
        assert!(t64.total() < t8.total());
        assert_eq!(t8.nhits, t64.nhits);
    }

    #[test]
    fn boss_traversal_dominated_by_opens() {
        let flux: Vec<Vec<f32>> = (0..50).map(|_| sample(128)).collect();
        let iv = Interval::open(0.0, 5.0);
        let b = Hdf5Baseline::new(cost(), 8);
        let few_files = b.boss_traversal(100, &flux, &iv);
        let many_files = b.boss_traversal(100_000, &flux, &iv);
        assert_eq!(few_files.nhits, many_files.nhits);
        assert!(
            many_files.total() > few_files.total() * 10,
            "file traversal must dominate: {} vs {}",
            many_files.total(),
            few_files.total()
        );
    }

    #[test]
    fn boss_nhits_exact() {
        let flux = vec![vec![1.0f32, 3.0, 10.0], vec![2.0, 30.0, 4.0]];
        let iv = Interval::open(0.0, 5.0);
        let b = Hdf5Baseline::new(cost(), 4);
        let report = b.boss_traversal(10, &flux, &iv);
        assert_eq!(report.nhits, 4);
    }

    #[test]
    #[should_panic(expected = "identical length")]
    fn mismatched_lengths_panic() {
        let a = sample(10);
        let b_var = sample(11);
        Hdf5Baseline::new(cost(), 2).full_scan_conjunction(&[
            (&a, Interval::ALL),
            (&b_var, Interval::ALL),
        ]);
    }
}
