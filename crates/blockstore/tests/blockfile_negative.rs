//! Negative paths of the block file format: truncations, bit flips,
//! hostile index/footer fields, and garbage files must all surface as
//! typed errors — never a panic, never silently wrong data. Mirrors the
//! metadata layer's `persist_negative.rs` discipline for the out-of-core
//! spill files.

use pdc_blockstore::{write_raw, write_typed, BlockReader, Fnv1a};
use pdc_types::{PdcError, TypedVec};
use std::path::{Path, PathBuf};

fn tmp_dir(tag: &str) -> PathBuf {
    let thread = std::thread::current()
        .name()
        .unwrap_or("t")
        .replace(|c: char| !c.is_ascii_alphanumeric(), "_");
    let dir = std::env::temp_dir().join(format!(
        "pdc_blockneg_{tag}_{}_{thread}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn sample_typed() -> TypedVec {
    TypedVec::Float((0..3000).map(|i| ((i * 37) % 1000) as f32 / 8.0).collect())
}

/// Open + full decode; `Ok` only when every section validates.
fn try_read(path: &Path) -> Result<TypedVec, PdcError> {
    BlockReader::open(path)?.read_all_typed()
}

fn try_read_raw(path: &Path) -> Result<Vec<u8>, PdcError> {
    BlockReader::open(path)?.read_all_raw()
}

fn assert_typed_error(res: Result<(), PdcError>, what: &str) {
    match res {
        Err(PdcError::Codec(_)) | Err(PdcError::Storage(_)) => {}
        Err(other) => panic!("{what}: unexpected error kind {other:?}"),
        Ok(()) => panic!("{what}: damage went undetected"),
    }
}

#[test]
fn every_truncation_fails_typed() {
    let dir = tmp_dir("trunc");
    let good_path = dir.join("good.pbf");
    write_typed(&good_path, &sample_typed(), 256).unwrap();
    let good = std::fs::read(&good_path).unwrap();
    let cut_path = dir.join("cut.pbf");
    // Every prefix strictly shorter than the file is missing bytes of a
    // checksummed section (the footer magic sits at the very end), so no
    // truncation may decode. Walk a stride plus every section-boundary
    // neighborhood.
    let mut cuts: Vec<usize> = (0..good.len()).step_by(7).collect();
    for b in [0usize, 1, 23, 24, 25, good.len() - 25, good.len() - 24, good.len() - 1] {
        cuts.push(b);
    }
    for cut in cuts {
        std::fs::write(&cut_path, &good[..cut]).unwrap();
        assert_typed_error(try_read(&cut_path).map(|_| ()), &format!("truncation at {cut}"));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn every_bit_flip_is_detected() {
    let dir = tmp_dir("flip");
    let good_path = dir.join("good.pbf");
    write_typed(&good_path, &sample_typed(), 256).unwrap();
    let good = std::fs::read(&good_path).unwrap();
    let bad_path = dir.join("bad.pbf");
    // One flipped bit per byte position, rotating through the bit index
    // so all eight lanes get exercised across the file. Header, frame
    // fields, payloads, index entries, and the footer are each covered by
    // a checksum or a structural cross-check, so every flip must surface.
    for byte in 0..good.len() {
        let mut bad = good.clone();
        bad[byte] ^= 1u8 << (byte % 8);
        std::fs::write(&bad_path, &bad).unwrap();
        assert_typed_error(
            try_read(&bad_path).map(|_| ()),
            &format!("bit flip at byte {byte}"),
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn raw_file_bit_flips_are_detected() {
    let dir = tmp_dir("rawflip");
    let good_path = dir.join("good.pbf");
    let payload: Vec<u8> = (0..2048u32).map(|i| (i * 31 % 251) as u8).collect();
    write_raw(&good_path, &payload, 512).unwrap();
    assert_eq!(try_read_raw(&good_path).unwrap(), payload);
    let good = std::fs::read(&good_path).unwrap();
    let bad_path = dir.join("bad.pbf");
    for byte in (0..good.len()).step_by(3) {
        let mut bad = good.clone();
        bad[byte] ^= 1u8 << (byte % 8);
        std::fs::write(&bad_path, &bad).unwrap();
        assert_typed_error(
            try_read_raw(&bad_path).map(|_| ()),
            &format!("raw bit flip at byte {byte}"),
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Patch the header and/or index, recomputing the header/index checksum
/// so the damage reaches the structural validators instead of being
/// caught by the checksum (which `every_bit_flip_is_detected` covers).
fn repack_with_valid_fnv(bytes: &mut [u8]) {
    let len = bytes.len();
    let index_off = u64::from_le_bytes(bytes[len - 24..len - 16].try_into().unwrap()) as usize;
    let fnv = Fnv1a::new()
        .chain(&bytes[..24])
        .chain(&bytes[index_off..len - 24])
        .finish();
    bytes[len - 12..len - 4].copy_from_slice(&fnv.to_le_bytes());
}

#[test]
fn hostile_index_and_footer_fields_fail_closed() {
    let dir = tmp_dir("hostile");
    let good_path = dir.join("good.pbf");
    write_typed(&good_path, &sample_typed(), 256).unwrap();
    let good = std::fs::read(&good_path).unwrap();
    let len = good.len();
    let bad_path = dir.join("bad.pbf");

    // Footer index_off pointing at the header, past EOF, and to u64::MAX.
    for off in [0u64, 24, len as u64, u64::MAX] {
        let mut bad = good.clone();
        bad[len - 24..len - 16].copy_from_slice(&off.to_le_bytes());
        std::fs::write(&bad_path, &bad).unwrap();
        assert_typed_error(
            try_read(&bad_path).map(|_| ()),
            &format!("hostile index_off {off}"),
        );
    }

    // Index entry 0 aliased to block 1's offset, checksum made
    // consistent: the offset-tiling walk must reject the aliasing.
    {
        let index_off =
            u64::from_le_bytes(good[len - 24..len - 16].try_into().unwrap()) as usize;
        let entry1_off = u64::from_le_bytes(
            good[index_off + 12..index_off + 20].try_into().unwrap(),
        );
        let mut bad = good.clone();
        bad[index_off..index_off + 8].copy_from_slice(&entry1_off.to_le_bytes());
        repack_with_valid_fnv(&mut bad);
        std::fs::write(&bad_path, &bad).unwrap();
        assert_typed_error(try_read(&bad_path).map(|_| ()), "aliased index entry");
    }

    // Header total inflated with a consistent checksum: the footer block
    // count (and the index walk) must disagree.
    {
        let mut bad = good.clone();
        bad[12..20].copy_from_slice(&u64::MAX.to_le_bytes());
        repack_with_valid_fnv(&mut bad);
        std::fs::write(&bad_path, &bad).unwrap();
        assert_typed_error(try_read(&bad_path).map(|_| ()), "inflated header total");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn header_tampering_with_valid_checksum_fails_closed() {
    let dir = tmp_dir("header");
    let good_path = dir.join("good.pbf");
    write_typed(&good_path, &sample_typed(), 256).unwrap();
    let good = std::fs::read(&good_path).unwrap();
    let bad_path = dir.join("bad.pbf");
    // (byte offset in header, hostile value, label)
    let cases: &[(usize, u8, &str)] = &[
        (4, 0xEE, "unsupported format version"),
        (8, 7, "unknown payload kind"),
        (9, 0xEE, "unknown element tag"),
        (20, 0, "zero block size"),
    ];
    for &(off, val, what) in cases {
        let mut bad = good.clone();
        bad[off] = val;
        if off == 20 {
            bad[20..24].copy_from_slice(&0u32.to_le_bytes());
        }
        repack_with_valid_fnv(&mut bad);
        std::fs::write(&bad_path, &bad).unwrap();
        assert_typed_error(try_read(&bad_path).map(|_| ()), what);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn garbage_and_short_files_fail_typed() {
    let dir = tmp_dir("garbage");
    let p = dir.join("g.pbf");
    for bytes in [
        Vec::new(),
        vec![0u8; 10],
        vec![0xAB; 48],
        b"PDCB but then it all goes wrong, padding padding padding".to_vec(),
    ] {
        std::fs::write(&p, &bytes).unwrap();
        assert_typed_error(
            try_read(&p).map(|_| ()),
            &format!("{}-byte garbage file", bytes.len()),
        );
    }
    assert!(matches!(
        BlockReader::open(&dir.join("missing.pbf")),
        Err(PdcError::Storage(_))
    ));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn verify_all_agrees_with_full_decode() {
    let dir = tmp_dir("verify");
    let p = dir.join("v.pbf");
    let tv = sample_typed();
    write_typed(&p, &tv, 256).unwrap();
    let r = BlockReader::open(&p).unwrap();
    assert_eq!(r.verify_all().unwrap(), tv.size_bytes());
    let good = std::fs::read(&p).unwrap();
    // Flip one payload bit: verify_all must report it just like read.
    let mut bad = good.clone();
    bad[100] ^= 0x40;
    std::fs::write(&p, &bad).unwrap();
    let r = BlockReader::open(&p).unwrap();
    assert!(r.verify_all().is_err());
    let _ = std::fs::remove_dir_all(&dir);
}
