//! Property tests of the block-file roundtrip law: for every payload —
//! including NaN bit patterns, infinities, signed zeros, and denormals —
//! and every block size, `write` then `read` is the identity on the
//! byte image, whole-file and per-block reads agree, and `verify_all`
//! accepts exactly what decodes.

use pdc_blockstore::{write_raw, write_typed, BlockReader};
use pdc_types::TypedVec;
use proptest::prelude::*;
use std::path::PathBuf;

fn tmp_dir(tag: &str) -> PathBuf {
    let thread = std::thread::current()
        .name()
        .unwrap_or("t")
        .replace(|c: char| !c.is_ascii_alphanumeric(), "_");
    let dir = std::env::temp_dir()
        .join(format!("pdc_blockprops_{tag}_{}_{thread}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Raw bit patterns, so the generator hits NaNs (quiet and signalling,
/// arbitrary payload bits), ±inf, ±0, and denormals with real
/// probability instead of never.
fn f32_bits() -> impl Strategy<Value = u32> {
    prop_oneof![
        any::<u32>(),
        Just(f32::NAN.to_bits()),
        Just(f32::INFINITY.to_bits()),
        Just(f32::NEG_INFINITY.to_bits()),
        Just(0x8000_0000u32), // -0.0
        Just(0x0000_0001u32), // smallest denormal
        Just(0x7fc0_1234u32), // NaN with payload bits
    ]
}

fn f64_bits() -> impl Strategy<Value = u64> {
    prop_oneof![
        any::<u64>(),
        Just(f64::NAN.to_bits()),
        Just(f64::NEG_INFINITY.to_bits()),
        Just(0x8000_0000_0000_0000u64), // -0.0
        Just(0x7ff8_0000_dead_beefu64), // NaN with payload bits
    ]
}

/// Little-endian byte image of a typed payload.
fn byte_image(tv: &TypedVec) -> Vec<u8> {
    match tv {
        TypedVec::Float(v) => v.iter().flat_map(|x| x.to_le_bytes()).collect(),
        TypedVec::Double(v) => v.iter().flat_map(|x| x.to_le_bytes()).collect(),
        TypedVec::Int32(v) => v.iter().flat_map(|x| x.to_le_bytes()).collect(),
        TypedVec::UInt32(v) => v.iter().flat_map(|x| x.to_le_bytes()).collect(),
        TypedVec::Int64(v) => v.iter().flat_map(|x| x.to_le_bytes()).collect(),
        TypedVec::UInt64(v) => v.iter().flat_map(|x| x.to_le_bytes()).collect(),
    }
}

/// Bitwise equality: `PartialEq` on floats breaks down on NaN, so the
/// law is stated on byte images.
fn assert_bit_identical(a: &TypedVec, b: &TypedVec) {
    assert_eq!(a.pdc_type(), b.pdc_type());
    assert_eq!(byte_image(a), byte_image(b));
}

fn roundtrip_file(tag: &str, tv: &TypedVec, block_elems: u32) {
    let dir = tmp_dir(tag);
    let path = dir.join("roundtrip.pbf");
    let meta = write_typed(&path, tv, block_elems).unwrap();
    assert_eq!(meta.total, tv.len() as u64);

    let r = BlockReader::open(&path).unwrap();
    assert_bit_identical(&r.read_all_typed().unwrap(), tv);
    assert_eq!(r.verify_all().unwrap(), tv.size_bytes());

    // Per-block reads must tile the file exactly and concatenate back to
    // the whole payload.
    let mut seen = 0u64;
    for b in 0..r.n_blocks() {
        let (start, elems) = r.block_span(b);
        assert_eq!(start, seen, "block {b} must start where block {} ended", b.wrapping_sub(1));
        let block = r.read_typed_block(b).unwrap();
        assert_eq!(block.len(), elems as usize);
        assert_bit_identical(&block, &tv.slice(start as usize, elems as usize));
        seen += elems as u64;
    }
    assert_eq!(seen, tv.len() as u64);
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn float_files_roundtrip_bit_exact(
        bits in prop::collection::vec(f32_bits(), 0..2000),
        block_elems in 1u32..700,
    ) {
        let tv = TypedVec::Float(bits.into_iter().map(f32::from_bits).collect());
        roundtrip_file("f32", &tv, block_elems);
    }

    #[test]
    fn double_files_roundtrip_bit_exact(
        bits in prop::collection::vec(f64_bits(), 0..1200),
        block_elems in 1u32..500,
    ) {
        let tv = TypedVec::Double(bits.into_iter().map(f64::from_bits).collect());
        roundtrip_file("f64", &tv, block_elems);
    }

    #[test]
    fn integer_files_roundtrip_bit_exact(
        xs in prop::collection::vec(any::<u64>(), 0..1500),
        block_elems in 1u32..600,
    ) {
        // Exercise a narrow and a wide integer lane from one pool.
        let narrow = TypedVec::Int32(xs.iter().map(|&x| x as i32).collect());
        roundtrip_file("i32", &narrow, block_elems);
        let wide = TypedVec::UInt64(xs.clone());
        roundtrip_file("u64", &wide, block_elems);
    }

    #[test]
    fn raw_files_roundtrip_exact(
        bytes in prop::collection::vec(any::<u8>(), 0..4000),
        block_bytes in 1u32..900,
    ) {
        let dir = tmp_dir("raw");
        let path = dir.join("raw.pbf");
        write_raw(&path, &bytes, block_bytes).unwrap();
        let r = BlockReader::open(&path).unwrap();
        prop_assert_eq!(r.read_all_raw().unwrap(), bytes.clone());
        prop_assert_eq!(r.verify_all().unwrap(), bytes.len() as u64);
        let mut cat = Vec::new();
        for b in 0..r.n_blocks() {
            cat.extend(r.read_raw_block(b).unwrap());
        }
        prop_assert_eq!(cat, bytes);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
