//! Byte-budgeted cache of decoded blocks.
//!
//! Generalizes the per-server `RegionCache` LRU (`pdc-storage`) to
//! *admission + eviction* under a byte budget: a block larger than the
//! whole budget is never admitted, and inserting evicts
//! least-recently-used blocks until the new block fits. Keys are opaque
//! `(u64, u32, u32)` triples so the cache does not depend on `RegionId`
//! (the storage crate supplies `(object id, region index, block#)` —
//! collision-free, never hashed down).

use parking_lot::Mutex;
use pdc_types::value::TypedVec;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Cache key: an opaque region token (object id + region index) plus a
/// block number.
pub type BlockKey = (u64, u32, u32);

/// Cumulative cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlockCacheStats {
    /// Lookups that found the block.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Blocks evicted to make room.
    pub evictions: u64,
    /// Inserts rejected because the block exceeds the whole budget.
    pub rejected: u64,
}

impl BlockCacheStats {
    /// Hit rate in `[0, 1]`; 0 when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Inner {
    capacity_bytes: u64,
    used_bytes: u64,
    entries: HashMap<BlockKey, (Arc<TypedVec>, u64)>,
    recency: BTreeMap<u64, BlockKey>,
    tick: u64,
    stats: BlockCacheStats,
}

/// Thread-safe budgeted LRU of decoded blocks.
pub struct BlockCache {
    inner: Mutex<Inner>,
}

impl BlockCache {
    /// A cache holding at most `capacity_bytes` of decoded block bytes.
    pub fn new(capacity_bytes: u64) -> Self {
        BlockCache {
            inner: Mutex::new(Inner {
                capacity_bytes,
                used_bytes: 0,
                entries: HashMap::new(),
                recency: BTreeMap::new(),
                tick: 0,
                stats: BlockCacheStats::default(),
            }),
        }
    }

    /// Look up a decoded block, refreshing its recency.
    pub fn get(&self, key: BlockKey) -> Option<Arc<TypedVec>> {
        let mut g = self.inner.lock();
        g.tick += 1;
        let tick = g.tick;
        match g.entries.get_mut(&key) {
            Some((block, last)) => {
                let old = *last;
                *last = tick;
                let block = Arc::clone(block);
                g.recency.remove(&old);
                g.recency.insert(tick, key);
                g.stats.hits += 1;
                Some(block)
            }
            None => {
                g.stats.misses += 1;
                None
            }
        }
    }

    /// Insert a decoded block, evicting LRU entries until it fits.
    ///
    /// Admission control: a block larger than the entire budget is not
    /// admitted at all (it would only flush every other block).
    pub fn put(&self, key: BlockKey, block: Arc<TypedVec>) {
        let size = block.size_bytes();
        let mut g = self.inner.lock();
        if size > g.capacity_bytes {
            g.stats.rejected += 1;
            return;
        }
        if let Some((old, last)) = g.entries.remove(&key) {
            g.used_bytes -= old.size_bytes();
            g.recency.remove(&last);
        }
        while g.used_bytes + size > g.capacity_bytes {
            let Some((_, victim)) = g.recency.pop_first() else { break };
            if let Some((old, _)) = g.entries.remove(&victim) {
                g.used_bytes -= old.size_bytes();
                g.stats.evictions += 1;
            }
        }
        g.tick += 1;
        let tick = g.tick;
        g.used_bytes += size;
        g.entries.insert(key, (block, tick));
        g.recency.insert(tick, key);
    }

    /// Drop every block belonging to region `(object token, index)`
    /// (called when a region is rewritten, repaired, or removed).
    pub fn invalidate_region(&self, region: (u64, u32)) {
        let mut g = self.inner.lock();
        let victims: Vec<BlockKey> = g
            .entries
            .keys()
            .filter(|(o, r, _)| (*o, *r) == region)
            .copied()
            .collect();
        for key in victims {
            if let Some((old, last)) = g.entries.remove(&key) {
                g.used_bytes -= old.size_bytes();
                g.recency.remove(&last);
            }
        }
    }

    /// Bytes currently resident.
    pub fn used_bytes(&self) -> u64 {
        self.inner.lock().used_bytes
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> BlockCacheStats {
        self.inner.lock().stats
    }
}

impl std::fmt::Debug for BlockCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let g = self.inner.lock();
        f.debug_struct("BlockCache")
            .field("capacity_bytes", &g.capacity_bytes)
            .field("used_bytes", &g.used_bytes)
            .field("entries", &g.entries.len())
            .field("stats", &g.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(n: usize) -> Arc<TypedVec> {
        Arc::new(TypedVec::Double(vec![0.5; n]))
    }

    #[test]
    fn hit_miss_and_lru_eviction() {
        let c = BlockCache::new(3 * 80); // three 10-elem double blocks
        c.put((1, 0, 0), block(10));
        c.put((1, 1, 0), block(10));
        c.put((1, 2, 0), block(10));
        assert!(c.get((1, 0, 0)).is_some()); // refresh 0
        c.put((1, 3, 0), block(10)); // evicts (1,1), the LRU
        assert!(c.get((1, 1, 0)).is_none());
        assert!(c.get((1, 0, 0)).is_some());
        assert!(c.get((1, 3, 0)).is_some());
        let s = c.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 3);
    }

    #[test]
    fn oversized_blocks_are_rejected() {
        let c = BlockCache::new(100);
        c.put((7, 0, 0), block(1000));
        assert!(c.get((7, 0, 0)).is_none());
        assert_eq!(c.stats().rejected, 1);
        assert_eq!(c.used_bytes(), 0);
    }

    #[test]
    fn budget_is_respected() {
        let c = BlockCache::new(1000);
        for i in 0..50 {
            c.put((1, i, 0), block(12)); // 96 bytes each
            assert!(c.used_bytes() <= 1000, "over budget at insert {i}");
        }
        assert!(c.stats().evictions > 0);
    }

    #[test]
    fn reinsert_same_key_replaces() {
        let c = BlockCache::new(1000);
        c.put((1, 0, 0), block(10));
        c.put((1, 0, 0), block(12));
        assert_eq!(c.used_bytes(), 96);
        assert_eq!(c.get((1, 0, 0)).unwrap().len(), 12);
    }

    #[test]
    fn invalidate_region_drops_all_its_blocks() {
        let c = BlockCache::new(10_000);
        c.put((1, 0, 0), block(10));
        c.put((1, 0, 1), block(10));
        c.put((2, 0, 0), block(10));
        c.invalidate_region((1, 0));
        assert!(c.get((1, 0, 0)).is_none());
        assert!(c.get((1, 0, 1)).is_none());
        assert!(c.get((2, 0, 0)).is_some());
        assert_eq!(c.used_bytes(), 80);
    }

    #[test]
    fn hit_rate_reports() {
        let c = BlockCache::new(1000);
        c.put((1, 0, 0), block(4));
        c.get((1, 0, 0));
        c.get((1, 9, 0));
        assert!((c.stats().hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(BlockCacheStats::default().hit_rate(), 0.0);
    }
}
