//! Per-block lightweight compression for typed arrays and raw index bytes.
//!
//! All codecs are hand-rolled (the workspace builds offline against
//! `compat/` shims) and operate on the little-endian *byte representation*
//! of elements, so decoding is bit-exact — NaN payloads, signed zeros and
//! ±inf round-trip unchanged.
//!
//! Encodings (the `u8` tag stored in each block frame):
//!
//! * `0` **Raw** — little-endian element bytes, no transform.
//! * `1` **Shuffle** — byte-plane transpose (all byte 0s, then all byte
//!   1s, …) followed by PackBits RLE. HPC float data has near-constant
//!   exponent bytes and trailing-zero mantissa bytes, which the transpose
//!   turns into long runs.
//! * `2` **ForPack** — frame-of-reference: subtract the block minimum,
//!   bit-pack the offsets at the minimal width. Integers only.
//! * `3` **DeltaForPack** — consecutive deltas, then frame-of-reference
//!   bit-packing of the deltas. Wins on monotone sequences (timestamps,
//!   sorted replicas). Integers only.
//! * `4` **RleBytes** — PackBits over the raw bytes; fallback for `Raw`
//!   index payloads (bitmap segments are dominated by literal-word runs).
//!
//! The encoder tries every applicable encoding and keeps the smallest;
//! `Raw` is always applicable, so encoded size never exceeds raw size
//! plus the frame header.

use pdc_types::error::{PdcError, PdcResult};
use pdc_types::value::{PdcType, TypedVec};

/// Encoding tag: little-endian element bytes.
pub const ENC_RAW: u8 = 0;
/// Encoding tag: byte-shuffle + PackBits.
pub const ENC_SHUFFLE: u8 = 1;
/// Encoding tag: frame-of-reference bit-packing.
pub const ENC_FOR_PACK: u8 = 2;
/// Encoding tag: delta + frame-of-reference bit-packing.
pub const ENC_DELTA_FOR_PACK: u8 = 3;
/// Encoding tag: PackBits over raw bytes.
pub const ENC_RLE_BYTES: u8 = 4;
/// Encoding tag: doubles that are exactly `f32`-representable stored as
/// byte-shuffled + PackBits `f32` bit patterns (width reduction).
pub const ENC_F64_AS_F32: u8 = 5;

fn corrupt(msg: impl Into<String>) -> PdcError {
    PdcError::Codec(msg.into())
}

// ---------------------------------------------------------------------------
// PackBits run-length coding
// ---------------------------------------------------------------------------

/// PackBits-encode `src`.
///
/// Control byte `c < 128`: the next `c + 1` bytes are literals.
/// Control byte `c > 128`: the next byte repeats `257 - c` times.
/// `c == 128` is never emitted. Worst-case expansion is 1/128.
pub fn packbits_encode(src: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(src.len() / 4 + 8);
    let mut i = 0;
    let n = src.len();
    while i < n {
        // Measure the run starting at i.
        let b = src[i];
        let mut run = 1;
        while i + run < n && src[i + run] == b && run < 128 {
            run += 1;
        }
        if run >= 3 {
            out.push((257 - run) as u8);
            out.push(b);
            i += run;
            continue;
        }
        // Literal segment: scan forward until a run of >= 3 starts or we
        // hit the 128-literal packet limit.
        let lit_start = i;
        i += run;
        while i < n && (i - lit_start) < 128 {
            let b = src[i];
            let mut r = 1;
            while i + r < n && src[i + r] == b && r < 3 {
                r += 1;
            }
            if r >= 3 {
                break;
            }
            i += r;
        }
        let mut lit_len = i - lit_start;
        if lit_len > 128 {
            i -= lit_len - 128;
            lit_len = 128;
        }
        out.push((lit_len - 1) as u8);
        out.extend_from_slice(&src[lit_start..lit_start + lit_len]);
    }
    out
}

/// PackBits-decode `src` into exactly `expect` bytes.
pub fn packbits_decode(src: &[u8], expect: usize) -> PdcResult<Vec<u8>> {
    let mut out = Vec::with_capacity(expect);
    let mut i = 0;
    while i < src.len() {
        let c = src[i];
        i += 1;
        if c < 128 {
            let len = c as usize + 1;
            let end = i.checked_add(len).ok_or_else(|| corrupt("packbits: literal overflow"))?;
            if end > src.len() {
                return Err(corrupt("packbits: truncated literal packet"));
            }
            out.extend_from_slice(&src[i..end]);
            i = end;
        } else if c > 128 {
            if i >= src.len() {
                return Err(corrupt("packbits: truncated run packet"));
            }
            let count = 257 - c as usize;
            out.extend(std::iter::repeat_n(src[i], count));
            i += 1;
        } else {
            return Err(corrupt("packbits: reserved control byte 128"));
        }
        if out.len() > expect {
            return Err(corrupt(format!(
                "packbits: output overruns expected {expect} bytes"
            )));
        }
    }
    if out.len() != expect {
        return Err(corrupt(format!(
            "packbits: decoded {} bytes, expected {expect}",
            out.len()
        )));
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Byte-plane shuffle
// ---------------------------------------------------------------------------

/// Transpose `src` (n elements of `width` bytes, little-endian) into
/// byte planes: all byte-0s, then all byte-1s, …
fn shuffle_bytes(src: &[u8], width: usize) -> Vec<u8> {
    debug_assert_eq!(src.len() % width, 0);
    let n = src.len() / width;
    let mut out = vec![0u8; src.len()];
    for plane in 0..width {
        for e in 0..n {
            out[plane * n + e] = src[e * width + plane];
        }
    }
    out
}

/// Inverse of [`shuffle_bytes`].
fn unshuffle_bytes(src: &[u8], width: usize) -> Vec<u8> {
    debug_assert_eq!(src.len() % width, 0);
    let n = src.len() / width;
    let mut out = vec![0u8; src.len()];
    for plane in 0..width {
        for e in 0..n {
            out[e * width + plane] = src[plane * n + e];
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Bit-packing
// ---------------------------------------------------------------------------

/// Append `vals`, each truncated to `width` bits, LSB-first into `out`.
fn bitpack(vals: &[u64], width: u32, out: &mut Vec<u8>) {
    if width == 0 {
        return;
    }
    let mut acc: u64 = 0;
    let mut nbits: u32 = 0;
    for &v in vals {
        let v = if width == 64 { v } else { v & ((1u64 << width) - 1) };
        let mut rem = width;
        let mut cur = v;
        while rem > 0 {
            let take = (64 - nbits).min(rem);
            acc |= (cur & ones(take)) << nbits;
            nbits += take;
            cur = if take == 64 { 0 } else { cur >> take };
            rem -= take;
            if nbits == 64 {
                out.extend_from_slice(&acc.to_le_bytes());
                acc = 0;
                nbits = 0;
            }
        }
    }
    if nbits > 0 {
        let used = nbits.div_ceil(8) as usize;
        out.extend_from_slice(&acc.to_le_bytes()[..used]);
    }
}

#[inline]
fn ones(bits: u32) -> u64 {
    if bits == 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

/// Read `count` values of `width` bits each, LSB-first, from `src`.
fn bitunpack(src: &[u8], width: u32, count: usize) -> PdcResult<Vec<u64>> {
    if width == 0 {
        return Ok(vec![0u64; count]);
    }
    let need_bits = (count as u64).saturating_mul(width as u64);
    let need_bytes = need_bits.div_ceil(8);
    if (src.len() as u64) < need_bytes {
        return Err(corrupt(format!(
            "bitpack: need {need_bytes} bytes for {count} x {width}-bit values, have {}",
            src.len()
        )));
    }
    let mut out = Vec::with_capacity(count);
    let mut bitpos: u64 = 0;
    for _ in 0..count {
        let mut v: u64 = 0;
        let mut got: u32 = 0;
        while got < width {
            let byte = src[(bitpos / 8) as usize] as u64;
            let off = (bitpos % 8) as u32;
            let avail = 8 - off;
            let take = avail.min(width - got);
            let bits = (byte >> off) & ones(take);
            v |= bits << got;
            got += take;
            bitpos += take as u64;
        }
        out.push(v);
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Element <-> u64 bit mapping for frame-of-reference coding
// ---------------------------------------------------------------------------

/// Fixed-width element with an order-preserving (under wrapping
/// subtraction) mapping into the `u64` domain.
trait ForElem: Copy {
    fn to_bits64(self) -> u64;
    fn from_bits64(v: u64) -> Self;
}

impl ForElem for i32 {
    // Sign-extend so that for a >= b, to_bits64(a).wrapping_sub(to_bits64(b))
    // is the exact non-negative difference.
    fn to_bits64(self) -> u64 {
        self as i64 as u64
    }
    fn from_bits64(v: u64) -> Self {
        v as u32 as i32
    }
}
impl ForElem for u32 {
    fn to_bits64(self) -> u64 {
        self as u64
    }
    fn from_bits64(v: u64) -> Self {
        v as u32
    }
}
impl ForElem for i64 {
    fn to_bits64(self) -> u64 {
        self as u64
    }
    fn from_bits64(v: u64) -> Self {
        v as i64
    }
}
impl ForElem for u64 {
    fn to_bits64(self) -> u64 {
        self
    }
    fn from_bits64(v: u64) -> Self {
        v
    }
}

/// Frame-of-reference pack: `[min: 8B][width: 1B][packed offsets]`.
fn for_pack_bits(bits: &[u64]) -> Vec<u8> {
    let min = bits.iter().copied().min().unwrap_or(0);
    let offsets: Vec<u64> = bits.iter().map(|&b| b.wrapping_sub(min)).collect();
    let max_off = offsets.iter().copied().max().unwrap_or(0);
    let width = 64 - max_off.leading_zeros();
    let mut out = Vec::with_capacity(9 + (bits.len() * width as usize).div_ceil(8));
    out.extend_from_slice(&min.to_le_bytes());
    out.push(width as u8);
    bitpack(&offsets, width, &mut out);
    out
}

fn for_unpack_bits(src: &[u8], count: usize) -> PdcResult<Vec<u64>> {
    if src.len() < 9 {
        return Err(corrupt("for-pack: truncated header"));
    }
    let min = u64::from_le_bytes(src[..8].try_into().unwrap());
    let width = src[8] as u32;
    if width > 64 {
        return Err(corrupt(format!("for-pack: invalid bit width {width}")));
    }
    let offs = bitunpack(&src[9..], width, count)?;
    Ok(offs.into_iter().map(|o| min.wrapping_add(o)).collect())
}

/// Delta + frame-of-reference: `[first: 8B][for-packed deltas]`.
fn delta_for_pack_bits(bits: &[u64]) -> Vec<u8> {
    let first = bits.first().copied().unwrap_or(0);
    let deltas: Vec<u64> = bits
        .windows(2)
        .map(|w| w[1].wrapping_sub(w[0]))
        .collect();
    let mut out = Vec::with_capacity(8 + 9 + deltas.len());
    out.extend_from_slice(&first.to_le_bytes());
    out.extend_from_slice(&for_pack_bits(&deltas));
    out
}

fn delta_for_unpack_bits(src: &[u8], count: usize) -> PdcResult<Vec<u64>> {
    if count == 0 {
        return Ok(Vec::new());
    }
    if src.len() < 8 {
        return Err(corrupt("delta-for-pack: truncated header"));
    }
    let first = u64::from_le_bytes(src[..8].try_into().unwrap());
    let deltas = for_unpack_bits(&src[8..], count - 1)?;
    let mut out = Vec::with_capacity(count);
    let mut cur = first;
    out.push(cur);
    for d in deltas {
        cur = cur.wrapping_add(d);
        out.push(cur);
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Little-endian element bytes
// ---------------------------------------------------------------------------

macro_rules! le_bytes_of {
    ($xs:expr, $w:expr) => {{
        let mut out = Vec::with_capacity($xs.len() * $w);
        for v in $xs {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }};
}

/// The little-endian byte image of `tv[start..start+len]`.
pub fn le_bytes(tv: &TypedVec, start: usize, len: usize) -> Vec<u8> {
    match tv {
        TypedVec::Float(xs) => le_bytes_of!(&xs[start..start + len], 4),
        TypedVec::Double(xs) => le_bytes_of!(&xs[start..start + len], 8),
        TypedVec::Int32(xs) => le_bytes_of!(&xs[start..start + len], 4),
        TypedVec::UInt32(xs) => le_bytes_of!(&xs[start..start + len], 4),
        TypedVec::Int64(xs) => le_bytes_of!(&xs[start..start + len], 8),
        TypedVec::UInt64(xs) => le_bytes_of!(&xs[start..start + len], 8),
    }
}

macro_rules! vec_from_le {
    ($bytes:expr, $t:ty, $w:expr) => {{
        let mut out = Vec::with_capacity($bytes.len() / $w);
        for chunk in $bytes.chunks_exact($w) {
            out.push(<$t>::from_le_bytes(chunk.try_into().unwrap()));
        }
        out
    }};
}

fn typed_from_le(ty: PdcType, bytes: &[u8]) -> PdcResult<TypedVec> {
    let w = ty.size_bytes() as usize;
    if !bytes.len().is_multiple_of(w) {
        return Err(corrupt(format!(
            "decode: {} bytes not a multiple of element width {w}",
            bytes.len()
        )));
    }
    Ok(match ty {
        PdcType::Float => TypedVec::Float(vec_from_le!(bytes, f32, 4)),
        PdcType::Double => TypedVec::Double(vec_from_le!(bytes, f64, 8)),
        PdcType::Int32 => TypedVec::Int32(vec_from_le!(bytes, i32, 4)),
        PdcType::UInt32 => TypedVec::UInt32(vec_from_le!(bytes, u32, 4)),
        PdcType::Int64 => TypedVec::Int64(vec_from_le!(bytes, i64, 8)),
        PdcType::UInt64 => TypedVec::UInt64(vec_from_le!(bytes, u64, 8)),
    })
}

fn int_bits64(tv: &TypedVec, start: usize, len: usize) -> Option<Vec<u64>> {
    Some(match tv {
        TypedVec::Int32(xs) => xs[start..start + len].iter().map(|v| v.to_bits64()).collect(),
        TypedVec::UInt32(xs) => xs[start..start + len].iter().map(|v| v.to_bits64()).collect(),
        TypedVec::Int64(xs) => xs[start..start + len].iter().map(|v| v.to_bits64()).collect(),
        TypedVec::UInt64(xs) => xs[start..start + len].iter().map(|v| v.to_bits64()).collect(),
        TypedVec::Float(_) | TypedVec::Double(_) => return None,
    })
}

fn typed_from_bits64(ty: PdcType, bits: Vec<u64>) -> PdcResult<TypedVec> {
    Ok(match ty {
        PdcType::Int32 => TypedVec::Int32(bits.into_iter().map(i32::from_bits64).collect()),
        PdcType::UInt32 => TypedVec::UInt32(bits.into_iter().map(u32::from_bits64).collect()),
        PdcType::Int64 => TypedVec::Int64(bits.into_iter().map(i64::from_bits64).collect()),
        PdcType::UInt64 => TypedVec::UInt64(bits.into_iter().map(u64::from_bits64).collect()),
        PdcType::Float | PdcType::Double => {
            return Err(corrupt("decode: integer encoding tag on float payload"))
        }
    })
}

// ---------------------------------------------------------------------------
// Public block encode/decode
// ---------------------------------------------------------------------------

/// Encode `tv[start..start+len]` with the smallest applicable encoding.
///
/// Returns `(encoding_tag, payload)`. Floats try Raw vs Shuffle; integers
/// additionally try ForPack and DeltaForPack.
pub fn encode_block(tv: &TypedVec, start: usize, len: usize) -> (u8, Vec<u8>) {
    let raw = le_bytes(tv, start, len);
    let width = tv.pdc_type().size_bytes() as usize;
    let mut best = (ENC_RAW, raw.clone());
    let shuffled = packbits_encode(&shuffle_bytes(&raw, width));
    if shuffled.len() < best.1.len() {
        best = (ENC_SHUFFLE, shuffled);
    }
    if let Some(bits) = int_bits64(tv, start, len) {
        let fp = for_pack_bits(&bits);
        if fp.len() < best.1.len() {
            best = (ENC_FOR_PACK, fp);
        }
        let dfp = delta_for_pack_bits(&bits);
        if dfp.len() < best.1.len() {
            best = (ENC_DELTA_FOR_PACK, dfp);
        }
    }
    // Width reduction: doubles that came from f32 sources (the VPIC
    // generator emits f32; widening leaves the low 29 mantissa bits zero)
    // are stored as their exact f32 bit patterns when that is lossless
    // for every element of the block — checked bitwise, so NaN payloads
    // that a narrowing cast would disturb fall back to the codecs above.
    if let TypedVec::Double(xs) = tv {
        let xs = &xs[start..start + len];
        if xs
            .iter()
            .all(|&v| (v as f32 as f64).to_bits() == v.to_bits())
        {
            let narrow: Vec<u8> = xs
                .iter()
                .flat_map(|&v| (v as f32).to_le_bytes())
                .collect();
            let packed = packbits_encode(&shuffle_bytes(&narrow, 4));
            if packed.len() < best.1.len() {
                best = (ENC_F64_AS_F32, packed);
            }
        }
    }
    best
}

/// Decode one typed block of `elems` elements.
pub fn decode_block(ty: PdcType, encoding: u8, elems: usize, payload: &[u8]) -> PdcResult<TypedVec> {
    let width = ty.size_bytes() as usize;
    let raw_len = elems
        .checked_mul(width)
        .ok_or_else(|| corrupt("decode: element count overflows byte length"))?;
    match encoding {
        ENC_RAW => {
            if payload.len() != raw_len {
                return Err(corrupt(format!(
                    "decode: raw block has {} bytes, expected {raw_len}",
                    payload.len()
                )));
            }
            typed_from_le(ty, payload)
        }
        ENC_SHUFFLE => {
            let shuffled = packbits_decode(payload, raw_len)?;
            typed_from_le(ty, &unshuffle_bytes(&shuffled, width))
        }
        ENC_FOR_PACK => typed_from_bits64(ty, for_unpack_bits(payload, elems)?),
        ENC_DELTA_FOR_PACK => typed_from_bits64(ty, delta_for_unpack_bits(payload, elems)?),
        ENC_F64_AS_F32 => {
            if ty != PdcType::Double {
                return Err(corrupt("decode: f64-as-f32 tag on non-double payload"));
            }
            let narrow = packbits_decode(payload, elems * 4)?;
            let bytes = unshuffle_bytes(&narrow, 4);
            let mut xs = Vec::with_capacity(elems);
            for chunk in bytes.chunks_exact(4) {
                xs.push(f32::from_le_bytes(chunk.try_into().unwrap()) as f64);
            }
            Ok(TypedVec::Double(xs))
        }
        other => Err(corrupt(format!("decode: unknown encoding tag {other}"))),
    }
}

/// Encode a raw-byte block (index payloads): Raw vs PackBits, smaller wins.
pub fn encode_raw_block(bytes: &[u8]) -> (u8, Vec<u8>) {
    let rle = packbits_encode(bytes);
    if rle.len() < bytes.len() {
        (ENC_RLE_BYTES, rle)
    } else {
        (ENC_RAW, bytes.to_vec())
    }
}

/// Decode a raw-byte block of `raw_len` bytes.
pub fn decode_raw_block(encoding: u8, raw_len: usize, payload: &[u8]) -> PdcResult<Vec<u8>> {
    match encoding {
        ENC_RAW => {
            if payload.len() != raw_len {
                return Err(corrupt(format!(
                    "decode: raw byte block has {} bytes, expected {raw_len}",
                    payload.len()
                )));
            }
            Ok(payload.to_vec())
        }
        ENC_RLE_BYTES => packbits_decode(payload, raw_len),
        other => Err(corrupt(format!(
            "decode: unknown raw-byte encoding tag {other}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(tv: &TypedVec) {
        let (enc, payload) = encode_block(tv, 0, tv.len());
        let back = decode_block(tv.pdc_type(), enc, tv.len(), &payload).unwrap();
        // Compare byte images, not values: NaN != NaN under PartialEq but
        // the decode contract is bit-exactness.
        assert_eq!(back.pdc_type(), tv.pdc_type(), "encoding {enc}");
        assert_eq!(
            le_bytes(&back, 0, back.len()),
            le_bytes(tv, 0, tv.len()),
            "encoding {enc}"
        );
    }

    #[test]
    fn packbits_roundtrip_edge_cases() {
        let cases: Vec<Vec<u8>> = vec![
            vec![],
            vec![7],
            vec![0; 1000],
            vec![1, 2, 3, 4, 5],
            (0..=255).collect(),
            [vec![9; 200], (0..100).collect(), vec![0; 5]].concat(),
        ];
        for case in cases {
            let enc = packbits_encode(&case);
            let dec = packbits_decode(&enc, case.len()).unwrap();
            assert_eq!(dec, case);
        }
    }

    #[test]
    fn packbits_compresses_runs() {
        // Run packets cap at 128 repeats, so an all-zero buffer costs
        // exactly 2 bytes per 128 — a 64:1 floor.
        let zeros = vec![0u8; 65536];
        let enc = packbits_encode(&zeros);
        assert_eq!(enc.len(), 65536 / 128 * 2, "got {} bytes", enc.len());
    }

    #[test]
    fn typed_roundtrip_all_variants() {
        roundtrip(&TypedVec::Float(vec![1.5, -2.0, f32::NAN, f32::INFINITY, 0.0, -0.0]));
        roundtrip(&TypedVec::Double(vec![
            1.5,
            -2.0,
            f64::NAN,
            f64::NEG_INFINITY,
            f64::MIN_POSITIVE,
            -0.0,
        ]));
        roundtrip(&TypedVec::Int32(vec![i32::MIN, -1, 0, 1, i32::MAX]));
        roundtrip(&TypedVec::UInt32(vec![0, 1, u32::MAX]));
        roundtrip(&TypedVec::Int64(vec![i64::MIN, -1, 0, 1, i64::MAX]));
        roundtrip(&TypedVec::UInt64(vec![0, 1, u64::MAX]));
    }

    #[test]
    fn nan_bit_patterns_survive() {
        // Two distinct NaN bit patterns must round-trip bit-exactly.
        let a = f64::from_bits(0x7ff8_0000_0000_0001);
        let b = f64::from_bits(0x7ff8_dead_beef_0001);
        let tv = TypedVec::Double(vec![a, b, f64::NAN]);
        let (enc, payload) = encode_block(&tv, 0, 3);
        let back = decode_block(PdcType::Double, enc, 3, &payload).unwrap();
        if let TypedVec::Double(xs) = back {
            assert_eq!(xs[0].to_bits(), a.to_bits());
            assert_eq!(xs[1].to_bits(), b.to_bits());
            assert_eq!(xs[2].to_bits(), f64::NAN.to_bits());
        } else {
            panic!("wrong variant");
        }
    }

    #[test]
    fn monotone_ints_pick_delta_encoding() {
        let tv = TypedVec::UInt64((0..4096u64).map(|i| 1_000_000 + i * 3).collect());
        let (enc, payload) = encode_block(&tv, 0, 4096);
        assert_eq!(enc, ENC_DELTA_FOR_PACK);
        assert!(payload.len() * 8 < 4096 * 8, "payload {} bytes", payload.len());
        roundtrip(&tv);
    }

    #[test]
    fn narrow_range_ints_pick_for_pack() {
        let tv = TypedVec::Int32((0..4096).map(|i| 50_000 + (i * 37) % 256).collect());
        let (enc, payload) = encode_block(&tv, 0, 4096);
        assert_eq!(enc, ENC_FOR_PACK);
        assert!(payload.len() < 4096 * 2, "payload {} bytes", payload.len());
        roundtrip(&tv);
    }

    #[test]
    fn widened_floats_compress_2x() {
        // f32 data widened to f64 (the VPIC generator path): every element
        // is exactly f32-representable, so width reduction applies and the
        // block must beat 2x. Positive energy-like values keep the f32
        // sign/exponent plane run-heavy, as the VPIC energy variable does.
        let xs: Vec<f64> =
            (0..8192).map(|i| (0.05 + (i as f32 / 100.0).sin().abs()) as f64).collect();
        let tv = TypedVec::Double(xs);
        let (enc, payload) = encode_block(&tv, 0, 8192);
        assert_eq!(enc, ENC_F64_AS_F32);
        assert!(
            payload.len() * 2 <= 8192 * 8,
            "only {}x",
            (8192.0 * 8.0) / payload.len() as f64
        );
        roundtrip(&tv);
    }

    #[test]
    fn nan_payload_doubles_never_width_reduce() {
        // A quiet-NaN payload that a narrowing cast would destroy must
        // force the bitwise fallback path.
        let odd_nan = f64::from_bits(0x7ff0_0000_0000_0001);
        let mut xs: Vec<f64> = (0..512).map(|i| (i as f32) as f64).collect();
        xs[300] = odd_nan;
        let tv = TypedVec::Double(xs);
        let (enc, payload) = encode_block(&tv, 0, 512);
        assert_ne!(enc, ENC_F64_AS_F32);
        let back = decode_block(PdcType::Double, enc, 512, &payload).unwrap();
        if let TypedVec::Double(ys) = back {
            assert_eq!(ys[300].to_bits(), odd_nan.to_bits());
        } else {
            panic!("wrong variant");
        }
    }

    #[test]
    fn sub_range_encoding_matches_slice() {
        let tv = TypedVec::Double((0..100).map(|i| i as f64 * 0.5).collect());
        let (enc_a, pay_a) = encode_block(&tv, 10, 20);
        let sliced = tv.slice(10, 20);
        let (enc_b, pay_b) = encode_block(&sliced, 0, 20);
        assert_eq!((enc_a, pay_a), (enc_b, pay_b));
    }

    #[test]
    fn raw_block_roundtrip() {
        let bytes: Vec<u8> = [vec![0u8; 500], (0..50).collect(), vec![255; 300]].concat();
        let (enc, payload) = encode_raw_block(&bytes);
        assert_eq!(enc, ENC_RLE_BYTES);
        assert!(payload.len() < bytes.len());
        assert_eq!(decode_raw_block(enc, bytes.len(), &payload).unwrap(), bytes);

        let incompressible: Vec<u8> = (0..97u32).map(|i| (i * 131 % 251) as u8).collect();
        let (enc, payload) = encode_raw_block(&incompressible);
        assert_eq!(enc, ENC_RAW);
        assert_eq!(
            decode_raw_block(enc, incompressible.len(), &payload).unwrap(),
            incompressible
        );
    }

    #[test]
    fn hostile_payloads_yield_typed_errors() {
        // Truncated packbits literal.
        assert!(packbits_decode(&[10, 1, 2], 11).is_err());
        // Truncated run packet.
        assert!(packbits_decode(&[200], 10).is_err());
        // Reserved control byte.
        assert!(packbits_decode(&[128, 0], 1).is_err());
        // Output overrun.
        assert!(packbits_decode(&[200, 7], 3).is_err());
        // Bad bit width.
        assert!(for_unpack_bits(&[0, 0, 0, 0, 0, 0, 0, 0, 65], 4).is_err());
        // Unknown encoding tag.
        assert!(decode_block(PdcType::Double, 99, 4, &[0; 32]).is_err());
        // Wrong raw length.
        assert!(decode_block(PdcType::Double, ENC_RAW, 4, &[0; 31]).is_err());
        // Float payload with integer tag.
        assert!(decode_block(PdcType::Double, ENC_FOR_PACK, 1, &[0; 9]).is_err());
        // Empty for-pack header.
        assert!(for_unpack_bits(&[1, 2], 1).is_err());
    }

    #[test]
    fn empty_blocks_roundtrip() {
        roundtrip(&TypedVec::Double(vec![]));
        roundtrip(&TypedVec::Int64(vec![]));
        let (enc, payload) = encode_raw_block(&[]);
        assert_eq!(decode_raw_block(enc, 0, &payload).unwrap(), Vec::<u8>::new());
    }
}
