//! # pdc-blockstore
//!
//! Persistent block-compressed region files and the budgeted block cache
//! — the physical backing for the `StorageTier::Pfs` cold tier.
//!
//! * [`fnv`] — the shared streaming FNV-1a 64 hasher used by every
//!   checksum in the workspace (stored payloads, snapshot frames, block
//!   frames).
//! * [`codec`] — per-block lightweight compression: byte-shuffle +
//!   PackBits for floats, width reduction for f32-widened doubles,
//!   frame-of-reference / delta bit-packing for integers, PackBits for
//!   raw index bytes. Bit-exact decode (NaN payloads survive).
//! * [`blockfile`] — checksummed block framing with a virtual-offset
//!   block index, so interval reads touch only overlapping blocks.
//! * [`cache`] — byte-budgeted LRU of decoded blocks (admission +
//!   eviction).
//!
//! Simulated time is **never** charged here: the cost model in
//! `pdc-storage` keeps charging tier reads unconditionally, whether a
//! region is physically resident or spilled — this crate only changes
//! where the bytes physically live.

pub mod blockfile;
pub mod cache;
pub mod codec;
pub mod fnv;

pub use blockfile::{
    write_raw, write_typed, BlockFileMeta, BlockReader, PayloadKind, DEFAULT_BLOCK_ELEMS,
};
pub use cache::{BlockCache, BlockCacheStats, BlockKey};
pub use fnv::{fnv1a64, Fnv1a, FNV_OFFSET, FNV_PRIME};
