//! Streaming FNV-1a 64-bit hasher.
//!
//! One shared implementation of the OFFSET/PRIME step for every checksum
//! in the workspace: stored-payload checksums (`pdc-storage`), snapshot
//! frame checksums (`pdc-odms`), block-frame checksums (this crate), and
//! the joint-context interval hashing in `pdc-query`.

/// FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a 64-bit hasher.
///
/// `Fnv1a::new().chain(a).chain(b).finish()` equals `fnv1a64` of the
/// concatenation `a ++ b`, so callers can stream element bytes without
/// materializing a contiguous buffer.
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a {
    state: u64,
}

impl Fnv1a {
    /// A fresh hasher at the offset basis.
    #[inline]
    pub const fn new() -> Self {
        Fnv1a { state: FNV_OFFSET }
    }

    /// Absorb `bytes` into the running hash.
    #[inline]
    pub fn update(&mut self, bytes: &[u8]) {
        let mut h = self.state;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.state = h;
    }

    /// Builder-style [`Fnv1a::update`].
    #[inline]
    #[must_use]
    pub fn chain(mut self, bytes: &[u8]) -> Self {
        self.update(bytes);
        self
    }

    /// Absorb a `u64` as its 8 little-endian bytes.
    #[inline]
    pub fn write_u64(&mut self, w: u64) {
        self.update(&w.to_le_bytes());
    }

    /// The current hash value.
    #[inline]
    pub const fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

impl std::hash::Hasher for Fnv1a {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        self.update(bytes);
    }
}

/// One-shot FNV-1a 64 over a byte slice.
#[inline]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    Fnv1a::new().chain(bytes).finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn streaming_equals_one_shot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        for split in 0..data.len() {
            let streamed = Fnv1a::new()
                .chain(&data[..split])
                .chain(&data[split..])
                .finish();
            assert_eq!(streamed, fnv1a64(data), "split at {split}");
        }
    }

    #[test]
    fn write_u64_equals_le_bytes() {
        let mut a = Fnv1a::new();
        a.write_u64(0xdead_beef_0bad_f00d);
        let b = fnv1a64(&0xdead_beef_0bad_f00du64.to_le_bytes());
        assert_eq!(a.finish(), b);
    }
}
