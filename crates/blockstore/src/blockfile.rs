//! On-disk block-compressed region files.
//!
//! File layout (all integers little-endian):
//!
//! ```text
//! +--------------------------------------------------------------+
//! | header (24 B): "PDCB" | format u32 | kind u8 | elem u8 |     |
//! |                reserved u16 | total u64 | block_elems u32    |
//! +--------------------------------------------------------------+
//! | block 0: comp_len u32 | elems u32 | enc u8 | fnv u64 |       |
//! |          <comp_len compressed bytes>                         |
//! | block 1: ...                                                 |
//! +--------------------------------------------------------------+
//! | index: n_blocks x { file_off u64 | elems u32 }               |
//! +--------------------------------------------------------------+
//! | footer (24 B): index_off u64 | n_blocks u32 |                |
//! |                index_fnv u64 | "PDCE"                        |
//! +--------------------------------------------------------------+
//! ```
//!
//! The framing follows the snapshot format from `pdc-odms::persist`
//! (magic / format / length / FNV-1a checksum ahead of every payload);
//! the index is found through the fixed-size footer so a reader never
//! scans the file. Block boundaries are virtual offsets in *element*
//! space — block `i` covers elements `[i * block_elems, ...)` — so an
//! interval read can map straight to the overlapping blocks and seek to
//! their file offsets.
//!
//! Checksums leave no unprotected byte: each block's FNV streams over
//! the frame header fields (comp_len, elems, encoding) *and* the
//! compressed payload, and the index FNV streams over the file header
//! plus the index entries, so any single bit flip anywhere in the file
//! is detected (the footer fields themselves are cross-checked against
//! the header and the section tiling).
//!
//! Every read is bounds-checked and checksum-verified; any structural
//! problem yields a typed [`PdcError`], never a panic.

use crate::codec;
use crate::fnv::Fnv1a;
use parking_lot::Mutex;
use pdc_types::error::{PdcError, PdcResult};
use pdc_types::value::{PdcType, TypedVec};
use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::path::Path;

/// File magic for block files.
pub const BLOCK_MAGIC: [u8; 4] = *b"PDCB";
/// Footer magic.
pub const FOOTER_MAGIC: [u8; 4] = *b"PDCE";
/// Format version.
pub const BLOCK_FORMAT: u32 = 1;
/// Header size in bytes.
pub const HEADER_LEN: u64 = 24;
/// Per-block frame header size in bytes.
pub const FRAME_LEN: u64 = 17;
/// Per-entry index size in bytes.
pub const INDEX_ENTRY_LEN: u64 = 12;
/// Footer size in bytes.
pub const FOOTER_LEN: u64 = 24;
/// Default elements per block (64 Ki — a multiple of the kernels' 64-wide
/// chunks, so per-block scans see the same chunk alignment as whole-region
/// scans).
pub const DEFAULT_BLOCK_ELEMS: u32 = 64 * 1024;

/// Payload kind stored in a block file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PayloadKind {
    /// A typed element array; `total`/`elems` count elements.
    Typed(PdcType),
    /// Raw index bytes; `total`/`elems` count bytes.
    Raw,
}

fn ty_tag(ty: PdcType) -> u8 {
    match ty {
        PdcType::Float => 0,
        PdcType::Double => 1,
        PdcType::Int32 => 2,
        PdcType::UInt32 => 3,
        PdcType::Int64 => 4,
        PdcType::UInt64 => 5,
    }
}

fn ty_from_tag(tag: u8) -> PdcResult<PdcType> {
    Ok(match tag {
        0 => PdcType::Float,
        1 => PdcType::Double,
        2 => PdcType::Int32,
        3 => PdcType::UInt32,
        4 => PdcType::Int64,
        5 => PdcType::UInt64,
        other => return Err(corrupt(format!("unknown element type tag {other}"))),
    })
}

fn corrupt(msg: impl Into<String>) -> PdcError {
    PdcError::Codec(format!("blockfile: {}", msg.into()))
}

fn io_err(op: &str, e: std::io::Error) -> PdcError {
    PdcError::Storage(format!("blockfile {op}: {e}"))
}

/// Summary of a written or opened block file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockFileMeta {
    /// What the file stores.
    pub kind: PayloadKind,
    /// Total elements (typed) or bytes (raw).
    pub total: u64,
    /// Elements (typed) or bytes (raw) per block.
    pub block_elems: u32,
    /// Number of blocks.
    pub n_blocks: u32,
    /// Uncompressed payload bytes.
    pub raw_bytes: u64,
    /// Compressed payload bytes (block payloads only, excluding framing).
    pub comp_bytes: u64,
    /// Total file size in bytes.
    pub file_bytes: u64,
}

/// Block-frame checksum: streams over the frame header fields and the
/// compressed payload, so a flip in the length/element-count/encoding
/// bytes is caught even when the damaged values still parse.
fn frame_fnv(comp_len: u32, elems: u32, enc: u8, payload: &[u8]) -> u64 {
    Fnv1a::new()
        .chain(&comp_len.to_le_bytes())
        .chain(&elems.to_le_bytes())
        .chain(&[enc])
        .chain(payload)
        .finish()
}

fn expected_blocks(total: u64, block_elems: u32) -> u64 {
    if total == 0 {
        0
    } else {
        total.div_ceil(block_elems as u64)
    }
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_file(
    path: &Path,
    kind: PayloadKind,
    total: u64,
    block_elems: u32,
    raw_bytes: u64,
    mut encode_block: impl FnMut(u64, u32) -> (u8, Vec<u8>),
) -> PdcResult<BlockFileMeta> {
    if block_elems == 0 {
        return Err(corrupt("block_elems must be positive"));
    }
    let n_blocks = expected_blocks(total, block_elems);
    if n_blocks > u32::MAX as u64 {
        return Err(corrupt("too many blocks"));
    }
    let mut buf = Vec::with_capacity((raw_bytes / 2 + 256) as usize);
    buf.extend_from_slice(&BLOCK_MAGIC);
    buf.extend_from_slice(&BLOCK_FORMAT.to_le_bytes());
    match kind {
        PayloadKind::Typed(ty) => {
            buf.push(0u8);
            buf.push(ty_tag(ty));
        }
        PayloadKind::Raw => {
            buf.push(1u8);
            buf.push(0u8);
        }
    }
    buf.extend_from_slice(&0u16.to_le_bytes());
    buf.extend_from_slice(&total.to_le_bytes());
    buf.extend_from_slice(&block_elems.to_le_bytes());
    debug_assert_eq!(buf.len() as u64, HEADER_LEN);

    let mut index: Vec<u8> = Vec::with_capacity((n_blocks * INDEX_ENTRY_LEN) as usize);
    let mut comp_bytes = 0u64;
    for b in 0..n_blocks {
        let start = b * block_elems as u64;
        let elems = (total - start).min(block_elems as u64) as u32;
        let (enc, payload) = encode_block(start, elems);
        index.extend_from_slice(&(buf.len() as u64).to_le_bytes());
        index.extend_from_slice(&elems.to_le_bytes());
        buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        buf.extend_from_slice(&elems.to_le_bytes());
        buf.push(enc);
        buf.extend_from_slice(&frame_fnv(payload.len() as u32, elems, enc, &payload).to_le_bytes());
        comp_bytes += payload.len() as u64;
        buf.extend_from_slice(&payload);
    }
    let index_off = buf.len() as u64;
    let index_fnv = Fnv1a::new().chain(&buf[..HEADER_LEN as usize]).chain(&index).finish();
    buf.extend_from_slice(&index);
    buf.extend_from_slice(&index_off.to_le_bytes());
    buf.extend_from_slice(&(n_blocks as u32).to_le_bytes());
    buf.extend_from_slice(&index_fnv.to_le_bytes());
    buf.extend_from_slice(&FOOTER_MAGIC);

    let file_bytes = buf.len() as u64;
    // Write-then-rename so a torn write never leaves a half-written file
    // under the final name.
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, &buf).map_err(|e| io_err("write", e))?;
    std::fs::rename(&tmp, path).map_err(|e| io_err("rename", e))?;
    Ok(BlockFileMeta {
        kind,
        total,
        block_elems,
        n_blocks: n_blocks as u32,
        raw_bytes,
        comp_bytes,
        file_bytes,
    })
}

/// Write `tv` as a block-compressed file at `path`.
pub fn write_typed(path: &Path, tv: &TypedVec, block_elems: u32) -> PdcResult<BlockFileMeta> {
    write_file(
        path,
        PayloadKind::Typed(tv.pdc_type()),
        tv.len() as u64,
        block_elems,
        tv.size_bytes(),
        |start, elems| codec::encode_block(tv, start as usize, elems as usize),
    )
}

/// Write raw index bytes as a block-compressed file at `path`.
pub fn write_raw(path: &Path, bytes: &[u8], block_bytes: u32) -> PdcResult<BlockFileMeta> {
    write_file(
        path,
        PayloadKind::Raw,
        bytes.len() as u64,
        block_bytes,
        bytes.len() as u64,
        |start, n| codec::encode_raw_block(&bytes[start as usize..start as usize + n as usize]),
    )
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
struct IndexEntry {
    file_off: u64,
    elems: u32,
}

/// Random-access reader over a block file.
///
/// Opening validates the header, footer and offset index (checksummed);
/// individual block reads seek straight to the block frame, verify its
/// checksum, and decode — a region's interval reads touch only the
/// overlapping blocks.
pub struct BlockReader {
    file: Mutex<File>,
    meta: BlockFileMeta,
    index: Vec<IndexEntry>,
    index_off: u64,
}

impl BlockReader {
    /// Open and validate `path`.
    pub fn open(path: &Path) -> PdcResult<BlockReader> {
        let mut file = File::open(path).map_err(|e| io_err("open", e))?;
        let file_len = file.seek(SeekFrom::End(0)).map_err(|e| io_err("seek", e))?;
        if file_len < HEADER_LEN + FOOTER_LEN {
            return Err(corrupt(format!("file too short ({file_len} bytes)")));
        }
        let mut header = [0u8; HEADER_LEN as usize];
        file.seek(SeekFrom::Start(0)).map_err(|e| io_err("seek", e))?;
        file.read_exact(&mut header).map_err(|e| io_err("read header", e))?;
        if header[0..4] != BLOCK_MAGIC {
            return Err(corrupt("bad magic"));
        }
        let format = u32::from_le_bytes(header[4..8].try_into().unwrap());
        if format != BLOCK_FORMAT {
            return Err(corrupt(format!("unsupported format {format}")));
        }
        let kind = match header[8] {
            0 => PayloadKind::Typed(ty_from_tag(header[9])?),
            1 => PayloadKind::Raw,
            other => return Err(corrupt(format!("unknown payload kind {other}"))),
        };
        let total = u64::from_le_bytes(header[12..20].try_into().unwrap());
        let block_elems = u32::from_le_bytes(header[20..24].try_into().unwrap());
        if block_elems == 0 {
            return Err(corrupt("zero block size"));
        }
        let n_blocks = expected_blocks(total, block_elems);

        let mut footer = [0u8; FOOTER_LEN as usize];
        file.seek(SeekFrom::Start(file_len - FOOTER_LEN))
            .map_err(|e| io_err("seek", e))?;
        file.read_exact(&mut footer).map_err(|e| io_err("read footer", e))?;
        if footer[20..24] != FOOTER_MAGIC {
            return Err(corrupt("bad footer magic"));
        }
        let index_off = u64::from_le_bytes(footer[0..8].try_into().unwrap());
        let footer_blocks = u32::from_le_bytes(footer[8..12].try_into().unwrap());
        let index_fnv = u64::from_le_bytes(footer[12..20].try_into().unwrap());
        if footer_blocks as u64 != n_blocks {
            return Err(corrupt(format!(
                "footer says {footer_blocks} blocks, header implies {n_blocks}"
            )));
        }
        let index_len = n_blocks.saturating_mul(INDEX_ENTRY_LEN);
        // The sections must tile the file exactly: header, blocks, index,
        // footer. A hostile index_off cannot point outside the block area.
        if index_off < HEADER_LEN
            || index_off.checked_add(index_len).map(|e| e + FOOTER_LEN) != Some(file_len)
        {
            return Err(corrupt(format!("hostile index offset {index_off}")));
        }
        let mut index_bytes = vec![0u8; index_len as usize];
        file.seek(SeekFrom::Start(index_off)).map_err(|e| io_err("seek", e))?;
        file.read_exact(&mut index_bytes).map_err(|e| io_err("read index", e))?;
        if Fnv1a::new().chain(&header).chain(&index_bytes).finish() != index_fnv {
            return Err(corrupt("header/index checksum mismatch"));
        }
        let mut index = Vec::with_capacity(n_blocks as usize);
        let mut expect_off = HEADER_LEN;
        let mut seen_elems = 0u64;
        for (i, entry) in index_bytes.chunks_exact(INDEX_ENTRY_LEN as usize).enumerate() {
            let file_off = u64::from_le_bytes(entry[0..8].try_into().unwrap());
            let elems = u32::from_le_bytes(entry[8..12].try_into().unwrap());
            if file_off != expect_off {
                return Err(corrupt(format!(
                    "block {i}: offset {file_off} does not follow previous block (expect {expect_off})"
                )));
            }
            let want = (total - seen_elems).min(block_elems as u64) as u32;
            if elems != want {
                return Err(corrupt(format!(
                    "block {i}: {elems} elements, expected {want}"
                )));
            }
            // Frame length is derived from the next offset at read time;
            // here just ensure the frame header itself fits.
            if file_off + FRAME_LEN > index_off {
                return Err(corrupt(format!("block {i}: frame overruns index")));
            }
            let mut frame = [0u8; FRAME_LEN as usize];
            file.seek(SeekFrom::Start(file_off)).map_err(|e| io_err("seek", e))?;
            file.read_exact(&mut frame).map_err(|e| io_err("read frame", e))?;
            let comp_len = u32::from_le_bytes(frame[0..4].try_into().unwrap());
            expect_off = file_off
                .checked_add(FRAME_LEN)
                .and_then(|o| o.checked_add(comp_len as u64))
                .ok_or_else(|| corrupt(format!("block {i}: length overflow")))?;
            if expect_off > index_off {
                return Err(corrupt(format!("block {i}: payload overruns index")));
            }
            seen_elems += elems as u64;
            index.push(IndexEntry { file_off, elems });
        }
        if expect_off != index_off {
            return Err(corrupt("blocks do not tile the file up to the index"));
        }
        if seen_elems != total {
            return Err(corrupt(format!(
                "index covers {seen_elems} elements, header says {total}"
            )));
        }
        Ok(BlockReader {
            file: Mutex::new(file),
            meta: BlockFileMeta {
                kind,
                total,
                block_elems,
                n_blocks: n_blocks as u32,
                raw_bytes: 0,
                comp_bytes: index_off - HEADER_LEN - n_blocks * FRAME_LEN,
                file_bytes: file_len,
            },
            index,
            index_off,
        })
    }

    /// File metadata (note: `raw_bytes` is not stored on disk; it is 0
    /// here and only populated on [`write_typed`]/[`write_raw`] results).
    pub fn meta(&self) -> &BlockFileMeta {
        &self.meta
    }

    /// Number of blocks.
    pub fn n_blocks(&self) -> u32 {
        self.meta.n_blocks
    }

    /// The element span `[start, start + len)` covered by block `i`.
    pub fn block_span(&self, i: u32) -> (u64, u32) {
        (
            i as u64 * self.meta.block_elems as u64,
            self.index[i as usize].elems,
        )
    }

    /// The blocks overlapping element range `[lo, hi)` (virtual offsets:
    /// block `i` covers `[i * block_elems, (i+1) * block_elems)`).
    pub fn blocks_overlapping(&self, lo: u64, hi: u64) -> std::ops::Range<u32> {
        if lo >= hi || self.meta.total == 0 {
            return 0..0;
        }
        let hi = hi.min(self.meta.total);
        let first = (lo / self.meta.block_elems as u64) as u32;
        let last = hi.div_ceil(self.meta.block_elems as u64) as u32;
        first.min(self.meta.n_blocks)..last.min(self.meta.n_blocks)
    }

    fn read_block_payload(&self, i: u32) -> PdcResult<(u8, u32, Vec<u8>)> {
        let entry = *self
            .index
            .get(i as usize)
            .ok_or_else(|| corrupt(format!("block {i} out of range")))?;
        let next_off = self
            .index
            .get(i as usize + 1)
            .map(|e| e.file_off)
            .unwrap_or(self.index_off);
        let mut file = self.file.lock();
        let mut frame = [0u8; FRAME_LEN as usize];
        file.seek(SeekFrom::Start(entry.file_off)).map_err(|e| io_err("seek", e))?;
        file.read_exact(&mut frame).map_err(|e| io_err("read frame", e))?;
        let comp_len = u32::from_le_bytes(frame[0..4].try_into().unwrap());
        let elems = u32::from_le_bytes(frame[4..8].try_into().unwrap());
        let enc = frame[8];
        let checksum = u64::from_le_bytes(frame[9..17].try_into().unwrap());
        if entry.file_off + FRAME_LEN + comp_len as u64 != next_off {
            return Err(corrupt(format!("block {i}: frame length mismatch")));
        }
        if elems != entry.elems {
            return Err(corrupt(format!(
                "block {i}: frame says {elems} elements, index says {}",
                entry.elems
            )));
        }
        let mut payload = vec![0u8; comp_len as usize];
        file.read_exact(&mut payload).map_err(|e| io_err("read block", e))?;
        drop(file);
        if frame_fnv(comp_len, elems, enc, &payload) != checksum {
            return Err(corrupt(format!("block {i}: checksum mismatch")));
        }
        Ok((enc, elems, payload))
    }

    /// Read and decode one typed block.
    pub fn read_typed_block(&self, i: u32) -> PdcResult<TypedVec> {
        let PayloadKind::Typed(ty) = self.meta.kind else {
            return Err(corrupt("typed read on raw block file"));
        };
        let (enc, elems, payload) = self.read_block_payload(i)?;
        codec::decode_block(ty, enc, elems as usize, &payload)
    }

    /// Read and decode one raw-byte block.
    pub fn read_raw_block(&self, i: u32) -> PdcResult<Vec<u8>> {
        if self.meta.kind != PayloadKind::Raw {
            return Err(corrupt("raw read on typed block file"));
        }
        let (enc, elems, payload) = self.read_block_payload(i)?;
        codec::decode_raw_block(enc, elems as usize, &payload)
    }

    /// Decode the whole file into one typed array.
    pub fn read_all_typed(&self) -> PdcResult<TypedVec> {
        let PayloadKind::Typed(ty) = self.meta.kind else {
            return Err(corrupt("typed read on raw block file"));
        };
        let mut out = TypedVec::with_capacity(ty, self.meta.total as usize);
        for b in 0..self.meta.n_blocks {
            let block = self.read_typed_block(b)?;
            out.extend_from_range(&block, 0..block.len())?;
        }
        Ok(out)
    }

    /// Decode the whole file into one byte vector.
    pub fn read_all_raw(&self) -> PdcResult<Vec<u8>> {
        if self.meta.kind != PayloadKind::Raw {
            return Err(corrupt("raw read on typed block file"));
        }
        let mut out = Vec::with_capacity(self.meta.total as usize);
        for b in 0..self.meta.n_blocks {
            out.extend_from_slice(&self.read_raw_block(b)?);
        }
        Ok(out)
    }

    /// Verify every block checksum and decode (integrity sweep); returns
    /// the uncompressed byte count.
    pub fn verify_all(&self) -> PdcResult<u64> {
        match self.meta.kind {
            PayloadKind::Typed(_) => Ok(self.read_all_typed()?.size_bytes()),
            PayloadKind::Raw => Ok(self.read_all_raw()?.len() as u64),
        }
    }
}

impl std::fmt::Debug for BlockReader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockReader")
            .field("meta", &self.meta)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_path(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir();
        dir.join(format!(
            "pdc_blockfile_{}_{}_{tag}.pbf",
            std::process::id(),
            std::thread::current().name().unwrap_or("t").replace("::", "_"),
        ))
    }

    #[test]
    fn typed_roundtrip_multiblock() {
        let tv = TypedVec::Double((0..10_000).map(|i| (i as f64).sin()).collect());
        let path = tmp_path("typed");
        let meta = write_typed(&path, &tv, 1024).unwrap();
        assert_eq!(meta.n_blocks, 10);
        assert_eq!(meta.total, 10_000);
        let r = BlockReader::open(&path).unwrap();
        assert_eq!(r.n_blocks(), 10);
        assert_eq!(r.read_all_typed().unwrap(), tv);
        // Per-block reads agree with slices.
        for b in 0..10u32 {
            let (start, len) = r.block_span(b);
            assert_eq!(
                r.read_typed_block(b).unwrap(),
                tv.slice(start as usize, len as usize)
            );
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn raw_roundtrip() {
        let bytes: Vec<u8> = [vec![0u8; 4000], (0..=255).collect(), vec![7u8; 1000]].concat();
        let path = tmp_path("raw");
        let meta = write_raw(&path, &bytes, 512).unwrap();
        assert!(meta.comp_bytes < meta.raw_bytes);
        let r = BlockReader::open(&path).unwrap();
        assert_eq!(r.read_all_raw().unwrap(), bytes);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn overlap_mapping() {
        let tv = TypedVec::Int32((0..5000).collect());
        let path = tmp_path("overlap");
        write_typed(&path, &tv, 1000).unwrap();
        let r = BlockReader::open(&path).unwrap();
        assert_eq!(r.blocks_overlapping(0, 1), 0..1);
        assert_eq!(r.blocks_overlapping(999, 1001), 0..2);
        assert_eq!(r.blocks_overlapping(1000, 2000), 1..2);
        assert_eq!(r.blocks_overlapping(4999, 100_000), 4..5);
        assert_eq!(r.blocks_overlapping(10, 10), 0..0);
        assert_eq!(r.blocks_overlapping(0, 5000), 0..5);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_payload_roundtrip() {
        let path = tmp_path("empty");
        let meta = write_typed(&path, &TypedVec::Double(vec![]), 1024).unwrap();
        assert_eq!(meta.n_blocks, 0);
        let r = BlockReader::open(&path).unwrap();
        assert_eq!(r.read_all_typed().unwrap(), TypedVec::Double(vec![]));
        assert_eq!(r.blocks_overlapping(0, 10), 0..0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn kind_mismatch_is_typed_error() {
        let path = tmp_path("kindmix");
        write_typed(&path, &TypedVec::Int64(vec![1, 2, 3]), 2).unwrap();
        let r = BlockReader::open(&path).unwrap();
        assert!(matches!(r.read_raw_block(0), Err(PdcError::Codec(_))));
        assert!(matches!(r.read_all_raw(), Err(PdcError::Codec(_))));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_typed_error() {
        let err = BlockReader::open(Path::new("/nonexistent/pdc_block_xyz.pbf")).unwrap_err();
        assert!(matches!(err, PdcError::Storage(_)));
    }

    #[test]
    fn verify_all_counts_uncompressed_bytes() {
        let tv = TypedVec::Float(vec![1.0; 300]);
        let path = tmp_path("verify");
        write_typed(&path, &tv, 128).unwrap();
        let r = BlockReader::open(&path).unwrap();
        assert_eq!(r.verify_all().unwrap(), 1200);
        std::fs::remove_file(&path).unwrap();
    }
}
