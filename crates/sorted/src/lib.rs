//! # pdc-sorted
//!
//! Data reorganization with sorting (paper §III-D3).
//!
//! "When there is prior knowledge on how the data would be queried, sorting
//! and reorganizing the data by value based on one or more objects speeds
//! up the query evaluation process. ... A query condition with high
//! selectivity on the energy object would result in data clustered only in
//! a few regions and thus lead to high efficiency."
//!
//! A [`SortedReplica`] is a full copy of one object's values ordered by
//! value, together with the permutation mapping each sorted slot back to
//! its original array coordinate. The replica is partitioned into regions
//! like any PDC object; each sorted region carries a `[min, max]` range so
//! a range query touches only the contiguous band of regions overlapping
//! the query interval — that contiguity is the whole point of the
//! reorganization. The replica costs a full copy of the object's storage
//! ("the sorted copy requires a full copy of the data"), which the
//! overhead experiment (E6) accounts for.

use pdc_types::{Interval, RegionSpec, Run, Selection};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// A value-sorted copy of one object, with the original-coordinate
/// permutation and per-region value ranges.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SortedReplica {
    /// Values in ascending order.
    keys: Vec<f64>,
    /// `perm[s]` = original coordinate of sorted slot `s`.
    perm: Vec<u64>,
    /// Elements per region of the sorted replica.
    region_len: u64,
    /// Per-region `[min, max]` of the sorted keys (redundant with `keys`
    /// but kept as region metadata, mirroring PDC's histogram-min/max).
    region_ranges: Vec<(f64, f64)>,
}

/// The answer to a range lookup on a sorted replica.
#[derive(Debug, Clone, PartialEq)]
pub struct SortedLookup {
    /// The contiguous matching span in *sorted* coordinates.
    pub sorted_span: Run,
    /// The matching elements translated back to original coordinates.
    pub selection: Selection,
}

impl SortedReplica {
    /// Build a sorted replica of `values`, partitioned into regions of
    /// `region_len` elements.
    pub fn build(values: &[f64], region_len: u64) -> SortedReplica {
        assert!(region_len > 0, "region length must be positive");
        let mut pairs: Vec<(f64, u64)> =
            values.iter().enumerate().map(|(i, &v)| (v, i as u64)).collect();
        // Parallel sort by value; ties keep original coordinate order so
        // the permutation is deterministic.
        pairs.par_sort_unstable_by(|a, b| {
            a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal).then(a.1.cmp(&b.1))
        });
        let keys: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let perm: Vec<u64> = pairs.iter().map(|p| p.1).collect();
        let region_ranges = RegionSpec::partition(keys.len() as u64, region_len)
            .into_iter()
            .map(|r| {
                let lo = keys[r.offset as usize];
                let hi = keys[(r.end() - 1) as usize];
                (lo, hi)
            })
            .collect();
        SortedReplica { keys, perm, region_len, region_ranges }
    }

    /// Number of elements.
    pub fn len(&self) -> u64 {
        self.keys.len() as u64
    }

    /// Whether the replica is empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Number of regions in the sorted replica.
    pub fn num_regions(&self) -> u32 {
        self.region_ranges.len() as u32
    }

    /// Elements per region.
    pub fn region_len(&self) -> u64 {
        self.region_len
    }

    /// `[min, max]` of sorted region `r`.
    pub fn region_range(&self, r: u32) -> (f64, f64) {
        self.region_ranges[r as usize]
    }

    /// The sorted keys (ascending).
    pub fn keys(&self) -> &[f64] {
        &self.keys
    }

    /// The permutation: original coordinate of each sorted slot.
    pub fn perm(&self) -> &[u64] {
        &self.perm
    }

    /// Storage footprint of the replica in bytes, assuming `elem_bytes`
    /// per key: keys plus the permutation array (u64 each). "If the
    /// original data has to be kept, additional storage space is required
    /// to maintain the sorted replica."
    pub fn size_bytes(&self, elem_bytes: u64) -> u64 {
        self.keys.len() as u64 * (elem_bytes + 8)
    }

    /// The contiguous sorted-coordinate span matching `interval`.
    pub fn matching_span(&self, interval: &Interval) -> Run {
        let below = |k: f64| match interval.lo {
            Some(b) => k < b.value || (k == b.value && !b.inclusive),
            None => false,
        };
        let within = |k: f64| match interval.hi {
            Some(b) => k < b.value || (k == b.value && b.inclusive),
            None => true,
        };
        let start = self.keys.partition_point(|&k| below(k)) as u64;
        let end = self.keys.partition_point(|&k| below(k) || within(k)) as u64;
        Run::new(start, end.saturating_sub(start))
    }

    /// Evaluate a range query: binary-search the contiguous matching span
    /// and translate it back to original coordinates.
    pub fn lookup(&self, interval: &Interval) -> SortedLookup {
        let span = self.matching_span(interval);
        let coords: Vec<u64> = self.perm[span.start as usize..span.end() as usize].to_vec();
        SortedLookup { sorted_span: span, selection: Selection::from_unsorted_coords(coords) }
    }

    /// Indices of the sorted regions overlapping `interval` — always a
    /// contiguous band; these are the only regions a sorted-strategy query
    /// must read.
    pub fn regions_overlapping(&self, interval: &Interval) -> Vec<u32> {
        (0..self.num_regions())
            .filter(|&r| {
                let (lo, hi) = self.region_range(r);
                interval.overlaps_range(lo, hi)
            })
            .collect()
    }

    /// Validate the replica against the object it claims to mirror: the
    /// length must match, `perm` must be a permutation of the original
    /// coordinates (no duplicates, none out of range), and the keys must be
    /// ascending (NaN-tolerant — NaNs sort to a stable position, so only a
    /// strict descent is evidence of corruption). A replica failing this
    /// check could silently drop or duplicate hits and must be rebuilt.
    pub fn self_check(&self, expected_len: u64) -> bool {
        if self.len() != expected_len || self.perm.len() != self.keys.len() {
            return false;
        }
        if self.region_len == 0 {
            return false;
        }
        let n = self.keys.len();
        let mut seen = vec![false; n];
        for &p in &self.perm {
            let Some(slot) = seen.get_mut(p as usize) else { return false };
            if *slot {
                return false;
            }
            *slot = true;
        }
        self.keys
            .windows(2)
            .all(|w| !matches!(w[0].partial_cmp(&w[1]), Some(std::cmp::Ordering::Greater)))
    }

    /// A deterministically corrupted clone for integrity-injection tests:
    /// one permutation entry is overwritten with a duplicate of its
    /// neighbour, which [`Self::self_check`] is guaranteed to reject for
    /// any replica of at least two elements.
    pub fn corrupted_copy(&self, seed: u64) -> SortedReplica {
        let mut bad = self.clone();
        if bad.perm.len() >= 2 {
            let i = (seed as usize) % (bad.perm.len() - 1);
            bad.perm[i] = bad.perm[i + 1];
        }
        bad
    }

    /// The sorted-coordinate span covered by sorted region `r`.
    pub fn region_span(&self, r: u32) -> Run {
        let start = u64::from(r) * self.region_len;
        Run::new(start, (start + self.region_len).min(self.len()) - start)
    }

    /// The sorted regions containing the matching span (equivalent to
    /// [`Self::regions_overlapping`] but computed from the span).
    pub fn regions_of_span(&self, span: &Run) -> Vec<u32> {
        if span.len == 0 {
            return Vec::new();
        }
        let first = (span.start / self.region_len) as u32;
        let last = ((span.end() - 1) / self.region_len) as u32;
        (first..=last).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdc_types::QueryOp;

    fn sample(n: usize) -> Vec<f64> {
        (0..n).map(|i| (((i * 73) % 997) as f32 / 100.0) as f64).collect()
    }

    fn exact_coords(values: &[f64], iv: &Interval) -> Vec<u64> {
        values
            .iter()
            .enumerate()
            .filter(|(_, &v)| iv.contains(v))
            .map(|(i, _)| i as u64)
            .collect()
    }

    #[test]
    fn keys_are_sorted() {
        let r = SortedReplica::build(&sample(5000), 512);
        assert!(r.keys().windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(r.len(), 5000);
    }

    #[test]
    fn perm_is_a_permutation() {
        let r = SortedReplica::build(&sample(3000), 512);
        let mut seen = vec![false; 3000];
        for &p in r.perm() {
            assert!(!seen[p as usize], "duplicate coord {p}");
            seen[p as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn perm_recovers_original_values() {
        let values = sample(2000);
        let r = SortedReplica::build(&values, 256);
        for s in 0..r.len() as usize {
            assert_eq!(r.keys()[s], values[r.perm()[s] as usize]);
        }
    }

    #[test]
    fn lookup_matches_naive_filter() {
        let values = sample(4000);
        let r = SortedReplica::build(&values, 512);
        for iv in [
            Interval::open(2.1, 2.2),
            Interval::closed(0.0, 1.0),
            Interval::from_op(QueryOp::Gt, 9.0),
            Interval::from_op(QueryOp::Lte, 0.5),
            Interval::from_op(QueryOp::Eq, 3.33),
            Interval::empty(),
        ] {
            let got = r.lookup(&iv).selection.iter_coords().collect::<Vec<_>>();
            assert_eq!(got, exact_coords(&values, &iv), "{iv}");
        }
    }

    #[test]
    fn matching_span_is_contiguous_and_correct_count() {
        let values = sample(4000);
        let r = SortedReplica::build(&values, 512);
        let iv = Interval::open(2.0, 5.0);
        let span = r.matching_span(&iv);
        assert_eq!(span.len, exact_coords(&values, &iv).len() as u64);
        // every key in the span matches; neighbours don't
        for s in span.start..span.end() {
            assert!(iv.contains(r.keys()[s as usize]));
        }
        if span.start > 0 {
            assert!(!iv.contains(r.keys()[span.start as usize - 1]));
        }
        if (span.end() as usize) < r.keys().len() {
            assert!(!iv.contains(r.keys()[span.end() as usize]));
        }
    }

    #[test]
    fn region_ranges_cover_and_order() {
        let r = SortedReplica::build(&sample(5000), 512);
        assert_eq!(r.num_regions(), 10);
        for i in 0..r.num_regions() {
            let (lo, hi) = r.region_range(i);
            assert!(lo <= hi);
            if i > 0 {
                assert!(r.region_range(i - 1).1 <= lo);
            }
        }
    }

    #[test]
    fn overlapping_regions_form_contiguous_band() {
        let values = sample(8000);
        let r = SortedReplica::build(&values, 512);
        let iv = Interval::open(3.0, 4.0);
        let regions = r.regions_overlapping(&iv);
        assert!(!regions.is_empty());
        for w in regions.windows(2) {
            assert_eq!(w[0] + 1, w[1], "band must be contiguous");
        }
        // spans agree with region arithmetic
        let span = r.matching_span(&iv);
        let from_span = r.regions_of_span(&span);
        for reg in &from_span {
            assert!(regions.contains(reg));
        }
    }

    #[test]
    fn high_selectivity_touches_few_regions() {
        let values = sample(100_000);
        let r = SortedReplica::build(&values, 1000); // 100 regions
        // ~0.1% selectivity window
        let iv = Interval::open(5.0, 5.01);
        let regions = r.regions_of_span(&r.matching_span(&iv));
        assert!(regions.len() <= 2, "highly selective query touched {} regions", regions.len());
    }

    #[test]
    fn empty_interval_and_span_regions() {
        let r = SortedReplica::build(&sample(1000), 100);
        let lookup = r.lookup(&Interval::empty());
        assert!(lookup.selection.is_empty());
        assert_eq!(lookup.sorted_span.len, 0);
        assert!(r.regions_of_span(&lookup.sorted_span).is_empty());
    }

    #[test]
    fn duplicate_values_all_found() {
        let values = vec![1.0, 2.0, 2.0, 2.0, 3.0, 2.0, 0.5];
        let r = SortedReplica::build(&values, 4);
        let iv = Interval::from_op(QueryOp::Eq, 2.0);
        let got = r.lookup(&iv).selection.iter_coords().collect::<Vec<_>>();
        assert_eq!(got, vec![1, 2, 3, 5]);
    }

    #[test]
    fn size_accounts_keys_plus_permutation() {
        let r = SortedReplica::build(&sample(1000), 100);
        assert_eq!(r.size_bytes(4), 1000 * 12);
        assert_eq!(r.size_bytes(8), 1000 * 16);
    }

    #[test]
    #[should_panic(expected = "region length must be positive")]
    fn zero_region_len_panics() {
        SortedReplica::build(&[1.0], 0);
    }

    #[test]
    fn self_check_accepts_freshly_built() {
        let values = sample(3000);
        let r = SortedReplica::build(&values, 512);
        assert!(r.self_check(values.len() as u64));
        assert!(!r.self_check(values.len() as u64 + 1));
    }

    #[test]
    fn corrupted_copy_always_fails_self_check() {
        let values = sample(2000);
        let r = SortedReplica::build(&values, 256);
        for seed in 0..32u64 {
            let bad = r.corrupted_copy(seed);
            assert!(!bad.self_check(values.len() as u64), "seed {seed} escaped detection");
            assert_eq!(bad, r.corrupted_copy(seed));
        }
    }
}
