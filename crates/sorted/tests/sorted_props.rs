//! Property tests: sorted-replica lookups must agree with a naive filter
//! for arbitrary data and intervals, and the permutation must be exact.

use pdc_sorted::SortedReplica;
use pdc_types::{Interval, QueryOp};
use proptest::prelude::*;

fn values_strategy() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-100.0f64..100.0, 1..500)
}

proptest! {
    #[test]
    fn lookup_equals_naive_filter(values in values_strategy(), lo in -120.0f64..120.0, w in 0.0f64..100.0) {
        let r = SortedReplica::build(&values, 64);
        let iv = Interval::open(lo, lo + w);
        let got: Vec<u64> = r.lookup(&iv).selection.iter_coords().collect();
        let expect: Vec<u64> = values
            .iter()
            .enumerate()
            .filter(|(_, &v)| iv.contains(v))
            .map(|(i, _)| i as u64)
            .collect();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn one_sided_lookup_equals_naive(
        values in values_strategy(),
        bound in -120.0f64..120.0,
        op in prop::sample::select(vec![QueryOp::Gt, QueryOp::Gte, QueryOp::Lt, QueryOp::Lte, QueryOp::Eq]),
    ) {
        let r = SortedReplica::build(&values, 32);
        let iv = Interval::from_op(op, bound);
        let got: Vec<u64> = r.lookup(&iv).selection.iter_coords().collect();
        let expect: Vec<u64> = values
            .iter()
            .enumerate()
            .filter(|(_, &v)| iv.contains(v))
            .map(|(i, _)| i as u64)
            .collect();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn permutation_is_bijective(values in values_strategy()) {
        let r = SortedReplica::build(&values, 64);
        let mut sorted_perm: Vec<u64> = r.perm().to_vec();
        sorted_perm.sort_unstable();
        let expect: Vec<u64> = (0..values.len() as u64).collect();
        prop_assert_eq!(sorted_perm, expect);
    }

    #[test]
    fn span_len_equals_hit_count(values in values_strategy(), lo in -120.0f64..120.0, w in 0.0f64..100.0) {
        let r = SortedReplica::build(&values, 64);
        let iv = Interval::closed(lo, lo + w);
        let span = r.matching_span(&iv);
        let exact = values.iter().filter(|&&v| iv.contains(v)).count() as u64;
        prop_assert_eq!(span.len, exact);
    }

    #[test]
    fn overlapping_regions_contain_all_hits(values in values_strategy(), lo in -120.0f64..120.0, w in 0.0f64..100.0) {
        let r = SortedReplica::build(&values, 16);
        let iv = Interval::closed(lo, lo + w);
        let overlapping = r.regions_overlapping(&iv);
        let span = r.matching_span(&iv);
        // every region containing part of the span must be in the
        // overlapping set (pruning must not discard hits)
        for reg in r.regions_of_span(&span) {
            prop_assert!(overlapping.contains(&reg), "region {} pruned but holds hits", reg);
        }
    }
}
