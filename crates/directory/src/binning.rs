//! Hierarchical binning region directory (UCSC-style fixed-level bins).
//!
//! The classic genome-browser binning scheme stores each interval in the
//! *smallest* bin that fully contains it, across a small fixed hierarchy
//! of nested bin levels; a range query probes, per level, the contiguous
//! run of bin ids its range overlaps. We apply the same scheme to the
//! value domain: every region's observed `[min, max]` (from its
//! histogram) is one interval, keyed through an order-preserving
//! `f64 → u64` transform so bin ids are plain integer shifts. Bins are
//! kept sparse in a `BTreeMap`, so probing a level's bin-id run visits
//! only *populated* bins regardless of how wide the run is.
//!
//! The probe refines bin-level candidates with the exact per-region
//! bounds test ([`pdc_types::Interval::overlaps_range`]) — the same test
//! histogram region-elimination performs — so the candidate set equals
//! the exact set of regions whose 1-D bounds overlap the interval:
//! a superset of the truly matching regions, and every region *outside*
//! it is guaranteed a `Pruned` verdict (disjoint bounds ⇒ zero hit
//! estimate). That guarantee is what lets the evaluator skip non-candidate
//! regions while keeping Selections and simulated charges bit-identical.

use pdc_types::Interval;
use std::collections::BTreeMap;

/// Bin-hierarchy shape: `levels` nested levels above the finest, each
/// coarsening the bin width by `2^level_bits`; intervals too wide even
/// for the coarsest level land in a single root bin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DirectoryConfig {
    /// Number of non-root levels.
    pub levels: u8,
    /// log2 of the fan-out between adjacent levels.
    pub level_bits: u32,
    /// Right-shift applied to the 64-bit value key at the finest level.
    pub base_shift: u32,
}

impl Default for DirectoryConfig {
    fn default() -> Self {
        // Finest bins cover 2^46 key units (1/64 of one f64 binade); four
        // levels of 16x fan-out reach 2^58 before falling back to the
        // root bin. Small enough to discriminate clustered region bounds,
        // coarse enough that a directory stays a handful of bins.
        Self { levels: 4, level_bits: 4, base_shift: 46 }
    }
}

/// Order-preserving `f64 → u64` key: flips the sign bit for positives and
/// all bits for negatives, so `a <= b ⇔ key(a) <= key(b)` for all
/// non-NaN values (including infinities).
#[inline]
fn value_key(v: f64) -> u64 {
    let b = v.to_bits();
    if b >> 63 == 1 {
        !b
    } else {
        b ^ (1 << 63)
    }
}

/// Result of one directory probe.
#[derive(Debug, Clone, Default)]
pub struct DirectoryProbe {
    /// Regions whose `[min, max]` bounds overlap the probed interval,
    /// ascending. Exactly the 1-D min/max candidate set.
    pub candidates: Vec<u32>,
    /// Populated bins visited.
    pub bins_probed: u64,
    /// Region entries examined inside the visited bins (the metadata the
    /// probe actually touched; the full-walk equivalent is one entry per
    /// region of the object).
    pub regions_examined: u64,
}

/// The hierarchical region directory of one object: per-region value
/// bounds plus the sparse bin tree that indexes them.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionDirectory {
    cfg: DirectoryConfig,
    /// `(level, bin id) → regions stored in that bin`, regions ascending.
    /// Level `cfg.levels` is the root bin (id 0).
    bins: BTreeMap<(u8, u64), Vec<u32>>,
    /// Observed `[min, max]` per region, indexed by region number.
    bounds: Vec<(f64, f64)>,
}

impl RegionDirectory {
    /// An empty directory with the given hierarchy shape.
    pub fn new(cfg: DirectoryConfig) -> Self {
        Self { cfg, bins: BTreeMap::new(), bounds: Vec::new() }
    }

    /// Build from per-region `[min, max]` bounds (region `r` = `bounds[r]`).
    pub fn from_bounds(cfg: DirectoryConfig, bounds: &[(f64, f64)]) -> Self {
        let mut d = Self::new(cfg);
        for &(mn, mx) in bounds {
            d.push_region(mn, mx);
        }
        d
    }

    /// Number of regions indexed.
    pub fn num_regions(&self) -> u32 {
        self.bounds.len() as u32
    }

    /// Number of populated bins.
    pub fn num_bins(&self) -> usize {
        self.bins.len()
    }

    /// The observed bounds of `region`, if indexed.
    pub fn region_bounds(&self, region: u32) -> Option<(f64, f64)> {
        self.bounds.get(region as usize).copied()
    }

    fn shift(&self, level: u8) -> u32 {
        (self.cfg.base_shift + u32::from(level) * self.cfg.level_bits).min(63)
    }

    /// The smallest bin fully containing `[mn, mx]`.
    fn place(&self, mn: f64, mx: f64) -> (u8, u64) {
        let (klo, khi) = (value_key(mn), value_key(mx));
        for level in 0..self.cfg.levels {
            let s = self.shift(level);
            if klo >> s == khi >> s {
                return (level, klo >> s);
            }
        }
        (self.cfg.levels, 0)
    }

    /// Append the next region (number `self.num_regions()`) with observed
    /// bounds `[mn, mx]` — the ingest path for a freshly sealed or newly
    /// created tail region.
    pub fn push_region(&mut self, mn: f64, mx: f64) {
        let r = self.bounds.len() as u32;
        self.bounds.push((mn, mx));
        let slot = self.place(mn, mx);
        let v = self.bins.entry(slot).or_default();
        let at = v.partition_point(|&x| x < r);
        v.insert(at, r);
    }

    /// Update an existing region's bounds (a streaming append widened the
    /// tail region), re-homing it if its containing bin changed.
    pub fn update_region(&mut self, region: u32, mn: f64, mx: f64) {
        let Some(slot) = self.bounds.get_mut(region as usize) else {
            return;
        };
        let old = *slot;
        *slot = (mn, mx);
        let from = self.place(old.0, old.1);
        let to = self.place(mn, mx);
        if from == to {
            return;
        }
        if let Some(v) = self.bins.get_mut(&from) {
            if let Ok(at) = v.binary_search(&region) {
                v.remove(at);
            }
            if v.is_empty() {
                self.bins.remove(&from);
            }
        }
        let v = self.bins.entry(to).or_default();
        let at = v.partition_point(|&x| x < region);
        v.insert(at, region);
    }

    /// Resolve the candidate region set for `interval` by bin overlap:
    /// per level, visit the populated bins in the interval's bin-id run,
    /// then refine each stored region with the exact bounds-overlap test.
    pub fn probe(&self, interval: &Interval) -> DirectoryProbe {
        let mut out = DirectoryProbe::default();
        if interval.is_empty() {
            return out;
        }
        let klo = interval.lo.map_or(0, |b| value_key(b.value));
        let khi = interval.hi.map_or(u64::MAX, |b| value_key(b.value));
        for level in 0..=self.cfg.levels {
            let (blo, bhi) = if level == self.cfg.levels {
                (0, 0)
            } else {
                let s = self.shift(level);
                (klo >> s, khi >> s)
            };
            for (_, regions) in self.bins.range((level, blo)..=(level, bhi)) {
                out.bins_probed += 1;
                for &r in regions {
                    out.regions_examined += 1;
                    let (mn, mx) = self.bounds[r as usize];
                    if mn <= mx && interval.overlaps_range(mn, mx) {
                        out.candidates.push(r);
                    }
                }
            }
        }
        out.candidates.sort_unstable();
        out
    }

    /// In-memory metadata footprint in bytes.
    pub fn size_bytes(&self) -> u64 {
        let bin_bytes: u64 =
            self.bins.values().map(|v| 16 + 4 * v.len() as u64).sum();
        16 * self.bounds.len() as u64 + bin_bytes
    }

    /// Validate against the region count the metadata claims: every
    /// region indexed exactly once, in exactly the bin [`Self::place`]
    /// assigns it, with non-NaN bounds. A directory failing this cannot
    /// be trusted for candidate resolution and must be rebuilt from the
    /// region histograms.
    pub fn self_check(&self, num_regions: u32) -> bool {
        if self.bounds.len() as u32 != num_regions {
            return false;
        }
        let mut seen = vec![false; self.bounds.len()];
        for (&slot, regions) in &self.bins {
            for &r in regions {
                let Some((mn, mx)) = self.region_bounds(r) else {
                    return false;
                };
                if mn.is_nan() || mx.is_nan() {
                    return false;
                }
                if seen[r as usize] || self.place(mn, mx) != slot {
                    return false;
                }
                seen[r as usize] = true;
            }
        }
        seen.iter().all(|&s| s)
    }

    /// A deterministically corrupted clone for integrity-injection tests:
    /// one region is re-homed to a bin [`Self::place`] would never assign
    /// it, so [`Self::self_check`] is guaranteed to reject the result.
    pub fn corrupted_copy(&self, seed: u64) -> RegionDirectory {
        let mut bad = self.clone();
        if bad.bounds.is_empty() {
            bad.bounds.push((1.0, 0.0));
            return bad;
        }
        let victim = (seed % bad.bounds.len() as u64) as u32;
        let (mn, mx) = bad.bounds[victim as usize];
        let from = bad.place(mn, mx);
        if let Some(v) = bad.bins.get_mut(&from) {
            if let Ok(at) = v.binary_search(&victim) {
                v.remove(at);
            }
            if v.is_empty() {
                bad.bins.remove(&from);
            }
        }
        // Root-level bin 1 is unreachable: place() only ever emits root
        // bin 0.
        bad.bins.entry((bad.cfg.levels, 1)).or_default().push(victim);
        bad
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bounds_of(data: &[Vec<f64>]) -> Vec<(f64, f64)> {
        data.iter()
            .map(|r| {
                let mn = r.iter().cloned().fold(f64::INFINITY, f64::min);
                let mx = r.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                (mn, mx)
            })
            .collect()
    }

    fn gen_regions(seed: u64, n_regions: usize, per: usize) -> Vec<Vec<f64>> {
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n_regions)
            .map(|r| {
                let center = (r as f64) * 7.3 - 40.0 + next() * 3.0;
                (0..per).map(|_| center + next() * 10.0 - 5.0).collect()
            })
            .collect()
    }

    #[test]
    fn value_key_is_order_preserving() {
        let vals = [
            f64::NEG_INFINITY,
            -1e300,
            -2.5,
            -1.0,
            -1e-300,
            0.0,
            1e-300,
            1.0,
            2.5,
            1e300,
            f64::INFINITY,
        ];
        for w in vals.windows(2) {
            assert!(value_key(w[0]) < value_key(w[1]), "{} vs {}", w[0], w[1]);
        }
        assert_eq!(value_key(-0.0), value_key(0.0) - 1);
    }

    #[test]
    fn probe_equals_exact_bounds_overlap_set() {
        for seed in [1u64, 7, 42] {
            let regions = gen_regions(seed, 40, 64);
            let bounds = bounds_of(&regions);
            let d = RegionDirectory::from_bounds(DirectoryConfig::default(), &bounds);
            assert!(d.self_check(40));
            for iv in [
                Interval::open(-10.0, 10.0),
                Interval::closed(100.0, 300.0),
                Interval::from_op(pdc_types::QueryOp::Gt, 150.0),
                Interval::from_op(pdc_types::QueryOp::Lt, -30.0),
                Interval::open(33.3, 33.4),
                Interval::ALL,
                Interval::empty(),
            ] {
                let expect: Vec<u32> = bounds
                    .iter()
                    .enumerate()
                    .filter(|(_, &(mn, mx))| iv.overlaps_range(mn, mx))
                    .map(|(r, _)| r as u32)
                    .collect();
                let probe = d.probe(&iv);
                assert_eq!(probe.candidates, expect, "seed {seed} iv {iv}");
                // Superset of the truly matching regions.
                for (r, vals) in regions.iter().enumerate() {
                    if vals.iter().any(|&v| iv.contains(v)) {
                        assert!(
                            probe.candidates.contains(&(r as u32)),
                            "seed {seed} iv {iv}: missed region {r}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn probe_touches_fewer_entries_than_full_walk_on_narrow_ranges() {
        // Monotone region bounds (VPIC x-like): a narrow window should
        // examine far fewer region entries than the 80-region full walk.
        let bounds: Vec<(f64, f64)> =
            (0..80).map(|r| (r as f64 * 4.0, r as f64 * 4.0 + 3.9)).collect();
        let d = RegionDirectory::from_bounds(DirectoryConfig::default(), &bounds);
        let probe = d.probe(&Interval::open(100.0, 120.0));
        assert!(!probe.candidates.is_empty());
        assert!(
            probe.regions_examined < 80,
            "examined {} of 80",
            probe.regions_examined
        );
    }

    #[test]
    fn update_region_rehomes_bins() {
        let mut d = RegionDirectory::from_bounds(
            DirectoryConfig::default(),
            &[(0.0, 1.0), (5.0, 6.0)],
        );
        // Widen region 1 drastically: must move to a coarser bin and stay
        // consistent.
        d.update_region(1, 5.0, 4000.0);
        assert!(d.self_check(2));
        let probe = d.probe(&Interval::closed(3000.0, 3500.0));
        assert_eq!(probe.candidates, vec![1]);
        // Narrow update that keeps the same bin also stays consistent.
        d.update_region(0, 0.0, 1.1);
        assert!(d.self_check(2));
    }

    #[test]
    fn push_region_matches_from_bounds() {
        let bounds: Vec<(f64, f64)> =
            (0..20).map(|r| (r as f64, r as f64 + 0.5)).collect();
        let whole = RegionDirectory::from_bounds(DirectoryConfig::default(), &bounds);
        let mut incr = RegionDirectory::new(DirectoryConfig::default());
        for &(mn, mx) in &bounds {
            incr.push_region(mn, mx);
        }
        assert_eq!(whole, incr);
    }

    #[test]
    fn empty_region_sentinel_is_never_a_candidate() {
        let mut d = RegionDirectory::new(DirectoryConfig::default());
        d.push_region(f64::INFINITY, f64::NEG_INFINITY);
        d.push_region(0.0, 1.0);
        assert!(d.self_check(2));
        assert_eq!(d.probe(&Interval::ALL).candidates, vec![1]);
    }

    #[test]
    fn corrupted_copy_always_fails_self_check() {
        let bounds: Vec<(f64, f64)> =
            (0..17).map(|r| (r as f64 * 2.0, r as f64 * 2.0 + 1.0)).collect();
        let d = RegionDirectory::from_bounds(DirectoryConfig::default(), &bounds);
        for seed in 0..24u64 {
            let bad = d.corrupted_copy(seed);
            assert!(!bad.self_check(17), "seed {seed} escaped detection");
            assert_eq!(bad, d.corrupted_copy(seed));
        }
    }
}
