//! Cross-variable joint bounds: per-region 2-D cell grids.
//!
//! Independent 1-D pruning admits every region whose *projection* onto
//! each constrained variable overlaps that variable's interval — even
//! when no single element satisfies the conjunction. A [`JointGrid`]
//! over a registered variable pair `(a, b)` summarizes each region with
//! a small fixed grid ([`JOINT_GRID_DIM`]²) of cells, each carrying its
//! element count and the exact bounding box of the `(a, b)` value pairs
//! that landed in it. A conjunctive query rectangle that overlaps no
//! cell bounding box proves the region empty for the *joint* predicate,
//! and summing the counts of overlapping cells gives a sound upper
//! bound on the region's joint hits (used to tighten the adaptive
//! planner's estimates).
//!
//! Soundness does not depend on the cell geometry: values outside a
//! region's initial grid extent are clamped to the edge cells and the
//! *cell bounding boxes* — not the nominal cell edges — drive every
//! overlap test. That is what makes incremental extension by streaming
//! appends trivially sound: new values widen the boxes they fall into,
//! never invalidating previous answers.
//!
//! Coverage is tracked per coordinate: a grid answers for a region only
//! when it has folded in at least as many of that region's elements as
//! the caller's plan-time snapshot expects ([`JointGrid::rect_upper`]
//! returns `None` otherwise, and the caller falls back to 1-D pruning
//! alone). Appends to either object of the pair extend the grid to
//! `min(extent(a), extent(b))` — never a rebuild.

use pdc_types::{Interval, ObjectId};

/// Cells per side of a region's joint grid.
pub const JOINT_GRID_DIM: usize = 8;

const CELLS: usize = JOINT_GRID_DIM * JOINT_GRID_DIM;

/// One populated cell: element count plus the exact bounding box of the
/// value pairs counted into it.
#[derive(Debug, Clone, Copy, PartialEq)]
struct JointCell {
    count: u64,
    amin: f64,
    amax: f64,
    bmin: f64,
    bmax: f64,
}

/// One region's joint summary: fixed cell geometry (set when the region
/// first receives data) plus its sparse populated cells.
#[derive(Debug, Clone, PartialEq, Default)]
struct RegionJoint {
    /// Cell geometry: origin and cell width per axis. Zero widths mean
    /// degenerate (constant) data on that axis; everything clamps to
    /// cell 0.
    a0: f64,
    aw: f64,
    b0: f64,
    bw: f64,
    /// `(cell index, cell)` ascending by index; at most [`CELLS`].
    cells: Vec<(u8, JointCell)>,
    /// Elements of this region folded in so far.
    elems: u64,
}

impl RegionJoint {
    fn cell_index(&self, va: f64, vb: f64) -> u8 {
        let ci = if self.aw > 0.0 {
            (((va - self.a0) / self.aw) as usize).min(JOINT_GRID_DIM - 1)
        } else {
            0
        };
        let cj = if self.bw > 0.0 {
            (((vb - self.b0) / self.bw) as usize).min(JOINT_GRID_DIM - 1)
        } else {
            0
        };
        (ci * JOINT_GRID_DIM + cj) as u8
    }

    fn add(&mut self, va: f64, vb: f64) {
        let idx = self.cell_index(va, vb);
        self.elems += 1;
        match self.cells.binary_search_by_key(&idx, |&(i, _)| i) {
            Ok(at) => {
                let c = &mut self.cells[at].1;
                c.count += 1;
                c.amin = c.amin.min(va);
                c.amax = c.amax.max(va);
                c.bmin = c.bmin.min(vb);
                c.bmax = c.bmax.max(vb);
            }
            Err(at) => {
                self.cells.insert(
                    at,
                    (idx, JointCell { count: 1, amin: va, amax: va, bmin: vb, bmax: vb }),
                );
            }
        }
    }
}

/// The joint-bounds grid of one registered variable pair `(a, b)` with
/// aligned region grids (identical elements-per-region).
#[derive(Debug, Clone, PartialEq)]
pub struct JointGrid {
    a: ObjectId,
    b: ObjectId,
    /// Elements per full region (both objects, by registration contract).
    region_elems: u64,
    regions: Vec<RegionJoint>,
    /// Total coordinates folded in: the grid covers `[0, covered)` of
    /// both objects' element spaces.
    covered: u64,
}

impl JointGrid {
    /// An empty grid for the pair, with `region_elems` elements per full
    /// region.
    pub fn new(a: ObjectId, b: ObjectId, region_elems: u64) -> Self {
        assert!(region_elems > 0, "region_elems must be positive");
        Self { a, b, region_elems, regions: Vec::new(), covered: 0 }
    }

    /// The registered pair, in registration order.
    pub fn pair(&self) -> (ObjectId, ObjectId) {
        (self.a, self.b)
    }

    /// Coordinates covered: the grid summarizes elements `[0, covered)`.
    pub fn covered(&self) -> u64 {
        self.covered
    }

    /// Elements per full region.
    pub fn region_elems(&self) -> u64 {
        self.region_elems
    }

    /// Regions with at least one element folded in.
    pub fn num_regions(&self) -> u32 {
        self.regions.len() as u32
    }

    /// Fold in the value pairs at coordinates
    /// `[covered, covered + av.len())`. `av`/`bv` must be equal-length
    /// slices of the two objects' values over exactly that coordinate
    /// range — the incremental extension path for both initial build and
    /// streaming appends.
    pub fn extend(&mut self, av: &[f64], bv: &[f64]) {
        assert_eq!(av.len(), bv.len(), "joint extension requires paired values");
        for (i, (&va, &vb)) in av.iter().zip(bv).enumerate() {
            let coord = self.covered + i as u64;
            let r = (coord / self.region_elems) as usize;
            if r == self.regions.len() {
                // New region: fix its cell geometry from the extent of
                // the chunk we have for it (clamping keeps later values
                // sound regardless).
                let hi = ((r as u64 + 1) * self.region_elems - self.covered) as usize;
                let chunk_a = &av[i..av.len().min(hi)];
                let chunk_b = &bv[i..bv.len().min(hi)];
                self.regions.push(fresh_region(chunk_a, chunk_b));
            }
            self.regions[r].add(va, vb);
        }
        self.covered += av.len() as u64;
    }

    /// Cells a rectangle test against `region` examines (the host/work
    /// charge a consumer should account for); 0 when the grid cannot
    /// answer for the region.
    pub fn cells_examined(&self, region: u32, span_len: u64) -> u64 {
        if self.answers_for(region, span_len) {
            self.regions[region as usize].cells.len() as u64
        } else {
            0
        }
    }

    fn answers_for(&self, region: u32, span_len: u64) -> bool {
        let r = u64::from(region);
        // The grid must have folded in at least the `span_len` elements
        // the caller's snapshot attributes to this region. (It may hold
        // more — an append landed after the snapshot — which only widens
        // boxes and raises counts: still a sound upper bound.)
        (r as usize) < self.regions.len()
            && self.covered >= r * self.region_elems + span_len
            && span_len <= self.region_elems
    }

    /// Upper bound on elements of `region` whose `(a, b)` pair lies in
    /// `iva × ivb`, or `None` when the grid does not (yet) cover the
    /// `span_len` elements the caller's snapshot attributes to the
    /// region. `Some(0)` proves the region empty for the conjunction.
    pub fn rect_upper(
        &self,
        region: u32,
        span_len: u64,
        iva: &Interval,
        ivb: &Interval,
    ) -> Option<u64> {
        if !self.answers_for(region, span_len) {
            return None;
        }
        let mut upper = 0u64;
        for &(_, c) in &self.regions[region as usize].cells {
            if iva.overlaps_range(c.amin, c.amax) && ivb.overlaps_range(c.bmin, c.bmax) {
                upper += c.count;
            }
        }
        Some(upper)
    }

    /// In-memory metadata footprint in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.regions
            .iter()
            .map(|r| 48 + 48 * r.cells.len() as u64)
            .sum::<u64>()
            + 40
    }

    /// Internal consistency: per-region cell counts sum to the region's
    /// element tally, region tallies sum to `covered`, cells are sorted,
    /// unique, in range, with ordered finite boxes. A grid failing this
    /// must be rebuilt from the pair's data.
    pub fn self_check(&self) -> bool {
        let mut sum = 0u64;
        for (r, rj) in self.regions.iter().enumerate() {
            let cell_sum: u64 = rj.cells.iter().map(|&(_, c)| c.count).sum();
            if cell_sum != rj.elems {
                return false;
            }
            let full = (r as u64 + 1) * self.region_elems <= self.covered;
            let expect = if full {
                self.region_elems
            } else {
                self.covered - r as u64 * self.region_elems
            };
            if rj.elems != expect {
                return false;
            }
            let mut prev: Option<u8> = None;
            for &(idx, c) in &rj.cells {
                if usize::from(idx) >= CELLS
                    || prev.is_some_and(|p| p >= idx)
                    || c.count == 0
                    || !(c.amin <= c.amax && c.bmin <= c.bmax)
                    || !(c.amin.is_finite() && c.amax.is_finite())
                    || !(c.bmin.is_finite() && c.bmax.is_finite())
                {
                    return false;
                }
                prev = Some(idx);
            }
            sum += rj.elems;
        }
        sum == self.covered
    }

    /// A deterministically corrupted clone for integrity-injection
    /// tests; always fails [`Self::self_check`].
    pub fn corrupted_copy(&self, seed: u64) -> JointGrid {
        let mut bad = self.clone();
        let victim = bad
            .regions
            .iter()
            .position(|r| !r.cells.is_empty())
            .map(|r| (r + seed as usize) % bad.regions.len());
        match victim {
            Some(mut r) => {
                while bad.regions[r].cells.is_empty() {
                    r = (r + 1) % bad.regions.len();
                }
                let n = bad.regions[r].cells.len();
                let c = &mut bad.regions[r].cells[seed as usize % n].1;
                c.count += 1 + seed % 5;
            }
            None => bad.covered += 1,
        }
        bad
    }
}

fn fresh_region(chunk_a: &[f64], chunk_b: &[f64]) -> RegionJoint {
    let (mut amn, mut amx) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut bmn, mut bmx) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in chunk_a {
        amn = amn.min(v);
        amx = amx.max(v);
    }
    for &v in chunk_b {
        bmn = bmn.min(v);
        bmx = bmx.max(v);
    }
    let width = |mn: f64, mx: f64| {
        if mx > mn && mn.is_finite() && mx.is_finite() {
            (mx - mn) / JOINT_GRID_DIM as f64
        } else {
            0.0
        }
    };
    RegionJoint {
        a0: if amn.is_finite() { amn } else { 0.0 },
        aw: width(amn, amx),
        b0: if bmn.is_finite() { bmn } else { 0.0 },
        bw: width(bmn, bmx),
        cells: Vec::new(),
        elems: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn correlated(n: usize) -> (Vec<f64>, Vec<f64>) {
        // b ramps 0..n; a is high only where b is in its last third —
        // the VPIC (Energy, x) shape in miniature.
        let b: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let a: Vec<f64> = (0..n)
            .map(|i| {
                if i * 3 >= n * 2 {
                    2.0 + ((i * 13) % 100) as f64 / 50.0
                } else {
                    ((i * 7) % 100) as f64 / 100.0
                }
            })
            .collect();
        (a, b)
    }

    fn exact_rect(a: &[f64], b: &[f64], lo: usize, hi: usize, iva: &Interval, ivb: &Interval) -> u64 {
        (lo..hi.min(a.len()))
            .filter(|&i| iva.contains(a[i]) && ivb.contains(b[i]))
            .count() as u64
    }

    #[test]
    fn rect_upper_is_a_sound_upper_bound() {
        let (a, b) = correlated(4000);
        let per = 500u64;
        let mut g = JointGrid::new(ObjectId(1), ObjectId(2), per);
        g.extend(&a, &b);
        assert!(g.self_check());
        assert_eq!(g.covered(), 4000);
        for iva in [Interval::open(2.0, 10.0), Interval::open(0.2, 0.4), Interval::ALL] {
            for ivb in [
                Interval::open(100.0, 900.0),
                Interval::open(3000.0, 3999.0),
                Interval::ALL,
            ] {
                for r in 0..8u32 {
                    let upper = g.rect_upper(r, per, &iva, &ivb).unwrap();
                    let exact = exact_rect(
                        &a,
                        &b,
                        (r as u64 * per) as usize,
                        ((r as u64 + 1) * per) as usize,
                        &iva,
                        &ivb,
                    );
                    assert!(upper >= exact, "region {r}: upper {upper} < exact {exact}");
                }
            }
        }
    }

    #[test]
    fn joint_kills_regions_1d_admits() {
        let (a, b) = correlated(4000);
        let per = 500u64;
        let mut g = JointGrid::new(ObjectId(1), ObjectId(2), per);
        g.extend(&a, &b);
        // Region 0: a in [0,1), b in [0,500). The rectangle a>2 AND
        // b in (0,400) is jointly empty even though... region 7 holds
        // a>2 (passes a's 1-D test elsewhere) — here check that a
        // region whose own values never combine is killed.
        let iva = Interval::from_op(pdc_types::QueryOp::Gt, 2.0);
        let ivb = Interval::open(0.0, 400.0);
        assert_eq!(g.rect_upper(0, per, &iva, &ivb), Some(0));
        // A region that genuinely holds matching pairs is not killed.
        let ivb_hot = Interval::open(3500.0, 3999.0);
        assert!(g.rect_upper(7, per, &iva, &ivb_hot).unwrap() > 0);
    }

    #[test]
    fn incremental_extension_matches_one_shot_and_needs_no_rebuild() {
        let (a, b) = correlated(3000);
        let per = 400u64;
        let mut whole = JointGrid::new(ObjectId(1), ObjectId(2), per);
        whole.extend(&a, &b);
        let mut incr = JointGrid::new(ObjectId(1), ObjectId(2), per);
        // Ragged chunks that split regions mid-way.
        let cuts = [0usize, 350, 401, 1199, 1200, 2750, 3000];
        for w in cuts.windows(2) {
            incr.extend(&a[w[0]..w[1]], &b[w[0]..w[1]]);
            assert!(incr.self_check(), "after chunk ending {}", w[1]);
        }
        assert_eq!(incr.covered(), whole.covered());
        // Same coverage and soundness; geometry may differ (chunks fix
        // geometry from partial extents), so compare answers not bits.
        let iva = Interval::from_op(pdc_types::QueryOp::Gt, 2.0);
        for r in 0..(3000 / per as usize) as u32 {
            for ivb in [Interval::open(0.0, 500.0), Interval::open(2100.0, 2900.0)] {
                let wu = whole.rect_upper(r, per, &iva, &ivb).unwrap();
                let iu = incr.rect_upper(r, per, &iva, &ivb).unwrap();
                let exact = exact_rect(
                    &a,
                    &b,
                    (r as u64 * per) as usize,
                    ((r as u64 + 1) * per) as usize,
                    &iva,
                    &ivb,
                );
                assert!(wu >= exact && iu >= exact, "region {r}: {wu}/{iu} vs {exact}");
            }
        }
    }

    #[test]
    fn partial_coverage_declines_to_answer() {
        let (a, b) = correlated(1000);
        let per = 400u64;
        let mut g = JointGrid::new(ObjectId(1), ObjectId(2), per);
        g.extend(&a[..500], &b[..500]);
        // Region 0 fully covered; region 1 only 100 of 400 elements.
        assert!(g.rect_upper(0, per, &Interval::ALL, &Interval::ALL).is_some());
        assert!(g.rect_upper(1, per, &Interval::ALL, &Interval::ALL).is_none());
        assert!(g.rect_upper(1, 100, &Interval::ALL, &Interval::ALL).is_some());
        assert!(g.rect_upper(2, per, &Interval::ALL, &Interval::ALL).is_none());
        g.extend(&a[500..], &b[500..]);
        assert_eq!(g.rect_upper(1, per, &Interval::ALL, &Interval::ALL), Some(400));
        assert!(g.self_check());
    }

    #[test]
    fn corrupted_copy_always_fails_self_check() {
        let (a, b) = correlated(1200);
        let mut g = JointGrid::new(ObjectId(3), ObjectId(4), 300);
        g.extend(&a, &b);
        for seed in 0..16u64 {
            let bad = g.corrupted_copy(seed);
            assert!(!bad.self_check(), "seed {seed} escaped detection");
            assert_eq!(bad, g.corrupted_copy(seed));
        }
        let empty = JointGrid::new(ObjectId(3), ObjectId(4), 300);
        assert!(!empty.corrupted_copy(0).self_check());
    }
}
