//! # pdc-directory
//!
//! Metadata-side acceleration structures for conjunctive region pruning:
//!
//! * [`binning`] — the hierarchical **region directory**: UCSC-style
//!   fixed-level binning over each region's observed `[min, max]` value
//!   bounds. A conjunctive query resolves its candidate region set with a
//!   range→bin overlap lookup over the populated bins instead of walking
//!   every region's metadata. The directory is *advisory*: the candidate
//!   set it returns is exactly the set of regions whose 1-D bounds
//!   overlap the query interval, so every region it skips would have been
//!   pruned by the histogram min/max test anyway — Selections and
//!   simulated costs are bit-identical with the directory on or off.
//! * [`joint`] — **cross-variable joint bounds**: a compact per-region
//!   2-D grid of cell counts + cell bounding boxes over a correlated
//!   variable pair (e.g. `(Energy, x)` in VPIC). A conjunction
//!   constraining both variables can prove a region empty for the *joint*
//!   rectangle even when each 1-D projection overlaps, killing the
//!   false-positive regions independent per-variable pruning admits.
//!
//! Both structures are pure functions of data already in the metadata
//! service (region histograms / region payloads), are maintained
//! incrementally by streaming appends, and are validated + rebuilt by the
//! same verify-and-fallback lane as histograms and sorted replicas.

pub mod binning;
pub mod joint;

pub use binning::{DirectoryConfig, DirectoryProbe, RegionDirectory};
pub use joint::{JointGrid, JOINT_GRID_DIM};
