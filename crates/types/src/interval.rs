//! Normalized value intervals.
//!
//! A conjunction of comparison constraints on one object (e.g.
//! `Energy > 2.1 AND Energy < 2.2`) reduces to a single [`Interval`].
//! Intervals are the lingua franca between the planner, the histogram
//! (pruning + selectivity estimation), the bitmap index (bin overlap) and
//! the sorted replica (binary-search bounds).

use crate::op::QueryOp;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One endpoint of an interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Bound {
    /// Endpoint value.
    pub value: f64,
    /// Whether the endpoint itself is included.
    pub inclusive: bool,
}

/// A (possibly unbounded, possibly empty) interval of `f64` values.
///
/// The canonical empty interval is `lo > hi`, produced by
/// [`Interval::empty`] or by intersecting disjoint intervals.
///
/// ```
/// use pdc_types::{Interval, QueryOp};
/// // Energy > 2.1 AND Energy < 2.2 fuses into one interval:
/// let iv = Interval::from_op(QueryOp::Gt, 2.1)
///     .intersect(&Interval::from_op(QueryOp::Lt, 2.2));
/// assert!(iv.contains(2.15));
/// assert!(!iv.contains(2.1));
/// // region pruning: does a region with values in [0.0, 2.0] matter?
/// assert!(!iv.overlaps_range(0.0, 2.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Interval {
    /// Lower endpoint, or `None` for unbounded below.
    pub lo: Option<Bound>,
    /// Upper endpoint, or `None` for unbounded above.
    pub hi: Option<Bound>,
}

impl Interval {
    /// The interval containing every value.
    pub const ALL: Interval = Interval { lo: None, hi: None };

    /// An interval from a single comparison `x OP value`.
    pub fn from_op(op: QueryOp, value: f64) -> Self {
        match op {
            QueryOp::Gt => Interval { lo: Some(Bound { value, inclusive: false }), hi: None },
            QueryOp::Gte => Interval { lo: Some(Bound { value, inclusive: true }), hi: None },
            QueryOp::Lt => Interval { lo: None, hi: Some(Bound { value, inclusive: false }) },
            QueryOp::Lte => Interval { lo: None, hi: Some(Bound { value, inclusive: true }) },
            QueryOp::Eq => Interval {
                lo: Some(Bound { value, inclusive: true }),
                hi: Some(Bound { value, inclusive: true }),
            },
        }
    }

    /// The closed interval `[lo, hi]`.
    pub fn closed(lo: f64, hi: f64) -> Self {
        Interval {
            lo: Some(Bound { value: lo, inclusive: true }),
            hi: Some(Bound { value: hi, inclusive: true }),
        }
    }

    /// The open interval `(lo, hi)` — how the paper writes `lo < x < hi`.
    pub fn open(lo: f64, hi: f64) -> Self {
        Interval {
            lo: Some(Bound { value: lo, inclusive: false }),
            hi: Some(Bound { value: hi, inclusive: false }),
        }
    }

    /// A canonical empty interval.
    pub fn empty() -> Self {
        Interval {
            lo: Some(Bound { value: 1.0, inclusive: false }),
            hi: Some(Bound { value: 0.0, inclusive: false }),
        }
    }

    /// Whether no value satisfies the interval.
    pub fn is_empty(&self) -> bool {
        match (self.lo, self.hi) {
            (Some(lo), Some(hi)) => {
                lo.value > hi.value
                    || (lo.value == hi.value && !(lo.inclusive && hi.inclusive))
            }
            _ => false,
        }
    }

    /// Whether every value satisfies the interval.
    pub fn is_all(&self) -> bool {
        self.lo.is_none() && self.hi.is_none()
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, v: f64) -> bool {
        if let Some(lo) = self.lo {
            if v < lo.value || (v == lo.value && !lo.inclusive) {
                return false;
            }
        }
        if let Some(hi) = self.hi {
            if v > hi.value || (v == hi.value && !hi.inclusive) {
                return false;
            }
        }
        true
    }

    /// Intersection with another interval (conjunction of constraints).
    pub fn intersect(&self, other: &Interval) -> Interval {
        let lo = match (self.lo, other.lo) {
            (None, b) | (b, None) => b,
            (Some(a), Some(b)) => {
                if a.value > b.value || (a.value == b.value && !a.inclusive) {
                    Some(a)
                } else {
                    Some(b)
                }
            }
        };
        let hi = match (self.hi, other.hi) {
            (None, b) | (b, None) => b,
            (Some(a), Some(b)) => {
                if a.value < b.value || (a.value == b.value && !a.inclusive) {
                    Some(a)
                } else {
                    Some(b)
                }
            }
        };
        Interval { lo, hi }
    }

    /// Whether the closed range `[min, max]` (e.g. a region's min/max
    /// metadata) can contain any matching value. This is the region-pruning
    /// test of the paper (§III-D2): a region whose `[min,max]` does not
    /// overlap the query interval is skipped entirely.
    pub fn overlaps_range(&self, min: f64, max: f64) -> bool {
        if self.is_empty() {
            return false;
        }
        if let Some(lo) = self.lo {
            if max < lo.value || (max == lo.value && !lo.inclusive) {
                return false;
            }
        }
        if let Some(hi) = self.hi {
            if min > hi.value || (min == hi.value && !hi.inclusive) {
                return false;
            }
        }
        true
    }

    /// Whether the closed range `[min, max]` lies entirely inside the
    /// interval (every value in the range matches).
    pub fn covers_range(&self, min: f64, max: f64) -> bool {
        self.contains(min) && self.contains(max)
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.lo {
            Some(b) if b.inclusive => write!(f, "[{}", b.value)?,
            Some(b) => write!(f, "({}", b.value)?,
            None => write!(f, "(-inf")?,
        }
        write!(f, ", ")?;
        match self.hi {
            Some(b) if b.inclusive => write!(f, "{}]", b.value),
            Some(b) => write!(f, "{})", b.value),
            None => write!(f, "+inf)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_op_semantics_match_direct_eval() {
        for op in [QueryOp::Gt, QueryOp::Gte, QueryOp::Lt, QueryOp::Lte, QueryOp::Eq] {
            let iv = Interval::from_op(op, 2.0);
            for v in [1.0, 2.0, 3.0] {
                assert_eq!(iv.contains(v), op.eval(v, 2.0), "{op} {v}");
            }
        }
    }

    #[test]
    fn open_closed_membership() {
        let open = Interval::open(1.0, 2.0);
        assert!(!open.contains(1.0));
        assert!(open.contains(1.5));
        assert!(!open.contains(2.0));

        let closed = Interval::closed(1.0, 2.0);
        assert!(closed.contains(1.0));
        assert!(closed.contains(2.0));
        assert!(!closed.contains(2.5));
    }

    #[test]
    fn intersect_produces_conjunction() {
        // Energy > 2.1 AND Energy < 2.2
        let iv = Interval::from_op(QueryOp::Gt, 2.1).intersect(&Interval::from_op(QueryOp::Lt, 2.2));
        assert!(iv.contains(2.15));
        assert!(!iv.contains(2.1));
        assert!(!iv.contains(2.2));
        assert!(!iv.is_empty());
    }

    #[test]
    fn intersect_disjoint_is_empty() {
        let a = Interval::from_op(QueryOp::Lt, 1.0);
        let b = Interval::from_op(QueryOp::Gt, 2.0);
        assert!(a.intersect(&b).is_empty());

        // touching at an excluded endpoint
        let a = Interval::from_op(QueryOp::Lt, 1.0);
        let b = Interval::from_op(QueryOp::Gte, 1.0);
        assert!(a.intersect(&b).is_empty());

        // touching at an included endpoint is the single point
        let a = Interval::from_op(QueryOp::Lte, 1.0);
        let b = Interval::from_op(QueryOp::Gte, 1.0);
        let point = a.intersect(&b);
        assert!(!point.is_empty());
        assert!(point.contains(1.0));
        assert!(!point.contains(1.0001));
    }

    #[test]
    fn tighter_bound_wins_at_equal_values() {
        let strict = Interval::from_op(QueryOp::Gt, 1.0);
        let loose = Interval::from_op(QueryOp::Gte, 1.0);
        let iv = strict.intersect(&loose);
        assert!(!iv.contains(1.0));
    }

    #[test]
    fn overlaps_range_prunes_correctly() {
        let iv = Interval::open(2.1, 2.2); // 2.1 < x < 2.2
        assert!(!iv.overlaps_range(0.0, 2.0)); // region entirely below
        assert!(!iv.overlaps_range(2.3, 5.0)); // region entirely above
        assert!(iv.overlaps_range(2.0, 2.15)); // straddles lower endpoint
        assert!(iv.overlaps_range(0.0, 10.0)); // superset
        // touching the excluded endpoint exactly -> prune
        assert!(!iv.overlaps_range(0.0, 2.1));
        assert!(!iv.overlaps_range(2.2, 3.0));
        // touching an included endpoint -> keep
        let iv = Interval::closed(2.1, 2.2);
        assert!(iv.overlaps_range(0.0, 2.1));
        assert!(iv.overlaps_range(2.2, 3.0));
    }

    #[test]
    fn covers_range() {
        let iv = Interval::closed(0.0, 10.0);
        assert!(iv.covers_range(1.0, 9.0));
        assert!(iv.covers_range(0.0, 10.0));
        assert!(!iv.covers_range(-1.0, 5.0));
        assert!(!Interval::open(0.0, 10.0).covers_range(0.0, 5.0));
    }

    #[test]
    fn empty_and_all() {
        assert!(Interval::empty().is_empty());
        assert!(!Interval::empty().contains(0.5));
        assert!(Interval::ALL.is_all());
        assert!(Interval::ALL.contains(f64::MAX));
        assert!(!Interval::ALL.is_empty());
        assert!(!Interval::empty().overlaps_range(0.0, 2.0));
    }

    #[test]
    fn display_renders_standard_notation() {
        assert_eq!(Interval::open(1.0, 2.0).to_string(), "(1, 2)");
        assert_eq!(Interval::closed(1.0, 2.0).to_string(), "[1, 2]");
        assert_eq!(Interval::from_op(QueryOp::Gt, 3.0).to_string(), "(3, +inf)");
        assert_eq!(Interval::from_op(QueryOp::Lte, 3.0).to_string(), "(-inf, 3]");
    }
}
