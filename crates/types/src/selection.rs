//! Query result selections.
//!
//! `PDCquery_get_selection` returns the coordinates of all matching
//! elements. Matches of range queries on scientific data are heavily
//! clustered (and fully contiguous on sorted replicas), so we store the
//! selection as sorted, non-overlapping, non-adjacent **runs** of linear
//! coordinates. Set operations (AND → intersection, OR → union) are linear
//! merges; the paper's "merge sort to remove duplicates" for OR corresponds
//! to [`Selection::union`].

use serde::{Deserialize, Serialize};

/// A maximal contiguous run of selected coordinates `[start, start+len)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Run {
    /// First selected coordinate.
    pub start: u64,
    /// Number of consecutive selected coordinates.
    pub len: u64,
}

impl Run {
    /// Run covering `[start, start+len)`.
    pub const fn new(start: u64, len: u64) -> Self {
        Self { start, len }
    }

    /// One past the last selected coordinate.
    #[inline]
    pub const fn end(&self) -> u64 {
        self.start + self.len
    }
}

/// A set of selected element coordinates, run-length encoded.
///
/// Invariants (checked in debug builds, preserved by all constructors):
/// runs are sorted by `start`, non-empty, non-overlapping and
/// non-adjacent (adjacent runs are coalesced).
///
/// ```
/// use pdc_types::Selection;
/// let a = Selection::from_unsorted_coords(vec![5, 3, 4, 10]);
/// let b = Selection::from_span(4, 3); // {4, 5, 6}
/// assert_eq!(a.union(&b).count(), 5); // {3, 4, 5, 6, 10}
/// assert_eq!(a.intersect(&b).iter_coords().collect::<Vec<_>>(), vec![4, 5]);
/// assert_eq!(a.num_runs(), 2); // {3,4,5} and {10}
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Selection {
    runs: Vec<Run>,
}

impl Selection {
    /// The empty selection.
    pub fn empty() -> Self {
        Selection { runs: Vec::new() }
    }

    /// Selection of every coordinate in `[0, n)`.
    pub fn all(n: u64) -> Self {
        if n == 0 {
            Selection::empty()
        } else {
            Selection { runs: vec![Run::new(0, n)] }
        }
    }

    /// Selection of a single contiguous span.
    pub fn from_span(start: u64, len: u64) -> Self {
        if len == 0 {
            Selection::empty()
        } else {
            Selection { runs: vec![Run::new(start, len)] }
        }
    }

    /// Build from an iterator of **strictly ascending** coordinates.
    ///
    /// Panics in debug builds if the input is not strictly ascending.
    pub fn from_sorted_coords<I: IntoIterator<Item = u64>>(coords: I) -> Self {
        let mut runs: Vec<Run> = Vec::new();
        for c in coords {
            match runs.last_mut() {
                Some(r) if c == r.end() => r.len += 1,
                Some(r) => {
                    debug_assert!(c > r.end(), "coordinates must be strictly ascending");
                    runs.push(Run::new(c, 1));
                }
                None => runs.push(Run::new(c, 1)),
            }
        }
        Selection { runs }
    }

    /// Build from arbitrary (possibly unsorted, possibly duplicated)
    /// coordinates.
    pub fn from_unsorted_coords(mut coords: Vec<u64>) -> Self {
        coords.sort_unstable();
        coords.dedup();
        Self::from_sorted_coords(coords)
    }

    /// Build from runs that are already sorted, disjoint and non-adjacent.
    ///
    /// Debug-asserts the invariants.
    pub fn from_canonical_runs(runs: Vec<Run>) -> Self {
        #[cfg(debug_assertions)]
        {
            for r in &runs {
                debug_assert!(r.len > 0, "empty run");
            }
            for w in runs.windows(2) {
                debug_assert!(w[0].end() < w[1].start, "runs must be disjoint, non-adjacent, sorted");
            }
        }
        Selection { runs }
    }

    /// Build from arbitrary runs (sorts, merges overlaps, coalesces).
    pub fn from_runs(mut runs: Vec<Run>) -> Self {
        runs.retain(|r| r.len > 0);
        runs.sort_unstable_by_key(|r| r.start);
        let mut out: Vec<Run> = Vec::with_capacity(runs.len());
        for r in runs {
            match out.last_mut() {
                Some(last) if r.start <= last.end() => {
                    let end = last.end().max(r.end());
                    last.len = end - last.start;
                }
                _ => out.push(r),
            }
        }
        Selection { runs: out }
    }

    /// Number of selected coordinates (the paper's "number of hits").
    pub fn count(&self) -> u64 {
        self.runs.iter().map(|r| r.len).sum()
    }

    /// Whether nothing is selected.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// The underlying canonical runs.
    pub fn runs(&self) -> &[Run] {
        &self.runs
    }

    /// Number of runs (a measure of fragmentation — contiguity of results
    /// is what makes the sorted strategy fast).
    pub fn num_runs(&self) -> usize {
        self.runs.len()
    }

    /// Iterate over all selected coordinates in ascending order.
    pub fn iter_coords(&self) -> impl Iterator<Item = u64> + '_ {
        self.runs.iter().flat_map(|r| r.start..r.end())
    }

    /// Membership test (binary search over runs).
    pub fn contains(&self, c: u64) -> bool {
        match self.runs.binary_search_by_key(&c, |r| r.start) {
            Ok(_) => true,
            Err(0) => false,
            Err(i) => self.runs[i - 1].contains_coord(c),
        }
    }

    /// Set union — the paper's OR combination ("combine the results ...
    /// and remove the duplicates with a merge sort").
    pub fn union(&self, other: &Selection) -> Selection {
        let mut merged: Vec<Run> = Vec::with_capacity(self.runs.len() + other.runs.len());
        let (mut i, mut j) = (0, 0);
        while i < self.runs.len() || j < other.runs.len() {
            let take_left = match (self.runs.get(i), other.runs.get(j)) {
                (Some(a), Some(b)) => a.start <= b.start,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => unreachable!(),
            };
            let r = if take_left {
                i += 1;
                self.runs[i - 1]
            } else {
                j += 1;
                other.runs[j - 1]
            };
            match merged.last_mut() {
                Some(last) if r.start <= last.end() => {
                    let end = last.end().max(r.end());
                    last.len = end - last.start;
                }
                _ => merged.push(r),
            }
        }
        Selection { runs: merged }
    }

    /// K-way set union: merge the runs of many selections in a single
    /// O(n log k) heap-driven pass (n total runs, k inputs) instead of k
    /// pairwise [`Selection::union`] merges, which degrade to O(k·n) when
    /// an accumulator re-walks its own runs on every fold step. The result
    /// is canonical RLE, so it is bit-identical to any fold of `union`.
    pub fn union_many<'a, I: IntoIterator<Item = &'a Selection>>(sels: I) -> Selection {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let sources: Vec<&[Run]> =
            sels.into_iter().map(|s| s.runs()).filter(|r| !r.is_empty()).collect();
        match sources.len() {
            0 => return Selection::empty(),
            1 => return Selection { runs: sources[0].to_vec() },
            _ => {}
        }
        // Heap entries are (next run start, source, run index); the source
        // index breaks ties deterministically.
        let mut heap: BinaryHeap<Reverse<(u64, usize, usize)>> = sources
            .iter()
            .enumerate()
            .map(|(k, runs)| Reverse((runs[0].start, k, 0)))
            .collect();
        let mut merged: Vec<Run> = Vec::with_capacity(sources.iter().map(|r| r.len()).sum());
        while let Some(Reverse((_, k, i))) = heap.pop() {
            let r = sources[k][i];
            if let Some(next) = sources[k].get(i + 1) {
                heap.push(Reverse((next.start, k, i + 1)));
            }
            match merged.last_mut() {
                Some(last) if r.start <= last.end() => {
                    let end = last.end().max(r.end());
                    last.len = end - last.start;
                }
                _ => merged.push(r),
            }
        }
        Selection { runs: merged }
    }

    /// Set intersection — the paper's AND combination.
    pub fn intersect(&self, other: &Selection) -> Selection {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.runs.len() && j < other.runs.len() {
            let a = self.runs[i];
            let b = other.runs[j];
            let lo = a.start.max(b.start);
            let hi = a.end().min(b.end());
            if lo < hi {
                out.push(Run::new(lo, hi - lo));
            }
            if a.end() <= b.end() {
                i += 1;
            } else {
                j += 1;
            }
        }
        Selection { runs: out }
    }

    /// Restrict the selection to the span `[start, start+len)`.
    pub fn restrict_to_span(&self, start: u64, len: u64) -> Selection {
        if len == 0 {
            return Selection::empty();
        }
        let end = start + len;
        let mut out = Vec::new();
        for r in &self.runs {
            if r.end() <= start {
                continue;
            }
            if r.start >= end {
                break;
            }
            let lo = r.start.max(start);
            let hi = r.end().min(end);
            out.push(Run::new(lo, hi - lo));
        }
        Selection { runs: out }
    }

    /// Shift every coordinate by `delta` (used to translate region-local
    /// selections to object-global coordinates).
    pub fn shifted(&self, delta: u64) -> Selection {
        Selection {
            runs: self.runs.iter().map(|r| Run::new(r.start + delta, r.len)).collect(),
        }
    }

    /// Keep only coordinates satisfying `pred` (used for arbitrary spatial
    /// constraints from `PDCquery_set_region` on multi-dimensional shapes).
    pub fn filter_coords<F: FnMut(u64) -> bool>(&self, mut pred: F) -> Selection {
        Selection::from_sorted_coords(self.iter_coords().filter(|&c| pred(c)))
    }

    /// Serialized size estimate in bytes (for the simulated network:
    /// selections are shipped server → client).
    pub fn wire_size_bytes(&self) -> u64 {
        16 * self.runs.len() as u64 + 8
    }

    /// The selected locations as N-dimensional array coordinates under
    /// `shape` — the form `PDCquery_get_selection` reports for
    /// multi-dimensional objects ("the locations (array coordinates) of
    /// the matching elements").
    pub fn to_nd_coords(&self, shape: &crate::region::Shape) -> Vec<Vec<u64>> {
        self.iter_coords().map(|c| shape.unravel(c)).collect()
    }
}

impl Run {
    /// Whether the run contains coordinate `c`.
    #[inline]
    pub const fn contains_coord(&self, c: u64) -> bool {
        c >= self.start && c < self.end()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sel(coords: &[u64]) -> Selection {
        Selection::from_unsorted_coords(coords.to_vec())
    }

    #[test]
    fn from_sorted_coords_coalesces_runs() {
        let s = Selection::from_sorted_coords([1, 2, 3, 7, 8, 20]);
        assert_eq!(
            s.runs(),
            &[Run::new(1, 3), Run::new(7, 2), Run::new(20, 1)]
        );
        assert_eq!(s.count(), 6);
        assert_eq!(s.num_runs(), 3);
    }

    #[test]
    fn from_unsorted_dedups() {
        let s = Selection::from_unsorted_coords(vec![5, 3, 5, 4, 10]);
        assert_eq!(s.runs(), &[Run::new(3, 3), Run::new(10, 1)]);
    }

    #[test]
    fn from_runs_normalizes_overlaps_and_adjacency() {
        let s = Selection::from_runs(vec![
            Run::new(10, 5),
            Run::new(0, 3),
            Run::new(12, 10),
            Run::new(3, 2), // adjacent to [0,3)
            Run::new(40, 0), // empty, dropped
        ]);
        assert_eq!(s.runs(), &[Run::new(0, 5), Run::new(10, 12)]);
    }

    #[test]
    fn count_and_membership() {
        let s = sel(&[0, 1, 2, 10, 11, 50]);
        assert_eq!(s.count(), 6);
        for c in [0, 2, 10, 11, 50] {
            assert!(s.contains(c), "{c}");
        }
        for c in [3, 9, 12, 49, 51] {
            assert!(!s.contains(c), "{c}");
        }
        assert!(!Selection::empty().contains(0));
    }

    #[test]
    fn union_equals_set_union() {
        let a = sel(&[1, 2, 3, 10]);
        let b = sel(&[3, 4, 5, 20]);
        let u = a.union(&b);
        let expect: Vec<u64> = vec![1, 2, 3, 4, 5, 10, 20];
        assert_eq!(u.iter_coords().collect::<Vec<_>>(), expect);
    }

    #[test]
    fn union_with_empty_is_identity() {
        let a = sel(&[4, 5, 9]);
        assert_eq!(a.union(&Selection::empty()), a);
        assert_eq!(Selection::empty().union(&a), a);
    }

    #[test]
    fn union_many_matches_pairwise_fold() {
        let inputs = [
            sel(&[1, 2, 3, 10]),
            sel(&[3, 4, 5, 20]),
            Selection::empty(),
            Selection::from_span(9, 3), // bridges 10 and introduces 9, 11
            sel(&[0, 21]),              // adjacent to 1 and 20
        ];
        let folded = inputs.iter().fold(Selection::empty(), |acc, s| acc.union(s));
        assert_eq!(Selection::union_many(inputs.iter()), folded);
        assert_eq!(Selection::union_many([].into_iter()), Selection::empty());
        let single = sel(&[7, 9]);
        assert_eq!(Selection::union_many([&single]), single);
    }

    #[test]
    fn union_many_pseudorandom_inputs_match_fold() {
        // Deterministic pseudo-random run soup across many sources.
        let mut state = 0x9E37_79B9u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        let sources: Vec<Selection> = (0..13)
            .map(|_| {
                let coords: Vec<u64> = (0..200).map(|_| next() % 1500).collect();
                Selection::from_unsorted_coords(coords)
            })
            .collect();
        let folded = sources.iter().fold(Selection::empty(), |acc, s| acc.union(s));
        assert_eq!(Selection::union_many(sources.iter()), folded);
    }

    #[test]
    fn intersect_equals_set_intersection() {
        let a = sel(&[1, 2, 3, 4, 10, 11]);
        let b = sel(&[3, 4, 5, 11, 12]);
        let i = a.intersect(&b);
        assert_eq!(i.iter_coords().collect::<Vec<_>>(), vec![3, 4, 11]);
    }

    #[test]
    fn intersect_disjoint_is_empty() {
        let a = Selection::from_span(0, 10);
        let b = Selection::from_span(10, 10);
        assert!(a.intersect(&b).is_empty());
    }

    #[test]
    fn all_and_span() {
        let all = Selection::all(100);
        assert_eq!(all.count(), 100);
        assert_eq!(all.num_runs(), 1);
        assert!(Selection::all(0).is_empty());
        assert!(Selection::from_span(5, 0).is_empty());
    }

    #[test]
    fn restrict_to_span_clips() {
        let s = sel(&[0, 1, 2, 8, 9, 10, 11, 30]);
        let r = s.restrict_to_span(2, 9); // [2, 11)
        assert_eq!(r.iter_coords().collect::<Vec<_>>(), vec![2, 8, 9, 10]);
        assert!(s.restrict_to_span(100, 5).is_empty());
        assert!(s.restrict_to_span(0, 0).is_empty());
    }

    #[test]
    fn shifted_translates() {
        let s = Selection::from_span(0, 3).shifted(100);
        assert_eq!(s.runs(), &[Run::new(100, 3)]);
    }

    #[test]
    fn filter_coords_applies_predicate() {
        let s = Selection::all(10);
        let even = s.filter_coords(|c| c % 2 == 0);
        assert_eq!(even.iter_coords().collect::<Vec<_>>(), vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn to_nd_coords_unravels_row_major() {
        let shape = crate::region::Shape(vec![3, 4]);
        let s = sel(&[0, 5, 11]);
        assert_eq!(
            s.to_nd_coords(&shape),
            vec![vec![0, 0], vec![1, 1], vec![2, 3]]
        );
    }

    #[test]
    fn wire_size_grows_with_fragmentation() {
        let contiguous = Selection::from_span(0, 1000);
        let fragmented = Selection::from_sorted_coords((0..1000).map(|i| i * 2));
        assert!(fragmented.wire_size_bytes() > contiguous.wire_size_bytes());
    }
}
