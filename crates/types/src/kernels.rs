//! Monomorphized, branchless scan kernels.
//!
//! Every strategy of the paper bottoms out in one CPU hot loop: "test each
//! element of a region against an interval, emit the hit runs". The naive
//! loop calls [`TypedVec::get_f64`] per element — an enum match plus an
//! f64 widening — and tracks runs with a branchy `Option<Run>` state
//! machine. This module replaces it with type-specialized kernels:
//!
//! 1. **Interval lowering** ([`ScanElem::lower`]): the query interval's
//!    `f64` bounds are lowered *once per region* to inclusive thresholds
//!    in the element's native type, chosen so that the branchless
//!    per-element test is bit-for-bit equivalent to
//!    `interval.contains(x as f64)` — including the quirk that a `NaN`
//!    element satisfies every interval (it fails all ordered
//!    comparisons), and including `i64`/`u64` values beyond 2^53 whose
//!    widening rounds.
//! 2. **Mask generation** ([`block_mask`]): 64 elements at a time are
//!    compared against the thresholds into a `u64` hit mask; the compare
//!    is a pure data-parallel reduction the compiler can vectorize.
//! 3. **Mask → runs** ([`scan_runs`]): masks convert to canonical
//!    [`Run`]s with `trailing_zeros`/`trailing_ones`, coalescing across
//!    block boundaries, so the output [`Selection`] is identical to the
//!    scalar reference.
//!
//! A chunk-parallel driver ([`scan_interval_split`]) shards a region
//! across threads via `rayon::join` and stitches boundary-adjacent runs,
//! so the result is bit-identical to the sequential path at any thread
//! count. None of this changes simulated costs: callers charge
//! `elements_scanned` and `settle_cpu` exactly as before; the kernels only
//! change host wall-clock time.

use crate::interval::Interval;
use crate::selection::{Run, Selection};
use crate::value::TypedVec;

/// Minimum elements per parallel shard; below twice this a scan stays
/// sequential (thread spawn would cost more than it saves).
pub const PARALLEL_MIN_CHUNK: usize = 64 * 1024;

/// Upper bound on auto-sized scan threads (`scan_threads = 0`).
const MAX_AUTO_THREADS: usize = 8;

// ---------------------------------------------------------------------------
// float helpers
// ---------------------------------------------------------------------------

/// The next f64 strictly above `x` (`x` not NaN; +inf maps to itself).
fn next_f64_up(x: f64) -> f64 {
    if x == f64::INFINITY {
        return x;
    }
    let bits = x.to_bits();
    f64::from_bits(if x >= 0.0 {
        if x == 0.0 {
            1 // minimum positive subnormal (covers -0.0 too)
        } else {
            bits + 1
        }
    } else {
        bits - 1
    })
}

/// The next f64 strictly below `x` (`x` not NaN; -inf maps to itself).
fn next_f64_down(x: f64) -> f64 {
    -next_f64_up(-x)
}

/// The smallest f32 whose exact f64 value is `>= x` (`x` not NaN).
fn ceil_to_f32(x: f64) -> f32 {
    let f = x as f32; // round-to-nearest, saturating to ±inf
    if (f as f64) >= x {
        f
    } else {
        next_f32_up(f)
    }
}

/// The largest f32 whose exact f64 value is `<= x` (`x` not NaN).
fn floor_to_f32(x: f64) -> f32 {
    let f = x as f32;
    if (f as f64) <= x {
        f
    } else {
        next_f32_down(f)
    }
}

/// The next f32 strictly above `x` (`x` not NaN; +inf maps to itself).
fn next_f32_up(x: f32) -> f32 {
    if x == f32::INFINITY {
        return x;
    }
    let bits = x.to_bits();
    f32::from_bits(if x >= 0.0 {
        if x == 0.0 {
            1
        } else {
            bits + 1
        }
    } else {
        bits - 1
    })
}

/// The next f32 strictly below `x` (`x` not NaN; -inf maps to itself).
fn next_f32_down(x: f32) -> f32 {
    -next_f32_up(-x)
}

/// Lower an interval to inclusive f64 thresholds `(lo, hi)` such that a
/// non-NaN `v` satisfies `interval.contains(v)` iff `lo <= v && v <= hi`.
/// (NaN values satisfy every interval; the float `accept` form handles
/// them without a branch.) A side whose bound value is NaN never rejects
/// anything — mirroring `Interval::contains`, where NaN fails both
/// ordered comparisons — so it lowers to unbounded. An exclusive bound at
/// the non-representable end (`> +inf` / `< -inf`) admits no non-NaN
/// value at all and lowers to the canonical empty pair `(+inf, -inf)`.
fn lower_f64(interval: &Interval) -> (f64, f64) {
    let mut lo = f64::NEG_INFINITY;
    let mut hi = f64::INFINITY;
    let mut empty = false;
    if let Some(b) = interval.lo {
        if !b.value.is_nan() {
            if b.inclusive {
                lo = b.value;
            } else if b.value == f64::INFINITY {
                empty = true;
            } else {
                lo = next_f64_up(b.value);
            }
        }
    }
    if let Some(b) = interval.hi {
        if !b.value.is_nan() {
            if b.inclusive {
                hi = b.value;
            } else if b.value == f64::NEG_INFINITY {
                empty = true;
            } else {
                hi = next_f64_down(b.value);
            }
        }
    }
    if empty {
        (f64::INFINITY, f64::NEG_INFINITY)
    } else {
        (lo, hi)
    }
}

// ---------------------------------------------------------------------------
// integer helpers
// ---------------------------------------------------------------------------

/// Smallest `x` in `[min, max]` with `to_f64(x) >= lo`, or `None`.
/// `to_f64` must be monotone non-decreasing (integer→f64 widening is:
/// round-to-nearest of a monotone sequence never reorders).
fn int_lower_i128(min: i128, max: i128, to_f64: impl Fn(i128) -> f64, lo: f64) -> Option<i128> {
    if to_f64(max) < lo {
        return None;
    }
    if to_f64(min) >= lo {
        return Some(min);
    }
    let (mut a, mut b) = (min, max); // invariant: to_f64(a) < lo <= to_f64(b)
    while b - a > 1 {
        let m = a + (b - a) / 2;
        if to_f64(m) >= lo {
            b = m;
        } else {
            a = m;
        }
    }
    Some(b)
}

/// Largest `x` in `[min, max]` with `to_f64(x) <= hi`, or `None`.
fn int_upper_i128(min: i128, max: i128, to_f64: impl Fn(i128) -> f64, hi: f64) -> Option<i128> {
    if to_f64(min) > hi {
        return None;
    }
    if to_f64(max) <= hi {
        return Some(max);
    }
    let (mut a, mut b) = (min, max); // invariant: to_f64(a) <= hi < to_f64(b)
    while b - a > 1 {
        let m = a + (b - a) / 2;
        if to_f64(m) <= hi {
            a = m;
        } else {
            b = m;
        }
    }
    Some(a)
}

// ---------------------------------------------------------------------------
// the element trait
// ---------------------------------------------------------------------------

/// An element type the scan kernels are monomorphized over.
///
/// The contract tying the two methods together: for every element `x` and
/// every interval `iv`, with `(lo, hi) = T::lower(&iv)`,
///
/// ```text
/// x.accept(lo, hi) == iv.contains(x as f64)
/// ```
///
/// so kernel output is always bit-identical to the scalar reference.
pub trait ScanElem: Copy + PartialOrd + Send + Sync {
    /// Lower `interval` to inclusive native-typed thresholds, once per
    /// region (cheap: a couple of float adjustments, or a ≤64-step binary
    /// search for the wide integer types).
    fn lower(interval: &Interval) -> (Self, Self);

    /// Branchless membership test against lowered thresholds.
    fn accept(self, lo: Self, hi: Self) -> bool;
}

impl ScanElem for f64 {
    fn lower(interval: &Interval) -> (f64, f64) {
        lower_f64(interval)
    }

    #[inline(always)]
    #[allow(clippy::neg_cmp_op_on_partial_ord)] // NaN must pass: see below
    fn accept(self, lo: f64, hi: f64) -> bool {
        // NaN fails both comparisons and is therefore accepted, exactly
        // like `Interval::contains` (every ordered test on NaN is false).
        !(self < lo) & !(self > hi)
    }
}

impl ScanElem for f32 {
    fn lower(interval: &Interval) -> (f32, f32) {
        let (lo, hi) = lower_f64(interval);
        // f32→f64 widening is exact and monotone, so snapping the f64
        // thresholds to the f32 grid preserves the accepted set exactly.
        (ceil_to_f32(lo), floor_to_f32(hi))
    }

    #[inline(always)]
    #[allow(clippy::neg_cmp_op_on_partial_ord)] // NaN must pass, as for f64
    fn accept(self, lo: f32, hi: f32) -> bool {
        !(self < lo) & !(self > hi)
    }
}

macro_rules! impl_scan_int {
    ($($t:ty),* $(,)?) => {$(
        impl ScanElem for $t {
            fn lower(interval: &Interval) -> ($t, $t) {
                let (lo, hi) = lower_f64(interval);
                let to_f64 = |v: i128| (v as $t) as f64;
                let lo_t = int_lower_i128(<$t>::MIN as i128, <$t>::MAX as i128, to_f64, lo);
                let hi_t = int_upper_i128(<$t>::MIN as i128, <$t>::MAX as i128, to_f64, hi);
                match (lo_t, hi_t) {
                    (Some(l), Some(h)) => (l as $t, h as $t),
                    // One side admits no value at all: the canonical
                    // empty pair (MAX > MIN, so `accept` is always false).
                    _ => (<$t>::MAX, <$t>::MIN),
                }
            }

            #[inline(always)]
            fn accept(self, lo: $t, hi: $t) -> bool {
                (self >= lo) & (self <= hi)
            }
        }
    )*};
}
impl_scan_int!(i32, u32, i64, u64);

// ---------------------------------------------------------------------------
// mask kernels
// ---------------------------------------------------------------------------

/// Compare up to 64 elements against lowered thresholds, producing a hit
/// mask (bit `j` set ⇔ `xs[j]` accepted).
#[inline]
pub fn block_mask<T: ScanElem>(xs: &[T], lo: T, hi: T) -> u64 {
    debug_assert!(xs.len() <= 64);
    // Build the mask a byte (8 comparisons) at a time: the fixed-length
    // inner loop with small shifts is what LLVM auto-vectorizes on the
    // default target, where a single dynamic `<< j` accumulator does not.
    let mut m = 0u64;
    let mut it = xs.chunks_exact(8);
    for (c, chunk) in it.by_ref().enumerate() {
        let mut b = 0u8;
        for (j, &x) in chunk.iter().enumerate() {
            b |= (x.accept(lo, hi) as u8) << j;
        }
        m |= (b as u64) << (c * 8);
    }
    let tail = it.remainder();
    let base = xs.len() - tail.len();
    for (j, &x) in tail.iter().enumerate() {
        m |= (x.accept(lo, hi) as u64) << (base + j);
    }
    m
}

/// Append `[start, start+len)` to `out`, coalescing with an adjacent tail.
#[inline]
fn push_run(out: &mut Vec<Run>, start: u64, len: u64) {
    if let Some(last) = out.last_mut() {
        if last.end() == start {
            last.len += len;
            return;
        }
    }
    out.push(Run::new(start, len));
}

/// Decode a hit mask into runs at absolute base coordinate `base`.
#[inline]
fn mask_runs(mut m: u64, base: u64, out: &mut Vec<Run>) {
    while m != 0 {
        let lo = m.trailing_zeros() as u64;
        let ones = (m >> lo).trailing_ones() as u64;
        push_run(out, base + lo, ones);
        if lo + ones == 64 {
            break;
        }
        m &= !(((1u64 << ones) - 1) << lo);
    }
}

/// Scan a typed slice against lowered thresholds, appending canonical
/// runs (sorted, disjoint, coalesced) at coordinates `base + index`.
pub fn scan_runs<T: ScanElem>(xs: &[T], lo: T, hi: T, base: u64, out: &mut Vec<Run>) {
    for (bi, chunk) in xs.chunks(64).enumerate() {
        let m = block_mask(chunk, lo, hi);
        if m != 0 {
            mask_runs(m, base + bi as u64 * 64, out);
        }
    }
}

/// Lower `interval` for `T` and scan `xs` into `out` (see [`scan_runs`]).
pub fn scan_into<T: ScanElem>(xs: &[T], interval: &Interval, base: u64, out: &mut Vec<Run>) {
    let (lo, hi) = T::lower(interval);
    scan_runs(xs, lo, hi, base, out);
}

/// Count the elements of `xs` matching `interval`.
pub fn count_slice<T: ScanElem>(xs: &[T], interval: &Interval) -> u64 {
    let (lo, hi) = T::lower(interval);
    xs.chunks(64).map(|c| block_mask(c, lo, hi).count_ones() as u64).sum()
}

// ---------------------------------------------------------------------------
// TypedVec entry points
// ---------------------------------------------------------------------------

/// Sequential kernel scan of a whole region: the selection of elements
/// matching `interval`, at coordinates `base + index`.
pub fn scan_interval(tv: &TypedVec, interval: &Interval, base: u64) -> Selection {
    let mut out = Vec::new();
    crate::with_slice!(tv, xs => scan_into(xs, interval, base, &mut out));
    Selection::from_canonical_runs(out)
}

/// Fused multi-interval scan: evaluate `k` intervals against one region
/// payload in a single pass over its 64-element blocks, so the data is
/// decoded and streamed through the cache hierarchy once instead of `k`
/// times (the batched query engine's shared-scan kernel). Every interval
/// is lowered once up front; each output selection is bit-identical to
/// [`scan_interval`] run alone, because per block the same
/// [`block_mask`] / [`mask_runs`] pipeline executes per interval.
pub fn scan_intervals(tv: &TypedVec, intervals: &[Interval], base: u64) -> Vec<Selection> {
    crate::with_slice!(tv, xs => scan_intervals_slice(xs, intervals, base))
}

fn scan_intervals_slice<T: ScanElem>(
    xs: &[T],
    intervals: &[Interval],
    base: u64,
) -> Vec<Selection> {
    let lowered: Vec<(T, T)> = intervals.iter().map(T::lower).collect();
    let mut outs: Vec<Vec<Run>> = vec![Vec::new(); intervals.len()];
    for (bi, chunk) in xs.chunks(64).enumerate() {
        let blk_base = base + bi as u64 * 64;
        for (k, &(lo, hi)) in lowered.iter().enumerate() {
            let m = block_mask(chunk, lo, hi);
            if m != 0 {
                mask_runs(m, blk_base, &mut outs[k]);
            }
        }
    }
    outs.into_iter().map(Selection::from_canonical_runs).collect()
}

/// The pre-kernel reference scan: per-element enum dispatch through
/// [`TypedVec::get_f64`] and a branchy run state machine. Kept as the
/// correctness oracle for the kernels (property-tested equal) and as the
/// baseline of the recorded kernel benchmarks; also the engine's
/// `scan_kernels = false` path.
pub fn scan_interval_scalar(tv: &TypedVec, interval: &Interval, base: u64) -> Selection {
    let mut runs: Vec<Run> = Vec::new();
    let mut open: Option<Run> = None;
    for i in 0..tv.len() {
        if interval.contains(tv.get_f64(i)) {
            match &mut open {
                Some(r) => r.len += 1,
                None => open = Some(Run::new(base + i as u64, 1)),
            }
        } else if let Some(r) = open.take() {
            runs.push(r);
        }
    }
    if let Some(r) = open {
        runs.push(r);
    }
    Selection::from_canonical_runs(runs)
}

/// Resolve a requested `scan_threads` setting: `0` = auto (host
/// parallelism, capped), `n` = exactly `n`.
pub fn resolve_threads(requested: u32) -> usize {
    match requested {
        0 => rayon::current_num_threads().clamp(1, MAX_AUTO_THREADS),
        n => n as usize,
    }
}

/// Chunk-parallel kernel scan with explicit shard sizing (exposed so
/// tests and benches can force small chunks): the region is split into
/// contiguous, 64-aligned shards across `threads` scoped threads, each
/// shard scans independently, and boundary-adjacent runs are stitched.
/// Output is bit-identical to [`scan_interval`] for every `threads` /
/// `min_chunk` combination, because the scan is pure and stitching
/// re-canonicalizes the only places shards can disagree with a
/// sequential pass (their boundaries).
pub fn scan_interval_split(
    tv: &TypedVec,
    interval: &Interval,
    base: u64,
    threads: usize,
    min_chunk: usize,
) -> Selection {
    let mut out = Vec::new();
    crate::with_slice!(tv, xs => {
        let (lo, hi) = ScanElem::lower(interval);
        scan_split(xs, lo, hi, base, threads, min_chunk.max(64), &mut out);
    });
    Selection::from_canonical_runs(out)
}

/// Kernel scan honouring an engine `scan_threads` setting (`0` = auto,
/// `1` = sequential, `n` = shard across up to `n` threads).
pub fn scan_interval_threaded(
    tv: &TypedVec,
    interval: &Interval,
    base: u64,
    scan_threads: u32,
) -> Selection {
    let threads = resolve_threads(scan_threads);
    if threads <= 1 || tv.len() < 2 * PARALLEL_MIN_CHUNK {
        scan_interval(tv, interval, base)
    } else {
        scan_interval_split(tv, interval, base, threads, PARALLEL_MIN_CHUNK)
    }
}

fn scan_split<T: ScanElem>(
    xs: &[T],
    lo: T,
    hi: T,
    base: u64,
    threads: usize,
    min_chunk: usize,
    out: &mut Vec<Run>,
) {
    if threads <= 1 || xs.len() < 2 * min_chunk {
        scan_runs(xs, lo, hi, base, out);
        return;
    }
    // Split proportionally to the thread shares, 64-aligned so shard
    // interiors stay on whole mask blocks.
    let lt = threads / 2;
    let rt = threads - lt;
    let mid = (xs.len() * lt / threads) & !63;
    if mid == 0 || mid == xs.len() {
        scan_runs(xs, lo, hi, base, out);
        return;
    }
    let (l, r) = xs.split_at(mid);
    let mut rout: Vec<Run> = Vec::new();
    rayon::join(
        || scan_split(l, lo, hi, base, lt, min_chunk, out),
        || scan_split(r, lo, hi, base + mid as u64, rt, min_chunk, &mut rout),
    );
    // Stitch: a hit run crossing the split boundary arrives as the left
    // shard's tail plus the right shard's head; coalesce them.
    let mut rest = rout.into_iter();
    if let Some(first) = rest.next() {
        match out.last_mut() {
            Some(last) if last.end() == first.start => last.len += first.len,
            _ => out.push(first),
        }
    }
    out.extend(rest);
}

/// Verify candidate positions against the raw values: the subset of
/// `candidates` (local coordinates into `tv`) whose value matches
/// `interval`. Equivalent to `IndexAnswer::resolve`'s per-coordinate
/// filter, but run-at-a-time through the mask kernels.
pub fn filter_selection(tv: &TypedVec, interval: &Interval, candidates: &Selection) -> Selection {
    let mut out = Vec::new();
    crate::with_slice!(tv, xs => {
        let (lo, hi) = ScanElem::lower(interval);
        for run in candidates.runs() {
            scan_runs(&xs[run.start as usize..run.end() as usize], lo, hi, run.start, &mut out);
        }
    });
    Selection::from_canonical_runs(out)
}

/// Scan the local index range `[start, end)` of `tv`, appending runs at
/// global coordinates `base + (index - start)` (the point-check inner
/// loop: `base` is the global coordinate of local index `start`).
pub fn scan_range(
    tv: &TypedVec,
    interval: &Interval,
    start: usize,
    end: usize,
    base: u64,
    out: &mut Vec<Run>,
) {
    crate::with_slice!(tv, xs => scan_into(&xs[start..end], interval, base, out));
}

/// Count the elements of `tv` matching `interval`.
pub fn count_matches(tv: &TypedVec, interval: &Interval) -> u64 {
    crate::with_slice!(tv, xs => count_slice(xs, interval))
}

/// Count the elements at `sel`'s (local) coordinates matching `interval`.
pub fn count_selection_matches(tv: &TypedVec, interval: &Interval, sel: &Selection) -> u64 {
    crate::with_slice!(tv, xs => {
        let (lo, hi) = ScanElem::lower(interval);
        sel.runs()
            .iter()
            .map(|r| {
                xs[r.start as usize..r.end() as usize]
                    .chunks(64)
                    .map(|c| block_mask(c, lo, hi).count_ones() as u64)
                    .sum::<u64>()
            })
            .sum()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::Bound;
    use proptest::prelude::*;

    fn scalar_contains(tv: &TypedVec, iv: &Interval, i: usize) -> bool {
        iv.contains(tv.get_f64(i))
    }

    fn assert_kernel_matches_scalar(tv: &TypedVec, iv: &Interval, ctx: &str) {
        let kernel = scan_interval(tv, iv, 0);
        let scalar = scan_interval_scalar(tv, iv, 0);
        assert_eq!(kernel, scalar, "{ctx}: kernel vs scalar on {iv}");
        // And per-coordinate, to catch compensating errors in both paths.
        for i in 0..tv.len() {
            assert_eq!(
                kernel.contains(i as u64),
                scalar_contains(tv, iv, i),
                "{ctx}: element {i} ({}) vs {iv}",
                tv.get_value(i)
            );
        }
    }

    // -- lowering edge cases ------------------------------------------------

    #[test]
    fn f64_lowering_edges() {
        let tv = TypedVec::Double(vec![
            f64::NEG_INFINITY,
            -1.0,
            -0.0,
            0.0,
            1.0,
            2.0,
            f64::MAX,
            f64::INFINITY,
            f64::NAN,
        ]);
        let cases = [
            Interval::ALL,
            Interval::empty(),
            Interval::open(-1.0, 1.0),
            Interval::closed(-1.0, 1.0),
            Interval::closed(0.0, 0.0),
            Interval { lo: Some(Bound { value: f64::INFINITY, inclusive: false }), hi: None },
            Interval { lo: Some(Bound { value: f64::INFINITY, inclusive: true }), hi: None },
            Interval { lo: None, hi: Some(Bound { value: f64::NEG_INFINITY, inclusive: false }) },
            Interval { lo: None, hi: Some(Bound { value: f64::NEG_INFINITY, inclusive: true }) },
            Interval { lo: Some(Bound { value: f64::NAN, inclusive: false }), hi: None },
            Interval {
                lo: Some(Bound { value: f64::MAX, inclusive: false }),
                hi: Some(Bound { value: f64::NAN, inclusive: true }),
            },
        ];
        for iv in cases {
            assert_kernel_matches_scalar(&tv, &iv, "f64 edges");
        }
    }

    #[test]
    fn nan_elements_match_every_interval_like_scalar() {
        let tv = TypedVec::Float(vec![f32::NAN, 1.0, f32::NAN]);
        for iv in [Interval::empty(), Interval::open(5.0, 6.0), Interval::ALL] {
            let sel = scan_interval(&tv, &iv, 0);
            assert!(sel.contains(0), "NaN must match {iv}");
            assert!(sel.contains(2), "NaN must match {iv}");
            assert_kernel_matches_scalar(&tv, &iv, "nan elements");
        }
    }

    #[test]
    fn f32_threshold_snapping() {
        // 2.1f64 is not representable in f32; the f32 grid values around
        // it must classify exactly as the scalar does.
        let around: Vec<f32> = {
            let c = 2.1f32;
            vec![
                next_f32_down(next_f32_down(c)),
                next_f32_down(c),
                c,
                next_f32_up(c),
                next_f32_up(next_f32_up(c)),
            ]
        };
        let tv = TypedVec::Float(around);
        for iv in [
            Interval::open(2.1, 2.2),
            Interval::closed(2.1, 2.2),
            Interval::from_op(crate::QueryOp::Gt, 2.0999999046325684),
            Interval::from_op(crate::QueryOp::Lte, 2.1),
        ] {
            assert_kernel_matches_scalar(&tv, &iv, "f32 snapping");
        }
    }

    #[test]
    fn wide_integer_rounding_beyond_2p53() {
        // i64/u64 → f64 rounds above 2^53; thresholds must follow the
        // rounded values, exactly as the scalar `get_f64` comparison does.
        let vals: Vec<i64> = vec![
            i64::MIN,
            i64::MIN + 1,
            -(1 << 53) - 1,
            -(1 << 53),
            -1,
            0,
            1,
            (1 << 53) - 1,
            1 << 53,
            (1 << 53) + 1, // widens to 2^53 (rounds down)
            i64::MAX - 512,
            i64::MAX,
        ];
        let tv = TypedVec::Int64(vals);
        for iv in [
            Interval::from_op(crate::QueryOp::Gt, (1u64 << 53) as f64),
            Interval::from_op(crate::QueryOp::Gte, (1u64 << 53) as f64),
            Interval::from_op(crate::QueryOp::Lt, i64::MAX as f64),
            Interval::from_op(crate::QueryOp::Gte, i64::MAX as f64),
            Interval::closed(-(2f64.powi(53)), 2f64.powi(53)),
            Interval::open(i64::MIN as f64, i64::MAX as f64),
        ] {
            assert_kernel_matches_scalar(&tv, &iv, "i64 rounding");
        }

        let uv = TypedVec::UInt64(vec![0, 1, (1 << 53) - 1, 1 << 53, u64::MAX - 1024, u64::MAX]);
        for iv in [
            Interval::from_op(crate::QueryOp::Gte, u64::MAX as f64),
            Interval::from_op(crate::QueryOp::Lt, u64::MAX as f64),
            Interval::from_op(crate::QueryOp::Gt, 1.9e19),
        ] {
            assert_kernel_matches_scalar(&uv, &iv, "u64 rounding");
        }
    }

    #[test]
    fn fractional_integer_bounds() {
        let tv = TypedVec::Int32(vec![-3, -1, 0, 1, 2, 3, 7, 8]);
        for iv in [
            Interval::open(0.5, 7.5),
            Interval::closed(-0.5, 2.0),
            Interval::open(7.0, 8.0), // no integer strictly between
            Interval::closed(7.5, 7.6), // empty on the integer grid
        ] {
            assert_kernel_matches_scalar(&tv, &iv, "int fractional");
        }
    }

    // -- mask mechanics -----------------------------------------------------

    #[test]
    fn mask_runs_decodes_all_patterns() {
        for (mask, expect) in [
            (0u64, vec![]),
            (1, vec![Run::new(10, 1)]),
            (u64::MAX, vec![Run::new(10, 64)]),
            (0b1011_0110, vec![Run::new(11, 2), Run::new(14, 2), Run::new(17, 1)]),
            (1 << 63, vec![Run::new(73, 1)]),
            ((1 << 63) | 1, vec![Run::new(10, 1), Run::new(73, 1)]),
        ] {
            let mut out = Vec::new();
            mask_runs(mask, 10, &mut out);
            assert_eq!(out, expect, "mask {mask:#x}");
        }
    }

    #[test]
    fn runs_coalesce_across_blocks() {
        // 200 consecutive hits spanning three mask blocks → one run.
        let tv = TypedVec::Double((0..300).map(|i| if (50..250).contains(&i) { 1.0 } else { 9.0 }).collect());
        let sel = scan_interval(&tv, &Interval::closed(0.0, 2.0), 1000);
        assert_eq!(sel.runs(), &[Run::new(1050, 200)]);
    }

    #[test]
    fn base_offsets_apply() {
        let tv = TypedVec::Int32(vec![5, 1, 5, 1, 1]);
        let sel = scan_interval(&tv, &Interval::closed(0.0, 2.0), 70);
        assert_eq!(sel.runs(), &[Run::new(71, 1), Run::new(73, 2)]);
    }

    #[test]
    fn fused_scan_equals_independent_scans() {
        let tv = TypedVec::Float((0..777).map(|i| ((i * 37) % 1000) as f32 / 100.0).collect());
        let intervals = [
            Interval::open(2.1, 2.2),
            Interval::closed(0.0, 9.99),
            Interval::empty(),
            Interval::from_op(crate::QueryOp::Gt, 8.0),
            Interval::ALL,
        ];
        let fused = scan_intervals(&tv, &intervals, 310);
        assert_eq!(fused.len(), intervals.len());
        for (k, iv) in intervals.iter().enumerate() {
            assert_eq!(fused[k], scan_interval(&tv, iv, 310), "interval {k} ({iv})");
        }
        assert!(scan_intervals(&tv, &[], 0).is_empty());
    }

    // -- parallel path ------------------------------------------------------

    #[test]
    fn parallel_matches_sequential_at_many_chunk_sizes() {
        let tv = TypedVec::Float(
            (0..10_000).map(|i| ((i * 37) % 1000) as f32 / 100.0).collect(),
        );
        let iv = Interval::open(2.1, 7.8);
        let seq = scan_interval(&tv, &iv, 123);
        for threads in [2, 3, 4, 7, 8] {
            for min_chunk in [64, 100, 257, 1024, 5000] {
                let par = scan_interval_split(&tv, &iv, 123, threads, min_chunk);
                assert_eq!(par, seq, "threads={threads} min_chunk={min_chunk}");
            }
        }
    }

    #[test]
    fn threaded_dispatch_respects_settings() {
        let tv = TypedVec::Double((0..1000).map(|i| i as f64).collect());
        let iv = Interval::closed(100.0, 500.0);
        let expect = scan_interval(&tv, &iv, 0);
        for t in [0, 1, 4] {
            assert_eq!(scan_interval_threaded(&tv, &iv, 0, t), expect, "scan_threads={t}");
        }
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }

    // -- candidate / count helpers -----------------------------------------

    #[test]
    fn filter_selection_matches_per_coordinate_filter() {
        let tv = TypedVec::Float((0..500).map(|i| ((i * 13) % 100) as f32 / 10.0).collect());
        let iv = Interval::open(2.0, 6.5);
        let candidates = Selection::from_sorted_coords((0..500u64).filter(|c| c % 3 != 1));
        let got = filter_selection(&tv, &iv, &candidates);
        let expect = candidates.filter_coords(|c| iv.contains(tv.get_f64(c as usize)));
        assert_eq!(got, expect);
        assert_eq!(
            count_selection_matches(&tv, &iv, &candidates),
            expect.count()
        );
    }

    #[test]
    fn count_matches_agrees_with_scan() {
        let tv = TypedVec::UInt32((0..333).map(|i| (i * 7) % 97).collect());
        let iv = Interval::closed(10.0, 60.0);
        assert_eq!(count_matches(&tv, &iv), scan_interval(&tv, &iv, 0).count());
    }

    #[test]
    fn scan_range_slices_correctly() {
        let tv = TypedVec::Double((0..200).map(|i| (i % 10) as f64).collect());
        let iv = Interval::closed(3.0, 5.0);
        let mut out = Vec::new();
        scan_range(&tv, &iv, 50, 120, 1050, &mut out);
        let full = scan_interval(&tv, &iv, 1000);
        let expect = full.restrict_to_span(1050, 70);
        assert_eq!(Selection::from_canonical_runs(out), expect);
    }

    // -- property tests -----------------------------------------------------

    /// Random interval with open/closed/half-open/unbounded sides and
    /// occasionally NaN-adjacent or grid-exact bound values.
    fn gen_interval(rng: &mut TestRng, span: f64) -> Interval {
        let bound = |rng: &mut TestRng| -> Option<Bound> {
            match rng.below(8) {
                0 => None,
                1 => Some(Bound { value: f64::NAN, inclusive: rng.below(2) == 0 }),
                2 => Some(Bound {
                    value: if rng.below(2) == 0 { f64::INFINITY } else { f64::NEG_INFINITY },
                    inclusive: rng.below(2) == 0,
                }),
                // grid-exact values: land on actual data values often
                3 | 4 => Some(Bound {
                    value: (rng.below(41) as f64 - 20.0) * span / 20.0,
                    inclusive: rng.below(2) == 0,
                }),
                _ => Some(Bound {
                    value: (rng.next_f64() * 2.0 - 1.0) * span,
                    inclusive: rng.below(2) == 0,
                }),
            }
        };
        Interval { lo: bound(rng), hi: bound(rng) }
    }

    fn gen_data(rng: &mut TestRng, ty_pick: usize, len: usize) -> TypedVec {
        match ty_pick % 6 {
            0 => TypedVec::Float(
                (0..len)
                    .map(|_| match rng.below(12) {
                        0 => f32::NAN,
                        1 => f32::INFINITY,
                        2 => f32::NEG_INFINITY,
                        _ => (rng.next_f64() * 40.0 - 20.0) as f32,
                    })
                    .collect(),
            ),
            1 => TypedVec::Double(
                (0..len)
                    .map(|_| match rng.below(12) {
                        0 => f64::NAN,
                        1 => f64::INFINITY,
                        2 => f64::NEG_INFINITY,
                        _ => rng.next_f64() * 40.0 - 20.0,
                    })
                    .collect(),
            ),
            2 => TypedVec::Int32((0..len).map(|_| rng.next_u64() as i32 % 40).collect()),
            3 => TypedVec::UInt32((0..len).map(|_| rng.next_u64() as u32 % 40).collect()),
            4 => TypedVec::Int64(
                (0..len)
                    .map(|_| {
                        if rng.below(5) == 0 {
                            rng.next_u64() as i64 // full range incl. beyond 2^53
                        } else {
                            rng.next_u64() as i64 % 40
                        }
                    })
                    .collect(),
            ),
            _ => TypedVec::UInt64(
                (0..len)
                    .map(|_| {
                        if rng.below(5) == 0 {
                            rng.next_u64()
                        } else {
                            rng.next_u64() % 40
                        }
                    })
                    .collect(),
            ),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 200, ..ProptestConfig::default() })]
        #[test]
        fn kernel_equals_scalar_reference(seed in 0u64..u64::MAX) {
            let mut rng = TestRng::new(seed);
            let ty = rng.below(6);
            let len = rng.below(300);
            let tv = gen_data(&mut rng, ty, len);
            let iv = gen_interval(&mut rng, 25.0);
            let base = rng.next_u64() % 1_000_000;
            prop_assert_eq!(
                scan_interval(&tv, &iv, base),
                scan_interval_scalar(&tv, &iv, base)
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 100, ..ProptestConfig::default() })]
        #[test]
        fn parallel_equals_sequential(seed in 0u64..u64::MAX) {
            let mut rng = TestRng::new(seed);
            let ty = rng.below(6);
            let len = 200 + rng.below(2000);
            let tv = gen_data(&mut rng, ty, len);
            let iv = gen_interval(&mut rng, 25.0);
            let threads = 2 + rng.below(7);
            let min_chunk = 64 + rng.below(600);
            prop_assert_eq!(
                scan_interval_split(&tv, &iv, 7, threads, min_chunk),
                scan_interval(&tv, &iv, 7)
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 100, ..ProptestConfig::default() })]
        #[test]
        fn fused_scan_equals_per_interval(seed in 0u64..u64::MAX) {
            let mut rng = TestRng::new(seed);
            let ty = rng.below(6);
            let len = rng.below(400);
            let tv = gen_data(&mut rng, ty, len);
            let k = 1 + rng.below(6);
            let ivs: Vec<Interval> = (0..k).map(|_| gen_interval(&mut rng, 25.0)).collect();
            let base = rng.next_u64() % 1_000_000;
            let fused = scan_intervals(&tv, &ivs, base);
            for (i, iv) in ivs.iter().enumerate() {
                prop_assert_eq!(&fused[i], &scan_interval(&tv, iv, base), "interval {}", i);
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 100, ..ProptestConfig::default() })]
        #[test]
        fn filter_and_counts_equal_reference(seed in 0u64..u64::MAX) {
            let mut rng = TestRng::new(seed);
            let ty = rng.below(6);
            let len = 1 + rng.below(400);
            let tv = gen_data(&mut rng, ty, len);
            let iv = gen_interval(&mut rng, 25.0);
            let cand = Selection::from_sorted_coords(
                (0..len as u64).filter(|_| rng.below(3) != 0),
            );
            let expect = cand.filter_coords(|c| iv.contains(tv.get_f64(c as usize)));
            prop_assert_eq!(filter_selection(&tv, &iv, &cand), expect.clone());
            prop_assert_eq!(count_selection_matches(&tv, &iv, &cand), expect.count());
            let all: u64 = (0..len).filter(|&i| iv.contains(tv.get_f64(i))).count() as u64;
            prop_assert_eq!(count_matches(&tv, &iv), all);
        }
    }
}
