//! Region geometry.
//!
//! PDC breaks large objects into fixed-size **regions** — the basic unit of
//! placement, caching and parallel evaluation (paper §III-B). Objects in
//! the paper's workloads are 1-D arrays, so a region is a contiguous
//! `[offset, offset+len)` span of elements; we also carry the N-dimensional
//! shape machinery needed for spatial query constraints
//! (`PDCquery_set_region`), where the user's selection "can be arbitrary
//! and does not need to match any of the existing PDC internal region
//! partitions".

use serde::{Deserialize, Serialize};

/// The dimensions of an object, e.g. `[n]` for a 1-D array of `n` elements
/// or `[nx, ny]` for a 2-D mesh. Objects may only be combined in one query
/// when their shapes are identical.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape(pub Vec<u64>);

impl Shape {
    /// A 1-D shape of `n` elements.
    pub fn one_d(n: u64) -> Self {
        Shape(vec![n])
    }

    /// Total number of elements.
    pub fn num_elements(&self) -> u64 {
        self.0.iter().product()
    }

    /// Number of dimensions.
    pub fn ndims(&self) -> usize {
        self.0.len()
    }

    /// Convert a linear coordinate into per-dimension indices (row-major).
    pub fn unravel(&self, mut linear: u64) -> Vec<u64> {
        let mut idx = vec![0u64; self.0.len()];
        for (slot, &dim) in idx.iter_mut().zip(self.0.iter()).rev() {
            *slot = linear % dim;
            linear /= dim;
        }
        idx
    }

    /// Convert per-dimension indices into a linear coordinate (row-major).
    pub fn ravel(&self, idx: &[u64]) -> u64 {
        debug_assert_eq!(idx.len(), self.0.len());
        let mut linear = 0u64;
        for (&dim, &i) in self.0.iter().zip(idx.iter()) {
            linear = linear * dim + i;
        }
        linear
    }
}

/// A contiguous 1-D span of elements within an object: one storage region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RegionSpec {
    /// First element (inclusive).
    pub offset: u64,
    /// Number of elements.
    pub len: u64,
}

impl RegionSpec {
    /// Region covering `[offset, offset+len)`.
    pub const fn new(offset: u64, len: u64) -> Self {
        Self { offset, len }
    }

    /// One-past-the-end element.
    #[inline]
    pub const fn end(&self) -> u64 {
        self.offset + self.len
    }

    /// Whether the region contains linear coordinate `c`.
    #[inline]
    pub const fn contains(&self, c: u64) -> bool {
        c >= self.offset && c < self.end()
    }

    /// Intersection with another span, if non-empty.
    pub fn intersect(&self, other: &RegionSpec) -> Option<RegionSpec> {
        let lo = self.offset.max(other.offset);
        let hi = self.end().min(other.end());
        (lo < hi).then(|| RegionSpec::new(lo, hi - lo))
    }

    /// Partition `total` elements into regions of at most `per_region`
    /// elements each (the last region may be shorter). This is PDC's
    /// data-decomposition step: `region size` in bytes divided by the
    /// element size gives `per_region`.
    pub fn partition(total: u64, per_region: u64) -> Vec<RegionSpec> {
        assert!(per_region > 0, "region size must be positive");
        let mut out = Vec::with_capacity(total.div_ceil(per_region) as usize);
        let mut off = 0;
        while off < total {
            let len = per_region.min(total - off);
            out.push(RegionSpec::new(off, len));
            off += len;
        }
        out
    }
}

/// An N-dimensional hyper-rectangle constraint: per-dimension
/// `[offset, offset+len)` spans. Used by `PDCquery_set_region` to restrict
/// a query spatially.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct NdRegion {
    /// Per-dimension starting index.
    pub offsets: Vec<u64>,
    /// Per-dimension extent.
    pub lens: Vec<u64>,
}

impl NdRegion {
    /// A new hyper-rectangle; `offsets` and `lens` must have equal rank.
    pub fn new(offsets: Vec<u64>, lens: Vec<u64>) -> Self {
        assert_eq!(offsets.len(), lens.len(), "rank mismatch");
        Self { offsets, lens }
    }

    /// A 1-D span constraint.
    pub fn one_d(offset: u64, len: u64) -> Self {
        Self::new(vec![offset], vec![len])
    }

    /// Number of dimensions.
    pub fn ndims(&self) -> usize {
        self.offsets.len()
    }

    /// Number of elements selected.
    pub fn num_elements(&self) -> u64 {
        self.lens.iter().product()
    }

    /// Whether the multi-dimensional index `idx` falls inside.
    pub fn contains_index(&self, idx: &[u64]) -> bool {
        debug_assert_eq!(idx.len(), self.ndims());
        idx.iter()
            .zip(self.offsets.iter().zip(self.lens.iter()))
            .all(|(&i, (&off, &len))| i >= off && i < off + len)
    }

    /// Whether the linear coordinate `c` of an object with shape `shape`
    /// falls inside this hyper-rectangle.
    pub fn contains_linear(&self, shape: &Shape, c: u64) -> bool {
        self.contains_index(&shape.unravel(c))
    }

    /// For 1-D regions, the equivalent [`RegionSpec`].
    pub fn as_1d_span(&self) -> Option<RegionSpec> {
        (self.ndims() == 1).then(|| RegionSpec::new(self.offsets[0], self.lens[0]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_ravel_unravel_roundtrip() {
        let shape = Shape(vec![4, 5, 6]);
        assert_eq!(shape.num_elements(), 120);
        for linear in [0u64, 1, 59, 119] {
            let idx = shape.unravel(linear);
            assert_eq!(shape.ravel(&idx), linear);
        }
        assert_eq!(shape.unravel(0), vec![0, 0, 0]);
        assert_eq!(shape.unravel(119), vec![3, 4, 5]);
    }

    #[test]
    fn one_d_shape() {
        let s = Shape::one_d(100);
        assert_eq!(s.ndims(), 1);
        assert_eq!(s.num_elements(), 100);
        assert_eq!(s.unravel(42), vec![42]);
    }

    #[test]
    fn partition_covers_exactly_once() {
        let regions = RegionSpec::partition(100, 32);
        assert_eq!(regions.len(), 4);
        assert_eq!(regions[0], RegionSpec::new(0, 32));
        assert_eq!(regions[3], RegionSpec::new(96, 4));
        let total: u64 = regions.iter().map(|r| r.len).sum();
        assert_eq!(total, 100);
        // contiguous, non-overlapping
        for w in regions.windows(2) {
            assert_eq!(w[0].end(), w[1].offset);
        }
    }

    #[test]
    fn partition_exact_multiple() {
        let regions = RegionSpec::partition(64, 16);
        assert_eq!(regions.len(), 4);
        assert!(regions.iter().all(|r| r.len == 16));
    }

    #[test]
    fn partition_empty_object() {
        assert!(RegionSpec::partition(0, 16).is_empty());
    }

    #[test]
    #[should_panic(expected = "region size must be positive")]
    fn partition_zero_region_panics() {
        RegionSpec::partition(10, 0);
    }

    #[test]
    fn span_intersection() {
        let a = RegionSpec::new(0, 10);
        let b = RegionSpec::new(5, 10);
        assert_eq!(a.intersect(&b), Some(RegionSpec::new(5, 5)));
        let c = RegionSpec::new(20, 5);
        assert_eq!(a.intersect(&c), None);
        // touching spans do not intersect
        let d = RegionSpec::new(10, 5);
        assert_eq!(a.intersect(&d), None);
    }

    #[test]
    fn span_contains() {
        let r = RegionSpec::new(10, 5);
        assert!(!r.contains(9));
        assert!(r.contains(10));
        assert!(r.contains(14));
        assert!(!r.contains(15));
    }

    #[test]
    fn nd_region_membership() {
        let shape = Shape(vec![10, 10]);
        let region = NdRegion::new(vec![2, 3], vec![4, 4]);
        assert_eq!(region.num_elements(), 16);
        assert!(region.contains_index(&[2, 3]));
        assert!(region.contains_index(&[5, 6]));
        assert!(!region.contains_index(&[6, 3]));
        assert!(!region.contains_index(&[2, 7]));
        // linear coordinate of index [2,3] is 23
        assert!(region.contains_linear(&shape, 23));
        assert!(!region.contains_linear(&shape, 0));
    }

    #[test]
    fn nd_region_1d_conversion() {
        let r = NdRegion::one_d(5, 10);
        assert_eq!(r.as_1d_span(), Some(RegionSpec::new(5, 10)));
        let r2 = NdRegion::new(vec![0, 0], vec![2, 2]);
        assert_eq!(r2.as_1d_span(), None);
    }

    #[test]
    #[should_panic(expected = "rank mismatch")]
    fn nd_region_rank_mismatch_panics() {
        NdRegion::new(vec![0], vec![1, 2]);
    }
}
