//! Query comparison operators.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The comparison operators accepted by `PDCquery_create` (paper Fig. 1):
/// `>`, `>=`, `<`, `<=`, `=`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QueryOp {
    /// Strictly greater than.
    Gt,
    /// Greater than or equal.
    Gte,
    /// Strictly less than.
    Lt,
    /// Less than or equal.
    Lte,
    /// Equal.
    Eq,
}

impl QueryOp {
    /// Evaluate the operator on `lhs OP rhs`.
    #[inline]
    pub fn eval(self, lhs: f64, rhs: f64) -> bool {
        match self {
            QueryOp::Gt => lhs > rhs,
            QueryOp::Gte => lhs >= rhs,
            QueryOp::Lt => lhs < rhs,
            QueryOp::Lte => lhs <= rhs,
            QueryOp::Eq => lhs == rhs,
        }
    }

    /// The operator's symbol as written in queries.
    pub fn symbol(self) -> &'static str {
        match self {
            QueryOp::Gt => ">",
            QueryOp::Gte => ">=",
            QueryOp::Lt => "<",
            QueryOp::Lte => "<=",
            QueryOp::Eq => "=",
        }
    }

    /// The mirrored operator, i.e. the op such that `a OP b == b OP' a`.
    pub fn mirrored(self) -> Self {
        match self {
            QueryOp::Gt => QueryOp::Lt,
            QueryOp::Gte => QueryOp::Lte,
            QueryOp::Lt => QueryOp::Gt,
            QueryOp::Lte => QueryOp::Gte,
            QueryOp::Eq => QueryOp::Eq,
        }
    }
}

impl fmt::Display for QueryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_matches_semantics() {
        assert!(QueryOp::Gt.eval(2.0, 1.0));
        assert!(!QueryOp::Gt.eval(1.0, 1.0));
        assert!(QueryOp::Gte.eval(1.0, 1.0));
        assert!(QueryOp::Lt.eval(0.5, 1.0));
        assert!(!QueryOp::Lt.eval(1.0, 1.0));
        assert!(QueryOp::Lte.eval(1.0, 1.0));
        assert!(QueryOp::Eq.eval(3.25, 3.25));
        assert!(!QueryOp::Eq.eval(3.25, 3.26));
    }

    #[test]
    fn mirrored_is_involutive_and_correct() {
        for op in [QueryOp::Gt, QueryOp::Gte, QueryOp::Lt, QueryOp::Lte, QueryOp::Eq] {
            assert_eq!(op.mirrored().mirrored(), op);
            for (a, b) in [(1.0, 2.0), (2.0, 1.0), (1.5, 1.5)] {
                assert_eq!(op.eval(a, b), op.mirrored().eval(b, a), "{op} on ({a},{b})");
            }
        }
    }

    #[test]
    fn symbols() {
        assert_eq!(QueryOp::Gte.to_string(), ">=");
        assert_eq!(QueryOp::Eq.to_string(), "=");
    }
}
