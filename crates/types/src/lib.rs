//! # pdc-types
//!
//! Shared vocabulary for the PDC-Query reproduction.
//!
//! This crate defines the types every other crate in the workspace speaks:
//!
//! * [`ObjectId`], [`ContainerId`], [`RegionId`], [`ServerId`] — identifiers
//!   for the entities of an object-centric data management system (ODMS).
//! * [`PdcType`] / [`PdcValue`] / [`TypedVec`] — the dynamically typed array
//!   element machinery mirroring the paper's `pdc_type_t` (float, double,
//!   int, uint, int64, uint64).
//! * [`QueryOp`] and [`Interval`] — query operators (`>`, `>=`, `<`, `<=`,
//!   `=`) and the normalized half-open/closed value intervals that
//!   conjunctions of operators reduce to.
//! * [`Selection`] — the run-length encoded set of matching element
//!   coordinates that `PDCquery_get_selection` returns.
//! * [`kernels`] — monomorphized, branchless scan kernels (typed interval
//!   lowering, 64-element hit masks, chunk-parallel region evaluation)
//!   that every executor's hot loop runs on.
//! * [`RegionSpec`] / [`NdRegion`] — region geometry: 1-D partitions of an
//!   object plus N-dimensional spatial constraints.
//! * [`PdcError`] — the common error type.

pub mod error;
pub mod ids;
pub mod interval;
pub mod kernels;
pub mod op;
pub mod region;
pub mod selection;
pub mod value;

pub use error::{PdcError, PdcResult};
pub use ids::{ContainerId, ObjectId, QueryId, RegionId, ServerId};
pub use interval::Interval;
pub use op::QueryOp;
pub use region::{NdRegion, RegionSpec, Shape};
pub use selection::{Run, Selection};
pub use value::{PdcType, PdcValue, TypedVec};
