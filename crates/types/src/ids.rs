//! Identifiers for ODMS entities.
//!
//! PDC identifies every entity (container, object, region, server, query)
//! with a 64-bit id handed out by the metadata service. We mirror that with
//! newtype wrappers so the ids cannot be confused with one another.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_newtype {
    ($(#[$doc:meta])* $name:ident($inner:ty)) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize,
            Deserialize,
        )]
        pub struct $name(pub $inner);

        impl $name {
            /// Raw integer value of the id.
            #[inline]
            pub const fn raw(self) -> $inner {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }

        impl From<$inner> for $name {
            fn from(v: $inner) -> Self {
                Self(v)
            }
        }
    };
}

id_newtype!(
    /// Identifier of a PDC container (a collection of objects).
    ContainerId(u64)
);
id_newtype!(
    /// Identifier of a PDC data or metadata object.
    ObjectId(u64)
);
id_newtype!(
    /// Identifier of a logical PDC server process.
    ServerId(u32)
);
id_newtype!(
    /// Identifier of an in-flight query.
    QueryId(u64)
);

/// Identifier of one region (partition) of an object.
///
/// Regions are the basic unit of data placement and parallel evaluation in
/// PDC: a large object is broken into fixed-size regions, and each region
/// can live on any tier of the storage hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RegionId {
    /// Object this region belongs to.
    pub object: ObjectId,
    /// Zero-based index of the region within the object.
    pub index: u32,
}

impl RegionId {
    /// Region `index` of object `object`.
    #[inline]
    pub const fn new(object: ObjectId, index: u32) -> Self {
        Self { object, index }
    }
}

impl fmt::Display for RegionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Region({}.{})", self.object.0, self.index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_ordered_and_hashable() {
        let a = ObjectId(1);
        let b = ObjectId(2);
        assert!(a < b);
        let mut set = std::collections::HashSet::new();
        set.insert(a);
        set.insert(b);
        set.insert(ObjectId(1));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn region_id_orders_by_object_then_index() {
        let r00 = RegionId::new(ObjectId(0), 5);
        let r10 = RegionId::new(ObjectId(1), 0);
        let r11 = RegionId::new(ObjectId(1), 1);
        assert!(r00 < r10);
        assert!(r10 < r11);
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(ObjectId(7).to_string(), "ObjectId(7)");
        assert_eq!(RegionId::new(ObjectId(3), 2).to_string(), "Region(3.2)");
    }

    #[test]
    fn from_raw_roundtrip() {
        let id: ServerId = 9u32.into();
        assert_eq!(id.raw(), 9);
    }
}
