//! The common error type for the PDC-Query workspace.

use crate::ids::{ObjectId, RegionId};
use std::fmt;

/// Result alias with [`PdcError`] as the error type.
pub type PdcResult<T> = Result<T, PdcError>;

/// Errors surfaced by the ODMS substrate and the query service.
///
/// The paper's C API returns `perr_t`; we use a structured enum so callers
/// can distinguish recoverable conditions (e.g. a buffer that is too small
/// for `PDCquery_get_data`) from programming errors (type mismatches).
#[derive(Debug, Clone, PartialEq)]
pub enum PdcError {
    /// The referenced object does not exist.
    NoSuchObject(ObjectId),
    /// The referenced region does not exist (or is not resident anywhere).
    NoSuchRegion(RegionId),
    /// A named entity (container, metadata attribute, ...) was not found.
    NotFound(String),
    /// The value type supplied to a query does not match the object's type.
    TypeMismatch {
        /// What the object stores.
        expected: crate::value::PdcType,
        /// What the caller supplied.
        got: crate::value::PdcType,
    },
    /// Objects combined in one query do not share identical dimensions.
    DimensionMismatch {
        /// Dimensions of the first object.
        left: Vec<u64>,
        /// Dimensions of the offending object.
        right: Vec<u64>,
    },
    /// A user-supplied buffer is too small for the requested data.
    BufferTooSmall {
        /// Elements required.
        needed: u64,
        /// Elements provided.
        provided: u64,
    },
    /// A selection refers to coordinates outside the object's extent.
    SelectionOutOfBounds {
        /// The offending coordinate.
        coord: u64,
        /// Number of elements in the object.
        len: u64,
    },
    /// An operation needs a prerequisite that has not been built
    /// (e.g. querying with `SortedHistogram` when no sorted replica exists).
    MissingPrerequisite(String),
    /// The query tree is malformed (e.g. empty, or mixes incompatible ops).
    InvalidQuery(String),
    /// Serialization / deserialization failure in the transport layer.
    Codec(String),
    /// The server pool rejected or lost a request.
    Transport(String),
    /// Simulated storage failure (used by failure-injection tests).
    Storage(String),
    /// A PDC server crashed or misbehaved while serving a request
    /// (fault injection, or a panicking handler caught by the pool).
    ServerFailed {
        /// The failing server's index.
        server: u32,
        /// What happened (crash, transient error, panic payload, ...).
        reason: String,
    },
    /// A query could not complete within the configured retry budget.
    RetriesExhausted {
        /// Evaluation rounds attempted (initial round + retries).
        attempts: u32,
    },
    /// A stored region's payload failed checksum verification and no
    /// pristine durable copy was available to repair it from.
    CorruptRegion {
        /// The region whose payload failed verification.
        region: RegionId,
        /// The storage tier the corrupt copy was found on ("dram",
        /// "burst-buffer", "pfs").
        tier: String,
    },
    /// A metadata snapshot blob failed frame validation (bad magic,
    /// unsupported version, truncated payload, or checksum mismatch) and
    /// no older journal entry verified either.
    SnapshotCorrupt(String),
}

impl fmt::Display for PdcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PdcError::NoSuchObject(id) => write!(f, "no such object: {id}"),
            PdcError::NoSuchRegion(id) => write!(f, "no such region: {id}"),
            PdcError::NotFound(what) => write!(f, "not found: {what}"),
            PdcError::TypeMismatch { expected, got } => {
                write!(f, "type mismatch: object stores {expected:?}, query supplied {got:?}")
            }
            PdcError::DimensionMismatch { left, right } => {
                write!(f, "dimension mismatch between queried objects: {left:?} vs {right:?}")
            }
            PdcError::BufferTooSmall { needed, provided } => {
                write!(f, "buffer too small: need {needed} elements, got {provided}")
            }
            PdcError::SelectionOutOfBounds { coord, len } => {
                write!(f, "selection coordinate {coord} out of bounds for object of {len} elements")
            }
            PdcError::MissingPrerequisite(what) => write!(f, "missing prerequisite: {what}"),
            PdcError::InvalidQuery(why) => write!(f, "invalid query: {why}"),
            PdcError::Codec(why) => write!(f, "codec error: {why}"),
            PdcError::Transport(why) => write!(f, "transport error: {why}"),
            PdcError::Storage(why) => write!(f, "storage error: {why}"),
            PdcError::ServerFailed { server, reason } => {
                write!(f, "server {server} failed: {reason}")
            }
            PdcError::RetriesExhausted { attempts } => {
                write!(f, "query failed after {attempts} evaluation rounds: retry budget exhausted")
            }
            PdcError::CorruptRegion { region, tier } => {
                write!(f, "region {region} failed checksum verification on tier {tier}")
            }
            PdcError::SnapshotCorrupt(why) => {
                write!(f, "metadata snapshot corrupt: {why}")
            }
        }
    }
}

impl std::error::Error for PdcError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::PdcType;

    #[test]
    fn display_messages_are_informative() {
        let e = PdcError::TypeMismatch { expected: PdcType::Float, got: PdcType::Double };
        let msg = e.to_string();
        assert!(msg.contains("Float") && msg.contains("Double"));

        let e = PdcError::BufferTooSmall { needed: 10, provided: 3 };
        assert!(e.to_string().contains("10"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&PdcError::NotFound("x".into()));
    }
}
