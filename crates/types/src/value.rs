//! Dynamically typed scalar values and arrays.
//!
//! The paper's `PDCquery_create` takes a `pdc_type_t` tag plus a `void*`
//! value, and PDC objects store 1-D arrays of one of those element types.
//! [`PdcValue`] is the tagged scalar, [`TypedVec`] the tagged array. All
//! query evaluation compares values through `f64`, which is exact for
//! `f32`, `i32`, `u32` and for `i64`/`u64` magnitudes below 2^53 — the
//! ranges exercised by the paper's workloads.

use crate::error::{PdcError, PdcResult};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Element type tag, mirroring the paper's `pdc_type_t`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PdcType {
    /// 32-bit IEEE float (`float`).
    Float,
    /// 64-bit IEEE float (`double`).
    Double,
    /// 32-bit signed integer (`int`).
    Int32,
    /// 32-bit unsigned integer (`unsigned int`).
    UInt32,
    /// 64-bit signed integer (`long long`).
    Int64,
    /// 64-bit unsigned integer (`unsigned long long`).
    UInt64,
}

impl PdcType {
    /// Size of one element in bytes.
    #[inline]
    pub const fn size_bytes(self) -> u64 {
        match self {
            PdcType::Float | PdcType::Int32 | PdcType::UInt32 => 4,
            PdcType::Double | PdcType::Int64 | PdcType::UInt64 => 8,
        }
    }

    /// Whether the type is a floating-point type.
    #[inline]
    pub const fn is_float(self) -> bool {
        matches!(self, PdcType::Float | PdcType::Double)
    }
}

/// A tagged scalar value, the Rust equivalent of the C API's
/// `(pdc_type_t, void*)` pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PdcValue {
    /// `float`
    Float(f32),
    /// `double`
    Double(f64),
    /// `int`
    Int32(i32),
    /// `unsigned int`
    UInt32(u32),
    /// `long long`
    Int64(i64),
    /// `unsigned long long`
    UInt64(u64),
}

impl PdcValue {
    /// The type tag of this value.
    #[inline]
    pub const fn pdc_type(self) -> PdcType {
        match self {
            PdcValue::Float(_) => PdcType::Float,
            PdcValue::Double(_) => PdcType::Double,
            PdcValue::Int32(_) => PdcType::Int32,
            PdcValue::UInt32(_) => PdcType::UInt32,
            PdcValue::Int64(_) => PdcType::Int64,
            PdcValue::UInt64(_) => PdcType::UInt64,
        }
    }

    /// The value widened to `f64` (the common comparison domain).
    #[inline]
    pub fn as_f64(self) -> f64 {
        match self {
            PdcValue::Float(v) => v as f64,
            PdcValue::Double(v) => v,
            PdcValue::Int32(v) => v as f64,
            PdcValue::UInt32(v) => v as f64,
            PdcValue::Int64(v) => v as f64,
            PdcValue::UInt64(v) => v as f64,
        }
    }
}

impl fmt::Display for PdcValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PdcValue::Float(v) => write!(f, "{v}"),
            PdcValue::Double(v) => write!(f, "{v}"),
            PdcValue::Int32(v) => write!(f, "{v}"),
            PdcValue::UInt32(v) => write!(f, "{v}"),
            PdcValue::Int64(v) => write!(f, "{v}"),
            PdcValue::UInt64(v) => write!(f, "{v}"),
        }
    }
}

macro_rules! impl_from_scalar {
    ($($t:ty => $variant:ident),* $(,)?) => {
        $(impl From<$t> for PdcValue {
            fn from(v: $t) -> Self { PdcValue::$variant(v) }
        })*
    };
}
impl_from_scalar!(f32 => Float, f64 => Double, i32 => Int32, u32 => UInt32, i64 => Int64, u64 => UInt64);

/// A tagged, owned 1-D array of elements; the payload of a PDC region.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TypedVec {
    /// Array of `float`.
    Float(Vec<f32>),
    /// Array of `double`.
    Double(Vec<f64>),
    /// Array of `int`.
    Int32(Vec<i32>),
    /// Array of `unsigned int`.
    UInt32(Vec<u32>),
    /// Array of `long long`.
    Int64(Vec<i64>),
    /// Array of `unsigned long long`.
    UInt64(Vec<u64>),
}

/// Dispatch a block over the concrete element slice of a [`TypedVec`].
///
/// `with_slice!(tv, xs => expr)` binds `xs` to `&[T]` for the concrete `T`.
#[macro_export]
macro_rules! with_slice {
    ($tv:expr, $xs:ident => $body:expr) => {
        match $tv {
            $crate::value::TypedVec::Float($xs) => $body,
            $crate::value::TypedVec::Double($xs) => $body,
            $crate::value::TypedVec::Int32($xs) => $body,
            $crate::value::TypedVec::UInt32($xs) => $body,
            $crate::value::TypedVec::Int64($xs) => $body,
            $crate::value::TypedVec::UInt64($xs) => $body,
        }
    };
}

impl TypedVec {
    /// An empty array of the given type.
    pub fn empty(ty: PdcType) -> Self {
        match ty {
            PdcType::Float => TypedVec::Float(Vec::new()),
            PdcType::Double => TypedVec::Double(Vec::new()),
            PdcType::Int32 => TypedVec::Int32(Vec::new()),
            PdcType::UInt32 => TypedVec::UInt32(Vec::new()),
            PdcType::Int64 => TypedVec::Int64(Vec::new()),
            PdcType::UInt64 => TypedVec::UInt64(Vec::new()),
        }
    }

    /// An empty array of the given type with reserved capacity.
    pub fn with_capacity(ty: PdcType, cap: usize) -> Self {
        match ty {
            PdcType::Float => TypedVec::Float(Vec::with_capacity(cap)),
            PdcType::Double => TypedVec::Double(Vec::with_capacity(cap)),
            PdcType::Int32 => TypedVec::Int32(Vec::with_capacity(cap)),
            PdcType::UInt32 => TypedVec::UInt32(Vec::with_capacity(cap)),
            PdcType::Int64 => TypedVec::Int64(Vec::with_capacity(cap)),
            PdcType::UInt64 => TypedVec::UInt64(Vec::with_capacity(cap)),
        }
    }

    /// The type tag of the elements.
    #[inline]
    pub fn pdc_type(&self) -> PdcType {
        match self {
            TypedVec::Float(_) => PdcType::Float,
            TypedVec::Double(_) => PdcType::Double,
            TypedVec::Int32(_) => PdcType::Int32,
            TypedVec::UInt32(_) => PdcType::UInt32,
            TypedVec::Int64(_) => PdcType::Int64,
            TypedVec::UInt64(_) => PdcType::UInt64,
        }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        with_slice!(self, xs => xs.len())
    }

    /// Whether the array has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total payload size in bytes.
    #[inline]
    pub fn size_bytes(&self) -> u64 {
        self.len() as u64 * self.pdc_type().size_bytes()
    }

    /// Element `i` widened to `f64`. Panics if out of bounds.
    #[inline]
    pub fn get_f64(&self, i: usize) -> f64 {
        #[allow(clippy::unnecessary_cast)] // the Double arm casts f64->f64
        {
            with_slice!(self, xs => xs[i] as f64)
        }
    }

    /// Element `i` as a tagged scalar. Panics if out of bounds.
    #[inline]
    pub fn get_value(&self, i: usize) -> PdcValue {
        match self {
            TypedVec::Float(xs) => PdcValue::Float(xs[i]),
            TypedVec::Double(xs) => PdcValue::Double(xs[i]),
            TypedVec::Int32(xs) => PdcValue::Int32(xs[i]),
            TypedVec::UInt32(xs) => PdcValue::UInt32(xs[i]),
            TypedVec::Int64(xs) => PdcValue::Int64(xs[i]),
            TypedVec::UInt64(xs) => PdcValue::UInt64(xs[i]),
        }
    }

    /// Append element `i` of `src` (which must have the same type tag).
    pub fn push_from(&mut self, src: &TypedVec, i: usize) -> PdcResult<()> {
        match (self, src) {
            (TypedVec::Float(dst), TypedVec::Float(xs)) => dst.push(xs[i]),
            (TypedVec::Double(dst), TypedVec::Double(xs)) => dst.push(xs[i]),
            (TypedVec::Int32(dst), TypedVec::Int32(xs)) => dst.push(xs[i]),
            (TypedVec::UInt32(dst), TypedVec::UInt32(xs)) => dst.push(xs[i]),
            (TypedVec::Int64(dst), TypedVec::Int64(xs)) => dst.push(xs[i]),
            (TypedVec::UInt64(dst), TypedVec::UInt64(xs)) => dst.push(xs[i]),
            (dst, src) => {
                return Err(PdcError::TypeMismatch {
                    expected: dst.pdc_type(),
                    got: src.pdc_type(),
                })
            }
        }
        Ok(())
    }

    /// Append elements `range` of `src` (same type tag required).
    pub fn extend_from_range(
        &mut self,
        src: &TypedVec,
        range: std::ops::Range<usize>,
    ) -> PdcResult<()> {
        match (self, src) {
            (TypedVec::Float(dst), TypedVec::Float(xs)) => dst.extend_from_slice(&xs[range]),
            (TypedVec::Double(dst), TypedVec::Double(xs)) => dst.extend_from_slice(&xs[range]),
            (TypedVec::Int32(dst), TypedVec::Int32(xs)) => dst.extend_from_slice(&xs[range]),
            (TypedVec::UInt32(dst), TypedVec::UInt32(xs)) => dst.extend_from_slice(&xs[range]),
            (TypedVec::Int64(dst), TypedVec::Int64(xs)) => dst.extend_from_slice(&xs[range]),
            (TypedVec::UInt64(dst), TypedVec::UInt64(xs)) => dst.extend_from_slice(&xs[range]),
            (dst, src) => {
                return Err(PdcError::TypeMismatch {
                    expected: dst.pdc_type(),
                    got: src.pdc_type(),
                })
            }
        }
        Ok(())
    }

    /// Sub-array `[start, start+len)` as a new owned array.
    pub fn slice(&self, start: usize, len: usize) -> TypedVec {
        match self {
            TypedVec::Float(xs) => TypedVec::Float(xs[start..start + len].to_vec()),
            TypedVec::Double(xs) => TypedVec::Double(xs[start..start + len].to_vec()),
            TypedVec::Int32(xs) => TypedVec::Int32(xs[start..start + len].to_vec()),
            TypedVec::UInt32(xs) => TypedVec::UInt32(xs[start..start + len].to_vec()),
            TypedVec::Int64(xs) => TypedVec::Int64(xs[start..start + len].to_vec()),
            TypedVec::UInt64(xs) => TypedVec::UInt64(xs[start..start + len].to_vec()),
        }
    }

    /// Iterator over all elements widened to `f64`.
    pub fn iter_f64(&self) -> Box<dyn Iterator<Item = f64> + '_> {
        match self {
            TypedVec::Float(xs) => Box::new(xs.iter().map(|&v| v as f64)),
            TypedVec::Double(xs) => Box::new(xs.iter().copied()),
            TypedVec::Int32(xs) => Box::new(xs.iter().map(|&v| v as f64)),
            TypedVec::UInt32(xs) => Box::new(xs.iter().map(|&v| v as f64)),
            TypedVec::Int64(xs) => Box::new(xs.iter().map(|&v| v as f64)),
            TypedVec::UInt64(xs) => Box::new(xs.iter().map(|&v| v as f64)),
        }
    }

    /// Append all elements, widened to `f64`, to `out`.
    ///
    /// One monomorphized loop per variant — unlike [`TypedVec::iter_f64`]
    /// there is no boxed-iterator virtual call per element, so ingest
    /// paths (sorted-replica build, histogram construction) should prefer
    /// this.
    pub fn append_f64_to(&self, out: &mut Vec<f64>) {
        out.reserve(self.len());
        #[allow(clippy::unnecessary_cast)] // the Double arm casts f64->f64
        {
            with_slice!(self, xs => out.extend(xs.iter().map(|&v| v as f64)));
        }
    }

    /// All elements widened to `f64` (typed-loop equivalent of
    /// `iter_f64().collect()`).
    pub fn to_f64_vec(&self) -> Vec<f64> {
        let mut out = Vec::new();
        self.append_f64_to(&mut out);
        out
    }

    /// Minimum and maximum of the array widened to `f64`, or `None` if empty.
    pub fn min_max_f64(&self) -> Option<(f64, f64)> {
        if self.is_empty() {
            return None;
        }
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        #[allow(clippy::unnecessary_cast)] // the Double arm casts f64->f64
        {
            with_slice!(self, xs => {
                for &v in xs.iter() {
                    let v = v as f64;
                    if v < lo {
                        lo = v;
                    }
                    if v > hi {
                        hi = v;
                    }
                }
            });
        }
        Some((lo, hi))
    }
}

macro_rules! impl_from_vec {
    ($($t:ty => $variant:ident),* $(,)?) => {
        $(impl From<Vec<$t>> for TypedVec {
            fn from(v: Vec<$t>) -> Self { TypedVec::$variant(v) }
        })*
    };
}
impl_from_vec!(f32 => Float, f64 => Double, i32 => Int32, u32 => UInt32, i64 => Int64, u64 => UInt64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_sizes() {
        assert_eq!(PdcType::Float.size_bytes(), 4);
        assert_eq!(PdcType::Double.size_bytes(), 8);
        assert_eq!(PdcType::Int64.size_bytes(), 8);
        assert!(PdcType::Double.is_float());
        assert!(!PdcType::UInt32.is_float());
    }

    #[test]
    fn scalar_conversion_and_tag() {
        let v: PdcValue = 1.5f32.into();
        assert_eq!(v.pdc_type(), PdcType::Float);
        assert_eq!(v.as_f64(), 1.5);
        let v: PdcValue = (-7i64).into();
        assert_eq!(v.as_f64(), -7.0);
    }

    #[test]
    fn typed_vec_basics() {
        let tv: TypedVec = vec![1.0f32, 2.0, 3.0].into();
        assert_eq!(tv.len(), 3);
        assert_eq!(tv.size_bytes(), 12);
        assert_eq!(tv.get_f64(1), 2.0);
        assert_eq!(tv.get_value(2), PdcValue::Float(3.0));
        assert_eq!(tv.min_max_f64(), Some((1.0, 3.0)));
        assert!(!tv.is_empty());
        assert!(TypedVec::empty(PdcType::Int32).is_empty());
    }

    #[test]
    fn slice_and_extend() {
        let tv: TypedVec = vec![10i32, 20, 30, 40].into();
        let s = tv.slice(1, 2);
        assert_eq!(s, TypedVec::Int32(vec![20, 30]));

        let mut dst = TypedVec::empty(PdcType::Int32);
        dst.extend_from_range(&tv, 2..4).unwrap();
        assert_eq!(dst, TypedVec::Int32(vec![30, 40]));
        dst.push_from(&tv, 0).unwrap();
        assert_eq!(dst.len(), 3);
    }

    #[test]
    fn type_mismatch_is_reported() {
        let mut dst = TypedVec::empty(PdcType::Float);
        let src: TypedVec = vec![1i32].into();
        let err = dst.push_from(&src, 0).unwrap_err();
        assert!(matches!(err, PdcError::TypeMismatch { .. }));
        let err = dst.extend_from_range(&src, 0..1).unwrap_err();
        assert!(matches!(err, PdcError::TypeMismatch { .. }));
    }

    #[test]
    fn iter_f64_covers_all_variants() {
        let cases: Vec<TypedVec> = vec![
            vec![1.0f32, 2.0].into(),
            vec![1.0f64, 2.0].into(),
            vec![1i32, 2].into(),
            vec![1u32, 2].into(),
            vec![1i64, 2].into(),
            vec![1u64, 2].into(),
        ];
        for tv in cases {
            let collected: Vec<f64> = tv.iter_f64().collect();
            assert_eq!(collected, vec![1.0, 2.0], "variant {:?}", tv.pdc_type());
        }
    }

    #[test]
    fn to_f64_vec_matches_iter_f64() {
        let cases: Vec<TypedVec> = vec![
            vec![1.5f32, -2.0].into(),
            vec![1.5f64, -2.0].into(),
            vec![1i32, -2].into(),
            vec![1u32, 2].into(),
            vec![1i64, -2].into(),
            vec![1u64, 2].into(),
        ];
        for tv in cases {
            let expect: Vec<f64> = tv.iter_f64().collect();
            assert_eq!(tv.to_f64_vec(), expect, "variant {:?}", tv.pdc_type());
            let mut appended = vec![9.0];
            tv.append_f64_to(&mut appended);
            assert_eq!(appended[1..], expect[..], "variant {:?}", tv.pdc_type());
        }
    }

    #[test]
    fn min_max_handles_negative_values() {
        let tv: TypedVec = vec![-5.0f64, 3.0, -10.0, 2.0].into();
        assert_eq!(tv.min_max_f64(), Some((-10.0, 3.0)));
    }
}
