//! Property-based tests for `Selection` and `Interval`: the run-length set
//! algebra must agree with a naive `BTreeSet` model, and interval algebra
//! must agree with direct predicate evaluation.

use pdc_types::{Interval, QueryOp, Run, Selection};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn coords_strategy() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0u64..500, 0..120)
}

fn model(coords: &[u64]) -> BTreeSet<u64> {
    coords.iter().copied().collect()
}

proptest! {
    #[test]
    fn selection_roundtrips_coords(coords in coords_strategy()) {
        let s = Selection::from_unsorted_coords(coords.clone());
        let m = model(&coords);
        prop_assert_eq!(s.iter_coords().collect::<Vec<_>>(), m.iter().copied().collect::<Vec<_>>());
        prop_assert_eq!(s.count(), m.len() as u64);
    }

    #[test]
    fn selection_runs_are_canonical(coords in coords_strategy()) {
        let s = Selection::from_unsorted_coords(coords);
        for r in s.runs() {
            prop_assert!(r.len > 0);
        }
        for w in s.runs().windows(2) {
            prop_assert!(w[0].end() < w[1].start, "runs must be sorted and non-adjacent");
        }
    }

    #[test]
    fn union_matches_set_model(a in coords_strategy(), b in coords_strategy()) {
        let sa = Selection::from_unsorted_coords(a.clone());
        let sb = Selection::from_unsorted_coords(b.clone());
        let expect: Vec<u64> = model(&a).union(&model(&b)).copied().collect();
        prop_assert_eq!(sa.union(&sb).iter_coords().collect::<Vec<_>>(), expect);
        // commutative
        prop_assert_eq!(sa.union(&sb), sb.union(&sa));
    }

    #[test]
    fn intersect_matches_set_model(a in coords_strategy(), b in coords_strategy()) {
        let sa = Selection::from_unsorted_coords(a.clone());
        let sb = Selection::from_unsorted_coords(b.clone());
        let expect: Vec<u64> = model(&a).intersection(&model(&b)).copied().collect();
        prop_assert_eq!(sa.intersect(&sb).iter_coords().collect::<Vec<_>>(), expect);
        prop_assert_eq!(sa.intersect(&sb), sb.intersect(&sa));
    }

    #[test]
    fn demorgan_style_counts(a in coords_strategy(), b in coords_strategy()) {
        // |A ∪ B| + |A ∩ B| == |A| + |B|
        let sa = Selection::from_unsorted_coords(a);
        let sb = Selection::from_unsorted_coords(b);
        prop_assert_eq!(
            sa.union(&sb).count() + sa.intersect(&sb).count(),
            sa.count() + sb.count()
        );
    }

    #[test]
    fn restrict_matches_filter(coords in coords_strategy(), start in 0u64..500, len in 0u64..200) {
        let s = Selection::from_unsorted_coords(coords.clone());
        let expect: Vec<u64> = model(&coords)
            .into_iter()
            .filter(|&c| c >= start && c < start + len)
            .collect();
        prop_assert_eq!(
            s.restrict_to_span(start, len).iter_coords().collect::<Vec<_>>(),
            expect
        );
    }

    #[test]
    fn contains_matches_model(coords in coords_strategy(), probe in 0u64..600) {
        let s = Selection::from_unsorted_coords(coords.clone());
        prop_assert_eq!(s.contains(probe), model(&coords).contains(&probe));
    }

    #[test]
    fn from_runs_equals_coord_expansion(runs in prop::collection::vec((0u64..300, 0u64..20), 0..30)) {
        let runs: Vec<Run> = runs.into_iter().map(|(s, l)| Run::new(s, l)).collect();
        let mut expect = BTreeSet::new();
        for r in &runs {
            for c in r.start..r.end() {
                expect.insert(c);
            }
        }
        let s = Selection::from_runs(runs);
        prop_assert_eq!(s.iter_coords().collect::<Vec<_>>(), expect.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn interval_intersect_is_conjunction(
        op1 in prop::sample::select(vec![QueryOp::Gt, QueryOp::Gte, QueryOp::Lt, QueryOp::Lte, QueryOp::Eq]),
        op2 in prop::sample::select(vec![QueryOp::Gt, QueryOp::Gte, QueryOp::Lt, QueryOp::Lte, QueryOp::Eq]),
        v1 in -100.0f64..100.0,
        v2 in -100.0f64..100.0,
        probe in -150.0f64..150.0,
    ) {
        let iv = Interval::from_op(op1, v1).intersect(&Interval::from_op(op2, v2));
        prop_assert_eq!(iv.contains(probe), op1.eval(probe, v1) && op2.eval(probe, v2));
    }

    #[test]
    fn interval_overlap_agrees_with_membership_sampling(
        lo in -50.0f64..50.0,
        width in 0.0f64..30.0,
        rmin in -60.0f64..60.0,
        rwidth in 0.0f64..30.0,
    ) {
        let iv = Interval::closed(lo, lo + width);
        let (rmin, rmax) = (rmin, rmin + rwidth);
        let overlap = iv.overlaps_range(rmin, rmax);
        // sample the range densely; if any sample matches, overlap must be true
        let any_match = (0..=100).any(|i| {
            let v = rmin + (rmax - rmin) * (i as f64) / 100.0;
            iv.contains(v)
        });
        if any_match {
            prop_assert!(overlap);
        }
        // and if ranges are fully disjoint, overlap must be false
        if rmax < lo || rmin > lo + width {
            prop_assert!(!overlap);
        }
    }
}
