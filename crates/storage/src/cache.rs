//! The per-server region cache.
//!
//! "We set a memory limit of 64 GB to be used by each PDC server" and "an
//! increasing number of the regions' data are cached in the PDC servers'
//! memory and do not require storage access" — the cache is what produces
//! the paper's observed speedup over a sequentially evaluated query
//! series. LRU with a byte budget.

use pdc_types::{RegionId, TypedVec};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// What the cache holds for a region.
///
/// A `Hot` slot pins the decoded payload. A `Cold` slot records that the
/// region is "cached" for capacity and hit/miss purposes while its bytes
/// actually live in the out-of-core block store — the slot charges the
/// same byte footprint as the payload would, so every admission,
/// eviction, and hit/miss decision is **bit-identical** between spill-on
/// and spill-off runs (decisions depend only on region id, size, and
/// recency, never on physical residency).
#[derive(Debug, Clone)]
pub enum CacheSlot {
    /// Decoded payload held in memory.
    Hot(Arc<TypedVec>),
    /// Spilled region: logical footprint only, bytes served block-wise.
    Cold {
        /// Uncompressed payload bytes the slot charges against capacity.
        bytes: u64,
        /// Element count of the payload at insert time.
        elems: u64,
    },
}

impl CacheSlot {
    /// Bytes this slot charges against the cache budget.
    pub fn size_bytes(&self) -> u64 {
        match self {
            CacheSlot::Hot(p) => p.size_bytes(),
            CacheSlot::Cold { bytes, .. } => *bytes,
        }
    }

    /// Element count of the cached payload.
    pub fn elems(&self) -> u64 {
        match self {
            CacheSlot::Hot(p) => p.len() as u64,
            CacheSlot::Cold { elems, .. } => *elems,
        }
    }
}

/// An LRU region cache with a byte budget.
///
/// Recency is tracked with a `BTreeMap` keyed by a monotonically
/// increasing use tick (ticks are unique, so it is a total order);
/// eviction pops the smallest tick in O(log n) instead of scanning every
/// entry for the minimum.
#[derive(Debug)]
pub struct RegionCache {
    capacity_bytes: u64,
    used_bytes: u64,
    entries: HashMap<RegionId, (CacheSlot, u64)>, // slot, last-use tick
    recency: BTreeMap<u64, RegionId>,             // last-use tick -> region
    tick: u64,
    hits: u64,
    misses: u64,
}

impl RegionCache {
    /// A cache with the given byte budget.
    pub fn new(capacity_bytes: u64) -> Self {
        Self {
            capacity_bytes,
            used_bytes: 0,
            entries: HashMap::new(),
            recency: BTreeMap::new(),
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Byte budget.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// Bytes currently cached.
    pub fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    /// Number of cached regions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Cache hits since creation.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses since creation.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Look up a region, refreshing its recency on hit.
    pub fn get(&mut self, id: RegionId) -> Option<CacheSlot> {
        self.tick += 1;
        let tick = self.tick;
        match self.entries.get_mut(&id) {
            Some((slot, last)) => {
                self.recency.remove(last);
                self.recency.insert(tick, id);
                *last = tick;
                self.hits += 1;
                Some(slot.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Peek without recency update or hit/miss accounting.
    pub fn contains(&self, id: RegionId) -> bool {
        self.entries.contains_key(&id)
    }

    /// Insert a hot (decoded, pinned) region.
    pub fn put(&mut self, id: RegionId, payload: Arc<TypedVec>) {
        self.put_slot(id, CacheSlot::Hot(payload));
    }

    /// Insert a cold slot for a spilled region: same capacity charge and
    /// LRU behavior as a hot entry of `bytes`, no pinned payload.
    pub fn put_cold(&mut self, id: RegionId, bytes: u64, elems: u64) {
        self.put_slot(id, CacheSlot::Cold { bytes, elems });
    }

    /// Insert a slot, evicting least-recently-used entries as needed.
    /// Slots larger than the whole budget are not cached.
    pub fn put_slot(&mut self, id: RegionId, slot: CacheSlot) {
        let size = slot.size_bytes();
        if size > self.capacity_bytes {
            return;
        }
        if let Some((old, last)) = self.entries.remove(&id) {
            self.recency.remove(&last);
            self.used_bytes -= old.size_bytes();
        }
        while self.used_bytes + size > self.capacity_bytes {
            let Some((_, victim)) = self.recency.pop_first() else {
                break;
            };
            let (evicted, _) = self.entries.remove(&victim).unwrap();
            self.used_bytes -= evicted.size_bytes();
        }
        self.tick += 1;
        self.entries.insert(id, (slot, self.tick));
        self.recency.insert(self.tick, id);
        self.used_bytes += size;
    }

    /// Drop everything (used between experiments).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.recency.clear();
        self.used_bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdc_types::ObjectId;

    fn rid(i: u32) -> RegionId {
        RegionId::new(ObjectId(1), i)
    }

    fn payload(elems: usize) -> Arc<TypedVec> {
        Arc::new(TypedVec::Float(vec![0.0; elems]))
    }

    #[test]
    fn hit_and_miss_accounting() {
        let mut c = RegionCache::new(1000);
        assert!(c.get(rid(0)).is_none());
        c.put(rid(0), payload(10)); // 40 bytes
        assert!(c.get(rid(0)).is_some());
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
        assert_eq!(c.used_bytes(), 40);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = RegionCache::new(120); // three 40-byte payloads
        c.put(rid(0), payload(10));
        c.put(rid(1), payload(10));
        c.put(rid(2), payload(10));
        // touch 0 so 1 becomes the LRU
        assert!(c.get(rid(0)).is_some());
        c.put(rid(3), payload(10)); // evicts 1
        assert!(c.contains(rid(0)));
        assert!(!c.contains(rid(1)));
        assert!(c.contains(rid(2)));
        assert!(c.contains(rid(3)));
        assert!(c.used_bytes() <= 120);
    }

    #[test]
    fn oversized_payload_not_cached() {
        let mut c = RegionCache::new(100);
        c.put(rid(0), payload(1000)); // 4000 bytes > 100
        assert!(c.is_empty());
        assert_eq!(c.used_bytes(), 0);
    }

    #[test]
    fn reinsert_replaces_without_leak() {
        let mut c = RegionCache::new(1000);
        c.put(rid(0), payload(10));
        c.put(rid(0), payload(20)); // 80 bytes now
        assert_eq!(c.used_bytes(), 80);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn eviction_frees_enough_for_large_entries() {
        let mut c = RegionCache::new(200);
        c.put(rid(0), payload(10)); // 40
        c.put(rid(1), payload(10)); // 40
        c.put(rid(2), payload(40)); // 160: must evict both
        assert!(c.contains(rid(2)));
        assert!(c.used_bytes() <= 200);
    }

    #[test]
    fn interleaved_ops_match_naive_lru_model() {
        // Model: a Vec ordered least- to most-recently used. The BTreeMap
        // recency index must evict exactly what the naive model evicts.
        let mut c = RegionCache::new(400); // ten 40-byte payloads
        let mut model: Vec<u32> = Vec::new();
        let mut state = 0x9e3779b97f4a7c15u64;
        for _ in 0..2000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let r = (state >> 33) as u32 % 16;
            if state & 1 == 0 && model.contains(&r) {
                assert!(c.get(rid(r)).is_some(), "model says {r} is cached");
                model.retain(|&x| x != r);
                model.push(r);
            } else {
                c.put(rid(r), payload(10));
                model.retain(|&x| x != r);
                model.push(r);
                if model.len() > 10 {
                    model.remove(0);
                }
            }
            assert_eq!(c.len(), model.len());
            for &x in &model {
                assert!(c.contains(rid(x)));
            }
        }
    }

    #[test]
    fn cold_slots_charge_like_hot_and_interchange_in_lru() {
        // A cold slot must be indistinguishable from a hot one for every
        // capacity/eviction decision: same byte charge, same LRU order.
        let mut hot = RegionCache::new(120);
        let mut cold = RegionCache::new(120);
        for i in 0..3 {
            hot.put(rid(i), payload(10)); // 40 bytes each
            cold.put_cold(rid(i), 40, 10);
        }
        assert_eq!(hot.used_bytes(), cold.used_bytes());
        assert!(matches!(cold.get(rid(0)), Some(CacheSlot::Cold { bytes: 40, elems: 10 })));
        assert!(hot.get(rid(0)).is_some());
        hot.put(rid(3), payload(10)); // evicts 1 in both
        cold.put_cold(rid(3), 40, 10);
        for i in 0..4 {
            assert_eq!(hot.contains(rid(i)), cold.contains(rid(i)), "slot {i}");
        }
        assert!(!cold.contains(rid(1)));
        // Slot accessors.
        assert_eq!(CacheSlot::Hot(payload(10)).size_bytes(), 40);
        assert_eq!(CacheSlot::Hot(payload(10)).elems(), 10);
        assert_eq!(CacheSlot::Cold { bytes: 7, elems: 3 }.size_bytes(), 7);
        assert_eq!(CacheSlot::Cold { bytes: 7, elems: 3 }.elems(), 3);
    }

    #[test]
    fn clear_resets_bytes() {
        let mut c = RegionCache::new(1000);
        c.put(rid(0), payload(10));
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.used_bytes(), 0);
    }
}
