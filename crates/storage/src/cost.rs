//! The deterministic cost model: a Lustre-like parallel file system, a
//! DRAM tier, a CPU evaluation model and a network model.
//!
//! Calibration targets (paper §VI): a full scan is bandwidth-bound and
//! shared across concurrent readers; PDC's aggregated, well-distributed
//! reads reach about twice the effective bandwidth of the flat HDF5
//! layout; per-request latency penalizes small regions; reading an index
//! file (≈15 % of data bytes) beats reading the data; DRAM cache hits are
//! orders of magnitude cheaper than PFS reads.

use crate::sim::SimDuration;
use serde::{Deserialize, Serialize};

/// How a read is issued — determines request count and placement
/// efficiency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReadPattern {
    /// PDC's aggregated region read: one large, well-distributed request
    /// per region ("uses aggregation methods to merge small reads into
    /// bigger ones to reduce the data access contention").
    Aggregated,
    /// A flat-file read path (the HDF5-F baseline): chunk-sized requests
    /// with default striping, suffering placement contention.
    FlatFile,
}

/// Lustre-like parallel file system model.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PfsModel {
    /// Fixed cost per read/write request (metadata + RPC + seek) on the
    /// flat-file (chunked) path.
    pub request_latency: SimDuration,
    /// Fixed cost per aggregated region-read request. Identical to
    /// `request_latency` at full scale; the scaled model inflates it to
    /// compensate for the coarser region grain of a scaled-down dataset
    /// (fewer, proportionally larger, region requests).
    pub region_request_latency: SimDuration,
    /// Peak aggregate bandwidth of the file system, bytes/second.
    pub aggregate_bandwidth: f64,
    /// Per-server link bandwidth to the PFS, bytes/second.
    pub link_bandwidth: f64,
    /// Request size the flat-file baseline uses internally.
    pub flat_chunk_bytes: u64,
    /// Placement efficiency of the flat-file layout relative to PDC's
    /// distributed placement (0 < x ≤ 1); models the paper's observed
    /// ~2× read advantage of PDC-F over HDF5-F.
    pub flat_placement_efficiency: f64,
}

impl Default for PfsModel {
    fn default() -> Self {
        Self {
            request_latency: SimDuration::from_micros(800),
            region_request_latency: SimDuration::from_micros(800),
            aggregate_bandwidth: 48e9,
            link_bandwidth: 2.4e9,
            flat_chunk_bytes: 4 << 20,
            flat_placement_efficiency: 0.5,
        }
    }
}

impl PfsModel {
    /// Simulated time for one server to read `bytes` in `requests`
    /// requests while `concurrency` servers are reading concurrently.
    pub fn read_cost(&self, bytes: u64, requests: u64, concurrency: u32, pattern: ReadPattern) -> SimDuration {
        if bytes == 0 && requests == 0 {
            return SimDuration::ZERO;
        }
        let placement = match pattern {
            ReadPattern::Aggregated => 1.0,
            ReadPattern::FlatFile => self.flat_placement_efficiency,
        };
        let share = self.aggregate_bandwidth * placement / concurrency.max(1) as f64;
        let bw = share.min(self.link_bandwidth).max(1.0);
        let transfer = SimDuration::from_secs_f64(bytes as f64 / bw);
        let latency = match pattern {
            ReadPattern::Aggregated => self.region_request_latency,
            ReadPattern::FlatFile => self.request_latency,
        };
        latency * requests + transfer
    }

    /// Number of requests the flat-file baseline issues for `bytes`.
    pub fn flat_requests(&self, bytes: u64) -> u64 {
        bytes.div_ceil(self.flat_chunk_bytes).max(1)
    }

    /// Simulated time to write `bytes` (imports, index files, replicas).
    pub fn write_cost(&self, bytes: u64, requests: u64, concurrency: u32) -> SimDuration {
        // Writes contend like aggregated reads; Lustre writes are
        // typically somewhat slower — apply a flat 1.5× factor.
        self.read_cost(bytes, requests, concurrency, ReadPattern::Aggregated) * 1.5
    }
}

/// DRAM (cache-hit) model.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DramModel {
    /// Memory bandwidth, bytes/second.
    pub bandwidth: f64,
}

impl Default for DramModel {
    fn default() -> Self {
        Self { bandwidth: 12e9 }
    }
}

impl DramModel {
    /// Simulated time to touch `bytes` from memory.
    pub fn read_cost(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / self.bandwidth)
    }
}

/// Burst-buffer (NVRAM) tier model — the middle layer of the paper's
/// "deep memory hierarchy": node-local flash, much faster than the shared
/// PFS and not subject to cross-server contention, but slower than DRAM.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct BurstBufferModel {
    /// Per-request latency.
    pub request_latency: SimDuration,
    /// Per-server bandwidth, bytes/second (no global contention).
    pub bandwidth: f64,
}

impl Default for BurstBufferModel {
    fn default() -> Self {
        Self { request_latency: SimDuration::from_micros(80), bandwidth: 5e9 }
    }
}

impl BurstBufferModel {
    /// Simulated time to read `bytes` in `requests` requests.
    pub fn read_cost(&self, bytes: u64, requests: u64) -> SimDuration {
        self.request_latency * requests + SimDuration::from_secs_f64(bytes as f64 / self.bandwidth)
    }
}

/// CPU evaluation model (single PDC server core).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CpuModel {
    /// Nanoseconds per element compared in a scan.
    pub scan_ns_per_element: f64,
    /// Nanoseconds per compressed bitmap word processed.
    pub bitmap_ns_per_word: f64,
    /// Nanoseconds per binary-search probe.
    pub probe_ns: f64,
    /// Nanoseconds per histogram bin inspected.
    pub histogram_ns_per_bin: f64,
    /// Nanoseconds per element gathered for `get_data`.
    pub gather_ns_per_element: f64,
}

impl Default for CpuModel {
    fn default() -> Self {
        Self {
            scan_ns_per_element: 1.0,
            bitmap_ns_per_word: 1.5,
            probe_ns: 40.0,
            histogram_ns_per_bin: 4.0,
            gather_ns_per_element: 6.0,
        }
    }
}

impl CpuModel {
    /// Cost of the recorded CPU work.
    pub fn work_cost(&self, w: &crate::counters::WorkCounters) -> SimDuration {
        SimDuration::from_secs_f64(
            (w.elements_scanned as f64 * self.scan_ns_per_element
                + w.bitmap_words as f64 * self.bitmap_ns_per_word
                + w.sorted_probes as f64 * self.probe_ns
                + w.histogram_bins as f64 * self.histogram_ns_per_bin
                + w.elements_gathered as f64 * self.gather_ns_per_element)
                / 1e9,
        )
    }
}

/// Interconnect model for client↔server messages.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct NetworkModel {
    /// One-way message latency.
    pub latency: SimDuration,
    /// Per-link bandwidth, bytes/second.
    pub bandwidth: f64,
}

impl Default for NetworkModel {
    fn default() -> Self {
        Self { latency: SimDuration::from_micros(30), bandwidth: 10e9 }
    }
}

impl NetworkModel {
    /// Simulated time to move `bytes` over one link.
    pub fn transfer_cost(&self, bytes: u64) -> SimDuration {
        self.latency + SimDuration::from_secs_f64(bytes as f64 / self.bandwidth)
    }

    /// Cost for the client to broadcast a query of `bytes` to `n` servers
    /// (tree broadcast: log2(n) hops).
    pub fn broadcast_cost(&self, bytes: u64, n: u32) -> SimDuration {
        let hops = (n.max(1) as f64).log2().ceil().max(1.0) as u64;
        self.transfer_cost(bytes) * hops
    }
}

/// The combined cost model used by every experiment.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CostModel {
    /// Parallel file system.
    pub pfs: PfsModel,
    /// Burst-buffer / NVRAM tier.
    pub bb: BurstBufferModel,
    /// In-memory tier.
    pub dram: DramModel,
    /// Server CPU.
    pub cpu: CpuModel,
    /// Client↔server interconnect.
    pub net: NetworkModel,
    /// Cost to fetch one region's metadata during the per-query metadata
    /// distribution; paid once per (server, object) — "the metadata is
    /// cached in all servers after the metadata distribution".
    pub metadata_region_cost: SimDuration,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            pfs: PfsModel::default(),
            bb: BurstBufferModel::default(),
            dram: DramModel::default(),
            cpu: CpuModel::default(),
            net: NetworkModel::default(),
            metadata_region_cost: SimDuration::from_micros(200),
        }
    }
}

impl CostModel {
    /// The default calibration, loosely shaped after Cori's Haswell +
    /// Lustre deployment (shared scratch, Aries interconnect).
    pub fn cori_like() -> Self {
        Self::default()
    }

    /// Rescale the model for a dataset `io_factor`× smaller than the
    /// paper's (e.g. 125 billion particles / 4 million ours ≈ 31250):
    /// storage and network bandwidths shrink by `io_factor` and
    /// per-element CPU costs grow by `cpu_factor`, while wall-clock-fixed
    /// latencies are inflated to compensate for the compressed *counts*
    /// of the operations that carry them:
    ///
    /// * region requests and per-region metadata shrink in count by
    ///   `io_factor / region_scale` (regions are `region_scale`× smaller
    ///   than the paper's, so there are that many × fewer of them than a
    ///   pure data scale-down would produce);
    /// * flat-file chunk requests shrink in count by the ratio between
    ///   the 512-byte floor and the exactly scaled chunk size.
    ///
    /// `cpu_factor` is `io_factor` corrected for the server-count ratio,
    /// so the per-server scan-time : read-time ratio — which determines
    /// every crossover in Figs. 3–6 — matches the paper's. DRAM is
    /// deliberately left unscaled: once data is resident, a re-scan costs
    /// CPU, not memory bandwidth, at every scale.
    pub fn scaled(io_factor: f64, cpu_factor: f64, region_scale: f64) -> Self {
        let io_factor = io_factor.max(1.0);
        let cpu_factor = cpu_factor.max(1.0);
        let region_scale = region_scale.max(1.0);
        let mut m = Self::cori_like();
        m.pfs.aggregate_bandwidth /= io_factor;
        m.pfs.link_bandwidth /= io_factor;
        let exact_chunk = m.pfs.flat_chunk_bytes as f64 / io_factor;
        m.pfs.flat_chunk_bytes = exact_chunk.max(512.0) as u64;
        if exact_chunk < 512.0 {
            m.pfs.request_latency = m.pfs.request_latency * (512.0 / exact_chunk);
        }
        m.pfs.region_request_latency =
            m.pfs.region_request_latency * (io_factor / region_scale).max(1.0);
        m.bb.bandwidth /= io_factor;
        m.bb.request_latency = m.bb.request_latency * (io_factor / region_scale).max(1.0);
        m.metadata_region_cost = m.metadata_region_cost * (io_factor / region_scale).max(1.0);
        m.net.bandwidth /= io_factor;
        // Only per-element work scales with the dataset (fewer elements
        // per region ↔ proportionally more ns per element keeps the
        // per-region cost paper-sized). Per-bin and per-probe costs are
        // fixed-size at every scale — histograms have the same bin count
        // on 4 MB regions as on 16 KB ones.
        m.cpu.scan_ns_per_element *= cpu_factor;
        m.cpu.bitmap_ns_per_word *= cpu_factor;
        m.cpu.gather_ns_per_element *= cpu_factor;
        m
    }

    /// Cold-path estimate for scanning one region of `bytes` bytes /
    /// `elems` elements: one aggregated PFS read plus the per-element
    /// scan work. Used by the adaptive planner to rank operators; the
    /// executor charges the real (tier- and cache-aware) costs.
    pub fn scan_op_estimate(&self, bytes: u64, elems: u64, concurrency: u32) -> SimDuration {
        self.pfs.read_cost(bytes, 1, concurrency, ReadPattern::Aggregated)
            + self.cpu.work_cost(&crate::counters::WorkCounters {
                elements_scanned: elems,
                ..Default::default()
            })
    }

    /// Cold-path estimate for answering one region from its bitmap
    /// index: read the serialized index (`index_bytes`), process its
    /// words, and — when boundary bins leave candidates — read the
    /// region's data back (`candidate_bytes`) to confirm
    /// `candidate_elems` of them.
    pub fn probe_op_estimate(
        &self,
        index_bytes: u64,
        candidate_bytes: u64,
        candidate_elems: u64,
        concurrency: u32,
    ) -> SimDuration {
        let mut t = self.pfs.read_cost(index_bytes, 1, concurrency, ReadPattern::Aggregated)
            + self.cpu.work_cost(&crate::counters::WorkCounters {
                bitmap_words: index_bytes / 4,
                ..Default::default()
            });
        if candidate_bytes > 0 {
            t += self.pfs.read_cost(candidate_bytes, 1, concurrency, ReadPattern::Aggregated)
                + self.cpu.work_cost(&crate::counters::WorkCounters {
                    elements_scanned: candidate_elems,
                    ..Default::default()
                });
        }
        t
    }

    /// Cold-path estimate for answering a range from the value-sorted
    /// replica: read the touched band (`band_bytes` over `band_regions`
    /// aggregated requests), binary-search probes, and scan the
    /// `band_elems` elements inside the span.
    pub fn sorted_op_estimate(
        &self,
        band_bytes: u64,
        band_regions: u64,
        band_elems: u64,
        concurrency: u32,
    ) -> SimDuration {
        self.pfs.read_cost(band_bytes, band_regions, concurrency, ReadPattern::Aggregated)
            + self.cpu.work_cost(&crate::counters::WorkCounters {
                sorted_probes: 2 * 30,
                elements_scanned: band_elems,
                ..Default::default()
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::WorkCounters;

    #[test]
    fn aggregated_read_beats_flat_read() {
        let pfs = PfsModel::default();
        let bytes = 512u64 << 20;
        let concurrency = 64;
        let agg = pfs.read_cost(bytes, 16, concurrency, ReadPattern::Aggregated);
        let flat = pfs.read_cost(bytes, pfs.flat_requests(bytes), concurrency, ReadPattern::FlatFile);
        assert!(flat > agg * 1.5, "flat {flat} should be ~2x aggregated {agg}");
        assert!(flat < agg * 4.0, "flat {flat} should not dwarf aggregated {agg}");
    }

    #[test]
    fn more_concurrency_lowers_share() {
        let pfs = PfsModel::default();
        let t64 = pfs.read_cost(1 << 30, 8, 64, ReadPattern::Aggregated);
        let t512 = pfs.read_cost(1 << 30, 8, 512, ReadPattern::Aggregated);
        assert!(t512 > t64);
    }

    #[test]
    fn link_bandwidth_caps_low_concurrency() {
        let pfs = PfsModel::default();
        // 1 reader: aggregate/1 is huge, must be capped by the link.
        let t = pfs.read_cost(2_400_000_000, 1, 1, ReadPattern::Aggregated);
        assert!((t.as_secs_f64() - 1.0).abs() < 0.05, "expected ~1s, got {t}");
    }

    #[test]
    fn request_latency_penalizes_many_small_reads() {
        let pfs = PfsModel::default();
        let few = pfs.read_cost(64 << 20, 2, 64, ReadPattern::Aggregated);
        let many = pfs.read_cost(64 << 20, 1024, 64, ReadPattern::Aggregated);
        assert!(many > few);
        assert!((many - few).as_secs_f64() > 0.5);
    }

    #[test]
    fn zero_read_is_free() {
        let pfs = PfsModel::default();
        assert_eq!(pfs.read_cost(0, 0, 64, ReadPattern::Aggregated), SimDuration::ZERO);
    }

    #[test]
    fn dram_hit_is_much_cheaper_than_pfs() {
        let m = CostModel::cori_like();
        let bytes = 32u64 << 20;
        let hit = m.dram.read_cost(bytes);
        let miss = m.pfs.read_cost(bytes, 1, 64, ReadPattern::Aggregated);
        assert!(miss > hit * 5, "miss {miss} vs hit {hit}");
    }

    #[test]
    fn cpu_work_cost_scales_linearly() {
        let cpu = CpuModel::default();
        let w1 = WorkCounters { elements_scanned: 1_000_000, ..Default::default() };
        let w2 = WorkCounters { elements_scanned: 2_000_000, ..Default::default() };
        let c1 = cpu.work_cost(&w1);
        let c2 = cpu.work_cost(&w2);
        assert!((c2.as_secs_f64() - 2.0 * c1.as_secs_f64()).abs() < 1e-9);
        assert!((c1.as_secs_f64() - 1e-3).abs() < 1e-6);
    }

    #[test]
    fn index_words_cheaper_than_scanning_data() {
        // Reading + processing an index (15% of bytes, ~1 word / 2 elems
        // after compression) must beat scanning all elements.
        let cpu = CpuModel::default();
        let n = 8_000_000u64;
        let scan = cpu.work_cost(&WorkCounters { elements_scanned: n, ..Default::default() });
        let index = cpu.work_cost(&WorkCounters { bitmap_words: n / 4, ..Default::default() });
        assert!(scan > index * 2);
    }

    #[test]
    fn broadcast_grows_logarithmically() {
        let net = NetworkModel::default();
        let b64 = net.broadcast_cost(1024, 64);
        let b512 = net.broadcast_cost(1024, 512);
        assert!(b512 > b64);
        assert!(b512 < b64 * 2, "log growth expected: {b64} -> {b512}");
    }

    #[test]
    fn write_cost_exceeds_read_cost() {
        let pfs = PfsModel::default();
        let r = pfs.read_cost(1 << 28, 8, 64, ReadPattern::Aggregated);
        let w = pfs.write_cost(1 << 28, 8, 64);
        assert!(w > r);
    }
}
