//! Counters collected during real query execution.
//!
//! Every strategy's simulated elapsed time is a pure function of these
//! counters plus the [`crate::cost::CostModel`]; keeping them explicit
//! makes every experiment auditable (EXPERIMENTS.md prints them).

use crate::sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Storage I/O counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IoCounters {
    /// Bytes read from the parallel file system.
    pub pfs_bytes_read: u64,
    /// Distinct PFS read requests issued.
    pub pfs_read_requests: u64,
    /// Bytes served from the in-memory region cache.
    pub cache_bytes_read: u64,
    /// Cache hits.
    pub cache_hits: u64,
    /// Cache misses.
    pub cache_misses: u64,
    /// Bytes written (imports, index builds, sorted replicas).
    pub bytes_written: u64,
    /// Distinct write requests.
    pub write_requests: u64,
}

impl IoCounters {
    /// Merge another counter set into this one.
    pub fn merge(&mut self, other: &IoCounters) {
        self.pfs_bytes_read += other.pfs_bytes_read;
        self.pfs_read_requests += other.pfs_read_requests;
        self.cache_bytes_read += other.cache_bytes_read;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.bytes_written += other.bytes_written;
        self.write_requests += other.write_requests;
    }
}

/// CPU work counters (evaluation effort).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkCounters {
    /// Elements compared during scans and candidate checks.
    pub elements_scanned: u64,
    /// Compressed bitmap words processed.
    pub bitmap_words: u64,
    /// Binary-search probes on sorted replicas.
    pub sorted_probes: u64,
    /// Histogram bins inspected (pruning + estimation).
    pub histogram_bins: u64,
    /// Elements gathered for `get_data`.
    pub elements_gathered: u64,
}

impl WorkCounters {
    /// Merge another counter set into this one.
    pub fn merge(&mut self, other: &WorkCounters) {
        self.elements_scanned += other.elements_scanned;
        self.bitmap_words += other.bitmap_words;
        self.sorted_probes += other.sorted_probes;
        self.histogram_bins += other.histogram_bins;
        self.elements_gathered += other.elements_gathered;
    }
}

/// Network counters (client↔server messages).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetCounters {
    /// Messages sent.
    pub messages: u64,
    /// Payload bytes sent.
    pub bytes: u64,
}

impl NetCounters {
    /// Merge another counter set into this one.
    pub fn merge(&mut self, other: &NetCounters) {
        self.messages += other.messages;
        self.bytes += other.bytes;
    }
}

/// Data-plane integrity event counters: checksum failures observed,
/// repairs from the durable copy, auxiliary-structure rebuilds, and
/// regions answered by the full-scan fallback after their index failed
/// validation. Deterministic for a fixed seed, like every other counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IntegrityCounters {
    /// Payload checksum mismatches detected at read time.
    pub checksum_failures: u64,
    /// Regions restored from their pristine durable copy.
    pub repaired_regions: u64,
    /// Auxiliary structures (bitmap index, histogram, sorted replica)
    /// rebuilt from data after failing validation.
    pub aux_rebuilds: u64,
    /// Regions answered via the full-scan fallback path because their
    /// bitmap index could not be trusted.
    pub fallback_regions: u64,
}

impl IntegrityCounters {
    /// Merge another counter set into this one.
    pub fn merge(&mut self, other: &IntegrityCounters) {
        self.checksum_failures += other.checksum_failures;
        self.repaired_regions += other.repaired_regions;
        self.aux_rebuilds += other.aux_rebuilds;
        self.fallback_regions += other.fallback_regions;
    }

    /// Whether any integrity event fired.
    pub fn any(&self) -> bool {
        self.checksum_failures != 0
            || self.repaired_regions != 0
            || self.aux_rebuilds != 0
            || self.fallback_regions != 0
    }
}

/// A decomposed simulated cost: where did the time go?
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostBreakdown {
    /// Time spent in storage I/O.
    pub io: SimDuration,
    /// Time spent in CPU evaluation.
    pub cpu: SimDuration,
    /// Time spent in network transfer.
    pub net: SimDuration,
    /// Time spent detecting and recovering from server failures (timeout
    /// waits plus retry rounds); zero on a fault-free run.
    pub recovery: SimDuration,
    /// Time spent failing slots over to replica servers under k-way
    /// placement (detection wait plus the backup's re-evaluation); zero
    /// without replication or on a fault-free run. Replaces `recovery`'s
    /// reassign-and-rescan cost when a placement is active.
    pub failover: SimDuration,
    /// Time spent on data-plane integrity: verifying checksums that
    /// failed, re-reading durable copies, and rebuilding auxiliary
    /// structures; zero on a corruption-free run.
    pub integrity: SimDuration,
}

impl CostBreakdown {
    /// Total of all components.
    pub fn total(&self) -> SimDuration {
        self.io + self.cpu + self.net + self.recovery + self.failover + self.integrity
    }

    /// Merge another breakdown into this one.
    pub fn merge(&mut self, other: &CostBreakdown) {
        self.io += other.io;
        self.cpu += other.cpu;
        self.net += other.net;
        self.recovery += other.recovery;
        self.failover += other.failover;
        self.integrity += other.integrity;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_merge_adds_fields() {
        let mut a = IoCounters { pfs_bytes_read: 100, pfs_read_requests: 2, ..Default::default() };
        let b = IoCounters {
            pfs_bytes_read: 50,
            pfs_read_requests: 1,
            cache_hits: 3,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.pfs_bytes_read, 150);
        assert_eq!(a.pfs_read_requests, 3);
        assert_eq!(a.cache_hits, 3);
    }

    #[test]
    fn work_and_net_merge() {
        let mut w = WorkCounters { elements_scanned: 10, ..Default::default() };
        w.merge(&WorkCounters { elements_scanned: 5, bitmap_words: 7, ..Default::default() });
        assert_eq!(w.elements_scanned, 15);
        assert_eq!(w.bitmap_words, 7);

        let mut n = NetCounters { messages: 1, bytes: 100 };
        n.merge(&NetCounters { messages: 2, bytes: 50 });
        assert_eq!(n.messages, 3);
        assert_eq!(n.bytes, 150);
    }

    #[test]
    fn integrity_merge_and_any() {
        let mut a = IntegrityCounters { checksum_failures: 1, ..Default::default() };
        assert!(a.any());
        a.merge(&IntegrityCounters { repaired_regions: 2, fallback_regions: 3, ..Default::default() });
        assert_eq!(a.checksum_failures, 1);
        assert_eq!(a.repaired_regions, 2);
        assert_eq!(a.fallback_regions, 3);
        assert!(!IntegrityCounters::default().any());
    }

    #[test]
    fn breakdown_total() {
        let b = CostBreakdown {
            io: SimDuration::from_millis(5),
            cpu: SimDuration::from_millis(2),
            net: SimDuration::from_millis(1),
            recovery: SimDuration::from_millis(4),
            failover: SimDuration::from_millis(3),
            integrity: SimDuration::from_millis(0),
        };
        assert_eq!(b.total().as_millis_f64(), 15.0);
        let mut c = CostBreakdown::default();
        c.merge(&b);
        c.merge(&b);
        assert_eq!(c.total().as_millis_f64(), 30.0);
        assert_eq!(c.recovery.as_millis_f64(), 8.0);
        assert_eq!(c.failover.as_millis_f64(), 6.0);
    }
}
