//! # pdc-storage
//!
//! The simulated HPC storage substrate.
//!
//! The paper ran on Cori's shared Lustre file system; this crate replaces
//! that hardware with a **deterministic cost model** driven by the byte
//! counts and access patterns of real query executions:
//!
//! * [`sim`] — simulated time ([`SimDuration`], [`SimClock`]): each logical
//!   PDC server accumulates modeled I/O, CPU, and network time on its own
//!   timeline; the harness reports `max` across servers, like the paper's
//!   end-to-end elapsed time.
//! * [`cost`] — the Lustre-like parallel-file-system model (per-request
//!   latency, per-OST and aggregate bandwidth, reader concurrency,
//!   placement efficiency), plus DRAM/burst-buffer tiers, a CPU model for
//!   scan/index/sort work, and a network model for client↔server traffic.
//! * [`store`] — the object store holding region payloads (typed arrays or
//!   raw index bytes) on a storage tier, with striped OST placement.
//! * [`cache`] — the per-server region cache with a byte budget (the
//!   paper's 64 GB per-server memory limit), which produces the paper's
//!   observed speedup across sequentially evaluated queries.
//! * [`counters`] — I/O, CPU, and network counters from which all times
//!   are derived.
//!
//! Everything *executes* for real (real arrays, real bitmaps, exact hit
//! counts); only *time* is modeled. That is the substitution DESIGN.md
//! documents for the missing Cori testbed: the paper's evaluation effects
//! (full-scan cost, region pruning benefit, index-read fraction, sorted
//! contiguity, caching, server scaling) are all functions of bytes moved,
//! requests issued, elements scanned, and concurrency — which we measure
//! exactly.

pub mod cache;
pub mod cost;
pub mod counters;
pub mod sim;
pub mod store;

pub use cache::{CacheSlot, RegionCache};
pub use cost::{BurstBufferModel, CostModel, CpuModel, NetworkModel, PfsModel, ReadPattern};
pub use counters::{CostBreakdown, IntegrityCounters, IoCounters, NetCounters, WorkCounters};
pub use sim::{SimClock, SimDuration};
pub use store::{
    fnv1a64, payload_checksum, ColdRegion, ObjectStore, SpillStats, StorageTier, StoredPayload,
};

pub use bytes;
pub use pdc_blockstore::{BlockCacheStats, Fnv1a};
