//! Simulated time.
//!
//! Times in the reproduction harness are **modeled, not measured**: each
//! logical PDC server owns a [`SimClock`] that advances by the cost of its
//! I/O, CPU and network operations. The harness combines server timelines
//! the way a real synchronized run would (max across servers, plus the
//! client's aggregation time), making every experiment deterministic and
//! independent of the host machine.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A span of simulated time, in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default, Hash, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimDuration {
    /// Zero time.
    pub const ZERO: SimDuration = SimDuration(0);

    /// The largest representable duration — used as an "unbounded"
    /// sentinel (e.g. a disabled client timeout). Do not do arithmetic
    /// on it.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// From nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// From microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// From milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// From (fractional) seconds; saturates at zero for negatives.
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s.max(0.0) * 1e9) as u64)
    }

    /// Nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration((self.0 as f64 * rhs.max(0.0)) as u64)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs.max(1))
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.as_secs_f64();
        if s >= 1.0 {
            write!(f, "{s:.3}s")
        } else if s >= 1e-3 {
            write!(f, "{:.3}ms", s * 1e3)
        } else {
            write!(f, "{:.1}us", s * 1e6)
        }
    }
}

/// A per-server simulated timeline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimClock {
    now: SimDuration,
}

impl SimClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulated time since the clock's epoch.
    pub fn now(&self) -> SimDuration {
        self.now
    }

    /// Advance by `d`.
    pub fn advance(&mut self, d: SimDuration) {
        self.now += d;
    }

    /// Synchronize forward to `t` (no-op if already past it) — used when a
    /// server waits for a broadcast or barrier.
    pub fn sync_to(&mut self, t: SimDuration) {
        if t > self.now {
            self.now = t;
        }
    }

    /// Reset to zero.
    pub fn reset(&mut self) {
        self.now = SimDuration::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_conversion() {
        assert_eq!(SimDuration::from_micros(5).as_nanos(), 5_000);
        assert_eq!(SimDuration::from_millis(2).as_nanos(), 2_000_000);
        assert!((SimDuration::from_secs_f64(1.5).as_secs_f64() - 1.5).abs() < 1e-9);
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = SimDuration::from_millis(10);
        let b = SimDuration::from_millis(3);
        assert_eq!((a + b).as_millis_f64(), 13.0);
        assert_eq!((a - b).as_millis_f64(), 7.0);
        assert_eq!((b - a), SimDuration::ZERO); // saturating
        assert_eq!((a * 3).as_millis_f64(), 30.0);
        assert_eq!((a * 0.5).as_millis_f64(), 5.0);
        assert_eq!((a / 2).as_millis_f64(), 5.0);
        assert_eq!((a / 0).as_millis_f64(), 10.0); // clamped divisor
        let total: SimDuration = vec![a, b, b].into_iter().sum();
        assert_eq!(total.as_millis_f64(), 16.0);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_secs_f64(2.5).to_string(), "2.500s");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_micros(7).to_string(), "7.0us");
    }

    #[test]
    fn clock_advances_and_syncs() {
        let mut c = SimClock::new();
        c.advance(SimDuration::from_millis(5));
        assert_eq!(c.now().as_millis_f64(), 5.0);
        c.sync_to(SimDuration::from_millis(3)); // already past: no-op
        assert_eq!(c.now().as_millis_f64(), 5.0);
        c.sync_to(SimDuration::from_millis(9));
        assert_eq!(c.now().as_millis_f64(), 9.0);
        c.reset();
        assert_eq!(c.now(), SimDuration::ZERO);
    }
}
