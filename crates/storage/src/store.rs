//! The backing object store: region payloads on storage tiers.
//!
//! PDC regions "can reside on any layer of the memory/storage hierarchy".
//! The store keeps each region's payload (a typed array for data regions,
//! raw bytes for index files) together with its tier and striped placement
//! across simulated OSTs. The store itself is time-free — callers charge
//! their own [`crate::sim::SimClock`] via the cost model, because the
//! *pattern* of access (aggregated vs. flat, cached vs. not) is a property
//! of the reader, not of the store.

use bytes::Bytes;
use parking_lot::RwLock;
use pdc_types::{PdcError, PdcResult, RegionId, TypedVec};
use std::collections::HashMap;
use std::sync::Arc;

/// Storage tier a region resides on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StorageTier {
    /// Server DRAM (pre-loaded or cached).
    Dram,
    /// Burst buffer / NVRAM.
    BurstBuffer,
    /// The Lustre-like parallel file system.
    Pfs,
}

/// A region's payload.
#[derive(Debug, Clone)]
pub enum StoredPayload {
    /// Array data (shared, immutable once written).
    Typed(Arc<TypedVec>),
    /// Opaque bytes (serialized index files, metadata snapshots).
    Raw(Bytes),
}

impl StoredPayload {
    /// Payload size in bytes.
    pub fn size_bytes(&self) -> u64 {
        match self {
            StoredPayload::Typed(v) => v.size_bytes(),
            StoredPayload::Raw(b) => b.len() as u64,
        }
    }
}

#[derive(Debug, Clone)]
struct StoredRegion {
    payload: StoredPayload,
    tier: StorageTier,
    ost: u32,
}

/// The shared object store.
///
/// Thread-safe: servers read concurrently; imports write up front.
#[derive(Debug, Default)]
pub struct ObjectStore {
    regions: RwLock<HashMap<RegionId, StoredRegion>>,
    num_osts: u32,
}

impl ObjectStore {
    /// A store striped over `num_osts` simulated OSTs.
    pub fn new(num_osts: u32) -> Self {
        Self { regions: RwLock::new(HashMap::new()), num_osts: num_osts.max(1) }
    }

    /// Number of simulated OSTs.
    pub fn num_osts(&self) -> u32 {
        self.num_osts
    }

    /// Insert (or replace) a region payload on a tier. Placement is
    /// round-robin by region index — PDC "automatically distributes the
    /// data across the parallel file system's storage devices".
    pub fn put(&self, id: RegionId, payload: StoredPayload, tier: StorageTier) {
        let ost = (id.index + id.object.raw() as u32) % self.num_osts;
        self.regions.write().insert(id, StoredRegion { payload, tier, ost });
    }

    /// Fetch a region's payload and tier.
    pub fn get(&self, id: RegionId) -> PdcResult<(StoredPayload, StorageTier)> {
        self.regions
            .read()
            .get(&id)
            .map(|r| (r.payload.clone(), r.tier))
            .ok_or(PdcError::NoSuchRegion(id))
    }

    /// Fetch a typed-array region (most callers).
    pub fn get_typed(&self, id: RegionId) -> PdcResult<Arc<TypedVec>> {
        match self.get(id)? {
            (StoredPayload::Typed(v), _) => Ok(v),
            (StoredPayload::Raw(_), _) => {
                Err(PdcError::Storage(format!("region {id} holds raw bytes, not typed data")))
            }
        }
    }

    /// Fetch a raw-bytes region (index files).
    pub fn get_raw(&self, id: RegionId) -> PdcResult<Bytes> {
        match self.get(id)? {
            (StoredPayload::Raw(b), _) => Ok(b),
            (StoredPayload::Typed(_), _) => {
                Err(PdcError::Storage(format!("region {id} holds typed data, not raw bytes")))
            }
        }
    }

    /// The simulated OST a region is placed on.
    pub fn ost_of(&self, id: RegionId) -> PdcResult<u32> {
        self.regions.read().get(&id).map(|r| r.ost).ok_or(PdcError::NoSuchRegion(id))
    }

    /// Whether a region exists.
    pub fn contains(&self, id: RegionId) -> bool {
        self.regions.read().contains_key(&id)
    }

    /// Remove a region; returns whether it existed.
    pub fn remove(&self, id: RegionId) -> bool {
        self.regions.write().remove(&id).is_some()
    }

    /// Move a region to a different tier (data movement across the
    /// hierarchy). Returns the payload size moved.
    pub fn migrate(&self, id: RegionId, tier: StorageTier) -> PdcResult<u64> {
        let mut map = self.regions.write();
        let r = map.get_mut(&id).ok_or(PdcError::NoSuchRegion(id))?;
        r.tier = tier;
        Ok(r.payload.size_bytes())
    }

    /// Total stored bytes per tier.
    pub fn bytes_by_tier(&self) -> HashMap<StorageTier, u64> {
        let mut out = HashMap::new();
        for r in self.regions.read().values() {
            *out.entry(r.tier).or_insert(0) += r.payload.size_bytes();
        }
        out
    }

    /// Number of stored regions.
    pub fn num_regions(&self) -> usize {
        self.regions.read().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdc_types::ObjectId;

    fn rid(o: u64, i: u32) -> RegionId {
        RegionId::new(ObjectId(o), i)
    }

    #[test]
    fn put_get_roundtrip_typed() {
        let store = ObjectStore::new(8);
        let v: TypedVec = vec![1.0f32, 2.0, 3.0].into();
        store.put(rid(1, 0), StoredPayload::Typed(Arc::new(v.clone())), StorageTier::Pfs);
        let got = store.get_typed(rid(1, 0)).unwrap();
        assert_eq!(&*got, &v);
        let (_, tier) = store.get(rid(1, 0)).unwrap();
        assert_eq!(tier, StorageTier::Pfs);
    }

    #[test]
    fn put_get_roundtrip_raw() {
        let store = ObjectStore::new(8);
        store.put(rid(2, 5), StoredPayload::Raw(Bytes::from_static(b"abc")), StorageTier::Pfs);
        assert_eq!(store.get_raw(rid(2, 5)).unwrap(), Bytes::from_static(b"abc"));
    }

    #[test]
    fn wrong_kind_is_an_error() {
        let store = ObjectStore::new(8);
        store.put(rid(1, 0), StoredPayload::Raw(Bytes::from_static(b"x")), StorageTier::Pfs);
        assert!(store.get_typed(rid(1, 0)).is_err());
        let v: TypedVec = vec![1i32].into();
        store.put(rid(1, 1), StoredPayload::Typed(Arc::new(v)), StorageTier::Dram);
        assert!(store.get_raw(rid(1, 1)).is_err());
    }

    #[test]
    fn missing_region_is_an_error() {
        let store = ObjectStore::new(8);
        assert!(matches!(store.get(rid(9, 9)), Err(PdcError::NoSuchRegion(_))));
        assert!(!store.contains(rid(9, 9)));
    }

    #[test]
    fn placement_spreads_across_osts() {
        let store = ObjectStore::new(4);
        for i in 0..16 {
            let v: TypedVec = vec![0.0f32].into();
            store.put(rid(1, i), StoredPayload::Typed(Arc::new(v)), StorageTier::Pfs);
        }
        let mut used = std::collections::HashSet::new();
        for i in 0..16 {
            used.insert(store.ost_of(rid(1, i)).unwrap());
        }
        assert_eq!(used.len(), 4, "round-robin should hit every OST");
    }

    #[test]
    fn migrate_changes_tier() {
        let store = ObjectStore::new(2);
        let v: TypedVec = vec![1.0f64; 100].into();
        store.put(rid(3, 0), StoredPayload::Typed(Arc::new(v)), StorageTier::Pfs);
        let moved = store.migrate(rid(3, 0), StorageTier::Dram).unwrap();
        assert_eq!(moved, 800);
        assert_eq!(store.get(rid(3, 0)).unwrap().1, StorageTier::Dram);
    }

    #[test]
    fn bytes_by_tier_accounts() {
        let store = ObjectStore::new(2);
        let v: TypedVec = vec![0u32; 10].into(); // 40 bytes
        store.put(rid(1, 0), StoredPayload::Typed(Arc::new(v.clone())), StorageTier::Pfs);
        store.put(rid(1, 1), StoredPayload::Typed(Arc::new(v)), StorageTier::Dram);
        store.put(rid(1, 2), StoredPayload::Raw(Bytes::from(vec![0u8; 7])), StorageTier::Pfs);
        let by_tier = store.bytes_by_tier();
        assert_eq!(by_tier[&StorageTier::Pfs], 47);
        assert_eq!(by_tier[&StorageTier::Dram], 40);
        assert_eq!(store.num_regions(), 3);
    }

    #[test]
    fn remove_region() {
        let store = ObjectStore::new(2);
        let v: TypedVec = vec![0u32; 1].into();
        store.put(rid(1, 0), StoredPayload::Typed(Arc::new(v)), StorageTier::Pfs);
        assert!(store.remove(rid(1, 0)));
        assert!(!store.remove(rid(1, 0)));
    }
}
