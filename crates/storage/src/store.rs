//! The backing object store: region payloads on storage tiers.
//!
//! PDC regions "can reside on any layer of the memory/storage hierarchy".
//! The store keeps each region's payload (a typed array for data regions,
//! raw bytes for index files) together with its tier and striped placement
//! across simulated OSTs. The store itself is time-free — callers charge
//! their own [`crate::sim::SimClock`] via the cost model, because the
//! *pattern* of access (aggregated vs. flat, cached vs. not) is a property
//! of the reader, not of the store.

use bytes::Bytes;
use parking_lot::RwLock;
use pdc_types::{with_slice, PdcError, PdcResult, RegionId, TypedVec};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Storage tier a region resides on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StorageTier {
    /// Server DRAM (pre-loaded or cached).
    Dram,
    /// Burst buffer / NVRAM.
    BurstBuffer,
    /// The Lustre-like parallel file system.
    Pfs,
}

impl StorageTier {
    /// Human-readable tier name (used in corruption error context).
    pub fn name(&self) -> &'static str {
        match self {
            StorageTier::Dram => "dram",
            StorageTier::BurstBuffer => "burst-buffer",
            StorageTier::Pfs => "pfs",
        }
    }
}

/// FNV-1a 64-bit over a byte slice — the checksum primitive shared by
/// payload verification and the metadata snapshot frame.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// FNV-1a 64-bit over a payload's typed bytes (little-endian element
/// encoding for typed arrays, the bytes themselves for raw payloads).
/// Cheap, dependency-free, and plenty for detecting injected bit flips.
pub fn payload_checksum(payload: &StoredPayload) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut step = |b: u8| {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    };
    match payload {
        StoredPayload::Typed(v) => {
            with_slice!(&**v, xs => {
                for x in xs {
                    for b in x.to_le_bytes() {
                        step(b);
                    }
                }
            });
        }
        StoredPayload::Raw(bytes) => return fnv1a64(bytes),
    }
    h
}

/// SplitMix64 step used to derive deterministic corruption sites.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministically flip one bit of one element/byte of a payload.
/// Returns `None` when the payload is empty (nothing to flip).
fn flipped_payload(payload: &StoredPayload, seed: u64) -> Option<StoredPayload> {
    let r0 = mix64(seed);
    let r1 = mix64(r0);
    match payload {
        StoredPayload::Typed(v) => {
            let len = v.len();
            if len == 0 {
                return None;
            }
            let idx = (r0 % len as u64) as usize;
            let mut copy = (**v).clone();
            match &mut copy {
                TypedVec::Float(xs) => {
                    xs[idx] = f32::from_bits(xs[idx].to_bits() ^ (1 << (r1 % 32)));
                }
                TypedVec::Double(xs) => {
                    xs[idx] = f64::from_bits(xs[idx].to_bits() ^ (1 << (r1 % 64)));
                }
                TypedVec::Int32(xs) => xs[idx] ^= 1 << (r1 % 32),
                TypedVec::UInt32(xs) => xs[idx] ^= 1 << (r1 % 32),
                TypedVec::Int64(xs) => xs[idx] ^= 1 << (r1 % 64),
                TypedVec::UInt64(xs) => xs[idx] ^= 1 << (r1 % 64),
            }
            Some(StoredPayload::Typed(Arc::new(copy)))
        }
        StoredPayload::Raw(bytes) => {
            if bytes.is_empty() {
                return None;
            }
            let idx = (r0 % bytes.len() as u64) as usize;
            let mut copy = bytes.to_vec();
            copy[idx] ^= 1 << (r1 % 8);
            Some(StoredPayload::Raw(Bytes::from(copy)))
        }
    }
}

/// A region's payload.
#[derive(Debug, Clone)]
pub enum StoredPayload {
    /// Array data (shared, immutable once written).
    Typed(Arc<TypedVec>),
    /// Opaque bytes (serialized index files, metadata snapshots).
    Raw(Bytes),
}

impl StoredPayload {
    /// Payload size in bytes.
    pub fn size_bytes(&self) -> u64 {
        match self {
            StoredPayload::Typed(v) => v.size_bytes(),
            StoredPayload::Raw(b) => b.len() as u64,
        }
    }
}

#[derive(Debug, Clone)]
struct StoredRegion {
    payload: StoredPayload,
    tier: StorageTier,
    ost: u32,
    /// FNV-1a over the payload bytes, computed at `put` time.
    checksum: u64,
    /// The last-known-good payload, stashed when corruption is injected.
    /// Models the durable PFS copy a real deployment re-reads to repair a
    /// bad replica; `None` means no verified fallback exists.
    pristine: Option<StoredPayload>,
}

/// The shared object store.
///
/// Thread-safe: servers read concurrently; imports write up front.
/// Every `get` re-derives the payload checksum and compares it against
/// the one recorded at `put`; a mismatch quarantines the region and
/// surfaces as [`PdcError::CorruptRegion`] with the tier it was found on.
#[derive(Debug, Default)]
pub struct ObjectStore {
    regions: RwLock<HashMap<RegionId, StoredRegion>>,
    quarantine: RwLock<HashSet<RegionId>>,
    /// Regions whose payload has reached its final extent. Sealing guards
    /// the streaming-ingest append path only: `append_typed` refuses a
    /// sealed region, while `put` (a wholesale rewrite) and `remove` start
    /// the region's life over and clear the mark.
    sealed: RwLock<HashSet<RegionId>>,
    num_osts: u32,
    /// Monotonic data-plane epoch: bumped by every mutation that can
    /// change what a read of any region would return (put, remove,
    /// migrate, corrupt, repair) and by metadata-only rebuilds via
    /// [`ObjectStore::bump_epoch`]. Caches derived from region contents
    /// (prune verdicts, partial selections, built plans) key their
    /// entries to the epoch they were computed at and drop them when it
    /// moves.
    epoch: std::sync::atomic::AtomicU64,
}

impl ObjectStore {
    /// A store striped over `num_osts` simulated OSTs.
    pub fn new(num_osts: u32) -> Self {
        Self {
            regions: RwLock::new(HashMap::new()),
            quarantine: RwLock::new(HashSet::new()),
            sealed: RwLock::new(HashSet::new()),
            num_osts: num_osts.max(1),
            epoch: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Number of simulated OSTs.
    pub fn num_osts(&self) -> u32 {
        self.num_osts
    }

    /// The current data-plane epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(std::sync::atomic::Ordering::Acquire)
    }

    /// Advance the data-plane epoch, invalidating all epoch-keyed caches.
    /// Called internally by every mutating store operation; exposed for
    /// mutations that bypass the store (metadata-only histogram or
    /// sorted-replica rebuilds).
    pub fn bump_epoch(&self) {
        self.epoch.fetch_add(1, std::sync::atomic::Ordering::AcqRel);
    }

    /// Insert (or replace) a region payload on a tier. Placement is
    /// round-robin by region index — PDC "automatically distributes the
    /// data across the parallel file system's storage devices".
    pub fn put(&self, id: RegionId, payload: StoredPayload, tier: StorageTier) {
        let ost = (id.index + id.object.raw() as u32) % self.num_osts;
        let checksum = payload_checksum(&payload);
        self.regions
            .write()
            .insert(id, StoredRegion { payload, tier, ost, checksum, pristine: None });
        self.quarantine.write().remove(&id);
        self.sealed.write().remove(&id);
        self.bump_epoch();
    }

    /// Extend a typed region's payload with `delta` (streaming ingest).
    ///
    /// The existing prefix is never rewritten — appended elements only ever
    /// grow the tail — so a reader holding a plan-time span can scan the
    /// first `span.len` elements of a grown payload and observe exactly the
    /// bytes that were present when its snapshot was taken. Refuses sealed
    /// regions, raw payloads, element-type mismatches, and payloads that
    /// fail checksum verification (appending to a corrupt copy would
    /// launder the corruption into a fresh checksum). Returns the new
    /// element count.
    pub fn append_typed(&self, id: RegionId, delta: &TypedVec) -> PdcResult<u64> {
        if self.is_sealed(id) {
            return Err(PdcError::Storage(format!("region {id} is sealed against appends")));
        }
        let mut map = self.regions.write();
        let r = map.get_mut(&id).ok_or(PdcError::NoSuchRegion(id))?;
        let grown = match &r.payload {
            StoredPayload::Typed(v) => {
                if v.pdc_type() != delta.pdc_type() {
                    return Err(PdcError::Storage(format!(
                        "append type mismatch on {id}: region holds {:?}, delta is {:?}",
                        v.pdc_type(),
                        delta.pdc_type()
                    )));
                }
                if payload_checksum(&r.payload) != r.checksum {
                    let found_on = r.tier;
                    drop(map);
                    self.quarantine.write().insert(id);
                    return Err(PdcError::CorruptRegion {
                        region: id,
                        tier: found_on.name().into(),
                    });
                }
                let mut grown = (**v).clone();
                grown.extend_from_range(delta, 0..delta.len())?;
                grown
            }
            StoredPayload::Raw(_) => {
                return Err(PdcError::Storage(format!(
                    "region {id} holds raw bytes; append requires typed data"
                )))
            }
        };
        let new_len = grown.len() as u64;
        r.payload = StoredPayload::Typed(Arc::new(grown));
        r.checksum = payload_checksum(&r.payload);
        // Any stashed pristine copy predates the append and no longer
        // matches the recorded checksum; drop it rather than let a later
        // repair "restore" a truncated payload.
        r.pristine = None;
        drop(map);
        self.bump_epoch();
        Ok(new_len)
    }

    /// Mark a region as sealed: its payload has reached final extent and
    /// further `append_typed` calls must fail. Sealing is idempotent and
    /// metadata-only (no epoch bump — the readable bytes are unchanged).
    pub fn seal(&self, id: RegionId) -> PdcResult<()> {
        if !self.contains(id) {
            return Err(PdcError::NoSuchRegion(id));
        }
        self.sealed.write().insert(id);
        Ok(())
    }

    /// Whether a region has been sealed against appends.
    pub fn is_sealed(&self, id: RegionId) -> bool {
        self.sealed.read().contains(&id)
    }

    /// Fetch a region's payload and tier, verifying the payload checksum
    /// recorded at `put`. A mismatch quarantines the region and reports
    /// the tier the corrupt copy was found on.
    pub fn get(&self, id: RegionId) -> PdcResult<(StoredPayload, StorageTier)> {
        let (payload, tier, checksum) = self
            .regions
            .read()
            .get(&id)
            .map(|r| (r.payload.clone(), r.tier, r.checksum))
            .ok_or(PdcError::NoSuchRegion(id))?;
        if payload_checksum(&payload) != checksum {
            self.quarantine.write().insert(id);
            return Err(PdcError::CorruptRegion { region: id, tier: tier.name().into() });
        }
        Ok((payload, tier))
    }

    /// Fetch a region's payload and tier WITHOUT re-deriving its checksum.
    /// For advisory reads only (e.g. batch prewarm seeding caches keyed by
    /// the store epoch): skipping verification is safe there because every
    /// mutation — including `corrupt` and repair — bumps the epoch, which
    /// invalidates whatever the advisory reader derived. Anything that
    /// feeds query results or durability must use [`Self::get`].
    pub fn get_unverified(&self, id: RegionId) -> PdcResult<(StoredPayload, StorageTier)> {
        self.regions
            .read()
            .get(&id)
            .map(|r| (r.payload.clone(), r.tier))
            .ok_or(PdcError::NoSuchRegion(id))
    }

    /// Size in bytes of a region's payload, without any verification,
    /// tier charge, or access bookkeeping — a host-side metadata peek for
    /// planners ranking operators before deciding what to read.
    pub fn payload_size(&self, id: RegionId) -> Option<u64> {
        self.regions.read().get(&id).map(|r| r.payload.size_bytes())
    }

    /// Fetch a typed-array region (most callers).
    pub fn get_typed(&self, id: RegionId) -> PdcResult<Arc<TypedVec>> {
        match self.get(id)? {
            (StoredPayload::Typed(v), _) => Ok(v),
            (StoredPayload::Raw(_), _) => {
                Err(PdcError::Storage(format!("region {id} holds raw bytes, not typed data")))
            }
        }
    }

    /// Fetch a raw-bytes region (index files).
    pub fn get_raw(&self, id: RegionId) -> PdcResult<Bytes> {
        match self.get(id)? {
            (StoredPayload::Raw(b), _) => Ok(b),
            (StoredPayload::Typed(_), _) => {
                Err(PdcError::Storage(format!("region {id} holds typed data, not raw bytes")))
            }
        }
    }

    /// The simulated OST a region is placed on.
    pub fn ost_of(&self, id: RegionId) -> PdcResult<u32> {
        self.regions.read().get(&id).map(|r| r.ost).ok_or(PdcError::NoSuchRegion(id))
    }

    /// Whether a region exists.
    pub fn contains(&self, id: RegionId) -> bool {
        self.regions.read().contains_key(&id)
    }

    /// Remove a region; returns whether it existed. Also clears any
    /// quarantine entry so a later `put` at the same id starts clean.
    pub fn remove(&self, id: RegionId) -> bool {
        self.quarantine.write().remove(&id);
        self.sealed.write().remove(&id);
        let existed = self.regions.write().remove(&id).is_some();
        if existed {
            self.bump_epoch();
        }
        existed
    }

    /// Move a region to a different tier (data movement across the
    /// hierarchy). The payload is verified before it moves — migrating a
    /// corrupt copy would spread it. Returns the payload size moved.
    pub fn migrate(&self, id: RegionId, tier: StorageTier) -> PdcResult<u64> {
        let mut map = self.regions.write();
        let r = map.get_mut(&id).ok_or(PdcError::NoSuchRegion(id))?;
        if payload_checksum(&r.payload) != r.checksum {
            let found_on = r.tier;
            drop(map);
            self.quarantine.write().insert(id);
            return Err(PdcError::CorruptRegion { region: id, tier: found_on.name().into() });
        }
        r.tier = tier;
        let bytes = r.payload.size_bytes();
        drop(map);
        self.bump_epoch();
        Ok(bytes)
    }

    /// Deterministically corrupt a region in place: flip one bit of the
    /// stored payload (site chosen from `seed`), keeping the previous
    /// payload as the pristine durable copy for [`ObjectStore::repair`].
    /// Empty payloads are left untouched. Returns whether a bit flipped.
    pub fn corrupt(&self, id: RegionId, seed: u64) -> PdcResult<bool> {
        let mut map = self.regions.write();
        let r = map.get_mut(&id).ok_or(PdcError::NoSuchRegion(id))?;
        let site_seed = seed ^ id.object.raw().rotate_left(32) ^ id.index as u64;
        match flipped_payload(&r.payload, site_seed) {
            Some(bad) => {
                if r.pristine.is_none() {
                    r.pristine = Some(r.payload.clone());
                }
                r.payload = bad;
                drop(map);
                self.bump_epoch();
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Restore a quarantined region from its pristine durable copy
    /// (models re-reading the authoritative PFS copy). Clears the
    /// quarantine mark and returns the number of bytes re-read. Errors
    /// with [`PdcError::CorruptRegion`] when no pristine copy exists.
    pub fn repair(&self, id: RegionId) -> PdcResult<u64> {
        let mut map = self.regions.write();
        let r = map.get_mut(&id).ok_or(PdcError::NoSuchRegion(id))?;
        let Some(pristine) = r.pristine.take() else {
            return Err(PdcError::CorruptRegion { region: id, tier: r.tier.name().into() });
        };
        if payload_checksum(&pristine) != r.checksum {
            // The "durable" copy is bad too: keep the region quarantined.
            let tier = r.tier;
            r.pristine = Some(pristine);
            drop(map);
            return Err(PdcError::CorruptRegion { region: id, tier: tier.name().into() });
        }
        r.payload = pristine;
        let bytes = r.payload.size_bytes();
        drop(map);
        self.quarantine.write().remove(&id);
        self.bump_epoch();
        Ok(bytes)
    }

    /// Whether a region has failed checksum verification and not yet been
    /// repaired or replaced.
    pub fn is_quarantined(&self, id: RegionId) -> bool {
        self.quarantine.read().contains(&id)
    }

    /// All currently quarantined regions (sorted for determinism).
    pub fn quarantined(&self) -> Vec<RegionId> {
        let mut out: Vec<RegionId> = self.quarantine.read().iter().copied().collect();
        out.sort();
        out
    }

    /// Re-derive and verify a region's checksum without returning the
    /// payload. Quarantines on mismatch, like [`ObjectStore::get`].
    pub fn verify(&self, id: RegionId) -> PdcResult<()> {
        self.get(id).map(|_| ())
    }

    /// Total stored bytes per tier.
    pub fn bytes_by_tier(&self) -> HashMap<StorageTier, u64> {
        let mut out = HashMap::new();
        for r in self.regions.read().values() {
            *out.entry(r.tier).or_insert(0) += r.payload.size_bytes();
        }
        out
    }

    /// Number of stored regions.
    pub fn num_regions(&self) -> usize {
        self.regions.read().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdc_types::ObjectId;

    fn rid(o: u64, i: u32) -> RegionId {
        RegionId::new(ObjectId(o), i)
    }

    #[test]
    fn put_get_roundtrip_typed() {
        let store = ObjectStore::new(8);
        let v: TypedVec = vec![1.0f32, 2.0, 3.0].into();
        store.put(rid(1, 0), StoredPayload::Typed(Arc::new(v.clone())), StorageTier::Pfs);
        let got = store.get_typed(rid(1, 0)).unwrap();
        assert_eq!(&*got, &v);
        let (_, tier) = store.get(rid(1, 0)).unwrap();
        assert_eq!(tier, StorageTier::Pfs);
    }

    #[test]
    fn put_get_roundtrip_raw() {
        let store = ObjectStore::new(8);
        store.put(rid(2, 5), StoredPayload::Raw(Bytes::from_static(b"abc")), StorageTier::Pfs);
        assert_eq!(store.get_raw(rid(2, 5)).unwrap(), Bytes::from_static(b"abc"));
    }

    #[test]
    fn wrong_kind_is_an_error() {
        let store = ObjectStore::new(8);
        store.put(rid(1, 0), StoredPayload::Raw(Bytes::from_static(b"x")), StorageTier::Pfs);
        assert!(store.get_typed(rid(1, 0)).is_err());
        let v: TypedVec = vec![1i32].into();
        store.put(rid(1, 1), StoredPayload::Typed(Arc::new(v)), StorageTier::Dram);
        assert!(store.get_raw(rid(1, 1)).is_err());
    }

    #[test]
    fn missing_region_is_an_error() {
        let store = ObjectStore::new(8);
        assert!(matches!(store.get(rid(9, 9)), Err(PdcError::NoSuchRegion(_))));
        assert!(!store.contains(rid(9, 9)));
    }

    #[test]
    fn placement_spreads_across_osts() {
        let store = ObjectStore::new(4);
        for i in 0..16 {
            let v: TypedVec = vec![0.0f32].into();
            store.put(rid(1, i), StoredPayload::Typed(Arc::new(v)), StorageTier::Pfs);
        }
        let mut used = std::collections::HashSet::new();
        for i in 0..16 {
            used.insert(store.ost_of(rid(1, i)).unwrap());
        }
        assert_eq!(used.len(), 4, "round-robin should hit every OST");
    }

    #[test]
    fn migrate_changes_tier() {
        let store = ObjectStore::new(2);
        let v: TypedVec = vec![1.0f64; 100].into();
        store.put(rid(3, 0), StoredPayload::Typed(Arc::new(v)), StorageTier::Pfs);
        let moved = store.migrate(rid(3, 0), StorageTier::Dram).unwrap();
        assert_eq!(moved, 800);
        assert_eq!(store.get(rid(3, 0)).unwrap().1, StorageTier::Dram);
    }

    #[test]
    fn bytes_by_tier_accounts() {
        let store = ObjectStore::new(2);
        let v: TypedVec = vec![0u32; 10].into(); // 40 bytes
        store.put(rid(1, 0), StoredPayload::Typed(Arc::new(v.clone())), StorageTier::Pfs);
        store.put(rid(1, 1), StoredPayload::Typed(Arc::new(v)), StorageTier::Dram);
        store.put(rid(1, 2), StoredPayload::Raw(Bytes::from(vec![0u8; 7])), StorageTier::Pfs);
        let by_tier = store.bytes_by_tier();
        assert_eq!(by_tier[&StorageTier::Pfs], 47);
        assert_eq!(by_tier[&StorageTier::Dram], 40);
        assert_eq!(store.num_regions(), 3);
    }

    #[test]
    fn remove_region() {
        let store = ObjectStore::new(2);
        let v: TypedVec = vec![0u32; 1].into();
        store.put(rid(1, 0), StoredPayload::Typed(Arc::new(v)), StorageTier::Pfs);
        assert!(store.remove(rid(1, 0)));
        assert!(!store.remove(rid(1, 0)));
    }

    #[test]
    fn corrupt_get_reports_tier_and_quarantines() {
        let store = ObjectStore::new(2);
        let v: TypedVec = vec![1.0f64; 16].into();
        store.put(rid(4, 1), StoredPayload::Typed(Arc::new(v)), StorageTier::BurstBuffer);
        assert!(store.corrupt(rid(4, 1), 7).unwrap());
        match store.get(rid(4, 1)) {
            Err(PdcError::CorruptRegion { region, tier }) => {
                assert_eq!(region, rid(4, 1));
                assert_eq!(tier, "burst-buffer");
            }
            other => panic!("expected CorruptRegion, got {other:?}"),
        }
        assert!(store.is_quarantined(rid(4, 1)));
        assert_eq!(store.quarantined(), vec![rid(4, 1)]);
        // Migration must refuse to spread the corrupt copy.
        assert!(matches!(
            store.migrate(rid(4, 1), StorageTier::Dram),
            Err(PdcError::CorruptRegion { .. })
        ));
    }

    #[test]
    fn repair_restores_pristine_copy() {
        let store = ObjectStore::new(2);
        let v: TypedVec = vec![3.5f32; 8].into();
        store.put(rid(5, 0), StoredPayload::Typed(Arc::new(v.clone())), StorageTier::Pfs);
        store.corrupt(rid(5, 0), 99).unwrap();
        assert!(store.get(rid(5, 0)).is_err());
        let bytes = store.repair(rid(5, 0)).unwrap();
        assert_eq!(bytes, 32);
        assert!(!store.is_quarantined(rid(5, 0)));
        assert_eq!(&*store.get_typed(rid(5, 0)).unwrap(), &v);
    }

    #[test]
    fn repair_without_pristine_is_typed_error() {
        let store = ObjectStore::new(2);
        let v: TypedVec = vec![0i64; 4].into();
        store.put(rid(6, 0), StoredPayload::Typed(Arc::new(v)), StorageTier::Pfs);
        assert!(matches!(store.repair(rid(6, 0)), Err(PdcError::CorruptRegion { .. })));
    }

    #[test]
    fn corrupt_raw_payload_detected() {
        let store = ObjectStore::new(2);
        store.put(rid(7, 2), StoredPayload::Raw(Bytes::from(vec![9u8; 64])), StorageTier::Pfs);
        assert!(store.corrupt(rid(7, 2), 1).unwrap());
        assert!(matches!(store.get_raw(rid(7, 2)), Err(PdcError::CorruptRegion { .. })));
        store.repair(rid(7, 2)).unwrap();
        assert_eq!(store.get_raw(rid(7, 2)).unwrap(), Bytes::from(vec![9u8; 64]));
    }

    #[test]
    fn corruption_site_is_seed_deterministic() {
        let make = |seed: u64| {
            let store = ObjectStore::new(2);
            let v: TypedVec = (0..128u32).collect::<Vec<u32>>().into();
            store.put(rid(8, 0), StoredPayload::Typed(Arc::new(v)), StorageTier::Pfs);
            store.corrupt(rid(8, 0), seed).unwrap();
            let map = store.regions.read();
            payload_checksum(&map[&rid(8, 0)].payload)
        };
        assert_eq!(make(42), make(42));
        assert_ne!(make(42), make(43));
    }

    #[test]
    fn put_and_remove_clear_quarantine() {
        let store = ObjectStore::new(2);
        let v: TypedVec = vec![1u32; 8].into();
        store.put(rid(9, 0), StoredPayload::Typed(Arc::new(v.clone())), StorageTier::Pfs);
        store.corrupt(rid(9, 0), 3).unwrap();
        let _ = store.get(rid(9, 0));
        assert!(store.is_quarantined(rid(9, 0)));
        store.put(rid(9, 0), StoredPayload::Typed(Arc::new(v)), StorageTier::Pfs);
        assert!(!store.is_quarantined(rid(9, 0)), "rewrite must clear quarantine");
        store.corrupt(rid(9, 0), 3).unwrap();
        let _ = store.get(rid(9, 0));
        assert!(store.remove(rid(9, 0)));
        assert!(!store.is_quarantined(rid(9, 0)), "remove must clear quarantine");
    }

    #[test]
    fn epoch_advances_on_every_data_mutation() {
        let store = ObjectStore::new(2);
        let v: TypedVec = vec![1.0f32; 8].into();
        let e0 = store.epoch();
        store.put(rid(11, 0), StoredPayload::Typed(Arc::new(v)), StorageTier::Pfs);
        let e1 = store.epoch();
        assert!(e1 > e0, "put must bump");
        store.migrate(rid(11, 0), StorageTier::Dram).unwrap();
        let e2 = store.epoch();
        assert!(e2 > e1, "migrate must bump");
        store.corrupt(rid(11, 0), 5).unwrap();
        let e3 = store.epoch();
        assert!(e3 > e2, "corrupt must bump");
        store.repair(rid(11, 0)).unwrap();
        let e4 = store.epoch();
        assert!(e4 > e3, "repair must bump");
        store.remove(rid(11, 0));
        let e5 = store.epoch();
        assert!(e5 > e4, "remove must bump");
        assert_eq!(store.epoch(), e5, "reads must not bump");
        store.bump_epoch();
        assert_eq!(store.epoch(), e5 + 1);
        // removing a missing region is a no-op
        assert!(!store.remove(rid(11, 0)));
        assert_eq!(store.epoch(), e5 + 1);
    }

    #[test]
    fn append_grows_payload_and_bumps_epoch() {
        let store = ObjectStore::new(2);
        let v: TypedVec = vec![1.0f64, 2.0, 3.0].into();
        store.put(rid(12, 0), StoredPayload::Typed(Arc::new(v)), StorageTier::Pfs);
        let e0 = store.epoch();
        let delta: TypedVec = vec![4.0f64, 5.0].into();
        assert_eq!(store.append_typed(rid(12, 0), &delta).unwrap(), 5);
        assert!(store.epoch() > e0, "append must bump the epoch");
        let got = store.get_typed(rid(12, 0)).unwrap();
        assert_eq!(got.len(), 5);
        assert_eq!(got.to_f64_vec(), vec![1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn append_preserves_prefix_bytes() {
        let store = ObjectStore::new(2);
        let v: TypedVec = vec![9u32, 8, 7].into();
        store.put(rid(12, 1), StoredPayload::Typed(Arc::new(v.clone())), StorageTier::Pfs);
        let delta: TypedVec = vec![6u32].into();
        store.append_typed(rid(12, 1), &delta).unwrap();
        let got = store.get_typed(rid(12, 1)).unwrap();
        match (&*got, &v) {
            (TypedVec::UInt32(grown), TypedVec::UInt32(orig)) => {
                assert_eq!(&grown[..3], &orig[..]);
                assert_eq!(grown[3], 6);
            }
            _ => panic!("unexpected variants"),
        }
    }

    #[test]
    fn append_refuses_sealed_missing_raw_and_mismatched() {
        let store = ObjectStore::new(2);
        let delta: TypedVec = vec![1.0f64].into();
        // missing
        assert!(matches!(store.append_typed(rid(13, 0), &delta), Err(PdcError::NoSuchRegion(_))));
        // sealed
        let v: TypedVec = vec![1.0f64; 4].into();
        store.put(rid(13, 0), StoredPayload::Typed(Arc::new(v)), StorageTier::Pfs);
        store.seal(rid(13, 0)).unwrap();
        assert!(store.is_sealed(rid(13, 0)));
        assert!(matches!(store.append_typed(rid(13, 0), &delta), Err(PdcError::Storage(_))));
        // raw payload
        store.put(rid(13, 1), StoredPayload::Raw(Bytes::from_static(b"idx")), StorageTier::Pfs);
        assert!(matches!(store.append_typed(rid(13, 1), &delta), Err(PdcError::Storage(_))));
        // element-type mismatch
        let ints: TypedVec = vec![1i32; 4].into();
        store.put(rid(13, 2), StoredPayload::Typed(Arc::new(ints)), StorageTier::Pfs);
        assert!(matches!(store.append_typed(rid(13, 2), &delta), Err(PdcError::Storage(_))));
        // sealing a missing region is a typed error
        assert!(matches!(store.seal(rid(13, 9)), Err(PdcError::NoSuchRegion(_))));
    }

    #[test]
    fn append_to_corrupt_region_quarantines() {
        let store = ObjectStore::new(2);
        let v: TypedVec = vec![1.0f64; 16].into();
        store.put(rid(14, 0), StoredPayload::Typed(Arc::new(v)), StorageTier::Pfs);
        store.corrupt(rid(14, 0), 11).unwrap();
        let delta: TypedVec = vec![2.0f64].into();
        assert!(matches!(
            store.append_typed(rid(14, 0), &delta),
            Err(PdcError::CorruptRegion { .. })
        ));
        assert!(store.is_quarantined(rid(14, 0)));
    }

    #[test]
    fn put_and_remove_clear_seal_mark() {
        let store = ObjectStore::new(2);
        let v: TypedVec = vec![1u64; 2].into();
        store.put(rid(15, 0), StoredPayload::Typed(Arc::new(v.clone())), StorageTier::Pfs);
        store.seal(rid(15, 0)).unwrap();
        store.put(rid(15, 0), StoredPayload::Typed(Arc::new(v.clone())), StorageTier::Pfs);
        assert!(!store.is_sealed(rid(15, 0)), "rewrite starts an open region");
        store.seal(rid(15, 0)).unwrap();
        store.remove(rid(15, 0));
        store.put(rid(15, 0), StoredPayload::Typed(Arc::new(v)), StorageTier::Pfs);
        assert!(!store.is_sealed(rid(15, 0)), "remove must clear the seal");
    }

    #[test]
    fn empty_payload_cannot_be_corrupted() {
        let store = ObjectStore::new(2);
        store.put(rid(10, 0), StoredPayload::Raw(Bytes::new()), StorageTier::Pfs);
        assert!(!store.corrupt(rid(10, 0), 5).unwrap());
        assert!(store.get_raw(rid(10, 0)).is_ok());
    }
}
