//! The backing object store: region payloads on storage tiers.
//!
//! PDC regions "can reside on any layer of the memory/storage hierarchy".
//! The store keeps each region's payload (a typed array for data regions,
//! raw bytes for index files) together with its tier and striped placement
//! across simulated OSTs. The store itself is time-free — callers charge
//! their own [`crate::sim::SimClock`] via the cost model, because the
//! *pattern* of access (aggregated vs. flat, cached vs. not) is a property
//! of the reader, not of the store.

use bytes::Bytes;
use parking_lot::{Mutex, RwLock};
use pdc_blockstore::{blockfile, BlockCache, BlockCacheStats, BlockReader, Fnv1a};
use pdc_types::{with_slice, PdcError, PdcResult, PdcType, RegionId, TypedVec};
use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Storage tier a region resides on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StorageTier {
    /// Server DRAM (pre-loaded or cached).
    Dram,
    /// Burst buffer / NVRAM.
    BurstBuffer,
    /// The Lustre-like parallel file system.
    Pfs,
}

impl StorageTier {
    /// Human-readable tier name (used in corruption error context).
    pub fn name(&self) -> &'static str {
        match self {
            StorageTier::Dram => "dram",
            StorageTier::BurstBuffer => "burst-buffer",
            StorageTier::Pfs => "pfs",
        }
    }
}

/// FNV-1a 64-bit over a byte slice — the checksum primitive shared by
/// payload verification, block-frame checksums, and the metadata
/// snapshot frame. Delegates to the one streaming implementation in
/// `pdc-blockstore` so every checksum in the system agrees.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    pdc_blockstore::fnv1a64(bytes)
}

/// FNV-1a 64-bit over a payload's typed bytes (little-endian element
/// encoding for typed arrays, the bytes themselves for raw payloads).
/// Cheap, dependency-free, and plenty for detecting injected bit flips.
pub fn payload_checksum(payload: &StoredPayload) -> u64 {
    match payload {
        StoredPayload::Typed(v) => {
            let mut h = Fnv1a::new();
            with_slice!(&**v, xs => {
                for x in xs {
                    h.update(&x.to_le_bytes());
                }
            });
            h.finish()
        }
        StoredPayload::Raw(bytes) => fnv1a64(bytes),
    }
}

/// SplitMix64 step used to derive deterministic corruption sites.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministically flip one bit of one element/byte of a payload.
/// Returns `None` when the payload is empty (nothing to flip).
fn flipped_payload(payload: &StoredPayload, seed: u64) -> Option<StoredPayload> {
    let r0 = mix64(seed);
    let r1 = mix64(r0);
    match payload {
        StoredPayload::Typed(v) => {
            let len = v.len();
            if len == 0 {
                return None;
            }
            let idx = (r0 % len as u64) as usize;
            let mut copy = (**v).clone();
            match &mut copy {
                TypedVec::Float(xs) => {
                    xs[idx] = f32::from_bits(xs[idx].to_bits() ^ (1 << (r1 % 32)));
                }
                TypedVec::Double(xs) => {
                    xs[idx] = f64::from_bits(xs[idx].to_bits() ^ (1 << (r1 % 64)));
                }
                TypedVec::Int32(xs) => xs[idx] ^= 1 << (r1 % 32),
                TypedVec::UInt32(xs) => xs[idx] ^= 1 << (r1 % 32),
                TypedVec::Int64(xs) => xs[idx] ^= 1 << (r1 % 64),
                TypedVec::UInt64(xs) => xs[idx] ^= 1 << (r1 % 64),
            }
            Some(StoredPayload::Typed(Arc::new(copy)))
        }
        StoredPayload::Raw(bytes) => {
            if bytes.is_empty() {
                return None;
            }
            let idx = (r0 % bytes.len() as u64) as usize;
            let mut copy = bytes.to_vec();
            copy[idx] ^= 1 << (r1 % 8);
            Some(StoredPayload::Raw(Bytes::from(copy)))
        }
    }
}

/// Deterministically flip one bit of a spilled region's block file,
/// stashing a pristine sibling copy first (the on-disk analogue of the
/// in-memory `pristine` stash). The flip site can land anywhere in the
/// file — payload, frame header, index, or footer — and every one of
/// those is covered by a checksum, so the next fault-in detects it.
fn corrupt_block_file(path: &Path, seed: u64) -> PdcResult<()> {
    let io = |e: std::io::Error| PdcError::Storage(format!("spill corrupt {}: {e}", path.display()));
    let mut bytes = std::fs::read(path).map_err(io)?;
    if bytes.is_empty() {
        return Err(PdcError::Storage(format!("spill file {} is empty", path.display())));
    }
    let orig = orig_path(path);
    if !orig.exists() {
        std::fs::copy(path, &orig).map_err(io)?;
    }
    let r0 = mix64(seed);
    let r1 = mix64(r0);
    let idx = (r0 % bytes.len() as u64) as usize;
    bytes[idx] ^= 1 << (r1 % 8);
    std::fs::write(path, &bytes).map_err(io)?;
    Ok(())
}

/// A region's payload.
#[derive(Debug, Clone)]
pub enum StoredPayload {
    /// Array data (shared, immutable once written).
    Typed(Arc<TypedVec>),
    /// Opaque bytes (serialized index files, metadata snapshots).
    Raw(Bytes),
}

impl StoredPayload {
    /// Payload size in bytes.
    pub fn size_bytes(&self) -> u64 {
        match self {
            StoredPayload::Typed(v) => v.size_bytes(),
            StoredPayload::Raw(b) => b.len() as u64,
        }
    }
}

/// Where a region's payload physically lives.
///
/// Residency is invisible to simulated time: a region's tier, checksum,
/// and every cost charge are identical whether its payload is held in
/// memory or demoted to a block-compressed spill file. Only host-side
/// spill statistics observe the difference.
#[derive(Debug, Clone)]
enum Residency {
    /// Payload held in memory.
    Resident(StoredPayload),
    /// Payload demoted to a block-compressed file on disk.
    Spilled(ColdHandle),
}

/// Element shape of a spilled payload.
#[derive(Debug, Clone, Copy)]
enum ColdKind {
    Typed { ty: PdcType, elems: u64, block_elems: u32 },
    Raw,
}

/// Durable location + shape of a spilled payload.
#[derive(Debug, Clone)]
struct ColdHandle {
    path: PathBuf,
    kind: ColdKind,
    /// Uncompressed payload bytes — the size every simulated charge and
    /// capacity decision keeps using after demotion.
    raw_bytes: u64,
    /// Compressed on-disk bytes (host-side accounting only).
    comp_bytes: u64,
}

#[derive(Debug, Clone)]
struct StoredRegion {
    res: Residency,
    tier: StorageTier,
    ost: u32,
    /// FNV-1a over the payload bytes, computed at `put` time.
    checksum: u64,
    /// The last-known-good payload, stashed when corruption is injected.
    /// Models the durable PFS copy a real deployment re-reads to repair a
    /// bad replica; `None` means no verified fallback exists. Spilled
    /// regions keep their pristine copy as a sibling `.orig` file instead.
    pristine: Option<StoredPayload>,
}

impl StoredRegion {
    /// Logical (uncompressed) payload size, independent of residency.
    fn size_bytes(&self) -> u64 {
        match &self.res {
            Residency::Resident(p) => p.size_bytes(),
            Residency::Spilled(h) => h.raw_bytes,
        }
    }
}

/// The sibling path holding a spilled region's pristine copy while its
/// primary block file carries injected corruption.
fn orig_path(path: &Path) -> PathBuf {
    path.with_extension("pbf.orig")
}

/// The `(object token, region index)` pair used as the block-cache
/// region prefix for `id`.
fn cache_token(id: RegionId) -> (u64, u32) {
    (id.object.raw(), id.index)
}

/// Host-side accounting for the spill subsystem.
#[derive(Debug, Default, Clone, Copy)]
struct SpillAcct {
    resident_bytes: u64,
    high_water: u64,
    demotions: u64,
    fault_ins: u64,
    spilled_regions: u64,
    spilled_raw_bytes: u64,
    spilled_comp_bytes: u64,
}

#[derive(Debug, Default)]
struct SpillTicks {
    tick: u64,
    last_use: HashMap<RegionId, u64>,
}

/// Spill configuration + accounting, present once out-of-core mode is
/// enabled via [`ObjectStore::configure_spill`].
#[derive(Debug)]
struct SpillState {
    dir: PathBuf,
    memory_budget: u64,
    block_cache: Arc<BlockCache>,
    acct: Mutex<SpillAcct>,
    /// Access recency driving LRU demotion order (separate from the
    /// region map so reads only take this one small lock).
    ticks: Mutex<SpillTicks>,
}

impl SpillState {
    fn add_resident(&self, bytes: u64) {
        self.acct.lock().resident_bytes += bytes;
    }

    fn sub_resident(&self, bytes: u64) {
        let mut a = self.acct.lock();
        a.resident_bytes = a.resident_bytes.saturating_sub(bytes);
    }

    /// Record the settled resident footprint (called after budget
    /// enforcement, so the high-water mark reflects steady state rather
    /// than the unavoidable transient while a payload is being demoted).
    fn note_high_water(&self) {
        let mut a = self.acct.lock();
        if a.resident_bytes > a.high_water {
            a.high_water = a.resident_bytes;
        }
    }

    /// Forget a spilled region: delete its files, drop its cached blocks,
    /// and roll its bytes out of the spill accounting.
    fn drop_spilled(&self, h: &ColdHandle, token: (u64, u32)) {
        let _ = std::fs::remove_file(&h.path);
        let _ = std::fs::remove_file(orig_path(&h.path));
        self.block_cache.invalidate_region(token);
        let mut a = self.acct.lock();
        a.spilled_regions = a.spilled_regions.saturating_sub(1);
        a.spilled_raw_bytes = a.spilled_raw_bytes.saturating_sub(h.raw_bytes);
        a.spilled_comp_bytes = a.spilled_comp_bytes.saturating_sub(h.comp_bytes);
    }
}

/// Snapshot of the spill subsystem's host-side statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct SpillStats {
    /// Uncompressed bytes currently held in memory.
    pub resident_bytes: u64,
    /// Settled high-water mark of `resident_bytes`.
    pub resident_high_water: u64,
    /// Regions demoted to disk since spill was configured.
    pub demotions: u64,
    /// Whole-region materializations of spilled payloads.
    pub fault_ins: u64,
    /// Regions currently spilled.
    pub spilled_regions: u64,
    /// Uncompressed bytes of currently spilled regions.
    pub spilled_raw_bytes: u64,
    /// On-disk (compressed) bytes of currently spilled regions.
    pub spilled_comp_bytes: u64,
    /// Decoded-block cache statistics.
    pub block_cache: BlockCacheStats,
    /// Decoded-block cache residency in bytes.
    pub block_cache_bytes: u64,
}

impl SpillStats {
    /// Compression ratio over currently spilled regions (uncompressed /
    /// on-disk); 1.0 when nothing is spilled.
    pub fn compression_ratio(&self) -> f64 {
        if self.spilled_comp_bytes == 0 {
            1.0
        } else {
            self.spilled_raw_bytes as f64 / self.spilled_comp_bytes as f64
        }
    }
}

/// A read handle over a spilled region's block file: per-block decode
/// through the shared budgeted block cache, so an interval scan touches
/// only the blocks its intervals overlap and never materializes the
/// whole region.
#[derive(Clone)]
pub struct ColdRegion {
    id: RegionId,
    path: PathBuf,
    ty: PdcType,
    elems: u64,
    block_elems: u32,
    raw_bytes: u64,
    cache: Arc<BlockCache>,
    /// Lazily opened, shared across clones so repeated block reads pay
    /// the open+index-verify cost once.
    reader: Arc<Mutex<Option<Arc<BlockReader>>>>,
}

impl std::fmt::Debug for ColdRegion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ColdRegion")
            .field("id", &self.id)
            .field("path", &self.path)
            .field("ty", &self.ty)
            .field("elems", &self.elems)
            .field("block_elems", &self.block_elems)
            .finish()
    }
}

impl ColdRegion {
    /// The region this handle reads.
    pub fn id(&self) -> RegionId {
        self.id
    }

    /// Element count.
    pub fn len(&self) -> u64 {
        self.elems
    }

    /// Whether the region is empty.
    pub fn is_empty(&self) -> bool {
        self.elems == 0
    }

    /// Element type.
    pub fn pdc_type(&self) -> PdcType {
        self.ty
    }

    /// Uncompressed payload size in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.raw_bytes
    }

    /// Elements per block (last block may be short).
    pub fn block_elems(&self) -> u32 {
        self.block_elems
    }

    /// Number of blocks.
    pub fn n_blocks(&self) -> u32 {
        if self.elems == 0 {
            0
        } else {
            self.elems.div_ceil(self.block_elems as u64) as u32
        }
    }

    /// Element span `[start, end)` of block `b`.
    pub fn block_span(&self, b: u32) -> (u64, u64) {
        let start = b as u64 * self.block_elems as u64;
        let end = (start + self.block_elems as u64).min(self.elems);
        (start, end)
    }

    /// Blocks whose element spans intersect `[lo, hi)`.
    pub fn blocks_overlapping(&self, lo: u64, hi: u64) -> std::ops::Range<u32> {
        let hi = hi.min(self.elems);
        if lo >= hi {
            return 0..0;
        }
        let first = (lo / self.block_elems as u64) as u32;
        let last = ((hi - 1) / self.block_elems as u64) as u32;
        first..last + 1
    }

    fn reader(&self) -> PdcResult<Arc<BlockReader>> {
        let mut g = self.reader.lock();
        if let Some(r) = &*g {
            return Ok(Arc::clone(r));
        }
        let r = Arc::new(BlockReader::open(&self.path)?);
        *g = Some(Arc::clone(&r));
        Ok(r)
    }

    /// Decode block `b`, serving from the shared block cache when hot.
    /// Every decoded frame is checksum-verified by the block reader.
    pub fn read_block(&self, b: u32) -> PdcResult<Arc<TypedVec>> {
        let key = (self.id.object.raw(), self.id.index, b);
        if let Some(hit) = self.cache.get(key) {
            return Ok(hit);
        }
        let block = Arc::new(self.reader()?.read_typed_block(b)?);
        self.cache.put(key, Arc::clone(&block));
        Ok(block)
    }
}

/// The shared object store.
///
/// Thread-safe: servers read concurrently; imports write up front.
/// Every `get` re-derives the payload checksum and compares it against
/// the one recorded at `put`; a mismatch quarantines the region and
/// surfaces as [`PdcError::CorruptRegion`] with the tier it was found on.
#[derive(Debug, Default)]
pub struct ObjectStore {
    regions: RwLock<HashMap<RegionId, StoredRegion>>,
    quarantine: RwLock<HashSet<RegionId>>,
    /// Regions whose payload has reached its final extent. Sealing guards
    /// the streaming-ingest append path only: `append_typed` refuses a
    /// sealed region, while `put` (a wholesale rewrite) and `remove` start
    /// the region's life over and clear the mark.
    sealed: RwLock<HashSet<RegionId>>,
    num_osts: u32,
    /// Monotonic data-plane epoch: bumped by every mutation that can
    /// change what a read of any region would return (put, remove,
    /// migrate, corrupt, repair) and by metadata-only rebuilds via
    /// [`ObjectStore::bump_epoch`]. Caches derived from region contents
    /// (prune verdicts, partial selections, built plans) key their
    /// entries to the epoch they were computed at and drop them when it
    /// moves.
    epoch: std::sync::atomic::AtomicU64,
    /// Out-of-core spill state; `None` until
    /// [`ObjectStore::configure_spill`] enables demotion.
    spill: RwLock<Option<Arc<SpillState>>>,
}

impl ObjectStore {
    /// A store striped over `num_osts` simulated OSTs.
    pub fn new(num_osts: u32) -> Self {
        Self {
            regions: RwLock::new(HashMap::new()),
            quarantine: RwLock::new(HashSet::new()),
            sealed: RwLock::new(HashSet::new()),
            num_osts: num_osts.max(1),
            epoch: std::sync::atomic::AtomicU64::new(0),
            spill: RwLock::new(None),
        }
    }

    fn spill_state(&self) -> Option<Arc<SpillState>> {
        self.spill.read().clone()
    }

    /// Bump the access tick used for LRU demotion ordering (no-op when
    /// spill is disabled).
    fn touch(&self, id: RegionId) {
        if let Some(s) = self.spill_state() {
            let mut t = s.ticks.lock();
            t.tick += 1;
            let tick = t.tick;
            t.last_use.insert(id, tick);
        }
    }

    /// Number of simulated OSTs.
    pub fn num_osts(&self) -> u32 {
        self.num_osts
    }

    /// The current data-plane epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(std::sync::atomic::Ordering::Acquire)
    }

    /// Advance the data-plane epoch, invalidating all epoch-keyed caches.
    /// Called internally by every mutating store operation; exposed for
    /// mutations that bypass the store (metadata-only histogram or
    /// sorted-replica rebuilds).
    pub fn bump_epoch(&self) {
        self.epoch.fetch_add(1, std::sync::atomic::Ordering::AcqRel);
    }

    /// Insert (or replace) a region payload on a tier. Placement is
    /// round-robin by region index — PDC "automatically distributes the
    /// data across the parallel file system's storage devices".
    pub fn put(&self, id: RegionId, payload: StoredPayload, tier: StorageTier) {
        let ost = (id.index + id.object.raw() as u32) % self.num_osts;
        let checksum = payload_checksum(&payload);
        let new_bytes = payload.size_bytes();
        let old = self.regions.write().insert(
            id,
            StoredRegion { res: Residency::Resident(payload), tier, ost, checksum, pristine: None },
        );
        self.quarantine.write().remove(&id);
        self.sealed.write().remove(&id);
        if let Some(s) = self.spill_state() {
            match old.map(|r| r.res) {
                Some(Residency::Resident(p)) => s.sub_resident(p.size_bytes()),
                Some(Residency::Spilled(h)) => s.drop_spilled(&h, cache_token(id)),
                None => {}
            }
            s.add_resident(new_bytes);
            self.touch(id);
        }
        self.bump_epoch();
        // Best-effort: writes stay within budget as sealed regions demote.
        let _ = self.enforce_budget();
    }

    /// Extend a typed region's payload with `delta` (streaming ingest).
    ///
    /// The existing prefix is never rewritten — appended elements only ever
    /// grow the tail — so a reader holding a plan-time span can scan the
    /// first `span.len` elements of a grown payload and observe exactly the
    /// bytes that were present when its snapshot was taken. Refuses sealed
    /// regions, raw payloads, element-type mismatches, and payloads that
    /// fail checksum verification (appending to a corrupt copy would
    /// launder the corruption into a fresh checksum). Returns the new
    /// element count.
    pub fn append_typed(&self, id: RegionId, delta: &TypedVec) -> PdcResult<u64> {
        if self.is_sealed(id) {
            return Err(PdcError::Storage(format!("region {id} is sealed against appends")));
        }
        let mut map = self.regions.write();
        let r = map.get_mut(&id).ok_or(PdcError::NoSuchRegion(id))?;
        let old_bytes = r.size_bytes();
        let grown = match &r.res {
            Residency::Resident(StoredPayload::Typed(v)) => {
                if v.pdc_type() != delta.pdc_type() {
                    return Err(PdcError::Storage(format!(
                        "append type mismatch on {id}: region holds {:?}, delta is {:?}",
                        v.pdc_type(),
                        delta.pdc_type()
                    )));
                }
                if payload_checksum(&StoredPayload::Typed(Arc::clone(v))) != r.checksum {
                    let found_on = r.tier;
                    drop(map);
                    self.quarantine.write().insert(id);
                    return Err(PdcError::CorruptRegion {
                        region: id,
                        tier: found_on.name().into(),
                    });
                }
                let mut grown = (**v).clone();
                grown.extend_from_range(delta, 0..delta.len())?;
                grown
            }
            Residency::Resident(StoredPayload::Raw(_)) => {
                return Err(PdcError::Storage(format!(
                    "region {id} holds raw bytes; append requires typed data"
                )))
            }
            // Only sealed regions ever demote, and sealed regions were
            // refused above — defend anyway so the invariant is local.
            Residency::Spilled(_) => {
                return Err(PdcError::Storage(format!(
                    "region {id} is spilled (sealed) and cannot accept appends"
                )))
            }
        };
        let new_len = grown.len() as u64;
        let payload = StoredPayload::Typed(Arc::new(grown));
        r.checksum = payload_checksum(&payload);
        let new_bytes = payload.size_bytes();
        r.res = Residency::Resident(payload);
        // Any stashed pristine copy predates the append and no longer
        // matches the recorded checksum; drop it rather than let a later
        // repair "restore" a truncated payload.
        r.pristine = None;
        drop(map);
        if let Some(s) = self.spill_state() {
            s.sub_resident(old_bytes);
            s.add_resident(new_bytes);
            self.touch(id);
        }
        self.bump_epoch();
        let _ = self.enforce_budget();
        Ok(new_len)
    }

    /// Mark a region as sealed: its payload has reached final extent and
    /// further `append_typed` calls must fail. Sealing is idempotent and
    /// metadata-only (no epoch bump — the readable bytes are unchanged).
    pub fn seal(&self, id: RegionId) -> PdcResult<()> {
        if !self.contains(id) {
            return Err(PdcError::NoSuchRegion(id));
        }
        self.sealed.write().insert(id);
        // Sealing makes the region demotable; spill immediately if the
        // resident footprint is over budget. The high-water mark samples
        // resident bytes here — seal boundaries are the points where the
        // budget is enforceable (an open region is pinned by ingest
        // itself, so its transient footprint is charged to the writer).
        self.enforce_budget()?;
        if let Some(s) = self.spill_state() {
            s.note_high_water();
        }
        Ok(())
    }

    /// Whether a region has been sealed against appends.
    pub fn is_sealed(&self, id: RegionId) -> bool {
        self.sealed.read().contains(&id)
    }

    /// Fetch a region's payload and tier, verifying the payload checksum
    /// recorded at `put`. A mismatch quarantines the region and reports
    /// the tier the corrupt copy was found on.
    pub fn get(&self, id: RegionId) -> PdcResult<(StoredPayload, StorageTier)> {
        self.touch(id);
        let (res, tier, checksum) = self
            .regions
            .read()
            .get(&id)
            .map(|r| (r.res.clone(), r.tier, r.checksum))
            .ok_or(PdcError::NoSuchRegion(id))?;
        let payload = match res {
            Residency::Resident(p) => p,
            Residency::Spilled(h) => self.fault_in(id, &h, tier)?,
        };
        if payload_checksum(&payload) != checksum {
            self.quarantine.write().insert(id);
            return Err(PdcError::CorruptRegion { region: id, tier: tier.name().into() });
        }
        Ok((payload, tier))
    }

    /// Materialize a spilled payload from its block file. Any failure —
    /// torn file, bad frame checksum, hostile index — quarantines the
    /// region and surfaces as [`PdcError::CorruptRegion`], exactly like a
    /// resident checksum mismatch, so the verify-and-fallback repair lane
    /// handles both identically.
    fn fault_in(&self, id: RegionId, h: &ColdHandle, tier: StorageTier) -> PdcResult<StoredPayload> {
        match Self::materialize(h) {
            Ok(p) => {
                if let Some(s) = self.spill_state() {
                    s.acct.lock().fault_ins += 1;
                }
                Ok(p)
            }
            Err(_) => {
                self.quarantine.write().insert(id);
                Err(PdcError::CorruptRegion { region: id, tier: tier.name().into() })
            }
        }
    }

    /// Decode a spilled payload in full (transient — the store copy stays
    /// cold and the block cache is not populated by whole-region reads).
    fn materialize(h: &ColdHandle) -> PdcResult<StoredPayload> {
        let reader = BlockReader::open(&h.path)?;
        match h.kind {
            ColdKind::Typed { .. } => Ok(StoredPayload::Typed(Arc::new(reader.read_all_typed()?))),
            ColdKind::Raw => Ok(StoredPayload::Raw(Bytes::from(reader.read_all_raw()?))),
        }
    }

    /// Fetch a region's payload and tier WITHOUT re-deriving its checksum.
    /// For advisory reads only (e.g. batch prewarm seeding caches keyed by
    /// the store epoch): skipping verification is safe there because every
    /// mutation — including `corrupt` and repair — bumps the epoch, which
    /// invalidates whatever the advisory reader derived. Anything that
    /// feeds query results or durability must use [`Self::get`].
    pub fn get_unverified(&self, id: RegionId) -> PdcResult<(StoredPayload, StorageTier)> {
        self.touch(id);
        let (res, tier) = self
            .regions
            .read()
            .get(&id)
            .map(|r| (r.res.clone(), r.tier))
            .ok_or(PdcError::NoSuchRegion(id))?;
        match res {
            Residency::Resident(p) => Ok((p, tier)),
            // Spilled reads are implicitly verified: every decoded frame
            // carries its own checksum.
            Residency::Spilled(h) => Ok((self.fault_in(id, &h, tier)?, tier)),
        }
    }

    /// Size in bytes of a region's payload, without any verification,
    /// tier charge, or access bookkeeping — a host-side metadata peek for
    /// planners ranking operators before deciding what to read.
    pub fn payload_size(&self, id: RegionId) -> Option<u64> {
        self.regions.read().get(&id).map(|r| r.size_bytes())
    }

    /// Fetch a typed-array region (most callers).
    pub fn get_typed(&self, id: RegionId) -> PdcResult<Arc<TypedVec>> {
        match self.get(id)? {
            (StoredPayload::Typed(v), _) => Ok(v),
            (StoredPayload::Raw(_), _) => {
                Err(PdcError::Storage(format!("region {id} holds raw bytes, not typed data")))
            }
        }
    }

    /// Fetch a raw-bytes region (index files).
    pub fn get_raw(&self, id: RegionId) -> PdcResult<Bytes> {
        match self.get(id)? {
            (StoredPayload::Raw(b), _) => Ok(b),
            (StoredPayload::Typed(_), _) => {
                Err(PdcError::Storage(format!("region {id} holds typed data, not raw bytes")))
            }
        }
    }

    /// The simulated OST a region is placed on.
    pub fn ost_of(&self, id: RegionId) -> PdcResult<u32> {
        self.regions.read().get(&id).map(|r| r.ost).ok_or(PdcError::NoSuchRegion(id))
    }

    /// Whether a region exists.
    pub fn contains(&self, id: RegionId) -> bool {
        self.regions.read().contains_key(&id)
    }

    /// Remove a region; returns whether it existed. Also clears any
    /// quarantine entry so a later `put` at the same id starts clean.
    pub fn remove(&self, id: RegionId) -> bool {
        self.quarantine.write().remove(&id);
        self.sealed.write().remove(&id);
        let old = self.regions.write().remove(&id);
        let existed = old.is_some();
        if let (Some(r), Some(s)) = (old, self.spill_state()) {
            match r.res {
                Residency::Resident(p) => s.sub_resident(p.size_bytes()),
                Residency::Spilled(h) => s.drop_spilled(&h, cache_token(id)),
            }
            s.ticks.lock().last_use.remove(&id);
        }
        if existed {
            self.bump_epoch();
        }
        existed
    }

    /// Move a region to a different tier (data movement across the
    /// hierarchy). The payload is verified before it moves — migrating a
    /// corrupt copy would spread it. Returns the payload size moved.
    pub fn migrate(&self, id: RegionId, tier: StorageTier) -> PdcResult<u64> {
        let mut map = self.regions.write();
        let r = map.get_mut(&id).ok_or(PdcError::NoSuchRegion(id))?;
        let verified = match &r.res {
            Residency::Resident(p) => payload_checksum(p) == r.checksum,
            Residency::Spilled(h) => Self::materialize(h)
                .map(|p| payload_checksum(&p) == r.checksum)
                .unwrap_or(false),
        };
        if !verified {
            let found_on = r.tier;
            drop(map);
            self.quarantine.write().insert(id);
            return Err(PdcError::CorruptRegion { region: id, tier: found_on.name().into() });
        }
        r.tier = tier;
        let bytes = r.size_bytes();
        drop(map);
        self.bump_epoch();
        Ok(bytes)
    }

    /// Deterministically corrupt a region in place: flip one bit of the
    /// stored payload (site chosen from `seed`), keeping the previous
    /// payload as the pristine durable copy for [`ObjectStore::repair`].
    /// Empty payloads are left untouched. Returns whether a bit flipped.
    pub fn corrupt(&self, id: RegionId, seed: u64) -> PdcResult<bool> {
        let mut map = self.regions.write();
        let r = map.get_mut(&id).ok_or(PdcError::NoSuchRegion(id))?;
        let site_seed = seed ^ id.object.raw().rotate_left(32) ^ id.index as u64;
        match &r.res {
            Residency::Resident(p) => match flipped_payload(p, site_seed) {
                Some(bad) => {
                    if r.pristine.is_none() {
                        r.pristine = Some(p.clone());
                    }
                    r.res = Residency::Resident(bad);
                    drop(map);
                    self.bump_epoch();
                    Ok(true)
                }
                None => Ok(false),
            },
            Residency::Spilled(h) => {
                // Empty payloads cannot be corrupted — parity with the
                // resident path (the block file's framing bytes are not
                // payload).
                if h.raw_bytes == 0 {
                    return Ok(false);
                }
                let path = h.path.clone();
                corrupt_block_file(&path, site_seed)?;
                drop(map);
                if let Some(s) = self.spill_state() {
                    s.block_cache.invalidate_region(cache_token(id));
                }
                self.bump_epoch();
                Ok(true)
            }
        }
    }

    /// Restore a quarantined region from its pristine durable copy
    /// (models re-reading the authoritative PFS copy). Clears the
    /// quarantine mark and returns the number of bytes re-read. Errors
    /// with [`PdcError::CorruptRegion`] when no pristine copy exists.
    pub fn repair(&self, id: RegionId) -> PdcResult<u64> {
        let mut map = self.regions.write();
        let r = map.get_mut(&id).ok_or(PdcError::NoSuchRegion(id))?;
        let tier = r.tier;
        let bytes = match &r.res {
            Residency::Resident(_) => {
                let Some(pristine) = r.pristine.take() else {
                    return Err(PdcError::CorruptRegion { region: id, tier: tier.name().into() });
                };
                if payload_checksum(&pristine) != r.checksum {
                    // The "durable" copy is bad too: keep the region quarantined.
                    r.pristine = Some(pristine);
                    drop(map);
                    return Err(PdcError::CorruptRegion { region: id, tier: tier.name().into() });
                }
                let bytes = pristine.size_bytes();
                r.res = Residency::Resident(pristine);
                bytes
            }
            Residency::Spilled(h) => {
                // The pristine copy lives in the sibling `.orig` file.
                let orig = orig_path(&h.path);
                if !orig.exists() {
                    return Err(PdcError::CorruptRegion { region: id, tier: tier.name().into() });
                }
                std::fs::copy(&orig, &h.path).map_err(|e| {
                    PdcError::Storage(format!("spill repair {}: {e}", h.path.display()))
                })?;
                // Verify the restored file decodes to the recorded
                // checksum; if not, leave the `.orig` marker in place and
                // stay quarantined.
                let ok = Self::materialize(h)
                    .map(|p| payload_checksum(&p) == r.checksum)
                    .unwrap_or(false);
                if !ok {
                    drop(map);
                    return Err(PdcError::CorruptRegion { region: id, tier: tier.name().into() });
                }
                let _ = std::fs::remove_file(&orig);
                let bytes = h.raw_bytes;
                drop(map);
                if let Some(s) = self.spill_state() {
                    s.block_cache.invalidate_region(cache_token(id));
                }
                self.quarantine.write().remove(&id);
                self.bump_epoch();
                return Ok(bytes);
            }
        };
        drop(map);
        self.quarantine.write().remove(&id);
        self.bump_epoch();
        Ok(bytes)
    }

    /// Whether a region has failed checksum verification and not yet been
    /// repaired or replaced.
    pub fn is_quarantined(&self, id: RegionId) -> bool {
        self.quarantine.read().contains(&id)
    }

    /// All currently quarantined regions (sorted for determinism).
    pub fn quarantined(&self) -> Vec<RegionId> {
        let mut out: Vec<RegionId> = self.quarantine.read().iter().copied().collect();
        out.sort();
        out
    }

    /// Re-derive and verify a region's checksum without returning the
    /// payload. Quarantines on mismatch, like [`ObjectStore::get`].
    pub fn verify(&self, id: RegionId) -> PdcResult<()> {
        self.get(id).map(|_| ())
    }

    /// The storage tier a region is placed on. Pure metadata — residency
    /// (resident vs spilled) never changes a region's tier.
    pub fn tier_of(&self, id: RegionId) -> PdcResult<StorageTier> {
        self.regions.read().get(&id).map(|r| r.tier).ok_or(PdcError::NoSuchRegion(id))
    }

    /// Total stored bytes per tier.
    pub fn bytes_by_tier(&self) -> HashMap<StorageTier, u64> {
        let mut out = HashMap::new();
        for r in self.regions.read().values() {
            *out.entry(r.tier).or_insert(0) += r.size_bytes();
        }
        out
    }

    /// Number of stored regions.
    pub fn num_regions(&self) -> usize {
        self.regions.read().len()
    }

    // ------------------------------------------------------------------
    // Out-of-core spill: demotion under a byte budget, block-level reads.
    // ------------------------------------------------------------------

    /// Enable out-of-core mode: sealed regions demote to block-compressed
    /// files under `dir` whenever the resident footprint exceeds
    /// `memory_budget` bytes; decoded blocks of spilled regions are served
    /// through a shared cache of at most `block_cache_bytes`.
    ///
    /// Spilling is physically real but simulation-invisible: tiers,
    /// checksums, and cost charges never depend on residency.
    pub fn configure_spill(
        &self,
        dir: &Path,
        memory_budget: u64,
        block_cache_bytes: u64,
    ) -> PdcResult<()> {
        std::fs::create_dir_all(dir)
            .map_err(|e| PdcError::Storage(format!("spill dir {}: {e}", dir.display())))?;
        let resident: u64 = self
            .regions
            .read()
            .values()
            .map(|r| match &r.res {
                Residency::Resident(p) => p.size_bytes(),
                Residency::Spilled(_) => 0,
            })
            .sum();
        // Reconfiguring keeps cumulative counters and access recency;
        // only the budget, directory, and (fresh) block cache change.
        let prev = self.spill_state();
        let mut acct = prev.as_ref().map(|p| *p.acct.lock()).unwrap_or_default();
        acct.resident_bytes = resident;
        acct.high_water = 0;
        let ticks = prev
            .as_ref()
            .map(|p| std::mem::take(&mut *p.ticks.lock()))
            .unwrap_or_default();
        let state = SpillState {
            dir: dir.to_path_buf(),
            memory_budget,
            block_cache: Arc::new(BlockCache::new(block_cache_bytes)),
            acct: Mutex::new(acct),
            ticks: Mutex::new(ticks),
        };
        *self.spill.write() = Some(Arc::new(state));
        self.enforce_budget()?;
        if let Some(s) = self.spill_state() {
            s.note_high_water();
        }
        Ok(())
    }

    /// Whether out-of-core mode is enabled.
    pub fn spill_enabled(&self) -> bool {
        self.spill.read().is_some()
    }

    /// The configured memory budget, if spill is enabled.
    pub fn memory_budget(&self) -> Option<u64> {
        self.spill_state().map(|s| s.memory_budget)
    }

    /// Whether a region's payload currently lives on disk.
    pub fn is_spilled(&self, id: RegionId) -> bool {
        self.regions
            .read()
            .get(&id)
            .map(|r| matches!(r.res, Residency::Spilled(_)))
            .unwrap_or(false)
    }

    /// Host-side spill statistics (None when spill is disabled).
    pub fn spill_stats(&self) -> Option<SpillStats> {
        let s = self.spill_state()?;
        let a = *s.acct.lock();
        Some(SpillStats {
            resident_bytes: a.resident_bytes,
            resident_high_water: a.high_water,
            demotions: a.demotions,
            fault_ins: a.fault_ins,
            spilled_regions: a.spilled_regions,
            spilled_raw_bytes: a.spilled_raw_bytes,
            spilled_comp_bytes: a.spilled_comp_bytes,
            block_cache: s.block_cache.stats(),
            block_cache_bytes: s.block_cache.used_bytes(),
        })
    }

    /// A block-granular read handle for a spilled typed region, or `None`
    /// when the region is resident, raw, missing, or spill is disabled.
    /// Readers that can stream (interval scans) use this to touch only
    /// the blocks they need; everything else faults the region in whole.
    pub fn cold_region(&self, id: RegionId) -> Option<ColdRegion> {
        let s = self.spill_state()?;
        let handle = {
            let map = self.regions.read();
            match &map.get(&id)?.res {
                Residency::Spilled(h) => h.clone(),
                Residency::Resident(_) => return None,
            }
        };
        let ColdKind::Typed { ty, elems, block_elems } = handle.kind else {
            return None;
        };
        self.touch(id);
        Some(ColdRegion {
            id,
            path: handle.path,
            ty,
            elems,
            block_elems,
            raw_bytes: handle.raw_bytes,
            cache: Arc::clone(&s.block_cache),
            reader: Arc::new(Mutex::new(None)),
        })
    }

    /// Demote resident sealed regions (least-recently-used first) until
    /// the resident footprint fits the budget or nothing more is
    /// demotable. Returns the number of regions demoted. No epoch bump:
    /// demotion is physically real but changes no readable bytes.
    pub fn enforce_budget(&self) -> PdcResult<u64> {
        let Some(s) = self.spill_state() else {
            return Ok(0);
        };
        let mut demoted = 0u64;
        loop {
            if s.acct.lock().resident_bytes <= s.memory_budget {
                break;
            }
            let victim = {
                let map = self.regions.read();
                let sealed = self.sealed.read();
                let quar = self.quarantine.read();
                let ticks = s.ticks.lock();
                let mut best: Option<(u64, RegionId)> = None;
                for (id, r) in map.iter() {
                    if !matches!(r.res, Residency::Resident(_))
                        || r.pristine.is_some()
                        || r.size_bytes() == 0
                        || !sealed.contains(id)
                        || quar.contains(id)
                    {
                        continue;
                    }
                    let t = ticks.last_use.get(id).copied().unwrap_or(0);
                    if best.is_none_or(|b| (t, *id) < b) {
                        best = Some((t, *id));
                    }
                }
                best.map(|(_, id)| id)
            };
            let Some(victim) = victim else { break };
            if self.demote(victim, &s)? {
                demoted += 1;
            } else {
                break; // raced away; don't spin
            }
        }
        Ok(demoted)
    }

    /// Demote one region to its block-compressed spill file. Only sealed,
    /// unquarantined, pristine-free resident regions are eligible.
    fn demote(&self, id: RegionId, s: &SpillState) -> PdcResult<bool> {
        // Snapshot without holding the write lock across file IO.
        let (payload, checksum) = {
            let map = self.regions.read();
            let Some(r) = map.get(&id) else { return Ok(false) };
            match &r.res {
                Residency::Resident(p) if r.pristine.is_none() => (p.clone(), r.checksum),
                _ => return Ok(false),
            }
        };
        if !self.is_sealed(id) || self.is_quarantined(id) || payload.size_bytes() == 0 {
            return Ok(false);
        }
        let path = s.dir.join(format!("r_{:016x}_{:08x}.pbf", id.object.raw(), id.index));
        let (meta, kind) = match &payload {
            StoredPayload::Typed(v) => (
                blockfile::write_typed(&path, v, blockfile::DEFAULT_BLOCK_ELEMS)?,
                ColdKind::Typed {
                    ty: v.pdc_type(),
                    elems: v.len() as u64,
                    block_elems: blockfile::DEFAULT_BLOCK_ELEMS,
                },
            ),
            StoredPayload::Raw(b) => {
                (blockfile::write_raw(&path, b, blockfile::DEFAULT_BLOCK_ELEMS)?, ColdKind::Raw)
            }
        };
        let handle = ColdHandle { path, kind, raw_bytes: meta.raw_bytes, comp_bytes: meta.comp_bytes };
        let mut map = self.regions.write();
        let still_clean = map.get(&id).is_some_and(|r| {
            matches!(r.res, Residency::Resident(_)) && r.pristine.is_none() && r.checksum == checksum
        });
        if !still_clean {
            drop(map);
            let _ = std::fs::remove_file(&handle.path);
            return Ok(false);
        }
        let r = map.get_mut(&id).expect("checked above");
        let freed = r.size_bytes();
        let (raw, comp) = (handle.raw_bytes, handle.comp_bytes);
        r.res = Residency::Spilled(handle);
        drop(map);
        s.sub_resident(freed);
        let mut a = s.acct.lock();
        a.demotions += 1;
        a.spilled_regions += 1;
        a.spilled_raw_bytes += raw;
        a.spilled_comp_bytes += comp;
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdc_types::ObjectId;

    fn rid(o: u64, i: u32) -> RegionId {
        RegionId::new(ObjectId(o), i)
    }

    #[test]
    fn put_get_roundtrip_typed() {
        let store = ObjectStore::new(8);
        let v: TypedVec = vec![1.0f32, 2.0, 3.0].into();
        store.put(rid(1, 0), StoredPayload::Typed(Arc::new(v.clone())), StorageTier::Pfs);
        let got = store.get_typed(rid(1, 0)).unwrap();
        assert_eq!(&*got, &v);
        let (_, tier) = store.get(rid(1, 0)).unwrap();
        assert_eq!(tier, StorageTier::Pfs);
    }

    #[test]
    fn put_get_roundtrip_raw() {
        let store = ObjectStore::new(8);
        store.put(rid(2, 5), StoredPayload::Raw(Bytes::from_static(b"abc")), StorageTier::Pfs);
        assert_eq!(store.get_raw(rid(2, 5)).unwrap(), Bytes::from_static(b"abc"));
    }

    #[test]
    fn wrong_kind_is_an_error() {
        let store = ObjectStore::new(8);
        store.put(rid(1, 0), StoredPayload::Raw(Bytes::from_static(b"x")), StorageTier::Pfs);
        assert!(store.get_typed(rid(1, 0)).is_err());
        let v: TypedVec = vec![1i32].into();
        store.put(rid(1, 1), StoredPayload::Typed(Arc::new(v)), StorageTier::Dram);
        assert!(store.get_raw(rid(1, 1)).is_err());
    }

    #[test]
    fn missing_region_is_an_error() {
        let store = ObjectStore::new(8);
        assert!(matches!(store.get(rid(9, 9)), Err(PdcError::NoSuchRegion(_))));
        assert!(!store.contains(rid(9, 9)));
    }

    #[test]
    fn placement_spreads_across_osts() {
        let store = ObjectStore::new(4);
        for i in 0..16 {
            let v: TypedVec = vec![0.0f32].into();
            store.put(rid(1, i), StoredPayload::Typed(Arc::new(v)), StorageTier::Pfs);
        }
        let mut used = std::collections::HashSet::new();
        for i in 0..16 {
            used.insert(store.ost_of(rid(1, i)).unwrap());
        }
        assert_eq!(used.len(), 4, "round-robin should hit every OST");
    }

    #[test]
    fn migrate_changes_tier() {
        let store = ObjectStore::new(2);
        let v: TypedVec = vec![1.0f64; 100].into();
        store.put(rid(3, 0), StoredPayload::Typed(Arc::new(v)), StorageTier::Pfs);
        let moved = store.migrate(rid(3, 0), StorageTier::Dram).unwrap();
        assert_eq!(moved, 800);
        assert_eq!(store.get(rid(3, 0)).unwrap().1, StorageTier::Dram);
    }

    #[test]
    fn bytes_by_tier_accounts() {
        let store = ObjectStore::new(2);
        let v: TypedVec = vec![0u32; 10].into(); // 40 bytes
        store.put(rid(1, 0), StoredPayload::Typed(Arc::new(v.clone())), StorageTier::Pfs);
        store.put(rid(1, 1), StoredPayload::Typed(Arc::new(v)), StorageTier::Dram);
        store.put(rid(1, 2), StoredPayload::Raw(Bytes::from(vec![0u8; 7])), StorageTier::Pfs);
        let by_tier = store.bytes_by_tier();
        assert_eq!(by_tier[&StorageTier::Pfs], 47);
        assert_eq!(by_tier[&StorageTier::Dram], 40);
        assert_eq!(store.num_regions(), 3);
    }

    #[test]
    fn remove_region() {
        let store = ObjectStore::new(2);
        let v: TypedVec = vec![0u32; 1].into();
        store.put(rid(1, 0), StoredPayload::Typed(Arc::new(v)), StorageTier::Pfs);
        assert!(store.remove(rid(1, 0)));
        assert!(!store.remove(rid(1, 0)));
    }

    #[test]
    fn corrupt_get_reports_tier_and_quarantines() {
        let store = ObjectStore::new(2);
        let v: TypedVec = vec![1.0f64; 16].into();
        store.put(rid(4, 1), StoredPayload::Typed(Arc::new(v)), StorageTier::BurstBuffer);
        assert!(store.corrupt(rid(4, 1), 7).unwrap());
        match store.get(rid(4, 1)) {
            Err(PdcError::CorruptRegion { region, tier }) => {
                assert_eq!(region, rid(4, 1));
                assert_eq!(tier, "burst-buffer");
            }
            other => panic!("expected CorruptRegion, got {other:?}"),
        }
        assert!(store.is_quarantined(rid(4, 1)));
        assert_eq!(store.quarantined(), vec![rid(4, 1)]);
        // Migration must refuse to spread the corrupt copy.
        assert!(matches!(
            store.migrate(rid(4, 1), StorageTier::Dram),
            Err(PdcError::CorruptRegion { .. })
        ));
    }

    #[test]
    fn repair_restores_pristine_copy() {
        let store = ObjectStore::new(2);
        let v: TypedVec = vec![3.5f32; 8].into();
        store.put(rid(5, 0), StoredPayload::Typed(Arc::new(v.clone())), StorageTier::Pfs);
        store.corrupt(rid(5, 0), 99).unwrap();
        assert!(store.get(rid(5, 0)).is_err());
        let bytes = store.repair(rid(5, 0)).unwrap();
        assert_eq!(bytes, 32);
        assert!(!store.is_quarantined(rid(5, 0)));
        assert_eq!(&*store.get_typed(rid(5, 0)).unwrap(), &v);
    }

    #[test]
    fn repair_without_pristine_is_typed_error() {
        let store = ObjectStore::new(2);
        let v: TypedVec = vec![0i64; 4].into();
        store.put(rid(6, 0), StoredPayload::Typed(Arc::new(v)), StorageTier::Pfs);
        assert!(matches!(store.repair(rid(6, 0)), Err(PdcError::CorruptRegion { .. })));
    }

    #[test]
    fn corrupt_raw_payload_detected() {
        let store = ObjectStore::new(2);
        store.put(rid(7, 2), StoredPayload::Raw(Bytes::from(vec![9u8; 64])), StorageTier::Pfs);
        assert!(store.corrupt(rid(7, 2), 1).unwrap());
        assert!(matches!(store.get_raw(rid(7, 2)), Err(PdcError::CorruptRegion { .. })));
        store.repair(rid(7, 2)).unwrap();
        assert_eq!(store.get_raw(rid(7, 2)).unwrap(), Bytes::from(vec![9u8; 64]));
    }

    #[test]
    fn corruption_site_is_seed_deterministic() {
        let make = |seed: u64| {
            let store = ObjectStore::new(2);
            let v: TypedVec = (0..128u32).collect::<Vec<u32>>().into();
            store.put(rid(8, 0), StoredPayload::Typed(Arc::new(v)), StorageTier::Pfs);
            store.corrupt(rid(8, 0), seed).unwrap();
            let map = store.regions.read();
            match &map[&rid(8, 0)].res {
                Residency::Resident(p) => payload_checksum(p),
                Residency::Spilled(_) => unreachable!("spill is not enabled"),
            }
        };
        assert_eq!(make(42), make(42));
        assert_ne!(make(42), make(43));
    }

    #[test]
    fn put_and_remove_clear_quarantine() {
        let store = ObjectStore::new(2);
        let v: TypedVec = vec![1u32; 8].into();
        store.put(rid(9, 0), StoredPayload::Typed(Arc::new(v.clone())), StorageTier::Pfs);
        store.corrupt(rid(9, 0), 3).unwrap();
        let _ = store.get(rid(9, 0));
        assert!(store.is_quarantined(rid(9, 0)));
        store.put(rid(9, 0), StoredPayload::Typed(Arc::new(v)), StorageTier::Pfs);
        assert!(!store.is_quarantined(rid(9, 0)), "rewrite must clear quarantine");
        store.corrupt(rid(9, 0), 3).unwrap();
        let _ = store.get(rid(9, 0));
        assert!(store.remove(rid(9, 0)));
        assert!(!store.is_quarantined(rid(9, 0)), "remove must clear quarantine");
    }

    #[test]
    fn epoch_advances_on_every_data_mutation() {
        let store = ObjectStore::new(2);
        let v: TypedVec = vec![1.0f32; 8].into();
        let e0 = store.epoch();
        store.put(rid(11, 0), StoredPayload::Typed(Arc::new(v)), StorageTier::Pfs);
        let e1 = store.epoch();
        assert!(e1 > e0, "put must bump");
        store.migrate(rid(11, 0), StorageTier::Dram).unwrap();
        let e2 = store.epoch();
        assert!(e2 > e1, "migrate must bump");
        store.corrupt(rid(11, 0), 5).unwrap();
        let e3 = store.epoch();
        assert!(e3 > e2, "corrupt must bump");
        store.repair(rid(11, 0)).unwrap();
        let e4 = store.epoch();
        assert!(e4 > e3, "repair must bump");
        store.remove(rid(11, 0));
        let e5 = store.epoch();
        assert!(e5 > e4, "remove must bump");
        assert_eq!(store.epoch(), e5, "reads must not bump");
        store.bump_epoch();
        assert_eq!(store.epoch(), e5 + 1);
        // removing a missing region is a no-op
        assert!(!store.remove(rid(11, 0)));
        assert_eq!(store.epoch(), e5 + 1);
    }

    #[test]
    fn append_grows_payload_and_bumps_epoch() {
        let store = ObjectStore::new(2);
        let v: TypedVec = vec![1.0f64, 2.0, 3.0].into();
        store.put(rid(12, 0), StoredPayload::Typed(Arc::new(v)), StorageTier::Pfs);
        let e0 = store.epoch();
        let delta: TypedVec = vec![4.0f64, 5.0].into();
        assert_eq!(store.append_typed(rid(12, 0), &delta).unwrap(), 5);
        assert!(store.epoch() > e0, "append must bump the epoch");
        let got = store.get_typed(rid(12, 0)).unwrap();
        assert_eq!(got.len(), 5);
        assert_eq!(got.to_f64_vec(), vec![1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn append_preserves_prefix_bytes() {
        let store = ObjectStore::new(2);
        let v: TypedVec = vec![9u32, 8, 7].into();
        store.put(rid(12, 1), StoredPayload::Typed(Arc::new(v.clone())), StorageTier::Pfs);
        let delta: TypedVec = vec![6u32].into();
        store.append_typed(rid(12, 1), &delta).unwrap();
        let got = store.get_typed(rid(12, 1)).unwrap();
        match (&*got, &v) {
            (TypedVec::UInt32(grown), TypedVec::UInt32(orig)) => {
                assert_eq!(&grown[..3], &orig[..]);
                assert_eq!(grown[3], 6);
            }
            _ => panic!("unexpected variants"),
        }
    }

    #[test]
    fn append_refuses_sealed_missing_raw_and_mismatched() {
        let store = ObjectStore::new(2);
        let delta: TypedVec = vec![1.0f64].into();
        // missing
        assert!(matches!(store.append_typed(rid(13, 0), &delta), Err(PdcError::NoSuchRegion(_))));
        // sealed
        let v: TypedVec = vec![1.0f64; 4].into();
        store.put(rid(13, 0), StoredPayload::Typed(Arc::new(v)), StorageTier::Pfs);
        store.seal(rid(13, 0)).unwrap();
        assert!(store.is_sealed(rid(13, 0)));
        assert!(matches!(store.append_typed(rid(13, 0), &delta), Err(PdcError::Storage(_))));
        // raw payload
        store.put(rid(13, 1), StoredPayload::Raw(Bytes::from_static(b"idx")), StorageTier::Pfs);
        assert!(matches!(store.append_typed(rid(13, 1), &delta), Err(PdcError::Storage(_))));
        // element-type mismatch
        let ints: TypedVec = vec![1i32; 4].into();
        store.put(rid(13, 2), StoredPayload::Typed(Arc::new(ints)), StorageTier::Pfs);
        assert!(matches!(store.append_typed(rid(13, 2), &delta), Err(PdcError::Storage(_))));
        // sealing a missing region is a typed error
        assert!(matches!(store.seal(rid(13, 9)), Err(PdcError::NoSuchRegion(_))));
    }

    #[test]
    fn append_to_corrupt_region_quarantines() {
        let store = ObjectStore::new(2);
        let v: TypedVec = vec![1.0f64; 16].into();
        store.put(rid(14, 0), StoredPayload::Typed(Arc::new(v)), StorageTier::Pfs);
        store.corrupt(rid(14, 0), 11).unwrap();
        let delta: TypedVec = vec![2.0f64].into();
        assert!(matches!(
            store.append_typed(rid(14, 0), &delta),
            Err(PdcError::CorruptRegion { .. })
        ));
        assert!(store.is_quarantined(rid(14, 0)));
    }

    #[test]
    fn put_and_remove_clear_seal_mark() {
        let store = ObjectStore::new(2);
        let v: TypedVec = vec![1u64; 2].into();
        store.put(rid(15, 0), StoredPayload::Typed(Arc::new(v.clone())), StorageTier::Pfs);
        store.seal(rid(15, 0)).unwrap();
        store.put(rid(15, 0), StoredPayload::Typed(Arc::new(v.clone())), StorageTier::Pfs);
        assert!(!store.is_sealed(rid(15, 0)), "rewrite starts an open region");
        store.seal(rid(15, 0)).unwrap();
        store.remove(rid(15, 0));
        store.put(rid(15, 0), StoredPayload::Typed(Arc::new(v)), StorageTier::Pfs);
        assert!(!store.is_sealed(rid(15, 0)), "remove must clear the seal");
    }

    #[test]
    fn empty_payload_cannot_be_corrupted() {
        let store = ObjectStore::new(2);
        store.put(rid(10, 0), StoredPayload::Raw(Bytes::new()), StorageTier::Pfs);
        assert!(!store.corrupt(rid(10, 0), 5).unwrap());
        assert!(store.get_raw(rid(10, 0)).is_ok());
    }

    // ------------------------------------------------------------------
    // Out-of-core spill
    // ------------------------------------------------------------------

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let thread = std::thread::current()
            .name()
            .unwrap_or("t")
            .replace(|c: char| !c.is_ascii_alphanumeric(), "_");
        let d = std::env::temp_dir().join(format!("pdc_store_{tag}_{}_{thread}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn seeded_floats(n: usize) -> TypedVec {
        (0..n).map(|i| (i as f32 * 0.25).sin()).collect::<Vec<f32>>().into()
    }

    #[test]
    fn sealed_regions_demote_under_budget_and_fault_back_in() {
        let dir = tmp_dir("demote");
        let store = ObjectStore::new(4);
        store.configure_spill(&dir, 10_000, 1 << 20).unwrap();
        // Four sealed 40 KB regions against a 10 KB budget.
        let mut originals = Vec::new();
        for i in 0..4 {
            let v = seeded_floats(10_000);
            originals.push(v.clone());
            store.put(rid(1, i), StoredPayload::Typed(Arc::new(v)), StorageTier::Pfs);
            store.seal(rid(1, i)).unwrap();
        }
        let stats = store.spill_stats().unwrap();
        assert!(stats.resident_bytes <= 10_000, "resident {} > budget", stats.resident_bytes);
        assert!(stats.resident_high_water <= 10_000);
        assert!(stats.demotions >= 3, "expected ≥3 demotions, got {}", stats.demotions);
        assert_eq!(stats.spilled_regions, stats.demotions);
        assert!(stats.spilled_comp_bytes > 0);
        // Reads still verify and return the exact payload.
        for i in 0..4 {
            let got = store.get_typed(rid(1, i)).unwrap();
            assert_eq!(&*got, &originals[i as usize]);
        }
        assert!(store.spill_stats().unwrap().fault_ins >= 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unsealed_regions_never_demote() {
        let dir = tmp_dir("unsealed");
        let store = ObjectStore::new(2);
        store.configure_spill(&dir, 100, 1 << 20).unwrap();
        store.put(rid(2, 0), StoredPayload::Typed(Arc::new(seeded_floats(1000))), StorageTier::Pfs);
        assert!(!store.is_spilled(rid(2, 0)));
        // Over budget, but the only region is unsealed: nothing to demote.
        assert!(store.spill_stats().unwrap().resident_bytes > 100);
        assert_eq!(store.spill_stats().unwrap().demotions, 0);
        // Appends still work (spilled regions would refuse).
        let delta: TypedVec = vec![1.0f32].into();
        store.append_typed(rid(2, 0), &delta).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lru_order_picks_least_recently_used_victim() {
        let dir = tmp_dir("lru");
        let store = ObjectStore::new(2);
        // Budget fits exactly three 400-byte regions.
        store.configure_spill(&dir, 1200, 1 << 20).unwrap();
        for i in 0..3 {
            store.put(rid(3, i), StoredPayload::Typed(Arc::new(seeded_floats(100))), StorageTier::Pfs);
            store.seal(rid(3, i)).unwrap();
        }
        // Touch 0 so region 1 becomes the LRU.
        store.get(rid(3, 0)).unwrap();
        // A fourth region pushes resident to 1600: exactly one demotion.
        store.put(rid(3, 3), StoredPayload::Typed(Arc::new(seeded_floats(100))), StorageTier::Pfs);
        store.seal(rid(3, 3)).unwrap();
        assert!(store.is_spilled(rid(3, 1)), "LRU region must spill first");
        assert!(!store.is_spilled(rid(3, 0)));
        assert!(!store.is_spilled(rid(3, 2)));
        assert!(!store.is_spilled(rid(3, 3)));
        assert_eq!(store.spill_stats().unwrap().demotions, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn spilled_corrupt_detects_quarantines_and_repairs() {
        let dir = tmp_dir("corrupt");
        let store = ObjectStore::new(2);
        store.configure_spill(&dir, 0, 1 << 20).unwrap();
        let v = seeded_floats(5_000);
        store.put(rid(4, 0), StoredPayload::Typed(Arc::new(v.clone())), StorageTier::Pfs);
        store.seal(rid(4, 0)).unwrap();
        assert!(store.is_spilled(rid(4, 0)));
        assert!(store.corrupt(rid(4, 0), 77).unwrap());
        match store.get(rid(4, 0)) {
            Err(PdcError::CorruptRegion { region, .. }) => assert_eq!(region, rid(4, 0)),
            other => panic!("expected CorruptRegion, got {other:?}"),
        }
        assert!(store.is_quarantined(rid(4, 0)));
        // Repair restores from the sibling file and reports the
        // uncompressed byte count, exactly like the resident path.
        let bytes = store.repair(rid(4, 0)).unwrap();
        assert_eq!(bytes, v.size_bytes());
        assert!(!store.is_quarantined(rid(4, 0)));
        assert!(store.is_spilled(rid(4, 0)), "repair keeps the region cold");
        assert_eq!(&*store.get_typed(rid(4, 0)).unwrap(), &v);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn spilled_corrupt_site_is_seed_deterministic_and_repair_without_corruption_errors() {
        let dir = tmp_dir("corrupt_det");
        let store = ObjectStore::new(2);
        store.configure_spill(&dir, 0, 1 << 20).unwrap();
        store.put(rid(5, 0), StoredPayload::Typed(Arc::new(seeded_floats(1000))), StorageTier::Pfs);
        store.seal(rid(5, 0)).unwrap();
        // repair with no corruption marker is a typed error
        assert!(matches!(store.repair(rid(5, 0)), Err(PdcError::CorruptRegion { .. })));
        assert!(store.corrupt(rid(5, 0), 42).unwrap());
        assert!(store.get(rid(5, 0)).is_err());
        store.repair(rid(5, 0)).unwrap();
        assert!(store.get(rid(5, 0)).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn spilled_raw_region_roundtrips_and_repairs() {
        let dir = tmp_dir("raw");
        let store = ObjectStore::new(2);
        store.configure_spill(&dir, 0, 1 << 20).unwrap();
        let bytes: Vec<u8> = (0..4096u32).map(|i| (i % 7) as u8).collect();
        store.put(rid(6, 0), StoredPayload::Raw(Bytes::from(bytes.clone())), StorageTier::Pfs);
        store.seal(rid(6, 0)).unwrap();
        assert!(store.is_spilled(rid(6, 0)));
        assert_eq!(store.get_raw(rid(6, 0)).unwrap(), Bytes::from(bytes.clone()));
        assert!(store.corrupt(rid(6, 0), 9).unwrap());
        assert!(matches!(store.get_raw(rid(6, 0)), Err(PdcError::CorruptRegion { .. })));
        store.repair(rid(6, 0)).unwrap();
        assert_eq!(store.get_raw(rid(6, 0)).unwrap(), Bytes::from(bytes));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cold_region_streams_blocks_through_cache() {
        let dir = tmp_dir("cold");
        let store = ObjectStore::new(2);
        store.configure_spill(&dir, 0, 1 << 20).unwrap();
        let n = blockfile::DEFAULT_BLOCK_ELEMS as usize * 2 + 100; // 3 blocks
        let v = seeded_floats(n);
        store.put(rid(7, 0), StoredPayload::Typed(Arc::new(v.clone())), StorageTier::Pfs);
        store.seal(rid(7, 0)).unwrap();
        let cold = store.cold_region(rid(7, 0)).expect("spilled typed region");
        assert_eq!(cold.len(), n as u64);
        assert_eq!(cold.n_blocks(), 3);
        assert_eq!(cold.pdc_type(), PdcType::Float);
        // Interval → block mapping.
        assert_eq!(cold.blocks_overlapping(0, 10), 0..1);
        let be = blockfile::DEFAULT_BLOCK_ELEMS as u64;
        assert_eq!(cold.blocks_overlapping(be - 1, be + 1), 0..2);
        assert_eq!(cold.blocks_overlapping(2 * be, n as u64), 2..3);
        assert_eq!(cold.blocks_overlapping(5, 5), 0..0);
        // Block contents match the original slice; second read hits cache.
        let b1 = cold.read_block(1).unwrap();
        let (s1, e1) = cold.block_span(1);
        assert_eq!(b1.len() as u64, e1 - s1);
        assert_eq!(b1.to_f64_vec(), v.slice(s1 as usize, (e1 - s1) as usize).to_f64_vec());
        let before = store.spill_stats().unwrap().block_cache.hits;
        let _ = cold.read_block(1).unwrap();
        assert_eq!(store.spill_stats().unwrap().block_cache.hits, before + 1);
        // Resident / raw / missing regions have no cold handle.
        store.put(rid(7, 1), StoredPayload::Raw(Bytes::from_static(b"idx")), StorageTier::Pfs);
        assert!(store.cold_region(rid(7, 1)).is_none());
        assert!(store.cold_region(rid(9, 9)).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn put_and_remove_clean_up_spill_files() {
        let dir = tmp_dir("cleanup");
        let store = ObjectStore::new(2);
        store.configure_spill(&dir, 0, 1 << 20).unwrap();
        let v = seeded_floats(1000);
        store.put(rid(8, 0), StoredPayload::Typed(Arc::new(v.clone())), StorageTier::Pfs);
        store.seal(rid(8, 0)).unwrap();
        assert!(store.is_spilled(rid(8, 0)));
        let files = || std::fs::read_dir(&dir).map(|d| d.count()).unwrap_or(0);
        assert_eq!(files(), 1);
        // Rewrite: spill file deleted, region resident again, then respills on seal.
        store.put(rid(8, 0), StoredPayload::Typed(Arc::new(v.clone())), StorageTier::Pfs);
        assert!(!store.is_spilled(rid(8, 0)));
        assert_eq!(files(), 0);
        store.seal(rid(8, 0)).unwrap();
        assert_eq!(files(), 1);
        // Remove: file and accounting gone.
        assert!(store.remove(rid(8, 0)));
        assert_eq!(files(), 0);
        let stats = store.spill_stats().unwrap();
        assert_eq!(stats.spilled_regions, 0);
        assert_eq!(stats.spilled_raw_bytes, 0);
        assert_eq!(stats.resident_bytes, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn spill_compresses_and_migrate_verifies_cold_payloads() {
        let dir = tmp_dir("ratio");
        let store = ObjectStore::new(2);
        store.configure_spill(&dir, 0, 1 << 20).unwrap();
        // Monotone ints delta-pack far below raw size.
        let v: TypedVec = (0..100_000i64).collect::<Vec<i64>>().into();
        store.put(rid(9, 0), StoredPayload::Typed(Arc::new(v)), StorageTier::Pfs);
        store.seal(rid(9, 0)).unwrap();
        let stats = store.spill_stats().unwrap();
        assert!(
            stats.compression_ratio() > 4.0,
            "monotone i64 should compress well, got {:.2}",
            stats.compression_ratio()
        );
        let moved = store.migrate(rid(9, 0), StorageTier::Dram).unwrap();
        assert_eq!(moved, 800_000);
        assert_eq!(store.get(rid(9, 0)).unwrap().1, StorageTier::Dram);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
