//! FastBit-style precision binning.
//!
//! FastBit's `precision=p` binning option places bin boundaries at numbers
//! with `p` significant decimal digits. The decisive property for query
//! performance: a query constant written with at most `p` significant
//! digits (the paper's `2.1 < Energy < 2.2`, `100 < x < 200`, ...) falls
//! **exactly on a bin boundary**, so the range query decomposes into a
//! union of whole bins with no raw-data candidate check.
//!
//! We generate boundaries as multiples of `10^(floor(log10(range)) - p + 1)`
//! spanning the data range, i.e. the uniform grid of `p`-significant-digit
//! numbers at the scale of the data, capped at [`BinningConfig::max_bins`]
//! (falling back to a uniform grid when the cap binds).

use serde::{Deserialize, Serialize};

/// Binning parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct BinningConfig {
    /// Number of significant decimal digits for bin boundaries; the paper
    /// uses `precision = 2`.
    pub precision: u32,
    /// Upper bound on the number of bins per region index.
    pub max_bins: usize,
}

impl Default for BinningConfig {
    fn default() -> Self {
        Self { precision: 2, max_bins: 4096 }
    }
}

/// Generate ascending bin edges covering `[min, max]` per the precision
/// rule. The returned vector has at least 2 edges (1 bin); the first edge
/// is `<= min` and the last edge is `> max` so every value falls in
/// exactly one half-open bin `[e_k, e_{k+1})`.
pub fn precision_edges(min: f64, max: f64, cfg: &BinningConfig) -> Vec<f64> {
    assert!(min.is_finite() && max.is_finite() && min <= max, "bad range [{min}, {max}]");
    // Degenerate (constant) data still gets a real bin around the value.
    let range = (max - min).max(max.abs().max(1.0) * 1e-7);
    // Step exponent: power of ten such that the range spans about
    // 10^(precision) steps.
    let mut exp10 = (range.log10().floor() as i32) - (cfg.precision as i32 - 1);
    // Respect the cap by growing the step decade by decade.
    while range / pow10(exp10) > (cfg.max_bins as f64 - 2.0) {
        exp10 += 1;
    }
    // Edges are the integer multiples of 10^exp10 covering [min, max].
    // Each edge is computed as one correctly rounded operation on exactly
    // representable integers (n * 10^e, or n / 10^-e), so an edge equals
    // the f64 a user gets from writing the same decimal in a query — the
    // property that lets precision-aligned queries skip candidate checks.
    let edge_at = |n: i64| -> f64 {
        if exp10 >= 0 {
            n as f64 * pow10(exp10)
        } else {
            n as f64 / pow10(-exp10)
        }
    };
    let step = pow10(exp10);
    let first_n = (min / step).floor() as i64;
    let mut edges = Vec::new();
    let mut n = first_n;
    // Guard the first edge: floating floor may land one step high.
    while edge_at(n) > min {
        n -= 1;
    }
    loop {
        let e = edge_at(n);
        edges.push(e);
        if e > max {
            break;
        }
        n += 1;
    }
    if edges.len() < 2 {
        edges.push(edge_at(n + 1));
    }
    edges
}

/// `10^e` for moderate exponents (exact up to `10^22`).
fn pow10(e: i32) -> f64 {
    10f64.powi(e)
}

/// Locate the bin containing `v`: the index `k` with
/// `edges[k] <= v < edges[k+1]`, clamped into range so every finite value
/// maps somewhere (values at or beyond the last edge go to the last bin).
pub fn bin_of(edges: &[f64], v: f64) -> usize {
    debug_assert!(edges.len() >= 2);
    match edges.binary_search_by(|e| e.partial_cmp(&v).unwrap()) {
        Ok(k) => k.min(edges.len() - 2),
        Err(0) => 0,
        Err(k) => (k - 1).min(edges.len() - 2),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edges_cover_range() {
        let cfg = BinningConfig::default();
        let edges = precision_edges(0.0, 6.3, &cfg);
        assert!(edges[0] <= 0.0);
        assert!(*edges.last().unwrap() > 6.3);
        assert!(edges.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn precision2_on_unit_scale_gives_tenth_steps() {
        let cfg = BinningConfig::default();
        let edges = precision_edges(0.0, 6.3, &cfg);
        // Range ~6.3 -> step 0.1; the paper's energy bounds 2.1, 2.2, 3.5,
        // 3.6 must all fall exactly on an edge.
        for target in [2.1, 2.2, 3.5, 3.6, 2.0, 1.3] {
            assert!(
                edges.iter().any(|&e| (e - target).abs() < 1e-9),
                "edge {target} missing; step seems wrong"
            );
        }
        assert!(edges.len() > 50 && edges.len() < 80, "got {} edges", edges.len());
    }

    #[test]
    fn precision2_on_hundreds_scale() {
        let cfg = BinningConfig::default();
        let edges = precision_edges(0.0, 332.0, &cfg);
        // Range ~332 -> step 10; paper's x bounds 100, 140, 200 align.
        for target in [100.0, 140.0, 200.0] {
            assert!(edges.iter().any(|&e| (e - target).abs() < 1e-9), "{target}");
        }
    }

    #[test]
    fn negative_ranges_work() {
        let cfg = BinningConfig::default();
        let edges = precision_edges(-125.0, 125.0, &cfg);
        assert!(edges[0] <= -125.0);
        assert!(*edges.last().unwrap() > 125.0);
        // -90 and 0 (paper's y bounds) align on the step-10 grid
        for target in [-90.0, 0.0] {
            assert!(edges.iter().any(|&e| (e - target).abs() < 1e-9), "{target}");
        }
    }

    #[test]
    fn max_bins_cap_is_respected() {
        let cfg = BinningConfig { precision: 6, max_bins: 100 };
        let edges = precision_edges(0.0, 1.0, &cfg);
        assert!(edges.len() <= 101, "{} edges", edges.len());
        assert!(*edges.last().unwrap() > 1.0);
    }

    #[test]
    fn constant_data_single_bin() {
        let cfg = BinningConfig::default();
        let edges = precision_edges(5.0, 5.0, &cfg);
        assert!(edges.len() >= 2);
        assert!(edges[0] <= 5.0 && *edges.last().unwrap() > 5.0);
    }

    #[test]
    fn bin_of_places_values_correctly() {
        let edges = vec![0.0, 1.0, 2.0, 3.0];
        assert_eq!(bin_of(&edges, 0.0), 0);
        assert_eq!(bin_of(&edges, 0.5), 0);
        assert_eq!(bin_of(&edges, 1.0), 1);
        assert_eq!(bin_of(&edges, 2.999), 2);
        // clamped extremes
        assert_eq!(bin_of(&edges, -5.0), 0);
        assert_eq!(bin_of(&edges, 3.0), 2);
        assert_eq!(bin_of(&edges, 99.0), 2);
    }

    #[test]
    fn every_value_in_range_lands_in_its_bin() {
        let cfg = BinningConfig::default();
        let edges = precision_edges(0.0, 10.0, &cfg);
        for i in 0..1000 {
            let v = i as f64 * 0.01;
            let k = bin_of(&edges, v);
            assert!(edges[k] <= v && v < edges[k + 1], "v={v} k={k}");
        }
    }
}
