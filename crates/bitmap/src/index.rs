//! The binned bitmap index: one WAH bitmap per value bin.
//!
//! A range query over the index decomposes into:
//!
//! * **sure hits** — the OR of the bitmaps of bins fully covered by the
//!   query interval;
//! * **candidate bins** — bins only partially overlapped by the interval
//!   (possible only when a query constant does not fall on a bin
//!   boundary); their members must be checked against the raw data.
//!
//! With the paper's `precision = 2` binning, the evaluated queries align
//! with bin boundaries and the candidate set is empty — which is exactly
//! why the paper can answer `PDC-HI` queries "without the need to read the
//! region's data".

use crate::binning::{bin_of, precision_edges, BinningConfig};
use crate::wah::{WahBitVector, WahBuilder};

use bytes::{Buf, BufMut, Bytes, BytesMut};
use pdc_types::{Interval, PdcError, PdcResult, Selection};
use serde::{Deserialize, Serialize};

/// The representable-value grid of the indexed data. Bin edges are round
/// decimals in `f64`, but the indexed values come from a coarser grid
/// (f32 data widened to f64, or integers): knowing the grid lets the
/// query classifier prove that no value can exist between a query bound
/// and a bin edge — which is what makes the paper's precision-aligned
/// queries (written as C `float` constants!) run without candidate
/// checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ValueDomain {
    /// Values are arbitrary doubles.
    F64,
    /// Values are f32 widened to f64.
    F32,
    /// Values are integers (any width ≤ 53 bits, exact in f64).
    Integer,
}

impl ValueDomain {
    /// The smallest domain value `>= x`.
    pub fn ceil_value(self, x: f64) -> f64 {
        match self {
            ValueDomain::F64 => x,
            ValueDomain::Integer => x.ceil(),
            ValueDomain::F32 => {
                let f = x as f32; // round-to-nearest
                if (f as f64) >= x {
                    f as f64
                } else {
                    next_f32_up(f) as f64
                }
            }
        }
    }

    /// The largest domain value `<= x`.
    pub fn floor_value(self, x: f64) -> f64 {
        match self {
            ValueDomain::F64 => x,
            ValueDomain::Integer => x.floor(),
            ValueDomain::F32 => {
                let f = x as f32;
                if (f as f64) <= x {
                    f as f64
                } else {
                    next_f32_down(f) as f64
                }
            }
        }
    }
}

/// The next f32 strictly above `x`.
fn next_f32_up(x: f32) -> f32 {
    if x == f32::INFINITY {
        return x;
    }
    let bits = x.to_bits();
    f32::from_bits(if x >= 0.0 {
        if x == 0.0 { 1 } else { bits + 1 }
    } else {
        bits - 1
    })
}

/// The next f32 strictly below `x`.
fn next_f32_down(x: f32) -> f32 {
    -next_f32_up(-x)
}

/// Largest bin count for which index construction streams 64-element hit
/// masks into per-bin WAH builders (the flush sweeps every bin once per
/// 64 elements, so it must stay bounded); finer binnings collect per-bin
/// positions instead. Both paths produce identical indexes.
const MASK_BINNING_MAX_BINS: usize = 256;

/// A binned, WAH-compressed bitmap index over one region's values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BinnedBitmapIndex {
    edges: Vec<f64>,
    bitmaps: Vec<WahBitVector>,
    domain: ValueDomain,
    /// `edge_hits[k]` — whether any indexed value equals `edges[k]`
    /// exactly. Lets an *exclusive* query bound sitting on a bin edge
    /// still classify the bin as a sure hit when no value can be affected
    /// (the common case for f32-derived data vs. decimal edges).
    edge_hits: Vec<bool>,
    nbits: u64,
}

/// The result of evaluating a range query against the index.
#[derive(Debug, Clone)]
pub struct IndexAnswer {
    /// Elements guaranteed to match (from fully-covered bins).
    pub sure: Selection,
    /// Elements that *may* match (from partially-overlapped boundary
    /// bins); must be verified against the raw values.
    pub candidates: Selection,
}

impl IndexAnswer {
    /// Whether resolving this answer requires reading the raw data.
    pub fn needs_candidate_check(&self) -> bool {
        !self.candidates.is_empty()
    }

    /// Upper bound on the number of hits without a candidate check.
    pub fn upper_bound(&self) -> u64 {
        self.sure.count() + self.candidates.count()
    }

    /// Resolve candidates against raw values: keep the candidates whose
    /// value matches the interval and merge them with the sure hits.
    /// `value_at(i)` must return the i-th raw value of the indexed region.
    pub fn resolve(&self, interval: &Interval, value_at: impl Fn(u64) -> f64) -> Selection {
        if self.candidates.is_empty() {
            return self.sure.clone();
        }
        let confirmed = self.candidates.filter_coords(|c| interval.contains(value_at(c)));
        self.sure.union(&confirmed)
    }
}

impl BinnedBitmapIndex {
    /// Build an index over `values` with precision binning, assuming the
    /// `F64` value domain.
    pub fn build(values: &[f64], cfg: &BinningConfig) -> Option<BinnedBitmapIndex> {
        Self::build_with_domain(values, cfg, ValueDomain::F64)
    }

    /// Build with precision binning and an explicit value domain.
    pub fn build_with_domain(
        values: &[f64],
        cfg: &BinningConfig,
        domain: ValueDomain,
    ) -> Option<BinnedBitmapIndex> {
        if values.is_empty() {
            return None;
        }
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &v in values {
            if v < min {
                min = v;
            }
            if v > max {
                max = v;
            }
        }
        let edges = precision_edges(min, max, cfg);
        Some(Self::build_with_edges(values, edges, domain))
    }

    /// Build with explicit, ascending bin edges.
    pub fn build_with_edges(
        values: &[f64],
        edges: Vec<f64>,
        domain: ValueDomain,
    ) -> BinnedBitmapIndex {
        assert!(edges.len() >= 2, "need at least one bin");
        let nbins = edges.len() - 1;
        let n = values.len() as u64;
        // Values are assigned to exactly one bin (equality-encoded bins).
        let mut edge_hits = vec![false; edges.len()];
        let bin_mins: Vec<f64> = edges.iter().map(|&e| domain.ceil_value(e)).collect();
        let bitmaps = if nbins <= MASK_BINNING_MAX_BINS {
            // Mask path: accumulate a current 64-bit block per bin and
            // flush blocks straight into per-bin WAH builders
            // ([`WahBuilder::append_mask_bits`]) — no per-element position
            // vectors, no per-bool append. Only worthwhile while the
            // per-flush sweep over all bins stays cheap, hence the bin
            // count gate.
            let mut builders: Vec<WahBuilder> = (0..nbins).map(|_| WahBuilder::new()).collect();
            let mut current = vec![0u64; nbins];
            for (i, &v) in values.iter().enumerate() {
                let k = bin_of(&edges, v);
                current[k] |= 1 << (i % 64);
                if v == bin_mins[k] {
                    edge_hits[k] = true;
                } else if v == edges[k + 1] {
                    // only possible for the clamped last bin
                    edge_hits[k + 1] = true;
                }
                if i % 64 == 63 {
                    for (b, cur) in builders.iter_mut().zip(current.iter_mut()) {
                        b.append_mask_bits(*cur, 64);
                        *cur = 0;
                    }
                }
            }
            let tail = (values.len() % 64) as u32;
            if tail > 0 {
                for (b, cur) in builders.iter_mut().zip(current.iter()) {
                    b.append_mask_bits(*cur, tail);
                }
            }
            builders.into_iter().map(WahBuilder::finish).collect()
        } else {
            // Position path for very fine binnings, where sweeping every
            // bin once per 64 elements would dominate.
            let mut positions: Vec<Vec<u64>> = vec![Vec::new(); nbins];
            for (i, &v) in values.iter().enumerate() {
                let k = bin_of(&edges, v);
                positions[k].push(i as u64);
                if v == bin_mins[k] {
                    edge_hits[k] = true;
                } else if v == edges[k + 1] {
                    // only possible for the clamped last bin
                    edge_hits[k + 1] = true;
                }
            }
            positions
                .into_iter()
                .map(|pos| WahBitVector::from_selection(n, &Selection::from_sorted_coords(pos)))
                .collect()
        };
        BinnedBitmapIndex { edges, bitmaps, domain, edge_hits, nbits: n }
    }

    /// Number of indexed elements.
    pub fn num_elements(&self) -> u64 {
        self.nbits
    }

    /// Number of bins.
    pub fn num_bins(&self) -> usize {
        self.bitmaps.len()
    }

    /// Bin edges.
    pub fn edges(&self) -> &[f64] {
        &self.edges
    }

    /// The bitmap of bin `k`.
    pub fn bitmap(&self, k: usize) -> &WahBitVector {
        &self.bitmaps[k]
    }

    /// Exact length of [`Self::to_bytes`] output.
    pub fn size_bytes_serialized(&self) -> u64 {
        8 + 1 + 4
            + 9 * self.edges.len() as u64
            + 4
            + self.bitmaps.iter().map(|b| 12 + 4 * b.num_words() as u64).sum::<u64>()
    }

    /// Total compressed size in bytes (edges + bitmaps + headers) — the
    /// quantity behind the paper's "index file takes 15–17 % of the total
    /// data size".
    pub fn size_bytes(&self) -> u64 {
        8 * self.edges.len() as u64
            + self.bitmaps.iter().map(|b| b.size_bytes()).sum::<u64>()
            + 16
    }

    /// Evaluate a range query. Bins fully covered by `interval`
    /// contribute sure hits; partially-overlapped bins become candidates.
    pub fn query(&self, interval: &Interval) -> IndexAnswer {
        let mut sure_bins: Vec<&WahBitVector> = Vec::new();
        let mut candidate_bins: Vec<&WahBitVector> = Vec::new();
        for k in 0..self.num_bins() {
            let lo = self.edges[k];
            let hi = self.edges[k + 1];
            // Bin k holds values in [lo, hi) on the value-domain grid;
            // the last bin additionally holds clamped values equal to the
            // final edge, if any.
            let bin_min = self.domain.ceil_value(lo);
            let raw_max = if k + 1 == self.num_bins() && self.edge_hits[k + 1] {
                hi
            } else {
                prev_double(hi)
            };
            let bin_max = self.domain.floor_value(raw_max).max(bin_min);
            if !interval.overlaps_range(bin_min, bin_max) {
                continue;
            }
            // Sure iff every domain value the bin can hold satisfies the
            // interval: the top must be inside, and the bottom must be
            // either strictly above the lower bound, or exactly on an
            // inclusive bound, or on an exclusive bound that no indexed
            // value actually sits on.
            let sure = interval.contains(bin_max)
                && match interval.lo {
                    None => true,
                    Some(b) => {
                        b.value < bin_min
                            || (b.value == bin_min && (b.inclusive || !self.edge_hits[k]))
                    }
                };
            if sure {
                sure_bins.push(&self.bitmaps[k]);
            } else {
                candidate_bins.push(&self.bitmaps[k]);
            }
        }
        let sure = WahBitVector::or_many(self.nbits, sure_bins).to_selection();
        let candidates = WahBitVector::or_many(self.nbits, candidate_bins).to_selection();
        IndexAnswer { sure, candidates }
    }

    /// Evaluate a conjunction of intervals over this region in one pass.
    ///
    /// An element surely matches the conjunction iff it surely matches
    /// every interval; it is a candidate iff it possibly matches every
    /// interval without surely matching all of them. Both sets are
    /// computed at the compressed-word level with
    /// [`WahBitVector::and_many`] (in-place, buffer-recycling), so an
    /// `n`-term chain costs `n - 1` word-stream passes and no per-AND
    /// bitvector allocations. `query_conj(&[iv])` is exactly
    /// [`Self::query`]`(iv)`.
    pub fn query_conj(&self, intervals: &[Interval]) -> IndexAnswer {
        if let [iv] = intervals {
            return self.query(iv);
        }
        let per: Vec<(WahBitVector, WahBitVector)> = intervals
            .iter()
            .map(|iv| {
                let a = self.query(iv);
                let sure = WahBitVector::from_selection(self.nbits, &a.sure);
                let possible =
                    sure.or(&WahBitVector::from_selection(self.nbits, &a.candidates));
                (sure, possible)
            })
            .collect();
        let sure = WahBitVector::and_many(self.nbits, per.iter().map(|(s, _)| s));
        let possible = WahBitVector::and_many(self.nbits, per.iter().map(|(_, p)| p));
        let candidates = possible.and(&sure.not());
        IndexAnswer { sure: sure.to_selection(), candidates: candidates.to_selection() }
    }

    /// Serialize to a byte buffer (the on-"disk" index file format; what
    /// the simulated storage layer charges I/O for).
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_u64_le(self.nbits);
        buf.put_u8(match self.domain {
            ValueDomain::F64 => 0,
            ValueDomain::F32 => 1,
            ValueDomain::Integer => 2,
        });
        buf.put_u32_le(self.edges.len() as u32);
        for &e in &self.edges {
            buf.put_f64_le(e);
        }
        for &h in &self.edge_hits {
            buf.put_u8(h as u8);
        }
        buf.put_u32_le(self.bitmaps.len() as u32);
        for bm in &self.bitmaps {
            buf.put_u64_le(bm.nbits());
            let words = bm.words_raw();
            buf.put_u32_le(words.len() as u32);
            for &w in words {
                buf.put_u32_le(w);
            }
        }
        buf.freeze()
    }

    /// Deserialize from [`Self::to_bytes`] output.
    pub fn from_bytes(mut buf: &[u8]) -> PdcResult<BinnedBitmapIndex> {
        let err = |w: &str| PdcError::Codec(format!("bitmap index: {w}"));
        if buf.remaining() < 13 {
            return Err(err("short header"));
        }
        let nbits = buf.get_u64_le();
        let domain = match buf.get_u8() {
            0 => ValueDomain::F64,
            1 => ValueDomain::F32,
            2 => ValueDomain::Integer,
            other => return Err(err(&format!("bad domain tag {other}"))),
        };
        let nedges = buf.get_u32_le() as usize;
        if buf.remaining() < nedges * 9 + 4 {
            return Err(err("short edges"));
        }
        let mut edges = Vec::with_capacity(nedges);
        for _ in 0..nedges {
            edges.push(buf.get_f64_le());
        }
        let mut edge_hits = Vec::with_capacity(nedges);
        for _ in 0..nedges {
            edge_hits.push(buf.get_u8() != 0);
        }
        let nbins = buf.get_u32_le() as usize;
        if nedges != nbins + 1 {
            return Err(err("edge/bin count mismatch"));
        }
        let mut bitmaps = Vec::with_capacity(nbins);
        for _ in 0..nbins {
            if buf.remaining() < 12 {
                return Err(err("short bitmap header"));
            }
            let bm_nbits = buf.get_u64_le();
            let nwords = buf.get_u32_le() as usize;
            if buf.remaining() < nwords * 4 {
                return Err(err("short bitmap words"));
            }
            let mut words = Vec::with_capacity(nwords);
            for _ in 0..nwords {
                words.push(buf.get_u32_le());
            }
            bitmaps.push(WahBitVector::from_raw_parts(words, bm_nbits));
        }
        Ok(BinnedBitmapIndex { edges, bitmaps, domain, edge_hits, nbits })
    }
}

/// The largest f64 strictly less than `x`.
fn prev_double(x: f64) -> f64 {
    if x == f64::NEG_INFINITY {
        return x;
    }
    let bits = x.to_bits();
    let prev = if x > 0.0 {
        bits - 1
    } else if x == 0.0 {
        (-f64::MIN_POSITIVE).to_bits()
    } else {
        bits + 1
    };
    f64::from_bits(prev)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdc_types::QueryOp;

    fn sample_values(n: usize) -> Vec<f64> {
        // f32-derived values (like VPIC data widened to f64): none of them
        // coincide exactly with decimal bin edges such as 2.1 (f32 2.1
        // widens to 2.0999999046…, not the f64 decimal 2.1).
        (0..n).map(|i| (((i * 37) % 1000) as f32 / 100.0) as f64).collect() // [0, 9.99]
    }

    fn exact(values: &[f64], iv: &Interval) -> Vec<u64> {
        values
            .iter()
            .enumerate()
            .filter(|(_, &v)| iv.contains(v))
            .map(|(i, _)| i as u64)
            .collect()
    }

    #[test]
    fn mask_and_position_build_paths_agree_with_naive_binning() {
        let values = sample_values(4003); // odd length: exercises tail flush
        // Edge sets on both sides of MASK_BINNING_MAX_BINS: coarse (mask
        // path) and fine (position path). Both must equal naive per-bin
        // membership bitmaps.
        for nbins in [5usize, MASK_BINNING_MAX_BINS, MASK_BINNING_MAX_BINS + 50] {
            let edges: Vec<f64> = (0..=nbins).map(|k| 10.0 * k as f64 / nbins as f64).collect();
            let idx = BinnedBitmapIndex::build_with_edges(&values, edges.clone(), ValueDomain::F32);
            assert_eq!(idx.num_bins(), nbins);
            for k in 0..nbins {
                let members: Vec<u64> = values
                    .iter()
                    .enumerate()
                    .filter(|(_, &v)| bin_of(&edges, v) == k)
                    .map(|(i, _)| i as u64)
                    .collect();
                let expect = WahBitVector::from_selection(
                    values.len() as u64,
                    &Selection::from_sorted_coords(members),
                );
                assert_eq!(*idx.bitmap(k), expect, "nbins {nbins} bin {k}");
            }
        }
    }

    #[test]
    fn aligned_query_needs_no_candidates() {
        let values = sample_values(5000);
        let idx = BinnedBitmapIndex::build(&values, &BinningConfig::default()).unwrap();
        // 2.1 < v < 2.2 — both constants on precision-2 boundaries.
        let iv = Interval::open(2.1, 2.2);
        let ans = idx.query(&iv);
        assert!(!ans.needs_candidate_check(), "aligned bounds must avoid candidate checks");
        // Half-open [2.1, 2.2) differs from open (2.1, 2.2) only at 2.1
        // itself; sure hits must match v in [2.1+, 2.2).
        let resolved = ans.resolve(&iv, |i| values[i as usize]);
        assert_eq!(resolved.iter_coords().collect::<Vec<_>>(), exact(&values, &iv));
    }

    #[test]
    fn unaligned_query_candidates_resolve_exactly() {
        let values = sample_values(5000);
        let idx = BinnedBitmapIndex::build(&values, &BinningConfig::default()).unwrap();
        let iv = Interval::open(2.137, 4.456); // not on boundaries
        let ans = idx.query(&iv);
        assert!(ans.needs_candidate_check());
        let resolved = ans.resolve(&iv, |i| values[i as usize]);
        assert_eq!(resolved.iter_coords().collect::<Vec<_>>(), exact(&values, &iv));
        // sure hits are a subset of the exact answer
        let exact_sel = Selection::from_sorted_coords(exact(&values, &iv));
        assert_eq!(ans.sure.intersect(&exact_sel), ans.sure);
    }

    #[test]
    fn one_sided_queries() {
        let values = sample_values(3000);
        let idx = BinnedBitmapIndex::build(&values, &BinningConfig::default()).unwrap();
        for iv in [
            Interval::from_op(QueryOp::Gt, 5.0),
            Interval::from_op(QueryOp::Lte, 1.3),
            Interval::from_op(QueryOp::Gte, 9.9),
        ] {
            let ans = idx.query(&iv);
            let resolved = ans.resolve(&iv, |i| values[i as usize]);
            assert_eq!(resolved.iter_coords().collect::<Vec<_>>(), exact(&values, &iv), "{iv}");
        }
    }

    #[test]
    fn query_conj_matches_single_and_intersection() {
        let values = sample_values(3000);
        let idx = BinnedBitmapIndex::build(&values, &BinningConfig::default()).unwrap();
        // Single-interval conjunction is literally `query`.
        let iv = Interval::open(2.1, 2.2);
        let a = idx.query(&iv);
        let c = idx.query_conj(std::slice::from_ref(&iv));
        assert_eq!(a.sure, c.sure);
        assert_eq!(a.candidates, c.candidates);
        // A multi-term chain resolves to the same exact coordinates as
        // the fused interval (resolving each term's membership).
        let chain = [
            Interval::from_op(QueryOp::Gt, 2.1),
            Interval::from_op(QueryOp::Lt, 6.4),
            Interval::from_op(QueryOp::Gte, 3.0),
        ];
        let fused = chain.iter().fold(Interval::ALL, |acc, i| acc.intersect(i));
        let ans = idx.query_conj(&chain);
        // Sure hits really satisfy every term; candidates are disjoint
        // from them and cover everything else that matches.
        for coord in ans.sure.iter_coords() {
            assert!(fused.contains(values[coord as usize]), "false sure hit at {coord}");
            assert!(!ans.candidates.contains(coord));
        }
        let resolved = ans.resolve(&fused, |i| values[i as usize]);
        assert_eq!(
            resolved.iter_coords().collect::<Vec<_>>(),
            exact(&values, &fused),
            "conjunction answer must resolve to the exact fused result"
        );
        // And it refines each individual term's answer: sure ⊆ term-sure∪cand.
        for term in &chain {
            let t = idx.query(term);
            for coord in ans.sure.iter_coords() {
                assert!(t.sure.contains(coord) || t.candidates.contains(coord));
            }
        }
    }

    #[test]
    fn equality_query() {
        let values = sample_values(3000);
        let idx = BinnedBitmapIndex::build(&values, &BinningConfig::default()).unwrap();
        let iv = Interval::from_op(QueryOp::Eq, 3.7);
        let ans = idx.query(&iv);
        let resolved = ans.resolve(&iv, |i| values[i as usize]);
        assert_eq!(resolved.iter_coords().collect::<Vec<_>>(), exact(&values, &iv));
    }

    #[test]
    fn empty_and_full_intervals() {
        let values = sample_values(1000);
        let idx = BinnedBitmapIndex::build(&values, &BinningConfig::default()).unwrap();
        let none = idx.query(&Interval::from_op(QueryOp::Gt, 100.0));
        assert_eq!(none.upper_bound(), 0);
        let all = idx.query(&Interval::ALL);
        assert_eq!(all.resolve(&Interval::ALL, |i| values[i as usize]).count(), 1000);
    }

    #[test]
    fn empty_input_yields_none() {
        assert!(BinnedBitmapIndex::build(&[], &BinningConfig::default()).is_none());
    }

    #[test]
    fn every_element_in_exactly_one_bin() {
        let values = sample_values(2000);
        let idx = BinnedBitmapIndex::build(&values, &BinningConfig::default()).unwrap();
        let mut total = 0u64;
        for k in 0..idx.num_bins() {
            total += idx.bitmap(k).count_ones();
        }
        assert_eq!(total, 2000);
    }

    #[test]
    fn serialization_roundtrip() {
        let values = sample_values(4000);
        let idx = BinnedBitmapIndex::build(&values, &BinningConfig::default()).unwrap();
        let bytes = idx.to_bytes();
        assert_eq!(bytes.len() as u64, idx.size_bytes_serialized());
        let back = BinnedBitmapIndex::from_bytes(&bytes).unwrap();
        assert_eq!(back, idx);
    }

    #[test]
    fn from_bytes_rejects_garbage() {
        assert!(BinnedBitmapIndex::from_bytes(&[1, 2, 3]).is_err());
        let values = sample_values(100);
        let idx = BinnedBitmapIndex::build(&values, &BinningConfig::default()).unwrap();
        let bytes = idx.to_bytes();
        assert!(BinnedBitmapIndex::from_bytes(&bytes[..bytes.len() / 2]).is_err());
    }

    #[test]
    fn prev_double_is_strictly_less() {
        for x in [1.0, 0.1, 1e300, -2.5, 1e-300] {
            let p = prev_double(x);
            assert!(p < x, "{p} !< {x}");
        }
        assert!(prev_double(0.0) < 0.0);
    }

    #[test]
    fn index_size_reported() {
        let values = sample_values(10_000);
        let idx = BinnedBitmapIndex::build(&values, &BinningConfig::default()).unwrap();
        assert!(idx.size_bytes() > 0);
        // sanity: a 100-bin index over 10k elements shouldn't dwarf the data
        assert!(idx.size_bytes() < 40 * values.len() as u64);
    }
}
