//! # pdc-bitmap
//!
//! A from-scratch reimplementation of the FastBit-style **binned bitmap
//! index** the paper uses for its `PDC-HI` strategy (§III-D4).
//!
//! The paper: *"We construct a bitmap for each region, with the data split
//! into a number of bins by Fastbit automatically. ... The Word-Aligned
//! Hybrid compression (WAH) method is used to reduce the index file size.
//! ... We used precision = 2 as the default value to construct the Fastbit
//! index."*
//!
//! The pieces:
//!
//! * [`WahBitVector`] — a WAH-compressed bitvector (31-bit payload words,
//!   literal and fill words) with logical AND/OR/NOT, population count and
//!   set-bit iteration.
//! * [`precision_edges`] — FastBit-style *precision binning*: bin
//!   boundaries are round numbers with a given number of significant
//!   decimal digits, so query constants written with that precision (like
//!   the paper's `2.1 < Energy < 2.2`) fall exactly on bin boundaries and
//!   need no raw-data candidate check.
//! * [`BinnedBitmapIndex`] — one bitmap per bin; a range query ORs the
//!   bitmaps of fully-covered bins and reports partially-overlapping
//!   *boundary bins* whose members must be candidate-checked against the
//!   raw data.

pub mod binning;
pub mod index;
pub mod wah;

pub use binning::{precision_edges, BinningConfig};
pub use index::{BinnedBitmapIndex, IndexAnswer, ValueDomain};
pub use wah::WahBitVector;

/// Typical serialized index size as a fraction of the indexed data's
/// bytes — the cost model's calibration target ("the index file is ≈15 %
/// of data bytes"). Planners use it to estimate index-read cost when a
/// region's index size isn't known without a charged read.
pub const TYPICAL_INDEX_RATIO: f64 = 0.15;
